package staticest_test

import (
	"testing"

	"staticest/internal/check"
)

// TestGenerativeSuite is the CI face of the generative harness: fixed
// seeds, a fixed program count, every oracle. Flake-free by
// construction — the generator is deterministic, so this checks the
// same ~200 programs on every run. The open-ended exploration (random
// seeds, thousands of programs) lives in cmd/stress and the nightly
// stress workflow.
func TestGenerativeSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("generative suite skipped in -short mode")
	}
	seeds := []struct {
		seed int64
		n    int
	}{
		{1, 100},
		{2, 50},
		{1994, 50}, // the paper's year, for luck
	}
	for _, s := range seeds {
		// The server oracle spins up HTTP listeners, so sample it; every
		// other oracle runs on every program.
		for _, pf := range check.RunAll(s.seed, s.n, check.Options{ServerEvery: 25}) {
			t.Errorf("%s\nfailures:\n%s\nsource:\n%s", pf, failureList(pf), pf.Src)
		}
	}
}

func failureList(pf check.ProgramFailure) string {
	out := ""
	for _, f := range pf.Failures {
		out += "  " + f.String() + "\n"
	}
	return out
}
