// Command stress drives the generative differential-testing harness:
// it generates N random C-subset programs from a seed, runs each
// through the invariant checker and cross-pipeline oracles
// (full-vs-sparse reconstruction, inline profile equivalence,
// metamorphic estimate stability, server/library agreement), and, on
// failure, greedily shrinks the program to a minimal reproducer under
// testdata/repro/.
//
// Usage:
//
//	stress -n 1000 -seed 1
//	stress -n 200 -oracles invariants,sparse
//	stress -n 50 -inject logical        # prove the harness catches a bug
//
// The exit status is the number of failing programs (capped at 125),
// so a clean run exits 0.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"staticest"
	"staticest/internal/check"
	"staticest/internal/cliutil"
)

var oracleNames = append(append([]string(nil), check.Oracles...), "all")

var injections = []string{"logical"}

func main() {
	seed := flag.Int64("seed", 1, "generator seed (same seed, same programs)")
	n := flag.Int("n", 100, "number of programs to generate and check")
	shrink := flag.Bool("shrink", true, "shrink failing programs to minimal reproducers")
	oracles := flag.String("oracles", "all",
		"comma-separated oracles to run ("+strings.Join(oracleNames, " ")+")")
	serverEvery := flag.Int("server-every", 10,
		"run the server-backed oracles (server, batch) on every k-th program only (1 = all)")
	outDir := flag.String("out", "testdata/repro", "directory for reproducer files")
	inject := flag.String("inject", "",
		"deliberately break an estimator before checking (logical)")
	trace := flag.String("trace", "", "write JSONL trace events to this file (- for stderr)")
	metrics := flag.Bool("metrics", false, "print the metrics exposition to stderr at exit")
	flag.Parse()

	sel, err := cliutil.CheckEnums("oracles", *oracles, oracleNames...)
	if err != nil {
		fail(err)
	}
	o, closeObs, err := cliutil.Observability(*trace, *metrics)
	if err != nil {
		fail(err)
	}
	if *inject != "" {
		if err := cliutil.CheckEnum("inject", *inject, injections...); err != nil {
			fail(err)
		}
	}
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: stress [flags]")
		flag.Usage()
		os.Exit(2)
	}

	opt := check.Options{Oracles: sel, ServerEvery: *serverEvery, Obs: o}
	if *inject == "logical" {
		opt.Inject = func(est *staticest.Estimates) { check.BreakLogical(est) }
	}

	fmt.Printf("stress: seed=%d n=%d oracles=%s\n", *seed, *n, *oracles)
	fails := check.RunAll(*seed, *n, opt)
	if *metrics {
		o.WriteProm(os.Stderr)
	}
	closeObs()
	if len(fails) == 0 {
		fmt.Printf("stress: %d programs, all oracles passed\n", *n)
		return
	}

	for _, pf := range fails {
		fmt.Fprintf(os.Stderr, "FAIL %s\n", pf)
		for _, f := range pf.Failures {
			fmt.Fprintf(os.Stderr, "  %s\n", f)
		}
		src := pf.Src
		if *shrink {
			// A candidate reproduces only if it fails the same oracle —
			// merely failing to compile does not count, or the reducer
			// would happily shrink everything to an empty file. Only that
			// one oracle runs per candidate: ddmin tries hundreds of
			// candidates, and e.g. the server oracle costs two HTTP
			// round-trip sets each.
			orig := pf.Failures[0].Oracle
			shrinkOpt := opt
			switch orig {
			case "compile", "run":
				// Not selectable oracle names: compile errors surface
				// before selection, run errors from the invariants path.
				shrinkOpt.Oracles = []string{"invariants"}
			default:
				shrinkOpt.Oracles = []string{orig}
			}
			src = check.Shrink(src, func(cand []byte) bool {
				for _, f := range check.Run("shrink.c", cand, shrinkOpt) {
					if f.Oracle == orig {
						return true
					}
				}
				return false
			})
		}
		path := filepath.Join(*outDir, fmt.Sprintf("seed%d_p%d.c", pf.Seed, pf.Index))
		if err := writeRepro(path, pf, src); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "  reproducer: %s (%d lines)\n", path, countLines(src))
	}
	code := len(fails)
	if code > 125 {
		code = 125
	}
	os.Exit(code)
}

// writeRepro saves a reproducer with its failure list as a header
// comment, so the file alone explains what broke.
func writeRepro(path string, pf check.ProgramFailure, src []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "/* reproducer: seed=%d program=%d\n", pf.Seed, pf.Index)
	for _, f := range pf.Failures {
		fmt.Fprintf(&b, " * %s\n", f)
	}
	b.WriteString(" */\n")
	b.Write(src)
	if len(src) == 0 || src[len(src)-1] != '\n' {
		b.WriteByte('\n')
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

func countLines(src []byte) int {
	n := 0
	for _, c := range src {
		if c == '\n' {
			n++
		}
	}
	return n + 1
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "stress:", err)
	os.Exit(2)
}
