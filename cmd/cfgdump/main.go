// Command cfgdump prints the compiler-side view of a C source file: the
// AST (with estimate annotations), per-function control-flow graphs, the
// call graph, and the branch predictor's per-site verdicts.
//
// Usage:
//
//	cfgdump [-ast] [-cfg] [-calls] [-pred] [-trace file|-] file.c
//	cfgdump -callgraph file.c | dot -Tsvg > callgraph.svg
//
// With no mode flags, everything is printed. -callgraph emits ONLY the
// call graph as Graphviz dot — nodes carry the smart estimator's
// invocation counts, edges the estimated call frequencies — so the
// output pipes straight into dot.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"staticest"
	"staticest/internal/cast"
	"staticest/internal/cliutil"
)

func main() {
	ast := flag.Bool("ast", false, "print the AST with estimated counts")
	cfgF := flag.Bool("cfg", false, "print control-flow graphs")
	calls := flag.Bool("calls", false, "print the call graph")
	callgraphDot := flag.Bool("callgraph", false, "emit the call graph as Graphviz dot and exit")
	pred := flag.Bool("pred", false, "print branch predictions")
	trace := flag.String("trace", "", "write JSONL trace events to this file (- for stderr)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cfgdump [flags] file.c")
		flag.Usage()
		os.Exit(2)
	}
	o, closeObs, err := cliutil.Observability(*trace, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cfgdump: %v\n", err)
		os.Exit(1)
	}
	if *callgraphDot {
		err = runDot(flag.Arg(0), o)
		closeObs()
		if err != nil {
			fmt.Fprintf(os.Stderr, "cfgdump: %v\n", err)
			os.Exit(1)
		}
		return
	}
	all := !*ast && !*cfgF && !*calls && !*pred
	err = run(flag.Arg(0), all || *ast, all || *cfgF, all || *calls, all || *pred, o)
	closeObs()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cfgdump: %v\n", err)
		os.Exit(1)
	}
}

// runDot compiles the file and emits its call graph as Graphviz dot:
// one box per defined function labeled with the smart estimator's
// invocation count, one edge per direct caller/callee pair labeled with
// the summed estimated frequency of its call sites. Address-taken
// functions (possible indirect-call targets) get a double border.
func runDot(path string, o *staticest.Observer) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	u, err := staticest.CompileObs(path, src, o)
	if err != nil {
		return err
	}
	est := u.Estimate()

	addrTaken := map[int]bool{}
	for _, at := range u.Call.AddrTaken {
		addrTaken[at.FuncIndex] = true
	}
	fmt.Println("digraph callgraph {")
	fmt.Println("  rankdir=LR;")
	fmt.Println("  node [shape=box, fontname=\"Helvetica\"];")
	for i := range u.Sem.Funcs {
		attrs := fmt.Sprintf("label=\"%s\\ninv %.1f\"", u.Call.FuncName(i), est.Inter.Direct[i])
		if addrTaken[i] {
			attrs += ", peripheries=2"
		}
		fmt.Printf("  f%d [%s];\n", i, attrs)
	}
	keys := make([][2]int, 0, len(u.Call.Edges))
	for k := range u.Call.Edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for _, k := range keys {
		e := u.Call.Edges[k]
		var freq float64
		for _, site := range e.Sites {
			freq += est.SiteFreqDirect[site.ID]
		}
		fmt.Printf("  f%d -> f%d [label=\"%.1f\"];\n", e.Caller, e.Callee, freq)
	}
	fmt.Println("}")
	return nil
}

func run(path string, ast, cfgF, calls, pred bool, o *staticest.Observer) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	u, err := staticest.CompileObs(path, src, o)
	if err != nil {
		return err
	}
	est := u.Estimate()

	if ast {
		fmt.Println("== AST (annotated with smart-heuristic estimated counts) ==")
		for i, fd := range u.Sem.Funcs {
			freq := est.StmtFreqOf(i)
			var sb strings.Builder
			cast.FprintTree(&sb, fd, func(s cast.Stmt) string {
				if f, ok := freq[s]; ok {
					return fmt.Sprintf("%.2f", f)
				}
				return ""
			})
			fmt.Print(sb.String())
		}
		fmt.Println()
	}
	if cfgF {
		fmt.Println("== control-flow graphs ==")
		for _, g := range u.CFG.Graphs {
			fmt.Print(g.String())
		}
		fmt.Println()
	}
	if calls {
		fmt.Println("== call graph (direct edges) ==")
		for i, adj := range u.Call.Adj {
			if len(adj) == 0 {
				continue
			}
			names := make([]string, len(adj))
			for j, c := range adj {
				names[j] = u.Call.FuncName(c)
			}
			fmt.Printf("  %-20s -> %s\n", u.Call.FuncName(i), strings.Join(names, ", "))
		}
		if n := len(u.Call.AddrTaken); n > 0 {
			fmt.Printf("  address-taken functions (%d):", n)
			for _, at := range u.Call.AddrTaken {
				fmt.Printf(" %s(%d)", u.Call.FuncName(at.FuncIndex), at.Count)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	if pred {
		fmt.Println("== branch predictions ==")
		for _, bs := range u.Sem.BranchSites {
			bp := est.Pred.Branch[bs.ID]
			cond := ""
			if c := bs.Stmt.CondExpr(); c != nil {
				cond = cast.ExprString(c)
			}
			fmt.Printf("  %-10s p(true)=%.2f  %s @%s: (%s)\n",
				bp.Heuristic, bp.ProbTrue, bs.Func.Name(), bs.Stmt.Pos(), cond)
		}
	}
	return nil
}
