// Command cfgdump prints the compiler-side view of a C source file: the
// AST (with estimate annotations), per-function control-flow graphs, the
// call graph, and the branch predictor's per-site verdicts.
//
// Usage:
//
//	cfgdump [-ast] [-cfg] [-calls] [-pred] [-trace file|-] file.c
//
// With no mode flags, everything is printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"staticest"
	"staticest/internal/cast"
	"staticest/internal/cliutil"
)

func main() {
	ast := flag.Bool("ast", false, "print the AST with estimated counts")
	cfgF := flag.Bool("cfg", false, "print control-flow graphs")
	calls := flag.Bool("calls", false, "print the call graph")
	pred := flag.Bool("pred", false, "print branch predictions")
	trace := flag.String("trace", "", "write JSONL trace events to this file (- for stderr)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: cfgdump [flags] file.c")
		flag.Usage()
		os.Exit(2)
	}
	o, closeObs, err := cliutil.Observability(*trace, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cfgdump: %v\n", err)
		os.Exit(1)
	}
	all := !*ast && !*cfgF && !*calls && !*pred
	err = run(flag.Arg(0), all || *ast, all || *cfgF, all || *calls, all || *pred, o)
	closeObs()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cfgdump: %v\n", err)
		os.Exit(1)
	}
}

func run(path string, ast, cfgF, calls, pred bool, o *staticest.Observer) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	u, err := staticest.CompileObs(path, src, o)
	if err != nil {
		return err
	}
	est := u.Estimate()

	if ast {
		fmt.Println("== AST (annotated with smart-heuristic estimated counts) ==")
		for i, fd := range u.Sem.Funcs {
			freq := est.StmtFreqOf(i)
			var sb strings.Builder
			cast.FprintTree(&sb, fd, func(s cast.Stmt) string {
				if f, ok := freq[s]; ok {
					return fmt.Sprintf("%.2f", f)
				}
				return ""
			})
			fmt.Print(sb.String())
		}
		fmt.Println()
	}
	if cfgF {
		fmt.Println("== control-flow graphs ==")
		for _, g := range u.CFG.Graphs {
			fmt.Print(g.String())
		}
		fmt.Println()
	}
	if calls {
		fmt.Println("== call graph (direct edges) ==")
		for i, adj := range u.Call.Adj {
			if len(adj) == 0 {
				continue
			}
			names := make([]string, len(adj))
			for j, c := range adj {
				names[j] = u.Call.FuncName(c)
			}
			fmt.Printf("  %-20s -> %s\n", u.Call.FuncName(i), strings.Join(names, ", "))
		}
		if n := len(u.Call.AddrTaken); n > 0 {
			fmt.Printf("  address-taken functions (%d):", n)
			for _, at := range u.Call.AddrTaken {
				fmt.Printf(" %s(%d)", u.Call.FuncName(at.FuncIndex), at.Count)
			}
			fmt.Println()
		}
		fmt.Println()
	}
	if pred {
		fmt.Println("== branch predictions ==")
		for _, bs := range u.Sem.BranchSites {
			bp := est.Pred.Branch[bs.ID]
			cond := ""
			if c := bs.Stmt.CondExpr(); c != nil {
				cond = cast.ExprString(c)
			}
			fmt.Printf("  %-10s p(true)=%.2f  %s @%s: (%s)\n",
				bp.Heuristic, bp.ProbTrue, bs.Func.Name(), bs.Stmt.Pos(), cond)
		}
	}
	return nil
}
