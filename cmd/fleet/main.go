// Command fleet simulates a fleet of instrumented deployments closing
// the PGO loop against a running serve instance: it compiles one
// benchmark-suite program locally, produces the sparse probe vector for
// each of the program's inputs, and uploads those vectors — cycling
// through the inputs — from N concurrent members to
// POST /v1/profiles/ingest, optionally throttled to a target rate.
//
// At log-spaced checkpoints it queries GET /v1/profiles/stats with
// agreement rows and prints how each estimate source's decision
// agreement against the server's live aggregate converges toward the
// offline eval.OptReport values (the cross-input numbers the eval
// harness computes from full-instrumentation profiles). Once the fleet
// has covered every input, the live ranking metrics should match the
// offline ones; -tol turns that into an exit status for CI soaks.
//
// Members that get shed (429) honor Retry-After and retry, so the
// driver doubles as a smoke test of the server's load-shed path. Every
// upload's end-to-end latency (including shed retries) accumulates
// into a client-side histogram; the final report prints its
// p50/p99/p999, and -trace captures per-upload spans as JSONL.
//
// Usage:
//
//	fleet -addr localhost:8080 -n 200
//	fleet -addr localhost:8080 -program eqntott -n 500 -j 16 -rate 100
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"staticest"
	"staticest/internal/cliutil"
	"staticest/internal/eval"
	"staticest/internal/obs"
	"staticest/internal/probes"
	"staticest/internal/server"
	"staticest/internal/suite"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "serve instance to upload to")
	program := flag.String("program", "compress", "benchmark-suite program the fleet runs")
	n := flag.Int("n", 200, "total uploads")
	jobs := flag.Int("j", 8, "concurrent fleet members")
	rate := flag.Float64("rate", 0, "target uploads per second (0 = unthrottled)")
	tol := flag.Float64("tol", 0.1, "max allowed final |live - offline| agreement delta (negative = report only)")
	trace := flag.String("trace", "", "write JSONL trace events to this file (- for stderr)")
	flag.Parse()
	if flag.NArg() > 0 || *n < 1 || *jobs < 1 {
		fmt.Fprintln(os.Stderr, "usage: fleet [flags]")
		flag.Usage()
		os.Exit(2)
	}
	o, closeObs, err := cliutil.Observability(*trace, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
		os.Exit(1)
	}
	err = run(*addr, *program, *n, *jobs, *rate, *tol, o)
	closeObs()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fleet: %v\n", err)
		os.Exit(1)
	}
}

func run(addr, program string, n, jobs int, rate, tol float64, o *obs.Observer) error {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	p, err := suite.ByName(program)
	if err != nil {
		return err
	}
	u, err := p.CompileCached()
	if err != nil {
		return err
	}
	fp := staticest.Fingerprint([]byte(p.Source))
	plan := u.PlanProbes()

	// Each fleet member re-runs one of the program's inputs under sparse
	// instrumentation; precompute the vector per input once.
	vectors := make([]*probes.Vector, len(p.Inputs))
	for i, in := range p.Inputs {
		res, err := u.Run(staticest.RunOptions{
			Args:            in.Args,
			Stdin:           in.Stdin,
			Instrumentation: staticest.SparseInstrumentation,
			Plan:            plan,
		})
		if err != nil {
			return fmt.Errorf("%s/%s: sparse run: %v", p.Name, in.Name, err)
		}
		vectors[i] = res.Probes
	}

	// The offline reference: the eval harness's agreement rows from
	// full-instrumentation profiles of every input.
	d, err := eval.Load(p)
	if err != nil {
		return err
	}
	rows, err := eval.OptProgram(d)
	if err != nil {
		return err
	}
	offline := map[string]eval.OptRow{}
	for _, row := range rows {
		offline[row.Source] = row
	}

	fmt.Printf("fleet: program=%s fp=%.12s inputs=%d probes=%d uploads=%d workers=%d rate=%s\n",
		p.Name, fp, len(p.Inputs), plan.NumProbes, n, jobs, rateString(rate))

	// First contact ships the program reference so the server registers
	// the unit; everyone after uploads against the bare fingerprint.
	// Upload latency accumulates into a client-side histogram: with an
	// observer it also lands in the trace's final totals, without one
	// the standalone histogram still feeds the convergence report's
	// percentile line.
	lat := obs.NewHistogram("fleet_upload_seconds")
	if o != nil {
		lat = o.Histogram("fleet_upload_seconds")
	}
	f := &fleet{base: base, fp: fp, program: p.Name, inputs: p.Inputs, vectors: vectors,
		obs: o, lat: lat}
	if err := f.upload(0, true); err != nil {
		return fmt.Errorf("registering upload: %v", err)
	}

	var ticker *time.Ticker
	if rate > 0 {
		ticker = time.NewTicker(time.Duration(float64(time.Second) / rate))
		defer ticker.Stop()
	}

	fmt.Printf("%8s  %-8s %22s %22s %10s\n",
		"uploads", "source", "inline_top10 live/off", "spill_tau live/off", "max|Δ|")
	var maxDelta float64
	done := 1
	for _, stop := range checkpoints(n) {
		var wg sync.WaitGroup
		var mu sync.Mutex
		var uploadErr error
		next := make(chan int)
		for w := 0; w < jobs; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range next {
					if ticker != nil {
						<-ticker.C
					}
					if err := f.upload(i, false); err != nil {
						mu.Lock()
						if uploadErr == nil {
							uploadErr = err
						}
						mu.Unlock()
					}
				}
			}()
		}
		for ; done < stop; done++ {
			next <- done
		}
		close(next)
		wg.Wait()
		if uploadErr != nil {
			return uploadErr
		}

		delta, err := f.report(done, offline)
		if err != nil {
			return err
		}
		maxDelta = delta
	}

	s := f.lat.Summarize()
	fmt.Printf("fleet: upload latency p50=%.3fms p99=%.3fms p999=%.3fms (n=%d)\n",
		s.P50*1e3, s.P99*1e3, s.P999*1e3, s.Count)
	fmt.Printf("fleet: %d uploads done; final max agreement delta %.3f\n", done, maxDelta)
	if tol >= 0 && maxDelta > tol {
		return fmt.Errorf("final agreement delta %.3f exceeds tolerance %.3f — live aggregate did not converge", maxDelta, tol)
	}
	return nil
}

type fleet struct {
	base    string
	fp      string
	program string
	inputs  []suite.Input
	vectors []*probes.Vector
	obs     *obs.Observer
	lat     *obs.Histogram
}

// upload ships vector i%len(inputs) as member i. withSource registers
// the unit on first contact. Shed uploads (429) retry after the
// server's Retry-After hint; the latency histogram records the whole
// call including those retries — what a fleet member actually waits.
func (f *fleet) upload(i int, withSource bool) error {
	start := time.Now()
	defer f.lat.ObserveSince(start)
	sp := f.obs.StartSpan("fleet.upload", obs.KV("member", i))
	defer sp.End()
	vec := f.vectors[i%len(f.vectors)]
	req := server.IngestRequest{
		Fingerprint: f.fp,
		UploadID:    fmt.Sprintf("fleet-%05d", i),
		Label:       f.inputs[i%len(f.inputs)].Name,
		Counts:      vec.Counts,
	}
	for _, e := range vec.Escapes {
		req.Escapes = append(req.Escapes, server.IngestEscape{Func: e.Func, Block: e.Block})
	}
	if withSource {
		req.Program = f.program
	}
	body, err := json.Marshal(&req)
	if err != nil {
		return err
	}

	for attempt := 0; ; attempt++ {
		hr, err := http.NewRequest("POST", f.base+"/v1/profiles/ingest", bytes.NewReader(body))
		if err != nil {
			return err
		}
		hr.Header.Set("Content-Type", "application/json")
		// Propagate the upload ID as the request ID so this upload's
		// server-side span tree is findable by the same name that the
		// ingest store deduplicates on.
		hr.Header.Set("X-Request-ID", req.UploadID)
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			return err
		}
		out, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		switch {
		case resp.StatusCode == http.StatusOK:
			return nil
		case resp.StatusCode == http.StatusTooManyRequests && attempt < 10:
			wait := time.Second
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, err := time.ParseDuration(ra + "s"); err == nil {
					wait = secs
				}
			}
			time.Sleep(wait)
		default:
			return fmt.Errorf("upload %d: status %d: %s", i, resp.StatusCode, out)
		}
	}
}

// report queries the live agreement rows and prints each source next to
// its offline value, returning the worst |live - offline| over the
// inline-overlap and spill-tau columns.
func (f *fleet) report(uploads int, offline map[string]eval.OptRow) (float64, error) {
	resp, err := http.Get(f.base + "/v1/profiles/stats?fingerprint=" + f.fp + "&agreement=1")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("stats: status %d: %s", resp.StatusCode, body)
	}
	var sr server.StatsResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		return 0, err
	}
	if len(sr.Units) != 1 {
		return 0, fmt.Errorf("stats returned %d units, want 1", len(sr.Units))
	}

	rows := append([]server.AgreementRow(nil), sr.Units[0].Agreement...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Source < rows[j].Source })
	var maxDelta float64
	for _, row := range rows {
		off, ok := offline[row.Source]
		if !ok {
			continue
		}
		dOverlap := math.Abs(row.InlineOverlap - off.InlineOverlap)
		dSpill := math.Abs(row.SpillTau - off.SpillTau)
		maxDelta = math.Max(maxDelta, math.Max(dOverlap, dSpill))
		fmt.Printf("%8d  %-8s %10.3f /%9.3f %10.3f /%9.3f %10.3f\n",
			uploads, row.Source, row.InlineOverlap, off.InlineOverlap,
			row.SpillTau, off.SpillTau, math.Max(dOverlap, dSpill))
	}
	return maxDelta, nil
}

// checkpoints returns log-spaced upload counts ending at n.
func checkpoints(n int) []int {
	var out []int
	for _, c := range []int{2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000} {
		if c < n {
			out = append(out, c)
		}
	}
	return append(out, n)
}

func rateString(rate float64) string {
	if rate <= 0 {
		return "unthrottled"
	}
	return fmt.Sprintf("%g/s", rate)
}
