// Command evaluate regenerates the paper's tables and figures from the
// benchmark suite: it compiles all 14 programs, profiles them on every
// input, runs the estimator ladder, and prints each experiment.
//
// Observability: -trace streams the harness's JSONL events (suite
// loading, every interpreter run, per-experiment scoring spans),
// -metrics prints the final text exposition, and -http serves
// /metrics, /debug/pprof (net/http/pprof), and /debug/vars (expvar,
// including the live metric snapshot as staticest_metrics) while the
// evaluation runs — and keeps serving afterwards for inspection.
//
// Usage:
//
//	evaluate            # run everything
//	evaluate -exp f4    # one experiment: t1 t2 f2 f3 f4 f5a f5b f5c f6 f7 f9 f10 x1 x2 opt reuse
//	evaluate -j 4       # bound the compile/profile worker pool
//	evaluate -metrics -http localhost:6060
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"staticest/internal/cliutil"
	"staticest/internal/eval"
	"staticest/internal/obs"
)

var experiments = []string{
	"t1", "t2", "f2", "f3", "f4", "f5a", "f5b", "f5c", "f6", "f7", "f9", "f10", "x1", "x2", "opt", "reuse", "all",
}

func main() {
	exp := flag.String("exp", "all", "experiment to run ("+strings.Join(experiments, " ")+")")
	jobs := flag.Int("j", 0, "programs to compile and profile in parallel (0 = GOMAXPROCS)")
	trace := flag.String("trace", "", "write JSONL trace events to this file (- for stderr)")
	metrics := flag.Bool("metrics", false, "print the metrics exposition after the run")
	httpAddr := flag.String("http", "", "serve /metrics, pprof, and expvar on this address")
	flag.Parse()
	eval.SetParallelism(*jobs)

	expName := strings.ToLower(*exp)
	if err := cliutil.CheckEnum("exp", expName, experiments...); err != nil {
		fmt.Fprintf(os.Stderr, "evaluate: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	o, closeObs, err := cliutil.Observability(*trace, *metrics || *httpAddr != "")
	if err != nil {
		fmt.Fprintf(os.Stderr, "evaluate: %v\n", err)
		os.Exit(1)
	}
	eval.SetObserver(o)
	if *httpAddr != "" {
		serve(*httpAddr, o)
	}

	err = run(expName, o)
	closeObs()
	if err != nil {
		fmt.Fprintf(os.Stderr, "evaluate: %v\n", err)
		os.Exit(1)
	}
	if *metrics {
		fmt.Println("-- metrics --")
		o.WriteProm(os.Stdout)
	}
	if *httpAddr != "" {
		fmt.Fprintf(os.Stderr, "evaluate: done; still serving on %s (interrupt to exit)\n", *httpAddr)
		select {}
	}
}

// serve starts the debug HTTP server: net/http/pprof and expvar
// register themselves on the default mux via import; /metrics and the
// staticest_metrics expvar come from the observer.
func serve(addr string, o *obs.Observer) {
	expvar.Publish("staticest_metrics", expvar.Func(func() any { return o.Snapshot() }))
	http.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		o.WriteProm(w)
	})
	go func() {
		if err := http.ListenAndServe(addr, nil); err != nil {
			fmt.Fprintf(os.Stderr, "evaluate: http server: %v\n", err)
		}
	}()
}

func run(exp string, o *obs.Observer) error {
	want := func(name string) bool { return exp == "all" || exp == name }
	section := func(s string) { fmt.Println(s) }
	// experiment wraps one experiment's generation in a timed span.
	experiment := func(name string, f func() (string, error)) error {
		sp := o.StartSpan("eval.experiment", obs.KV("exp", name))
		s, err := f()
		sp.End()
		if err != nil {
			return err
		}
		section(s)
		return nil
	}

	if want("t1") {
		if err := experiment("t1", func() (string, error) { return eval.Table1(), nil }); err != nil {
			return err
		}
	}
	if want("t2") {
		if err := experiment("t2", eval.Table2); err != nil {
			return err
		}
	}
	if want("f3") {
		if err := experiment("f3", eval.Figure3); err != nil {
			return err
		}
	}
	if want("f6") {
		if err := experiment("f6", eval.Figure6); err != nil {
			return err
		}
	}
	if want("f7") {
		if err := experiment("f7", eval.Figure7); err != nil {
			return err
		}
	}

	needSuite := false
	for _, e := range []string{"f2", "f4", "f5a", "f5b", "f5c", "f9", "f10", "x1", "x2", "opt", "reuse"} {
		if want(e) {
			needSuite = true
		}
	}
	if !needSuite {
		return nil
	}
	data, err := eval.LoadSuiteCached()
	if err != nil {
		return err
	}

	if want("f2") {
		err := experiment("f2", func() (string, error) {
			rows, err := eval.Figure2(data)
			if err != nil {
				return "", err
			}
			return eval.RenderFigure2(rows), nil
		})
		if err != nil {
			return err
		}
	}
	if want("f4") {
		err := experiment("f4", func() (string, error) {
			rows, err := eval.Figure4(data)
			if err != nil {
				return "", err
			}
			return eval.RenderFigure4(rows), nil
		})
		if err != nil {
			return err
		}
	}
	if want("f5a") || want("f5c") {
		sp := o.StartSpan("eval.experiment", obs.KV("exp", "f5"))
		rows, err := eval.Figure5(data, 0.25)
		sp.End()
		if err != nil {
			return err
		}
		if want("f5a") {
			section(eval.RenderFigure5a(rows))
		}
		if want("f5c") {
			section(eval.RenderFigure5bc(rows, 25, "c"))
		}
	}
	if want("f5b") {
		err := experiment("f5b", func() (string, error) {
			rows, err := eval.Figure5(data, 0.10)
			if err != nil {
				return "", err
			}
			return eval.RenderFigure5bc(rows, 10, "b"), nil
		})
		if err != nil {
			return err
		}
	}
	if want("f9") {
		err := experiment("f9", func() (string, error) {
			rows, err := eval.Figure9(data)
			if err != nil {
				return "", err
			}
			return eval.RenderFigure9(rows), nil
		})
		if err != nil {
			return err
		}
	}
	if want("f10") {
		err := experiment("f10", func() (string, error) {
			var compress *eval.ProgramData
			for _, d := range data {
				if d.Prog.Name == "compress" {
					compress = d
				}
			}
			curves, err := eval.Figure10(compress, 0.55)
			if err != nil {
				return "", err
			}
			return eval.RenderFigure10(curves), nil
		})
		if err != nil {
			return err
		}
	}
	if want("x1") {
		err := experiment("x1", func() (string, error) {
			rows, err := eval.CutoffSweep(data,
				[]float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50})
			if err != nil {
				return "", err
			}
			return eval.RenderCutoffSweep(rows), nil
		})
		if err != nil {
			return err
		}
	}
	if want("opt") {
		err := experiment("opt", func() (string, error) {
			rows, err := eval.OptReport(data)
			if err != nil {
				return "", err
			}
			return eval.RenderOptReport(rows), nil
		})
		if err != nil {
			return err
		}
	}
	if want("reuse") {
		err := experiment("reuse", func() (string, error) {
			results, suite, err := eval.ReuseReport(data)
			if err != nil {
				return "", err
			}
			return eval.RenderReuseReport(results, suite), nil
		})
		if err != nil {
			return err
		}
	}
	if want("x2") {
		err := experiment("x2", func() (string, error) {
			rows, err := eval.MarkovOracle(data, 0.05)
			if err != nil {
				return "", err
			}
			return eval.RenderMarkovOracle(rows), nil
		})
		if err != nil {
			return err
		}
	}
	return nil
}
