// Command evaluate regenerates the paper's tables and figures from the
// benchmark suite: it compiles all 14 programs, profiles them on every
// input, runs the estimator ladder, and prints each experiment.
//
// Usage:
//
//	evaluate            # run everything
//	evaluate -exp f4    # one experiment: t1 t2 f2 f3 f4 f5a f5b f5c f6 f7 f9 f10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"staticest/internal/eval"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (t1 t2 f2 f3 f4 f5a f5b f5c f6 f7 f9 f10 x1 x2 all)")
	flag.Parse()

	if err := run(strings.ToLower(*exp)); err != nil {
		fmt.Fprintf(os.Stderr, "evaluate: %v\n", err)
		os.Exit(1)
	}
}

func run(exp string) error {
	want := func(name string) bool { return exp == "all" || exp == name }
	section := func(s string) { fmt.Println(s) }

	if want("t1") {
		section(eval.Table1())
	}
	if want("t2") {
		s, err := eval.Table2()
		if err != nil {
			return err
		}
		section(s)
	}
	if want("f3") {
		s, err := eval.Figure3()
		if err != nil {
			return err
		}
		section(s)
	}
	if want("f6") {
		s, err := eval.Figure6()
		if err != nil {
			return err
		}
		section(s)
	}
	if want("f7") {
		s, err := eval.Figure7()
		if err != nil {
			return err
		}
		section(s)
	}

	needSuite := false
	for _, e := range []string{"f2", "f4", "f5a", "f5b", "f5c", "f9", "f10", "x1", "x2"} {
		if want(e) {
			needSuite = true
		}
	}
	if !needSuite {
		return nil
	}
	data, err := eval.LoadSuiteCached()
	if err != nil {
		return err
	}

	if want("f2") {
		rows, err := eval.Figure2(data)
		if err != nil {
			return err
		}
		section(eval.RenderFigure2(rows))
	}
	if want("f4") {
		rows, err := eval.Figure4(data)
		if err != nil {
			return err
		}
		section(eval.RenderFigure4(rows))
	}
	if want("f5a") || want("f5c") {
		rows, err := eval.Figure5(data, 0.25)
		if err != nil {
			return err
		}
		if want("f5a") {
			section(eval.RenderFigure5a(rows))
		}
		if want("f5c") {
			section(eval.RenderFigure5bc(rows, 25, "c"))
		}
	}
	if want("f5b") {
		rows, err := eval.Figure5(data, 0.10)
		if err != nil {
			return err
		}
		section(eval.RenderFigure5bc(rows, 10, "b"))
	}
	if want("f9") {
		rows, err := eval.Figure9(data)
		if err != nil {
			return err
		}
		section(eval.RenderFigure9(rows))
	}
	if want("f10") {
		var compress *eval.ProgramData
		for _, d := range data {
			if d.Prog.Name == "compress" {
				compress = d
			}
		}
		curves, err := eval.Figure10(compress, 0.55)
		if err != nil {
			return err
		}
		section(eval.RenderFigure10(curves))
	}
	if want("x1") {
		rows, err := eval.CutoffSweep(data,
			[]float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40, 0.50})
		if err != nil {
			return err
		}
		section(eval.RenderCutoffSweep(rows))
	}
	if want("x2") {
		rows, err := eval.MarkovOracle(data, 0.05)
		if err != nil {
			return err
		}
		section(eval.RenderMarkovOracle(rows))
	}
	return nil
}
