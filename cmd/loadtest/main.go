// Command loadtest replays generated programs against a running serve
// instance at a target request rate and reports the client-observed
// latency distribution. It is the load half of the serving story: the
// sharded unit cache and the batch endpoint claim production-rate
// estimation, and this driver is how that claim is exercised outside
// the Go benchmark harness — real HTTP, real JSON, a configurable
// cache hit/miss mix, and honest 429 handling.
//
// The workload is built from internal/gen: a hot set of programs that
// the server will keep cached (the hit side of the mix) and a stream of
// unique cold programs (each one a compile). -hit sets the fraction of
// requests drawn from the hot set; -batch switches from /v1/estimate to
// /v1/batch with that many items per request. Shed requests (429)
// honor Retry-After and retry; their end-to-end latency — including
// the backoff — is what the percentiles report, because that is what a
// client actually waits.
//
// The exit status makes it CI-usable: any 5xx or transport error
// fails, and -max-p99 turns the p99 into an assertion.
//
// Usage:
//
//	loadtest -addr localhost:8080 -duration 20s -rps 50
//	loadtest -addr localhost:8080 -rps 200 -hit 0.95 -batch 16 -j 16
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"staticest/internal/cliutil"
	"staticest/internal/gen"
	"staticest/internal/obs"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "serve instance to drive")
	duration := flag.Duration("duration", 20*time.Second, "how long to send load")
	rps := flag.Float64("rps", 50, "target requests per second (0 = unthrottled)")
	hit := flag.Float64("hit", 0.9, "fraction of requests drawn from the hot (cached) program set")
	hot := flag.Int("hot", 8, "hot-set size (distinct programs the server keeps cached)")
	batch := flag.Int("batch", 1, "items per request (1 = POST /v1/estimate, >1 = POST /v1/batch)")
	jobs := flag.Int("j", 8, "concurrent client workers")
	seed := flag.Int64("seed", 1, "program-generator seed")
	maxP99 := flag.Duration("max-p99", 0, "fail if request p99 exceeds this (0 = report only)")
	trace := flag.String("trace", "", "write JSONL trace events to this file (- for stderr)")
	flag.Parse()
	if flag.NArg() > 0 || *hot < 1 || *batch < 1 || *jobs < 1 || *hit < 0 || *hit > 1 {
		fmt.Fprintln(os.Stderr, "usage: loadtest [flags]")
		flag.Usage()
		os.Exit(2)
	}
	o, closeObs, err := cliutil.Observability(*trace, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadtest: %v\n", err)
		os.Exit(1)
	}
	err = run(*addr, *duration, *rps, *hit, *hot, *batch, *jobs, *seed, *maxP99, o)
	closeObs()
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadtest: %v\n", err)
		os.Exit(1)
	}
}

// driver holds the prepared workload and the shared result counters.
type driver struct {
	base  string
	batch int
	hit   float64

	hot  [][]byte // request bodies served from the warm cache
	cold [][]byte // unique-fingerprint bodies: every request compiles

	lat     *obs.Histogram // end-to-end request latency, retries included
	sent    atomic.Int64
	ok      atomic.Int64
	shed    atomic.Int64 // 429s observed (each retried)
	failed  atomic.Int64 // 4xx/5xx other than 429
	server5 atomic.Int64 // 5xx subset of failed
	items   atomic.Int64 // estimate payloads received (batch counts per item)
}

func run(addr string, duration time.Duration, rps, hitFrac float64, hot, batchN, jobs int, seed int64, maxP99 time.Duration, o *obs.Observer) error {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}

	lat := obs.NewHistogram("loadtest_request_seconds")
	if o != nil {
		lat = o.Histogram("loadtest_request_seconds")
	}
	d := &driver{base: base, batch: batchN, hit: hitFrac, lat: lat}

	// Pre-build every request body: the driver must not spend its send
	// budget generating C programs. Hot bodies repeat (cache hits after
	// first touch); cold bodies are distinct programs, enough that a
	// full-length unthrottled run does not wrap around into accidental
	// hits.
	g := gen.New(seed)
	for i := 0; i < hot; i++ {
		d.hot = append(d.hot, g.Program())
	}
	coldCount := 4096
	for i := 0; i < coldCount; i++ {
		d.cold = append(d.cold, g.Program())
	}

	fmt.Printf("loadtest: addr=%s duration=%s rps=%s hit=%.2f hot=%d batch=%d workers=%d seed=%d\n",
		addr, duration, rateString(rps), hitFrac, hot, batchN, jobs, seed)

	var ticker *time.Ticker
	var ticks <-chan time.Time
	if rps > 0 {
		ticker = time.NewTicker(time.Duration(float64(time.Second) / rps))
		ticks = ticker.C
		defer ticker.Stop()
	}

	start := time.Now()
	deadline := time.After(duration)
	stop := make(chan struct{})
	go func() { <-deadline; close(stop) }()

	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if ticks != nil {
					select {
					case <-ticks:
					case <-stop:
						return
					}
				}
				if err := d.request(rng); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return firstErr
	}

	s := d.lat.Summarize()
	achieved := float64(d.sent.Load()) / elapsed.Seconds()
	fmt.Printf("loadtest: %d requests in %.1fs (%.1f req/s achieved), %d items, %d ok, %d shed(429), %d failed (%d of them 5xx)\n",
		d.sent.Load(), elapsed.Seconds(), achieved, d.items.Load(),
		d.ok.Load(), d.shed.Load(), d.failed.Load(), d.server5.Load())
	fmt.Printf("loadtest: latency p50=%.3fms p90=%.3fms p99=%.3fms p999=%.3fms (n=%d)\n",
		s.P50*1e3, s.P90*1e3, s.P99*1e3, s.P999*1e3, s.Count)

	if err := d.printServerStatus(); err != nil {
		fmt.Printf("loadtest: server status unavailable: %v\n", err)
	}

	if d.server5.Load() > 0 {
		return fmt.Errorf("%d server errors (5xx)", d.server5.Load())
	}
	if d.failed.Load() > 0 {
		return fmt.Errorf("%d failed requests", d.failed.Load())
	}
	if maxP99 > 0 && s.P99 > maxP99.Seconds() {
		return fmt.Errorf("p99 %.3fms exceeds bound %s", s.P99*1e3, maxP99)
	}
	return nil
}

// body picks one source according to the hit/miss mix. Cold picks walk
// the unique pool so each is a fresh fingerprint.
func (d *driver) body(rng *rand.Rand, coldIdx *int) []byte {
	if rng.Float64() < d.hit {
		return d.hot[rng.Intn(len(d.hot))]
	}
	src := d.cold[*coldIdx%len(d.cold)]
	*coldIdx++
	return src
}

// request sends one estimate or batch request, retrying 429s per their
// Retry-After hint. Only transport errors are returned (they abort the
// worker); HTTP-level failures are counted and the run keeps going.
func (d *driver) request(rng *rand.Rand) error {
	var coldIdx = rng.Intn(4096) // stagger workers' cold pools
	path := "/v1/estimate"
	var payload []byte
	if d.batch > 1 {
		path = "/v1/batch"
		var b bytes.Buffer
		b.WriteString(`{"items":[`)
		for i := 0; i < d.batch; i++ {
			if i > 0 {
				b.WriteByte(',')
			}
			item, _ := json.Marshal(struct {
				Source string `json:"source"`
			}{string(d.body(rng, &coldIdx))})
			b.Write(item)
		}
		b.WriteString(`]}`)
		payload = b.Bytes()
	} else {
		payload, _ = json.Marshal(struct {
			Source string `json:"source"`
		}{string(d.body(rng, &coldIdx))})
	}

	d.sent.Add(1)
	start := time.Now()
	defer d.lat.ObserveSince(start)
	for attempt := 0; ; attempt++ {
		resp, err := http.Post(d.base+path, "application/json", bytes.NewReader(payload))
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusOK:
			d.ok.Add(1)
			d.items.Add(int64(d.batch))
			return nil
		case resp.StatusCode == http.StatusTooManyRequests && attempt < 10:
			d.shed.Add(1)
			wait := time.Second
			if ra := resp.Header.Get("Retry-After"); ra != "" {
				if secs, err := time.ParseDuration(ra + "s"); err == nil {
					wait = secs
				}
			}
			time.Sleep(wait)
		default:
			d.failed.Add(1)
			if resp.StatusCode >= 500 {
				d.server5.Add(1)
			}
			return nil
		}
	}
}

// printServerStatus fetches /v1/debug/status and prints the server-side
// view of the run: cache shape, hit ratio, batch items.
func (d *driver) printServerStatus() error {
	resp, err := http.Get(d.base + "/v1/debug/status")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	var st struct {
		Cache struct {
			Units    int     `json:"units"`
			Shards   int     `json:"shards"`
			Hits     int64   `json:"hits"`
			Misses   int64   `json:"misses"`
			HitRatio float64 `json:"hit_ratio"`
		} `json:"cache"`
		Batch struct {
			Items      int64 `json:"items"`
			ItemErrors int64 `json:"item_errors"`
		} `json:"batch"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		return err
	}
	fmt.Printf("loadtest: server cache units=%d shards=%d hits=%d misses=%d hit_ratio=%.3f; batch items=%d item_errors=%d\n",
		st.Cache.Units, st.Cache.Shards, st.Cache.Hits, st.Cache.Misses, st.Cache.HitRatio,
		st.Batch.Items, st.Batch.ItemErrors)
	return nil
}

func rateString(rate float64) string {
	if rate <= 0 {
		return "unthrottled"
	}
	return fmt.Sprintf("%g/s", rate)
}
