package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeBench(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseLine(t *testing.T) {
	name, vals, ok := parseLine("BenchmarkInterpretCompress-8   30   17000000 ns/op   107027 blocks/run   244 allocs/op")
	if !ok || name != "BenchmarkInterpretCompress" {
		t.Fatalf("parseLine: name %q ok %v", name, ok)
	}
	if vals["ns/op"] != 17000000 || vals["allocs/op"] != 244 {
		t.Errorf("vals = %v", vals)
	}
	for _, bad := range []string{
		"goos: linux",
		"PASS",
		"ok  \tstaticest\t9.502s",
		"BenchmarkX-8 garbage ns/op",
	} {
		if _, _, ok := parseLine(bad); ok {
			t.Errorf("parseLine(%q) unexpectedly parsed", bad)
		}
	}
	// Sub-benchmark names keep their slash path; only the GOMAXPROCS
	// suffix is stripped.
	name, _, ok = parseLine("BenchmarkProbeProfiling/sparse-16 30 100 ns/op")
	if !ok || name != "BenchmarkProbeProfiling/sparse" {
		t.Errorf("sub-benchmark name = %q ok %v", name, ok)
	}
}

func TestMedianAggregation(t *testing.T) {
	p, err := parseFile(writeBench(t, "m.bench", `
BenchmarkX-8 10 100 ns/op 5 allocs/op
BenchmarkX-8 10 300 ns/op 5 allocs/op
BenchmarkX-8 10 200 ns/op 6 allocs/op
`))
	if err != nil {
		t.Fatal(err)
	}
	if got := median(p["BenchmarkX"]["ns/op"]); got != 200 {
		t.Errorf("median ns/op = %v, want 200", got)
	}
	if got := median(p["BenchmarkX"]["allocs/op"]); got != 5 {
		t.Errorf("median allocs/op = %v, want 5", got)
	}
}

func TestDiffGates(t *testing.T) {
	base := map[string]samples{
		"BenchmarkA": {"ns/op": {100}, "allocs/op": {10}},
		"BenchmarkB": {"ns/op": {100}, "allocs/op": {10}},
		"BenchmarkC": {"ns/op": {100}, "allocs/op": {10}},
		"BenchmarkD": {"ns/op": {100}, "allocs/op": {10}},
	}
	head := map[string]samples{
		"BenchmarkA": {"ns/op": {110}, "allocs/op": {11}}, // within both gates
		"BenchmarkB": {"ns/op": {130}, "allocs/op": {10}}, // ns/op regression
		"BenchmarkC": {"ns/op": {90}, "allocs/op": {20}},  // allocs regression
		// BenchmarkD missing: gate narrowing must fail
		"BenchmarkE": {"ns/op": {1}, "allocs/op": {1}}, // new, not gated
	}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if got := diff(devnull, base, head, 0.15); got != 3 {
		t.Errorf("diff regressions = %d, want 3 (ns/op, allocs/op, missing)", got)
	}
	if got := diff(devnull, base, base, 0.15); got != 0 {
		t.Errorf("self-diff regressions = %d, want 0", got)
	}
}

func TestParseFileRejectsEmpty(t *testing.T) {
	if _, err := parseFile(writeBench(t, "empty.bench", "PASS\nok\tx\t1s\n")); err == nil {
		t.Error("parseFile accepted output with no Benchmark lines")
	}
}
