// Command benchdiff compares two `go test -bench` outputs and fails on
// performance regressions — the comparator behind the bench-gate CI job.
// It is a dependency-free benchstat substitute with an exit-code
// contract: it aggregates multi-sample runs (-count N) by median,
// prints a delta table, and exits non-zero when the head measurement
// regresses past the thresholds.
//
// Gates:
//   - ns/op: median regression beyond -ns-threshold (default 15%) fails.
//   - allocs/op: any median increase beyond two allocations fails (the
//     slack absorbs one-off samples shifted by background GC timing;
//     real alloc regressions move in much larger steps).
//   - a benchmark present in the base output but missing from the head
//     output fails — a silently narrowed filter must not pass the gate.
//
// Usage:
//
//	benchdiff [-ns-threshold 0.15] base.bench head.bench
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	nsThreshold := flag.Float64("ns-threshold", 0.15,
		"maximum tolerated fractional ns/op increase (0.15 = +15%)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-ns-threshold frac] base.bench head.bench")
		os.Exit(2)
	}
	base, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	head, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	regressions := diff(os.Stdout, base, head, *nsThreshold)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s)\n", regressions)
		os.Exit(1)
	}
}

// samples holds every recorded value of one metric of one benchmark,
// in input order (one entry per -count sample).
type samples map[string][]float64 // unit -> values

func parseFile(path string) (map[string]samples, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]samples{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, vals, ok := parseLine(sc.Text())
		if !ok {
			continue
		}
		s := out[name]
		if s == nil {
			s = samples{}
			out[name] = s
		}
		for unit, v := range vals {
			s[unit] = append(s[unit], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no Benchmark lines", path)
	}
	return out, nil
}

// parseLine splits one benchmark result line into its name (GOMAXPROCS
// suffix stripped, so base and head machines may differ) and its
// value/unit pairs: "BenchmarkX-8 30 123 ns/op 4 allocs/op" ->
// "BenchmarkX", {ns/op: 123, allocs/op: 4}.
func parseLine(line string) (string, map[string]float64, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", nil, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	if _, err := strconv.Atoi(fields[1]); err != nil {
		return "", nil, false
	}
	vals := map[string]float64{}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", nil, false
		}
		vals[fields[i+1]] = v
	}
	if len(vals) == 0 {
		return "", nil, false
	}
	return name, vals, true
}

func median(v []float64) float64 {
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// allocSlack is the tolerated absolute median allocs/op increase;
// background GC timing can shift an isolated sample by an allocation
// or two, and real regressions move in far larger steps.
const allocSlack = 2.0

// diff prints the comparison table and returns the regression count.
func diff(w *os.File, base, head map[string]samples, nsThreshold float64) int {
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)
	regressions := 0
	fmt.Fprintf(w, "%-44s %14s %14s %8s\n", "benchmark", "base", "head", "delta")
	for _, n := range names {
		h, ok := head[n]
		if !ok {
			fmt.Fprintf(w, "%-44s missing from head output: FAIL\n", n)
			regressions++
			continue
		}
		b := base[n]
		for _, unit := range []string{"ns/op", "allocs/op"} {
			bv, hv := b[unit], h[unit]
			if len(bv) == 0 || len(hv) == 0 {
				continue
			}
			bm, hm := median(bv), median(hv)
			delta := 0.0
			if bm != 0 {
				delta = (hm - bm) / bm
			}
			verdict := ""
			switch unit {
			case "ns/op":
				if hm > bm*(1+nsThreshold) {
					verdict = "  FAIL (>+" + strconv.FormatFloat(nsThreshold*100, 'f', -1, 64) + "%)"
					regressions++
				}
			case "allocs/op":
				if hm > bm+allocSlack {
					verdict = "  FAIL (allocs/op increased)"
					regressions++
				}
			}
			fmt.Fprintf(w, "%-44s %14s %14s %+7.1f%%%s\n",
				n+" "+unit, fmtVal(bm), fmtVal(hm), delta*100, verdict)
		}
	}
	for n := range head {
		if _, ok := base[n]; !ok {
			fmt.Fprintf(w, "%-44s (new benchmark, not gated)\n", n)
		}
	}
	return regressions
}

func fmtVal(v float64) string {
	if v == float64(int64(v)) && v < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 2, 64)
}
