// Command estimate runs the paper's static estimators over a C source
// file and prints ranked basic-block, function-invocation, and call-site
// frequency estimates — the compile-time profile an optimizer would
// consume.
//
// With -explain the command instead runs the program once under the
// profiling interpreter and prints the attribution report: which branch
// heuristic decided each site, how each heuristic scored against the
// measured outcomes, and where the per-function estimates diverge from
// the profile. Arguments after file.c become the program's argv; -in
// feeds its stdin.
//
// With -reuse the command prints static memory reuse-distance
// profiles instead: for each named block-frequency estimator it
// derives per-reference reuse distances from loop structure and array
// footprints (see internal/reuse) and summarizes the hottest
// references.
//
// Usage:
//
//	estimate [-intra loop|smart|markov] [-inter direct|markov] [-func name] file.c
//	estimate -reuse loop,smart,markov file.c
//	estimate -explain [-in input-file] [-steps n] [-trace file|-] file.c [args...]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"staticest"
	"staticest/internal/cliutil"
	"staticest/internal/core"
	"staticest/internal/eval"
)

func main() {
	intra := flag.String("intra", "smart", "intra-procedural estimator: loop, smart, or markov")
	inter := flag.String("inter", "markov", "inter-procedural estimator: call_site, direct, all_rec, all_rec2, or markov")
	fnName := flag.String("func", "", "limit block output to one function")
	top := flag.Int("top", 10, "how many entries to print per ranking")
	explain := flag.Bool("explain", false, "profile the program and print per-heuristic attribution")
	reuseList := flag.String("reuse", "", "print static reuse-distance profiles for these estimators (comma-separated: loop, smart, markov)")
	inFile := flag.String("in", "", "file fed to the program's stdin (-explain only)")
	maxSteps := flag.Int64("steps", 0, "block-execution budget for -explain (0 = default)")
	cutoff := flag.Float64("cutoff", 0.05, "weight-matching cutoff for -explain scores")
	trace := flag.String("trace", "", "write JSONL trace events to this file (- for stderr)")
	flag.Parse()

	usage := func(err error) {
		fmt.Fprintf(os.Stderr, "estimate: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if flag.NArg() < 1 {
		usage(fmt.Errorf("missing file.c argument"))
	}
	if flag.NArg() > 1 && !*explain {
		usage(fmt.Errorf("program arguments are only meaningful with -explain"))
	}
	if err := cliutil.CheckEnum("intra", *intra, "loop", "smart", "markov"); err != nil {
		usage(err)
	}
	if err := cliutil.CheckEnum("inter", *inter, "call_site", "direct", "all_rec", "all_rec2", "markov"); err != nil {
		usage(err)
	}
	reuseKinds, err := cliutil.CheckEnums("reuse", *reuseList, "loop", "smart", "markov")
	if err != nil {
		usage(err)
	}

	o, closeObs, err := cliutil.Observability(*trace, false)
	if err != nil {
		fmt.Fprintf(os.Stderr, "estimate: %v\n", err)
		os.Exit(1)
	}
	switch {
	case *explain:
		err = runExplain(flag.Arg(0), flag.Args()[1:], *inFile, *maxSteps, *cutoff, *top, o)
	case len(reuseKinds) > 0:
		err = runReuse(flag.Arg(0), reuseKinds, *top, o)
	default:
		err = run(flag.Arg(0), *intra, *inter, *fnName, *top, o)
	}
	closeObs()
	if err != nil {
		fmt.Fprintf(os.Stderr, "estimate: %v\n", err)
		os.Exit(1)
	}
}

// runExplain profiles one run of the program and joins the static
// predictions against it.
func runExplain(path string, args []string, inFile string, maxSteps int64, cutoff float64, top int, o *staticest.Observer) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	u, err := staticest.CompileObs(path, src, o)
	if err != nil {
		return err
	}
	var stdin []byte
	if inFile != "" {
		stdin, err = os.ReadFile(inFile)
		if err != nil {
			return err
		}
	}
	res, err := u.Run(staticest.RunOptions{Args: args, Stdin: stdin, MaxSteps: maxSteps})
	if err != nil {
		return err
	}
	rep := eval.Explain(u, u.Estimate(), res.Profile, cutoff)
	fmt.Println(rep.Render(top))
	return nil
}

// runReuse prints the static reuse-distance profile each requested
// estimator derives for the program's memory references.
func runReuse(path string, kinds []string, top int, o *staticest.Observer) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	u, err := staticest.CompileObs(path, src, o)
	if err != nil {
		return err
	}
	tab := u.ReuseTable()
	if len(tab.Refs) == 0 {
		fmt.Println("no traceable memory references")
		return nil
	}
	for _, kind := range kinds {
		p, err := u.EstimateReuse(tab, kind)
		if err != nil {
			return err
		}
		total := p.Accesses()
		fmt.Printf("== reuse-distance estimate (%s): %d refs, %.0f accesses ==\n",
			kind, len(tab.Refs), total)
		if total > 0 {
			fmt.Printf("  cold %.1f%%  median distance %.0f  p90 %.0f\n",
				100*p.Total.Cold()/total, p.Total.Quantile(0.5), p.Total.Quantile(0.9))
		}
		type refRow struct {
			i int
			v float64
		}
		rows := make([]refRow, len(tab.Refs))
		for i := range tab.Refs {
			rows[i] = refRow{i, p.PerRef[i].Total()}
		}
		sort.SliceStable(rows, func(a, b int) bool { return rows[a].v > rows[b].v })
		for i, r := range rows {
			if i >= top || r.v <= 0 {
				break
			}
			ref := &tab.Refs[r.i]
			h := &p.PerRef[r.i]
			fmt.Printf("  %-32s accesses %10.0f  footprint %6.0f  median %8.0f\n",
				ref.Name(), r.v, ref.Footprint, h.Quantile(0.5))
		}
		fmt.Println()
	}
	return nil
}

func run(path, intra, inter, fnName string, top int, o *staticest.Observer) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	u, err := staticest.CompileObs(path, src, o)
	if err != nil {
		return err
	}
	est := u.Estimate()

	pickIntra := func(i int) *core.IntraResult {
		switch intra {
		case "loop":
			return est.IntraLoop[i]
		case "markov":
			return est.IntraMarkov[i]
		default:
			return est.IntraSmart[i]
		}
	}
	var inv []float64
	switch inter {
	case "call_site":
		inv = est.Inter.CallSite
	case "direct":
		inv = est.Inter.Direct
	case "all_rec":
		inv = est.Inter.AllRec
	case "all_rec2":
		inv = est.Inter.AllRec2
	default:
		inv = est.InterMarkov.Inv
	}

	fmt.Printf("== function invocation estimates (%s) ==\n", inter)
	type fnRow struct {
		name string
		v    float64
	}
	rows := make([]fnRow, len(u.Sem.Funcs))
	for i, fd := range u.Sem.Funcs {
		rows[i] = fnRow{fd.Name(), inv[i]}
	}
	sort.SliceStable(rows, func(a, b int) bool { return rows[a].v > rows[b].v })
	for i, r := range rows {
		if i >= top {
			break
		}
		fmt.Printf("  %-24s %10.3f\n", r.name, r.v)
	}

	fmt.Printf("\n== basic-block estimates (%s, per function entry) ==\n", intra)
	for i, fd := range u.Sem.Funcs {
		if fnName != "" && fd.Name() != fnName {
			continue
		}
		res := pickIntra(i)
		fmt.Printf("%s:\n", fd.Name())
		g := u.CFG.Graphs[i]
		for _, blk := range g.Blocks {
			fmt.Printf("  b%-3d %-12s %8.3f\n", blk.ID, blk.Name, res.BlockFreq[blk.ID])
		}
	}

	fmt.Printf("\n== hottest call sites (%s x %s, indirect sites excluded) ==\n", intra, inter)
	siteFreq := est.SiteFreqMarkov
	if inter != "markov" {
		siteFreq = est.SiteFreqDirect
	}
	type siteRow struct {
		desc string
		v    float64
	}
	var sites []siteRow
	for _, s := range u.Sem.CallSites {
		if s.Indirect() {
			continue
		}
		sites = append(sites, siteRow{
			fmt.Sprintf("%s -> %s (%s)", s.Caller.Name(), s.Callee.Name, s.Call.Pos()),
			siteFreq[s.ID],
		})
	}
	sort.SliceStable(sites, func(a, b int) bool { return sites[a].v > sites[b].v })
	for i, s := range sites {
		if i >= top {
			break
		}
		fmt.Printf("  %-48s %10.3f\n", s.desc, s.v)
	}
	return nil
}
