// Command estimate runs the paper's static estimators over a C source
// file and prints ranked basic-block, function-invocation, and call-site
// frequency estimates — the compile-time profile an optimizer would
// consume.
//
// Usage:
//
//	estimate [-intra loop|smart|markov] [-inter direct|markov] [-func name] file.c
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"staticest"
	"staticest/internal/core"
)

func main() {
	intra := flag.String("intra", "smart", "intra-procedural estimator: loop, smart, or markov")
	inter := flag.String("inter", "markov", "inter-procedural estimator: call_site, direct, all_rec, all_rec2, or markov")
	fnName := flag.String("func", "", "limit block output to one function")
	top := flag.Int("top", 10, "how many entries to print per ranking")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: estimate [flags] file.c")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *intra, *inter, *fnName, *top); err != nil {
		fmt.Fprintf(os.Stderr, "estimate: %v\n", err)
		os.Exit(1)
	}
}

func run(path, intra, inter, fnName string, top int) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	u, err := staticest.Compile(path, src)
	if err != nil {
		return err
	}
	est := u.Estimate()

	pickIntra := func(i int) *core.IntraResult {
		switch intra {
		case "loop":
			return est.IntraLoop[i]
		case "markov":
			return est.IntraMarkov[i]
		default:
			return est.IntraSmart[i]
		}
	}
	var inv []float64
	switch inter {
	case "call_site":
		inv = est.Inter.CallSite
	case "direct":
		inv = est.Inter.Direct
	case "all_rec":
		inv = est.Inter.AllRec
	case "all_rec2":
		inv = est.Inter.AllRec2
	default:
		inv = est.InterMarkov.Inv
	}

	fmt.Printf("== function invocation estimates (%s) ==\n", inter)
	type fnRow struct {
		name string
		v    float64
	}
	rows := make([]fnRow, len(u.Sem.Funcs))
	for i, fd := range u.Sem.Funcs {
		rows[i] = fnRow{fd.Name(), inv[i]}
	}
	sort.SliceStable(rows, func(a, b int) bool { return rows[a].v > rows[b].v })
	for i, r := range rows {
		if i >= top {
			break
		}
		fmt.Printf("  %-24s %10.3f\n", r.name, r.v)
	}

	fmt.Printf("\n== basic-block estimates (%s, per function entry) ==\n", intra)
	for i, fd := range u.Sem.Funcs {
		if fnName != "" && fd.Name() != fnName {
			continue
		}
		res := pickIntra(i)
		fmt.Printf("%s:\n", fd.Name())
		g := u.CFG.Graphs[i]
		for _, blk := range g.Blocks {
			fmt.Printf("  b%-3d %-12s %8.3f\n", blk.ID, blk.Name, res.BlockFreq[blk.ID])
		}
	}

	fmt.Printf("\n== hottest call sites (%s x %s, indirect sites excluded) ==\n", intra, inter)
	siteFreq := est.SiteFreqMarkov
	if inter != "markov" {
		siteFreq = est.SiteFreqDirect
	}
	type siteRow struct {
		desc string
		v    float64
	}
	var sites []siteRow
	for _, s := range u.Sem.CallSites {
		if s.Indirect() {
			continue
		}
		sites = append(sites, siteRow{
			fmt.Sprintf("%s -> %s (%s)", s.Caller.Name(), s.Callee.Name, s.Call.Pos()),
			siteFreq[s.ID],
		})
	}
	sort.SliceStable(sites, func(a, b int) bool { return sites[a].v > sites[b].v })
	for i, s := range sites {
		if i >= top {
			break
		}
		fmt.Printf("  %-48s %10.3f\n", s.desc, s.v)
	}
	return nil
}
