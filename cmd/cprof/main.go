// Command cprof interprets a C program under the profiling interpreter
// and dumps the measured profile: per-function invocation counts, block
// counts, branch outcomes, and call-site counts — what an instrumented
// binary would report.
//
// With -instr sparse the run uses optimal probe placement instead of
// full instrumentation: counters go only on the off-forest CFG arcs
// chosen by the planner, and the complete profile is reconstructed from
// the probe vector afterwards (bit-identical to a full run).
//
// The observability flags expose the run's internals: -trace writes the
// JSONL span/counter stream (compile phases, the interpreter run, probe
// planning) and -metrics prints the text exposition, whose interp_*
// counters exactly match the dumped profile's own totals.
//
// -engine selects the execution engine: the default bytecode engine or
// the reference tree-walking evaluator (both produce identical
// profiles; tree exists for cross-checking and debugging the lowering).
//
// Usage:
//
//	cprof [-in input-file] [-steps n] [-instr full|sparse]
//	      [-engine bytecode|tree] [-trace file|-] [-metrics] file.c [args...]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"staticest"
	"staticest/internal/cliutil"
	"staticest/internal/obs"
)

func main() {
	inFile := flag.String("in", "", "file fed to the program's stdin")
	maxSteps := flag.Int64("steps", 0, "block-execution budget (0 = default)")
	blocks := flag.Bool("blocks", false, "dump per-block counts")
	instr := flag.String("instr", "full", "instrumentation mode: full or sparse")
	engine := flag.String("engine", "bytecode", "execution engine: bytecode or tree")
	trace := flag.String("trace", "", "write JSONL trace events to this file (- for stderr)")
	metrics := flag.Bool("metrics", false, "print the metrics exposition after the run")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: cprof [flags] file.c [args...]")
		flag.Usage()
		os.Exit(2)
	}
	if err := cliutil.CheckEnum("instr", *instr, "full", "sparse"); err != nil {
		fmt.Fprintf(os.Stderr, "cprof: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	if err := cliutil.CheckEnum("engine", *engine, "bytecode", "tree"); err != nil {
		fmt.Fprintf(os.Stderr, "cprof: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	o, closeObs, err := cliutil.Observability(*trace, *metrics)
	if err != nil {
		fmt.Fprintf(os.Stderr, "cprof: %v\n", err)
		os.Exit(1)
	}
	err = run(flag.Arg(0), flag.Args()[1:], *inFile, *maxSteps, *blocks, *instr, *engine, o)
	closeObs()
	if err != nil {
		fmt.Fprintf(os.Stderr, "cprof: %v\n", err)
		os.Exit(1)
	}
	if *metrics {
		fmt.Println("\n-- metrics --")
		o.WriteProm(os.Stdout)
	}
}

func run(path string, args []string, inFile string, maxSteps int64, blocks bool, instr, engine string, o *obs.Observer) error {
	src, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	u, err := staticest.CompileObs(path, src, o)
	if err != nil {
		return err
	}
	var stdin []byte
	if inFile != "" {
		stdin, err = os.ReadFile(inFile)
		if err != nil {
			return err
		}
	}
	opts := staticest.RunOptions{Args: args, Stdin: stdin, MaxSteps: maxSteps}
	if engine == "tree" {
		opts.Engine = staticest.EngineTree
	}
	var plan *staticest.ProbePlan
	if instr == "sparse" {
		plan = u.PlanProbes()
		opts.Instrumentation = staticest.SparseInstrumentation
		opts.Plan = plan
	}
	res, err := u.Run(opts)
	if err != nil {
		return err
	}
	if plan != nil {
		rec, rerr := staticest.Reconstruct(plan, res.Probes, nil)
		if rerr != nil {
			return fmt.Errorf("reconstructing sparse profile: %w", rerr)
		}
		res.Profile = rec
	}
	fmt.Printf("-- program output (%d bytes) --\n%s", len(res.Output), res.Output)
	fmt.Printf("-- exit %d, %d block executions, %.0f simulated cycles --\n",
		res.ExitCode, res.Steps, res.Profile.Cycles)
	if plan != nil {
		fmt.Printf("-- sparse: %d probes on %d arcs (%.1f%% of arcs probe-free), %d/%d call sites derived --\n",
			plan.ProbedArcs, plan.TotalArcs, 100*plan.ArcReduction(),
			plan.DerivedSites, len(plan.Sites))
	}
	fmt.Println()

	fmt.Println("function invocations:")
	order := make([]int, len(u.Sem.Funcs))
	for i := range order {
		order[i] = i
	}
	p := res.Profile
	sort.SliceStable(order, func(a, b int) bool {
		return p.FuncCalls[order[a]] > p.FuncCalls[order[b]]
	})
	for _, i := range order {
		fmt.Printf("  %-24s %12.0f\n", u.Sem.Funcs[i].Name(), p.FuncCalls[i])
	}

	fmt.Println("\nbranch sites (taken/not):")
	for _, bs := range u.Sem.BranchSites {
		fmt.Printf("  %-40s %10.0f %10.0f\n",
			fmt.Sprintf("%s @%s", bs.Func.Name(), bs.Stmt.Pos()),
			p.BranchTaken[bs.ID], p.BranchNot[bs.ID])
	}

	fmt.Println("\ncall sites:")
	for _, cs := range u.Sem.CallSites {
		target := "<indirect>"
		if cs.Callee != nil {
			target = cs.Callee.Name
		}
		fmt.Printf("  %-44s %10.0f\n",
			fmt.Sprintf("%s -> %s @%s", cs.Caller.Name(), target, cs.Call.Pos()),
			p.CallSiteCounts[cs.ID])
	}

	if blocks {
		fmt.Println("\nblock counts:")
		for i, fd := range u.Sem.Funcs {
			fmt.Printf("  %s:\n", fd.Name())
			for _, blk := range u.CFG.Graphs[i].Blocks {
				fmt.Printf("    b%-3d %-12s %12.0f\n", blk.ID, blk.Name,
					p.BlockCounts[i][blk.ID])
			}
		}
	}
	return nil
}
