// Command optimize runs the frequency-guided optimizer subsystem on a
// suite program: it plans and applies call-site inlining, computes a
// Pettis–Hansen block layout, and weights spill costs — all under a
// chosen frequency source — then verifies and scores the result against
// the program's measured profile.
//
// Usage:
//
//	optimize -report inline -source smart -budget 64 xlisp
//	optimize -report layout -source markov compress
//	optimize -report agree            # suite-wide decision agreement
//	optimize -report all eqntott
//
// Sources: loop, smart, markov (static estimators), profile (aggregate
// of all inputs), xprof (aggregate of held-out inputs).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"staticest"
	"staticest/internal/cliutil"
	"staticest/internal/eval"
	"staticest/internal/opt"
	"staticest/internal/profile"
	"staticest/internal/suite"
	"staticest/internal/texttab"
)

var reports = []string{"inline", "layout", "spill", "agree", "all"}

func main() {
	source := flag.String("source", "smart", "frequency source ("+strings.Join(opt.SourceKinds, " ")+")")
	budget := flag.Int("budget", opt.DefaultBudget, "inlining size budget in cloned callee blocks")
	report := flag.String("report", "all", "report to produce ("+strings.Join(reports, " ")+")")
	trace := flag.String("trace", "", "write JSONL trace events to this file (- for stderr)")
	metrics := flag.Bool("metrics", false, "print the metrics exposition after the run")
	flag.Parse()

	if err := cliutil.CheckEnum("source", *source, opt.SourceKinds...); err != nil {
		fail(err)
	}
	if err := cliutil.CheckEnum("report", *report, reports...); err != nil {
		fail(err)
	}
	if flag.NArg() > 1 || (flag.NArg() == 0 && *report != "agree") {
		fmt.Fprintln(os.Stderr, "usage: optimize [flags] <program>   (program optional for -report agree)")
		flag.Usage()
		os.Exit(2)
	}

	o, closeObs, err := cliutil.Observability(*trace, *metrics)
	if err != nil {
		fail(err)
	}
	eval.SetObserver(o)
	err = run(flag.Arg(0), *source, *report, *budget)
	closeObs()
	if err != nil {
		fail(err)
	}
	if *metrics {
		fmt.Println("-- metrics --")
		o.WriteProm(os.Stdout)
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "optimize: %v\n", err)
	os.Exit(1)
}

func run(progName, sourceKind, report string, budget int) error {
	if progName == "" {
		// agree without a program: the full suite.
		data, err := eval.LoadSuiteCached()
		if err != nil {
			return err
		}
		rows, err := eval.OptReport(data)
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderOptReport(rows))
		return nil
	}

	p, err := suite.ByName(progName)
	if err != nil {
		return err
	}
	d, err := eval.Load(p)
	if err != nil {
		return err
	}
	self, err := profile.Aggregate(d.Profiles)
	if err != nil {
		return err
	}
	selfSrc := d.Unit.ProfileFreqSource(self, "profile")
	src, err := buildSource(d, self, sourceKind)
	if err != nil {
		return err
	}

	want := func(name string) bool { return report == "all" || report == name }
	if want("inline") {
		if err := inlineReport(d, src, budget); err != nil {
			return err
		}
	}
	if want("layout") {
		layoutReport(d, src, selfSrc)
	}
	if want("spill") {
		spillReport(d, src, selfSrc)
	}
	if want("agree") {
		rows, err := eval.OptProgram(d)
		if err != nil {
			return err
		}
		fmt.Println(eval.RenderOptReport(rows))
	}
	return nil
}

// buildSource resolves a source name against one program's data.
func buildSource(d *eval.ProgramData, self *profile.Profile, kind string) (*opt.Source, error) {
	switch kind {
	case "profile":
		return d.Unit.ProfileFreqSource(self, "profile"), nil
	case "xprof":
		xp := self
		if len(d.Profiles) > 1 {
			var err error
			if xp, err = profile.Aggregate(d.Profiles[1:]); err != nil {
				return nil, err
			}
		}
		return d.Unit.ProfileFreqSource(xp, "xprof"), nil
	default:
		return opt.EstimateSource(d.Unit.CFG, d.Est, kind)
	}
}

// inlineReport plans, applies, re-profiles, and verifies inlining.
func inlineReport(d *eval.ProgramData, src *opt.Source, budget int) error {
	u := d.Unit
	plan := u.PlanInline(src, budget)
	fmt.Printf("== inline: %s, source %s, budget %d blocks ==\n",
		d.Prog.Name, src.Name, plan.Budget)
	fmt.Printf("%d eligible direct call sites, %d chosen (%d blocks of budget used)\n\n",
		len(plan.Eligible), len(plan.Chosen), plan.CostUsed)

	t := texttab.New("rank", "site", "call", "est freq", "cost").AlignRight(0, 1, 3, 4)
	for i, dec := range plan.Chosen {
		t.Row(i+1, dec.Site,
			u.Call.FuncName(dec.Caller)+" -> "+u.Call.FuncName(dec.Callee),
			fmt.Sprintf("%.1f", dec.Freq), dec.Cost)
	}
	fmt.Print(t.String())

	nu, res, err := u.Inline(plan)
	if err != nil {
		return err
	}
	var totalCalls, eliminated float64
	for i, in := range d.Prog.Inputs {
		r, err := nu.Run(staticest.RunOptions{Args: in.Args, Stdin: in.Stdin})
		if err != nil {
			return fmt.Errorf("inlined %s/%s: %w", d.Prog.Name, in.Name, err)
		}
		orig := d.Profiles[i]
		folded := opt.FoldProfile(u.CFG, res, r.Profile)
		if bad := opt.CheckEquivalence(u.CFG, res, orig, folded); len(bad) > 0 {
			return fmt.Errorf("inlined %s/%s: profile mismatch: %s",
				d.Prog.Name, in.Name, strings.Join(bad, "; "))
		}
		for _, c := range orig.FuncCalls {
			totalCalls += c
		}
		eliminated += opt.CallsEliminated(orig, res.InlinedSites)
	}
	fmt.Printf("\n%d blocks cloned; profile-equivalent on all %d inputs\n",
		res.BlocksCloned, len(d.Prog.Inputs))
	if totalCalls > 0 {
		fmt.Printf("dynamic calls eliminated: %.0f of %.0f (%.1f%%)\n",
			eliminated, totalCalls, 100*eliminated/totalCalls)
	}
	fmt.Println()
	return nil
}

// layoutReport chains blocks under the source and scores fall-through
// against the profile, bracketed by source order and the profile's own
// layout; function ordering is scored by weighted call distance.
func layoutReport(d *eval.ProgramData, src, selfSrc *opt.Source) {
	u := d.Unit
	fmt.Printf("== layout: %s, source %s ==\n", d.Prog.Name, src.Name)
	t := texttab.New("layout", "fallthru%", "transfers").AlignRight(1, 2)
	for _, c := range []struct {
		name string
		lay  *opt.Layout
	}{
		{"src-order", opt.SourceOrderLayout(u.CFG)},
		{src.Name, opt.ComputeLayout(u.CFG, src, u.Observer())},
		{"profile", opt.ComputeLayout(u.CFG, selfSrc, u.Observer())},
	} {
		rate, _, total := opt.FallThroughRate(u.CFG, c.lay, selfSrc)
		t.Row(c.name, fmt.Sprintf("%.1f", rate*100), fmt.Sprintf("%.0f", total))
	}
	fmt.Print(t.String())

	order := opt.FuncOrder(u.Call, src)
	names := make([]string, 0, len(order))
	for _, fi := range order {
		names = append(names, u.Call.FuncName(fi))
	}
	fmt.Printf("\nfunction order (%s): %s\n", src.Name, strings.Join(names, " "))
	fmt.Printf("weighted call distance: %.0f (source) vs %.0f (identity)\n\n",
		opt.WeightedCallDistance(order, u.Call, selfSrc),
		opt.WeightedCallDistance(identity(len(order)), u.Call, selfSrc))
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// spillReport ranks variables by frequency-weighted use count under the
// source and reports agreement with the profile's ranking per function.
func spillReport(d *eval.ProgramData, src, selfSrc *opt.Source) {
	u := d.Unit
	fmt.Printf("== spill weights: %s, source %s ==\n", d.Prog.Name, src.Name)
	type frow struct {
		fi   int
		tau  float64
		vars int
	}
	var rows []frow
	for fi := range u.Sem.Funcs {
		if selfSrc.Func[fi] == 0 {
			continue
		}
		ws := opt.SpillWeights(u.CFG, fi, src)
		wp := opt.SpillWeights(u.CFG, fi, selfSrc)
		if len(ws) < 2 {
			continue
		}
		a := make([]float64, len(ws))
		b := make([]float64, len(ws))
		for i := range ws {
			a[i], b[i] = ws[i].Weight, wp[i].Weight
		}
		rows = append(rows, frow{fi, opt.KendallTau(a, b), len(ws)})
	}
	sort.Slice(rows, func(a, b int) bool {
		return selfSrc.Func[rows[a].fi] > selfSrc.Func[rows[b].fi]
	})
	t := texttab.New("function", "invocations", "vars", "rank tau").AlignRight(1, 2, 3)
	var sum float64
	for _, r := range rows {
		t.Row(u.Call.FuncName(r.fi), fmt.Sprintf("%.0f", selfSrc.Func[r.fi]),
			r.vars, fmt.Sprintf("%.2f", r.tau))
		sum += r.tau
	}
	fmt.Print(t.String())
	if len(rows) > 0 {
		fmt.Printf("mean ranking tau vs profile: %.2f over %d functions\n\n",
			sum/float64(len(rows)), len(rows))
	}
}
