// Command serve runs the estimation service: a long-lived HTTP/JSON
// daemon answering estimation, profiling, optimization, and
// explainability queries over a compiled-unit cache (see
// internal/server). The full pipeline sits behind six endpoints:
//
//	POST /v1/estimate          static block/invocation/call-site estimates
//	POST /v1/profile           interpreter run, full or sparse instrumentation
//	POST /v1/optimize          inline plan / layout / spill reports
//	GET  /v1/explain           per-heuristic attribution vs a measured profile
//	POST /v1/profiles/ingest   fleet upload of one sparse probe vector
//	GET  /v1/profiles/stats    live per-unit aggregates (+ agreement rows)
//
// plus /healthz, /metrics (Prometheus text exposition, including
// per-endpoint latency histograms and runtime gauges), /v1/debug/status
// (ops snapshot), /v1/debug/slow (span trees of the slowest requests),
// and /debug/pprof/. Requests name a benchmark-suite program or ship C
// source inline; identical sources share one cached compilation
// (singleflight), so a hot source is compiled exactly once no matter
// how many clients ask.
//
// Ingested uploads close the PGO loop (see internal/ingest): they merge
// into live per-unit aggregates, and /v1/optimize with
// "freq_source":"live" plans from the fleet's measured frequencies,
// falling back to the smart static estimate for cold fingerprints.
//
// When every worker slot is busy, a request waits at most -queue-wait
// before being shed with 429 + Retry-After, so saturation degrades into
// fast, explicit backpressure instead of unbounded queueing.
//
// SIGTERM or SIGINT starts a graceful drain: in-flight requests finish
// (bounded by -drain) before the process exits.
//
// Usage:
//
//	serve -addr :8080
//	serve -addr :8080 -cache 128 -timeout 30s -j 4 -trace events.jsonl
//
//	curl -s localhost:8080/v1/estimate -d '{"program":"compress"}'
//	curl -s localhost:8080/v1/profiles/stats
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"staticest"
	"staticest/internal/cliutil"
	"staticest/internal/eval"
	"staticest/internal/obs"
	"staticest/internal/server"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "listen address")
	cache := flag.Int("cache", 64, "compiled units kept in the LRU cache")
	shards := flag.Int("cache-shards", 0, "unit-cache stripe count, rounded up to a power of two (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 60*time.Second, "per-request wall-clock budget")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget")
	maxBody := flag.Int64("max-body", 4<<20, "request body size cap in bytes")
	maxSteps := flag.Int64("max-steps", 50_000_000, "block-execution budget per served run")
	queueWait := flag.Duration("queue-wait", 500*time.Millisecond, "max wait for a worker slot before shedding with 429")
	jobs := flag.Int("j", 0, "concurrent pipeline requests (0 = GOMAXPROCS)")
	engine := flag.String("engine", "bytecode", "interpreter engine for served runs: bytecode or tree")
	trace := flag.String("trace", "", "write JSONL trace events to this file (- for stderr)")
	metrics := flag.Bool("metrics", false, "print the final metrics exposition to stderr at exit")
	flag.Parse()

	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "usage: serve [flags]")
		flag.Usage()
		os.Exit(2)
	}
	if err := cliutil.CheckEnum("engine", *engine, "bytecode", "tree"); err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}
	runEngine := staticest.EngineBytecode
	if *engine == "tree" {
		runEngine = staticest.EngineTree
	}
	eval.SetParallelism(*jobs)

	// The server requires an observability domain (its /metrics and
	// debug endpoints are part of the API), so a run without -trace or
	// -metrics still gets a live observer — just no JSONL sink.
	o, closeObs, err := cliutil.Observability(*trace, *metrics)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
	if o == nil {
		o = obs.New()
		closeObs = func() {}
	}
	eval.SetObserver(o)

	s := server.New(server.Config{
		CacheSize:      *cache,
		CacheShards:    *shards,
		MaxBodyBytes:   *maxBody,
		RequestTimeout: *timeout,
		DrainTimeout:   *drain,
		MaxSteps:       *maxSteps,
		QueueWait:      *queueWait,
		Engine:         runEngine,
		Obs:            o,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "serve: listening on %s\n", *addr)
	err = s.ListenAndServe(ctx, *addr)
	if *metrics {
		o.WriteProm(os.Stderr)
	}
	closeObs()
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "serve: drained, exiting")
}
