package staticest_test

import (
	"runtime"
	"testing"

	"staticest"
	"staticest/internal/core"
	"staticest/internal/eval"
	"staticest/internal/metric"
	"staticest/internal/suite"
)

// The benchmarks below regenerate every table and figure in the paper's
// evaluation (see DESIGN.md's per-experiment index). Scores are attached
// via b.ReportMetric, so `go test -bench=.` reports both the cost of
// regenerating an experiment and its headline result.

func loadSuite(b *testing.B) []*eval.ProgramData {
	b.Helper()
	data, err := eval.LoadSuiteCached()
	if err != nil {
		b.Fatal(err)
	}
	return data
}

func BenchmarkTable1Suite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if s := eval.Table1(); len(s) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2Strchr(b *testing.B) {
	var score20 float64
	for i := 0; i < b.N; i++ {
		_, est, actual, err := eval.StrchrData()
		if err != nil {
			b.Fatal(err)
		}
		score20 = metric.WeightMatch(est.IntraSmart[0].BlockFreq, actual, 0.20)
	}
	b.ReportMetric(score20*100, "score20%")
}

func BenchmarkFigure2BranchMissRates(b *testing.B) {
	data := loadSuite(b)
	var avg float64
	for i := 0; i < b.N; i++ {
		rows, err := eval.Figure2(data)
		if err != nil {
			b.Fatal(err)
		}
		avg = 0
		for _, r := range rows {
			avg += r.Smart
		}
		avg /= float64(len(rows))
	}
	b.ReportMetric(avg, "miss%")
}

func BenchmarkFigure4Intra(b *testing.B) {
	data := loadSuite(b)
	var avg float64
	for i := 0; i < b.N; i++ {
		rows, err := eval.Figure4(data)
		if err != nil {
			b.Fatal(err)
		}
		avg = 0
		for _, r := range rows {
			avg += r.Smart
		}
		avg /= float64(len(rows))
	}
	b.ReportMetric(avg, "smart%")
}

func benchFigure5(b *testing.B, cutoff float64) {
	data := loadSuite(b)
	var direct, markov float64
	for i := 0; i < b.N; i++ {
		rows, err := eval.Figure5(data, cutoff)
		if err != nil {
			b.Fatal(err)
		}
		direct, markov = 0, 0
		for _, r := range rows {
			direct += r.Direct
			markov += r.Markov
		}
		direct /= float64(len(rows))
		markov /= float64(len(rows))
	}
	b.ReportMetric(direct, "direct%")
	b.ReportMetric(markov, "markov%")
}

func BenchmarkFigure5aInvocationSimple(b *testing.B) {
	data := loadSuite(b)
	var callSite float64
	for i := 0; i < b.N; i++ {
		rows, err := eval.Figure5(data, 0.25)
		if err != nil {
			b.Fatal(err)
		}
		callSite = 0
		for _, r := range rows {
			callSite += r.CallSite
		}
		callSite /= float64(len(rows))
	}
	b.ReportMetric(callSite, "call_site%")
}

func BenchmarkFigure5bInvocation10(b *testing.B) { benchFigure5(b, 0.10) }
func BenchmarkFigure5cInvocation25(b *testing.B) { benchFigure5(b, 0.25) }

func BenchmarkFigure7MarkovSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.Figure7(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure9CallSites(b *testing.B) {
	data := loadSuite(b)
	var markov float64
	for i := 0; i < b.N; i++ {
		rows, err := eval.Figure9(data)
		if err != nil {
			b.Fatal(err)
		}
		markov = 0
		for _, r := range rows {
			markov += r.Markov
		}
		markov /= float64(len(rows))
	}
	b.ReportMetric(markov, "markov%")
}

func BenchmarkFigure10SelectiveOpt(b *testing.B) {
	data := loadSuite(b)
	var compress *eval.ProgramData
	for _, d := range data {
		if d.Prog.Name == "compress" {
			compress = d
		}
	}
	var knee float64
	for i := 0; i < b.N; i++ {
		curves, err := eval.Figure10(compress, 0.55)
		if err != nil {
			b.Fatal(err)
		}
		knee = curves[0].Speedups[6] // static estimate at k=6
	}
	b.ReportMetric(knee, "speedup@6")
}

// --- ablation benches (DESIGN.md section 5) --------------------------------

// ablationScore recomputes estimates for the whole suite under conf and
// returns the average Markov invocation score at 25%.
func ablationScore(b *testing.B, conf core.Config) float64 {
	data := loadSuite(b)
	total := 0.0
	for _, d := range data {
		est := d.Unit.EstimateWith(conf)
		// Score the Markov invocation estimate against each profile.
		progTotal := 0.0
		for _, p := range d.Profiles {
			progTotal += metric.WeightMatch(est.InterMarkov.Inv, p.FuncCalls, 0.25)
		}
		total += progTotal / float64(len(d.Profiles))
	}
	return total / float64(len(data)) * 100
}

func BenchmarkAblationSwitchWeighting(b *testing.B) {
	var byLabels, equal float64
	for i := 0; i < b.N; i++ {
		conf := core.DefaultConfig()
		byLabels = ablationScore(b, conf)
		conf.SwitchWeightByLabels = false
		equal = ablationScore(b, conf)
	}
	b.ReportMetric(byLabels, "bylabels%")
	b.ReportMetric(equal, "equal%")
}

func BenchmarkAblationBranchProbability(b *testing.B) {
	probs := []float64{0.6, 0.7, 0.8, 0.9}
	scores := make([]float64, len(probs))
	for i := 0; i < b.N; i++ {
		for j, p := range probs {
			conf := core.DefaultConfig()
			conf.TakenProb = p
			scores[j] = ablationScore(b, conf)
		}
	}
	for j, p := range probs {
		b.ReportMetric(scores[j], formatProbMetric(p))
	}
}

func formatProbMetric(p float64) string {
	return "p" + string('0'+byte(p*10)) + "0%"
}

func BenchmarkAblationLoopCount(b *testing.B) {
	counts := []float64{2, 5, 10, 20}
	scores := make([]float64, len(counts))
	for i := 0; i < b.N; i++ {
		for j, n := range counts {
			conf := core.DefaultConfig()
			conf.LoopCount = n
			scores[j] = ablationScore(b, conf)
		}
	}
	names := []string{"loop2%", "loop5%", "loop10%", "loop20%"}
	for j := range counts {
		b.ReportMetric(scores[j], names[j])
	}
}

func BenchmarkAblationRecursionCeiling(b *testing.B) {
	ceilings := []float64{2, 5, 10}
	scores := make([]float64, len(ceilings))
	for i := 0; i < b.N; i++ {
		for j, c := range ceilings {
			conf := core.DefaultConfig()
			conf.SCCCeiling = c
			scores[j] = ablationScore(b, conf)
		}
	}
	names := []string{"ceil2%", "ceil5%", "ceil10%"}
	for j := range ceilings {
		b.ReportMetric(scores[j], names[j])
	}
}

func BenchmarkAblationHeuristics(b *testing.B) {
	// Disable one heuristic at a time and report the branch miss rate.
	data := loadSuite(b)
	heuristics := []string{"pointer", "call", "opcode", "logical", "store", "return"}
	missWith := func(disabled string) float64 {
		total := 0.0
		for _, d := range data {
			conf := core.DefaultConfig()
			if disabled != "" {
				conf.DisabledHeuristics = map[string]bool{disabled: true}
			}
			est := d.Unit.EstimateWith(conf)
			dirs := make([]bool, len(est.Pred.Branch))
			skip := make([]bool, len(est.Pred.Branch))
			for i, bp := range est.Pred.Branch {
				dirs[i] = bp.Taken()
				skip[i] = bp.Constant
			}
			progMiss := 0.0
			for _, p := range d.Profiles {
				progMiss += metric.MissRate(dirs, p.BranchTaken, p.BranchNot, skip)
			}
			total += progMiss / float64(len(d.Profiles))
		}
		return total / float64(len(data)) * 100
	}
	var baseline float64
	drops := make([]float64, len(heuristics))
	for i := 0; i < b.N; i++ {
		baseline = missWith("")
		for j, h := range heuristics {
			drops[j] = missWith(h)
		}
	}
	b.ReportMetric(baseline, "all%")
	for j, h := range heuristics {
		b.ReportMetric(drops[j], "no_"+h+"%")
	}
}

// --- micro-benchmarks of the pipeline stages --------------------------------

func BenchmarkCompileSuiteProgram(b *testing.B) {
	prog, err := suite.ByName("xlisp")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := staticest.Compile("xlisp.c", []byte(prog.Source)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateSuiteProgram(b *testing.B) {
	prog, err := suite.ByName("gcc")
	if err != nil {
		b.Fatal(err)
	}
	u, err := prog.CompileCached()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u.Estimate()
	}
}

// BenchmarkInlineXlisp measures the optimizer subsystem's planning plus
// CFG splicing on the suite's largest program: rank every eligible call
// site under the smart estimates, select under a 200-block budget, and
// apply the transform (working-copy clone, frame relocation, block
// splicing, renumbering).
func BenchmarkInlineXlisp(b *testing.B) {
	prog, err := suite.ByName("xlisp")
	if err != nil {
		b.Fatal(err)
	}
	u, err := prog.CompileCached()
	if err != nil {
		b.Fatal(err)
	}
	src, err := u.EstimateFreqSource("smart")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var sites, cloned int
	for i := 0; i < b.N; i++ {
		plan := u.PlanInline(src, 200)
		_, res, err := u.Inline(plan)
		if err != nil {
			b.Fatal(err)
		}
		sites, cloned = len(res.InlinedSites), res.BlocksCloned
	}
	b.ReportMetric(float64(sites), "sites_inlined")
	b.ReportMetric(float64(cloned), "blocks_cloned")
}

func BenchmarkInterpretCompress(b *testing.B) {
	prog, err := suite.ByName("compress")
	if err != nil {
		b.Fatal(err)
	}
	u, err := prog.CompileCached()
	if err != nil {
		b.Fatal(err)
	}
	in := prog.Inputs[0]
	b.ReportAllocs()
	var steps int64
	for i := 0; i < b.N; i++ {
		res, err := u.Run(staticest.RunOptions{Args: in.Args, Stdin: in.Stdin})
		if err != nil {
			b.Fatal(err)
		}
		steps = res.Steps
	}
	b.ReportMetric(float64(steps), "blocks/run")
}

// BenchmarkInterpretCompressTree is the same run forced onto the
// reference tree-walking evaluator — the committed trajectory keeps
// both engines so the gap the bytecode lowering buys stays visible
// (and a silent fallback to the tree path would show up as a cliff).
func BenchmarkInterpretCompressTree(b *testing.B) {
	prog, err := suite.ByName("compress")
	if err != nil {
		b.Fatal(err)
	}
	u, err := prog.CompileCached()
	if err != nil {
		b.Fatal(err)
	}
	in := prog.Inputs[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := u.Run(staticest.RunOptions{
			Args: in.Args, Stdin: in.Stdin, Engine: staticest.EngineTree,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReuseTrace measures the memory-trace overhead on compress:
// "off" is a run with tracing disabled — the default path, whose only
// cost is a nil-map test per candidate access, pinned at parity with
// BenchmarkInterpretCompress — and "on" pays for trace collection plus
// the O(n log n) stack-distance measurement.
func BenchmarkReuseTrace(b *testing.B) {
	prog, err := suite.ByName("compress")
	if err != nil {
		b.Fatal(err)
	}
	u, err := prog.CompileCached()
	if err != nil {
		b.Fatal(err)
	}
	in := prog.Inputs[0]
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := u.Run(staticest.RunOptions{Args: in.Args, Stdin: in.Stdin}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("on", func(b *testing.B) {
		tab := u.ReuseTable()
		b.ReportAllocs()
		var accesses float64
		for i := 0; i < b.N; i++ {
			p, _, err := u.MeasureReuse(tab, staticest.RunOptions{Args: in.Args, Stdin: in.Stdin})
			if err != nil {
				b.Fatal(err)
			}
			accesses = p.Accesses()
		}
		b.ReportMetric(accesses, "accesses/run")
	})
}

// BenchmarkProbeProfiling compares full instrumentation against sparse
// probe profiling on the suite's largest program (xlisp): wall time per
// run plus the number of counter increments each mode performs. The
// sparse numbers include nothing the reconstructor can't undo — the
// recovered profile is exactly the full one (see internal/probes).
func BenchmarkProbeProfiling(b *testing.B) {
	prog, err := suite.ByName("xlisp")
	if err != nil {
		b.Fatal(err)
	}
	u, err := prog.CompileCached()
	if err != nil {
		b.Fatal(err)
	}
	in := prog.Inputs[0]
	plan := u.PlanProbes()

	// The two modes run back to back in one process; without a warm-up
	// and a collection the second mode starts against the heap the first
	// one grew, which skews the comparison by several percent.
	warm := func(b *testing.B, opts staticest.RunOptions) {
		b.Helper()
		if _, err := u.Run(opts); err != nil {
			b.Fatal(err)
		}
		runtime.GC()
		b.ResetTimer()
	}

	b.Run("full", func(b *testing.B) {
		b.ReportAllocs()
		warm(b, staticest.RunOptions{Args: in.Args, Stdin: in.Stdin})
		var incs float64
		for i := 0; i < b.N; i++ {
			res, err := u.Run(staticest.RunOptions{Args: in.Args, Stdin: in.Stdin})
			if err != nil {
				b.Fatal(err)
			}
			p := res.Profile
			incs = p.TotalBlockCount() + sum(p.FuncCalls) + sum(p.CallSiteCounts) +
				sum(p.BranchTaken) + sum(p.BranchNot)
			for _, arms := range p.SwitchArm {
				incs += sum(arms)
			}
		}
		b.ReportMetric(incs, "increments/run")
	})
	b.Run("sparse", func(b *testing.B) {
		b.ReportAllocs()
		warm(b, staticest.RunOptions{
			Args: in.Args, Stdin: in.Stdin,
			Instrumentation: staticest.SparseInstrumentation,
			Plan:            plan,
		})
		var incs float64
		for i := 0; i < b.N; i++ {
			res, err := u.Run(staticest.RunOptions{
				Args: in.Args, Stdin: in.Stdin,
				Instrumentation: staticest.SparseInstrumentation,
				Plan:            plan,
			})
			if err != nil {
				b.Fatal(err)
			}
			incs = res.Probes.Increments()
		}
		b.ReportMetric(incs, "increments/run")
		b.ReportMetric(100*plan.ArcReduction(), "arc_reduction%")
	})
}

// BenchmarkObsDisabled interprets compress with observability disabled
// (nil observer). The acceptance bar is parity (≤2%) with
// BenchmarkInterpretCompress — the identical run before the obs layer
// existed — because the nil path adds no work to the interpreter's hot
// loop: per-run counters are derived at run end from state the loop
// already maintains.
func BenchmarkObsDisabled(b *testing.B) { benchObsRun(b, nil) }

// BenchmarkObsEnabled is the same run reporting to a live observer
// (span + counters, no sink) — the cost of switching observability on.
func BenchmarkObsEnabled(b *testing.B) { benchObsRun(b, staticest.NewObserver()) }

func benchObsRun(b *testing.B, o *staticest.Observer) {
	prog, err := suite.ByName("compress")
	if err != nil {
		b.Fatal(err)
	}
	u, err := prog.CompileCached()
	if err != nil {
		b.Fatal(err)
	}
	in := prog.Inputs[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := u.Run(staticest.RunOptions{Args: in.Args, Stdin: in.Stdin, Obs: o}); err != nil {
			b.Fatal(err)
		}
	}
}

func sum(s []float64) float64 {
	var t float64
	for _, v := range s {
		t += v
	}
	return t
}

func BenchmarkExtensionCutoffSweep(b *testing.B) {
	data := loadSuite(b)
	var at50 float64
	for i := 0; i < b.N; i++ {
		rows, err := eval.CutoffSweep(data, []float64{0.05, 0.25, 0.50})
		if err != nil {
			b.Fatal(err)
		}
		at50 = rows[2].Markov
	}
	b.ReportMetric(at50, "markov@50%")
}

func BenchmarkExtensionMarkovOracle(b *testing.B) {
	data := loadSuite(b)
	var oracle float64
	for i := 0; i < b.N; i++ {
		rows, err := eval.MarkovOracle(data, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		oracle = 0
		for _, r := range rows {
			oracle += r.MarkovOracle
		}
		oracle /= float64(len(rows))
	}
	b.ReportMetric(oracle, "oracle%")
}
