// Package staticest reproduces "Accurate Static Estimators for Program
// Optimization" (Wagner, Maverick, Graham, Harrison; PLDI 1994): static
// compile-time estimation of basic-block frequencies, function invocation
// counts, and call-site frequencies for C programs, evaluated against
// interpreter-derived profiles with Wall's weight-matching metric.
//
// The pipeline is:
//
//	unit, err := staticest.Compile("prog.c", src) // parse, typecheck, CFGs
//	res, err := unit.Run(staticest.RunOptions{Stdin: input})  // profile
//	est := unit.Estimate()                        // static estimates
//	score := metric.WeightMatch(...)              // compare
//
// The heavy lifting lives in the internal packages; this package wires
// them together behind a stable façade.
package staticest

import (
	"fmt"

	"staticest/internal/callgraph"
	"staticest/internal/cfg"
	"staticest/internal/core"
	"staticest/internal/cparse"
	"staticest/internal/interp"
	"staticest/internal/probes"
	"staticest/internal/profile"
	"staticest/internal/sem"
)

// Unit is a compiled translation unit: parsed, type-checked, with
// control-flow graphs and a call graph.
type Unit struct {
	Name string
	Sem  *sem.Program
	CFG  *cfg.Program
	Call *callgraph.Graph
}

// Compile parses, analyzes, and builds graphs for a C source file.
func Compile(name string, src []byte) (*Unit, error) {
	file, err := cparse.ParseFile(name, src)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", name, err)
	}
	sp, err := sem.Analyze(file)
	if err != nil {
		return nil, fmt.Errorf("analyze %s: %w", name, err)
	}
	cp, err := cfg.Build(sp)
	if err != nil {
		return nil, fmt.Errorf("cfg %s: %w", name, err)
	}
	return &Unit{
		Name: name,
		Sem:  sp,
		CFG:  cp,
		Call: callgraph.Build(sp),
	}, nil
}

// RunOptions configures one profiled execution.
type RunOptions = interp.Options

// RunResult is the outcome of one profiled execution.
type RunResult = interp.Result

// Run executes the program under the profiling interpreter.
func (u *Unit) Run(opts RunOptions) (*RunResult, error) {
	return interp.Run(u.CFG, opts)
}

// Estimates bundles every static estimate the paper produces for a
// program.
type Estimates = core.Estimates

// Estimate computes the full set of static estimates with the paper's
// default configuration (smart branch predictions, loop count 5,
// predicted-arm probability 0.8).
func (u *Unit) Estimate() *Estimates {
	return core.EstimateAll(u.CFG, u.Call, core.DefaultConfig())
}

// EstimateWith computes estimates under a custom configuration (used by
// the ablation benchmarks).
func (u *Unit) EstimateWith(cfg core.Config) *Estimates {
	return core.EstimateAll(u.CFG, u.Call, cfg)
}

// Aggregate re-exports profile aggregation for callers scoring
// profile-based prediction.
func Aggregate(profiles []*profile.Profile) (*profile.Profile, error) {
	return profile.Aggregate(profiles)
}

// Instrumentation modes for Run, re-exported from internal/interp.
const (
	FullInstrumentation   = interp.FullInstrumentation
	SparseInstrumentation = interp.SparseInstrumentation
)

// ProbePlan is a sparse probe placement (see internal/probes).
type ProbePlan = probes.Plan

// ProbeVector is the raw counter output of a sparse run.
type ProbeVector = probes.Vector

// PlanProbes computes the unit's optimal probe placement, weighting
// arcs with the paper's smart static estimates so counters land on the
// arcs predicted coldest. Pass the plan via RunOptions.Plan together
// with SparseInstrumentation, then recover the full profile with
// Reconstruct.
func (u *Unit) PlanProbes() *ProbePlan {
	return probes.BuildPlan(u.CFG, probes.SmartWeights(u.CFG, core.DefaultConfig()))
}

// Reconstruct recovers the complete profile of a sparse run — exactly
// the profile full instrumentation would have produced. optFactor must
// match the RunOptions.OptFactor of the run (nil for the default).
func Reconstruct(plan *ProbePlan, vec *ProbeVector, optFactor map[int]float64) (*profile.Profile, error) {
	return probes.Reconstruct(plan, vec, optFactor)
}

// DiffProfiles reports every field-level mismatch between two profiles
// under exact equality (empty means identical). It backs the sparse
// verification paths in tests and cmd/cprof.
func DiffProfiles(want, got *profile.Profile) []string {
	return probes.Diff(want, got)
}
