// Package staticest reproduces "Accurate Static Estimators for Program
// Optimization" (Wagner, Maverick, Graham, Harrison; PLDI 1994): static
// compile-time estimation of basic-block frequencies, function invocation
// counts, and call-site frequencies for C programs, evaluated against
// interpreter-derived profiles with Wall's weight-matching metric.
//
// The pipeline is:
//
//	unit, err := staticest.Compile("prog.c", src) // parse, typecheck, CFGs
//	res, err := unit.Run(staticest.RunOptions{Stdin: input})  // profile
//	est := unit.Estimate()                        // static estimates
//	score := metric.WeightMatch(...)              // compare
//
// The heavy lifting lives in the internal packages; this package wires
// them together behind a stable façade.
package staticest

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"staticest/internal/callgraph"
	"staticest/internal/cfg"
	"staticest/internal/core"
	"staticest/internal/cparse"
	"staticest/internal/interp"
	"staticest/internal/obs"
	"staticest/internal/opt"
	"staticest/internal/probes"
	"staticest/internal/profile"
	"staticest/internal/reuse"
	"staticest/internal/sem"
)

// Unit is a compiled translation unit: parsed, type-checked, with
// control-flow graphs and a call graph.
type Unit struct {
	Name string
	Sem  *sem.Program
	CFG  *cfg.Program
	Call *callgraph.Graph

	// obs is the observer the unit was compiled with (nil when
	// observability is off); Run, Estimate, and PlanProbes report to it.
	obs *obs.Observer
}

// Observer is the observability handle threaded through the pipeline;
// see internal/obs. A nil *Observer disables all recording at ~zero
// cost.
type Observer = obs.Observer

// NewObserver constructs an observability domain.
var NewObserver = obs.New

// ObserverOption configures NewObserver.
type ObserverOption = obs.Option

// WithJSONLTrace routes the observer's structured events (span
// completions, flushed counters and gauges) to w as JSON lines.
func WithJSONLTrace(w io.Writer) ObserverOption {
	return obs.WithSink(obs.NewJSONLSink(w))
}

// Compile parses, analyzes, and builds graphs for a C source file.
func Compile(name string, src []byte) (*Unit, error) {
	return CompileObs(name, src, nil)
}

// CompileObs is Compile with observability: each phase (parse, analyze,
// cfg, callgraph) runs under a timed span, and the unit remembers the
// observer so later Run/Estimate/PlanProbes calls report to it too.
func CompileObs(name string, src []byte, o *obs.Observer) (*Unit, error) {
	return CompileCtx(context.Background(), name, src, o)
}

// CompileCtx is CompileObs with request-scoped tracing: when ctx
// carries a span (the serving layer's per-request root), the compile
// span and its phase children attach under it, so one request's whole
// span tree — server handler, compile, interpreter run — is connected.
func CompileCtx(ctx context.Context, name string, src []byte, o *obs.Observer) (*Unit, error) {
	sp := obs.StartSpanFrom(ctx, o, "compile", obs.KV("prog", name))
	defer sp.End()

	phase := sp.Child("compile.parse")
	file, err := cparse.ParseFile(name, src)
	phase.End()
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", name, err)
	}

	phase = sp.Child("compile.analyze")
	prog, err := sem.Analyze(file)
	phase.End()
	if err != nil {
		return nil, fmt.Errorf("analyze %s: %w", name, err)
	}

	phase = sp.Child("compile.cfg")
	cp, err := cfg.Build(prog)
	phase.End()
	if err != nil {
		return nil, fmt.Errorf("cfg %s: %w", name, err)
	}

	phase = sp.Child("compile.callgraph")
	cg := callgraph.Build(prog)
	phase.End()

	o.Counter("compile_units_total").Add(1)
	o.Counter("compile_functions_total").Add(int64(len(prog.Funcs)))
	return &Unit{
		Name: name,
		Sem:  prog,
		CFG:  cp,
		Call: cg,
		obs:  o,
	}, nil
}

// Observer returns the observer the unit was compiled with (nil when
// observability is off).
func (u *Unit) Observer() *obs.Observer { return u.obs }

// Fingerprint returns the canonical identity of a source text: the hex
// SHA-256 of its bytes. Two sources with equal fingerprints compile to
// identical units (compilation is deterministic), so the serving layer
// keys its compiled-unit cache on it and clients can use it to confirm
// which source a response describes.
func Fingerprint(src []byte) string {
	sum := sha256.Sum256(src)
	return hex.EncodeToString(sum[:])
}

// RunOptions configures one profiled execution.
type RunOptions = interp.Options

// RunResult is the outcome of one profiled execution.
type RunResult = interp.Result

// Run executes the program under the profiling interpreter. When the
// unit was compiled with an observer and opts.Obs is unset, the run
// reports to the unit's observer.
func (u *Unit) Run(opts RunOptions) (*RunResult, error) {
	if opts.Obs == nil {
		opts.Obs = u.obs
	}
	return interp.Run(u.CFG, opts)
}

// Estimates bundles every static estimate the paper produces for a
// program.
type Estimates = core.Estimates

// Estimate computes the full set of static estimates with the paper's
// default configuration (smart branch predictions, loop count 5,
// predicted-arm probability 0.8).
func (u *Unit) Estimate() *Estimates {
	return u.EstimateWith(core.DefaultConfig())
}

// EstimateWith computes estimates under a custom configuration (used by
// the ablation benchmarks).
func (u *Unit) EstimateWith(cfg core.Config) *Estimates {
	sp := u.obs.StartSpan("estimate", obs.KV("prog", u.Name))
	defer sp.End()
	return core.EstimateAll(u.CFG, u.Call, cfg)
}

// Aggregate re-exports profile aggregation for callers scoring
// profile-based prediction.
func Aggregate(profiles []*profile.Profile) (*profile.Profile, error) {
	return profile.Aggregate(profiles)
}

// Instrumentation modes for Run, re-exported from internal/interp.
const (
	FullInstrumentation   = interp.FullInstrumentation
	SparseInstrumentation = interp.SparseInstrumentation
)

// Engine selects the interpreter's execution engine (see
// RunOptions.Engine). The zero value is the bytecode engine.
type Engine = interp.Engine

// Execution engines, re-exported from internal/interp. The bytecode
// engine is the default; the tree-walking evaluator is the reference
// the bytecode lowering is differentially checked against.
const (
	EngineBytecode = interp.EngineBytecode
	EngineTree     = interp.EngineTree
)

// ProbePlan is a sparse probe placement (see internal/probes).
type ProbePlan = probes.Plan

// ProbeVector is the raw counter output of a sparse run.
type ProbeVector = probes.Vector

// PlanProbes computes the unit's optimal probe placement, weighting
// arcs with the paper's smart static estimates so counters land on the
// arcs predicted coldest. Pass the plan via RunOptions.Plan together
// with SparseInstrumentation, then recover the full profile with
// Reconstruct.
func (u *Unit) PlanProbes() *ProbePlan {
	sp := u.obs.StartSpan("probes.plan", obs.KV("prog", u.Name))
	defer sp.End()
	plan := probes.BuildPlan(u.CFG, probes.SmartWeights(u.CFG, core.DefaultConfig()))
	plan.Record(u.obs)
	return plan
}

// Reconstruct recovers the complete profile of a sparse run — exactly
// the profile full instrumentation would have produced. optFactor must
// match the RunOptions.OptFactor of the run (nil for the default).
func Reconstruct(plan *ProbePlan, vec *ProbeVector, optFactor map[int]float64) (*profile.Profile, error) {
	return probes.Reconstruct(plan, vec, optFactor)
}

// DiffProfiles reports every field-level mismatch between two profiles
// under exact equality (empty means identical). It backs the sparse
// verification paths in tests and cmd/cprof.
func DiffProfiles(want, got *profile.Profile) []string {
	return probes.Diff(want, got)
}

// FreqSource is a frequency source the optimizer subsystem consumes:
// absolute block, invocation, and call-site frequencies plus edge
// frequencies (see internal/opt). Estimates and measured profiles
// present the same interface.
type FreqSource = opt.Source

// InlinePlan is a ranked, budgeted set of inlining decisions.
type InlinePlan = opt.InlinePlan

// InlineResult is a transformed (inlined) unit plus the origin map that
// folds its measured profiles back onto the original unit's shape.
type InlineResult = opt.Result

// EstimateFreqSource builds a frequency source from one of the static
// estimator ladders: "loop", "smart", or "markov".
func (u *Unit) EstimateFreqSource(kind string) (*FreqSource, error) {
	return opt.EstimateSource(u.CFG, u.Estimate(), kind)
}

// ProfileFreqSource wraps a measured (or aggregated) profile as a
// frequency source named name.
func (u *Unit) ProfileFreqSource(p *profile.Profile, name string) *FreqSource {
	return opt.ProfileSource(u.CFG, p, name)
}

// PlanInline ranks the unit's inlinable call sites by the source's
// frequencies and greedily selects them under a size budget (cloned
// callee blocks; <= 0 selects opt.DefaultBudget).
func (u *Unit) PlanInline(src *FreqSource, budget int) *InlinePlan {
	sp := u.obs.StartSpan("opt.inline.plan",
		obs.KV("prog", u.Name), obs.KV("source", src.Name))
	defer sp.End()
	return opt.PlanInline(u.CFG, u.Call, src, budget)
}

// ReuseTable is the program's static memory-reference table (see
// internal/reuse): one entry per scalar array subscript, pointer
// dereference, or through-memory member access, classified against its
// loop context.
type ReuseTable = reuse.Table

// ReuseProfile is a reuse-distance profile — the whole-program and
// per-reference histograms — measured from a trace or derived
// statically.
type ReuseProfile = reuse.Profile

// ReuseTable builds the unit's memory-reference table. The table's
// RefIndex feeds RunOptions.MemRefs to enable trace collection.
func (u *Unit) ReuseTable() *ReuseTable {
	return reuse.BuildTable(u.CFG)
}

// EstimateReuse derives a static reuse-distance profile for the table
// using the named block-frequency estimator ("loop", "smart", or
// "markov") as the iteration-count oracle.
func (u *Unit) EstimateReuse(t *ReuseTable, kind string) (*ReuseProfile, error) {
	sp := u.obs.StartSpan("reuse.estimate",
		obs.KV("prog", u.Name), obs.KV("source", kind))
	defer sp.End()
	src, err := opt.EstimateSource(u.CFG, u.Estimate(), kind)
	if err != nil {
		return nil, err
	}
	return reuse.Estimate(t, src), nil
}

// MeasureReuse runs the program with memory tracing enabled and folds
// the trace into a measured reuse-distance profile via the O(n log n)
// stack-distance algorithm. The run's result is returned alongside.
func (u *Unit) MeasureReuse(t *ReuseTable, opts RunOptions) (*ReuseProfile, *RunResult, error) {
	sp := u.obs.StartSpan("reuse.measure", obs.KV("prog", u.Name))
	defer sp.End()
	opts.MemRefs = t.RefIndex()
	res, err := u.Run(opts)
	if err != nil {
		return nil, nil, err
	}
	return reuse.Measure(t, res.MemTrace), res, nil
}

// Inline applies an inlining plan and returns a new Unit wrapping the
// transformed program (the receiver is never mutated — units are shared)
// together with the transform result. The new unit runs under the same
// interpreter; fold its profiles back with opt.FoldProfile to compare
// against the original's.
func (u *Unit) Inline(plan *InlinePlan) (*Unit, *InlineResult, error) {
	res, err := opt.ApplyInline(u.CFG, u.Call, plan, u.obs)
	if err != nil {
		return nil, nil, err
	}
	nu := &Unit{
		Name: u.Name,
		Sem:  res.CFG.Sem,
		CFG:  res.CFG,
		Call: u.Call, // call sites and their IDs are preserved verbatim
		obs:  u.obs,
	}
	return nu, res, nil
}
