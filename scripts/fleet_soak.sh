#!/bin/sh
# Fleet-soak smoke: boots a serve instance, points cmd/fleet at it, and
# fails unless every upload lands and the live aggregate's decision
# agreement converges to the offline eval values (fleet's -tol check).
# After the soak, /metrics is scraped and the run fails if any expected
# metric family (per-endpoint latency histograms, shed/reject counters,
# runtime gauges) is missing or any exposition line is unparseable.
# The server is then shut down gracefully, so the drain path runs too.
#
#   scripts/fleet_soak.sh                 # 200 uploads of compress
#   FLEET_N=1000 FLEET_PROGRAM=eqntott scripts/fleet_soak.sh
set -eu
cd "$(dirname "$0")/.."

n=${FLEET_N:-200}
addr=${FLEET_ADDR:-localhost:8097}
program=${FLEET_PROGRAM:-compress}

bin=$(mktemp -d)
serve_pid=""
cleanup() {
	[ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
	rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/serve" ./cmd/serve
go build -o "$bin/fleet" ./cmd/fleet

"$bin/serve" -addr "$addr" &
serve_pid=$!

ok=""
for _ in $(seq 1 100); do
	if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then
		ok=1
		break
	fi
	sleep 0.1
done
[ -n "$ok" ] || { echo "fleet_soak: serve never became healthy on $addr" >&2; exit 1; }

"$bin/fleet" -addr "$addr" -program "$program" -n "$n" -j 8

echo "fleet_soak: final health: $(curl -s "http://$addr/healthz")" >&2

# Post-soak observability check: every family the ops surface promises
# must be present after real traffic, and every non-comment line must
# parse as "<series> <value>".
metrics=$(mktemp)
curl -sf "http://$addr/metrics" >"$metrics" || {
	echo "fleet_soak: /metrics scrape failed" >&2
	exit 1
}
for family in \
	'# TYPE server_request_seconds histogram' \
	'server_request_seconds_bucket{endpoint="ingest",le="+Inf"}' \
	'server_request_seconds_count{endpoint="ingest"}' \
	'server_responses_total{endpoint="ingest",class="2xx"}' \
	'# TYPE server_compile_seconds histogram' \
	'# TYPE server_cache_hit_seconds histogram' \
	'server_shed_total' \
	'ingest_uploads_total' \
	'ingest_rejects_total{reason="duplicate"}' \
	'runtime_goroutines' \
	'runtime_heap_alloc_bytes' \
	'runtime_gc_pause_seconds_total' \
	; do
	grep -qF "$family" "$metrics" || {
		echo "fleet_soak: /metrics missing expected family: $family" >&2
		rm -f "$metrics"
		exit 1
	}
done
bad=$(grep -v '^#' "$metrics" | awk 'NF != 0 && NF != 2 { print; exit }')
[ -z "$bad" ] || {
	echo "fleet_soak: unparseable /metrics line: $bad" >&2
	rm -f "$metrics"
	exit 1
}
echo "fleet_soak: /metrics families OK ($(grep -c '^# TYPE' "$metrics") families)" >&2
rm -f "$metrics"

echo "fleet_soak: status: $(curl -s "http://$addr/v1/debug/status" | head -c 200)..." >&2

# Graceful drain: SIGTERM must exit cleanly.
kill -TERM "$serve_pid"
wait "$serve_pid"
serve_pid=""
echo "fleet_soak: OK ($n uploads, clean drain)" >&2
