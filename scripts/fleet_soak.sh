#!/bin/sh
# Fleet-soak smoke: boots a serve instance, points cmd/fleet at it, and
# fails unless every upload lands and the live aggregate's decision
# agreement converges to the offline eval values (fleet's -tol check).
# The server is then shut down gracefully, so the drain path runs too.
#
#   scripts/fleet_soak.sh                 # 200 uploads of compress
#   FLEET_N=1000 FLEET_PROGRAM=eqntott scripts/fleet_soak.sh
set -eu
cd "$(dirname "$0")/.."

n=${FLEET_N:-200}
addr=${FLEET_ADDR:-localhost:8097}
program=${FLEET_PROGRAM:-compress}

bin=$(mktemp -d)
serve_pid=""
cleanup() {
	[ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
	rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/serve" ./cmd/serve
go build -o "$bin/fleet" ./cmd/fleet

"$bin/serve" -addr "$addr" &
serve_pid=$!

ok=""
for _ in $(seq 1 100); do
	if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then
		ok=1
		break
	fi
	sleep 0.1
done
[ -n "$ok" ] || { echo "fleet_soak: serve never became healthy on $addr" >&2; exit 1; }

"$bin/fleet" -addr "$addr" -program "$program" -n "$n" -j 8

echo "fleet_soak: final health: $(curl -s "http://$addr/healthz")" >&2

# Graceful drain: SIGTERM must exit cleanly.
kill -TERM "$serve_pid"
wait "$serve_pid"
serve_pid=""
echo "fleet_soak: OK ($n uploads, clean drain)" >&2
