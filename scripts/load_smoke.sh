#!/bin/sh
# Load smoke: boots a serve instance and drives it with cmd/loadtest —
# first the single-request estimate path, then the batch path — at a
# modest RPS with a mixed cache hit/miss workload. loadtest itself
# enforces the pass criteria: zero 5xx responses, zero transport-level
# failures, and a p99 under a deliberately generous bound (this is a
# smoke on shared CI runners, not a latency SLO). The server is shut
# down with SIGTERM afterwards, so the drain path runs too.
#
#   scripts/load_smoke.sh                      # ~20s of load
#   LOAD_DURATION=60s LOAD_RPS=200 scripts/load_smoke.sh
set -eu
cd "$(dirname "$0")/.."

addr=${LOAD_ADDR:-localhost:8098}
duration=${LOAD_DURATION:-10s}
rps=${LOAD_RPS:-40}
max_p99=${LOAD_MAX_P99:-5s}

bin=$(mktemp -d)
serve_pid=""
cleanup() {
	[ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
	rm -rf "$bin"
}
trap cleanup EXIT

go build -o "$bin/serve" ./cmd/serve
go build -o "$bin/loadtest" ./cmd/loadtest

"$bin/serve" -addr "$addr" &
serve_pid=$!

ok=""
for _ in $(seq 1 100); do
	if curl -sf "http://$addr/healthz" >/dev/null 2>&1; then
		ok=1
		break
	fi
	sleep 0.1
done
[ -n "$ok" ] || { echo "load_smoke: serve never became healthy on $addr" >&2; exit 1; }

# Phase 1: single-request estimates, 90% hot.
"$bin/loadtest" -addr "$addr" -duration "$duration" -rps "$rps" \
	-hit 0.9 -j 4 -max-p99 "$max_p99"

# Phase 2: the batch path, 8 items per request against the now-warm
# cache (a different seed adds fresh cold compiles to the mix).
"$bin/loadtest" -addr "$addr" -duration "$duration" -rps 10 \
	-hit 0.8 -batch 8 -j 2 -seed 2 -max-p99 "$max_p99"

echo "load_smoke: final health: $(curl -s "http://$addr/healthz")" >&2

# Graceful drain: SIGTERM must exit cleanly.
kill -TERM "$serve_pid"
wait "$serve_pid"
serve_pid=""
echo "load_smoke: OK (clean drain)" >&2
