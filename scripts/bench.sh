#!/bin/sh
# Benchmark-trajectory harness: runs the interpreter, probe-profiling,
# and observability benchmarks and writes BENCH_interp.json — one
# machine-readable snapshot of the numbers this checkout produces,
# committed periodically so performance can be tracked across history.
#
#   scripts/bench.sh                  # smoke run (-benchtime 1x)
#   BENCH_TIME=2s scripts/bench.sh    # steadier numbers
#   BENCH_OUT=- scripts/bench.sh      # JSON to stdout
set -eu
cd "$(dirname "$0")/.."

out=${BENCH_OUT:-BENCH_interp.json}
filter=${BENCH_FILTER:-'InterpretCompress|InlineXlisp|ProbeProfiling|Obs(Disabled|Enabled)|NilObserverSpan|NilCounterAdd|CounterAdd|SpanStartEnd|ServeEstimate'}
benchtime=${BENCH_TIME:-1x}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$filter" -benchtime "$benchtime" . ./internal/obs ./internal/server | tee "$raw" >&2

json=$(awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v gover="$(go env GOVERSION)" '
BEGIN {
	printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [", date, gover
	n = 0
}
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	if (n++) printf ","
	printf "\n    {\"name\": \"%s\", \"iters\": %s, \"metrics\": {", name, $2
	m = 0
	for (i = 3; i < NF; i += 2) {
		if (m++) printf ", "
		printf "\"%s\": %s", $(i + 1), $i
	}
	printf "}}"
}
END { printf "\n  ]\n}" }' "$raw")

if [ "$out" = "-" ]; then
	printf '%s\n' "$json"
else
	printf '%s\n' "$json" >"$out"
	echo "wrote $out" >&2
fi
