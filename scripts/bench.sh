#!/bin/sh
# Benchmark-trajectory harness: runs the benchmark families and writes
# machine-readable snapshots of the numbers this checkout produces,
# committed periodically so performance can be tracked across history:
#
#   BENCH_interp.json  interpreter, probe-profiling, observability
#   BENCH_serve.json   serving paths (estimate cache hits, fleet ingest),
#                      including p50/p99/p999 tail latency reported by
#                      the benchmarks as custom p*-ns metrics
#
# Alongside each JSON snapshot the raw `go test -bench` stream is kept
# as FILE.bench (benchstat / cmd/benchdiff input format; not committed).
# A failing or silently-skipped benchmark exits non-zero — a truncated
# snapshot must never look like a healthy one.
#
#   scripts/bench.sh                  # smoke run (-benchtime 1x)
#   BENCH_TIME=2s scripts/bench.sh    # steadier numbers
#   BENCH_COUNT=6 scripts/bench.sh    # multi-sample (for benchdiff)
#   BENCH_OUT=- scripts/bench.sh      # interp JSON to stdout
set -eu
cd "$(dirname "$0")/.."

benchtime=${BENCH_TIME:-1x}
benchcount=${BENCH_COUNT:-1}

# bench_family FILTER OUT PKGS... — runs one benchmark family and writes
# the JSON snapshot to OUT ("-" = stdout) plus the raw bench stream to
# OUT with .json swapped for .bench (skipped when OUT is - or /dev/null).
bench_family() {
	filter=$1
	out=$2
	shift 2
	raw=$(mktemp)
	# Not a pipeline: `go test | tee` would report tee's exit status and
	# swallow a benchmark failure.
	if ! go test -run '^$' -bench "$filter" -benchtime "$benchtime" -count "$benchcount" "$@" >"$raw" 2>&1; then
		cat "$raw" >&2
		echo "bench.sh: go test -bench '$filter' failed" >&2
		rm -f "$raw"
		exit 1
	fi
	cat "$raw" >&2
	if ! grep -q '^Benchmark' "$raw"; then
		echo "bench.sh: no Benchmark lines matched '$filter'" >&2
		rm -f "$raw"
		exit 1
	fi
	json=$(awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v gover="$(go env GOVERSION)" '
	BEGIN {
		printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [", date, gover
		n = 0
	}
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		if (n++) printf ","
		printf "\n    {\"name\": \"%s\", \"iters\": %s, \"metrics\": {", name, $2
		m = 0
		for (i = 3; i < NF; i += 2) {
			if (m++) printf ", "
			printf "\"%s\": %s", $(i + 1), $i
		}
		printf "}}"
	}
	END { printf "\n  ]\n}\n" }' "$raw")
	# Belt and braces on top of the raw-stream grep: never let a snapshot
	# with zero benchmark entries masquerade as a healthy trajectory point
	# (a bad filter or a parse regression would otherwise silently write
	# an empty "benchmarks": [] on a fresh checkout).
	entries=$(printf '%s\n' "$json" | grep -c '"name":' || true)
	if [ "$entries" -eq 0 ]; then
		echo "bench.sh: refusing to write $out: snapshot has zero benchmark entries" >&2
		rm -f "$raw"
		exit 1
	fi
	if [ "$out" = "-" ]; then
		printf '%s\n' "$json"
	else
		printf '%s\n' "$json" >"$out"
		echo "wrote $out" >&2
		case $out in
		/dev/null) ;;
		*.json)
			rawout=${out%.json}.bench
			cp "$raw" "$rawout"
			echo "wrote $rawout" >&2
			;;
		esac
	fi
	rm -f "$raw"
}

interp_filter=${BENCH_FILTER:-'InterpretCompress|InlineXlisp|ProbeProfiling|ReuseTrace|Obs(Disabled|Enabled)|NilObserverSpan|NilCounterAdd|CounterAdd|SpanStartEnd|HistogramObserve'}
serve_filter=${BENCH_SERVE_FILTER:-'ServeEstimate|ServeBatch|^BenchmarkIngest$'}
# The serve family runs at GOMAXPROCS 8 so the parallel cache-scaling
# benchmarks (ServeEstimateParallel) actually fan out; serial serve
# benchmarks are single-request loops and are unaffected by extra Ps.
serve_cpu=${BENCH_SERVE_CPU:-8}

bench_family "$interp_filter" "${BENCH_OUT:-BENCH_interp.json}" . ./internal/obs
bench_family "$serve_filter" "${BENCH_SERVE_OUT:-BENCH_serve.json}" -cpu "$serve_cpu" ./internal/server
