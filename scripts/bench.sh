#!/bin/sh
# Benchmark-trajectory harness: runs the benchmark families and writes
# machine-readable snapshots of the numbers this checkout produces,
# committed periodically so performance can be tracked across history:
#
#   BENCH_interp.json  interpreter, probe-profiling, observability
#   BENCH_serve.json   serving paths (estimate cache hits, fleet ingest),
#                      including p50/p99/p999 tail latency reported by
#                      the benchmarks as custom p*-ns metrics
#
#   scripts/bench.sh                  # smoke run (-benchtime 1x)
#   BENCH_TIME=2s scripts/bench.sh    # steadier numbers
#   BENCH_OUT=- scripts/bench.sh      # interp JSON to stdout
set -eu
cd "$(dirname "$0")/.."

benchtime=${BENCH_TIME:-1x}

# bench_json FILTER PKGS... — runs the benchmarks and prints one JSON
# snapshot of every Benchmark line on stdout (raw output to stderr).
bench_json() {
	filter=$1
	shift
	raw=$(mktemp)
	go test -run '^$' -bench "$filter" -benchtime "$benchtime" "$@" | tee "$raw" >&2
	awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v gover="$(go env GOVERSION)" '
	BEGIN {
		printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [", date, gover
		n = 0
	}
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		if (n++) printf ","
		printf "\n    {\"name\": \"%s\", \"iters\": %s, \"metrics\": {", name, $2
		m = 0
		for (i = 3; i < NF; i += 2) {
			if (m++) printf ", "
			printf "\"%s\": %s", $(i + 1), $i
		}
		printf "}}"
	}
	END { printf "\n  ]\n}\n" }' "$raw"
	rm -f "$raw"
}

# emit JSON OUT — writes the snapshot to OUT ("-" = stdout).
emit() {
	if [ "$2" = "-" ]; then
		printf '%s\n' "$1"
	else
		printf '%s\n' "$1" >"$2"
		echo "wrote $2" >&2
	fi
}

interp_filter=${BENCH_FILTER:-'InterpretCompress|InlineXlisp|ProbeProfiling|ReuseTrace|Obs(Disabled|Enabled)|NilObserverSpan|NilCounterAdd|CounterAdd|SpanStartEnd|HistogramObserve'}
serve_filter=${BENCH_SERVE_FILTER:-'ServeEstimate|^BenchmarkIngest$'}

emit "$(bench_json "$interp_filter" . ./internal/obs)" "${BENCH_OUT:-BENCH_interp.json}"
emit "$(bench_json "$serve_filter" ./internal/server)" "${BENCH_SERVE_OUT:-BENCH_serve.json}"
