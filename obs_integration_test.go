package staticest_test

import (
	"strings"
	"testing"

	"staticest"
	"staticest/internal/suite"
)

// These tests pin the observability layer's exactness guarantee: the
// interp_* counters are not samples but derived from the same state the
// profile itself is built from, so they must match the profile's own
// totals to the last count.

func obsRun(t *testing.T, opts staticest.RunOptions) (*staticest.Observer, *staticest.Unit, *staticest.RunResult) {
	t.Helper()
	prog, err := suite.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	u, err := prog.CompileCached()
	if err != nil {
		t.Fatal(err)
	}
	in := prog.Inputs[0]
	o := staticest.NewObserver()
	opts.Args, opts.Stdin, opts.Obs = in.Args, in.Stdin, o
	res, err := u.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	return o, u, res
}

func TestObsCountersMatchFullProfile(t *testing.T) {
	o, u, res := obsRun(t, staticest.RunOptions{})
	p := res.Profile

	if got, want := o.Counter("interp_runs_total").Value(), int64(1); got != want {
		t.Errorf("interp_runs_total = %d, want %d", got, want)
	}
	if got, want := float64(o.Counter("interp_blocks_executed_total").Value()), p.TotalBlockCount(); got != want {
		t.Errorf("interp_blocks_executed_total = %v, want profile total %v", got, want)
	}
	var calls float64
	for _, c := range p.FuncCalls {
		calls += c
	}
	if got := float64(o.Counter("interp_calls_total").Value()); got != calls {
		t.Errorf("interp_calls_total = %v, want sum(FuncCalls) %v", got, calls)
	}
	if got := o.Counter("interp_builtin_calls_total").Value(); got <= 0 {
		t.Errorf("interp_builtin_calls_total = %d, want > 0 (compress does I/O)", got)
	}
	if got := o.Counter("interp_step_budget_exhausted_total").Value(); got != 0 {
		t.Errorf("interp_step_budget_exhausted_total = %d, want 0", got)
	}
	// The exposition must surface the same numbers.
	exp := o.Exposition()
	if !strings.Contains(exp, "interp_blocks_executed_total") {
		t.Errorf("exposition missing interp_blocks_executed_total:\n%s", exp)
	}
	_ = u
}

func TestObsCountersMatchSparseProfile(t *testing.T) {
	prog, err := suite.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	u, err := prog.CompileCached()
	if err != nil {
		t.Fatal(err)
	}
	plan := u.PlanProbes()
	in := prog.Inputs[0]
	o := staticest.NewObserver()
	res, err := u.Run(staticest.RunOptions{
		Args: in.Args, Stdin: in.Stdin, Obs: o,
		Instrumentation: staticest.SparseInstrumentation,
		Plan:            plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := float64(o.Counter("interp_probe_increments_total").Value()), res.Probes.Increments(); got != want {
		t.Errorf("interp_probe_increments_total = %v, want Vector.Increments() %v", got, want)
	}
	if got, want := o.Counter("interp_blocks_executed_total").Value(), res.Steps; got != want {
		t.Errorf("interp_blocks_executed_total = %d, want Steps %d", got, want)
	}
}

func TestObsStepBudgetExhaustedCounter(t *testing.T) {
	src := `int main(void) { for (;;) ; return 0; }`
	o := staticest.NewObserver()
	u, err := staticest.CompileObs("spin.c", []byte(src), o)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Run(staticest.RunOptions{MaxSteps: 1000}); err == nil {
		t.Fatal("expected step-budget error")
	}
	if got := o.Counter("interp_step_budget_exhausted_total").Value(); got != 1 {
		t.Errorf("interp_step_budget_exhausted_total = %d, want 1", got)
	}
	// The partial run still reports its counters.
	if got := o.Counter("interp_blocks_executed_total").Value(); got == 0 {
		t.Error("interp_blocks_executed_total = 0 after a budget-exhausted run")
	}
}
