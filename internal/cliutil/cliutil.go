// Package cliutil holds the small amount of plumbing the commands
// share: up-front validation of enum-valued flags (so a bad value is a
// usage error naming the valid choices, not a failure deep in a run)
// and construction of an observability domain from the common
// -trace/-metrics flags.
package cliutil

import (
	"fmt"
	"os"
	"strings"

	"staticest/internal/obs"
)

// CheckEnum validates an enum-valued flag. It returns nil when got is
// one of valid, and otherwise an error naming the flag and every valid
// value. Commands call it for each enum flag right after flag.Parse.
func CheckEnum(flagName, got string, valid ...string) error {
	for _, v := range valid {
		if got == v {
			return nil
		}
	}
	return fmt.Errorf("-%s must be one of %s (got %q)",
		flagName, strings.Join(valid, ", "), got)
}

// CheckEnums validates a comma-separated enum-valued flag (e.g.
// -oracles invariants,sparse): every element must be one of valid.
// Empty elements (stray commas) are usage errors too. It returns the
// split elements on success.
func CheckEnums(flagName, got string, valid ...string) ([]string, error) {
	if got == "" {
		return nil, nil
	}
	parts := strings.Split(got, ",")
	for _, p := range parts {
		if err := CheckEnum(flagName, p, valid...); err != nil {
			return nil, err
		}
	}
	return parts, nil
}

// Observability builds the observer a command's -trace/-metrics flags
// ask for. trace selects the JSONL event destination: "" for none, "-"
// for stderr, anything else a file path (truncated). When both trace
// is empty and metrics is false the observer is nil — the pipeline's
// zero-cost disabled mode.
//
// The returned close function flushes counters and gauges into the
// trace (so the stream ends with final totals) and closes the file; it
// is safe to call when the observer is nil.
func Observability(trace string, metrics bool) (*obs.Observer, func(), error) {
	if trace == "" && !metrics {
		return nil, func() {}, nil
	}
	var opts []obs.Option
	var file *os.File
	if trace != "" {
		w := os.Stderr
		if trace != "-" {
			f, err := os.Create(trace)
			if err != nil {
				return nil, nil, fmt.Errorf("opening trace file: %w", err)
			}
			file = f
			w = f
		}
		opts = append(opts, obs.WithSink(obs.NewJSONLSink(w)))
	}
	o := obs.New(opts...)
	closeFn := func() {
		o.Flush()
		if file != nil {
			file.Close()
		}
	}
	return o, closeFn, nil
}
