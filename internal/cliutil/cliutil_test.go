package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestCheckEnum(t *testing.T) {
	if err := CheckEnum("instr", "sparse", "full", "sparse"); err != nil {
		t.Errorf("valid value rejected: %v", err)
	}
	err := CheckEnum("instr", "fast", "full", "sparse")
	if err == nil {
		t.Fatal("invalid value accepted")
	}
	for _, frag := range []string{"-instr", "full, sparse", `"fast"`} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("error %q missing %q", err, frag)
		}
	}
}

func TestCheckEnums(t *testing.T) {
	valid := []string{"invariants", "sparse", "inline", "metamorphic", "server", "all"}
	cases := []struct {
		in      string
		want    []string
		wantErr bool
	}{
		{"", nil, false},
		{"all", []string{"all"}, false},
		{"invariants,sparse", []string{"invariants", "sparse"}, false},
		{"invariants,sparse,inline,metamorphic,server",
			[]string{"invariants", "sparse", "inline", "metamorphic", "server"}, false},
		{"invariants,", nil, true},        // trailing comma = empty element
		{",sparse", nil, true},            // leading comma
		{"invariants, sparse", nil, true}, // stray space is not a valid value
		{"bogus", nil, true},
		{"sparse,bogus", nil, true},
	}
	for _, tc := range cases {
		got, err := CheckEnums("oracles", tc.in, valid...)
		if tc.wantErr {
			if err == nil {
				t.Errorf("CheckEnums(%q) accepted, want error", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("CheckEnums(%q): %v", tc.in, err)
			continue
		}
		if !equalStrings(got, tc.want) {
			t.Errorf("CheckEnums(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestObservabilityDisabled(t *testing.T) {
	o, closeFn, err := Observability("", false)
	if err != nil {
		t.Fatal(err)
	}
	if o != nil {
		t.Error("observer should be nil when neither trace nor metrics is requested")
	}
	closeFn() // must be safe on the nil observer
}

func TestObservabilityTraceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	o, closeFn, err := Observability(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if o == nil {
		t.Fatal("observer should be enabled with a trace path")
	}
	o.Counter("x_total").Add(3)
	closeFn()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"name":"x_total"`) {
		t.Errorf("flushed trace missing counter event:\n%s", data)
	}
}

func TestObservabilityMetricsOnly(t *testing.T) {
	o, closeFn, err := Observability("", true)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	if o == nil {
		t.Fatal("observer should be enabled when metrics are requested")
	}
}

func TestObservabilityBadPath(t *testing.T) {
	_, _, err := Observability(filepath.Join(t.TempDir(), "no", "such", "dir", "t.jsonl"), false)
	if err == nil {
		t.Fatal("expected error for unwritable trace path")
	}
}
