package profile

import (
	"sync"
	"sync/atomic"
)

// Snapshot is one immutable view of an Accumulator: the aggregate
// profile after a fixed number of merges. Snapshots are shared between
// readers and must not be mutated.
type Snapshot struct {
	// Profile is the aggregate at the snapshot's epoch, exactly equal
	// (byte for byte) to Aggregate over the merged profiles in merge
	// order.
	Profile *Profile
	// Uploads is the number of profiles merged so far.
	Uploads int
	// Epoch increments once per merge; two snapshots with equal epochs
	// are the same snapshot.
	Epoch uint64
}

// Accumulator is the incremental form of Aggregate: profiles are merged
// one at a time in O(profile) — clone, normalize to the first profile's
// total, add — instead of re-aggregating every upload, so an online
// consumer ingesting a stream of profiles pays per upload what the
// offline Aggregate pays per element.
//
// The arithmetic replicates Aggregate operation for operation: the
// first merged profile becomes the base and fixes the normalization
// reference, and every later profile is cloned, scaled by ref/total,
// and added in merge order. A Snapshot taken after the k-th merge is
// therefore byte-for-byte equal to Aggregate of the first k profiles
// in the order they were merged — the exactness the ingest oracle in
// internal/check pins.
//
// Concurrency: merges serialize on one mutex held only for the
// O(profile) normalize-and-add (callers do reconstruction, validation,
// and cloning of their own data outside). Readers never take that
// lock on the fast path: Snapshot publishes through an atomic pointer
// and swaps in a freshly built snapshot only when the epoch has moved
// (the epoch-swap scheme), so a read-heavy consumer re-reads one
// pointer until the next merge.
type Accumulator struct {
	mu    sync.Mutex
	ref   float64  // normalization reference: first profile's block total
	sum   *Profile // running aggregate; nil until the first merge
	order []string // profile labels in merge order

	epoch atomic.Uint64            // merges completed
	snap  atomic.Pointer[Snapshot] // last published snapshot
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator { return &Accumulator{} }

// Add merges p into the aggregate and returns the number of profiles
// merged so far. p is cloned; the caller keeps ownership. A profile
// whose shape mismatches the aggregate's is rejected without touching
// the running sum.
func (a *Accumulator) Add(p *Profile) (int, error) {
	qc := p.Clone()
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.sum == nil {
		a.ref = qc.TotalBlockCount()
		if a.ref == 0 {
			a.ref = 1
		}
		qc.Label = "aggregate"
		a.sum = qc
	} else {
		if t := qc.TotalBlockCount(); t > 0 {
			qc.Scale(a.ref / t)
		}
		if err := a.sum.accumulate(qc); err != nil {
			return len(a.order), err
		}
	}
	a.order = append(a.order, p.Label)
	a.epoch.Add(1)
	return len(a.order), nil
}

// Uploads returns the number of profiles merged so far.
func (a *Accumulator) Uploads() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.order)
}

// MergeOrder returns the labels of the merged profiles in merge order
// (the order whose offline Aggregate the snapshot equals exactly).
func (a *Accumulator) MergeOrder() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]string(nil), a.order...)
}

// Snapshot returns the current aggregate view, plus whether this call
// built (swapped in) a new snapshot. The fast path — no merges since
// the last snapshot — is one atomic load. An empty accumulator returns
// (nil, false).
func (a *Accumulator) Snapshot() (*Snapshot, bool) {
	epoch := a.epoch.Load()
	if epoch == 0 {
		return nil, false
	}
	if s := a.snap.Load(); s != nil && s.Epoch == epoch {
		return s, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	// Re-check under the lock: another reader may have swapped first.
	epoch = a.epoch.Load()
	if s := a.snap.Load(); s != nil && s.Epoch == epoch {
		return s, false
	}
	s := &Snapshot{Profile: a.sum.Clone(), Uploads: len(a.order), Epoch: epoch}
	a.snap.Store(s)
	return s, true
}
