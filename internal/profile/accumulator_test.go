package profile

import (
	"fmt"
	"sync"
	"testing"
)

// accProfile builds a small distinct profile for accumulator tests.
func accProfile(label string, k float64) *Profile {
	p := New([]int{2, 3}, 2, 1, []int{2})
	p.Label = label
	p.BlockCounts[0][0] = 3 * k
	p.BlockCounts[0][1] = 1 * k
	p.BlockCounts[1][0] = 7 * k
	p.BlockCounts[1][2] = 2 * k
	p.FuncCalls[0] = 3 * k
	p.FuncCalls[1] = 7 * k
	p.CallSiteCounts[1] = 5 * k
	p.BranchTaken[0] = 2 * k
	p.BranchNot[0] = 1 * k
	p.SwitchArm[0][1] = 4 * k
	p.Cycles = 11 * k
	return p
}

// TestAccumulatorMatchesAggregate pins the core contract: after k
// merges, the snapshot is byte-for-byte what Aggregate computes over
// the same profiles in the same order — including the normalization to
// the first profile's total.
func TestAccumulatorMatchesAggregate(t *testing.T) {
	profiles := []*Profile{
		accProfile("a", 1),
		accProfile("b", 3.5),
		accProfile("c", 0.25),
		accProfile("d", 19),
	}
	acc := NewAccumulator()
	for k, p := range profiles {
		if n, err := acc.Add(p); err != nil {
			t.Fatalf("Add %d: %v", k, err)
		} else if n != k+1 {
			t.Fatalf("Add %d returned %d uploads, want %d", k, n, k+1)
		}
		snap, _ := acc.Snapshot()
		want, err := Aggregate(profiles[:k+1])
		if err != nil {
			t.Fatal(err)
		}
		if err := mustEqual(want, snap.Profile); err != nil {
			t.Fatalf("after %d merges: %v", k+1, err)
		}
		if snap.Uploads != k+1 || snap.Epoch != uint64(k+1) {
			t.Fatalf("snapshot meta = {uploads %d, epoch %d}, want %d/%d",
				snap.Uploads, snap.Epoch, k+1, k+1)
		}
	}
	if got := acc.MergeOrder(); fmt.Sprint(got) != "[a b c d]" {
		t.Errorf("merge order %v, want [a b c d]", got)
	}
}

// mustEqual compares profiles under exact float equality.
func mustEqual(want, got *Profile) error {
	cmp := func(what string, w, g []float64) error {
		if len(w) != len(g) {
			return fmt.Errorf("%s: length %d vs %d", what, len(w), len(g))
		}
		for i := range w {
			if w[i] != g[i] {
				return fmt.Errorf("%s[%d]: %v vs %v", what, i, w[i], g[i])
			}
		}
		return nil
	}
	for f := range want.BlockCounts {
		if err := cmp(fmt.Sprintf("blocks f%d", f), want.BlockCounts[f], got.BlockCounts[f]); err != nil {
			return err
		}
	}
	for _, c := range []struct {
		what string
		w, g []float64
	}{
		{"calls", want.FuncCalls, got.FuncCalls},
		{"sites", want.CallSiteCounts, got.CallSiteCounts},
		{"taken", want.BranchTaken, got.BranchTaken},
		{"not", want.BranchNot, got.BranchNot},
	} {
		if err := cmp(c.what, c.w, c.g); err != nil {
			return err
		}
	}
	for s := range want.SwitchArm {
		if err := cmp(fmt.Sprintf("switch %d", s), want.SwitchArm[s], got.SwitchArm[s]); err != nil {
			return err
		}
	}
	if want.Cycles != got.Cycles {
		return fmt.Errorf("cycles: %v vs %v", want.Cycles, got.Cycles)
	}
	if want.Label != got.Label {
		return fmt.Errorf("label: %q vs %q", want.Label, got.Label)
	}
	return nil
}

// TestAccumulatorEpochSwap pins the read path: repeated snapshots with
// no intervening merge return the same pointer without rebuilding, and
// a merge invalidates it.
func TestAccumulatorEpochSwap(t *testing.T) {
	acc := NewAccumulator()
	if s, swapped := acc.Snapshot(); s != nil || swapped {
		t.Fatalf("empty accumulator snapshot = (%v, %v), want (nil, false)", s, swapped)
	}
	acc.Add(accProfile("a", 1))
	s1, swapped := acc.Snapshot()
	if !swapped {
		t.Fatal("first snapshot after a merge did not rebuild")
	}
	s2, swapped := acc.Snapshot()
	if swapped || s2 != s1 {
		t.Fatal("idle snapshot rebuilt instead of returning the published pointer")
	}
	acc.Add(accProfile("b", 2))
	s3, swapped := acc.Snapshot()
	if !swapped || s3 == s1 {
		t.Fatal("snapshot after a merge did not swap in a fresh aggregate")
	}
	if s3.Epoch != 2 || s3.Uploads != 2 {
		t.Fatalf("snapshot meta = %d/%d, want epoch 2, uploads 2", s3.Epoch, s3.Uploads)
	}
}

// TestAccumulatorShapeMismatch pins that a mismatched profile is
// rejected without poisoning the running aggregate.
func TestAccumulatorShapeMismatch(t *testing.T) {
	acc := NewAccumulator()
	acc.Add(accProfile("a", 1))
	bad := New([]int{5}, 1, 0, nil)
	bad.BlockCounts[0][0] = 1
	if _, err := acc.Add(bad); err == nil {
		t.Fatal("mismatched profile accepted")
	}
	snap, _ := acc.Snapshot()
	want, _ := Aggregate([]*Profile{accProfile("a", 1)})
	if err := mustEqual(want, snap.Profile); err != nil {
		t.Fatalf("aggregate changed by rejected profile: %v", err)
	}
	if snap.Uploads != 1 {
		t.Fatalf("uploads = %d after rejection, want 1", snap.Uploads)
	}
}

// TestAccumulatorConcurrentReaders runs merges and snapshots in
// parallel (exercised under -race) and checks the final snapshot is
// exactly the offline aggregate in recorded merge order.
func TestAccumulatorConcurrentReaders(t *testing.T) {
	acc := NewAccumulator()
	byLabel := map[string]*Profile{}
	const writers, perWriter = 8, 16
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			label := fmt.Sprintf("w%d-%d", w, i)
			byLabel[label] = accProfile(label, float64(w*7+i+1))
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := acc.Add(byLabel[fmt.Sprintf("w%d-%d", w, i)]); err != nil {
					t.Errorf("Add: %v", err)
				}
			}
		}(w)
	}
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if s, _ := acc.Snapshot(); s != nil && s.Profile.TotalBlockCount() <= 0 {
					t.Error("snapshot with non-positive block total")
					return
				}
			}
		}()
	}
	for acc.Uploads() < writers*perWriter {
	}
	close(stop)
	wg.Wait()

	order := acc.MergeOrder()
	ordered := make([]*Profile, len(order))
	for i, label := range order {
		ordered[i] = byLabel[label]
	}
	want, err := Aggregate(ordered)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := acc.Snapshot()
	if err := mustEqual(want, snap.Profile); err != nil {
		t.Fatalf("concurrent aggregate differs from offline merge-order aggregate: %v", err)
	}
}
