// Package profile defines the dynamic count vectors produced by the
// profiling interpreter and the aggregation the paper uses to score
// profile-based estimation (normalize each profile to a common total
// block count, then sum).
package profile

import "fmt"

// Profile holds the dynamic execution counts of one program run.
// Counts are stored as float64 so normalized aggregates and raw counts
// share one representation.
type Profile struct {
	Label string // usually the input name

	// BlockCounts[funcIndex][blockID] is the execution count of a basic
	// block.
	BlockCounts [][]float64

	// FuncCalls[funcIndex] is the number of invocations of the function.
	FuncCalls []float64

	// CallSiteCounts[siteID] is the number of executions of a call site.
	CallSiteCounts []float64

	// BranchTaken/BranchNot count the outcomes of each two-way branch
	// site (the condition evaluating true / false).
	BranchTaken []float64
	BranchNot   []float64

	// SwitchArm[switchSiteID][armIndex] counts switch dispatches.
	SwitchArm [][]float64

	// Cycles is the simulated cost of the run under the interpreter's
	// cost model (used by the selective-optimization experiment).
	Cycles float64
}

// New allocates an empty profile shaped for a program with the given
// dimensions. switchArms[i] is the arm count of switch site i.
func New(blocksPerFunc []int, numSites, numBranches int, switchArms []int) *Profile {
	p := &Profile{
		BlockCounts:    make([][]float64, len(blocksPerFunc)),
		FuncCalls:      make([]float64, len(blocksPerFunc)),
		CallSiteCounts: make([]float64, numSites),
		BranchTaken:    make([]float64, numBranches),
		BranchNot:      make([]float64, numBranches),
		SwitchArm:      make([][]float64, len(switchArms)),
	}
	for i, n := range blocksPerFunc {
		p.BlockCounts[i] = make([]float64, n)
	}
	for i, n := range switchArms {
		p.SwitchArm[i] = make([]float64, n)
	}
	return p
}

// TotalBlockCount returns the sum of all basic-block counts, the
// normalization denominator for aggregation.
func (p *Profile) TotalBlockCount() float64 {
	var t float64
	for _, f := range p.BlockCounts {
		for _, c := range f {
			t += c
		}
	}
	return t
}

// Scale multiplies every count by k, in place.
func (p *Profile) Scale(k float64) {
	for _, f := range p.BlockCounts {
		for i := range f {
			f[i] *= k
		}
	}
	scaleSlice(p.FuncCalls, k)
	scaleSlice(p.CallSiteCounts, k)
	scaleSlice(p.BranchTaken, k)
	scaleSlice(p.BranchNot, k)
	for _, a := range p.SwitchArm {
		scaleSlice(a, k)
	}
	p.Cycles *= k
}

func scaleSlice(s []float64, k float64) {
	for i := range s {
		s[i] *= k
	}
}

// Clone returns a deep copy.
func (p *Profile) Clone() *Profile {
	c := &Profile{
		Label:          p.Label,
		BlockCounts:    make([][]float64, len(p.BlockCounts)),
		FuncCalls:      append([]float64(nil), p.FuncCalls...),
		CallSiteCounts: append([]float64(nil), p.CallSiteCounts...),
		BranchTaken:    append([]float64(nil), p.BranchTaken...),
		BranchNot:      append([]float64(nil), p.BranchNot...),
		SwitchArm:      make([][]float64, len(p.SwitchArm)),
		Cycles:         p.Cycles,
	}
	for i, f := range p.BlockCounts {
		c.BlockCounts[i] = append([]float64(nil), f...)
	}
	for i, a := range p.SwitchArm {
		c.SwitchArm[i] = append([]float64(nil), a...)
	}
	return c
}

// accumulate adds q into p, which must have identical shape.
func (p *Profile) accumulate(q *Profile) error {
	if len(p.BlockCounts) != len(q.BlockCounts) ||
		len(p.CallSiteCounts) != len(q.CallSiteCounts) ||
		len(p.BranchTaken) != len(q.BranchTaken) ||
		len(p.SwitchArm) != len(q.SwitchArm) {
		return fmt.Errorf("profile: shape mismatch (%d/%d funcs, %d/%d sites, %d/%d switches)",
			len(p.BlockCounts), len(q.BlockCounts),
			len(p.CallSiteCounts), len(q.CallSiteCounts),
			len(p.SwitchArm), len(q.SwitchArm))
	}
	for i := range q.BlockCounts {
		if len(p.BlockCounts[i]) != len(q.BlockCounts[i]) {
			return fmt.Errorf("profile: func %d has %d/%d blocks",
				i, len(p.BlockCounts[i]), len(q.BlockCounts[i]))
		}
	}
	for i := range q.SwitchArm {
		if len(p.SwitchArm[i]) != len(q.SwitchArm[i]) {
			return fmt.Errorf("profile: switch %d has %d/%d arms",
				i, len(p.SwitchArm[i]), len(q.SwitchArm[i]))
		}
	}
	for i, f := range q.BlockCounts {
		for j, c := range f {
			p.BlockCounts[i][j] += c
		}
	}
	addSlice(p.FuncCalls, q.FuncCalls)
	addSlice(p.CallSiteCounts, q.CallSiteCounts)
	addSlice(p.BranchTaken, q.BranchTaken)
	addSlice(p.BranchNot, q.BranchNot)
	for i, a := range q.SwitchArm {
		addSlice(p.SwitchArm[i], a)
	}
	p.Cycles += q.Cycles
	return nil
}

func addSlice(dst, src []float64) {
	for i := range src {
		dst[i] += src[i]
	}
}

// Aggregate combines profiles the way the paper scores profiling against
// held-out inputs: each profile is normalized so its total basic-block
// count equals a common value, then the normalized profiles are summed.
func Aggregate(profiles []*Profile) (*Profile, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("profile: nothing to aggregate")
	}
	// Normalize everything to the first profile's total.
	ref := profiles[0].TotalBlockCount()
	if ref == 0 {
		ref = 1
	}
	agg := profiles[0].Clone()
	agg.Label = "aggregate"
	for _, q := range profiles[1:] {
		qc := q.Clone()
		if t := qc.TotalBlockCount(); t > 0 {
			qc.Scale(ref / t)
		}
		if err := agg.accumulate(qc); err != nil {
			return nil, err
		}
	}
	return agg, nil
}

// BlockVector flattens the block counts of one function.
func (p *Profile) BlockVector(funcIndex int) []float64 {
	return p.BlockCounts[funcIndex]
}
