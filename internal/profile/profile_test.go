package profile

import (
	"math"
	"testing"
	"testing/quick"
)

func sample() *Profile {
	p := New([]int{2, 3}, 2, 2, []int{3})
	p.BlockCounts[0][0] = 10
	p.BlockCounts[0][1] = 20
	p.BlockCounts[1][2] = 30
	p.FuncCalls[0] = 5
	p.FuncCalls[1] = 7
	p.CallSiteCounts[1] = 4
	p.BranchTaken[0] = 8
	p.BranchNot[0] = 2
	p.SwitchArm[0][2] = 6
	p.Cycles = 100
	return p
}

func TestTotalAndScale(t *testing.T) {
	p := sample()
	if got := p.TotalBlockCount(); got != 60 {
		t.Fatalf("total = %g, want 60", got)
	}
	p.Scale(0.5)
	if got := p.TotalBlockCount(); got != 30 {
		t.Errorf("scaled total = %g, want 30", got)
	}
	if p.FuncCalls[1] != 3.5 || p.Cycles != 50 || p.SwitchArm[0][2] != 3 {
		t.Errorf("scale missed fields: %+v", p)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := sample()
	c := p.Clone()
	c.BlockCounts[0][0] = 999
	c.SwitchArm[0][0] = 999
	c.FuncCalls[0] = 999
	if p.BlockCounts[0][0] == 999 || p.SwitchArm[0][0] == 999 || p.FuncCalls[0] == 999 {
		t.Error("Clone shares storage with the original")
	}
}

func TestAggregateNormalizes(t *testing.T) {
	a := sample() // total 60
	b := sample()
	b.Scale(3) // total 180, but identical shape
	agg, err := Aggregate([]*Profile{a, b})
	if err != nil {
		t.Fatal(err)
	}
	// b is normalized to a's total, so the aggregate is exactly 2x a.
	if got := agg.TotalBlockCount(); math.Abs(got-120) > 1e-9 {
		t.Errorf("aggregate total = %g, want 120", got)
	}
	if math.Abs(agg.FuncCalls[0]-10) > 1e-9 {
		t.Errorf("aggregate FuncCalls[0] = %g, want 10", agg.FuncCalls[0])
	}
}

func TestAggregateErrors(t *testing.T) {
	if _, err := Aggregate(nil); err == nil {
		t.Error("nil aggregate should fail")
	}
	if _, err := Aggregate([]*Profile{}); err == nil {
		t.Error("empty-slice aggregate should fail")
	}
	a := sample()
	b := New([]int{1}, 1, 1, nil)
	if _, err := Aggregate([]*Profile{a, b}); err == nil {
		t.Error("shape mismatch should fail")
	}
}

// Inner-shape mismatches (same number of functions or switches, but
// different lengths inside) must error, not panic.
func TestAggregateInnerShapeMismatch(t *testing.T) {
	a := sample() // shape {2,3} blocks, 2 sites, 2 branches, switch arms {3}
	blocks := New([]int{2, 4}, 2, 2, []int{3})
	if _, err := Aggregate([]*Profile{a, blocks}); err == nil {
		t.Error("per-function block-count mismatch should fail")
	}
	arms := New([]int{2, 3}, 2, 2, []int{5})
	if _, err := Aggregate([]*Profile{a, arms}); err == nil {
		t.Error("switch-arm count mismatch should fail")
	}
	switches := New([]int{2, 3}, 2, 2, []int{3, 3})
	if _, err := Aggregate([]*Profile{a, switches}); err == nil {
		t.Error("switch count mismatch should fail")
	}
}

func TestAggregateSingle(t *testing.T) {
	a := sample()
	agg, err := Aggregate([]*Profile{a})
	if err != nil {
		t.Fatal(err)
	}
	if agg.TotalBlockCount() != a.TotalBlockCount() {
		t.Error("single-profile aggregate should match the profile")
	}
	if agg.Label != "aggregate" {
		t.Errorf("aggregate label = %q", agg.Label)
	}
	agg.Scale(2)
	if a.TotalBlockCount() != 60 {
		t.Error("aggregate shares storage with its input")
	}
}

// All-zero profiles must aggregate without dividing by zero.
func TestAggregateZeroTotals(t *testing.T) {
	a := New([]int{2}, 1, 1, nil)
	b := New([]int{2}, 1, 1, nil)
	agg, err := Aggregate([]*Profile{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if got := agg.TotalBlockCount(); got != 0 {
		t.Errorf("zero aggregate total = %g, want 0", got)
	}
	for _, row := range agg.BlockCounts {
		for _, c := range row {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				t.Fatalf("zero aggregate produced non-finite count %v", c)
			}
		}
	}
}

// Aggregation must not mutate its inputs.
func TestAggregateInputsUntouched(t *testing.T) {
	a, b := sample(), sample()
	b.Scale(4)
	wantA, wantB := a.TotalBlockCount(), b.TotalBlockCount()
	if _, err := Aggregate([]*Profile{a, b}); err != nil {
		t.Fatal(err)
	}
	if a.TotalBlockCount() != wantA || b.TotalBlockCount() != wantB {
		t.Error("Aggregate mutated an input profile")
	}
}

// Property: aggregation is invariant under per-profile scaling — the
// paper's normalization makes inputs with different run lengths count
// equally.
func TestAggregateScaleInvariance(t *testing.T) {
	f := func(scaleRaw uint8) bool {
		scale := float64(scaleRaw%50) + 0.5
		a1, b1 := sample(), sample()
		b1.BlockCounts[1][0] = 50 // make b different from a
		agg1, err := Aggregate([]*Profile{a1, b1})
		if err != nil {
			return false
		}
		a2, b2 := sample(), sample()
		b2.BlockCounts[1][0] = 50
		b2.Scale(scale)
		agg2, err := Aggregate([]*Profile{a2, b2})
		if err != nil {
			return false
		}
		for i := range agg1.FuncCalls {
			if math.Abs(agg1.FuncCalls[i]-agg2.FuncCalls[i]) > 1e-6 {
				return false
			}
		}
		return math.Abs(agg1.TotalBlockCount()-agg2.TotalBlockCount()) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBlockVector(t *testing.T) {
	p := sample()
	v := p.BlockVector(1)
	if len(v) != 3 || v[2] != 30 {
		t.Errorf("BlockVector = %v", v)
	}
}
