package core

import (
	"staticest/internal/cast"
	"staticest/internal/cfg"
	"staticest/internal/sem"
)

// NoReturnFuncs computes the set of defined functions that can never
// return: every path from entry reaches a call to exit/abort (or to
// another no-return function) before any return. The paper's error
// heuristic says "errors (calling abort or exit) are unlikely"; in real
// programs those calls are usually wrapped (die, fatal, parse_error), so
// the heuristic needs the transitive closure.
func NoReturnFuncs(cp *cfg.Program) map[int]bool {
	noReturn := make(map[int]bool)
	// Fixpoint: marking one function no-return can cut paths in its
	// callers.
	for changed := true; changed; {
		changed = false
		for i, g := range cp.Graphs {
			if noReturn[i] {
				continue
			}
			if !canReturn(g, noReturn) {
				noReturn[i] = true
				changed = true
			}
		}
	}
	return noReturn
}

// canReturn reports whether any TermReturn block is reachable from entry
// without first executing a call to a known no-return function.
func canReturn(g *cfg.Graph, noReturn map[int]bool) bool {
	if len(g.Blocks) == 0 {
		return true
	}
	seen := make([]bool, len(g.Blocks))
	work := []*cfg.Block{g.Entry}
	seen[g.Entry.ID] = true
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		if blockTerminates(blk, noReturn) {
			continue // control never leaves this block normally
		}
		if blk.Term == cfg.TermReturn {
			return true
		}
		for _, s := range blk.Succs {
			if !seen[s.ID] {
				seen[s.ID] = true
				work = append(work, s)
			}
		}
	}
	return false
}

// blockTerminates reports whether the block contains a call that never
// returns (in its statements, condition, tag, or return value).
func blockTerminates(blk *cfg.Block, noReturn map[int]bool) bool {
	found := false
	check := func(e cast.Expr) {
		cast.WalkExpr(e, func(x cast.Expr) bool {
			if found {
				return false
			}
			if c, ok := x.(*cast.Call); ok {
				if callee := c.Callee(); callee != nil && calleeNoReturn(callee, noReturn) {
					found = true
					return false
				}
			}
			return true
		})
	}
	for _, s := range blk.Stmts {
		for _, e := range cast.StmtExprs(s) {
			check(e)
		}
		if found {
			return true
		}
	}
	if blk.Cond != nil {
		check(blk.Cond)
	}
	if blk.Tag != nil {
		check(blk.Tag)
	}
	if blk.RetVal != nil {
		check(blk.RetVal)
	}
	return found
}

func calleeNoReturn(callee *cast.Object, noReturn map[int]bool) bool {
	if callee.Builtin || callee.FuncIndex < 0 {
		return sem.NoReturnBuiltins[callee.Name]
	}
	return noReturn[callee.FuncIndex]
}
