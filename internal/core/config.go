// Package core implements the paper's static estimators: the smart
// branch predictor (Ball/Larus-style heuristics at the AST + type
// level), the loop/smart/Markov intra-procedural block-frequency
// estimators, the call_site/direct/all_rec/all_rec2/Markov
// inter-procedural invocation estimators, and the combined call-site
// frequency estimator.
package core

// Config carries the estimator parameters the paper fixes (and this
// reproduction ablates).
type Config struct {
	// LoopCount is the assumed iteration count of every loop (paper: 5).
	// A loop test therefore runs LoopCount times per loop entry and the
	// body LoopCount-1 times, matching a continuation probability of
	// 1 - 1/LoopCount.
	LoopCount float64

	// TakenProb is the probability assigned to the predicted arm of a
	// two-way branch (paper: 0.8; "the exact value chosen did not have a
	// significant effect").
	TakenProb float64

	// SwitchWeightByLabels weights switch arms by their number of case
	// labels (the paper's slightly-better variant); false weights arms
	// equally.
	SwitchWeightByLabels bool

	// UseHeuristics enables the smart branch heuristics; when false,
	// every two-way branch is 50/50 (the paper's plain "loop" estimator).
	UseHeuristics bool

	// DisabledHeuristics removes individual heuristics by name
	// ("pointer", "call", "opcode", "logical", "store") for the ablation
	// benchmarks.
	DisabledHeuristics map[string]bool

	// RecursionScale multiplies the invocation estimate of recursive
	// functions in the direct/all_rec estimators (paper: 5).
	RecursionScale float64

	// RecursionClamp replaces self-arc weights >= 1 in the Markov call
	// graph (paper: 0.8).
	RecursionClamp float64

	// SCCCeiling bounds SCC-subproblem solutions in the Markov call
	// graph (paper: 5).
	SCCCeiling float64

	// SCCScaleStep is the factor applied to an SCC's arc weights each
	// time its subproblem fails (the paper scales "by a constant").
	SCCScaleStep float64
}

// DefaultConfig returns the paper's parameter choices.
func DefaultConfig() Config {
	return Config{
		LoopCount:            5,
		TakenProb:            0.8,
		SwitchWeightByLabels: true,
		UseHeuristics:        true,
		RecursionScale:       5,
		RecursionClamp:       0.8,
		SCCCeiling:           5,
		SCCScaleStep:         0.9,
	}
}

func (c Config) heuristicEnabled(name string) bool {
	if !c.UseHeuristics {
		return false
	}
	return !c.DisabledHeuristics[name]
}

// loopContinueProb converts the loop iteration guess to a branch
// probability: iterating N times means the test succeeds with
// probability 1 - 1/N.
func (c Config) loopContinueProb() float64 {
	if c.LoopCount <= 1 {
		return 0.5
	}
	return 1 - 1/c.LoopCount
}
