package core_test

import (
	"math"
	"testing"

	"staticest/internal/callgraph"
	"staticest/internal/cfg"
	"staticest/internal/core"
	"staticest/internal/cparse"
	"staticest/internal/sem"
)

type unit struct {
	sp  *sem.Program
	cp  *cfg.Program
	cg  *callgraph.Graph
	est *core.Estimates
}

func compile(t *testing.T, src string) *unit {
	t.Helper()
	file, err := cparse.ParseFile("t.c", []byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sem.Analyze(file)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	cp, err := cfg.Build(sp)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	cg := callgraph.Build(sp)
	return &unit{sp: sp, cp: cp, cg: cg,
		est: core.EstimateAll(cp, cg, core.DefaultConfig())}
}

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// --- branch predictions ------------------------------------------------------

// predictionFor compiles a snippet with one if and returns its verdict.
func predictionFor(t *testing.T, body string) core.BranchPrediction {
	t.Helper()
	u := compile(t, body)
	for _, bs := range u.sp.BranchSites {
		if !bs.Stmt.IsLoop() {
			return u.est.Pred.Branch[bs.ID]
		}
	}
	t.Fatal("no if branch found")
	return core.BranchPrediction{}
}

func TestHeuristicPointer(t *testing.T) {
	p := predictionFor(t, `
int f(int *p) { if (p == 0) return 1; return *p; }
int main(void){ return 0; }`)
	if p.Heuristic != "pointer" || !approx(p.ProbTrue, 0.2) {
		t.Errorf("p == NULL: %+v, want pointer/0.2", p)
	}
	p = predictionFor(t, `
int f(int *p) { if (p != 0) return *p; return 0; }
int main(void){ return 0; }`)
	if p.Heuristic != "pointer" || !approx(p.ProbTrue, 0.8) {
		t.Errorf("p != NULL: %+v, want pointer/0.8", p)
	}
	p = predictionFor(t, `
int f(int *p, int *q) { if (p == q) return 1; return 0; }
int main(void){ return 0; }`)
	if p.Heuristic != "pointer" || !approx(p.ProbTrue, 0.2) {
		t.Errorf("p == q: %+v, want pointer/0.2", p)
	}
	p = predictionFor(t, `
int g(int *p) { if (p) return *p; return 0; }
int main(void){ return 0; }`)
	if p.Heuristic != "pointer" || !approx(p.ProbTrue, 0.8) {
		t.Errorf("if (p): %+v, want pointer/0.8", p)
	}
}

func TestHeuristicErrorCall(t *testing.T) {
	p := predictionFor(t, `
int f(int x) { if (x) { exit(1); } return x; }
int main(void){ return 0; }`)
	if p.Heuristic != "call" || !approx(p.ProbTrue, 0.2) {
		t.Errorf("exit arm: %+v, want call/0.2", p)
	}
	// Transitive: die() wraps exit().
	p = predictionFor(t, `
void die(void) { printf("boom\n"); exit(1); }
int f(int x) { if (x) die(); return x; }
int main(void){ return 0; }`)
	if p.Heuristic != "call" || !approx(p.ProbTrue, 0.2) {
		t.Errorf("die arm: %+v, want call/0.2 (transitive no-return)", p)
	}
}

func TestHeuristicOpcode(t *testing.T) {
	p := predictionFor(t, `
int f(int a, int b) { if (a == b) return 1; return 0; }
int main(void){ return 0; }`)
	if p.Heuristic != "opcode" || !approx(p.ProbTrue, 0.2) {
		t.Errorf("a == b: %+v, want opcode/0.2", p)
	}
	p = predictionFor(t, `
int f(int a) { if (a < 0) return 1; return 0; }
int main(void){ return 0; }`)
	if p.Heuristic != "opcode" || !approx(p.ProbTrue, 0.2) {
		t.Errorf("a < 0: %+v, want opcode/0.2", p)
	}
}

func TestHeuristicLogical(t *testing.T) {
	p := predictionFor(t, `
int f(int a, int b, int c) { if (a > 1 && b > 2 && c > 3) return 1; return 0; }
int main(void){ return 0; }`)
	if p.Heuristic != "logical" || !approx(p.ProbTrue, 0.2) {
		t.Errorf("&& chain: %+v, want logical/0.2", p)
	}
	p = predictionFor(t, `
int f(int a, int b) { if (a > 1 || b > 2) return 1; return 0; }
int main(void){ return 0; }`)
	if p.Heuristic != "logical" || !approx(p.ProbTrue, 0.8) {
		t.Errorf("|| chain: %+v, want logical/0.8", p)
	}
}

func TestHeuristicStore(t *testing.T) {
	p := predictionFor(t, `
int f(int a) {
	int hits = 0;
	if (a > 1) hits = hits + a;
	return hits;
}
int main(void){ return 0; }`)
	if p.Heuristic != "store" || !approx(p.ProbTrue, 0.8) {
		t.Errorf("store arm: %+v, want store/0.8", p)
	}
}

func TestHeuristicReturn(t *testing.T) {
	p := predictionFor(t, `
int f(int a, int b) { if (a > b) { return b; } b = a; return b; }
int main(void){ return 0; }`)
	if p.Heuristic != "return" || !approx(p.ProbTrue, 0.2) {
		t.Errorf("return arm: %+v, want return/0.2", p)
	}
}

func TestHeuristicConstant(t *testing.T) {
	u := compile(t, `
int f(void) { if (1) return 1; return 0; }
int main(void){ return 0; }`)
	p := u.est.Pred.Branch[0]
	if !p.Constant || !p.ConstTrue {
		t.Errorf("constant condition: %+v", p)
	}
}

func TestHeuristicLoop(t *testing.T) {
	u := compile(t, `
int f(int n) { while (n) n--; return 0; }
int main(void){ return 0; }`)
	p := u.est.Pred.Branch[0]
	if p.Heuristic != "loop" || !approx(p.ProbTrue, 0.8) {
		t.Errorf("loop branch: %+v, want loop/0.8", p)
	}
}

func TestHeuristicDisabling(t *testing.T) {
	src := `
int f(int a, int b) { if (a == b) return 1; return 0; }
int main(void){ return 0; }`
	u := compile(t, src)
	conf := core.DefaultConfig()
	conf.DisabledHeuristics = map[string]bool{"opcode": true}
	est := core.EstimateAll(u.cp, u.cg, conf)
	p := est.Pred.Branch[0]
	// With opcode disabled, the return heuristic picks it up instead.
	if p.Heuristic == "opcode" {
		t.Errorf("opcode fired while disabled: %+v", p)
	}
}

func TestSwitchArmWeights(t *testing.T) {
	u := compile(t, `
int f(int c) {
	switch (c) {
	case 1: case 2: case 3: return 30;
	case 4: return 10;
	default: return 0;
	}
}
int main(void){ return 0; }`)
	w := u.est.Pred.Switch[0]
	if len(w) != 3 {
		t.Fatalf("%d arms, want 3", len(w))
	}
	// Label weighting: 3 labels : 1 label : default (1) of 5.
	if !approx(w[0], 3.0/5) || !approx(w[1], 1.0/5) || !approx(w[2], 1.0/5) {
		t.Errorf("weights = %v", w)
	}
	total := w[0] + w[1] + w[2]
	if !approx(total, 1) {
		t.Errorf("weights sum to %g", total)
	}
	// Equal weighting under the ablation config.
	conf := core.DefaultConfig()
	conf.SwitchWeightByLabels = false
	est := core.EstimateAll(u.cp, u.cg, conf)
	for _, v := range est.Pred.Switch[0] {
		if !approx(v, 1.0/3) {
			t.Errorf("equal weights = %v", est.Pred.Switch[0])
		}
	}
}

// --- intra-procedural estimators ---------------------------------------------

func TestIntraLoopNesting(t *testing.T) {
	u := compile(t, `
int f(int n) {
	int i, j, s = 0;
	for (i = 0; i < n; i++)
		for (j = 0; j < n; j++)
			s++;
	return s;
}
int main(void){ return 0; }`)
	res := u.est.IntraLoop[0]
	// Block names repeat across nesting levels, so assert on the
	// multiset of frequencies: entry 1, outer test 5, inner test 20,
	// inner body 16 (and for.post at matching rates), exit 1.
	counts := map[float64]int{}
	for _, v := range res.BlockFreq {
		counts[v]++
	}
	for _, want := range []float64{1, 5, 20, 16} {
		if counts[want] == 0 {
			t.Errorf("no block with frequency %g (have %v)", want, res.BlockFreq)
		}
	}
	// The inner body must be the deepest nest: 4 * 4 = 16 body
	// executions per function entry, with the inner test at 20.
	max := 0.0
	for _, v := range res.BlockFreq {
		if v > max {
			max = v
		}
	}
	if !approx(max, 20) {
		t.Errorf("max frequency = %g, want 20", max)
	}
}

func TestIntraMarkovConservation(t *testing.T) {
	// For a branchy function, Markov frequencies must satisfy flow
	// conservation: each block's frequency equals its weighted inflow.
	u := compile(t, `
int f(int a, int b) {
	int r = 0;
	if (a > b) r = 1;
	while (a > 0) {
		a--;
		if (a == b) break;
	}
	return r;
}
int main(void){ return 0; }`)
	res := u.est.IntraMarkov[0]
	if res.Fallback {
		t.Fatal("unexpected fallback")
	}
	// Frequencies must be non-negative and the entry must be >= 1.
	g := u.cp.Graphs[0]
	for i, v := range res.BlockFreq {
		if v < 0 {
			t.Errorf("block %d has negative frequency %g", i, v)
		}
	}
	if res.BlockFreq[g.Entry.ID] < 1-1e-9 {
		t.Errorf("entry frequency %g < 1", res.BlockFreq[g.Entry.ID])
	}
}

func TestIntraMarkovFallbackOnInfiniteLoop(t *testing.T) {
	u := compile(t, `
int f(void) { for (;;) { } }
int main(void){ return 0; }`)
	if !u.est.IntraMarkov[0].Fallback {
		t.Error("infinite loop should trigger the AST fallback")
	}
}

// --- inter-procedural estimators ---------------------------------------------

func TestInterSimpleRecursion(t *testing.T) {
	u := compile(t, `
int fact(int n) { if (n < 2) return 1; return n * fact(n - 1); }
int ping(int n);
int pong(int n) { if (n <= 0) return 0; return ping(n - 1); }
int ping(int n) { if (n <= 0) return 1; return pong(n - 1); }
int leaf(void) { return 7; }
int main(void) { return fact(5) + ping(9) + leaf(); }`)
	idx := map[string]int{}
	for i, fd := range u.sp.Funcs {
		idx[fd.Name()] = i
	}
	inter := u.est.Inter
	// direct scales only the self-recursive fact.
	if !approx(inter.Direct[idx["fact"]], inter.CallSite[idx["fact"]]*5) {
		t.Errorf("direct did not scale fact: %g vs %g",
			inter.Direct[idx["fact"]], inter.CallSite[idx["fact"]])
	}
	if !approx(inter.Direct[idx["ping"]], inter.CallSite[idx["ping"]]) {
		t.Error("direct scaled mutually-recursive ping")
	}
	// all_rec scales the mutual pair too.
	if !approx(inter.AllRec[idx["ping"]], inter.CallSite[idx["ping"]]*5) {
		t.Error("all_rec did not scale ping")
	}
	if !approx(inter.AllRec[idx["leaf"]], inter.CallSite[idx["leaf"]]) {
		t.Error("all_rec scaled non-recursive leaf")
	}
}

func TestInterMarkovSimpleChain(t *testing.T) {
	u := compile(t, `
int leaf(void) { return 1; }
int mid(void) { return leaf() + leaf(); }
int main(void) { return mid(); }`)
	idx := map[string]int{}
	for i, fd := range u.sp.Funcs {
		idx[fd.Name()] = i
	}
	inv := u.est.InterMarkov.Inv
	if !approx(inv[idx["main"]], 1) {
		t.Errorf("main = %g, want 1", inv[idx["main"]])
	}
	if !approx(inv[idx["mid"]], 1) {
		t.Errorf("mid = %g, want 1", inv[idx["mid"]])
	}
	if !approx(inv[idx["leaf"]], 2) {
		t.Errorf("leaf = %g, want 2 (two call sites)", inv[idx["leaf"]])
	}
}

func TestInterMarkovRecursionClamp(t *testing.T) {
	// Both recursive calls sit in the predicted arm, giving the self
	// arc weight > 1 — the paper's count_nodes example. The clamp must
	// keep the solution positive and finite.
	u := compile(t, `
struct tree { struct tree *left, *right; };
int count_nodes(struct tree *node) {
	if (node == 0) return 0;
	return count_nodes(node->left) + count_nodes(node->right) + 1;
}
int main(void) { return count_nodes(0); }`)
	if u.est.InterMarkov.ClampedSelfArcs != 1 {
		t.Errorf("clamped %d self arcs, want 1", u.est.InterMarkov.ClampedSelfArcs)
	}
	for i, v := range u.est.InterMarkov.Inv {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("func %d invocation estimate %g invalid", i, v)
		}
	}
	idx := map[string]int{}
	for i, fd := range u.sp.Funcs {
		idx[fd.Name()] = i
	}
	if u.est.InterMarkov.Inv[idx["count_nodes"]] <= 1 {
		t.Errorf("count_nodes = %g, want amplified recursion > 1",
			u.est.InterMarkov.Inv[idx["count_nodes"]])
	}
}

func TestInterMarkovPointerNode(t *testing.T) {
	u := compile(t, `
int alpha(void) { return 1; }
int beta(void) { return 2; }
int (*table[3])(void) = {alpha, beta, alpha};
int main(void) {
	int i, s = 0;
	for (i = 0; i < 3; i++) s += table[i % 3]();
	return s;
}`)
	mk := u.est.InterMarkov
	if mk.PointerFlow <= 0 {
		t.Fatalf("pointer node saw no flow: %+v", mk)
	}
	idx := map[string]int{}
	for i, fd := range u.sp.Funcs {
		idx[fd.Name()] = i
	}
	a, b := mk.Inv[idx["alpha"]], mk.Inv[idx["beta"]]
	// alpha appears twice in the table, beta once: 2:1 flow split.
	if a <= b || !approx(a, 2*b) {
		t.Errorf("pointer split alpha=%g beta=%g, want 2:1", a, b)
	}
}

func TestNoReturnAnalysis(t *testing.T) {
	u := compile(t, `
void die(void) { printf("x"); exit(1); }
void die2(void) { die(); }
void maybe(int x) { if (x) exit(1); }
int ok(void) { return 1; }
int main(void) { maybe(0); return ok(); }`)
	nr := core.NoReturnFuncs(u.cp)
	byName := map[string]bool{}
	for i, fd := range u.sp.Funcs {
		byName[fd.Name()] = nr[i]
	}
	if !byName["die"] || !byName["die2"] {
		t.Errorf("die/die2 not detected as no-return: %v", byName)
	}
	if byName["maybe"] || byName["ok"] || byName["main"] {
		t.Errorf("returning functions misclassified: %v", byName)
	}
}

func TestCallSiteEstimates(t *testing.T) {
	u := compile(t, `
int helper(int x) { return x + 1; }
int hot(int n) {
	int i, s = 0;
	for (i = 0; i < n; i++) s = helper(s);
	return s;
}
int main(void) { return hot(100) + helper(1); }`)
	// The loop site in hot must outrank the cold site in main.
	var loopSite, coldSite float64
	for _, s := range u.sp.CallSites {
		if s.Callee == nil || s.Callee.Name != "helper" {
			continue
		}
		if s.Caller.Name() == "hot" {
			loopSite = u.est.SiteFreqMarkov[s.ID]
		} else {
			coldSite = u.est.SiteFreqMarkov[s.ID]
		}
	}
	if loopSite <= coldSite {
		t.Errorf("loop site %g should outrank cold site %g", loopSite, coldSite)
	}
}

func TestEstimatesAreFinite(t *testing.T) {
	// A torture program combining recursion, pointers, switches, gotos.
	u := compile(t, `
int visit(int n);
int helper(int n) { return n > 0 ? visit(n - 1) : 0; }
int visit(int n) {
	switch (n % 3) {
	case 0: return helper(n - 1);
	case 1: goto out;
	default: return visit(n - 2) + visit(n - 3);
	}
out:
	return 1;
}
int (*fp)(int) = visit;
int main(void) { return fp(10); }`)
	check := func(name string, vs []float64) {
		for i, v := range vs {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s[%d] = %g", name, i, v)
			}
		}
	}
	check("CallSite", u.est.Inter.CallSite)
	check("Direct", u.est.Inter.Direct)
	check("AllRec", u.est.Inter.AllRec)
	check("AllRec2", u.est.Inter.AllRec2)
	check("Markov", u.est.InterMarkov.Inv)
	check("SiteFreqDirect", u.est.SiteFreqDirect)
	check("SiteFreqMarkov", u.est.SiteFreqMarkov)
	for f := range u.sp.Funcs {
		check("IntraLoop", u.est.IntraLoop[f].BlockFreq)
		check("IntraSmart", u.est.IntraSmart[f].BlockFreq)
		check("IntraMarkov", u.est.IntraMarkov[f].BlockFreq)
	}
}
