package core

import (
	"staticest/internal/callgraph"
	"staticest/internal/cast"
	"staticest/internal/cfg"
)

// Estimates bundles every static estimate the paper produces for one
// program.
type Estimates struct {
	Config Config
	Pred   *Predictions

	// Intra-procedural block frequencies, one IntraResult per function
	// (normalized to one function entry).
	IntraLoop   []*IntraResult
	IntraSmart  []*IntraResult
	IntraMarkov []*IntraResult

	// SiteBlocks locates each call site's containing block. SiteLocal is
	// each site's frequency per entry of its caller under the smart AST
	// estimator (used by the simple invocation estimators, per the
	// paper's "sum of the basic block counts of its call sites");
	// SiteLocalMarkov is the same under the Markov intra estimator,
	// which models explicit transfers of control and therefore feeds the
	// Markov call-graph chain.
	SiteBlocks      []*cfg.Block
	SiteLocal       []float64
	SiteLocalMarkov []float64

	// Function invocation estimates.
	Inter       *InterSimple
	InterMarkov *MarkovInterResult

	// Global call-site frequency estimates (indirect sites excluded,
	// i.e. left at zero): local frequency × caller invocation estimate.
	SiteFreqDirect []float64
	SiteFreqMarkov []float64
}

// EstimateAll runs the complete estimator suite.
func EstimateAll(cp *cfg.Program, cg *callgraph.Graph, conf Config) *Estimates {
	sp := cp.Sem
	e := &Estimates{Config: conf, Pred: Predict(cp, conf)}

	n := len(sp.Funcs)
	e.IntraLoop = make([]*IntraResult, n)
	e.IntraSmart = make([]*IntraResult, n)
	e.IntraMarkov = make([]*IntraResult, n)
	for i, g := range cp.Graphs {
		e.IntraLoop[i] = IntraAST(g, e.Pred, conf, false)
		e.IntraSmart[i] = IntraAST(g, e.Pred, conf, true)
		e.IntraMarkov[i] = IntraMarkov(g, e.Pred, conf)
	}

	e.SiteBlocks = SiteLocations(cp)
	e.SiteLocal = siteLocalFreq(sp, e.SiteBlocks, e.IntraSmart)
	e.SiteLocalMarkov = siteLocalFreq(sp, e.SiteBlocks, e.IntraMarkov)

	e.Inter = EstimateInterSimple(cg, e.SiteLocal, conf)
	e.InterMarkov = EstimateInterMarkov(cg, e.SiteLocalMarkov, conf)

	// Global call-site rankings combine the smart per-entry site
	// frequencies with each invocation estimator ("combining our intra-
	// and inter-procedural heuristics", Section 5.3). The Markov chain
	// itself uses the Markov-intra weights above; the site ranking uses
	// the smart weights, as the paper's Figure 9 does.
	e.SiteFreqDirect = siteGlobalFreq(cg, e.SiteLocal, e.Inter.Direct)
	e.SiteFreqMarkov = siteGlobalFreq(cg, e.SiteLocal, e.InterMarkov.Inv)
	return e
}

// siteGlobalFreq combines intra- and inter-procedural estimates into a
// global call-site ranking: each direct site's frequency is its local
// (per-entry) frequency times its caller's invocation estimate.
// Indirect sites are excluded (they cannot be inlined) and stay zero.
func siteGlobalFreq(cg *callgraph.Graph, local, inv []float64) []float64 {
	sp := cg.Prog
	out := make([]float64, len(sp.CallSites))
	for _, site := range sp.CallSites {
		if site.Indirect() {
			continue
		}
		out[site.ID] = local[site.ID] * inv[site.Caller.Obj.FuncIndex]
	}
	return out
}

// StmtFreqOf returns the smart AST-walk statement frequencies of a
// function (the annotation Figure 3 of the paper prints).
func (e *Estimates) StmtFreqOf(funcIndex int) map[cast.Stmt]float64 {
	return e.IntraSmart[funcIndex].StmtFreq
}
