package core

import (
	"staticest/internal/cast"
	"staticest/internal/cfg"
	"staticest/internal/ctypes"
	"staticest/internal/fold"
	"staticest/internal/sem"
)

// BranchPrediction is the smart predictor's verdict on one two-way
// branch site.
type BranchPrediction struct {
	// ProbTrue is the predicted probability that the condition is true.
	ProbTrue float64
	// Heuristic names the rule that fired ("loop", "pointer", "call",
	// "opcode", "logical", "store", "none", "const").
	Heuristic string
	// Constant marks conditions decided by constant folding; these are
	// predicted perfectly but excluded from miss-rate scoring.
	Constant  bool
	ConstTrue bool
}

// Taken reports the predicted direction (ties predict false, i.e.
// fall-through).
func (p BranchPrediction) Taken() bool { return p.ProbTrue > 0.5 }

// Predictions holds branch and switch predictions for a whole program,
// indexed by the sem-assigned site IDs.
type Predictions struct {
	Branch []BranchPrediction
	// Switch[siteID][arm] is the probability of each switch arm, in AST
	// case order, with one trailing entry for the implicit default when
	// the source switch has none (matching the CFG and profile layouts).
	Switch [][]float64
}

// Predict runs the branch predictor over every branch and switch site.
func Predict(cp *cfg.Program, conf Config) *Predictions {
	sp := cp.Sem
	pr := &Predictions{
		Branch: make([]BranchPrediction, len(sp.BranchSites)),
		Switch: make([][]float64, len(sp.SwitchSites)),
	}
	noReturn := NoReturnFuncs(cp)
	// Per-function read sets for the store heuristic, computed lazily.
	readSets := make(map[*cast.FuncDecl]map[*cast.Object]bool)
	readSet := func(fd *cast.FuncDecl) map[*cast.Object]bool {
		rs, ok := readSets[fd]
		if !ok {
			rs = cast.ReadObjects(fd.Body)
			readSets[fd] = rs
		}
		return rs
	}
	// isErr recognizes transitively no-return callees plus the classic
	// error-ish names.
	isErr := func(callee *cast.Object) bool {
		if calleeNoReturn(callee, noReturn) {
			return true
		}
		switch callee.Name {
		case "error", "fatal", "panic_error":
			return true
		}
		return false
	}
	for _, bs := range sp.BranchSites {
		pr.Branch[bs.ID] = predictBranch(bs, conf, readSet, isErr)
	}
	for _, ss := range sp.SwitchSites {
		pr.Switch[ss.ID] = predictSwitch(ss.Stmt, conf)
	}
	return pr
}

func predictBranch(bs *sem.BranchSite, cfg Config,
	readSet func(*cast.FuncDecl) map[*cast.Object]bool,
	isErr func(*cast.Object) bool) BranchPrediction {

	cond := bs.Stmt.CondExpr()
	if cond != nil {
		if v, isConst := fold.BoolCond(cond); isConst {
			p := 0.0
			if v {
				p = 1.0
			}
			return BranchPrediction{ProbTrue: p, Heuristic: "const", Constant: true, ConstTrue: v}
		}
	}
	hi, lo := cfg.TakenProb, 1-cfg.TakenProb

	// Loop continuation branches: predict "keep looping".
	if bs.Stmt.IsLoop() {
		return BranchPrediction{ProbTrue: cfg.loopContinueProb(), Heuristic: "loop"}
	}

	ifStmt, _ := bs.Stmt.(*cast.If)

	// 1. Pointer heuristic: pointers are unlikely to be NULL, and two
	//    pointers are unlikely to be equal.
	if cfg.heuristicEnabled("pointer") {
		if p, ok := pointerHeuristic(cond, hi, lo); ok {
			return BranchPrediction{ProbTrue: p, Heuristic: "pointer"}
		}
	}

	// 2. Error-call heuristic: an arm that calls abort/exit — directly
	//    or through a wrapper that never returns — is unlikely.
	if cfg.heuristicEnabled("call") && ifStmt != nil {
		thenErr := ifStmt.Then != nil && cast.ContainsCallMatching(ifStmt.Then, isErr)
		elseErr := ifStmt.Else != nil && cast.ContainsCallMatching(ifStmt.Else, isErr)
		switch {
		case thenErr && !elseErr:
			return BranchPrediction{ProbTrue: lo, Heuristic: "call"}
		case elseErr && !thenErr:
			return BranchPrediction{ProbTrue: hi, Heuristic: "call"}
		}
	}

	// 3. Opcode heuristic: equality is unlikely; comparisons against
	//    zero/negative bounds are unlikely.
	if cfg.heuristicEnabled("opcode") {
		if p, ok := opcodeHeuristic(cond, hi, lo); ok {
			return BranchPrediction{ProbTrue: p, Heuristic: "opcode"}
		}
	}

	// 4. Logical-operator heuristic: conjunctions are less likely to be
	//    true; disjunctions more likely.
	if cfg.heuristicEnabled("logical") {
		if l, ok := cond.(*cast.Logical); ok {
			if l.AndAnd {
				return BranchPrediction{ProbTrue: lo, Heuristic: "logical"}
			}
			return BranchPrediction{ProbTrue: hi, Heuristic: "logical"}
		}
	}

	// 5. Store heuristic: when one arm writes variables that are read
	//    elsewhere in the function, that arm is more likely.
	if cfg.heuristicEnabled("store") && ifStmt != nil {
		rs := readSet(bs.Func)
		thenStores := armStoresRead(ifStmt.Then, rs)
		elseStores := armStoresRead(ifStmt.Else, rs)
		switch {
		case thenStores && !elseStores:
			return BranchPrediction{ProbTrue: hi, Heuristic: "store"}
		case elseStores && !thenStores:
			return BranchPrediction{ProbTrue: lo, Heuristic: "store"}
		}
	}

	// 6. Return heuristic (Ball/Larus): an arm that returns early is
	//    unlikely.
	if cfg.heuristicEnabled("return") && ifStmt != nil {
		thenRet := ifStmt.Then != nil && cast.ContainsReturn(ifStmt.Then)
		elseRet := ifStmt.Else != nil && cast.ContainsReturn(ifStmt.Else)
		switch {
		case thenRet && !elseRet:
			return BranchPrediction{ProbTrue: lo, Heuristic: "return"}
		case elseRet && !thenRet:
			return BranchPrediction{ProbTrue: hi, Heuristic: "return"}
		}
	}

	return BranchPrediction{ProbTrue: 0.5, Heuristic: "none"}
}

func armStoresRead(arm cast.Stmt, reads map[*cast.Object]bool) bool {
	if arm == nil {
		return false
	}
	for o := range cast.StoredObjects(arm) {
		if reads[o] {
			return true
		}
	}
	return false
}

// pointerHeuristic handles pointer-valued conditions:
//
//	p            -> likely true (non-null)
//	!p           -> likely false
//	p == NULL/q  -> likely false
//	p != NULL/q  -> likely true
func pointerHeuristic(cond cast.Expr, hi, lo float64) (float64, bool) {
	isPtr := func(e cast.Expr) bool {
		t := e.Type()
		if t == nil {
			return false
		}
		return t.Kind == ctypes.Ptr || t.Kind == ctypes.Array || t.Kind == ctypes.Func
	}
	switch x := cond.(type) {
	case *cast.Ident, *cast.Member, *cast.Index, *cast.Call:
		if isPtr(cond) {
			return hi, true
		}
	case *cast.Unary:
		if x.Op == cast.LogNot && isPtr(x.X) {
			return lo, true
		}
	case *cast.Binary:
		if x.Op == cast.Eq || x.Op == cast.Ne {
			lNull := isNullConst(x.X)
			rNull := isNullConst(x.Y)
			lp, rp := isPtr(x.X), isPtr(x.Y)
			ptrCompare := (lp && (rp || rNull)) || (rp && (lp || lNull))
			if ptrCompare {
				if x.Op == cast.Eq {
					return lo, true
				}
				return hi, true
			}
		}
	}
	return 0, false
}

func isNullConst(e cast.Expr) bool {
	c, ok := fold.Expr(e)
	return ok && !c.IsFloat && c.I == 0
}

// opcodeHeuristic implements the Ball/Larus opcode rule: `==` is
// unlikely, `!=` likely, and integer comparisons against zero or a
// negative constant (`x < 0`, `x <= 0`) are unlikely.
func opcodeHeuristic(cond cast.Expr, hi, lo float64) (float64, bool) {
	b, ok := cond.(*cast.Binary)
	if !ok {
		return 0, false
	}
	switch b.Op {
	case cast.Eq:
		return lo, true
	case cast.Ne:
		return hi, true
	case cast.Lt, cast.Le:
		if c, ok := fold.Expr(b.Y); ok && !c.IsFloat && c.I <= 0 {
			return lo, true
		}
	case cast.Gt, cast.Ge:
		if c, ok := fold.Expr(b.Y); ok && !c.IsFloat && c.I <= 0 {
			return hi, true
		}
	}
	return 0, false
}

// predictSwitch assigns arm probabilities, either proportional to the
// number of case labels on each arm or uniform. The implicit default arm
// (when the source has none) gets a single-label weight.
func predictSwitch(sw *cast.Switch, cfg Config) []float64 {
	n := len(sw.Cases)
	hasDefault := false
	for _, c := range sw.Cases {
		if c.IsDefault {
			hasDefault = true
		}
	}
	if !hasDefault {
		n++
	}
	probs := make([]float64, n)
	if cfg.SwitchWeightByLabels {
		total := 0.0
		weights := make([]float64, n)
		for i, c := range sw.Cases {
			w := float64(len(c.Vals))
			if c.IsDefault {
				w++ // the default label itself
			}
			if w == 0 {
				w = 1
			}
			weights[i] = w
			total += w
		}
		if !hasDefault {
			weights[n-1] = 1
			total++
		}
		for i := range probs {
			probs[i] = weights[i] / total
		}
		return probs
	}
	for i := range probs {
		probs[i] = 1 / float64(n)
	}
	return probs
}
