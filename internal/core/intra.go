package core

import (
	"staticest/internal/cast"
	"staticest/internal/cfg"
)

// IntraResult holds one estimator's relative block frequencies for one
// function, normalized to a single function entry.
type IntraResult struct {
	// BlockFreq is indexed by CFG block ID.
	BlockFreq []float64
	// StmtFreq is the AST-walk frequency of every statement (AST-based
	// estimators only; Figure 3 prints it).
	StmtFreq map[cast.Stmt]float64
	// Fallback marks a Markov run that fell back to the AST estimate
	// (singular or invalid system).
	Fallback bool
}

// IntraAST computes the paper's AST-based block-frequency estimate for
// one function. With smart=false it is the "loop" estimator (loop
// nesting only, 50/50 branches); with smart=true branch and switch
// predictions refine it. The walk deliberately ignores break, continue,
// goto, and return, as the paper's AST model does.
func IntraAST(g *cfg.Graph, preds *Predictions, conf Config, smart bool) *IntraResult {
	w := &astWalker{
		preds: preds,
		conf:  conf,
		smart: smart,
		freq:  make(map[cast.Stmt]float64),
	}
	w.walk(g.Fn.Body, 1.0)
	res := &IntraResult{
		BlockFreq: make([]float64, len(g.Blocks)),
		StmtFreq:  w.freq,
	}
	for i, blk := range g.Blocks {
		res.BlockFreq[i] = w.blockFreq(g, blk)
	}
	return res
}

type astWalker struct {
	preds *Predictions
	conf  Config
	smart bool
	freq  map[cast.Stmt]float64
}

// probTrue returns the probability the branch condition holds, per the
// active estimator (0.5 for "loop", predicted for "smart").
func (w *astWalker) probTrue(bs cast.BranchStmt) float64 {
	if !w.smart {
		return 0.5
	}
	id := bs.BranchID()
	if id < 0 || id >= len(w.preds.Branch) {
		return 0.5
	}
	return w.preds.Branch[id].ProbTrue
}

func (w *astWalker) armProbs(sw *cast.Switch, nArms int) []float64 {
	if w.smart && sw.Branch >= 0 && sw.Branch < len(w.preds.Switch) {
		return w.preds.Switch[sw.Branch]
	}
	probs := make([]float64, nArms)
	for i := range probs {
		probs[i] = 1 / float64(nArms)
	}
	return probs
}

func (w *astWalker) walk(s cast.Stmt, f float64) {
	if s == nil {
		return
	}
	w.freq[s] = f
	switch x := s.(type) {
	case *cast.Block:
		for _, c := range x.Stmts {
			w.walk(c, f)
		}
	case *cast.If:
		p := w.probTrue(x)
		w.walk(x.Then, f*p)
		if x.Else != nil {
			w.walk(x.Else, f*(1-p))
		}
	case *cast.While:
		// The test runs LoopCount times per entry, the body one fewer.
		w.freq[s] = f * w.conf.LoopCount
		w.walk(x.Body, f*(w.conf.LoopCount-1))
	case *cast.DoWhile:
		w.freq[s] = f * w.conf.LoopCount
		w.walk(x.Body, f*(w.conf.LoopCount-1))
	case *cast.For:
		w.freq[s] = f * w.conf.LoopCount
		if x.InitS != nil {
			w.freq[x.InitS] = f
		}
		if x.PostS != nil {
			w.freq[x.PostS] = f * (w.conf.LoopCount - 1)
		}
		w.walk(x.Body, f*(w.conf.LoopCount-1))
	case *cast.Switch:
		hasDefault := false
		for _, c := range x.Cases {
			if c.IsDefault {
				hasDefault = true
			}
		}
		n := len(x.Cases)
		if !hasDefault {
			n++
		}
		probs := w.armProbs(x, n)
		for i, c := range x.Cases {
			p := 1 / float64(n)
			if i < len(probs) {
				p = probs[i]
			}
			for _, cs := range c.Stmts {
				w.walk(cs, f*p)
			}
		}
	case *cast.Labeled:
		w.walk(x.Stmt, f)
	}
}

// blockFreq maps the AST-walk frequency onto a CFG block through its
// anchor statement. Loop condition blocks take the loop-test frequency;
// body/join blocks take their first statement's frequency.
func (w *astWalker) blockFreq(g *cfg.Graph, blk *cfg.Block) float64 {
	if len(blk.Stmts) > 0 {
		if f, ok := w.freq[blk.Stmts[0]]; ok {
			return f
		}
	}
	if blk.Anchor != nil {
		if f, ok := w.freq[blk.Anchor]; ok {
			// A loop's exit block anchors on the loop statement but runs
			// once per loop entry, not once per test; detect via name.
			return f
		}
	}
	// Fallback: function-entry frequency.
	return 1.0
}
