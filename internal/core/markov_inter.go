package core

import (
	"math"

	"staticest/internal/callgraph"
	"staticest/internal/graphs"
	"staticest/internal/linalg"
)

// MarkovInterResult reports the Markov call-graph estimate along with
// diagnostics about the repairs the paper describes.
type MarkovInterResult struct {
	// Inv is the invocation-frequency estimate per function (main = 1
	// unit of injected flow).
	Inv []float64
	// PointerFlow is the estimated flow through the synthetic pointer
	// node (0 when the program has no indirect calls).
	PointerFlow float64
	// ClampedSelfArcs counts direct-recursion arcs clamped from >= 1 to
	// the standard value.
	ClampedSelfArcs int
	// RepairedSCCs counts strongly-connected components whose arc
	// weights had to be scaled down before the global system solved.
	RepairedSCCs int
}

// EstimateInterMarkov models the call graph as a Markov chain (Section
// 5.2 of the paper): nodes are functions plus a synthetic pointer node
// for indirect calls, arcs carry per-entry call-site frequencies, main is
// injected with frequency 1, and the linear system is solved. Invalid
// systems (negative frequencies from over-unity recursion) are repaired
// per the paper: clamp direct-recursive arcs, then scale down
// strongly-connected components until each sub-solution is valid.
func EstimateInterMarkov(cg *callgraph.Graph, local []float64, conf Config) *MarkovInterResult {
	sp := cg.Prog
	n := len(sp.Funcs)
	res := &MarkovInterResult{}
	if n == 0 {
		return res
	}

	// Does the program need a pointer node?
	hasIndirect := false
	for _, site := range sp.CallSites {
		if site.Indirect() {
			hasIndirect = true
			break
		}
	}
	usePtr := hasIndirect && len(cg.AddrTaken) > 0
	nn := n
	ptrNode := -1
	if usePtr {
		ptrNode = n
		nn = n + 1
	}

	// Arc weights w[from][to], merged per function pair.
	w := make([]map[int]float64, nn)
	for i := range w {
		w[i] = make(map[int]float64)
	}
	for _, site := range sp.CallSites {
		f := site.Caller.Obj.FuncIndex
		weight := local[site.ID]
		if weight == 0 {
			continue
		}
		if site.Indirect() {
			if usePtr {
				w[f][ptrNode] += weight
			}
			continue
		}
		if g := site.Callee.FuncIndex; g >= 0 {
			w[f][g] += weight
		}
	}
	if usePtr {
		total := 0.0
		for _, at := range cg.AddrTaken {
			total += float64(at.Count)
		}
		for _, at := range cg.AddrTaken {
			w[ptrNode][at.FuncIndex] = float64(at.Count) / total
		}
	}

	// Paper fix 1: a direct-recursion arc with weight >= 1 would mean
	// the function never returns; clamp to the standard value.
	for i := 0; i < nn; i++ {
		if sw, ok := w[i][i]; ok && sw >= 1 {
			w[i][i] = conf.RecursionClamp
			res.ClampedSelfArcs++
		}
	}

	mainIdx := cg.MainIndex()
	if mainIdx < 0 {
		mainIdx = 0
	}

	x, ok := solveChain(nn, w, mainIdx)
	if !ok {
		// Paper fix 2: repair each recursive SCC in isolation, scaling
		// its arc weights down until the sub-solution is valid, then
		// re-solve the whole graph.
		adj := make([][]int, nn)
		for i := 0; i < nn; i++ {
			for j := range w[i] {
				adj[i] = append(adj[i], j)
			}
		}
		for _, comp := range graphs.SCC(nn, adj) {
			if !graphs.IsRecursiveComp(comp, adj) {
				continue
			}
			if repairSCC(comp, w, conf) {
				res.RepairedSCCs++
			}
		}
		x, ok = solveChain(nn, w, mainIdx)
		if !ok {
			// Last resort: clamp whatever the (possibly partial)
			// solution produced; callers still get a ranking.
			if x == nil {
				x = make([]float64, nn)
				x[mainIdx] = 1
			}
		}
	}
	for i := range x {
		if x[i] < 0 || math.IsNaN(x[i]) || math.IsInf(x[i], 0) {
			x[i] = 0
		}
	}
	res.Inv = x[:n]
	if usePtr {
		res.PointerFlow = x[ptrNode]
	}
	return res
}

// solveChain solves x_i = e_i + sum_f w[f][i] * x_f with e_main = 1.
// It reports ok=false for singular systems or negative solutions.
func solveChain(nn int, w []map[int]float64, mainIdx int) ([]float64, bool) {
	a := linalg.NewMatrix(nn, nn)
	b := make([]float64, nn)
	for i := 0; i < nn; i++ {
		a.Set(i, i, 1)
	}
	b[mainIdx] = 1
	for f := 0; f < nn; f++ {
		for g, weight := range w[f] {
			a.Add(g, f, -weight)
		}
	}
	x, err := linalg.Solve(a, b)
	if err != nil {
		return nil, false
	}
	for _, v := range x {
		if v < -1e-9 || math.IsNaN(v) || math.IsInf(v, 0) {
			return x, false
		}
	}
	return x, true
}

// repairSCC solves the component in isolation with an artificial main
// distributing external inflow m/n across members, requiring the
// solution to be non-negative and below the ceiling; arc weights inside
// the component are scaled down until it is. Reports whether any scaling
// occurred.
func repairSCC(comp []int, w []map[int]float64, conf Config) bool {
	inComp := make(map[int]bool, len(comp))
	for _, v := range comp {
		inComp[v] = true
	}
	// External inflow census.
	inflow := make(map[int]float64, len(comp))
	total := 0.0
	for f := range w {
		if inComp[f] {
			continue
		}
		for g, weight := range w[f] {
			if inComp[g] {
				inflow[g] += weight
				total += weight
			}
		}
	}
	k := len(comp)
	scaled := false
	for iter := 0; iter < 400; iter++ {
		a := linalg.NewMatrix(k, k)
		b := make([]float64, k)
		for i, v := range comp {
			a.Set(i, i, 1)
			if total > 0 {
				b[i] = inflow[v] / total
			} else {
				b[i] = 1 / float64(k)
			}
		}
		for i, f := range comp {
			for j, g := range comp {
				if weight, ok := w[f][g]; ok && weight != 0 {
					a.Add(j, i, -weight)
				}
			}
		}
		x, err := linalg.Solve(a, b)
		valid := err == nil
		if valid {
			for _, v := range x {
				if v < -1e-9 || v > conf.SCCCeiling || math.IsNaN(v) || math.IsInf(v, 0) {
					valid = false
					break
				}
			}
		}
		if valid {
			return scaled
		}
		// Scale down every arc inside the component.
		for _, f := range comp {
			for g := range w[f] {
				if inComp[g] {
					w[f][g] *= conf.SCCScaleStep
				}
			}
		}
		scaled = true
	}
	return scaled
}
