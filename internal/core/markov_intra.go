package core

import (
	"staticest/internal/cfg"
	"staticest/internal/linalg"
)

// ArcProbs returns the outgoing transition probabilities of a block under
// the smart predictor: probs[i] is the probability of taking Succs[i].
// Returns on a TermReturn block leave the chain (no outgoing mass).
// Exported for the optimizer subsystem, which converts estimated block
// frequencies into estimated edge frequencies with it.
func ArcProbs(blk *cfg.Block, preds *Predictions, conf Config) []float64 {
	switch blk.Term {
	case cfg.TermJump:
		if len(blk.Succs) == 1 {
			return []float64{1}
		}
		return nil
	case cfg.TermCond:
		p := 0.5
		if blk.BranchSite >= 0 && blk.BranchSite < len(preds.Branch) {
			bp := preds.Branch[blk.BranchSite]
			p = bp.ProbTrue
			if bp.Constant {
				// Constant conditions still shape flow; use the folded
				// direction with full probability.
				if bp.ConstTrue {
					p = 1
				} else {
					p = 0
				}
			}
		} else if blk.Origin != cfg.FromIf {
			// A loop condition without a branch site (shouldn't happen,
			// but stay safe): assume continuation.
			p = conf.loopContinueProb()
		}
		return []float64{p, 1 - p}
	case cfg.TermSwitch:
		if blk.SwitchSite >= 0 && blk.SwitchSite < len(preds.Switch) {
			probs := preds.Switch[blk.SwitchSite]
			if len(probs) == len(blk.Succs) {
				return probs
			}
		}
		out := make([]float64, len(blk.Succs))
		for i := range out {
			out[i] = 1 / float64(len(blk.Succs))
		}
		return out
	}
	return nil // TermReturn
}

// IntraMarkov models the function's CFG as a Markov chain: the entry
// block has frequency 1 plus inflow, every other block's frequency is
// the probability-weighted sum of its predecessors' frequencies, and the
// resulting linear system is solved exactly. When the system is singular
// (a loop with no exit) or produces negative frequencies, the paper's
// AST estimate is used as a fallback and Fallback is set.
func IntraMarkov(g *cfg.Graph, preds *Predictions, conf Config) *IntraResult {
	n := len(g.Blocks)
	if n == 0 {
		return &IntraResult{}
	}
	a := linalg.NewMatrix(n, n)
	b := make([]float64, n)
	for i := range g.Blocks {
		a.Set(i, i, 1)
	}
	entryID := g.Entry.ID
	b[entryID] = 1
	for _, blk := range g.Blocks {
		probs := ArcProbs(blk, preds, conf)
		for i, s := range blk.Succs {
			if i < len(probs) && probs[i] != 0 {
				// freq[s] -= prob * freq[blk]  (moved to the LHS)
				a.Add(s.ID, blk.ID, -probs[i])
			}
		}
	}
	x, err := linalg.Solve(a, b)
	valid := err == nil
	if valid {
		for _, v := range x {
			if v < -1e-9 {
				valid = false
				break
			}
		}
	}
	if !valid {
		res := IntraAST(g, preds, conf, true)
		res.Fallback = true
		return res
	}
	for i, v := range x {
		if v < 0 {
			x[i] = 0
		}
	}
	return &IntraResult{BlockFreq: x}
}
