package core

import (
	"staticest/internal/callgraph"
	"staticest/internal/cast"
	"staticest/internal/cfg"
	"staticest/internal/sem"
)

// SiteLocations maps every numbered call site to the CFG block containing
// it, so intra-procedural block frequencies translate to per-entry
// call-site frequencies.
func SiteLocations(cp *cfg.Program) []*cfg.Block {
	out := make([]*cfg.Block, len(cp.Sem.CallSites))
	record := func(blk *cfg.Block, e cast.Expr) {
		cast.WalkExpr(e, func(x cast.Expr) bool {
			if c, ok := x.(*cast.Call); ok && c.SiteID >= 0 {
				out[c.SiteID] = blk
			}
			return true
		})
	}
	for _, g := range cp.Graphs {
		for _, blk := range g.Blocks {
			for _, s := range blk.Stmts {
				for _, e := range cast.StmtExprs(s) {
					record(blk, e)
				}
			}
			if blk.Cond != nil {
				record(blk, blk.Cond)
			}
			if blk.Tag != nil {
				record(blk, blk.Tag)
			}
			if blk.RetVal != nil {
				record(blk, blk.RetVal)
			}
		}
	}
	return out
}

// siteLocalFreq computes each call site's frequency per single entry of
// its containing function, from per-function block frequencies.
func siteLocalFreq(sp *sem.Program, siteBlocks []*cfg.Block, intra []*IntraResult) []float64 {
	out := make([]float64, len(sp.CallSites))
	for _, site := range sp.CallSites {
		blk := siteBlocks[site.ID]
		if blk == nil {
			continue // unreachable code
		}
		fi := site.Caller.Obj.FuncIndex
		if blk.ID < len(intra[fi].BlockFreq) {
			out[site.ID] = intra[fi].BlockFreq[blk.ID]
		}
	}
	return out
}

// invFromSites computes the paper's call_site estimator: each function's
// invocation estimate is the sum of the (intra-procedural) frequencies of
// its call sites. Indirect-call flow is pooled and divided among
// address-taken functions in proportion to their static address-of
// counts. siteScale optionally scales each caller's sites (all_rec2 uses
// the caller's invocation estimate); nil means unscaled.
func invFromSites(cg *callgraph.Graph, local []float64, siteScale []float64) []float64 {
	sp := cg.Prog
	n := len(sp.Funcs)
	inv := make([]float64, n)
	// main is invoked once by the environment; without this, estimators
	// that rescale by caller frequency (all_rec2) zero out every
	// function reachable only from main.
	if m := cg.MainIndex(); m >= 0 {
		inv[m] = 1
	}
	indirectPool := 0.0
	for _, site := range sp.CallSites {
		w := local[site.ID]
		if siteScale != nil {
			w *= siteScale[site.Caller.Obj.FuncIndex]
		}
		if site.Indirect() {
			indirectPool += w
			continue
		}
		if idx := site.Callee.FuncIndex; idx >= 0 {
			inv[idx] += w
		}
	}
	if indirectPool > 0 && len(cg.AddrTaken) > 0 {
		total := 0.0
		for _, at := range cg.AddrTaken {
			total += float64(at.Count)
		}
		if total > 0 {
			for _, at := range cg.AddrTaken {
				inv[at.FuncIndex] += indirectPool * float64(at.Count) / total
			}
		}
	}
	return inv
}

// InterSimple computes the four simple invocation estimators from the
// paper: call_site, direct, all_rec, and all_rec2.
type InterSimple struct {
	CallSite []float64
	Direct   []float64
	AllRec   []float64
	AllRec2  []float64
}

// EstimateInterSimple runs the simple estimators over smart
// intra-procedural frequencies.
func EstimateInterSimple(cg *callgraph.Graph, local []float64, conf Config) *InterSimple {
	n := len(cg.Prog.Funcs)
	base := invFromSites(cg, local, nil)

	direct := append([]float64(nil), base...)
	for i := 0; i < n; i++ {
		if cg.DirectlyRecursive(i) {
			direct[i] *= conf.RecursionScale
		}
	}

	recursive := cg.InRecursiveSCC()
	allRec := append([]float64(nil), base...)
	for i := 0; i < n; i++ {
		if recursive[i] {
			allRec[i] *= conf.RecursionScale
		}
	}

	// all_rec2: use the all_rec invocation counts to scale each caller's
	// block (and therefore call-site) frequencies, then re-apply.
	allRec2 := invFromSites(cg, local, allRec)

	return &InterSimple{
		CallSite: base,
		Direct:   direct,
		AllRec:   allRec,
		AllRec2:  allRec2,
	}
}
