package graphs

import "sort"

// WeightedEdge is an undirected edge between nodes U and V with a
// selection weight. Parallel edges and self-loops are permitted (probe
// placement produces both); a self-loop can never join a spanning
// forest.
type WeightedEdge struct {
	U, V   int
	Weight float64
}

// MaxSpanningForest computes a maximum-weight spanning forest of an
// undirected multigraph with n nodes, by Kruskal's algorithm over a
// union-find. It returns a slice parallel to edges marking the edges
// chosen for the forest. Ties are broken by edge index, so the result
// is deterministic for a fixed edge order.
//
// The probe planner uses this with arcs weighted by estimated execution
// frequency: the forest keeps the heavy arcs, and the cheap leftovers
// become the probe points (Knuth 1973; Ball & Larus 1994).
func MaxSpanningForest(n int, edges []WeightedEdge) []bool {
	order := make([]int, len(edges))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return edges[order[a]].Weight > edges[order[b]].Weight
	})
	uf := newUnionFind(n)
	inTree := make([]bool, len(edges))
	picked := 0
	for _, i := range order {
		e := edges[i]
		if picked == n-1 {
			break
		}
		if uf.union(e.U, e.V) {
			inTree[i] = true
			picked++
		}
	}
	return inTree
}

// unionFind is a standard disjoint-set forest with union by rank and
// path halving.
type unionFind struct {
	parent []int
	rank   []byte
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]byte, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// union merges the sets of a and b, reporting whether they were
// previously disjoint.
func (uf *unionFind) union(a, b int) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	return true
}
