package graphs

import "testing"

func countTrue(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}

func TestMaxSpanningForestPicksHeavyEdges(t *testing.T) {
	// Triangle 0-1-2: the lightest edge must be left out.
	edges := []WeightedEdge{
		{U: 0, V: 1, Weight: 10},
		{U: 1, V: 2, Weight: 1},
		{U: 0, V: 2, Weight: 5},
	}
	in := MaxSpanningForest(3, edges)
	if !in[0] || in[1] || !in[2] {
		t.Fatalf("expected edges 0 and 2 in tree, got %v", in)
	}
}

func TestMaxSpanningForestParallelAndSelfLoops(t *testing.T) {
	edges := []WeightedEdge{
		{U: 0, V: 0, Weight: 100}, // self-loop: never a tree edge
		{U: 0, V: 1, Weight: 3},
		{U: 0, V: 1, Weight: 7}, // heavier parallel edge wins
	}
	in := MaxSpanningForest(2, edges)
	if in[0] {
		t.Fatal("self-loop selected for spanning forest")
	}
	if in[1] || !in[2] {
		t.Fatalf("expected only the heavier parallel edge, got %v", in)
	}
}

func TestMaxSpanningForestDisconnected(t *testing.T) {
	// Two components: forest has n - #components edges.
	edges := []WeightedEdge{
		{U: 0, V: 1, Weight: 1},
		{U: 2, V: 3, Weight: 1},
		{U: 2, V: 3, Weight: 2},
	}
	in := MaxSpanningForest(4, edges)
	if got := countTrue(in); got != 2 {
		t.Fatalf("forest size = %d, want 2", got)
	}
	if !in[2] || in[1] {
		t.Fatalf("wrong edges chosen: %v", in)
	}
}

func TestMaxSpanningForestDeterministicTies(t *testing.T) {
	edges := []WeightedEdge{
		{U: 0, V: 1, Weight: 5},
		{U: 0, V: 1, Weight: 5},
		{U: 1, V: 2, Weight: 5},
	}
	for i := 0; i < 10; i++ {
		in := MaxSpanningForest(3, edges)
		if !in[0] || in[1] || !in[2] {
			t.Fatalf("tie-breaking not deterministic: %v", in)
		}
	}
}
