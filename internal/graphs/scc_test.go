package graphs

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSCCSimpleCycle(t *testing.T) {
	// 0 -> 1 -> 2 -> 0, 2 -> 3
	adj := [][]int{{1}, {2}, {0, 3}, {}}
	comps := SCC(4, adj)
	if len(comps) != 2 {
		t.Fatalf("%d components, want 2: %v", len(comps), comps)
	}
	// Reverse topological order: {3} first, then {0,1,2}.
	if len(comps[0]) != 1 || comps[0][0] != 3 {
		t.Errorf("first component = %v, want [3]", comps[0])
	}
	got := append([]int(nil), comps[1]...)
	sort.Ints(got)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("cycle component = %v, want [0 1 2]", got)
	}
}

func TestSCCDisconnected(t *testing.T) {
	adj := [][]int{{}, {}, {}}
	comps := SCC(3, adj)
	if len(comps) != 3 {
		t.Errorf("%d components, want 3", len(comps))
	}
}

func TestSCCSelfLoop(t *testing.T) {
	adj := [][]int{{0}, {}}
	comps := SCC(2, adj)
	if len(comps) != 2 {
		t.Fatalf("%d components, want 2", len(comps))
	}
	if !IsRecursiveComp([]int{0}, adj) {
		t.Error("self-loop not recursive")
	}
	if IsRecursiveComp([]int{1}, adj) {
		t.Error("isolated node marked recursive")
	}
}

func TestSCCDeepChainIterative(t *testing.T) {
	// A 200k-node chain would overflow a recursive implementation.
	n := 200_000
	adj := make([][]int, n)
	for i := 0; i < n-1; i++ {
		adj[i] = []int{i + 1}
	}
	comps := SCC(n, adj)
	if len(comps) != n {
		t.Fatalf("%d components, want %d", len(comps), n)
	}
}

func TestCompIndex(t *testing.T) {
	adj := [][]int{{1}, {0}, {}}
	comps := SCC(3, adj)
	ci := CompIndex(3, comps)
	if ci[0] != ci[1] {
		t.Error("cycle members in different components")
	}
	if ci[2] == ci[0] {
		t.Error("independent node in cycle component")
	}
}

func TestReachable(t *testing.T) {
	adj := [][]int{{1}, {2}, {}, {0}}
	r := Reachable(4, adj, 0)
	want := []bool{true, true, true, false}
	for i := range want {
		if r[i] != want[i] {
			t.Errorf("reachable[%d] = %v, want %v", i, r[i], want[i])
		}
	}
	if r := Reachable(4, adj, -1); r[0] {
		t.Error("invalid start should reach nothing")
	}
}

// Property: components partition the nodes, mutual reachability holds
// within a component, and the returned order is a reverse topological
// order of the condensation.
func TestSCCProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng.Seed(seed)
		n := int(nRaw%15) + 1
		m := int(mRaw % 40)
		adj := make([][]int, n)
		for e := 0; e < m; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			adj[u] = append(adj[u], v)
		}
		comps := SCC(n, adj)

		// Partition check.
		seen := make([]int, n)
		for _, c := range comps {
			for _, v := range c {
				seen[v]++
			}
		}
		for _, s := range seen {
			if s != 1 {
				return false
			}
		}
		ci := CompIndex(n, comps)
		// Mutual reachability inside components.
		for _, c := range comps {
			if len(c) < 2 {
				continue
			}
			r := Reachable(n, adj, c[0])
			for _, v := range c {
				if !r[v] {
					return false
				}
			}
		}
		// Cross-component edges go from later components to earlier ones
		// (reverse topological order).
		for u := range adj {
			for _, v := range adj[u] {
				if ci[u] != ci[v] && ci[u] < ci[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
