// Package graphs provides the graph algorithms the estimators rely on:
// Tarjan's strongly-connected components, reachability, and topological
// ordering of the condensation. Graphs are adjacency lists over integer
// node IDs 0..n-1.
package graphs

// SCC computes strongly-connected components using Tarjan's algorithm
// (iterative, so deep graphs cannot overflow the Go stack). Components
// are returned in reverse topological order of the condensation: every
// edge between distinct components points from a later component in the
// slice to an earlier one.
func SCC(n int, adj [][]int) [][]int {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack   []int
		comps   [][]int
		counter int
	)

	type frame struct {
		v    int
		next int // next adjacency index to process
	}
	var callStack []frame

	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		callStack = append(callStack[:0], frame{v: start})
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true

		for len(callStack) > 0 {
			f := &callStack[len(callStack)-1]
			v := f.v
			advanced := false
			for f.next < len(adj[v]) {
				w := adj[v][f.next]
				f.next++
				if index[w] == unvisited {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					callStack = append(callStack, frame{v: w})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished.
			if low[v] == index[v] {
				var comp []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp = append(comp, w)
					if w == v {
						break
					}
				}
				comps = append(comps, comp)
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1].v
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
		}
	}
	return comps
}

// CompIndex maps each node to the index of its component in comps.
func CompIndex(n int, comps [][]int) []int {
	ci := make([]int, n)
	for i, comp := range comps {
		for _, v := range comp {
			ci[v] = i
		}
	}
	return ci
}

// IsRecursiveComp reports whether the component is recursive: more than
// one node, or a single node with a self-edge.
func IsRecursiveComp(comp []int, adj [][]int) bool {
	if len(comp) > 1 {
		return true
	}
	v := comp[0]
	for _, w := range adj[v] {
		if w == v {
			return true
		}
	}
	return false
}

// Reachable returns the set of nodes reachable from start (inclusive).
func Reachable(n int, adj [][]int, start int) []bool {
	seen := make([]bool, n)
	if start < 0 || start >= n {
		return seen
	}
	work := []int{start}
	seen[start] = true
	for len(work) > 0 {
		v := work[len(work)-1]
		work = work[:len(work)-1]
		for _, w := range adj[v] {
			if !seen[w] {
				seen[w] = true
				work = append(work, w)
			}
		}
	}
	return seen
}
