// Package callgraph builds the static call graph of an analyzed program:
// direct call edges between defined functions, the set of indirect call
// sites, and the address-taken census that weights the Markov pointer
// node.
package callgraph

import (
	"staticest/internal/cast"
	"staticest/internal/graphs"
	"staticest/internal/sem"
)

// Edge is a direct call edge with the sites that realize it.
type Edge struct {
	Caller, Callee int // function indices
	Sites          []*sem.CallSite
}

// Graph is the static call graph.
type Graph struct {
	Prog *sem.Program

	// Adj[i] lists callee function indices reachable by direct calls
	// from function i (deduplicated, in first-occurrence order).
	Adj [][]int

	// Edges indexes the merged edge for a (caller, callee) pair.
	Edges map[[2]int]*Edge

	// IndirectSites lists every call-through-pointer site, per caller.
	IndirectSites map[int][]*sem.CallSite

	// AddrTaken lists defined functions whose address is taken, with
	// their static address-of counts (the pointer-node weights).
	AddrTaken []AddrTakenFunc
}

// AddrTakenFunc pairs a function index with its address-of census.
type AddrTakenFunc struct {
	FuncIndex int
	Count     int
}

// Build constructs the call graph.
func Build(sp *sem.Program) *Graph {
	n := len(sp.Funcs)
	g := &Graph{
		Prog:          sp,
		Adj:           make([][]int, n),
		Edges:         make(map[[2]int]*Edge),
		IndirectSites: make(map[int][]*sem.CallSite),
	}
	for _, site := range sp.CallSites {
		ci := site.Caller.Obj.FuncIndex
		if site.Indirect() {
			g.IndirectSites[ci] = append(g.IndirectSites[ci], site)
			continue
		}
		callee := site.Callee.FuncIndex
		if callee < 0 {
			continue // extern without definition (already an error in sem)
		}
		key := [2]int{ci, callee}
		e, ok := g.Edges[key]
		if !ok {
			e = &Edge{Caller: ci, Callee: callee}
			g.Edges[key] = e
			g.Adj[ci] = append(g.Adj[ci], callee)
		}
		e.Sites = append(e.Sites, site)
	}
	for _, o := range sp.AddrTaken {
		if o.FuncIndex >= 0 {
			g.AddrTaken = append(g.AddrTaken, AddrTakenFunc{
				FuncIndex: o.FuncIndex, Count: o.AddrTakenCount,
			})
		}
	}
	return g
}

// SCCs returns the strongly-connected components of the direct call
// graph in reverse topological order.
func (g *Graph) SCCs() [][]int {
	return graphs.SCC(len(g.Adj), g.Adj)
}

// DirectlyRecursive reports whether function i directly calls itself.
func (g *Graph) DirectlyRecursive(i int) bool {
	_, ok := g.Edges[[2]int{i, i}]
	return ok
}

// InRecursiveSCC returns, for each function, whether it participates in
// any recursion (an SCC of size > 1, or direct self-recursion).
func (g *Graph) InRecursiveSCC() []bool {
	out := make([]bool, len(g.Adj))
	for _, comp := range g.SCCs() {
		if graphs.IsRecursiveComp(comp, g.Adj) {
			for _, v := range comp {
				out[v] = true
			}
		}
	}
	return out
}

// MainIndex returns the function index of main, or -1.
func (g *Graph) MainIndex() int {
	if g.Prog.Main == nil {
		return -1
	}
	return g.Prog.Main.Obj.FuncIndex
}

// FuncName returns the name of function i.
func (g *Graph) FuncName(i int) string { return g.Prog.Funcs[i].Name() }

// CalleeOf resolves a call expression to a defined-function index, or -1
// for indirect calls and builtins.
func CalleeOf(c *cast.Call) int {
	if o := c.Callee(); o != nil {
		return o.FuncIndex
	}
	return -1
}
