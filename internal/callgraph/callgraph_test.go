package callgraph_test

import (
	"testing"

	"staticest/internal/callgraph"
	"staticest/internal/cparse"
	"staticest/internal/sem"
)

func build(t *testing.T, src string) *callgraph.Graph {
	t.Helper()
	file, err := cparse.ParseFile("t.c", []byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sem.Analyze(file)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	return callgraph.Build(sp)
}

const graphSrc = `
int leaf(void) { return 1; }
int a(void) { return leaf() + leaf(); }
int b(void) { return a(); }
int self(int n) { if (n) return self(n - 1); return 0; }
int ping(int n);
int pong(int n) { return n ? ping(n - 1) : 0; }
int ping(int n) { return n ? pong(n - 1) : 1; }
int (*fp)(void) = leaf;
int main(void) { return b() + self(3) + ping(4) + fp(); }
`

func TestEdgesAndMerging(t *testing.T) {
	g := build(t, graphSrc)
	idx := map[string]int{}
	for i, fd := range g.Prog.Funcs {
		idx[fd.Name()] = i
	}
	// a -> leaf merges two sites into one edge.
	e := g.Edges[[2]int{idx["a"], idx["leaf"]}]
	if e == nil || len(e.Sites) != 2 {
		t.Fatalf("a->leaf edge: %+v", e)
	}
	if len(g.Adj[idx["a"]]) != 1 {
		t.Errorf("a adjacency = %v, want one deduplicated callee", g.Adj[idx["a"]])
	}
	if g.MainIndex() != idx["main"] {
		t.Errorf("MainIndex = %d", g.MainIndex())
	}
	if g.FuncName(idx["leaf"]) != "leaf" {
		t.Error("FuncName wrong")
	}
}

func TestRecursionDetection(t *testing.T) {
	g := build(t, graphSrc)
	idx := map[string]int{}
	for i, fd := range g.Prog.Funcs {
		idx[fd.Name()] = i
	}
	if !g.DirectlyRecursive(idx["self"]) {
		t.Error("self not directly recursive")
	}
	if g.DirectlyRecursive(idx["ping"]) {
		t.Error("ping marked directly recursive")
	}
	rec := g.InRecursiveSCC()
	if !rec[idx["self"]] || !rec[idx["ping"]] || !rec[idx["pong"]] {
		t.Errorf("recursive set wrong: %v", rec)
	}
	if rec[idx["leaf"]] || rec[idx["main"]] {
		t.Errorf("non-recursive marked: %v", rec)
	}
}

func TestIndirectAndAddrTaken(t *testing.T) {
	g := build(t, graphSrc)
	idx := map[string]int{}
	for i, fd := range g.Prog.Funcs {
		idx[fd.Name()] = i
	}
	if len(g.IndirectSites[idx["main"]]) != 1 {
		t.Errorf("indirect sites of main: %v", g.IndirectSites[idx["main"]])
	}
	if len(g.AddrTaken) != 1 || g.AddrTaken[0].FuncIndex != idx["leaf"] {
		t.Errorf("address-taken: %+v", g.AddrTaken)
	}
	if g.AddrTaken[0].Count != 1 {
		t.Errorf("leaf count = %d, want 1", g.AddrTaken[0].Count)
	}
}

func TestSCCOrder(t *testing.T) {
	g := build(t, graphSrc)
	comps := g.SCCs()
	// The condensation must place callees before callers (reverse
	// topological order), so leaf's component precedes a's, which
	// precedes b's.
	pos := map[int]int{}
	for ci, comp := range comps {
		for _, v := range comp {
			pos[v] = ci
		}
	}
	idx := map[string]int{}
	for i, fd := range g.Prog.Funcs {
		idx[fd.Name()] = i
	}
	if !(pos[idx["leaf"]] < pos[idx["a"]] && pos[idx["a"]] < pos[idx["b"]]) {
		t.Errorf("component order wrong: %v", comps)
	}
}

func TestNoMain(t *testing.T) {
	g := build(t, `int f(void) { return 1; }`)
	if g.MainIndex() != -1 {
		t.Errorf("MainIndex = %d, want -1", g.MainIndex())
	}
}
