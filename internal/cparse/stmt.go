package cparse

import (
	"staticest/internal/cast"
	"staticest/internal/ctoken"
	"staticest/internal/ctypes"
)

func (p *parser) block() (*cast.Block, error) {
	pos := p.pos()
	if _, err := p.expect(ctoken.LBrace); err != nil {
		return nil, err
	}
	b := &cast.Block{}
	b.P = pos
	for !p.at(ctoken.RBrace) {
		if p.at(ctoken.EOF) {
			return nil, p.errorf("unexpected end of file in block")
		}
		s, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

func (p *parser) statement() (cast.Stmt, error) {
	pos := p.pos()
	switch p.kind() {
	case ctoken.LBrace:
		return p.block()
	case ctoken.Semi:
		p.next()
		s := &cast.Empty{}
		s.P = pos
		return s, nil
	case ctoken.KwIf:
		return p.ifStmt()
	case ctoken.KwWhile:
		return p.whileStmt()
	case ctoken.KwDo:
		return p.doWhileStmt()
	case ctoken.KwFor:
		return p.forStmt()
	case ctoken.KwSwitch:
		return p.switchStmt()
	case ctoken.KwBreak:
		p.next()
		if _, err := p.expect(ctoken.Semi); err != nil {
			return nil, err
		}
		s := &cast.Break{}
		s.P = pos
		return s, nil
	case ctoken.KwContinue:
		p.next()
		if _, err := p.expect(ctoken.Semi); err != nil {
			return nil, err
		}
		s := &cast.Continue{}
		s.P = pos
		return s, nil
	case ctoken.KwReturn:
		p.next()
		s := &cast.Return{}
		s.P = pos
		if !p.at(ctoken.Semi) {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.X = x
		}
		if _, err := p.expect(ctoken.Semi); err != nil {
			return nil, err
		}
		return s, nil
	case ctoken.KwGoto:
		p.next()
		lbl, err := p.expect(ctoken.Ident)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(ctoken.Semi); err != nil {
			return nil, err
		}
		s := &cast.Goto{Label: lbl.Text}
		s.P = pos
		return s, nil
	case ctoken.Ident:
		// Labeled statement?
		if p.peek(1) == ctoken.Colon {
			lbl := p.next().Text
			p.next() // :
			inner, err := p.statement()
			if err != nil {
				return nil, err
			}
			s := &cast.Labeled{Label: lbl, Stmt: inner}
			s.P = pos
			return s, nil
		}
	}
	if p.isTypeStart() {
		return p.declStmt()
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ctoken.Semi); err != nil {
		return nil, err
	}
	s := &cast.ExprStmt{X: x}
	s.P = pos
	return s, nil
}

func (p *parser) declStmt() (cast.Stmt, error) {
	pos := p.pos()
	sc, base, err := p.declSpecs()
	if err != nil {
		return nil, err
	}
	if sc == scTypedef {
		return nil, p.errorf("typedef inside a function is not supported")
	}
	ds := &cast.DeclStmt{}
	ds.P = pos
	for {
		dpos := p.pos()
		name, typ, _, err := p.declarator(base)
		if err != nil {
			return nil, err
		}
		if name == "" {
			return nil, &Error{Pos: dpos, Msg: "declaration requires a name"}
		}
		obj := &cast.Object{Name: name, Kind: cast.ObjVar, Type: typ, Decl: dpos}
		vd := &cast.VarDecl{P: dpos, Obj: obj}
		if p.accept(ctoken.Assign) {
			init, err := p.initializer()
			if err != nil {
				return nil, err
			}
			vd.Init = init
		}
		ds.Decls = append(ds.Decls, vd)
		if p.accept(ctoken.Comma) {
			continue
		}
		if _, err := p.expect(ctoken.Semi); err != nil {
			return nil, err
		}
		return ds, nil
	}
}

func (p *parser) parenExpr() (cast.Expr, error) {
	if _, err := p.expect(ctoken.LParen); err != nil {
		return nil, err
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ctoken.RParen); err != nil {
		return nil, err
	}
	return x, nil
}

func (p *parser) ifStmt() (cast.Stmt, error) {
	pos := p.pos()
	p.next() // if
	cond, err := p.parenExpr()
	if err != nil {
		return nil, err
	}
	then, err := p.statement()
	if err != nil {
		return nil, err
	}
	s := &cast.If{Cond: cond, Then: then}
	s.P = pos
	s.SetBranchID(-1)
	if p.accept(ctoken.KwElse) {
		els, err := p.statement()
		if err != nil {
			return nil, err
		}
		s.Else = els
	}
	return s, nil
}

func (p *parser) whileStmt() (cast.Stmt, error) {
	pos := p.pos()
	p.next() // while
	cond, err := p.parenExpr()
	if err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	s := &cast.While{Cond: cond, Body: body}
	s.P = pos
	s.SetBranchID(-1)
	return s, nil
}

func (p *parser) doWhileStmt() (cast.Stmt, error) {
	pos := p.pos()
	p.next() // do
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ctoken.KwWhile); err != nil {
		return nil, err
	}
	cond, err := p.parenExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ctoken.Semi); err != nil {
		return nil, err
	}
	s := &cast.DoWhile{Body: body, Cond: cond}
	s.P = pos
	s.SetBranchID(-1)
	return s, nil
}

func (p *parser) forStmt() (cast.Stmt, error) {
	pos := p.pos()
	p.next() // for
	if _, err := p.expect(ctoken.LParen); err != nil {
		return nil, err
	}
	s := &cast.For{}
	s.P = pos
	s.SetBranchID(-1)
	if !p.at(ctoken.Semi) {
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Init = x
	}
	if _, err := p.expect(ctoken.Semi); err != nil {
		return nil, err
	}
	if !p.at(ctoken.Semi) {
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Cond = x
	}
	if _, err := p.expect(ctoken.Semi); err != nil {
		return nil, err
	}
	if !p.at(ctoken.RParen) {
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Post = x
	}
	if _, err := p.expect(ctoken.RParen); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	s.Body = body
	if s.Init != nil {
		s.InitS = &cast.ExprStmt{X: s.Init}
		s.InitS.P = s.Init.Pos()
	}
	if s.Post != nil {
		s.PostS = &cast.ExprStmt{X: s.Post}
		s.PostS.P = s.Post.Pos()
	}
	return s, nil
}

// switchStmt parses a structured switch: the body must be a brace block
// whose top-level contents are case/default-labelled statement runs
// (standard usage; Duff's device is outside the subset).
func (p *parser) switchStmt() (cast.Stmt, error) {
	pos := p.pos()
	p.next() // switch
	tag, err := p.parenExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ctoken.LBrace); err != nil {
		return nil, err
	}
	s := &cast.Switch{Tag: tag, Branch: -1}
	s.P = pos
	var cur *cast.SwitchCase
	for !p.at(ctoken.RBrace) {
		switch p.kind() {
		case ctoken.KwCase:
			cpos := p.pos()
			p.next()
			v, err := p.constExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(ctoken.Colon); err != nil {
				return nil, err
			}
			if cur == nil || len(cur.Stmts) > 0 {
				cur = &cast.SwitchCase{Pos: cpos}
				s.Cases = append(s.Cases, cur)
			}
			cur.Vals = append(cur.Vals, v)
		case ctoken.KwDefault:
			cpos := p.pos()
			p.next()
			if _, err := p.expect(ctoken.Colon); err != nil {
				return nil, err
			}
			if cur == nil || len(cur.Stmts) > 0 {
				cur = &cast.SwitchCase{Pos: cpos}
				s.Cases = append(s.Cases, cur)
			}
			cur.IsDefault = true
		case ctoken.EOF:
			return nil, p.errorf("unexpected end of file in switch")
		default:
			if cur == nil {
				return nil, p.errorf("statement before first case label in switch")
			}
			st, err := p.statement()
			if err != nil {
				return nil, err
			}
			cur.Stmts = append(cur.Stmts, st)
		}
	}
	p.next() // }
	return s, nil
}

// --- constant expressions ----------------------------------------------------

// constExpr parses a conditional expression and folds it to an integer
// constant; enum constants and sizeof are in scope.
func (p *parser) constExpr() (int64, error) {
	pos := p.pos()
	x, err := p.condExpr()
	if err != nil {
		return 0, err
	}
	v, ok := p.foldInt(x)
	if !ok {
		return 0, &Error{Pos: pos, Msg: "expression is not an integer constant"}
	}
	return v, nil
}

func (p *parser) foldInt(e cast.Expr) (int64, bool) {
	switch x := e.(type) {
	case *cast.IntLit:
		return int64(x.Val), true
	case *cast.Ident:
		v, ok := p.enums[x.Name]
		return v, ok
	case *cast.Unary:
		v, ok := p.foldInt(x.X)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case cast.Neg:
			return -v, true
		case cast.BitNot:
			return ^v, true
		case cast.LogNot:
			return b2i(v == 0), true
		}
		return 0, false
	case *cast.Binary:
		a, ok := p.foldInt(x.X)
		if !ok {
			return 0, false
		}
		b, ok := p.foldInt(x.Y)
		if !ok {
			return 0, false
		}
		switch x.Op {
		case cast.Add:
			return a + b, true
		case cast.Sub:
			return a - b, true
		case cast.Mul:
			return a * b, true
		case cast.Div:
			if b == 0 {
				return 0, false
			}
			return a / b, true
		case cast.Rem:
			if b == 0 {
				return 0, false
			}
			return a % b, true
		case cast.And:
			return a & b, true
		case cast.Or:
			return a | b, true
		case cast.Xor:
			return a ^ b, true
		case cast.Shl:
			if b < 0 || b > 63 {
				return 0, false
			}
			return a << uint(b), true
		case cast.Shr:
			if b < 0 || b > 63 {
				return 0, false
			}
			return a >> uint(b), true
		case cast.Lt:
			return b2i(a < b), true
		case cast.Gt:
			return b2i(a > b), true
		case cast.Le:
			return b2i(a <= b), true
		case cast.Ge:
			return b2i(a >= b), true
		case cast.Eq:
			return b2i(a == b), true
		case cast.Ne:
			return b2i(a != b), true
		}
		return 0, false
	case *cast.Logical:
		a, ok := p.foldInt(x.X)
		if !ok {
			return 0, false
		}
		b, ok := p.foldInt(x.Y)
		if !ok {
			return 0, false
		}
		if x.AndAnd {
			return b2i(a != 0 && b != 0), true
		}
		return b2i(a != 0 || b != 0), true
	case *cast.Cond:
		c, ok := p.foldInt(x.C)
		if !ok {
			return 0, false
		}
		if c != 0 {
			return p.foldInt(x.Then)
		}
		return p.foldInt(x.Else)
	case *cast.SizeofType:
		return x.Of.Size(), true
	case *cast.SizeofExpr:
		// Only literal operands are foldable pre-sem.
		if t := exprLitType(x.X); t != nil {
			return t.Size(), true
		}
		return 0, false
	case *cast.CastExpr:
		if x.To.IsInteger() {
			return p.foldInt(x.X)
		}
		return 0, false
	}
	return 0, false
}

func exprLitType(e cast.Expr) *ctypes.Type {
	switch x := e.(type) {
	case *cast.IntLit:
		if x.IsChar {
			return ctypes.CharType
		}
		return ctypes.IntType
	case *cast.FloatLit:
		return ctypes.DoubleType
	case *cast.StrLit:
		return ctypes.ArrayOf(ctypes.CharType, int64(len(x.Val))+1)
	}
	return nil
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
