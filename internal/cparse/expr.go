package cparse

import (
	"staticest/internal/cast"
	"staticest/internal/ctoken"
)

// expr parses a full expression including the comma operator.
func (p *parser) expr() (cast.Expr, error) {
	x, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	for p.at(ctoken.Comma) {
		pos := p.pos()
		p.next()
		y, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		c := &cast.Comma{X: x, Y: y}
		c.P = pos
		x = c
	}
	return x, nil
}

var assignOps = map[ctoken.Kind]cast.AssignOp{
	ctoken.Assign:    cast.Plain,
	ctoken.AddAssign: cast.AddEq,
	ctoken.SubAssign: cast.SubEq,
	ctoken.MulAssign: cast.MulEq,
	ctoken.DivAssign: cast.DivEq,
	ctoken.RemAssign: cast.RemEq,
	ctoken.AndAssign: cast.AndEq,
	ctoken.OrAssign:  cast.OrEq,
	ctoken.XorAssign: cast.XorEq,
	ctoken.ShlAssign: cast.ShlEq,
	ctoken.ShrAssign: cast.ShrEq,
}

func (p *parser) assignExpr() (cast.Expr, error) {
	x, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	if op, ok := assignOps[p.kind()]; ok {
		pos := p.pos()
		p.next()
		r, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		a := &cast.Assign{Op: op, L: x, R: r}
		a.P = pos
		return a, nil
	}
	return x, nil
}

func (p *parser) condExpr() (cast.Expr, error) {
	c, err := p.binaryExpr(0)
	if err != nil {
		return nil, err
	}
	if !p.at(ctoken.Question) {
		return c, nil
	}
	pos := p.pos()
	p.next()
	then, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(ctoken.Colon); err != nil {
		return nil, err
	}
	els, err := p.condExpr()
	if err != nil {
		return nil, err
	}
	x := &cast.Cond{C: c, Then: then, Else: els}
	x.P = pos
	return x, nil
}

// binLevel describes one precedence level of binary operators, lowest
// first.
type binLevel struct {
	toks []ctoken.Kind
	ops  []cast.BinaryOp
	// logical is set for && and ||, which build Logical nodes.
	logical bool
	andAnd  bool
}

var binLevels = []binLevel{
	{toks: []ctoken.Kind{ctoken.OrOr}, logical: true},
	{toks: []ctoken.Kind{ctoken.AndAnd}, logical: true, andAnd: true},
	{toks: []ctoken.Kind{ctoken.Pipe}, ops: []cast.BinaryOp{cast.Or}},
	{toks: []ctoken.Kind{ctoken.Caret}, ops: []cast.BinaryOp{cast.Xor}},
	{toks: []ctoken.Kind{ctoken.Amp}, ops: []cast.BinaryOp{cast.And}},
	{toks: []ctoken.Kind{ctoken.EqEq, ctoken.NotEq}, ops: []cast.BinaryOp{cast.Eq, cast.Ne}},
	{toks: []ctoken.Kind{ctoken.Lt, ctoken.Gt, ctoken.Le, ctoken.Ge},
		ops: []cast.BinaryOp{cast.Lt, cast.Gt, cast.Le, cast.Ge}},
	{toks: []ctoken.Kind{ctoken.Shl, ctoken.Shr}, ops: []cast.BinaryOp{cast.Shl, cast.Shr}},
	{toks: []ctoken.Kind{ctoken.Plus, ctoken.Minus}, ops: []cast.BinaryOp{cast.Add, cast.Sub}},
	{toks: []ctoken.Kind{ctoken.Star, ctoken.Slash, ctoken.Percent},
		ops: []cast.BinaryOp{cast.Mul, cast.Div, cast.Rem}},
}

func (p *parser) binaryExpr(level int) (cast.Expr, error) {
	if level >= len(binLevels) {
		return p.castExpr()
	}
	lv := binLevels[level]
	x, err := p.binaryExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := -1
		for i, k := range lv.toks {
			if p.at(k) {
				matched = i
				break
			}
		}
		if matched < 0 {
			return x, nil
		}
		pos := p.pos()
		p.next()
		y, err := p.binaryExpr(level + 1)
		if err != nil {
			return nil, err
		}
		if lv.logical {
			l := &cast.Logical{AndAnd: lv.andAnd, X: x, Y: y}
			l.P = pos
			x = l
		} else {
			b := &cast.Binary{Op: lv.ops[matched], X: x, Y: y}
			b.P = pos
			x = b
		}
	}
}

// castExpr parses `(type-name) cast-expr` or falls through to unary.
func (p *parser) castExpr() (cast.Expr, error) {
	if p.at(ctoken.LParen) && p.typeStartsAt(p.i+1) {
		pos := p.pos()
		p.next()
		t, err := p.typeName()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(ctoken.RParen); err != nil {
			return nil, err
		}
		x, err := p.castExpr()
		if err != nil {
			return nil, err
		}
		c := &cast.CastExpr{To: t, X: x}
		c.P = pos
		return c, nil
	}
	return p.unaryExpr()
}

// typeStartsAt reports whether the token at index i begins a type name.
func (p *parser) typeStartsAt(i int) bool {
	if i >= len(p.toks) {
		return false
	}
	k := p.toks[i].Kind
	if k.IsTypeKeyword() {
		return true
	}
	if k == ctoken.Ident {
		_, ok := p.typedefs[p.toks[i].Text]
		return ok
	}
	return false
}

var prefixOps = map[ctoken.Kind]cast.UnaryOp{
	ctoken.Minus: cast.Neg,
	ctoken.Tilde: cast.BitNot,
	ctoken.Not:   cast.LogNot,
	ctoken.Star:  cast.Deref,
	ctoken.Amp:   cast.Addr,
	ctoken.Inc:   cast.PreInc,
	ctoken.Dec:   cast.PreDec,
}

func (p *parser) unaryExpr() (cast.Expr, error) {
	pos := p.pos()
	switch p.kind() {
	case ctoken.Plus: // unary plus is a no-op
		p.next()
		return p.castExpr()
	case ctoken.KwSizeof:
		p.next()
		if p.at(ctoken.LParen) && p.typeStartsAt(p.i+1) {
			p.next()
			t, err := p.typeName()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(ctoken.RParen); err != nil {
				return nil, err
			}
			x := &cast.SizeofType{Of: t}
			x.P = pos
			return x, nil
		}
		inner, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		x := &cast.SizeofExpr{X: inner}
		x.P = pos
		return x, nil
	}
	if op, ok := prefixOps[p.kind()]; ok {
		p.next()
		var inner cast.Expr
		var err error
		if op == cast.PreInc || op == cast.PreDec {
			inner, err = p.unaryExpr()
		} else {
			inner, err = p.castExpr()
		}
		if err != nil {
			return nil, err
		}
		x := &cast.Unary{Op: op, X: inner}
		x.P = pos
		return x, nil
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (cast.Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		pos := p.pos()
		switch p.kind() {
		case ctoken.LBrack:
			p.next()
			i, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(ctoken.RBrack); err != nil {
				return nil, err
			}
			n := &cast.Index{X: x, I: i}
			n.P = pos
			x = n
		case ctoken.LParen:
			p.next()
			var args []cast.Expr
			for !p.at(ctoken.RParen) {
				a, err := p.assignExpr()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.accept(ctoken.Comma) {
					break
				}
			}
			if _, err := p.expect(ctoken.RParen); err != nil {
				return nil, err
			}
			n := &cast.Call{Fun: x, Args: args, SiteID: -1}
			n.P = pos
			x = n
		case ctoken.Dot, ctoken.Arrow:
			arrow := p.kind() == ctoken.Arrow
			p.next()
			name, err := p.expect(ctoken.Ident)
			if err != nil {
				return nil, err
			}
			n := &cast.Member{X: x, Name: name.Text, Arrow: arrow}
			n.P = pos
			x = n
		case ctoken.Inc, ctoken.Dec:
			inc := p.kind() == ctoken.Inc
			p.next()
			n := &cast.Postfix{Inc: inc, X: x}
			n.P = pos
			x = n
		default:
			return x, nil
		}
	}
}

func (p *parser) primaryExpr() (cast.Expr, error) {
	pos := p.pos()
	switch p.kind() {
	case ctoken.IntLit:
		t := p.next()
		x := &cast.IntLit{Val: t.IntVal, Unsigned: t.Unsigned, Long: t.Long}
		x.P = pos
		return x, nil
	case ctoken.CharLit:
		t := p.next()
		x := &cast.IntLit{Val: t.IntVal, IsChar: true}
		x.P = pos
		return x, nil
	case ctoken.FloatLit:
		t := p.next()
		x := &cast.FloatLit{Val: t.FloatVal}
		x.P = pos
		return x, nil
	case ctoken.StrLit:
		t := p.next()
		x := &cast.StrLit{Val: t.StrVal, DataIndex: -1}
		x.P = pos
		return x, nil
	case ctoken.Ident:
		t := p.next()
		if v, ok := p.enums[t.Text]; ok {
			x := &cast.IntLit{Val: uint64(v)}
			x.P = pos
			return x, nil
		}
		x := &cast.Ident{Name: t.Text}
		x.P = pos
		return x, nil
	case ctoken.LParen:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(ctoken.RParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errorf("expected expression, found %s", p.tok())
}
