package cparse

import (
	"testing"

	"staticest/internal/cast"
	"staticest/internal/ctypes"
)

const strchrSrc = `
/* Find first occurrence of a character in a string. */
#define NULL 0
char *my_strchr(char *str, int c) {
	while (*str) {
		if (*str == c)
			return str;
		str++;
	}
	return NULL;
}
`

func mustParse(t *testing.T, src string) *cast.File {
	t.Helper()
	f, err := ParseFile("test.c", []byte(src))
	if err != nil {
		t.Fatalf("ParseFile: %v", err)
	}
	return f
}

func TestParseStrchr(t *testing.T) {
	f := mustParse(t, strchrSrc)
	if len(f.Funcs) != 1 {
		t.Fatalf("got %d functions, want 1", len(f.Funcs))
	}
	fd := f.Funcs[0]
	if fd.Name() != "my_strchr" {
		t.Errorf("name = %q, want my_strchr", fd.Name())
	}
	if got := fd.Obj.Type.String(); got != "char* my_strchr(char*, int)" &&
		got != "char* (char*, int)" {
		// The exact rendering is informative only; check structure.
		sig := fd.Obj.Type.Sig
		if sig.Ret.Kind != ctypes.Ptr || sig.Ret.Elem.Kind != ctypes.Char {
			t.Errorf("return type = %s, want char*", sig.Ret)
		}
		if len(sig.Params) != 2 {
			t.Fatalf("params = %d, want 2", len(sig.Params))
		}
	}
	if len(fd.Params) != 2 || fd.Params[0].Name != "str" || fd.Params[1].Name != "c" {
		t.Errorf("params mis-parsed: %+v", fd.Params)
	}
	body := fd.Body
	if len(body.Stmts) != 2 {
		t.Fatalf("body has %d statements, want 2", len(body.Stmts))
	}
	w, ok := body.Stmts[0].(*cast.While)
	if !ok {
		t.Fatalf("first statement is %T, want *cast.While", body.Stmts[0])
	}
	if _, ok := w.Cond.(*cast.Unary); !ok {
		t.Errorf("while condition is %T, want *cast.Unary (deref)", w.Cond)
	}
	ret, ok := body.Stmts[1].(*cast.Return)
	if !ok {
		t.Fatalf("second statement is %T, want *cast.Return", body.Stmts[1])
	}
	// #define NULL 0 should have expanded to the integer literal 0.
	if lit, ok := ret.X.(*cast.IntLit); !ok || lit.Val != 0 {
		t.Errorf("return value is %s, want literal 0", cast.ExprString(ret.X))
	}
}

func TestParseDeclarators(t *testing.T) {
	src := `
typedef struct node Node;
struct node { int val; struct node *next; Node *prev; };
int g_table[4][8];
double *g_ptrs[3];
int (*g_fp)(int, char *);
int (*g_fparr[5])(void);
unsigned long g_mask = 0xff00;
char g_msg[] = "hello";
`
	f := mustParse(t, src)
	byName := map[string]*cast.VarDecl{}
	for _, g := range f.Globals {
		byName[g.Obj.Name] = g
	}
	tests := []struct {
		name string
		want string
	}{
		{"g_table", "int[4][8]"},
		{"g_ptrs", "double*[3]"},
		{"g_fp", "int (*)(int, char*)"},
		{"g_mask", "unsigned long"},
	}
	for _, tt := range tests {
		g, ok := byName[tt.name]
		if !ok {
			t.Errorf("global %s not found", tt.name)
			continue
		}
		if got := g.Obj.Type.String(); got != tt.want {
			t.Errorf("%s: type = %q, want %q", tt.name, got, tt.want)
		}
	}
	// g_fparr: array of 5 pointers to function.
	g := byName["g_fparr"]
	if g == nil {
		t.Fatal("g_fparr not found")
	}
	typ := g.Obj.Type
	if typ.Kind != ctypes.Array || typ.Len != 5 || !typ.Elem.IsFuncPtr() {
		t.Errorf("g_fparr type = %s, want array of 5 function pointers", typ)
	}
	// Struct layout: val at 0, next at 8, prev at 16.
	var node *ctypes.StructInfo
	for _, s := range f.Structs {
		if s.Tag == "node" {
			node = s
		}
	}
	if node == nil || !node.Complete {
		t.Fatal("struct node not completed")
	}
	if node.Size != 24 {
		t.Errorf("struct node size = %d, want 24", node.Size)
	}
	if f := node.FieldByName("next"); f == nil || f.Offset != 8 {
		t.Errorf("field next offset wrong: %+v", f)
	}
}

func TestParseStatements(t *testing.T) {
	src := `
int collatz(int n) {
	int steps = 0;
	while (n != 1) {
		if (n % 2 == 0) n = n / 2;
		else n = 3 * n + 1;
		steps++;
	}
	return steps;
}
int classify(int c) {
	switch (c) {
	case 'a': case 'e': case 'i': case 'o': case 'u':
		return 1;
	case ' ':
	case '\t':
		return 2;
	default:
		return 0;
	}
}
int sum_to(int n) {
	int i, total;
	total = 0;
	for (i = 0; i < n; i++) total += i;
	do { total--; } while (total > 1000);
	goto out;
out:
	return total;
}
`
	f := mustParse(t, src)
	if len(f.Funcs) != 3 {
		t.Fatalf("got %d funcs, want 3", len(f.Funcs))
	}
	cl := f.Funcs[1]
	sw, ok := cl.Body.Stmts[0].(*cast.Switch)
	if !ok {
		t.Fatalf("classify body[0] is %T, want switch", cl.Body.Stmts[0])
	}
	if len(sw.Cases) != 3 {
		t.Fatalf("switch has %d cases, want 3", len(sw.Cases))
	}
	if len(sw.Cases[0].Vals) != 5 {
		t.Errorf("first case has %d labels, want 5", len(sw.Cases[0].Vals))
	}
	if sw.Cases[1].Vals[1] != '\t' {
		t.Errorf("tab label = %d, want %d", sw.Cases[1].Vals[1], '\t')
	}
	if !sw.Cases[2].IsDefault {
		t.Error("third case should be default")
	}
}

func TestParseEnumAndConst(t *testing.T) {
	src := `
enum color { RED, GREEN = 5, BLUE };
int arr[BLUE];           /* 6 */
int arr2[GREEN + BLUE];  /* 11 */
int pick(int c) {
	switch (c) {
	case RED: return 1;
	case GREEN: return 2;
	case BLUE: return 3;
	}
	return 0;
}
`
	f := mustParse(t, src)
	byName := map[string]*cast.VarDecl{}
	for _, g := range f.Globals {
		byName[g.Obj.Name] = g
	}
	if got := byName["arr"].Obj.Type.Len; got != 6 {
		t.Errorf("arr len = %d, want 6", got)
	}
	if got := byName["arr2"].Obj.Type.Len; got != 11 {
		t.Errorf("arr2 len = %d, want 11", got)
	}
	sw := f.Funcs[0].Body.Stmts[0].(*cast.Switch)
	if sw.Cases[2].Vals[0] != 6 {
		t.Errorf("case BLUE = %d, want 6", sw.Cases[2].Vals[0])
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	src := `int f(int a, int b, int c) { return a + b * c - (a << 2) % b | c & a; }`
	f := mustParse(t, src)
	ret := f.Funcs[0].Body.Stmts[0].(*cast.Return)
	// Top must be | with & on the right.
	or, ok := ret.X.(*cast.Binary)
	if !ok || or.Op != cast.Or {
		t.Fatalf("top = %s, want |", cast.ExprString(ret.X))
	}
	and, ok := or.Y.(*cast.Binary)
	if !ok || and.Op != cast.And {
		t.Fatalf("rhs = %s, want &", cast.ExprString(or.Y))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`int f( { return 0; }`,
		`int f(void) { return 0 }`,
		`union u { int a; };`,
		`int f(void) { switch (1) { x = 2; } }`,
		`#define SELF SELF
		 int x = SELF;`,
		`#if 0
		 int x;
		 #endif`,
		`struct s { int x : 3; };`,
		`int a[-2];`,
	}
	for _, src := range bad {
		if _, err := ParseFile("bad.c", []byte(src)); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestMacroExpansion(t *testing.T) {
	src := `
#define MAX 100
#define DOUBLE_MAX (MAX * 2)
int a[MAX];
int b[DOUBLE_MAX];
`
	f := mustParse(t, src)
	if got := f.Globals[0].Obj.Type.Len; got != 100 {
		t.Errorf("a len = %d, want 100", got)
	}
	if got := f.Globals[1].Obj.Type.Len; got != 200 {
		t.Errorf("b len = %d, want 200", got)
	}
}

func TestParseFunctionPointerParams(t *testing.T) {
	src := `
int apply(int (*f)(int, int), int a, int b) { return f(a, b); }
int each(void (*cb)(int), int n) {
	int i;
	for (i = 0; i < n; i++) cb(i);
	return n;
}
`
	f := mustParse(t, src)
	sig := f.Funcs[0].Obj.Type.Sig
	if len(sig.Params) != 3 || !sig.Params[0].IsFuncPtr() {
		t.Errorf("apply params: %v", sig.Params)
	}
	inner := sig.Params[0].Elem.Sig
	if len(inner.Params) != 2 || inner.Ret.Kind != ctypes.Int {
		t.Errorf("callback signature: %+v", inner)
	}
}

func TestParseTernaryNesting(t *testing.T) {
	f := mustParse(t, `int f(int a, int b) { return a ? b ? 1 : 2 : b ? 3 : 4; }`)
	ret := f.Funcs[0].Body.Stmts[0].(*cast.Return)
	top, ok := ret.X.(*cast.Cond)
	if !ok {
		t.Fatalf("top is %T", ret.X)
	}
	if _, ok := top.Then.(*cast.Cond); !ok {
		t.Error("then arm should nest a ternary")
	}
	if _, ok := top.Else.(*cast.Cond); !ok {
		t.Error("else arm should nest a ternary (right associativity)")
	}
}

func TestParseDanglingElse(t *testing.T) {
	f := mustParse(t, `int f(int a, int b) { if (a) if (b) return 1; else return 2; return 3; }`)
	outer := f.Funcs[0].Body.Stmts[0].(*cast.If)
	if outer.Else != nil {
		t.Fatal("else bound to the outer if")
	}
	inner := outer.Then.(*cast.If)
	if inner.Else == nil {
		t.Fatal("else not bound to the inner if")
	}
}

func TestParseSizeofForms(t *testing.T) {
	src := `
struct wide { double d[4]; };
long a = sizeof(struct wide);
long b = sizeof(int);
long c = sizeof 5;
long d = sizeof(char *);
`
	f := mustParse(t, src)
	wantLens := map[string]int64{"a": 32, "b": 4, "d": 8}
	for _, g := range f.Globals {
		want, ok := wantLens[g.Obj.Name]
		if !ok {
			continue
		}
		init := g.Init.(*cast.ExprInit)
		var got int64
		switch x := init.X.(type) {
		case *cast.SizeofType:
			got = x.Of.Size()
		default:
			t.Fatalf("%s: init is %T", g.Obj.Name, init.X)
		}
		if got != want {
			t.Errorf("%s = %d, want %d", g.Obj.Name, got, want)
		}
	}
}

func TestParseCastVsParens(t *testing.T) {
	src := `
typedef int myint;
int f(int x) {
	int a = (myint)x;     /* cast via typedef */
	int b = (x) + 1;      /* parenthesized expr */
	double d = (double)x / 2;
	return a + b + (int)d;
}
`
	f := mustParse(t, src)
	var casts int
	cast.WalkFuncExprs(f.Funcs[0], func(e cast.Expr) bool {
		if _, ok := e.(*cast.CastExpr); ok {
			casts++
		}
		return true
	})
	if casts != 3 {
		t.Errorf("%d casts, want 3", casts)
	}
}

func TestParsePointerChains(t *testing.T) {
	f := mustParse(t, `int f(int ***ppp) { return ***ppp; }`)
	p := f.Funcs[0].Params[0].Type
	depth := 0
	for p.Kind == ctypes.Ptr {
		depth++
		p = p.Elem
	}
	if depth != 3 || p.Kind != ctypes.Int {
		t.Errorf("param type depth %d base %v", depth, p.Kind)
	}
}
