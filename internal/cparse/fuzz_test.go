package cparse_test

import (
	"os"
	"path/filepath"
	"testing"

	"staticest/internal/cparse"
	"staticest/internal/gen"
)

// FuzzParse checks that the parser never panics: every input must yield
// either a *cast.File or an error, never a crash. Seeds are the example
// corpus plus generated programs (loops, switches, recursion — shapes
// the hand-written seeds barely touch).
func FuzzParse(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "corpus", "*.c"))
	if err != nil {
		f.Fatalf("glob corpus: %v", err)
	}
	if len(paths) == 0 {
		f.Fatal("no seed corpus files found under examples/corpus")
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatalf("read %s: %v", p, err)
		}
		f.Add(src)
	}
	g := gen.New(1)
	for i := 0; i < 4; i++ {
		f.Add(g.Program())
	}
	f.Add([]byte("typedef int T; T f(T t) { return t; }"))
	f.Add([]byte("int f() { for(;;) break; }"))
	f.Add([]byte("struct s { struct s *next; };"))
	f.Add([]byte("int f(int a, ...) { return a; }"))
	f.Add([]byte("int x = "))
	f.Fuzz(func(t *testing.T, src []byte) {
		file, err := cparse.ParseFile("fuzz.c", src)
		if err == nil && file == nil {
			t.Fatal("ParseFile returned nil file and nil error")
		}
	})
}
