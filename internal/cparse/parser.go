// Package cparse is a recursive-descent parser for the C subset. It
// performs the classic typedef feedback (typedef names steer
// declaration/expression disambiguation) and evaluates integer constant
// expressions where the grammar requires them (array sizes, enum values,
// case labels).
package cparse

import (
	"fmt"

	"staticest/internal/cast"
	"staticest/internal/clex"
	"staticest/internal/ctoken"
	"staticest/internal/ctypes"
)

// Error is a parse error with position information.
type Error struct {
	Pos ctoken.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type parser struct {
	toks []ctoken.Token
	i    int

	typedefs map[string]*ctypes.Type
	structs  map[string]*ctypes.StructInfo
	enums    map[string]int64 // enum constant values

	file *cast.File
}

// ParseFile lexes and parses a translation unit.
func ParseFile(name string, src []byte) (*cast.File, error) {
	toks, err := clex.Tokenize(name, src)
	if err != nil {
		return nil, err
	}
	p := &parser{
		toks:     toks,
		typedefs: make(map[string]*ctypes.Type),
		structs:  make(map[string]*ctypes.StructInfo),
		enums:    make(map[string]int64),
		file: &cast.File{
			Name:     name,
			Typedefs: make(map[string]*ctypes.Type),
		},
	}
	if err := p.parseFile(); err != nil {
		return nil, err
	}
	return p.file, nil
}

// --- token plumbing ---------------------------------------------------------

func (p *parser) tok() ctoken.Token  { return p.toks[p.i] }
func (p *parser) kind() ctoken.Kind  { return p.toks[p.i].Kind }
func (p *parser) pos() ctoken.Pos    { return p.toks[p.i].Pos }
func (p *parser) next() ctoken.Token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) peek(n int) ctoken.Kind {
	if p.i+n < len(p.toks) {
		return p.toks[p.i+n].Kind
	}
	return ctoken.EOF
}

func (p *parser) at(k ctoken.Kind) bool { return p.kind() == k }

func (p *parser) accept(k ctoken.Kind) bool {
	if p.at(k) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(k ctoken.Kind) (ctoken.Token, error) {
	if !p.at(k) {
		return ctoken.Token{}, p.errorf("expected %s, found %s", k, p.tok())
	}
	return p.next(), nil
}

func (p *parser) errorf(format string, args ...any) error {
	return &Error{Pos: p.pos(), Msg: fmt.Sprintf(format, args...)}
}

// isTypeStart reports whether the current token begins a type specifier
// (keyword or typedef name).
func (p *parser) isTypeStart() bool {
	k := p.kind()
	if k.IsTypeKeyword() || k == ctoken.KwTypedef || k == ctoken.KwStatic ||
		k == ctoken.KwExtern || k == ctoken.KwRegister {
		return true
	}
	if k == ctoken.Ident {
		_, ok := p.typedefs[p.tok().Text]
		return ok
	}
	return false
}

// --- top level --------------------------------------------------------------

func (p *parser) parseFile() error {
	for !p.at(ctoken.EOF) {
		if p.accept(ctoken.Semi) {
			continue
		}
		if err := p.externalDecl(); err != nil {
			return err
		}
	}
	return nil
}

type storageClass int

const (
	scNone storageClass = iota
	scTypedef
	scStatic
	scExtern
)

func (p *parser) externalDecl() error {
	sc, base, err := p.declSpecs()
	if err != nil {
		return err
	}
	// `struct S { ... };` or `enum E { ... };` alone.
	if p.accept(ctoken.Semi) {
		return nil
	}
	first := true
	for {
		dpos := p.pos()
		name, typ, params, err := p.declarator(base)
		if err != nil {
			return err
		}
		if name == "" {
			return &Error{Pos: dpos, Msg: "declaration requires a name"}
		}
		if sc == scTypedef {
			p.typedefs[name] = typ
			p.file.Typedefs[name] = typ
		} else if typ.Kind == ctypes.Func {
			obj := &cast.Object{
				Name: name, Kind: cast.ObjFunc, Type: typ,
				Decl: dpos, Global: true, FuncIndex: -1,
			}
			if first && p.at(ctoken.LBrace) {
				return p.funcDefinition(obj, params)
			}
			p.file.Externs = append(p.file.Externs, obj)
		} else {
			obj := &cast.Object{
				Name: name, Kind: cast.ObjVar, Type: typ,
				Decl: dpos, Global: true,
			}
			vd := &cast.VarDecl{P: dpos, Obj: obj}
			if p.accept(ctoken.Assign) {
				init, err := p.initializer()
				if err != nil {
					return err
				}
				vd.Init = init
			}
			if sc != scExtern || vd.Init != nil {
				p.file.Globals = append(p.file.Globals, vd)
			}
		}
		first = false
		if p.accept(ctoken.Comma) {
			continue
		}
		_, err = p.expect(ctoken.Semi)
		return err
	}
}

func (p *parser) funcDefinition(obj *cast.Object, params []*cast.Object) error {
	body, err := p.block()
	if err != nil {
		return err
	}
	fd := &cast.FuncDecl{P: obj.Decl, Obj: obj, Params: params, Body: body}
	p.file.Funcs = append(p.file.Funcs, fd)
	return nil
}

// --- declaration specifiers --------------------------------------------------

func (p *parser) declSpecs() (storageClass, *ctypes.Type, error) {
	sc := scNone
	var (
		sawVoid, sawChar, sawInt, sawFloat, sawDouble bool
		nShort, nLong                                 int
		sawSigned, sawUnsigned                        bool
		sawConst                                      bool
		named                                         *ctypes.Type
	)
	start := p.pos()
	for {
		switch p.kind() {
		case ctoken.KwTypedef:
			sc = scTypedef
			p.next()
		case ctoken.KwStatic:
			sc = scStatic
			p.next()
		case ctoken.KwExtern:
			sc = scExtern
			p.next()
		case ctoken.KwRegister, ctoken.KwVolatile:
			p.next()
		case ctoken.KwConst:
			sawConst = true
			p.next()
		case ctoken.KwVoid:
			sawVoid = true
			p.next()
		case ctoken.KwChar:
			sawChar = true
			p.next()
		case ctoken.KwShort:
			nShort++
			p.next()
		case ctoken.KwInt:
			sawInt = true
			p.next()
		case ctoken.KwLong:
			nLong++
			p.next()
		case ctoken.KwFloat:
			sawFloat = true
			p.next()
		case ctoken.KwDouble:
			sawDouble = true
			p.next()
		case ctoken.KwSigned:
			sawSigned = true
			p.next()
		case ctoken.KwUnsigned:
			sawUnsigned = true
			p.next()
		case ctoken.KwStruct, ctoken.KwUnion:
			if p.kind() == ctoken.KwUnion {
				return sc, nil, p.errorf("unions are not supported by the subset")
			}
			t, err := p.structSpecifier()
			if err != nil {
				return sc, nil, err
			}
			named = t
		case ctoken.KwEnum:
			t, err := p.enumSpecifier()
			if err != nil {
				return sc, nil, err
			}
			named = t
		case ctoken.Ident:
			if t, ok := p.typedefs[p.tok().Text]; ok && named == nil &&
				!sawVoid && !sawChar && !sawInt && !sawFloat && !sawDouble &&
				nShort == 0 && nLong == 0 && !sawSigned && !sawUnsigned {
				named = t
				p.next()
				continue
			}
			goto done
		default:
			goto done
		}
	}
done:
	var t *ctypes.Type
	switch {
	case named != nil:
		t = named
	case sawVoid:
		t = ctypes.VoidType
	case sawChar:
		if sawUnsigned {
			t = ctypes.UCharType
		} else {
			t = ctypes.CharType
		}
	case sawFloat:
		t = ctypes.FloatType
	case sawDouble:
		t = ctypes.DoubleType
	case nShort > 0:
		if sawUnsigned {
			t = ctypes.UShortType
		} else {
			t = ctypes.ShortType
		}
	case nLong > 0:
		if sawUnsigned {
			t = ctypes.ULongType
		} else {
			t = ctypes.LongType
		}
	case sawInt, sawSigned:
		if sawUnsigned {
			t = ctypes.UIntType
		} else {
			t = ctypes.IntType
		}
	case sawUnsigned:
		t = ctypes.UIntType
	default:
		return sc, nil, &Error{Pos: start, Msg: "expected type specifier, found " + p.tok().String()}
	}
	if sawConst && t != nil {
		c := *t
		c.Const = true
		t = &c
	}
	return sc, t, nil
}

func (p *parser) structSpecifier() (*ctypes.Type, error) {
	p.next() // struct
	tag := ""
	if p.at(ctoken.Ident) {
		tag = p.next().Text
	}
	var info *ctypes.StructInfo
	if tag != "" {
		if existing, ok := p.structs[tag]; ok {
			info = existing
		} else {
			info = &ctypes.StructInfo{Tag: tag}
			p.structs[tag] = info
			p.file.Structs = append(p.file.Structs, info)
		}
	} else {
		info = &ctypes.StructInfo{}
		p.file.Structs = append(p.file.Structs, info)
	}
	t := &ctypes.Type{Kind: ctypes.Struct, Info: info}
	if !p.at(ctoken.LBrace) {
		return t, nil
	}
	if info.Complete {
		return nil, p.errorf("redefinition of struct %s", tag)
	}
	p.next() // {
	for !p.at(ctoken.RBrace) {
		_, base, err := p.declSpecs()
		if err != nil {
			return nil, err
		}
		for {
			fpos := p.pos()
			name, ft, _, err := p.declarator(base)
			if err != nil {
				return nil, err
			}
			if name == "" {
				return nil, &Error{Pos: fpos, Msg: "struct field requires a name"}
			}
			if p.at(ctoken.Colon) {
				return nil, p.errorf("bitfields are not supported by the subset")
			}
			info.Fields = append(info.Fields, ctypes.Field{Name: name, Type: ft})
			if !p.accept(ctoken.Comma) {
				break
			}
		}
		if _, err := p.expect(ctoken.Semi); err != nil {
			return nil, err
		}
	}
	p.next() // }
	if err := info.Layout(); err != nil {
		return nil, p.errorf("%v", err)
	}
	return t, nil
}

func (p *parser) enumSpecifier() (*ctypes.Type, error) {
	p.next() // enum
	if p.at(ctoken.Ident) {
		p.next() // tag (enums are all int in the subset; tag is cosmetic)
	}
	if p.accept(ctoken.LBrace) {
		var val int64
		for !p.at(ctoken.RBrace) {
			nameTok, err := p.expect(ctoken.Ident)
			if err != nil {
				return nil, err
			}
			if p.accept(ctoken.Assign) {
				v, err := p.constExpr()
				if err != nil {
					return nil, err
				}
				val = v
			}
			p.enums[nameTok.Text] = val
			val++
			if !p.accept(ctoken.Comma) {
				break
			}
		}
		if _, err := p.expect(ctoken.RBrace); err != nil {
			return nil, err
		}
	}
	t := *ctypes.IntType
	t.IsEnum = true
	return &t, nil
}

// --- declarators -------------------------------------------------------------

// declarator parses a (possibly abstract) declarator against a base type
// and returns the declared name ("" for abstract declarators), the full
// type, and — when the outermost derivation is a function — the named
// parameter objects.
func (p *parser) declarator(base *ctypes.Type) (string, *ctypes.Type, []*cast.Object, error) {
	for p.accept(ctoken.Star) {
		base = ctypes.PointerTo(base)
		for p.accept(ctoken.KwConst) || p.accept(ctoken.KwVolatile) {
		}
	}
	return p.directDeclarator(base)
}

func (p *parser) directDeclarator(base *ctypes.Type) (string, *ctypes.Type, []*cast.Object, error) {
	var (
		name      string
		innerSave int = -1
	)
	switch {
	case p.at(ctoken.Ident):
		name = p.next().Text
	case p.at(ctoken.LParen) && p.parenStartsDeclarator():
		// Parenthesized declarator: remember its token range, parse the
		// suffixes first, then re-parse the inner declarator against the
		// fully derived type.
		innerSave = p.i
		p.next() // (
		if err := p.skipBalancedParens(); err != nil {
			return "", nil, nil, err
		}
	}

	typ := base
	var params []*cast.Object
	var suffixes []func(*ctypes.Type) (*ctypes.Type, error)
	firstFunc := true
	for {
		switch {
		case p.at(ctoken.LBrack):
			p.next()
			n := int64(-1) // incomplete []
			if !p.at(ctoken.RBrack) {
				v, err := p.constExpr()
				if err != nil {
					return "", nil, nil, err
				}
				if v <= 0 {
					return "", nil, nil, p.errorf("array size must be positive, got %d", v)
				}
				n = v
			}
			if _, err := p.expect(ctoken.RBrack); err != nil {
				return "", nil, nil, err
			}
			sz := n
			suffixes = append(suffixes, func(t *ctypes.Type) (*ctypes.Type, error) {
				if sz < 0 {
					return ctypes.ArrayOf(t, 0), nil
				}
				return ctypes.ArrayOf(t, sz), nil
			})
		case p.at(ctoken.LParen):
			p.next()
			sig, ps, err := p.paramList()
			if err != nil {
				return "", nil, nil, err
			}
			if firstFunc && innerSave < 0 {
				params = ps
			}
			firstFunc = false
			s := sig
			suffixes = append(suffixes, func(t *ctypes.Type) (*ctypes.Type, error) {
				s2 := *s
				s2.Ret = t
				return ctypes.FuncOf(&s2), nil
			})
		default:
			goto applied
		}
	}
applied:
	// Apply suffixes inside-out (rightmost suffix closest to the base).
	for i := len(suffixes) - 1; i >= 0; i-- {
		var err error
		typ, err = suffixes[i](typ)
		if err != nil {
			return "", nil, nil, err
		}
	}
	if innerSave >= 0 {
		// Re-parse the inner declarator with the derived type as base.
		after := p.i
		p.i = innerSave + 1 // just past '('
		var err error
		name, typ, _, err = p.declarator(typ)
		if err != nil {
			return "", nil, nil, err
		}
		if _, err := p.expect(ctoken.RParen); err != nil {
			return "", nil, nil, err
		}
		p.i = after
	}
	return name, typ, params, nil
}

// parenStartsDeclarator distinguishes `(*f)(...)` from a parameter list
// `(int x)` after an identifier-less direct declarator position.
func (p *parser) parenStartsDeclarator() bool {
	k := p.peek(1)
	if k == ctoken.Star {
		return true
	}
	if k == ctoken.Ident {
		_, isType := p.typedefs[p.toks[p.i+1].Text]
		return !isType
	}
	return false
}

func (p *parser) skipBalancedParens() error {
	depth := 1
	for depth > 0 {
		switch p.kind() {
		case ctoken.LParen:
			depth++
		case ctoken.RParen:
			depth--
		case ctoken.EOF:
			return p.errorf("unbalanced parentheses in declarator")
		}
		p.next()
	}
	return nil
}

func (p *parser) paramList() (*ctypes.Signature, []*cast.Object, error) {
	sig := &ctypes.Signature{Ret: nil}
	if p.accept(ctoken.RParen) {
		sig.Unknown = true
		return sig, nil, nil
	}
	if p.at(ctoken.KwVoid) && p.peek(1) == ctoken.RParen {
		p.next()
		p.next()
		return sig, nil, nil
	}
	var params []*cast.Object
	for {
		if p.accept(ctoken.Ellipsis) {
			sig.Variadic = true
			break
		}
		ppos := p.pos()
		_, base, err := p.declSpecs()
		if err != nil {
			return nil, nil, err
		}
		name, typ, _, err := p.declarator(base)
		if err != nil {
			return nil, nil, err
		}
		// Parameter type adjustments: arrays decay to pointers, function
		// types to function pointers.
		switch typ.Kind {
		case ctypes.Array:
			typ = ctypes.PointerTo(typ.Elem)
		case ctypes.Func:
			typ = ctypes.PointerTo(typ)
		}
		sig.Params = append(sig.Params, typ)
		params = append(params, &cast.Object{
			Name: name, Kind: cast.ObjParam, Type: typ, Decl: ppos,
		})
		if !p.accept(ctoken.Comma) {
			break
		}
	}
	if _, err := p.expect(ctoken.RParen); err != nil {
		return nil, nil, err
	}
	return sig, params, nil
}

// typeName parses a type-name (declSpecs + abstract declarator), used by
// casts and sizeof.
func (p *parser) typeName() (*ctypes.Type, error) {
	_, base, err := p.declSpecs()
	if err != nil {
		return nil, err
	}
	name, typ, _, err := p.declarator(base)
	if err != nil {
		return nil, err
	}
	if name != "" {
		return nil, p.errorf("unexpected name %q in type name", name)
	}
	return typ, nil
}

// --- initializers ------------------------------------------------------------

func (p *parser) initializer() (cast.Init, error) {
	if p.at(ctoken.LBrace) {
		pos := p.pos()
		p.next()
		li := &cast.ListInit{P: pos}
		for !p.at(ctoken.RBrace) {
			el, err := p.initializer()
			if err != nil {
				return nil, err
			}
			li.Elems = append(li.Elems, el)
			if !p.accept(ctoken.Comma) {
				break
			}
		}
		if _, err := p.expect(ctoken.RBrace); err != nil {
			return nil, err
		}
		return li, nil
	}
	pos := p.pos()
	x, err := p.assignExpr()
	if err != nil {
		return nil, err
	}
	return &cast.ExprInit{P: pos, X: x}, nil
}
