package ingest_test

import (
	"testing"

	"staticest"
	"staticest/internal/eval"
	"staticest/internal/ingest"
	"staticest/internal/opt"
	"staticest/internal/profile"
)

// TestLiveAggregateConvergence closes the PGO loop over the whole
// benchmark suite and pins the issue's two acceptance criteria:
//
//  1. Exactness: for every suite program, ingesting sparse probe
//     vectors of the held-out inputs and snapshotting equals the
//     offline profile.Aggregate of the same inputs' full-instrumentation
//     profiles — byte for byte.
//  2. Convergence: decision agreement computed from the live aggregate
//     (eval.AgreementRows) is float-identical to the offline
//     cross-input (xprof) values, and the pooled top-10 inline overlap
//     is at least 0.85.
func TestLiveAggregateConvergence(t *testing.T) {
	data, err := eval.LoadSuiteCached()
	if err != nil {
		t.Fatal(err)
	}
	st := ingest.NewStore(nil)

	var pooledOverlap float64
	var pooledPrograms int
	for _, d := range data {
		u := d.Unit
		plan := u.PlanProbes()
		fp := staticest.Fingerprint([]byte(d.Prog.Source))
		st.Register(fp, d.Prog.Name, plan)

		// The fleet uploads the held-out inputs (all but the first), the
		// same complement the offline report's xprof source aggregates.
		inputs, profiles := d.Prog.Inputs, d.Profiles
		if len(inputs) > 1 {
			inputs, profiles = inputs[1:], profiles[1:]
		}
		for _, in := range inputs {
			res, err := u.Run(staticest.RunOptions{
				Args:            in.Args,
				Stdin:           in.Stdin,
				Instrumentation: staticest.SparseInstrumentation,
				Plan:            plan,
			})
			if err != nil {
				t.Fatalf("%s/%s: sparse run: %v", d.Prog.Name, in.Name, err)
			}
			if _, err := st.Ingest(fp, ingest.Upload{ID: in.Name, Label: in.Name, Vector: res.Probes}); err != nil {
				t.Fatalf("%s/%s: ingest: %v", d.Prog.Name, in.Name, err)
			}
		}

		// (1) Exactness against the offline aggregate.
		snap, ok := st.Snapshot(fp)
		if !ok {
			t.Fatalf("%s: no live snapshot", d.Prog.Name)
		}
		offline, err := profile.Aggregate(profiles)
		if err != nil {
			t.Fatal(err)
		}
		if diffs := staticest.DiffProfiles(offline, snap.Profile); len(diffs) > 0 {
			t.Fatalf("%s: live aggregate differs from offline Aggregate: %v (total %d diffs)",
				d.Prog.Name, diffs[0], len(diffs))
		}

		// (2) Agreement rows from the live aggregate equal the offline
		// cross-input rows.
		self, err := profile.Aggregate(d.Profiles)
		if err != nil {
			t.Fatal(err)
		}
		liveRows, err := eval.AgreementRows(d.Prog.Name, u, d.Est, self,
			opt.ProfileSource(u.CFG, snap.Profile, "xprof"))
		if err != nil {
			t.Fatal(err)
		}
		offRows, err := eval.OptProgram(d)
		if err != nil {
			t.Fatal(err)
		}
		if len(liveRows) != len(offRows) {
			t.Fatalf("%s: %d live rows vs %d offline rows", d.Prog.Name, len(liveRows), len(offRows))
		}
		for i := range liveRows {
			if liveRows[i] != offRows[i] {
				t.Errorf("%s: row %d differs:\nlive    %+v\noffline %+v",
					d.Prog.Name, i, liveRows[i], offRows[i])
			}
			if liveRows[i].Source == "xprof" {
				pooledOverlap += liveRows[i].InlineOverlap
				pooledPrograms++
			}
		}
	}

	if pooledPrograms != len(data) {
		t.Fatalf("pooled %d xprof rows, want %d", pooledPrograms, len(data))
	}
	if mean := pooledOverlap / float64(pooledPrograms); mean < 0.85 {
		t.Errorf("live-aggregate top-10 inline overlap %.3f below the 0.85 convergence bar", mean)
	}
}
