package ingest_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"staticest"
	"staticest/internal/ingest"
	"staticest/internal/obs"
	"staticest/internal/probes"
	"staticest/internal/profile"
)

// loopSrc iterates argv[1] times so different args produce genuinely
// different profiles for the aggregate to merge.
const loopSrc = `
int work(int n) {
	int i, s;
	s = 0;
	for (i = 0; i < n; i++) {
		if (i % 3 == 0)
			s = s + i;
		else
			s = s - 1;
	}
	return s;
}
int main(int argc, char **argv) {
	int n;
	n = 7;
	if (argc > 1)
		n = atoi(argv[1]);
	return work(n) & 15;
}
`

func compileLoop(t *testing.T) (*staticest.Unit, *probes.Plan, string) {
	t.Helper()
	u, err := staticest.Compile("loop.c", []byte(loopSrc))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return u, u.PlanProbes(), staticest.Fingerprint([]byte(loopSrc))
}

// sparseVec runs the program under sparse instrumentation with one arg.
func sparseVec(t *testing.T, u *staticest.Unit, plan *probes.Plan, arg string) *probes.Vector {
	t.Helper()
	res, err := u.Run(staticest.RunOptions{
		Args:            []string{arg},
		Instrumentation: staticest.SparseInstrumentation,
		Plan:            plan,
	})
	if err != nil {
		t.Fatalf("sparse run %q: %v", arg, err)
	}
	return res.Probes
}

// TestIngestMatchesOfflineAggregate is the subsystem's core contract:
// ingesting k uploads and snapshotting equals reconstructing the same
// vectors locally and running them through profile.Aggregate — exactly,
// field for field.
func TestIngestMatchesOfflineAggregate(t *testing.T) {
	u, plan, fp := compileLoop(t)
	st := ingest.NewStore(nil)
	st.Register(fp, "loop.c", plan)

	args := []string{"3", "9", "27", "5"}
	var offline []*profile.Profile
	for i, arg := range args {
		vec := sparseVec(t, u, plan, arg)
		rec, err := staticest.Reconstruct(plan, vec, nil)
		if err != nil {
			t.Fatalf("reconstruct %q: %v", arg, err)
		}
		rec.Label = arg
		offline = append(offline, rec)

		rcpt, err := st.Ingest(fp, ingest.Upload{
			ID:     fmt.Sprintf("u%d", i),
			Label:  arg,
			Vector: vec,
		})
		if err != nil {
			t.Fatalf("ingest %q: %v", arg, err)
		}
		if rcpt.Uploads != i+1 || rcpt.Program != "loop.c" {
			t.Fatalf("receipt = %+v, want uploads %d", rcpt, i+1)
		}

		snap, ok := st.Snapshot(fp)
		if !ok {
			t.Fatal("no snapshot after ingest")
		}
		want, err := profile.Aggregate(offline)
		if err != nil {
			t.Fatal(err)
		}
		if diffs := staticest.DiffProfiles(want, snap.Profile); len(diffs) > 0 {
			t.Fatalf("after %d uploads, live aggregate differs from offline: %v", i+1, diffs[0])
		}
	}
	if got := st.MergeOrder(fp); fmt.Sprint(got) != fmt.Sprint(args) {
		t.Errorf("merge order %v, want %v", got, args)
	}
}

// TestIngestRejections pins the defensive-validation contract: every
// malformed upload maps to its sentinel error, bumps a distinct reject
// counter, and leaves the aggregate untouched.
func TestIngestRejections(t *testing.T) {
	u, plan, fp := compileLoop(t)
	o := obs.New()
	st := ingest.NewStore(o)
	st.Register(fp, "loop.c", plan)

	good := sparseVec(t, u, plan, "4")
	if _, err := st.Ingest(fp, ingest.Upload{ID: "first", Label: "4", Vector: good}); err != nil {
		t.Fatalf("good upload rejected: %v", err)
	}
	baseline, _ := st.Snapshot(fp)

	cases := []struct {
		name     string
		fp       string
		up       ingest.Upload
		sentinel error
		counter  string
	}{
		{"unknown fingerprint", "deadbeef", ingest.Upload{Vector: good},
			ingest.ErrUnknownFingerprint, "unknown_fingerprint"},
		{"duplicate id", fp, ingest.Upload{ID: "first", Vector: good},
			ingest.ErrDuplicate, "duplicate"},
		{"nil vector", fp, ingest.Upload{ID: "nilvec"},
			ingest.ErrInvalid, "invalid"},
		{"short vector", fp, ingest.Upload{ID: "short",
			Vector: &probes.Vector{Counts: make([]float64, plan.NumProbes-1)}},
			ingest.ErrShape, "shape"},
		{"long vector", fp, ingest.Upload{ID: "long",
			Vector: &probes.Vector{Counts: make([]float64, plan.NumProbes+3)}},
			ingest.ErrShape, "shape"},
		{"bad escape", fp, ingest.Upload{ID: "esc", Vector: &probes.Vector{
			Counts:  append([]float64(nil), good.Counts...),
			Escapes: []probes.Escape{{Func: 99, Block: 0}},
		}}, ingest.ErrInvalid, "invalid"},
	}
	for _, tc := range cases {
		before := o.Counter(obs.Labels("ingest_rejects_total", "reason", tc.counter)).Value()
		_, err := st.Ingest(tc.fp, tc.up)
		if !errors.Is(err, tc.sentinel) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.sentinel)
		}
		after := o.Counter(obs.Labels("ingest_rejects_total", "reason", tc.counter)).Value()
		if after != before+1 {
			t.Errorf("%s: reject counter %q went %d -> %d, want +1", tc.name, tc.counter, before, after)
		}
	}

	snap, _ := st.Snapshot(fp)
	if snap.Uploads != 1 || snap.Epoch != baseline.Epoch {
		t.Fatalf("aggregate modified by rejected uploads: %d uploads, epoch %d",
			snap.Uploads, snap.Epoch)
	}
	if diffs := staticest.DiffProfiles(baseline.Profile, snap.Profile); len(diffs) > 0 {
		t.Fatalf("aggregate poisoned by rejected upload: %v", diffs[0])
	}
	// A fresh ID with a valid vector is still accepted after the storm.
	if _, err := st.Ingest(fp, ingest.Upload{ID: "second", Label: "4b", Vector: sparseVec(t, u, plan, "4")}); err != nil {
		t.Fatalf("valid upload after rejections: %v", err)
	}
	if got := o.Counter("ingest_uploads_total").Value(); got != 2 {
		t.Errorf("ingest_uploads_total = %d, want 2", got)
	}
}

// TestIngestConcurrentUploaders runs 32 goroutines ingesting while 4
// readers snapshot (the -race test the issue asks for), then verifies
// the final aggregate equals the offline profile.Aggregate of the same
// uploads in the recorded merge order — byte for byte.
func TestIngestConcurrentUploaders(t *testing.T) {
	u, plan, fp := compileLoop(t)
	st := ingest.NewStore(obs.New())
	st.Register(fp, "loop.c", plan)

	const uploaders = 32
	// Pre-run the sparse executions (the interpreter is the slow part);
	// ingestion itself is what we want contended.
	byLabel := make(map[string]*profile.Profile, uploaders)
	vecs := make(map[string]*probes.Vector, uploaders)
	for i := 0; i < uploaders; i++ {
		label := fmt.Sprintf("n%d", i+1)
		vec := sparseVec(t, u, plan, fmt.Sprint(i+1))
		rec, err := staticest.Reconstruct(plan, vec, nil)
		if err != nil {
			t.Fatal(err)
		}
		rec.Label = label
		byLabel[label] = rec
		vecs[label] = vec
	}

	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < uploaders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			label := fmt.Sprintf("n%d", i+1)
			if _, err := st.Ingest(fp, ingest.Upload{ID: label, Label: label, Vector: vecs[label]}); err != nil {
				t.Errorf("ingest %s: %v", label, err)
			}
		}(i)
	}
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if snap, ok := st.Snapshot(fp); ok && snap.Profile.Cycles <= 0 {
					t.Error("live snapshot with non-positive cycle count")
					return
				}
			}
		}()
	}
	close(start)
	wg.Wait()
	close(stop)
	readers.Wait()

	order := st.MergeOrder(fp)
	if len(order) != uploaders {
		t.Fatalf("merge order has %d entries, want %d", len(order), uploaders)
	}
	ordered := make([]*profile.Profile, len(order))
	for i, label := range order {
		ordered[i] = byLabel[label]
	}
	want, err := profile.Aggregate(ordered)
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := st.Snapshot(fp)
	if diffs := staticest.DiffProfiles(want, snap.Profile); len(diffs) > 0 {
		t.Fatalf("concurrent live aggregate differs from offline merge-order aggregate: %v", diffs[0])
	}
	if snap.Uploads != uploaders {
		t.Fatalf("uploads = %d, want %d", snap.Uploads, uploaders)
	}
}
