// Package ingest is the serving side of the PGO loop: it accepts
// sparse probe vectors uploaded by a fleet, reconstructs each into the
// complete profile the run would have produced under full
// instrumentation (probes.Reconstruct), and merges it into a live
// per-unit cross-input aggregate (profile.Accumulator).
//
// The store is sharded by fingerprint so uploads for different units
// never contend, and within one unit the accumulator serializes merges
// on a short O(profile) critical section — reconstruction, the
// expensive step, runs outside every lock. Readers obtain aggregates
// through epoch-swap snapshots: one atomic load while no new uploads
// have landed.
//
// Every upload is validated before it can touch an aggregate: the
// fingerprint must name a registered unit, the vector length must match
// the unit's probe plan, escape records must be in range, and an
// upload ID may be consumed at most once (duplicate fleet retries are
// rejected, not double-counted). Each rejection is counted under a
// distinct reason so a poisoning attempt is visible in /metrics.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"staticest/internal/obs"
	"staticest/internal/probes"
	"staticest/internal/profile"
)

// Rejection reasons, used as the reason label of ingest_rejects_total
// and wrapped in the errors Ingest returns.
var (
	// ErrUnknownFingerprint: no unit with that fingerprint is registered.
	ErrUnknownFingerprint = errors.New("unknown fingerprint")
	// ErrDuplicate: the upload ID was already consumed for this unit.
	ErrDuplicate = errors.New("duplicate upload")
	// ErrShape: the probe vector's length does not match the unit's plan.
	ErrShape = errors.New("probe vector shape mismatch")
	// ErrInvalid: the payload is structurally invalid (nil vector,
	// out-of-range escape records, or a profile the aggregate rejects).
	ErrInvalid = errors.New("invalid upload")
)

// numShards stripes the unit map; uploads for different units hash to
// independent locks.
const numShards = 16

// Upload is one fleet-collected sparse run.
type Upload struct {
	// ID deduplicates fleet retries: a non-empty ID is consumed at most
	// once per unit. Empty IDs are never deduplicated.
	ID string
	// Label names the run's input; it becomes the profile label recorded
	// in the aggregate's merge order.
	Label string
	// Vector is the raw probe-counter output of the sparse run.
	Vector *probes.Vector
}

// Receipt acknowledges one accepted upload.
type Receipt struct {
	Fingerprint string
	Program     string
	// Uploads is the unit's merge count after this upload.
	Uploads int
	// Epoch is the aggregate epoch after this upload.
	Epoch uint64
}

// UnitStats describes one live unit for /v1/profiles/stats.
type UnitStats struct {
	Fingerprint string
	Program     string
	Uploads     int
	Epoch       uint64
	NumProbes   int
}

// unit is one registered translation unit's live state.
type unit struct {
	fp      string
	program string
	plan    *probes.Plan
	acc     *profile.Accumulator

	mu   sync.Mutex
	seen map[string]struct{} // consumed upload IDs
}

type shard struct {
	mu    sync.RWMutex
	units map[string]*unit
}

// Store holds the live aggregates of every registered unit.
type Store struct {
	obs    *obs.Observer
	shards [numShards]shard

	uploads *obs.Counter
	swaps   *obs.Counter
	units   *obs.Gauge
}

// rejectReasons enumerates every reason label reject is called with.
// NewStore pre-registers a counter per reason so the full
// ingest_rejects_total family is present in the exposition from the
// first scrape — a soak that rejected nothing still proves the series
// exist (scripts/fleet_soak.sh checks for them).
var rejectReasons = []string{"unknown_fingerprint", "invalid", "shape", "duplicate"}

// NewStore creates an empty store reporting to o (nil disables
// observability).
func NewStore(o *obs.Observer) *Store {
	s := &Store{
		obs:     o,
		uploads: o.Counter("ingest_uploads_total"),
		swaps:   o.Counter("ingest_epoch_swaps_total"),
		units:   o.Gauge("ingest_units"),
	}
	for _, reason := range rejectReasons {
		o.Counter(obs.Labels("ingest_rejects_total", "reason", reason))
	}
	for i := range s.shards {
		s.shards[i].units = make(map[string]*unit)
	}
	return s
}

func (s *Store) shard(fp string) *shard {
	h := fnv.New32a()
	h.Write([]byte(fp))
	return &s.shards[h.Sum32()%numShards]
}

// Register makes a unit ingestible: uploads for fp are reconstructed
// under plan and merged into a fresh accumulator. Registering an
// already-registered fingerprint is a no-op (compilation is
// deterministic, so the existing plan is equivalent).
func (s *Store) Register(fp, program string, plan *probes.Plan) {
	sh := s.shard(fp)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.units[fp]; ok {
		return
	}
	sh.units[fp] = &unit{
		fp:      fp,
		program: program,
		plan:    plan,
		acc:     profile.NewAccumulator(),
		seen:    make(map[string]struct{}),
	}
	s.units.Add(1)
}

// Registered reports whether fp names a registered unit.
func (s *Store) Registered(fp string) bool {
	sh := s.shard(fp)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.units[fp]
	return ok
}

// Len returns the number of registered units.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		n += len(s.shards[i].units)
		s.shards[i].mu.RUnlock()
	}
	return n
}

func (s *Store) lookup(fp string) (*unit, bool) {
	sh := s.shard(fp)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	u, ok := sh.units[fp]
	return u, ok
}

// reject counts one rejection under its reason label and wraps the
// sentinel error with context.
func (s *Store) reject(reason string, sentinel error, format string, args ...any) error {
	s.obs.Counter(obs.Labels("ingest_rejects_total", "reason", reason)).Add(1)
	return fmt.Errorf(format+": %w", append(args, sentinel)...)
}

// Ingest validates one upload, reconstructs its full profile, and
// merges it into the unit's live aggregate. Validation failures map to
// the sentinel errors above (check with errors.Is) and never modify
// the aggregate.
func (s *Store) Ingest(fp string, up Upload) (*Receipt, error) {
	return s.IngestCtx(context.Background(), fp, up)
}

// IngestCtx is Ingest under request-scoped tracing: the upload's
// "ingest.merge" span (validation + reconstruction + merge) parents
// from ctx's span when one is present, so a served upload appears in
// its HTTP request's span tree.
func (s *Store) IngestCtx(ctx context.Context, fp string, up Upload) (rcpt *Receipt, err error) {
	sp := obs.StartSpanFrom(ctx, s.obs, "ingest.merge", obs.KV("fp", short(fp)))
	defer sp.End()
	u, ok := s.lookup(fp)
	if !ok {
		return nil, s.reject("unknown_fingerprint", ErrUnknownFingerprint, "ingest %.12s", fp)
	}
	if up.Vector == nil {
		return nil, s.reject("invalid", ErrInvalid, "ingest %.12s: nil probe vector", fp)
	}
	if len(up.Vector.Counts) != u.plan.NumProbes {
		return nil, s.reject("shape", ErrShape,
			"ingest %.12s: vector has %d counters, plan wants %d",
			fp, len(up.Vector.Counts), u.plan.NumProbes)
	}
	if up.ID != "" {
		u.mu.Lock()
		_, dup := u.seen[up.ID]
		u.mu.Unlock()
		if dup {
			return nil, s.reject("duplicate", ErrDuplicate, "ingest %.12s: upload %q", fp, up.ID)
		}
	}

	// Reconstruction — the expensive step — runs outside every lock.
	p, err := probes.Reconstruct(u.plan, up.Vector, nil)
	if err != nil {
		return nil, s.reject("invalid", ErrInvalid, "ingest %.12s: %v", fp, err)
	}
	p.Label = up.Label

	// Consume the ID and merge under the unit lock so a racing retry of
	// the same ID cannot double-merge between check and add.
	u.mu.Lock()
	if up.ID != "" {
		if _, dup := u.seen[up.ID]; dup {
			u.mu.Unlock()
			return nil, s.reject("duplicate", ErrDuplicate, "ingest %.12s: upload %q", fp, up.ID)
		}
		u.seen[up.ID] = struct{}{}
	}
	n, err := u.acc.Add(p)
	if err != nil {
		// The reconstructed profile mismatched the running aggregate's
		// shape; un-consume the ID since nothing was merged.
		if up.ID != "" {
			delete(u.seen, up.ID)
		}
		u.mu.Unlock()
		return nil, s.reject("shape", ErrShape, "ingest %.12s: %v", fp, err)
	}
	u.mu.Unlock()

	s.uploads.Add(1)
	s.obs.Gauge(obs.Labels("ingest_uploads", "fp", short(fp))).Set(float64(n))
	return &Receipt{Fingerprint: fp, Program: u.program, Uploads: n, Epoch: uint64(n)}, nil
}

// Snapshot returns the unit's live aggregate, or (nil, false) when the
// fingerprint is unknown or nothing has been ingested yet. Epoch swaps
// triggered by this call are counted.
func (s *Store) Snapshot(fp string) (*profile.Snapshot, bool) {
	u, ok := s.lookup(fp)
	if !ok {
		return nil, false
	}
	snap, swapped := u.acc.Snapshot()
	if swapped {
		s.swaps.Add(1)
	}
	if snap == nil {
		return nil, false
	}
	return snap, true
}

// MergeOrder returns the labels of the unit's merged uploads in merge
// order (nil for unknown fingerprints).
func (s *Store) MergeOrder(fp string) []string {
	u, ok := s.lookup(fp)
	if !ok {
		return nil
	}
	return u.acc.MergeOrder()
}

// Stats lists every registered unit sorted by fingerprint.
func (s *Store) Stats() []UnitStats {
	var all []UnitStats
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, u := range sh.units {
			st := UnitStats{
				Fingerprint: u.fp,
				Program:     u.program,
				Uploads:     u.acc.Uploads(),
				NumProbes:   u.plan.NumProbes,
			}
			snap, swapped := u.acc.Snapshot()
			if swapped {
				s.swaps.Add(1)
			}
			if snap != nil {
				st.Epoch = snap.Epoch
			}
			all = append(all, st)
		}
		sh.mu.RUnlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Fingerprint < all[j].Fingerprint })
	return all
}

// short truncates a fingerprint to the 12-character prefix used in
// metric labels.
func short(fp string) string {
	if len(fp) > 12 {
		return fp[:12]
	}
	return fp
}
