package obs

import "context"

// Request-scoped tracing rides the standard context: the serving layer
// opens a root span per request, stores it in the request context, and
// every pipeline stage underneath (cache, compile, interpret, ingest)
// parents its spans from the context instead of opening disconnected
// roots. One request's whole span tree is then reconstructible from
// the trace sink by following parent links up to the root, which
// carries the request ID as an attribute.

type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying s. A nil span returns ctx
// unchanged, so disabled observability adds no context allocation.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}

// StartSpanFrom opens a span parented to the context's span when one
// is present, and otherwise a root span on o. It is the entry-point
// idiom for pipeline stages that may run either inside a traced
// request or standalone: pass the context through, and the span tree
// stays connected without the stage knowing who called it.
func StartSpanFrom(ctx context.Context, o *Observer, name string, attrs ...Attr) *Span {
	if parent := SpanFromContext(ctx); parent != nil {
		return parent.Child(name, attrs...)
	}
	return o.StartSpan(name, attrs...)
}
