package obs

import (
	"math"
	"strconv"
	"sync/atomic"
	"time"
)

// Histogram bucket scheme: log-spaced bounds covering 1µs to ~79s when
// observations are seconds (the unit every serving-path histogram
// uses), ten buckets per decade. The relative quantile error is bounded
// by one bucket's width (10^0.1 ≈ 1.26, i.e. ~13%), which separates
// p99 from p999 comfortably while keeping a histogram at 81 atomic
// words. Values at or below histMinBound land in bucket 0; values past
// the last finite bound land in the +Inf overflow bucket.
const (
	histMinBound     = 1e-6
	bucketsPerDecade = 10
	numFiniteBuckets = 80
)

// histBounds[i] is the inclusive upper bound of finite bucket i;
// histLabels[i] is its pre-rendered le label (overflow is "+Inf").
var (
	histBounds [numFiniteBuckets]float64
	histLabels [numFiniteBuckets + 1]string
)

func init() {
	for i := range histBounds {
		histBounds[i] = histMinBound * math.Pow(10, float64(i)/bucketsPerDecade)
		histLabels[i] = strconv.FormatFloat(histBounds[i], 'g', 6, 64)
	}
	histLabels[numFiniteBuckets] = "+Inf"
}

// Histogram is a lock-free distribution metric: log-spaced buckets with
// atomic per-bucket counters, so concurrent Observe calls never
// contend on a lock and the hot path is one Log10 plus one atomic
// increment. Histograms of the same shape merge (fleet-side
// aggregation), estimate arbitrary quantiles, and render in the
// Prometheus histogram exposition (<name>_bucket{le=…}, <name>_sum,
// <name>_count). A nil *Histogram (from a nil Observer) ignores all
// operations, keeping the disabled pipeline zero-cost.
type Histogram struct {
	name    string
	counts  [numFiniteBuckets + 1]atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a standalone histogram (clients like cmd/fleet
// and the benchmarks aggregate latencies without a full Observer).
func NewHistogram(name string) *Histogram { return &Histogram{name: name} }

// Histogram returns the named histogram, creating it on first use.
// Returns nil on a nil Observer. Hot paths look it up once and hold the
// pointer.
func (o *Observer) Histogram(name string) *Histogram {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	h, ok := o.histograms[name]
	if !ok {
		h = NewHistogram(name)
		o.histograms[name] = h
	}
	return h
}

// bucketIndex maps a value to its bucket. NaN and negative values
// clamp to bucket 0 (durations are never negative; a garbage value
// must not index out of range). The 1e-9 slack absorbs the float error
// of Pow/Log10 round-tripping so a value exactly at a bucket's bound
// classifies into that bucket, not the next.
func bucketIndex(v float64) int {
	return LogBucketIndex(v, histMinBound, numFiniteBuckets)
}

// LogBucketIndex maps a value onto the shared log-spaced bucket ladder
// (ten buckets per decade, anchored at min): bucket 0 holds values at or
// below min, finite bucket i has inclusive upper bound min·10^(i/10),
// and values past bucket `finite` clamp to finite (callers treat that as
// their overflow bucket). The same 1e-9 slack as bucketIndex keeps
// values exactly at a bound in that bucket. This is the one ladder every
// histogram in the system shares — latency histograms here, and the
// reuse-distance histograms in internal/reuse (anchored at distance 1).
func LogBucketIndex(v, min float64, finite int) int {
	if !(v > min) {
		return 0
	}
	idx := int(math.Ceil(bucketsPerDecade*math.Log10(v/min) - 1e-9))
	if idx < 0 {
		return 0
	}
	if idx > finite {
		return finite
	}
	return idx
}

// LogBucketBound returns the inclusive upper bound of finite bucket i on
// the ladder anchored at min (the inverse of LogBucketIndex).
func LogBucketBound(i int, min float64) float64 {
	return min * math.Pow(10, float64(i)/bucketsPerDecade)
}

// Observe records one value (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[bucketIndex(v)].Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, floatBits(floatFromBits(old)+v)) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start — the idiom for
// latency histograms: defer-free, one call at the end of the region.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return floatFromBits(h.sumBits.Load())
}

// Merge adds other's observations into h. Both histograms stay usable;
// concurrent Observe calls on either are safe (the merge is atomic per
// bucket, not as a whole — momentary readers may see a partial merge).
func (h *Histogram) Merge(other *Histogram) {
	if h == nil || other == nil {
		return
	}
	for i := range h.counts {
		if n := other.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	if s := other.Sum(); s != 0 {
		for {
			old := h.sumBits.Load()
			if h.sumBits.CompareAndSwap(old, floatBits(floatFromBits(old)+s)) {
				return
			}
		}
	}
}

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation inside the bucket holding the target rank. Returns 0
// on an empty (or nil) histogram; quantiles landing in the overflow
// bucket report the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	var counts [numFiniteBuckets + 1]int64
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * float64(total)
	var cum float64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= target {
			if i >= numFiniteBuckets {
				return histBounds[numFiniteBuckets-1]
			}
			lo := 0.0
			if i > 0 {
				lo = histBounds[i-1]
			}
			hi := histBounds[i]
			frac := (target - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return histBounds[numFiniteBuckets-1]
}

// Summary is a histogram digest: the fields /v1/debug/status and the
// flushed trace events report.
type Summary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	P999  float64 `json:"p999"`
}

// Summarize returns the histogram's digest (zero value on nil).
func (h *Histogram) Summarize() Summary {
	if h == nil {
		return Summary{}
	}
	return Summary{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}

// seriesName splices suffix onto the bare metric name, before any label
// block: seriesName(`x{a="b"}`, "_count") == `x_count{a="b"}`.
func seriesName(name, suffix string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i] + suffix + name[i:]
		}
	}
	return name + suffix
}

// bucketSeries renders one cumulative bucket series name, splicing the
// le label into an existing label block when the name carries one.
func bucketSeries(name, le string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '{' {
			return name[:i] + "_bucket" + name[i:len(name)-1] + `,le="` + le + `"}`
		}
	}
	return name + `_bucket{le="` + le + `"}`
}
