package obs

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram("x_seconds")
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("fresh histogram is not empty")
	}
	h.Observe(0.001)
	h.Observe(0.001)
	h.Observe(0.010)
	h.Observe(0.100)
	if got := h.Count(); got != 4 {
		t.Fatalf("Count = %d, want 4", got)
	}
	if got, want := h.Sum(), 0.112; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
	// Quantiles land inside the right bucket: each estimate must be
	// within one bucket's relative width (10^0.1) of the true value.
	for _, tc := range []struct{ q, want float64 }{
		{0.25, 0.001},
		{0.5, 0.001},
		{0.75, 0.010},
		{1.0, 0.100},
	} {
		got := h.Quantile(tc.q)
		if got < tc.want/1.26 || got > tc.want*1.26 {
			t.Errorf("Quantile(%v) = %v, want within one bucket of %v", tc.q, got, tc.want)
		}
	}
	// Monotone in q.
	prev := -1.0
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: q=%v gave %v after %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramEdges(t *testing.T) {
	h := NewHistogram("edge_seconds")
	h.Observe(0)           // clamps to bucket 0
	h.Observe(-1)          // negative clamps too
	h.Observe(math.NaN())  // garbage must not panic or mis-index
	h.Observe(1e9)         // overflow bucket
	h.Observe(math.Inf(1)) // overflow bucket
	if got := h.Count(); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	// The overflow quantile reports the largest finite bound.
	if got := h.Quantile(1.0); got != histBounds[numFiniteBuckets-1] {
		t.Fatalf("overflow quantile = %v, want %v", got, histBounds[numFiniteBuckets-1])
	}
	// Out-of-range q clamps.
	if h.Quantile(-3) != h.Quantile(0) || h.Quantile(7) != h.Quantile(1) {
		t.Fatal("out-of-range quantiles do not clamp")
	}
}

func TestHistogramBucketIndexBoundaries(t *testing.T) {
	// A value exactly at a bucket's upper bound belongs to that bucket
	// (le semantics), and one just past it to the next.
	for _, i := range []int{0, 1, 10, 40, numFiniteBuckets - 1} {
		b := histBounds[i]
		if got := bucketIndex(b); got > i {
			t.Errorf("bucketIndex(bound[%d]) = %d, want <= %d", i, got, i)
		}
		if got := bucketIndex(b * 1.01); got != i+1 {
			t.Errorf("bucketIndex(bound[%d]*1.01) = %d, want %d", i, got, i+1)
		}
	}
	if got := bucketIndex(histMinBound / 2); got != 0 {
		t.Errorf("tiny value bucket = %d, want 0", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram("a")
	b := NewHistogram("b")
	for i := 0; i < 100; i++ {
		a.Observe(0.001)
		b.Observe(0.1)
	}
	a.Merge(b)
	if got := a.Count(); got != 200 {
		t.Fatalf("merged Count = %d, want 200", got)
	}
	if got, want := a.Sum(), 100*0.001+100*0.1; math.Abs(got-want) > 1e-9 {
		t.Fatalf("merged Sum = %v, want %v", got, want)
	}
	// b is untouched.
	if got := b.Count(); got != 100 {
		t.Fatalf("merge source Count = %d, want 100", got)
	}
	// The median of the merged distribution sits at the boundary of the
	// two modes; p25/p75 land in each mode's bucket.
	if got := a.Quantile(0.25); got > 0.001*1.26 {
		t.Errorf("merged p25 = %v, want ~0.001", got)
	}
	if got := a.Quantile(0.75); got < 0.1/1.26 {
		t.Errorf("merged p75 = %v, want ~0.1", got)
	}
}

func TestHistogramNilSafety(t *testing.T) {
	var o *Observer
	h := o.Histogram("x")
	if h != nil {
		t.Fatal("nil observer returned a live histogram")
	}
	h.Observe(1)
	h.Merge(NewHistogram("y"))
	NewHistogram("y").Merge(h)
	if h.Count() != 0 || h.Sum() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram is not inert")
	}
	if s := h.Summarize(); s != (Summary{}) {
		t.Fatalf("nil Summarize = %+v", s)
	}
}

func TestObserverHistogramRegistry(t *testing.T) {
	o := New()
	h1 := o.Histogram("lat_seconds")
	h2 := o.Histogram("lat_seconds")
	if h1 != h2 {
		t.Fatal("same name returned different histograms")
	}
	h1.Observe(0.5)
	snap := o.Snapshot()
	if snap["lat_seconds_count"] != 1 {
		t.Errorf("snapshot count = %v, want 1", snap["lat_seconds_count"])
	}
	if snap["lat_seconds_sum"] != 0.5 {
		t.Errorf("snapshot sum = %v, want 0.5", snap["lat_seconds_sum"])
	}
	labeled := o.Histogram(Labels("req_seconds", "endpoint", "estimate"))
	labeled.Observe(0.25)
	snap = o.Snapshot()
	if snap[`req_seconds_count{endpoint="estimate"}`] != 1 {
		t.Errorf("labeled snapshot missing count: %v", snap)
	}
}

// TestHistogramConcurrent is the 32-goroutine -race acceptance test:
// concurrent Observe, Merge, and Quantile on shared histograms must be
// data-race free and lose no observations.
func TestHistogramConcurrent(t *testing.T) {
	const (
		goroutines = 32
		perG       = 1000
	)
	o := New()
	dst := o.Histogram("conc_seconds")
	src := o.Histogram("src_seconds")
	for i := 0; i < perG; i++ {
		src.Observe(0.01)
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			switch g % 4 {
			case 0, 1: // writers
				for i := 0; i < perG; i++ {
					dst.Observe(float64(i%10) * 0.001)
				}
			case 2: // mergers
				for i := 0; i < 8; i++ {
					dst.Merge(src)
				}
			case 3: // readers
				for i := 0; i < perG; i++ {
					dst.Quantile(0.99)
					dst.Count()
					dst.Summarize()
				}
			}
		}(g)
	}
	wg.Wait()

	writers := int64(goroutines / 4 * 2)
	mergers := int64(goroutines / 4)
	want := writers*perG + mergers*8*perG
	if got := dst.Count(); got != want {
		t.Fatalf("Count after concurrent load = %d, want %d", got, want)
	}
	wantSum := float64(writers)*perG/10*(0+1+2+3+4+5+6+7+8+9)*0.001 + float64(mergers)*8*perG*0.01
	if got := dst.Sum(); math.Abs(got-wantSum) > 1e-6*wantSum {
		t.Fatalf("Sum after concurrent load = %v, want %v", got, wantSum)
	}
}

// TestHistogramExpositionGolden pins the Prometheus exposition of a
// histogram family: the TYPE header, the full cumulative le ladder,
// label splicing, and the _sum/_count tail. Bucket bounds are part of
// the wire format — changing the scheme must fail this test.
func TestHistogramExpositionGolden(t *testing.T) {
	o := newTestObserver(nil)
	h := o.Histogram(Labels("req_seconds", "endpoint", "estimate"))
	h.Observe(5e-7)  // bucket 0 (le 1e-06)
	h.Observe(5e-7)  // bucket 0
	h.Observe(0.002) // le 0.00251189
	h.Observe(50)    // le 50.1187
	h.Observe(500)   // +Inf overflow

	exp := o.Exposition()
	for _, want := range []string{
		"# TYPE req_seconds histogram\n",
		"req_seconds_bucket{endpoint=\"estimate\",le=\"1e-06\"} 2\n",
		// Cumulative: every bucket between 1µs and 2ms still reads 2.
		"req_seconds_bucket{endpoint=\"estimate\",le=\"0.001\"} 2\n",
		"req_seconds_bucket{endpoint=\"estimate\",le=\"0.00251189\"} 3\n",
		"req_seconds_bucket{endpoint=\"estimate\",le=\"50.1187\"} 4\n",
		"req_seconds_bucket{endpoint=\"estimate\",le=\"+Inf\"} 5\n",
		"req_seconds_sum{endpoint=\"estimate\"} 550.002001\n",
		"req_seconds_count{endpoint=\"estimate\"} 5\n",
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q\ngot:\n%s", want, exp)
		}
	}
	// The ladder is complete: 80 finite bounds + overflow.
	if got := strings.Count(exp, "req_seconds_bucket{"); got != numFiniteBuckets+1 {
		t.Errorf("exposition has %d bucket series, want %d", got, numFiniteBuckets+1)
	}
	// Histogram families must not also appear as scalar series.
	if strings.Contains(exp, "# TYPE req_seconds counter") || strings.Contains(exp, "# TYPE req_seconds gauge") {
		t.Error("histogram family re-typed as scalar")
	}
}

func TestSpanCapture(t *testing.T) {
	o := newTestObserver(nil) // no sink: capture must work regardless
	root := o.StartSpan("server.profile", KV("req_id", "abc"))
	cap := root.Capture()
	comp := root.Child("compile")
	comp.Child("compile.parse").End()
	comp.End()
	root.Child("interp.run").End()
	root.End()

	events := cap.Events()
	wantNames := []string{"compile.parse", "compile", "interp.run", "server.profile"}
	if len(events) != len(wantNames) {
		t.Fatalf("captured %d events, want %d", len(events), len(wantNames))
	}
	byName := map[string]Event{}
	for i, e := range events {
		if e.Name != wantNames[i] {
			t.Errorf("event %d = %q, want %q", i, e.Name, wantNames[i])
		}
		byName[e.Name] = e
	}
	if byName["compile"].Parent != byName["server.profile"].ID {
		t.Error("captured tree lost parentage")
	}
	if byName["server.profile"].Attrs["req_id"] != "abc" {
		t.Error("captured root lost attrs")
	}
	// A span tree without capture adds nothing.
	plain := o.StartSpan("other")
	plain.Child("x").End()
	plain.End()
	if got := len(cap.Events()); got != len(wantNames) {
		t.Fatalf("unrelated spans leaked into capture: %d events", got)
	}
	// Nil safety.
	var nilSpan *Span
	if nilSpan.Capture() != nil {
		t.Fatal("nil span capture not nil")
	}
	var nilCap *SpanCapture
	if nilCap.Events() != nil {
		t.Fatal("nil capture events not nil")
	}
}

func TestContextSpanPropagation(t *testing.T) {
	o := newTestObserver(nil)
	ctx := context.Background()
	if SpanFromContext(ctx) != nil {
		t.Fatal("empty context carries a span")
	}
	root := o.StartSpan("root")
	ctx = ContextWithSpan(ctx, root)
	if SpanFromContext(ctx) != root {
		t.Fatal("context lost the span")
	}
	child := StartSpanFrom(ctx, nil, "child")
	if child == nil {
		t.Fatal("StartSpanFrom ignored the context span")
	}
	child.End()
	root.End()
	// Without a context span it falls back to the observer root...
	solo := StartSpanFrom(context.Background(), o, "solo")
	if solo == nil {
		t.Fatal("StartSpanFrom ignored the observer")
	}
	solo.End()
	// ...and with neither, stays nil (zero-cost disabled mode).
	if sp := StartSpanFrom(context.Background(), nil, "none"); sp != nil {
		t.Fatal("StartSpanFrom invented a span")
	}
	// A nil span never enters the context.
	if ctx2 := ContextWithSpan(context.Background(), nil); SpanFromContext(ctx2) != nil {
		t.Fatal("nil span stored in context")
	}
}
