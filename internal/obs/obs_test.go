package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock advances a fixed step on every reading, so span timings and
// event timestamps are fully deterministic.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(c.step)
	return c.t
}

func newTestObserver(sink EventSink) *Observer {
	c := &fakeClock{t: time.Unix(0, 0), step: time.Millisecond}
	return New(WithSink(sink), WithClock(c.now))
}

func TestNilObserverIsInert(t *testing.T) {
	var o *Observer
	if o.Enabled() {
		t.Fatal("nil observer reports enabled")
	}
	sp := o.StartSpan("x", KV("k", 1))
	sp.SetAttr("k2", 2)
	child := sp.Child("y")
	child.End()
	sp.End()
	o.Counter("c").Add(5)
	if v := o.Counter("c").Value(); v != 0 {
		t.Fatalf("nil counter value = %d", v)
	}
	o.Gauge("g").Set(3.5)
	if v := o.Gauge("g").Value(); v != 0 {
		t.Fatalf("nil gauge value = %g", v)
	}
	o.Flush()
	if s := o.Exposition(); s != "" {
		t.Fatalf("nil exposition = %q", s)
	}
}

func TestSpanNestingAndOrdering(t *testing.T) {
	var buf bytes.Buffer
	o := newTestObserver(NewJSONLSink(&buf))

	root := o.StartSpan("pipeline", KV("prog", "p.c"))
	comp := root.Child("compile")
	parse := comp.Child("parse")
	parse.End()
	sema := comp.Child("analyze")
	sema.End()
	comp.End()
	run := root.Child("run")
	run.End()
	root.End()

	var events []Event
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var e Event
		if err := dec.Decode(&e); err != nil {
			t.Fatal(err)
		}
		events = append(events, e)
	}
	// Events arrive in end order: leaves before their parents.
	wantNames := []string{"parse", "analyze", "compile", "run", "pipeline"}
	if len(events) != len(wantNames) {
		t.Fatalf("got %d events, want %d", len(events), len(wantNames))
	}
	byName := map[string]Event{}
	for i, e := range events {
		if e.Name != wantNames[i] {
			t.Errorf("event %d = %q, want %q", i, e.Name, wantNames[i])
		}
		if e.Type != "span" {
			t.Errorf("event %q type = %q", e.Name, e.Type)
		}
		byName[e.Name] = e
	}
	// Parent links reconstruct the tree.
	if byName["parse"].Parent != byName["compile"].ID ||
		byName["analyze"].Parent != byName["compile"].ID {
		t.Error("compile children have wrong parent")
	}
	if byName["compile"].Parent != byName["pipeline"].ID ||
		byName["run"].Parent != byName["pipeline"].ID {
		t.Error("pipeline children have wrong parent")
	}
	if byName["pipeline"].Parent != 0 {
		t.Errorf("root parent = %d, want 0", byName["pipeline"].Parent)
	}
	// A parent starts no later and ends no earlier than its children.
	for _, child := range []string{"parse", "analyze"} {
		c, p := byName[child], byName["compile"]
		if c.StartUS < p.StartUS {
			t.Errorf("%s starts before its parent", child)
		}
		if c.StartUS+c.DurUS > p.StartUS+p.DurUS {
			t.Errorf("%s ends after its parent", child)
		}
	}
	if byName["pipeline"].Attrs["prog"] != "p.c" {
		t.Errorf("root attrs = %v", byName["pipeline"].Attrs)
	}
	// Double End is idempotent.
	root.End()
	if buf.Len() != 0 {
		t.Error("second End emitted an event")
	}
}

func TestCounterAggregation(t *testing.T) {
	o := New()
	c := o.Counter("widgets_total")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(1)
			}
			// Concurrent lookup must return the same counter.
			o.Counter("widgets_total").Add(1)
		}()
	}
	wg.Wait()
	if v := c.Value(); v != 8*1001 {
		t.Fatalf("counter = %d, want %d", v, 8*1001)
	}
	o.Gauge("level").Set(2.5)
	o.Gauge("level").Set(7.25)
	if v := o.Gauge("level").Value(); v != 7.25 {
		t.Fatalf("gauge = %g, want 7.25", v)
	}
}

// TestJSONLGolden pins the exact JSONL schema: field names, ordering,
// and omission rules. The fake clock ticks 1ms per reading, so every
// timestamp is a fixed multiple of 1000us.
func TestJSONLGolden(t *testing.T) {
	var buf bytes.Buffer
	o := newTestObserver(NewJSONLSink(&buf))

	// Clock readings: New()=1ms(start). span start=2ms. child start=3ms,
	// child end=4ms. span end=5ms. Flush reads 6ms.
	sp := o.StartSpan("load", KV("prog", "gcc"))
	ch := sp.Child("run")
	ch.End()
	sp.End()
	o.Counter("runs_total").Add(3)
	o.Gauge("density").Set(0.5)
	o.Flush()

	want := strings.Join([]string{
		`{"type":"span","name":"run","id":2,"parent":1,"start_us":2000,"dur_us":1000}`,
		`{"type":"span","name":"load","id":1,"start_us":1000,"dur_us":3000,"attrs":{"prog":"gcc"}}`,
		`{"type":"gauge","name":"density","start_us":5000,"value":0.5}`,
		`{"type":"counter","name":"runs_total","start_us":5000,"value":3}`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("JSONL mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestExpositionFormat(t *testing.T) {
	o := newTestObserver(nil)
	o.Counter("interp_blocks_executed_total").Add(42)
	o.Counter(Labels("eval_runs_total", "prog", "gcc")).Add(2)
	o.Counter(Labels("eval_runs_total", "prog", "awk")).Add(1)
	o.Gauge("probes_arc_reduction").Set(0.375)
	sp := o.StartSpan("compile")
	sp.End()

	want := strings.Join([]string{
		`# TYPE eval_runs_total counter`,
		`eval_runs_total{prog="awk"} 1`,
		`eval_runs_total{prog="gcc"} 2`,
		`# TYPE interp_blocks_executed_total counter`,
		`interp_blocks_executed_total 42`,
		`# TYPE probes_arc_reduction gauge`,
		`probes_arc_reduction 0.375`,
		`# TYPE span_count counter`,
		`span_count{span="compile"} 1`,
		`# TYPE span_seconds_total counter`,
		`span_seconds_total{span="compile"} 0.001`,
	}, "\n") + "\n"
	if got := o.Exposition(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabels(t *testing.T) {
	if got := Labels("m_total"); got != "m_total" {
		t.Errorf("no pairs: %q", got)
	}
	if got := Labels("m_total", "a", "1", "b", "x\"y"); got != `m_total{a="1",b="x\"y"}` {
		t.Errorf("pairs: %q", got)
	}
	if got := Labels("m_total", "odd"); got != "m_total" {
		t.Errorf("odd pair: %q", got)
	}
}

func TestConcurrentSinkAndSpans(t *testing.T) {
	var buf bytes.Buffer
	o := New(WithSink(NewJSONLSink(&buf)))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := o.StartSpan("work")
				sp.Child("inner").End()
				sp.End()
				o.Counter("ops_total").Add(1)
			}
		}(g)
	}
	wg.Wait()
	// Every line must be valid JSON (no interleaved writes).
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 8*50*2 {
		t.Fatalf("got %d events, want %d", len(lines), 8*50*2)
	}
	for _, ln := range lines {
		var e Event
		if err := json.Unmarshal([]byte(ln), &e); err != nil {
			t.Fatalf("corrupt JSONL line %q: %v", ln, err)
		}
	}
	if v := o.Counter("ops_total").Value(); v != 400 {
		t.Fatalf("ops_total = %d", v)
	}
}

// --- micro-benchmarks -------------------------------------------------------

func BenchmarkNilObserverSpan(b *testing.B) {
	var o *Observer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := o.StartSpan("x")
		sp.End()
	}
}

func BenchmarkNilCounterAdd(b *testing.B) {
	var o *Observer
	c := o.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	o := New()
	c := o.Counter("x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkSpanStartEnd(b *testing.B) {
	o := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := o.StartSpan("x")
		sp.End()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram("x_seconds")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func BenchmarkNilHistogramObserve(b *testing.B) {
	var o *Observer
	h := o.Histogram("x_seconds")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.0042)
	}
}

func TestGaugeAdd(t *testing.T) {
	o := New()
	g := o.Gauge("inflight")
	g.Add(2)
	g.Add(-0.5)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("Gauge.Add: got %v, want 1.5", got)
	}

	// Concurrent adds must not lose increments.
	var wg sync.WaitGroup
	g.Set(0)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-1)
			}
			g.Add(1)
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 8 {
		t.Fatalf("concurrent Gauge.Add: got %v, want 8", got)
	}

	var nilG *Gauge
	nilG.Add(1) // must not panic
}
