// Package obs is the pipeline's observability layer: hierarchical timed
// spans, named counters and gauges, a JSONL event sink, and a
// Prometheus-style text exposition. Every entry point is safe on a nil
// *Observer, and the nil path does no allocation and takes no locks, so
// a pipeline compiled with observability disabled costs effectively
// nothing (see BenchmarkObsDisabled).
//
// The layer is deliberately small: no sampling, no exporters, no
// global registry. A component receives an *Observer (usually via its
// Options or a façade handle), opens spans around its phases, and bumps
// counters for the quantities the evaluation cares about. Commands
// surface the data with -trace (JSONL events) and -metrics (text
// exposition); cmd/evaluate can additionally serve net/http/pprof and
// expvar for long runs.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Observer is the root handle of one observability domain. The zero
// value is not usable; construct with New. A nil *Observer is valid
// everywhere and disables all recording.
type Observer struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	spans      map[string]*spanStat
	sink       EventSink
	now        func() time.Time
	start      time.Time
	seq        atomic.Int64
}

// spanStat aggregates completed spans of one name for the exposition.
type spanStat struct {
	count int64
	total time.Duration
}

// Option configures an Observer.
type Option func(*Observer)

// WithSink routes structured events (span completions, flushed counter
// and gauge values) to sink. Without a sink, spans still aggregate into
// the exposition's span_count / span_seconds_total series.
func WithSink(sink EventSink) Option {
	return func(o *Observer) { o.sink = sink }
}

// WithClock substitutes the time source (deterministic tests).
func WithClock(now func() time.Time) Option {
	return func(o *Observer) { o.now = now }
}

// New creates an Observer.
func New(opts ...Option) *Observer {
	o := &Observer{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		spans:      make(map[string]*spanStat),
		now:        time.Now,
	}
	for _, opt := range opts {
		opt(o)
	}
	o.start = o.now()
	return o
}

// Enabled reports whether the observer records anything.
func (o *Observer) Enabled() bool { return o != nil }

// --- counters and gauges ----------------------------------------------------

// Counter is a monotonically increasing int64 metric. A nil *Counter
// (from a nil Observer) ignores all operations.
type Counter struct {
	name string
	v    atomic.Int64
}

// Counter returns the named counter, creating it on first use. Returns
// nil on a nil Observer. Hot paths should look the counter up once and
// hold the pointer; Add is then a single atomic increment.
func (o *Observer) Counter(name string) *Counter {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	c, ok := o.counters[name]
	if !ok {
		c = &Counter{name: name}
		o.counters[name] = c
	}
	return c
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric holding the last value set. A nil *Gauge
// ignores all operations.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Gauge returns the named gauge, creating it on first use. Returns nil
// on a nil Observer.
func (o *Observer) Gauge(name string) *Gauge {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	g, ok := o.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		o.gauges[name] = g
	}
	return g
}

// Set records the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// Add shifts the gauge by delta (atomically; negative deltas allowed).
// It backs up/down quantities like in-flight request counts, where
// concurrent writers must not lose increments the way racing
// Value()+Set pairs would.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, floatBits(floatFromBits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return floatFromBits(g.bits.Load())
}

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// Labels renders a metric name with label pairs in Prometheus form:
// Labels("x_total", "prog", "gcc") == `x_total{prog="gcc"}`. Pairs are
// key, value, key, value, ...; an odd trailing key is dropped. The
// result is an ordinary metric name — the exposition groups series of
// one base name under a single TYPE header.
func Labels(name string, pairs ...string) string {
	if len(pairs) < 2 {
		return name
	}
	var sb strings.Builder
	sb.WriteString(name)
	sb.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s=%q", pairs[i], pairs[i+1])
	}
	sb.WriteByte('}')
	return sb.String()
}

// --- exposition -------------------------------------------------------------

// WriteProm writes every counter, gauge, histogram, and span aggregate
// in the Prometheus text exposition format, sorted by series name for
// deterministic output. Span aggregates appear as span_count{span="x"}
// and span_seconds_total{span="x"}; histograms follow the scalar
// series as cumulative <name>_bucket{le=…} ladders with <name>_sum and
// <name>_count, grouped under one "# TYPE <name> histogram" header per
// family.
func (o *Observer) WriteProm(w io.Writer) error {
	if o == nil {
		return nil
	}
	type series struct {
		name string // full series name incl. labels
		typ  string
		val  string
	}
	o.mu.Lock()
	all := make([]series, 0, len(o.counters)+len(o.gauges)+2*len(o.spans))
	for name, c := range o.counters {
		all = append(all, series{name, "counter", fmt.Sprintf("%d", c.Value())})
	}
	for name, g := range o.gauges {
		all = append(all, series{name, "gauge", formatFloat(g.Value())})
	}
	for name, st := range o.spans {
		all = append(all, series{
			Labels("span_count", "span", name), "counter",
			fmt.Sprintf("%d", st.count),
		})
		all = append(all, series{
			Labels("span_seconds_total", "span", name), "counter",
			formatFloat(st.total.Seconds()),
		})
	}
	hists := make([]*Histogram, 0, len(o.histograms))
	for _, h := range o.histograms {
		hists = append(hists, h)
	}
	o.mu.Unlock()

	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	lastBase := ""
	for _, s := range all {
		base := s.name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if base != lastBase {
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", base, s.typ); err != nil {
				return err
			}
			lastBase = base
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", s.name, s.val); err != nil {
			return err
		}
	}

	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })
	lastBase = ""
	for _, h := range hists {
		base := h.name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if base != lastBase {
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", base); err != nil {
				return err
			}
			lastBase = base
		}
		var cum int64
		for i := range h.counts {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s %d\n", bucketSeries(h.name, histLabels[i]), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", seriesName(h.name, "_sum"), formatFloat(h.Sum())); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", seriesName(h.name, "_count"), cum); err != nil {
			return err
		}
	}
	return nil
}

// Exposition returns WriteProm output as a string ("" on nil).
func (o *Observer) Exposition() string {
	if o == nil {
		return ""
	}
	var sb strings.Builder
	o.WriteProm(&sb)
	return sb.String()
}

// formatFloat renders floats without exponent noise for round values.
func formatFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Snapshot returns the current value of every counter, gauge, and span
// aggregate as a flat series-name → value map (nil on a nil Observer).
// cmd/evaluate publishes it through expvar.Func.
func (o *Observer) Snapshot() map[string]float64 {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	m := make(map[string]float64, len(o.counters)+len(o.gauges)+2*len(o.spans)+2*len(o.histograms))
	for name, c := range o.counters {
		m[name] = float64(c.Value())
	}
	for name, g := range o.gauges {
		m[name] = g.Value()
	}
	for name, st := range o.spans {
		m[Labels("span_count", "span", name)] = float64(st.count)
		m[Labels("span_seconds_total", "span", name)] = st.total.Seconds()
	}
	for name, h := range o.histograms {
		m[seriesName(name, "_count")] = float64(h.Count())
		m[seriesName(name, "_sum")] = h.Sum()
	}
	return m
}

// Flush emits the current value of every counter, gauge, and histogram
// digest to the sink (spans emit themselves as they end) and is a
// no-op without a sink. Commands call it once before rendering a trace
// so the JSONL stream carries final totals alongside the span tree.
func (o *Observer) Flush() {
	if o == nil || o.sink == nil {
		return
	}
	type kv struct {
		name  string
		typ   string
		val   float64
		attrs map[string]any
	}
	o.mu.Lock()
	all := make([]kv, 0, len(o.counters)+len(o.gauges)+len(o.histograms))
	for name, c := range o.counters {
		all = append(all, kv{name: name, typ: "counter", val: float64(c.Value())})
	}
	for name, g := range o.gauges {
		all = append(all, kv{name: name, typ: "gauge", val: g.Value()})
	}
	for name, h := range o.histograms {
		s := h.Summarize()
		all = append(all, kv{name: name, typ: "histogram", val: float64(s.Count),
			attrs: map[string]any{"sum": s.Sum, "p50": s.P50, "p90": s.P90, "p99": s.P99, "p999": s.P999}})
	}
	o.mu.Unlock()
	sort.Slice(all, func(i, j int) bool { return all[i].name < all[j].name })
	now := o.sinceStartUS(o.now())
	for _, s := range all {
		o.sink.Emit(Event{Type: s.typ, Name: s.name, StartUS: now, Value: s.val, Attrs: s.attrs})
	}
}

func (o *Observer) sinceStartUS(t time.Time) int64 {
	return t.Sub(o.start).Microseconds()
}
