package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one timed region of work. Spans nest explicitly: a root span
// comes from Observer.StartSpan, children from Span.Child, so parentage
// stays correct across goroutines without context plumbing. A nil *Span
// ignores all operations. End must be called exactly once per non-nil
// span (usually deferred); spans are not shared between goroutines.
type Span struct {
	obs     *Observer
	name    string
	id      int64
	parent  int64
	start   time.Time
	attrs   map[string]any
	ended   bool
	capture *SpanCapture
}

// StartSpan opens a root span. Returns nil on a nil Observer.
func (o *Observer) StartSpan(name string, attrs ...Attr) *Span {
	if o == nil {
		return nil
	}
	return o.newSpan(name, 0, nil, attrs)
}

// Child opens a sub-span of s. Returns nil on a nil span. The child
// inherits s's capture, so a captured root collects its whole subtree.
func (s *Span) Child(name string, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	return s.obs.newSpan(name, s.id, s.capture, attrs)
}

func (o *Observer) newSpan(name string, parent int64, capture *SpanCapture, attrs []Attr) *Span {
	s := &Span{
		obs:     o,
		name:    name,
		id:      o.seq.Add(1),
		parent:  parent,
		capture: capture,
		start:   o.now(),
	}
	if len(attrs) > 0 {
		s.attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			s.attrs[a.Key] = a.Value
		}
	}
	return s
}

// SetAttr attaches an attribute to a live span (no-op on nil).
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 1)
	}
	s.attrs[key] = value
}

// End closes the span: its duration is added to the per-name aggregate
// (span_count / span_seconds_total in the exposition) and, with a sink
// configured, a span event is emitted. Events therefore appear in end
// order — children before their parents. Safe on nil; a second End is
// ignored.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	o := s.obs
	dur := o.now().Sub(s.start)

	o.mu.Lock()
	st, ok := o.spans[s.name]
	if !ok {
		st = &spanStat{}
		o.spans[s.name] = st
	}
	st.count++
	st.total += dur
	sink := o.sink
	o.mu.Unlock()

	if sink != nil || s.capture != nil {
		e := Event{
			Type:    "span",
			Name:    s.name,
			ID:      s.id,
			Parent:  s.parent,
			StartUS: o.sinceStartUS(s.start),
			DurUS:   dur.Microseconds(),
			Attrs:   s.attrs,
		}
		if sink != nil {
			sink.Emit(e)
		}
		s.capture.add(e)
	}
}

// SpanCapture collects the span events of one subtree in memory. Built
// by Span.Capture; the serving layer uses it to retain the slowest
// requests' span trees without requiring a sink to be configured.
type SpanCapture struct {
	mu     sync.Mutex
	events []Event
}

// Capture turns on subtree capture rooted at s: s's own end event and
// every descendant's (spans created via Child after this call) are
// retained in the returned capture. Returns nil on a nil span.
func (s *Span) Capture() *SpanCapture {
	if s == nil {
		return nil
	}
	s.capture = &SpanCapture{}
	return s.capture
}

func (c *SpanCapture) add(e Event) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns the captured events in end order (nil on nil).
func (c *SpanCapture) Events() []Event {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// Attr is one span annotation. Values must be JSON-encodable.
type Attr struct {
	Key   string
	Value any
}

// KV builds an Attr.
func KV(key string, value any) Attr { return Attr{Key: key, Value: value} }

// Event is one structured observability record — the JSONL schema.
// StartUS is microseconds since the observer was created; span events
// carry DurUS, counter/gauge events carry Value.
type Event struct {
	Type    string         `json:"type"`
	Name    string         `json:"name"`
	ID      int64          `json:"id,omitempty"`
	Parent  int64          `json:"parent,omitempty"`
	StartUS int64          `json:"start_us"`
	DurUS   int64          `json:"dur_us,omitempty"`
	Value   float64        `json:"value,omitempty"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// EventSink receives events. Implementations must be safe for
// concurrent Emit calls.
type EventSink interface {
	Emit(Event)
}

// JSONLSink writes one JSON object per line to an io.Writer.
type JSONLSink struct {
	mu sync.Mutex
	w  io.Writer
}

// NewJSONLSink wraps w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Emit marshals the event and appends a newline. Marshal errors are
// impossible for the Event shape we emit (primitive attr values);
// write errors are dropped — observability must not fail the pipeline.
func (s *JSONLSink) Emit(e Event) {
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	b = append(b, '\n')
	s.mu.Lock()
	s.w.Write(b)
	s.mu.Unlock()
}
