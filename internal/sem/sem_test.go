package sem_test

import (
	"strings"
	"testing"

	"staticest/internal/cast"
	"staticest/internal/cparse"
	"staticest/internal/ctypes"
	"staticest/internal/sem"
)

func analyze(t *testing.T, src string) *sem.Program {
	t.Helper()
	file, err := cparse.ParseFile("t.c", []byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sem.Analyze(file)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	return sp
}

func analyzeErr(t *testing.T, src string) error {
	t.Helper()
	file, err := cparse.ParseFile("t.c", []byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = sem.Analyze(file)
	return err
}

func TestResolutionAndTypes(t *testing.T) {
	sp := analyze(t, `
int g;
double scale(double x) { return x * 2.0; }
int main(void) {
	int local = 3;
	g = local + 1;
	return (int)scale(g);
}`)
	if sp.Main == nil || sp.Main.Name() != "main" {
		t.Fatal("main not identified")
	}
	if len(sp.Funcs) != 2 {
		t.Fatalf("%d funcs", len(sp.Funcs))
	}
	if len(sp.Globals) != 1 || sp.Globals[0].Obj.GlobalIndex != 0 {
		t.Errorf("globals mis-assigned: %+v", sp.Globals)
	}
	// The call to scale is a numbered site.
	if len(sp.CallSites) != 1 || sp.CallSites[0].Callee.Name != "scale" {
		t.Errorf("call sites: %+v", sp.CallSites)
	}
}

func TestFrameLayout(t *testing.T) {
	sp := analyze(t, `
int f(int a, char b) {
	int x;
	double y;
	char buf[10];
	return a + x;
}`)
	fd := sp.Funcs[0]
	// a@0, b@4, x@8, y@16, buf@24, frame = 40 (aligned to 8).
	offs := map[string]int64{}
	for _, p := range fd.Params {
		offs[p.Name] = p.FrameOffset
	}
	for _, l := range fd.Locals {
		offs[l.Name] = l.FrameOffset
	}
	want := map[string]int64{"a": 0, "b": 4, "x": 8, "y": 16, "buf": 24}
	for name, off := range want {
		if offs[name] != off {
			t.Errorf("%s at offset %d, want %d", name, offs[name], off)
		}
	}
	if fd.FrameSize != 40 {
		t.Errorf("frame size %d, want 40", fd.FrameSize)
	}
}

func TestBranchAndSwitchNumbering(t *testing.T) {
	sp := analyze(t, `
int f(int a) {
	if (a) a--;
	while (a) a--;
	do a++; while (a < 3);
	for (; a < 10; a++) { }
	switch (a) { case 1: return 1; default: return 0; }
}`)
	if len(sp.BranchSites) != 4 {
		t.Errorf("%d branch sites, want 4", len(sp.BranchSites))
	}
	for i, bs := range sp.BranchSites {
		if bs.ID != i {
			t.Errorf("branch site %d has ID %d", i, bs.ID)
		}
	}
	if len(sp.SwitchSites) != 1 {
		t.Errorf("%d switch sites, want 1", len(sp.SwitchSites))
	}
}

func TestAddressTakenCensus(t *testing.T) {
	sp := analyze(t, `
int a(void) { return 1; }
int b(void) { return 2; }
int c(void) { return 3; }
int (*table[2])(void) = {a, b};
int main(void) {
	int (*f)(void) = &a;
	f = b;
	return f() + table[0]() + c();
}`)
	counts := map[string]int{}
	for _, o := range sp.AddrTaken {
		counts[o.Name] = o.AddrTakenCount
	}
	// a: initializer + &a = 2; b: initializer + assignment = 2; c: only
	// called directly, never taken.
	if counts["a"] != 2 {
		t.Errorf("a address-taken %d, want 2", counts["a"])
	}
	if counts["b"] != 2 {
		t.Errorf("b address-taken %d, want 2", counts["b"])
	}
	if _, ok := counts["c"]; ok {
		t.Error("c should not be address-taken")
	}
	// The two pointer calls are indirect sites; the c() call is direct.
	indirect := 0
	for _, s := range sp.CallSites {
		if s.Indirect() {
			indirect++
		}
	}
	if indirect != 2 {
		t.Errorf("%d indirect sites, want 2", indirect)
	}
}

func TestBuiltinResolution(t *testing.T) {
	sp := analyze(t, `
int main(void) {
	printf("%d\n", abs(-4));
	return (int)strlen("xy");
}`)
	if !sp.BuiltinsUsed["printf"] || !sp.BuiltinsUsed["strlen"] || !sp.BuiltinsUsed["abs"] {
		t.Errorf("builtins not recorded: %v", sp.BuiltinsUsed)
	}
	// Builtin calls are not numbered call sites.
	if len(sp.CallSites) != 0 {
		t.Errorf("builtin calls numbered as sites: %+v", sp.CallSites)
	}
}

func TestSemanticErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undeclared", `int main(void) { return zzz; }`, "undeclared"},
		{"redefined", `int x; double x; int main(void) { return 0; }`, "redefinition"},
		{"bad call arity", `int f(int a) { return a; } int main(void) { return f(1, 2); }`, "arguments"},
		{"bad member", `struct s { int a; }; int main(void) { struct s v; return v.b; }`, "no field"},
		{"arrow on value", `struct s { int a; }; int main(void) { struct s v; return v->a; }`, "non-struct-pointer"},
		{"deref int", `int main(void) { int x = 3; return *x; }`, "dereference"},
		{"call non-function", `int main(void) { int x = 1; return x(); }`, "non-function"},
		{"void return value", `void f(void) { return 3; } int main(void) { return 0; }`, "void function"},
		{"goto nowhere", `int main(void) { goto nowhere; }`, "label"},
		{"duplicate case", `int main(void) { switch (1) { case 1: case 1: return 0; } return 1; }`, "duplicate case"},
		{"struct by value", `struct s { int a; }; int f(struct s v) { return v.a; } int main(void){ return 0; }`, "struct"},
		{"assign to array", `int main(void) { int a[3]; int b[3]; a = b; return 0; }`, "array"},
		{"undefined function", `int g(int); int main(void) { return g(1); }`, "undefined function"},
		{"bad condition", `struct s { int a; }; struct s v; int main(void) { if (v) return 1; return 0; }`, "scalar"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := analyzeErr(t, tc.src)
			if err == nil {
				t.Fatal("expected error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestStringInterning(t *testing.T) {
	sp := analyze(t, `
char *a = "dup";
char *b = "dup";
char *c = "other";
int main(void) { return 0; }`)
	if len(sp.Strings) != 2 {
		t.Errorf("%d interned strings, want 2 (dedup)", len(sp.Strings))
	}
}

func TestScopesAndShadowing(t *testing.T) {
	sp := analyze(t, `
int x = 1;
int main(void) {
	int x = 2;
	{
		int x = 3;
		x++;
	}
	return x;
}`)
	fd := sp.Main
	if len(fd.Locals) != 2 {
		t.Fatalf("%d locals, want 2", len(fd.Locals))
	}
	if fd.Locals[0].FrameOffset == fd.Locals[1].FrameOffset {
		t.Error("shadowed locals share storage")
	}
}

func TestExprTypesAnnotated(t *testing.T) {
	sp := analyze(t, `
int main(void) {
	double d = 1.5;
	int i = 2;
	long l;
	l = i + i;
	d = d + i;
	return (int)(d + l);
}`)
	// Every expression in main should carry a type after analysis.
	missing := 0
	cast.WalkFuncExprs(sp.Main, func(e cast.Expr) bool {
		if e.Type() == nil {
			missing++
		}
		return true
	})
	if missing > 0 {
		t.Errorf("%d expressions missing types", missing)
	}
}

func TestUsualArithInExpr(t *testing.T) {
	sp := analyze(t, `int main(void) { double d = 1.0; int i = 1; d = d * i; return 0; }`)
	var mulType *ctypes.Type
	cast.WalkFuncExprs(sp.Main, func(e cast.Expr) bool {
		if b, ok := e.(*cast.Binary); ok && b.Op == cast.Mul {
			mulType = b.Type()
		}
		return true
	})
	if mulType == nil || mulType.Kind != ctypes.Double {
		t.Errorf("double*int type = %v, want double", mulType)
	}
}
