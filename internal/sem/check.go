package sem

import (
	"staticest/internal/cast"
	"staticest/internal/ctoken"
	"staticest/internal/ctypes"
)

// decay converts array types to pointers and function types to function
// pointers, as C does in most operand contexts.
func decay(t *ctypes.Type) *ctypes.Type {
	switch t.Kind {
	case ctypes.Array:
		return ctypes.PointerTo(t.Elem)
	case ctypes.Func:
		return ctypes.PointerTo(t)
	}
	return t
}

type exprSetter interface{ SetType(*ctypes.Type) }

func (c *checker) setType(e cast.Expr, t *ctypes.Type) *ctypes.Type {
	if s, ok := e.(exprSetter); ok {
		s.SetType(t)
	}
	return t
}

// checkExpr type-checks an expression tree, annotates every node with its
// type, interns string literals, numbers call sites, and counts
// address-taken function references. It returns the (undecayed) type, or
// nil after reporting an error.
func (c *checker) checkExpr(e cast.Expr) *ctypes.Type {
	switch x := e.(type) {
	case nil:
		return nil
	case *cast.IntLit:
		switch {
		case x.Unsigned && (x.Long || x.Val > 1<<32-1):
			return c.setType(x, ctypes.ULongType)
		case x.Unsigned:
			return c.setType(x, ctypes.UIntType)
		case x.Long || (!x.IsChar && x.Val > 1<<31-1):
			return c.setType(x, ctypes.LongType)
		default:
			return c.setType(x, ctypes.IntType)
		}
	case *cast.FloatLit:
		return c.setType(x, ctypes.DoubleType)
	case *cast.StrLit:
		key := string(x.Val)
		idx, ok := c.strIndex[key]
		if !ok {
			idx = len(c.prog.Strings)
			c.strIndex[key] = idx
			c.prog.Strings = append(c.prog.Strings, x.Val)
		}
		x.DataIndex = idx
		return c.setType(x, ctypes.ArrayOf(ctypes.CharType, int64(len(x.Val))+1))
	case *cast.Ident:
		obj := c.curScope.lookup(x.Name)
		if obj == nil {
			if bt, ok := Builtins[x.Name]; ok {
				obj = &cast.Object{
					Name: x.Name, Kind: cast.ObjFunc, Type: bt,
					Global: true, FuncIndex: -1, Builtin: true,
				}
				c.globals.declare(obj)
				c.prog.BuiltinsUsed[x.Name] = true
			} else {
				c.errorf(x.P, "undeclared identifier %q", x.Name)
				return nil
			}
		}
		if obj.Builtin {
			c.prog.BuiltinsUsed[x.Name] = true
		}
		x.Obj = obj
		return c.setType(x, obj.Type)
	case *cast.Unary:
		return c.checkUnary(x)
	case *cast.Postfix:
		t := c.checkExpr(x.X)
		if t == nil {
			return nil
		}
		if !decay(t).IsScalar() {
			c.errorf(x.P, "cannot increment/decrement value of type %s", t)
			return nil
		}
		c.requireLvalue(x.X)
		return c.setType(x, t)
	case *cast.Binary:
		return c.checkBinary(x)
	case *cast.Logical:
		lt := c.checkExpr(x.X)
		rt := c.checkExpr(x.Y)
		c.noteFunRef(x.X)
		c.noteFunRef(x.Y)
		for _, p := range []struct {
			t *ctypes.Type
			e cast.Expr
		}{{lt, x.X}, {rt, x.Y}} {
			if p.t != nil && !decay(p.t).IsScalar() {
				c.errorf(p.e.Pos(), "operand of logical operator has non-scalar type %s", p.t)
			}
		}
		return c.setType(x, ctypes.IntType)
	case *cast.Cond:
		ct := c.checkExpr(x.C)
		if ct != nil && !decay(ct).IsScalar() {
			c.errorf(x.C.Pos(), "ternary condition has non-scalar type %s", ct)
		}
		tt := c.checkExpr(x.Then)
		ft := c.checkExpr(x.Else)
		c.noteFunRef(x.Then)
		c.noteFunRef(x.Else)
		if tt == nil || ft == nil {
			return nil
		}
		tt, ft = decay(tt), decay(ft)
		switch {
		case tt.IsArith() && ft.IsArith():
			return c.setType(x, ctypes.UsualArith(tt, ft))
		case tt.Kind == ctypes.Ptr && ft.Kind == ctypes.Ptr:
			if tt.IsVoidPtr() {
				return c.setType(x, ft)
			}
			return c.setType(x, tt)
		case tt.Kind == ctypes.Ptr && ft.IsInteger():
			return c.setType(x, tt) // p : 0
		case ft.Kind == ctypes.Ptr && tt.IsInteger():
			return c.setType(x, ft)
		case tt.Kind == ctypes.Void || ft.Kind == ctypes.Void:
			return c.setType(x, ctypes.VoidType)
		default:
			c.errorf(x.P, "incompatible ternary arms: %s vs %s", tt, ft)
			return nil
		}
	case *cast.Assign:
		lt := c.checkExpr(x.L)
		rt := c.checkExpr(x.R)
		c.noteFunRef(x.R)
		if lt == nil || rt == nil {
			return nil
		}
		c.requireLvalue(x.L)
		if lt.Kind == ctypes.Array {
			c.errorf(x.P, "cannot assign to array value")
			return nil
		}
		if x.Op == cast.Plain {
			c.checkAssignable(lt, rt, x.R, x.P)
		} else {
			op := x.Op.BinOp()
			dl, dr := decay(lt), decay(rt)
			if dl.Kind == ctypes.Ptr {
				if op != cast.Add && op != cast.Sub || !dr.IsInteger() {
					c.errorf(x.P, "invalid pointer compound assignment %s", x.Op)
				}
			} else if !dl.IsArith() || !dr.IsArith() {
				c.errorf(x.P, "invalid operands to %s: %s and %s", x.Op, lt, rt)
			} else if (op == cast.Rem || op == cast.And || op == cast.Or ||
				op == cast.Xor || op == cast.Shl || op == cast.Shr) &&
				(!dl.IsInteger() || !dr.IsInteger()) {
				c.errorf(x.P, "operator %s requires integer operands", op)
			}
		}
		return c.setType(x, lt)
	case *cast.Call:
		return c.checkCall(x)
	case *cast.Index:
		xt := c.checkExpr(x.X)
		it := c.checkExpr(x.I)
		if xt == nil || it == nil {
			return nil
		}
		base := decay(xt)
		if base.Kind != ctypes.Ptr || base.Elem.Kind == ctypes.Void || base.Elem.Kind == ctypes.Func {
			c.errorf(x.P, "cannot index value of type %s", xt)
			return nil
		}
		if !decay(it).IsInteger() {
			c.errorf(x.I.Pos(), "array index must be an integer, got %s", it)
		}
		return c.setType(x, base.Elem)
	case *cast.Member:
		xt := c.checkExpr(x.X)
		if xt == nil {
			return nil
		}
		var st *ctypes.Type
		if x.Arrow {
			d := decay(xt)
			if d.Kind != ctypes.Ptr || d.Elem.Kind != ctypes.Struct {
				c.errorf(x.P, "-> applied to non-struct-pointer type %s", xt)
				return nil
			}
			st = d.Elem
		} else {
			if xt.Kind != ctypes.Struct {
				c.errorf(x.P, ". applied to non-struct type %s", xt)
				return nil
			}
			st = xt
		}
		if !st.Info.Complete {
			c.errorf(x.P, "use of incomplete struct %s", st)
			return nil
		}
		f := st.Info.FieldByName(x.Name)
		if f == nil {
			c.errorf(x.P, "struct %s has no field %q", st, x.Name)
			return nil
		}
		x.Field = f
		return c.setType(x, f.Type)
	case *cast.SizeofExpr:
		t := c.checkExpr(x.X)
		if t != nil && t.Size() == 0 {
			c.errorf(x.P, "sizeof applied to incomplete type %s", t)
		}
		return c.setType(x, ctypes.LongType)
	case *cast.SizeofType:
		if x.Of.Size() == 0 {
			c.errorf(x.P, "sizeof applied to incomplete type %s", x.Of)
		}
		return c.setType(x, ctypes.LongType)
	case *cast.CastExpr:
		t := c.checkExpr(x.X)
		c.noteFunRef(x.X)
		if t != nil {
			src := decay(t)
			dst := x.To
			ok := dst.Kind == ctypes.Void ||
				(src.IsScalar() && dst.IsScalar())
			if !ok {
				c.errorf(x.P, "invalid cast from %s to %s", t, x.To)
			}
			if dst.Kind == ctypes.Ptr && src.IsFloat() ||
				src.Kind == ctypes.Ptr && dst.IsFloat() {
				c.errorf(x.P, "cannot convert between pointer and floating type")
			}
		}
		return c.setType(x, x.To)
	case *cast.Comma:
		c.checkExpr(x.X)
		t := c.checkExpr(x.Y)
		if t == nil {
			return nil
		}
		return c.setType(x, t)
	}
	c.errorf(e.Pos(), "unhandled expression %T", e)
	return nil
}

func (c *checker) checkUnary(x *cast.Unary) *ctypes.Type {
	t := c.checkExpr(x.X)
	if t == nil {
		return nil
	}
	switch x.Op {
	case cast.Neg:
		if !decay(t).IsArith() {
			c.errorf(x.P, "unary - on non-arithmetic type %s", t)
			return nil
		}
		if t.IsInteger() {
			return c.setType(x, ctypes.Promote(t))
		}
		return c.setType(x, t)
	case cast.BitNot:
		if !decay(t).IsInteger() {
			c.errorf(x.P, "~ on non-integer type %s", t)
			return nil
		}
		return c.setType(x, ctypes.Promote(t))
	case cast.LogNot:
		if !decay(t).IsScalar() {
			c.errorf(x.P, "! on non-scalar type %s", t)
			return nil
		}
		return c.setType(x, ctypes.IntType)
	case cast.Deref:
		d := decay(t)
		if d.Kind != ctypes.Ptr {
			c.errorf(x.P, "cannot dereference non-pointer type %s", t)
			return nil
		}
		if d.Elem.Kind == ctypes.Void {
			c.errorf(x.P, "cannot dereference void*")
			return nil
		}
		return c.setType(x, d.Elem)
	case cast.Addr:
		if id, ok := x.X.(*cast.Ident); ok && id.Obj != nil && id.Obj.Kind == cast.ObjFunc {
			id.Obj.AddrTakenCount++
			c.noteAddrTaken(id.Obj)
			return c.setType(x, ctypes.PointerTo(id.Obj.Type))
		}
		c.requireLvalue(x.X)
		return c.setType(x, ctypes.PointerTo(t))
	case cast.PreInc, cast.PreDec:
		if !decay(t).IsScalar() {
			c.errorf(x.P, "cannot increment/decrement value of type %s", t)
			return nil
		}
		c.requireLvalue(x.X)
		return c.setType(x, t)
	}
	c.errorf(x.P, "unhandled unary operator %s", x.Op)
	return nil
}

func (c *checker) checkBinary(x *cast.Binary) *ctypes.Type {
	lt := c.checkExpr(x.X)
	rt := c.checkExpr(x.Y)
	c.noteFunRef(x.X)
	c.noteFunRef(x.Y)
	if lt == nil || rt == nil {
		return nil
	}
	l, r := decay(lt), decay(rt)
	switch x.Op {
	case cast.Add:
		switch {
		case l.IsArith() && r.IsArith():
			return c.setType(x, ctypes.UsualArith(l, r))
		case l.Kind == ctypes.Ptr && r.IsInteger():
			return c.setType(x, l)
		case r.Kind == ctypes.Ptr && l.IsInteger():
			return c.setType(x, r)
		}
	case cast.Sub:
		switch {
		case l.IsArith() && r.IsArith():
			return c.setType(x, ctypes.UsualArith(l, r))
		case l.Kind == ctypes.Ptr && r.IsInteger():
			return c.setType(x, l)
		case l.Kind == ctypes.Ptr && r.Kind == ctypes.Ptr:
			return c.setType(x, ctypes.LongType)
		}
	case cast.Mul, cast.Div:
		if l.IsArith() && r.IsArith() {
			return c.setType(x, ctypes.UsualArith(l, r))
		}
	case cast.Rem, cast.And, cast.Or, cast.Xor:
		if l.IsInteger() && r.IsInteger() {
			return c.setType(x, ctypes.UsualArith(l, r))
		}
	case cast.Shl, cast.Shr:
		if l.IsInteger() && r.IsInteger() {
			return c.setType(x, ctypes.Promote(l))
		}
	case cast.Lt, cast.Gt, cast.Le, cast.Ge, cast.Eq, cast.Ne:
		ok := (l.IsArith() && r.IsArith()) ||
			(l.Kind == ctypes.Ptr && r.Kind == ctypes.Ptr) ||
			(l.Kind == ctypes.Ptr && r.IsInteger()) ||
			(r.Kind == ctypes.Ptr && l.IsInteger())
		if ok {
			return c.setType(x, ctypes.IntType)
		}
	}
	c.errorf(x.P, "invalid operands to %s: %s and %s", x.Op, lt, rt)
	return nil
}

func (c *checker) checkCall(x *cast.Call) *ctypes.Type {
	// Direct call to a named function does not count as taking its
	// address; anything else referencing a function name does.
	var ft *ctypes.Type
	if id, ok := x.Fun.(*cast.Ident); ok {
		ft = c.checkExpr(id)
	} else {
		ft = c.checkExpr(x.Fun)
	}
	if ft == nil {
		return nil
	}
	d := decay(ft)
	if d.Kind != ctypes.Ptr || d.Elem.Kind != ctypes.Func {
		c.errorf(x.P, "called object has non-function type %s", ft)
		return nil
	}
	sig := d.Elem.Sig
	if !sig.Unknown {
		if len(x.Args) < len(sig.Params) ||
			(len(x.Args) > len(sig.Params) && !sig.Variadic) {
			c.errorf(x.P, "call has %d arguments, want %d", len(x.Args), len(sig.Params))
		}
	}
	for i, a := range x.Args {
		at := c.checkExpr(a)
		c.noteFunRef(a)
		if at == nil {
			continue
		}
		if at.Kind == ctypes.Struct {
			c.errorf(a.Pos(), "passing struct by value (unsupported)")
		}
		if !sig.Unknown && i < len(sig.Params) {
			c.checkAssignable(sig.Params[i], at, a, a.Pos())
		}
	}

	// Number the site: direct calls to defined functions and all
	// indirect calls participate in the call graph; builtin calls do not.
	callee := x.Callee()
	switch {
	case callee != nil && callee.Builtin:
		x.SiteID = -1
	case callee != nil && callee.FuncIndex < 0 && c.prog.FuncByName[callee.Name] == nil:
		// Declared extern but never defined and not a builtin.
		c.errorf(x.P, "call to undefined function %q", callee.Name)
		x.SiteID = -1
	default:
		if callee != nil {
			// Re-point at the defining object if the parse bound a
			// prototype object.
			if fd := c.prog.FuncByName[callee.Name]; fd != nil {
				callee = fd.Obj
				if id, ok := x.Fun.(*cast.Ident); ok {
					id.Obj = callee
				}
			}
		}
		if c.cur == nil {
			c.errorf(x.P, "call in global initializer")
			return nil
		}
		site := &CallSite{ID: c.callID, Call: x, Caller: c.cur, Callee: callee}
		x.SiteID = c.callID
		c.callID++
		c.prog.CallSites = append(c.prog.CallSites, site)
		c.prog.CallSitesOf[c.cur] = append(c.prog.CallSitesOf[c.cur], site)
	}
	return c.setType(x, sig.Ret)
}

// noteFunRef records an implicit function-to-pointer decay: a function
// name appearing anywhere other than as the callee of a direct call.
func (c *checker) noteFunRef(e cast.Expr) {
	if id, ok := e.(*cast.Ident); ok && id.Obj != nil && id.Obj.Kind == cast.ObjFunc {
		id.Obj.AddrTakenCount++
		c.noteAddrTaken(id.Obj)
	}
}

func (c *checker) noteAddrTaken(o *cast.Object) {
	// Record against the defining object when one exists.
	if fd := c.prog.FuncByName[o.Name]; fd != nil && fd.Obj != o {
		fd.Obj.AddrTakenCount++
		o = fd.Obj
	}
	c.addrTaken[o] = true
}

func (c *checker) requireLvalue(e cast.Expr) {
	switch x := e.(type) {
	case *cast.Ident:
		if x.Obj != nil && x.Obj.Kind == cast.ObjFunc {
			c.errorf(x.P, "function %q is not an lvalue", x.Name)
		}
	case *cast.Unary:
		if x.Op != cast.Deref {
			c.errorf(e.Pos(), "expression is not an lvalue")
		}
	case *cast.Index, *cast.Member:
	default:
		c.errorf(e.Pos(), "expression is not an lvalue")
	}
}

// checkAssignable reports an error when a value of type rt (possibly the
// literal expression r) cannot be assigned to lt.
func (c *checker) checkAssignable(lt, rt *ctypes.Type, r cast.Expr, pos ctoken.Pos) {
	l, rd := decay(lt), decay(rt)
	switch {
	case l.IsArith() && rd.IsArith():
		return
	case l.Kind == ctypes.Ptr && rd.Kind == ctypes.Ptr:
		// void* converts freely; otherwise require matching pointee or
		// accept silently for char*/byte-ish aliasing (the subset is
		// permissive here, as C compilers are with warnings).
		return
	case l.Kind == ctypes.Ptr && rd.IsInteger():
		if lit, ok := r.(*cast.IntLit); ok && lit.Val == 0 {
			return // NULL
		}
		return // permissive: integer to pointer (used by hashing code)
	case l.IsInteger() && rd.Kind == ctypes.Ptr:
		return // permissive
	case l.Kind == ctypes.Struct && rd.Kind == ctypes.Struct:
		if ctypes.Equal(l, rd) {
			return
		}
	}
	c.errorf(pos, "cannot assign value of type %s to %s", rt, lt)
}
