// Package sem performs semantic analysis on a parsed translation unit:
// name resolution, type checking, stack-frame layout, string-literal
// interning, and the numbering of branch and call sites that the profiler
// and estimators key on. Its output, Program, is the shared currency of
// the CFG builder, interpreter, and estimators.
package sem

import (
	"fmt"
	"sort"

	"staticest/internal/cast"
	"staticest/internal/ctoken"
	"staticest/internal/ctypes"
)

// Error is a semantic error with a source position.
type Error struct {
	Pos ctoken.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// ErrorList collects multiple semantic errors.
type ErrorList []*Error

func (l ErrorList) Error() string {
	switch len(l) {
	case 0:
		return "no errors"
	case 1:
		return l[0].Error()
	default:
		return fmt.Sprintf("%s (and %d more errors)", l[0], len(l)-1)
	}
}

// CallSite describes one numbered call site.
type CallSite struct {
	ID     int
	Call   *cast.Call
	Caller *cast.FuncDecl
	// Callee is the target function object for direct calls to defined
	// functions; nil for indirect calls (through a pointer).
	Callee *cast.Object
}

// Indirect reports whether the site calls through a pointer.
func (s *CallSite) Indirect() bool { return s.Callee == nil }

// BranchSite describes one numbered two-way branch (the condition of an
// if, while, do-while, or for statement).
type BranchSite struct {
	ID   int
	Stmt cast.BranchStmt
	Func *cast.FuncDecl
}

// SwitchSite describes one numbered switch statement.
type SwitchSite struct {
	ID   int
	Stmt *cast.Switch
	Func *cast.FuncDecl
}

// Program is a fully analyzed translation unit.
type Program struct {
	File       *cast.File
	Funcs      []*cast.FuncDecl
	FuncByName map[string]*cast.FuncDecl
	Main       *cast.FuncDecl

	Globals []*cast.VarDecl
	Strings [][]byte // interned string literals, indexed by StrLit.DataIndex

	CallSites    []*CallSite
	BranchSites  []*BranchSite
	SwitchSites  []*SwitchSite
	CallSitesOf  map[*cast.FuncDecl][]*CallSite
	BranchesOf   map[*cast.FuncDecl][]*BranchSite
	SwitchesOf   map[*cast.FuncDecl][]*SwitchSite
	AddrTaken    []*cast.Object // function objects with AddrTakenCount > 0
	BuiltinsUsed map[string]bool
}

// FuncIndex returns the index of fd in Funcs, or -1.
func (p *Program) FuncIndex(fd *cast.FuncDecl) int {
	if fd == nil {
		return -1
	}
	return fd.Obj.FuncIndex
}

type scope struct {
	parent *scope
	names  map[string]*cast.Object
}

func (s *scope) lookup(name string) *cast.Object {
	for sc := s; sc != nil; sc = sc.parent {
		if o, ok := sc.names[name]; ok {
			return o
		}
	}
	return nil
}

func (s *scope) declare(o *cast.Object) *cast.Object {
	if prev, ok := s.names[o.Name]; ok {
		return prev
	}
	s.names[o.Name] = o
	return nil
}

type checker struct {
	prog    *Program
	globals *scope
	errs    ErrorList

	cur       *cast.FuncDecl
	curScope  *scope
	frameOff  int64
	strIndex  map[string]int
	callID    int
	branchID  int
	switchID  int
	funcObjs  map[string]*cast.Object
	addrTaken map[*cast.Object]bool
}

func (c *checker) errorf(pos ctoken.Pos, format string, args ...any) {
	if len(c.errs) < 50 {
		c.errs = append(c.errs, &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

// Analyze performs semantic analysis and returns the Program.
func Analyze(file *cast.File) (*Program, error) {
	c := &checker{
		prog: &Program{
			File:         file,
			FuncByName:   make(map[string]*cast.FuncDecl),
			CallSitesOf:  make(map[*cast.FuncDecl][]*CallSite),
			BranchesOf:   make(map[*cast.FuncDecl][]*BranchSite),
			SwitchesOf:   make(map[*cast.FuncDecl][]*SwitchSite),
			BuiltinsUsed: make(map[string]bool),
		},
		globals:   &scope{names: make(map[string]*cast.Object)},
		strIndex:  make(map[string]int),
		funcObjs:  make(map[string]*cast.Object),
		addrTaken: make(map[*cast.Object]bool),
	}

	// Pass 1: declare all functions and globals at file scope.
	for i, fd := range file.Funcs {
		fd.Obj.FuncIndex = i
		if prev := c.globals.declare(fd.Obj); prev != nil {
			c.errorf(fd.P, "redefinition of %q", fd.Obj.Name)
		}
		c.funcObjs[fd.Obj.Name] = fd.Obj
		c.prog.FuncByName[fd.Obj.Name] = fd
		if fd.Obj.Name == "main" {
			c.prog.Main = fd
		}
		if fd.Obj.Type.Sig.Ret.Kind == ctypes.Struct {
			c.errorf(fd.P, "function %q returns a struct by value (unsupported)", fd.Obj.Name)
		}
	}
	c.prog.Funcs = file.Funcs
	for _, ext := range file.Externs {
		if _, defined := c.prog.FuncByName[ext.Name]; defined {
			continue
		}
		if bt, ok := Builtins[ext.Name]; ok {
			ext.Builtin = true
			ext.Type = bt
		}
		if c.globals.lookup(ext.Name) == nil {
			c.globals.declare(ext)
		}
	}
	gi := 0
	for _, g := range file.Globals {
		if g.Obj.Type.Kind == ctypes.Void || (g.Obj.Type.Kind == ctypes.Struct && g.Obj.Type.Size() == 0) {
			c.errorf(g.P, "global %q has incomplete type %s", g.Obj.Name, g.Obj.Type)
		}
		if g.Obj.Type.Kind == ctypes.Array && g.Obj.Type.Len == 0 {
			// Size from initializer: `int a[] = {...}`.
			if li, ok := g.Init.(*cast.ListInit); ok {
				g.Obj.Type = ctypes.ArrayOf(g.Obj.Type.Elem, int64(len(li.Elems)))
			} else if si, ok := g.Init.(*cast.ExprInit); ok {
				if s, ok := si.X.(*cast.StrLit); ok {
					g.Obj.Type = ctypes.ArrayOf(g.Obj.Type.Elem, int64(len(s.Val))+1)
				}
			}
			if g.Obj.Type.Len == 0 {
				c.errorf(g.P, "global array %q has no size", g.Obj.Name)
			}
		}
		if prev := c.globals.declare(g.Obj); prev != nil {
			c.errorf(g.P, "redefinition of %q", g.Obj.Name)
			continue
		}
		g.Obj.GlobalIndex = gi
		gi++
		c.prog.Globals = append(c.prog.Globals, g)
	}

	// Pass 2: check global initializers (constant-ish expressions; the
	// interpreter evaluates them at startup).
	for _, g := range c.prog.Globals {
		c.cur = nil
		c.curScope = c.globals
		c.checkInit(g.Init, g.Obj.Type, g.P)
	}

	// Pass 3: check function bodies.
	for _, fd := range file.Funcs {
		c.checkFunc(fd)
	}

	// Collect address-taken functions, sorted by name for determinism.
	for o := range c.addrTaken {
		c.prog.AddrTaken = append(c.prog.AddrTaken, o)
	}
	sort.Slice(c.prog.AddrTaken, func(i, j int) bool {
		return c.prog.AddrTaken[i].Name < c.prog.AddrTaken[j].Name
	})

	if len(c.errs) > 0 {
		return nil, c.errs
	}
	return c.prog, nil
}

func (c *checker) checkFunc(fd *cast.FuncDecl) {
	c.cur = fd
	c.frameOff = 0
	fnScope := &scope{parent: c.globals, names: make(map[string]*cast.Object)}
	c.curScope = fnScope
	for _, p := range fd.Params {
		if p.Type.Kind == ctypes.Struct {
			c.errorf(p.Decl, "parameter %q is a struct by value (unsupported)", p.Name)
		}
		c.allocLocal(p)
		if prev := fnScope.declare(p); prev != nil {
			c.errorf(p.Decl, "duplicate parameter %q", p.Name)
		}
	}

	// Collect labels first so forward gotos resolve.
	labels := map[string]bool{}
	cast.WalkStmt(fd.Body, func(s cast.Stmt) bool {
		if l, ok := s.(*cast.Labeled); ok {
			if labels[l.Label] {
				c.errorf(l.P, "duplicate label %q", l.Label)
			}
			labels[l.Label] = true
			fd.Labels = append(fd.Labels, l.Label)
		}
		return true
	})

	c.checkStmt(fd.Body, fnScope, labels)
	fd.FrameSize = alignUp(c.frameOff, 8)
}

func (c *checker) allocLocal(o *cast.Object) {
	size := o.Type.Size()
	if size <= 0 {
		c.errorf(o.Decl, "%s %q has incomplete type %s", o.Kind, o.Name, o.Type)
		size = 8
	}
	align := o.Type.Align()
	c.frameOff = alignUp(c.frameOff, align)
	o.FrameOffset = c.frameOff
	c.frameOff += size
	if o.Kind != cast.ObjParam {
		c.cur.Locals = append(c.cur.Locals, o)
	}
}

func alignUp(n, a int64) int64 { return (n + a - 1) / a * a }

func (c *checker) checkStmt(s cast.Stmt, sc *scope, labels map[string]bool) {
	if s == nil {
		return
	}
	c.curScope = sc
	switch x := s.(type) {
	case *cast.Empty:
	case *cast.ExprStmt:
		c.checkExpr(x.X)
	case *cast.DeclStmt:
		for _, d := range x.Decls {
			if d.Obj.Type.Kind == ctypes.Array && d.Obj.Type.Len == 0 {
				if li, ok := d.Init.(*cast.ListInit); ok {
					d.Obj.Type = ctypes.ArrayOf(d.Obj.Type.Elem, int64(len(li.Elems)))
				} else if si, ok := d.Init.(*cast.ExprInit); ok {
					if str, ok := si.X.(*cast.StrLit); ok {
						d.Obj.Type = ctypes.ArrayOf(d.Obj.Type.Elem, int64(len(str.Val))+1)
					}
				}
				if d.Obj.Type.Len == 0 {
					c.errorf(d.P, "local array %q has no size", d.Obj.Name)
				}
			}
			c.allocLocal(d.Obj)
			if prev := sc.declare(d.Obj); prev != nil {
				c.errorf(d.P, "redefinition of %q in this scope", d.Obj.Name)
			}
			c.checkInit(d.Init, d.Obj.Type, d.P)
		}
	case *cast.Block:
		inner := &scope{parent: sc, names: make(map[string]*cast.Object)}
		for _, st := range x.Stmts {
			c.checkStmt(st, inner, labels)
		}
	case *cast.If:
		c.checkCond(x.Cond)
		x.SetBranchID(c.branchID)
		c.addBranch(x)
		c.checkStmt(x.Then, sc, labels)
		c.checkStmt(x.Else, sc, labels)
	case *cast.While:
		c.checkCond(x.Cond)
		x.SetBranchID(c.branchID)
		c.addBranch(x)
		c.checkStmt(x.Body, sc, labels)
	case *cast.DoWhile:
		c.checkStmt(x.Body, sc, labels)
		c.curScope = sc
		c.checkCond(x.Cond)
		x.SetBranchID(c.branchID)
		c.addBranch(x)
	case *cast.For:
		if x.Init != nil {
			c.checkExpr(x.Init)
		}
		if x.Cond != nil {
			c.checkCond(x.Cond)
			x.SetBranchID(c.branchID)
			c.addBranch(x)
		}
		if x.Post != nil {
			c.checkExpr(x.Post)
		}
		c.checkStmt(x.Body, sc, labels)
	case *cast.Switch:
		t := c.checkExpr(x.Tag)
		if t != nil && !t.IsInteger() {
			c.errorf(x.P, "switch tag must have integer type, got %s", t)
		}
		x.Branch = c.switchID
		c.prog.SwitchSites = append(c.prog.SwitchSites, &SwitchSite{ID: c.switchID, Stmt: x, Func: c.cur})
		c.prog.SwitchesOf[c.cur] = append(c.prog.SwitchesOf[c.cur], c.prog.SwitchSites[len(c.prog.SwitchSites)-1])
		c.switchID++
		seen := map[int64]bool{}
		sawDefault := false
		for _, cs := range x.Cases {
			for _, v := range cs.Vals {
				if seen[v] {
					c.errorf(cs.Pos, "duplicate case value %d", v)
				}
				seen[v] = true
			}
			if cs.IsDefault {
				if sawDefault {
					c.errorf(cs.Pos, "duplicate default case")
				}
				sawDefault = true
			}
			inner := &scope{parent: sc, names: make(map[string]*cast.Object)}
			for _, st := range cs.Stmts {
				c.checkStmt(st, inner, labels)
			}
		}
	case *cast.Break, *cast.Continue:
		// Context validity is enforced structurally by the CFG builder.
	case *cast.Return:
		if x.X != nil {
			t := c.checkExpr(x.X)
			ret := c.cur.Obj.Type.Sig.Ret
			if ret.Kind == ctypes.Void && t != nil {
				c.errorf(x.P, "void function %q returns a value", c.cur.Name())
			}
		}
	case *cast.Goto:
		if !labels[x.Label] {
			c.errorf(x.P, "goto to undeclared label %q", x.Label)
		}
	case *cast.Labeled:
		c.checkStmt(x.Stmt, sc, labels)
	default:
		c.errorf(s.Pos(), "unhandled statement %T", s)
	}
}

func (c *checker) addBranch(bs cast.BranchStmt) {
	site := &BranchSite{ID: c.branchID, Stmt: bs, Func: c.cur}
	c.prog.BranchSites = append(c.prog.BranchSites, site)
	c.prog.BranchesOf[c.cur] = append(c.prog.BranchesOf[c.cur], site)
	c.branchID++
}

func (c *checker) checkCond(e cast.Expr) {
	t := c.checkExpr(e)
	if t != nil && !decay(t).IsScalar() {
		c.errorf(e.Pos(), "condition must have scalar type, got %s", t)
	}
}

func (c *checker) checkInit(in cast.Init, t *ctypes.Type, pos ctoken.Pos) {
	switch v := in.(type) {
	case nil:
	case *cast.ExprInit:
		et := c.checkExpr(v.X)
		c.noteFunRef(v.X)
		if et == nil {
			return
		}
		if t.Kind == ctypes.Array && t.Elem.Kind == ctypes.Char {
			if _, ok := v.X.(*cast.StrLit); ok {
				return // char array initialized by string literal
			}
		}
		c.checkAssignable(t, et, v.X, pos)
	case *cast.ListInit:
		switch t.Kind {
		case ctypes.Array:
			if int64(len(v.Elems)) > t.Len {
				c.errorf(pos, "too many initializers for %s", t)
			}
			for _, el := range v.Elems {
				c.checkInit(el, t.Elem, el.Pos())
			}
		case ctypes.Struct:
			if len(v.Elems) > len(t.Info.Fields) {
				c.errorf(pos, "too many initializers for %s", t)
			}
			for i, el := range v.Elems {
				if i < len(t.Info.Fields) {
					c.checkInit(el, t.Info.Fields[i].Type, el.Pos())
				}
			}
		default:
			if len(v.Elems) == 1 {
				c.checkInit(v.Elems[0], t, pos)
			} else {
				c.errorf(pos, "brace initializer for scalar %s", t)
			}
		}
	}
}
