package sem

import "staticest/internal/ctypes"

// Builtin names the library functions the interpreter provides. Semantic
// analysis resolves calls to these names when the program does not define
// them; the paper's heuristics also consult this set (e.g. calls to
// abort/exit mark an arm as unlikely).
var Builtins = map[string]*ctypes.Type{}

func sig(ret *ctypes.Type, params ...*ctypes.Type) *ctypes.Type {
	return ctypes.FuncOf(&ctypes.Signature{Ret: ret, Params: params})
}

func vsig(ret *ctypes.Type, params ...*ctypes.Type) *ctypes.Type {
	return ctypes.FuncOf(&ctypes.Signature{Ret: ret, Params: params, Variadic: true})
}

func init() {
	var (
		vp = ctypes.PointerTo(ctypes.VoidType)
		cp = ctypes.PointerTo(ctypes.CharType)
		i  = ctypes.IntType
		u  = ctypes.UIntType
		l  = ctypes.LongType
		d  = ctypes.DoubleType
		v  = ctypes.VoidType
	)
	Builtins["printf"] = vsig(i, cp)
	Builtins["sprintf"] = vsig(i, cp, cp)
	Builtins["putchar"] = sig(i, i)
	Builtins["puts"] = sig(i, cp)
	Builtins["getchar"] = sig(i)
	Builtins["malloc"] = sig(vp, l)
	Builtins["calloc"] = sig(vp, l, l)
	Builtins["realloc"] = sig(vp, vp, l)
	Builtins["free"] = sig(v, vp)
	Builtins["strlen"] = sig(l, cp)
	Builtins["strcmp"] = sig(i, cp, cp)
	Builtins["strncmp"] = sig(i, cp, cp, l)
	Builtins["strcpy"] = sig(cp, cp, cp)
	Builtins["strncpy"] = sig(cp, cp, cp, l)
	Builtins["strcat"] = sig(cp, cp, cp)
	Builtins["strchr"] = sig(cp, cp, i)
	Builtins["strstr"] = sig(cp, cp, cp)
	Builtins["memset"] = sig(vp, vp, i, l)
	Builtins["memcpy"] = sig(vp, vp, vp, l)
	Builtins["memmove"] = sig(vp, vp, vp, l)
	Builtins["memcmp"] = sig(i, vp, vp, l)
	Builtins["atoi"] = sig(i, cp)
	Builtins["atol"] = sig(l, cp)
	Builtins["atof"] = sig(d, cp)
	Builtins["abs"] = sig(i, i)
	Builtins["labs"] = sig(l, l)
	Builtins["exit"] = sig(v, i)
	Builtins["abort"] = sig(v)
	Builtins["rand"] = sig(i)
	Builtins["srand"] = sig(v, u)
	Builtins["sqrt"] = sig(d, d)
	Builtins["fabs"] = sig(d, d)
	Builtins["sin"] = sig(d, d)
	Builtins["cos"] = sig(d, d)
	Builtins["tan"] = sig(d, d)
	Builtins["exp"] = sig(d, d)
	Builtins["log"] = sig(d, d)
	Builtins["pow"] = sig(d, d, d)
	Builtins["floor"] = sig(d, d)
	Builtins["ceil"] = sig(d, d)
	Builtins["fmod"] = sig(d, d, d)
	Builtins["isdigit"] = sig(i, i)
	Builtins["isalpha"] = sig(i, i)
	Builtins["isalnum"] = sig(i, i)
	Builtins["isspace"] = sig(i, i)
	Builtins["isupper"] = sig(i, i)
	Builtins["islower"] = sig(i, i)
	Builtins["ispunct"] = sig(i, i)
	Builtins["toupper"] = sig(i, i)
	Builtins["tolower"] = sig(i, i)
}

// NoReturnBuiltins are builtins that never return; the paper's error
// heuristic treats arms calling them as unlikely.
var NoReturnBuiltins = map[string]bool{
	"exit":  true,
	"abort": true,
}
