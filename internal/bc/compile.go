package bc

import (
	"fmt"
	"math"

	"staticest/internal/cast"
	"staticest/internal/cfg"
	"staticest/internal/ctoken"
	"staticest/internal/ctypes"
	"staticest/internal/probes"
)

// Compile lowers every function of p for one instrumentation mode:
// plan == nil lowers full instrumentation, a non-nil plan lowers sparse
// instrumentation with the plan's probe placement baked into the
// instruction stream. The lowering is pure — it never mutates p — and
// deterministic, so modules are cached per (program, mode).
//
// The compiler mirrors the tree walker's evaluation order exactly,
// including the points where it sets the ambient error position, the
// order of memory-trace appends, and the constructs it rejects at run
// time (which lower to OpFail with the same message). A construct the
// lowering cannot express returns an error; the interpreter then falls
// back to the reference engine for that program.
func Compile(p *cfg.Program, plan *probes.Plan) (*Module, error) {
	m := &Module{Sparse: plan != nil, Funcs: make([]Func, len(p.Graphs))}
	for fi, g := range p.Graphs {
		var fp *probes.FuncPlan
		if plan != nil {
			fp = &plan.Funcs[fi]
		}
		if err := compileFunc(&m.Funcs[fi], g, fp, plan); err != nil {
			return nil, fmt.Errorf("bc: %s: %w", g.Fn.Name(), err)
		}
	}
	return m, nil
}

// blockFixup is a forward reference from an instruction operand to a
// block's entry PC.
type blockFixup struct {
	pc      int
	operand byte // 'A' or 'B'
	block   int
}

// switchFixup is a forward reference from a switch-table arm to a block.
type switchFixup struct {
	tab, arm, block int
}

type compiler struct {
	f    *Func
	g    *cfg.Graph
	fp   *probes.FuncPlan // nil under full instrumentation
	plan *probes.Plan     // nil under full instrumentation

	depth, maxDepth int

	blockPC   []int32
	fixups    []blockFixup
	swFixups  []switchFixup
	constIdx  map[Const]int32
	posIdx    map[ctoken.Pos]int32
	exprIdx   map[cast.Expr]int32
	msgIdx    map[string]int32
	layoutErr error
}

func compileFunc(f *Func, g *cfg.Graph, fp *probes.FuncPlan, plan *probes.Plan) error {
	c := &compiler{
		f: f, g: g, fp: fp, plan: plan,
		blockPC:  make([]int32, len(g.Blocks)),
		constIdx: make(map[Const]int32),
		posIdx:   make(map[ctoken.Pos]int32),
		exprIdx:  make(map[cast.Expr]int32),
		msgIdx:   make(map[string]int32),
	}
	f.Entry = int32(g.Entry.ID)
	// The executor enters at Code[0]; lower the entry block first and
	// jump to it if it is not already first in Blocks order.
	if g.Entry.ID != 0 {
		c.emit(Instr{Op: OpJump}, 0)
		c.fixups = append(c.fixups, blockFixup{pc: 0, operand: 'A', block: g.Entry.ID})
	}
	for _, blk := range g.Blocks {
		c.blockPC[blk.ID] = int32(len(f.Code))
		if c.depth != 0 {
			return fmt.Errorf("internal: operand depth %d at block b%d", c.depth, blk.ID)
		}
		if err := c.block(blk); err != nil {
			return err
		}
		if c.depth != 0 {
			return fmt.Errorf("internal: operand depth %d after block b%d", c.depth, blk.ID)
		}
	}
	if c.layoutErr != nil {
		return c.layoutErr
	}
	for _, fx := range c.fixups {
		pc := c.blockPC[fx.block]
		if fx.operand == 'A' {
			f.Code[fx.pc].A = pc
		} else {
			f.Code[fx.pc].B = pc
		}
	}
	for _, fx := range c.swFixups {
		f.Switches[fx.tab].Arms[fx.arm].PC = c.blockPC[fx.block]
	}
	f.MaxStack = c.maxDepth
	return nil
}

// emit appends one instruction, tracking the operand-stack depth change.
func (c *compiler) emit(in Instr, delta int) int {
	c.f.Code = append(c.f.Code, in)
	c.depth += delta
	if c.depth > c.maxDepth {
		c.maxDepth = c.depth
	}
	return len(c.f.Code) - 1
}

// jumpHere patches a previously emitted jump operand A to the next PC.
func (c *compiler) jumpHere(pc int) { c.f.Code[pc].A = int32(len(c.f.Code)) }

func (c *compiler) blockRef(pc int, operand byte, block int) {
	c.fixups = append(c.fixups, blockFixup{pc: pc, operand: operand, block: block})
}

func (c *compiler) pos(p ctoken.Pos) int32 {
	if i, ok := c.posIdx[p]; ok {
		return i
	}
	i := int32(len(c.f.Pos))
	c.f.Pos = append(c.f.Pos, p)
	c.posIdx[p] = i
	return i
}

func (c *compiler) setPos(p ctoken.Pos) { c.emit(Instr{Op: OpSetPos, A: c.pos(p)}, 0) }

func (c *compiler) constant(k Const) {
	i, ok := c.constIdx[k]
	if !ok {
		i = int32(len(c.f.Consts))
		c.f.Consts = append(c.f.Consts, k)
		c.constIdx[k] = i
	}
	c.emit(Instr{Op: OpConst, A: i}, +1)
}

func (c *compiler) intConst(v int64, t *ctypes.Type) {
	c.constant(Const{Typ: t, I: truncConst(v, t)})
}

func (c *compiler) expr(e cast.Expr) int32 {
	if i, ok := c.exprIdx[e]; ok {
		return i
	}
	i := int32(len(c.f.Exprs))
	c.f.Exprs = append(c.f.Exprs, e)
	c.exprIdx[e] = i
	return i
}

// failWith lowers a construct the tree walker rejects at run time to an
// OpFail carrying the identical pre-formatted message. For depth
// bookkeeping the instruction stands in for the value or address the
// construct would have produced (execution never passes it).
func (c *compiler) failWith(msg string, delta int) {
	i, ok := c.msgIdx[msg]
	if !ok {
		i = int32(len(c.f.Msgs))
		c.f.Msgs = append(c.f.Msgs, msg)
		c.msgIdx[msg] = i
	}
	c.emit(Instr{Op: OpFail, A: i}, delta)
}

// trace emits a memory-trace hook for candidate reference expression e
// whose address sits depth values below the stack top. It costs one nil
// test per execution when tracing is off, mirroring the tree walker's
// guarded traceAccess calls.
func (c *compiler) trace(e cast.Expr, depth int, write bool) {
	w := int32(0)
	if write {
		w = 1
	}
	c.emit(Instr{Op: OpTrace, A: c.expr(e), B: int32(depth), C: w}, 0)
}

func (c *compiler) narrow(what string, v int64) int32 {
	if v < math.MinInt32 || v > math.MaxInt32 {
		if c.layoutErr == nil {
			c.layoutErr = fmt.Errorf("%s %d exceeds the 32-bit instruction operand", what, v)
		}
		return 0
	}
	return int32(v)
}

// --- blocks and terminators -------------------------------------------------

func (c *compiler) block(blk *cfg.Block) error {
	if c.fp != nil {
		c.emit(Instr{Op: OpBlockSparse, A: int32(blk.ID)}, 0)
	} else {
		c.emit(Instr{Op: OpBlockFull, A: int32(blk.ID), B: int32(1 + len(blk.Stmts))}, 0)
	}
	for _, s := range blk.Stmts {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	switch blk.Term {
	case cfg.TermJump:
		if len(blk.Succs) == 0 {
			// Pruned dead end: the interpreter treats it as return 0.
			if pi := c.exitProbeIdx(blk); pi >= 0 {
				c.emit(Instr{Op: OpProbeRetZero, A: pi}, 0)
			} else {
				c.emit(Instr{Op: OpRetZero}, 0)
			}
			return nil
		}
		if c.fp != nil {
			if pi := c.fp.SuccProbe[blk.ID][0]; pi >= 0 {
				pc := c.emit(Instr{Op: OpProbeJump, A: pi}, 0)
				c.blockRef(pc, 'B', blk.Succs[0].ID)
				return nil
			}
		}
		pc := c.emit(Instr{Op: OpJump}, 0)
		c.blockRef(pc, 'A', blk.Succs[0].ID)
	case cfg.TermCond:
		c.setPos(blk.Cond.Pos())
		if err := c.value(blk.Cond); err != nil {
			return err
		}
		if c.fp == nil {
			br := c.emit(Instr{Op: OpBr, C: int32(blk.BranchSite)}, -1)
			c.blockRef(br, 'A', blk.Succs[0].ID)
			c.blockRef(br, 'B', blk.Succs[1].ID)
			return nil
		}
		p0, p1 := c.fp.SuccProbe[blk.ID][0], c.fp.SuccProbe[blk.ID][1]
		switch {
		case p0 < 0 && p1 < 0:
			br := c.emit(Instr{Op: OpBr, C: -1}, -1)
			c.blockRef(br, 'A', blk.Succs[0].ID)
			c.blockRef(br, 'B', blk.Succs[1].ID)
		case p0 >= 0 && p1 < 0:
			br := c.emit(Instr{Op: OpBrProbe, C: p0 << 1}, -1)
			c.blockRef(br, 'A', blk.Succs[0].ID)
			c.blockRef(br, 'B', blk.Succs[1].ID)
		case p0 < 0 && p1 >= 0:
			br := c.emit(Instr{Op: OpBrProbe, C: p1<<1 | 1}, -1)
			c.blockRef(br, 'A', blk.Succs[0].ID)
			c.blockRef(br, 'B', blk.Succs[1].ID)
		default:
			// Both arms probed: fuse arm 0, trampoline arm 1.
			br := c.emit(Instr{Op: OpBrProbe, C: p0 << 1}, -1)
			c.blockRef(br, 'A', blk.Succs[0].ID)
			c.f.Code[br].B = int32(len(c.f.Code))
			stub := c.emit(Instr{Op: OpProbeJump, A: p1}, 0)
			c.blockRef(stub, 'B', blk.Succs[1].ID)
		}
	case cfg.TermSwitch:
		c.setPos(blk.Tag.Pos())
		if err := c.value(blk.Tag); err != nil {
			return err
		}
		tab := len(c.f.Switches)
		st := SwitchTab{Site: -1}
		if c.fp == nil {
			st.Site = int32(blk.SwitchSite)
		}
		for _, d := range blk.Cases {
			st.Arms = append(st.Arms, SwitchArm{Vals: d.Vals, IsDefault: d.IsDefault})
		}
		c.f.Switches = append(c.f.Switches, st)
		c.emit(Instr{Op: OpSwitch, A: int32(tab)}, -1)
		// Arm targets: straight to the successor block, or through a
		// probe trampoline when the arc carries a sparse counter.
		for slot, succ := range blk.Succs {
			if c.fp != nil {
				if pi := c.fp.SuccProbe[blk.ID][slot]; pi >= 0 {
					c.f.Switches[tab].Arms[slot].PC = int32(len(c.f.Code))
					pc := c.emit(Instr{Op: OpProbeJump, A: pi}, 0)
					c.blockRef(pc, 'B', succ.ID)
					continue
				}
			}
			c.swFixups = append(c.swFixups, switchFixup{tab: tab, arm: slot, block: succ.ID})
		}
	case cfg.TermReturn:
		if blk.RetVal != nil {
			c.setPos(blk.RetVal.Pos())
			if err := c.value(blk.RetVal); err != nil {
				return err
			}
			// The exit probe bumps only after the return value has
			// evaluated: an exit() inside it must leave this frame
			// recorded as escaped, not as having flowed out. Fusing the
			// probe into the return preserves that order.
			if pi := c.exitProbeIdx(blk); pi >= 0 {
				c.emit(Instr{Op: OpProbeRet, A: pi}, -1)
			} else {
				c.emit(Instr{Op: OpRet}, -1)
			}
		} else {
			if pi := c.exitProbeIdx(blk); pi >= 0 {
				c.emit(Instr{Op: OpProbeRetZero, A: pi}, 0)
			} else {
				c.emit(Instr{Op: OpRetZero}, 0)
			}
		}
	}
	return nil
}

// exitProbeIdx returns the sparse exit-probe counter of blk, or -1.
func (c *compiler) exitProbeIdx(blk *cfg.Block) int32 {
	if c.fp == nil {
		return -1
	}
	return c.fp.ExitProbe[blk.ID]
}

// --- statements -------------------------------------------------------------

func (c *compiler) stmt(s cast.Stmt) error {
	c.setPos(s.Pos())
	switch x := s.(type) {
	case *cast.ExprStmt:
		return c.effect(x.X)
	case *cast.DeclStmt:
		for _, d := range x.Decls {
			if d.Init == nil {
				continue
			}
			if err := c.localInit(d.Obj.FrameOffset, d.Obj.Type, d.Init); err != nil {
				return err
			}
		}
		return nil
	case *cast.Clear:
		c.emit(Instr{Op: OpClear, A: c.narrow("clear offset", x.Off), B: c.narrow("clear size", x.Size)}, 0)
		return nil
	default:
		c.failWith(fmt.Sprintf("interp: unexpected statement %T in basic block", s), 0)
		return nil
	}
}

func (c *compiler) localInit(off int64, t *ctypes.Type, in cast.Init) error {
	switch init := in.(type) {
	case nil:
	case *cast.ExprInit:
		if s, ok := init.X.(*cast.StrLit); ok && t.Kind == ctypes.Array {
			idx := int32(len(c.f.StrInits))
			c.f.StrInits = append(c.f.StrInits, StrInit{Val: s.Val, Size: t.Size()})
			c.emit(Instr{Op: OpInitStr, A: c.narrow("init offset", off), B: idx}, 0)
			return nil
		}
		c.emit(Instr{Op: OpAddrLocal, A: c.narrow("local offset", off)}, +1)
		if err := c.value(init.X); err != nil {
			return err
		}
		c.emit(Instr{Op: OpConvert, Typ: t}, 0)
		c.emit(Instr{Op: OpStoreMem, Typ: t}, -2)
	case *cast.ListInit:
		switch t.Kind {
		case ctypes.Array:
			esz := t.Elem.Size()
			for i, el := range init.Elems {
				if int64(i) >= t.Len {
					break
				}
				if err := c.localInit(off+int64(i)*esz, t.Elem, el); err != nil {
					return err
				}
			}
		case ctypes.Struct:
			for i, el := range init.Elems {
				if i >= len(t.Info.Fields) {
					break
				}
				f := t.Info.Fields[i]
				if err := c.localInit(off+f.Offset, f.Type, el); err != nil {
					return err
				}
			}
		default:
			if len(init.Elems) == 1 {
				return c.localInit(off, t, init.Elems[0])
			}
		}
	}
	return nil
}

// --- expressions ------------------------------------------------------------

// value compiles e so its value is left on the stack.
func (c *compiler) value(e cast.Expr) error { return c.compileExpr(e, false) }

// effect compiles e for its side effects only.
func (c *compiler) effect(e cast.Expr) error { return c.compileExpr(e, true) }

func (c *compiler) compileExpr(e cast.Expr, drop bool) error {
	switch x := e.(type) {
	case *cast.IntLit:
		c.intConst(int64(x.Val), x.Type())
	case *cast.FloatLit:
		f := x.Val
		if x.Type().Kind == ctypes.Float {
			f = float64(float32(f))
		}
		c.constant(Const{Typ: x.Type(), F: f})
	case *cast.StrLit:
		c.emit(Instr{Op: OpStr, A: int32(x.DataIndex), Typ: ctypes.PointerTo(ctypes.CharType)}, +1)
	case *cast.Ident:
		obj := x.Obj
		if obj.Kind == cast.ObjFunc {
			if obj.FuncIndex < 0 {
				c.failWith(fmt.Sprintf("cannot take the value of builtin %q", obj.Name), +1)
				break
			}
			c.emit(Instr{Op: OpFnPtr, A: int32(obj.FuncIndex), Typ: ctypes.PointerTo(obj.Type)}, +1)
			break
		}
		if obj.Global {
			c.loadVar(OpLoadGlobal, OpAddrGlobal, int32(obj.GlobalIndex), obj.Type)
		} else {
			c.loadVar(OpLoadLocal, OpAddrLocal, c.narrow("local offset", obj.FrameOffset), obj.Type)
		}
	case *cast.Unary:
		if err := c.unary(x); err != nil {
			return err
		}
	case *cast.Postfix:
		delta := int32(1)
		if !x.Inc {
			delta = -1
		}
		t, err := c.lvalue(x.X)
		if err != nil {
			return err
		}
		c.emit(Instr{Op: OpLoadMemKeep, Typ: t}, +1)
		c.trace(x.X, 1, false)
		c.trace(x.X, 1, true)
		c.emit(Instr{Op: OpPostfix, A: delta, Typ: t}, -1)
	case *cast.Binary:
		if err := c.value(x.X); err != nil {
			return err
		}
		if err := c.value(x.Y); err != nil {
			return err
		}
		c.emit(Instr{Op: OpBinop, A: int32(x.Op), B: c.pos(x.Pos())}, -1)
	case *cast.Logical:
		if err := c.logical(x); err != nil {
			return err
		}
	case *cast.Cond:
		if err := c.ternary(x); err != nil {
			return err
		}
	case *cast.Assign:
		return c.assign(x, drop)
	case *cast.Call:
		if err := c.call(x); err != nil {
			return err
		}
	case *cast.Index, *cast.Member:
		t, err := c.lvalue(e)
		if err != nil {
			return err
		}
		c.trace(e, 0, false)
		c.loadMem(t)
	case *cast.SizeofExpr:
		c.intConst(x.X.Type().Size(), ctypes.LongType)
	case *cast.SizeofType:
		c.intConst(x.Of.Size(), ctypes.LongType)
	case *cast.CastExpr:
		if err := c.value(x.X); err != nil {
			return err
		}
		c.emit(Instr{Op: OpConvert, Typ: x.To}, 0)
	case *cast.Comma:
		if err := c.effect(x.X); err != nil {
			return err
		}
		return c.compileExpr(x.Y, drop)
	default:
		c.failWith(fmt.Sprintf("interp: unhandled expression %T", e), +1)
	}
	if drop {
		c.emit(Instr{Op: OpDrop}, -1)
	}
	return nil
}

func (c *compiler) unary(x *cast.Unary) error {
	switch x.Op {
	case cast.Neg:
		if err := c.value(x.X); err != nil {
			return err
		}
		c.emit(Instr{Op: OpNeg, Typ: x.Type()}, 0)
	case cast.BitNot:
		if err := c.value(x.X); err != nil {
			return err
		}
		c.emit(Instr{Op: OpBitNot, Typ: x.Type()}, 0)
	case cast.LogNot:
		if err := c.value(x.X); err != nil {
			return err
		}
		c.emit(Instr{Op: OpLogNot}, 0)
	case cast.Deref:
		if err := c.value(x.X); err != nil {
			return err
		}
		c.emit(Instr{Op: OpDerefAddr, A: c.pos(x.Pos())}, 0)
		c.trace(x, 0, false)
		c.loadMem(x.Type())
	case cast.Addr:
		if id, ok := x.X.(*cast.Ident); ok && id.Obj.Kind == cast.ObjFunc {
			if id.Obj.FuncIndex < 0 {
				c.failWith(fmt.Sprintf("cannot take the address of builtin %q", id.Obj.Name), +1)
				return nil
			}
			c.emit(Instr{Op: OpFnPtr, A: int32(id.Obj.FuncIndex), Typ: x.Type()}, +1)
			return nil
		}
		if _, err := c.lvalue(x.X); err != nil {
			return err
		}
		c.emit(Instr{Op: OpRetype, Typ: x.Type()}, 0)
	case cast.PreInc, cast.PreDec:
		delta := int32(1)
		if x.Op == cast.PreDec {
			delta = -1
		}
		t, err := c.lvalue(x.X)
		if err != nil {
			return err
		}
		c.emit(Instr{Op: OpLoadMemKeep, Typ: t}, +1)
		c.trace(x.X, 1, false)
		c.trace(x.X, 1, true)
		c.emit(Instr{Op: OpPreInc, A: delta, Typ: t}, -1)
	default:
		c.failWith(fmt.Sprintf("interp: unhandled unary %s", x.Op), +1)
	}
	return nil
}

func (c *compiler) logical(x *cast.Logical) error {
	if err := c.value(x.X); err != nil {
		return err
	}
	op := OpJumpFalse
	if !x.AndAnd {
		op = OpJumpTrue
	}
	short := c.emit(Instr{Op: op}, -1)
	save := c.depth
	if err := c.value(x.Y); err != nil {
		return err
	}
	c.emit(Instr{Op: OpBool}, 0)
	end := c.emit(Instr{Op: OpJump}, 0)
	c.depth = save
	c.jumpHere(short)
	if x.AndAnd {
		c.intConst(0, ctypes.IntType)
	} else {
		c.intConst(1, ctypes.IntType)
	}
	c.jumpHere(end)
	return nil
}

func (c *compiler) ternary(x *cast.Cond) error {
	if err := c.value(x.C); err != nil {
		return err
	}
	els := c.emit(Instr{Op: OpJumpFalse}, -1)
	save := c.depth
	if err := c.condArm(x, x.Then); err != nil {
		return err
	}
	end := c.emit(Instr{Op: OpJump}, 0)
	c.depth = save
	c.jumpHere(els)
	if err := c.condArm(x, x.Else); err != nil {
		return err
	}
	c.jumpHere(end)
	return nil
}

func (c *compiler) condArm(x *cast.Cond, arm cast.Expr) error {
	if err := c.value(arm); err != nil {
		return err
	}
	if t := x.Type(); t != nil && t.Kind != ctypes.Void {
		c.emit(Instr{Op: OpConvert, Typ: t}, 0)
	}
	return nil
}

func (c *compiler) assign(x *cast.Assign, drop bool) error {
	// Direct scalar variables skip the address push; they are never
	// memory-trace candidates (the reuse table maps only subscripts,
	// dereferences, and member accesses).
	if id, ok := x.L.(*cast.Ident); ok && id.Obj.Kind != cast.ObjFunc {
		return c.assignDirect(x, id.Obj, drop)
	}
	t, err := c.lvalue(x.L)
	if err != nil {
		return err
	}
	if x.Op == cast.Plain {
		if err := c.value(x.R); err != nil {
			return err
		}
		c.emit(Instr{Op: OpConvert, Typ: t}, 0)
	} else {
		c.emit(Instr{Op: OpLoadMemKeep, Typ: t}, +1)
		c.trace(x.L, 1, false)
		if err := c.value(x.R); err != nil {
			return err
		}
		c.emit(Instr{Op: OpBinop, A: int32(x.Op.BinOp()), B: -1}, -1)
		c.emit(Instr{Op: OpConvert, Typ: t}, 0)
	}
	// The write-trace hook precedes the store instruction (the address
	// is still on the stack there); the tree walker appends after the
	// store, but no other append can intervene and a failing store
	// aborts the run, so the trace orders are identical.
	c.trace(x.L, 1, true)
	if drop {
		c.emit(Instr{Op: OpStoreMem, Typ: t}, -2)
	} else {
		c.emit(Instr{Op: OpStoreMemV, Typ: t}, -1)
	}
	return nil
}

func (c *compiler) assignDirect(x *cast.Assign, obj *cast.Object, drop bool) error {
	t := obj.Type
	load, store, storeV := OpLoadLocal, OpStoreLocal, OpStoreLocalV
	a := c.narrow("local offset", obj.FrameOffset)
	if obj.Global {
		load, store, storeV = OpLoadGlobal, OpStoreGlobal, OpStoreGlobalV
		a = int32(obj.GlobalIndex)
	}
	if x.Op == cast.Plain {
		if err := c.value(x.R); err != nil {
			return err
		}
	} else {
		c.emit(Instr{Op: load, A: a, Typ: t}, +1)
		if err := c.value(x.R); err != nil {
			return err
		}
		c.emit(Instr{Op: OpBinop, A: int32(x.Op.BinOp()), B: -1}, -1)
	}
	c.emit(Instr{Op: OpConvert, Typ: t}, 0)
	if drop {
		c.emit(Instr{Op: store, A: a, Typ: t}, -1)
	} else {
		c.emit(Instr{Op: storeV, A: a, Typ: t}, 0)
	}
	return nil
}

// loadMem emits load-from-address-on-stack for type t, resolving the
// array/struct representation at compile time: struct values are their
// address and arrays decay to a pointer to their first element, so both
// "loads" are a retype of the address already on the stack, touching no
// memory — exactly what the tree walker's m.load produces, minus its
// per-load PointerTo allocation.
func (c *compiler) loadMem(t *ctypes.Type) {
	switch t.Kind {
	case ctypes.Array:
		c.emit(Instr{Op: OpRetype, Typ: ctypes.PointerTo(t.Elem)}, 0)
	case ctypes.Struct:
		c.emit(Instr{Op: OpRetype, Typ: t}, 0)
	default:
		c.emit(Instr{Op: OpLoadMem, Typ: t}, 0)
	}
}

// loadVar emits a variable rvalue: a real load for scalars, the
// decayed/struct address push for arrays and structs.
func (c *compiler) loadVar(load, addr Op, a int32, t *ctypes.Type) {
	switch t.Kind {
	case ctypes.Array:
		c.emit(Instr{Op: addr, A: a, Typ: ctypes.PointerTo(t.Elem)}, +1)
	case ctypes.Struct:
		c.emit(Instr{Op: addr, A: a, Typ: t}, +1)
	default:
		c.emit(Instr{Op: load, A: a, Typ: t}, +1)
	}
}

// lvalue compiles the address of an assignable expression onto the
// stack and returns its type, mirroring the tree walker's lvalue()
// recursion — including which subexpressions evaluate before a
// non-lvalue construct faults.
func (c *compiler) lvalue(e cast.Expr) (*ctypes.Type, error) {
	switch x := e.(type) {
	case *cast.Ident:
		if x.Obj.Kind == cast.ObjFunc {
			c.failWith(fmt.Sprintf("function %q used as lvalue", x.Name), +1)
			return ctypes.IntType, nil
		}
		if x.Obj.Global {
			c.emit(Instr{Op: OpAddrGlobal, A: int32(x.Obj.GlobalIndex)}, +1)
		} else {
			c.emit(Instr{Op: OpAddrLocal, A: c.narrow("local offset", x.Obj.FrameOffset)}, +1)
		}
		return x.Obj.Type, nil
	case *cast.Unary:
		if x.Op == cast.Deref {
			if err := c.value(x.X); err != nil {
				return nil, err
			}
			c.emit(Instr{Op: OpDerefAddr, A: c.pos(x.Pos())}, 0)
			return x.Type(), nil
		}
	case *cast.Index:
		if err := c.value(x.X); err != nil {
			return nil, err
		}
		if err := c.value(x.I); err != nil {
			return nil, err
		}
		t := x.Type()
		c.emit(Instr{Op: OpIndexAddr, A: c.pos(x.Pos()), B: c.narrow("element size", t.Size())}, -1)
		return t, nil
	case *cast.Member:
		if x.Arrow {
			if err := c.value(x.X); err != nil {
				return nil, err
			}
			c.emit(Instr{Op: OpArrowAddr, A: c.narrow("field offset", x.Field.Offset), B: c.pos(x.Pos())}, 0)
			return x.Field.Type, nil
		}
		if _, err := c.lvalue(x.X); err != nil {
			return nil, err
		}
		if x.Field.Offset != 0 {
			c.emit(Instr{Op: OpMemberAddr, A: c.narrow("field offset", x.Field.Offset)}, 0)
		}
		return x.Field.Type, nil
	}
	c.failWith(fmt.Sprintf("interp: expression is not an lvalue (%T)", e), +1)
	return ctypes.IntType, nil
}

func (c *compiler) call(x *cast.Call) error {
	// Resolve the target first, exactly as the tree walker does: an
	// indirect callee expression evaluates — and its null/non-function
	// checks fire — before any argument.
	fnIdx := -1
	builtin := ""
	indirect := false
	if callee := x.Callee(); callee != nil {
		if callee.Builtin || callee.FuncIndex < 0 {
			builtin = callee.Name
		} else {
			fnIdx = callee.FuncIndex
		}
	} else {
		indirect = true
		if err := c.value(x.Fun); err != nil {
			return err
		}
		c.emit(Instr{Op: OpCheckFn, A: c.pos(x.Pos())}, 0)
	}
	for _, a := range x.Args {
		if err := c.value(a); err != nil {
			return err
		}
	}
	if x.SiteID >= 0 {
		if c.plan != nil {
			if pi := c.plan.SiteProbe[x.SiteID]; pi >= 0 {
				c.emit(Instr{Op: OpProbe, A: pi}, 0)
			}
		} else {
			c.emit(Instr{Op: OpCountSite, A: int32(x.SiteID)}, 0)
		}
	}
	nargs := int32(len(x.Args))
	pos := c.pos(x.Pos())
	switch {
	case indirect:
		c.emit(Instr{Op: OpCallPtr, B: nargs, C: pos}, -int(nargs))
	case builtin != "":
		idx := int32(len(c.f.Builtins))
		c.f.Builtins = append(c.f.Builtins, BuiltinRef{Name: builtin, Call: x})
		c.emit(Instr{Op: OpCallBuiltin, A: idx, B: nargs, C: pos}, -int(nargs)+1)
	default:
		c.emit(Instr{Op: OpCall, A: int32(fnIdx), B: nargs, C: pos}, -int(nargs)+1)
	}
	return nil
}

// truncConst reduces v to the width and signedness of integer type t,
// replicating the interpreter's intValue truncation at compile time.
func truncConst(v int64, t *ctypes.Type) int64 {
	switch t.Kind {
	case ctypes.Char:
		return int64(int8(v))
	case ctypes.UChar:
		return int64(uint8(v))
	case ctypes.Short:
		return int64(int16(v))
	case ctypes.UShort:
		return int64(uint16(v))
	case ctypes.Int:
		return int64(int32(v))
	case ctypes.UInt:
		return int64(uint32(v))
	default: // Long, ULong, Ptr
		return v
	}
}
