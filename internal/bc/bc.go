// Package bc lowers compiled CFG programs to a flat bytecode the
// interpreter executes without walking AST or CFG structures. The
// lowering is the ROADMAP's "interpreter speed overhaul": one pass over
// each function's control-flow graph emits a dense instruction array
// with integer block, frame-offset, and pool indices, pooled constants
// (pre-truncated to their C types at compile time), and branchless
// counter increments — plain slice index bumps, no map lookups and no
// interface dispatch on the hot path.
//
// A Module is compiled per instrumentation mode: the full-profile and
// sparse-probe lowerings differ structurally (per-block counters and
// branch/switch/site counts versus probe increments on the planned
// off-forest arcs, reached through jump trampolines), so the two modes
// are two modules, each cached on the cfg.Program they lower.
//
// The package deliberately contains no execution state: the execution
// loop lives in internal/interp, where it shares the tree-walking
// evaluator's value representation, memory model, conversions, and
// builtins, so the two engines cannot drift on semantics that are not
// encoded in the instruction stream.
package bc

import (
	"staticest/internal/cast"
	"staticest/internal/ctoken"
	"staticest/internal/ctypes"
)

// Op is a bytecode opcode.
type Op uint8

// Opcodes. Stack effects are noted as [before] -> [after], with the
// stack top rightmost. "addr" values are encoded interpreter pointers
// carried in a value's integer slot.
const (
	OpInvalid Op = iota

	// --- control and profiling ---

	// OpBlockFull opens a block under full instrumentation:
	// steps++/budget check, BlockCounts[fn][A]++, cycles += B*factor.
	OpBlockFull // A=blockID, B=1+len(stmts)
	// OpBlockSparse opens a block under sparse instrumentation:
	// steps++/budget check, frame trace slot set to A.
	OpBlockSparse // A=blockID
	// OpJump continues at instruction A.
	OpJump // A=pc
	// OpBr pops the condition and jumps to A (true) or B (false),
	// counting the outcome under C >= 0 (full mode only). [c] -> []
	OpBr // A=truePC, B=falsePC, C=branchSite or -1
	// OpJumpTrue / OpJumpFalse pop the condition and jump to A when it
	// is true / false (short-circuit and ternary lowering). [c] -> []
	OpJumpTrue  // A=pc
	OpJumpFalse // A=pc
	// OpBrProbe is OpBr for a sparse branch with exactly one probed arm:
	// C packs (probe index << 1 | arm), arm 0 = true. The probe bump
	// rides the dispatch the branch pays anyway; only a branch with both
	// arms probed needs a trampoline for the second. [c] -> []
	OpBrProbe // A=truePC, B=falsePC, C=probe<<1|arm
	// OpSwitch pops the tag and dispatches through Switches[A],
	// replicating the tree walker's first-match arm scan. [tag] -> []
	OpSwitch // A=switch table index
	// OpRet pops the return value and leaves the function. [v] -> []
	OpRet
	// OpRetZero leaves the function returning int 0 (implicit returns
	// and pruned dead-end blocks).
	OpRetZero
	// OpProbeRet / OpProbeRetZero fuse a sparse exit probe into the
	// return, the same one-dispatch trick as OpBrProbe.
	OpProbeRet     // A=probe index; [v] -> []
	OpProbeRetZero // A=probe index
	// OpProbe bumps sparse probe counter A.
	OpProbe // A=probe index
	// OpProbeJump bumps sparse probe counter A and continues at B — the
	// fused form of a probe trampoline, so a probed arc costs one
	// dispatch, not two (sparse must beat full on wall-clock, and the
	// probes are the only work it does that full mode doesn't).
	OpProbeJump // A=probe index, B=pc
	// OpCountSite bumps CallSiteCounts[A] (full mode only).
	OpCountSite // A=call-site ID
	// OpSetPos sets the ambient error position to Pos[A].
	OpSetPos // A=pos index
	// OpFail raises a runtime error with pooled message Msgs[A] at the
	// ambient position (constructs the tree walker rejects at the same
	// evaluation point, e.g. non-lvalue assignment targets).
	OpFail // A=msg index

	// --- operand stack ---

	OpDrop // [v] -> []
	OpDup  // [v] -> [v v]

	// --- constants and addresses ---

	OpConst      // [] -> [Consts[A]]
	OpStr        // [] -> [ptr to string literal A]; Typ=char*
	OpFnPtr      // [] -> [function pointer A]; Typ=result type
	OpLoadLocal  // [] -> [load(frame+A, Typ)]
	OpLoadGlobal // [] -> [load(global A, Typ)]
	OpAddrLocal  // [] -> [addr frame+A]; Typ=result type (may be nil)
	OpAddrGlobal // [] -> [addr of global A]; Typ=result type (may be nil)
	OpRetype     // [v] -> [v with type Typ] (finishes & on an lvalue path)

	// --- memory ---

	OpLoadMem     // [addr] -> [load(addr, Typ)]
	OpLoadMemKeep // [addr] -> [addr load(addr, Typ)]
	OpStoreMem    // [addr v] -> []            store(addr, Typ, v)
	OpStoreMemV   // [addr v] -> [v]           store(addr, Typ, v)
	// Direct stores to scalar variables (plain identifier assignment
	// targets, which are never memory-trace candidates) skip the
	// address push entirely.
	OpStoreLocal   // [v] -> []   store(frame+A, Typ, v)
	OpStoreLocalV  // [v] -> [v]  store(frame+A, Typ, v)
	OpStoreGlobal  // [v] -> []   store(global A, Typ, v)
	OpStoreGlobalV // [v] -> [v]  store(global A, Typ, v)
	OpIndexAddr    // [base idx] -> [addr]; A=posIdx, B=elem size, null base fails
	OpMemberAddr   // [addr] -> [addr+A]
	OpArrowAddr    // [base] -> [base+A]; B=posIdx, null base fails
	OpDerefAddr    // [ptr] -> [ptr as addr]; A=posIdx, null fails
	OpTrace        // memory-trace hook: A=expr index, B=stack depth of addr, C=1 for write
	OpInitStr      // string-literal array init: A=frame offset, B=StrInits index
	OpClear        // zero frame bytes [A, A+B) (inliner Clear statements)

	// --- arithmetic and conversions ---

	OpBinop   // [l r] -> [binop(A, l, r)]; B=posIdx or -1
	OpNeg     // [v] -> [-v]; Typ=result type
	OpBitNot  // [v] -> [^v]; Typ=result type
	OpLogNot  // [v] -> [!v as int]
	OpBool    // [v] -> [v != 0 as int]
	OpConvert // [v] -> [convert(v, Typ)]
	OpPostfix // [addr old] -> [old]; stores old+A (A=±1); Typ=lvalue type
	OpPreInc  // [addr old] -> [new]; stores new=old+A (A=±1); Typ=lvalue type

	// --- calls ---

	OpCheckFn     // [fnptr] -> [fnptr]; validates an indirect callee; A=posIdx
	OpCall        // [args...] -> [ret]; A=fnIdx, B=nargs, C=posIdx
	OpCallPtr     // [fnptr args...] -> [ret]; B=nargs, C=posIdx
	OpCallBuiltin // [args...] -> [ret]; A=Builtins index, B=nargs, C=posIdx
)

// Instr is one bytecode instruction. Operand meaning is per-opcode (see
// the Op constants); Typ carries the static C type the instruction
// loads, stores, converts to, or produces.
type Instr struct {
	Op      Op
	A, B, C int32
	Typ     *ctypes.Type
}

// Const is a pooled literal value, pre-coerced to its C type at compile
// time (integers truncated to their width and signedness, float
// literals rounded through float32 when single-precision).
type Const struct {
	Typ *ctypes.Type
	I   int64
	F   float64
}

// BuiltinRef identifies a builtin call site: the dispatch name plus the
// call node some builtins inspect.
type BuiltinRef struct {
	Name string
	Call *cast.Call
}

// StrInit is a pooled `char arr[] = "text"` initializer: the literal
// bytes and the array size to pad within.
type StrInit struct {
	Val  []byte
	Size int64
}

// SwitchArm is one dispatch arm of a lowered switch.
type SwitchArm struct {
	Vals      []int64
	IsDefault bool
	PC        int32
}

// SwitchTab is a lowered switch dispatch table. Site is the switch-site
// ID for full-mode arm counting, or -1.
type SwitchTab struct {
	Site int32
	Arms []SwitchArm
}

// Func is the lowered body of one function.
type Func struct {
	Code []Instr
	// Entry is the CFG entry block ID, pre-resolved so the sparse call
	// path can seed the frame trace without touching graph structures.
	Entry int32
	// MaxStack is the operand-stack high-water mark of one activation,
	// in values; the executor reserves it on entry so pushes never
	// bounds-check against capacity mid-function.
	MaxStack int

	Consts   []Const
	Pos      []ctoken.Pos
	Exprs    []cast.Expr
	Builtins []BuiltinRef
	StrInits []StrInit
	Switches []SwitchTab
	Msgs     []string
}

// Module is a whole program lowered for one instrumentation mode.
type Module struct {
	Sparse bool
	Funcs  []Func
}
