package check

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"

	"staticest"
	"staticest/internal/gen"
	"staticest/internal/ingest"
	"staticest/internal/metric"
	"staticest/internal/opt"
	"staticest/internal/profile"
	"staticest/internal/reuse"
	"staticest/internal/server"
)

// SparseOracle runs the program under full and sparse instrumentation
// and demands that the probe vector reconstructs the full profile
// exactly — the paper's optimal-instrumentation claim, checked on an
// arbitrary program instead of the 14 suite programs.
func SparseOracle(u *staticest.Unit) []Failure {
	full, err := u.Run(staticest.RunOptions{})
	if err != nil {
		return []Failure{{Oracle: "sparse", Detail: "full run: " + err.Error()}}
	}
	plan := u.PlanProbes()
	sparse, err := u.Run(staticest.RunOptions{
		Instrumentation: staticest.SparseInstrumentation,
		Plan:            plan,
	})
	if err != nil {
		return []Failure{{Oracle: "sparse", Detail: "sparse run: " + err.Error()}}
	}
	rec, err := staticest.Reconstruct(plan, sparse.Probes, nil)
	if err != nil {
		return []Failure{{Oracle: "sparse", Detail: "reconstruct: " + err.Error()}}
	}
	return profileDiffFailures("sparse", staticest.DiffProfiles(full.Profile, rec))
}

// BytecodeOracle runs the program under both execution engines — the
// bytecode lowering and the reference tree-walking evaluator — in both
// instrumentation modes and demands byte-identical observables: exit
// code, output, step count, full profile, and sparse probe vector. The
// suite's TestEngineDifferential pins the 14 fixed programs; this
// oracle extends the same check to arbitrary generated programs.
func BytecodeOracle(u *staticest.Unit) []Failure {
	var out []Failure
	fail := func(format string, args ...any) {
		out = append(out, Failure{Oracle: "bc", Detail: fmt.Sprintf(format, args...)})
	}
	pair := func(label string, opts staticest.RunOptions) (*staticest.RunResult, *staticest.RunResult) {
		opts.Engine = staticest.EngineTree
		tree, err := u.Run(opts)
		if err != nil {
			fail("%s tree run: %v", label, err)
			return nil, nil
		}
		opts.Engine = staticest.EngineBytecode
		bc, err := u.Run(opts)
		if err != nil {
			fail("%s bytecode run: %v", label, err)
			return nil, nil
		}
		if tree.ExitCode != bc.ExitCode {
			fail("%s exit code: tree %d, bytecode %d", label, tree.ExitCode, bc.ExitCode)
		}
		if !bytes.Equal(tree.Output, bc.Output) {
			fail("%s output differs (tree %d bytes, bytecode %d bytes)",
				label, len(tree.Output), len(bc.Output))
		}
		if tree.Steps != bc.Steps {
			fail("%s steps: tree %d, bytecode %d", label, tree.Steps, bc.Steps)
		}
		return tree, bc
	}
	if tree, bc := pair("full", staticest.RunOptions{}); tree != nil {
		out = append(out, profileDiffFailures("bc", staticest.DiffProfiles(tree.Profile, bc.Profile))...)
	}
	plan := u.PlanProbes()
	tree, bc := pair("sparse", staticest.RunOptions{
		Instrumentation: staticest.SparseInstrumentation,
		Plan:            plan,
	})
	if tree == nil {
		return out
	}
	if len(tree.Probes.Counts) != len(bc.Probes.Counts) {
		fail("sparse probe vector length: tree %d, bytecode %d",
			len(tree.Probes.Counts), len(bc.Probes.Counts))
		return out
	}
	for i := range tree.Probes.Counts {
		if tree.Probes.Counts[i] != bc.Probes.Counts[i] {
			fail("sparse probe %d: tree %g, bytecode %g",
				i, tree.Probes.Counts[i], bc.Probes.Counts[i])
		}
	}
	if len(tree.Probes.Escapes) != len(bc.Probes.Escapes) {
		fail("sparse escape count: tree %d, bytecode %d",
			len(tree.Probes.Escapes), len(bc.Probes.Escapes))
		return out
	}
	for i := range tree.Probes.Escapes {
		if tree.Probes.Escapes[i] != bc.Probes.Escapes[i] {
			fail("sparse escape %d: tree %+v, bytecode %+v",
				i, tree.Probes.Escapes[i], bc.Probes.Escapes[i])
		}
	}
	return out
}

// ReuseOracle traces one run's memory accesses and checks the
// stack-distance accounting end to end: the measured histogram mass
// equals the trace length, the per-reference histograms partition the
// whole-program one, cold mass equals the number of distinct traced
// addresses, no finite distance bucket lies beyond what that address
// count admits, and the static estimate scores against the measurement
// inside the metrics' ranges (total variation and weight match both in
// [0, 1]).
func ReuseOracle(u *staticest.Unit, opts staticest.RunOptions) []Failure {
	tab := u.ReuseTable()
	if len(tab.Refs) == 0 {
		return nil
	}
	fail := func(format string, args ...any) Failure {
		return Failure{Oracle: "reuse", Detail: fmt.Sprintf(format, args...)}
	}
	measured, res, err := u.MeasureReuse(tab, opts)
	if err != nil {
		return []Failure{fail("traced run: %v", err)}
	}
	var out []Failure
	if got, want := measured.Accesses(), float64(len(res.MemTrace)); got != want {
		out = append(out, fail("histogram mass %.0f != trace length %.0f", got, want))
	}
	var refSum reuse.Histogram
	for i := range measured.PerRef {
		refSum.Merge(&measured.PerRef[i])
	}
	for b := range refSum.Counts {
		if refSum.Counts[b] != measured.Total.Counts[b] {
			out = append(out, fail("per-ref histograms do not partition the total at bucket %d: %g vs %g",
				b, refSum.Counts[b], measured.Total.Counts[b]))
			break
		}
	}
	distinct := map[uint64]bool{}
	for _, a := range res.MemTrace {
		distinct[a.Addr] = true
	}
	if got, want := measured.Total.Cold(), float64(len(distinct)); got != want {
		out = append(out, fail("cold mass %.0f != distinct addresses %.0f", got, want))
	}
	for b := reuse.NumBuckets - 1; b >= 0; b-- {
		if measured.Total.Counts[b] == 0 {
			continue
		}
		// The bucket's lower edge must admit a distance a trace with
		// this many distinct addresses can produce (at most distinct-1).
		if b > 0 && reuse.BucketBound(b-1) > float64(len(distinct)-1) {
			out = append(out, fail("distance bucket %d (lower edge %.0f) beyond distinct addresses %d",
				b, reuse.BucketBound(b-1), len(distinct)))
		}
		break
	}
	est, err := u.EstimateReuse(tab, "smart")
	if err != nil {
		return append(out, fail("estimate: %v", err))
	}
	tv := metric.TotalVariation(est.Total.Vector(), measured.Total.Vector())
	wm := metric.WeightMatch(est.Total.Vector(), measured.Total.Vector(), 0.05)
	if tv < 0 || tv > 1 || math.IsNaN(tv) {
		out = append(out, fail("total variation %g outside [0, 1]", tv))
	}
	if wm < 0 || wm > 1 || math.IsNaN(wm) {
		out = append(out, fail("weight match %g outside [0, 1]", wm))
	}
	return out
}

// IngestOracle pushes the program through the online-aggregation
// pipeline and demands it agree with the offline one exactly: three
// sparse uploads through an ingest.Store must snapshot to byte-for-byte
// the profile.Aggregate of the same three reconstructed profiles. It
// also demands a replayed upload ID be rejected without touching the
// aggregate.
func IngestOracle(u *staticest.Unit) []Failure {
	plan := u.PlanProbes()
	sparse, err := u.Run(staticest.RunOptions{
		Instrumentation: staticest.SparseInstrumentation,
		Plan:            plan,
	})
	if err != nil {
		return []Failure{{Oracle: "ingest", Detail: "sparse run: " + err.Error()}}
	}
	rec, err := staticest.Reconstruct(plan, sparse.Probes, nil)
	if err != nil {
		return []Failure{{Oracle: "ingest", Detail: "reconstruct: " + err.Error()}}
	}

	const fp = "oracle-unit"
	st := ingest.NewStore(nil)
	st.Register(fp, u.Name, plan)
	var offline []*profile.Profile
	for i := 1; i <= 3; i++ {
		label := fmt.Sprintf("run%d", i)
		if _, err := st.Ingest(fp, ingest.Upload{ID: label, Label: label, Vector: sparse.Probes}); err != nil {
			return []Failure{{Oracle: "ingest", Detail: "upload " + label + ": " + err.Error()}}
		}
		q := rec.Clone()
		q.Label = label
		offline = append(offline, q)
	}
	if _, err := st.Ingest(fp, ingest.Upload{ID: "run1", Label: "replay", Vector: sparse.Probes}); !errors.Is(err, ingest.ErrDuplicate) {
		return []Failure{{Oracle: "ingest", Detail: fmt.Sprintf("replayed upload ID: err = %v, want ErrDuplicate", err)}}
	}

	snap, ok := st.Snapshot(fp)
	if !ok {
		return []Failure{{Oracle: "ingest", Detail: "no snapshot after three uploads"}}
	}
	if snap.Uploads != 3 {
		return []Failure{{Oracle: "ingest", Detail: fmt.Sprintf("uploads = %d, want 3", snap.Uploads)}}
	}
	want, err := profile.Aggregate(offline)
	if err != nil {
		return []Failure{{Oracle: "ingest", Detail: "offline aggregate: " + err.Error()}}
	}
	return profileDiffFailures("ingest", staticest.DiffProfiles(want, snap.Profile))
}

// InlineOracle inlines the hottest call sites under the smart estimate
// source, reruns the transformed program, folds its profile back onto
// the original shape, and demands exact equivalence. A program with no
// eligible site passes vacuously.
func InlineOracle(u *staticest.Unit) []Failure {
	src, err := u.EstimateFreqSource("smart")
	if err != nil {
		return []Failure{{Oracle: "inline", Detail: "source: " + err.Error()}}
	}
	plan := u.PlanInline(src, 0)
	if len(plan.Chosen) == 0 {
		return nil
	}
	nu, res, err := u.Inline(plan)
	if err != nil {
		return []Failure{{Oracle: "inline", Detail: "apply: " + err.Error()}}
	}
	want, err := u.Run(staticest.RunOptions{})
	if err != nil {
		return []Failure{{Oracle: "inline", Detail: "original run: " + err.Error()}}
	}
	got, err := nu.Run(staticest.RunOptions{})
	if err != nil {
		return []Failure{{Oracle: "inline", Detail: "inlined run: " + err.Error()}}
	}
	folded := opt.FoldProfile(u.CFG, res, got.Profile)
	return profileDiffFailures("inline", opt.CheckEquivalence(u.CFG, res, want.Profile, folded))
}

// MetamorphicOracle applies every semantics-preserving mutation the
// generator defines and compares estimates. Exact mutations (comments,
// renames) must leave every estimate bitwise identical; the dead-pad
// mutation must leave every pre-existing prediction, invocation count,
// and non-main block frequency unchanged. src must be a generated
// program (the mutations rely on the generator's naming and PadMarker).
func MetamorphicOracle(name string, src []byte, u *staticest.Unit, est *staticest.Estimates) []Failure {
	var out []Failure
	for _, m := range gen.Mutations {
		msrc := gen.Mutate(src, m)
		if bytes.Equal(msrc, src) {
			// Non-generated input (no marker to pad, nothing to rename):
			// nothing to compare.
			continue
		}
		mu, err := staticest.Compile(name, msrc)
		if err != nil {
			out = append(out, Failure{Oracle: "metamorphic",
				Detail: fmt.Sprintf("%v mutant does not compile: %v", m, err)})
			continue
		}
		mest := mu.Estimate()
		if m.Exact() {
			out = append(out, compareExact(m, u, est, mest)...)
		} else {
			out = append(out, compareDeadPad(m, u, est, mest)...)
		}
	}
	return out
}

func compareExact(m gen.Mutation, u *staticest.Unit, a, b *staticest.Estimates) []Failure {
	var out []Failure
	fail := func(format string, args ...any) {
		out = append(out, Failure{Oracle: "metamorphic",
			Detail: fmt.Sprintf("%v: ", m) + fmt.Sprintf(format, args...)})
	}
	if len(a.Pred.Branch) != len(b.Pred.Branch) {
		fail("branch site count %d != %d", len(b.Pred.Branch), len(a.Pred.Branch))
		return out
	}
	for i := range a.Pred.Branch {
		if a.Pred.Branch[i] != b.Pred.Branch[i] {
			fail("branch %d prediction changed: %+v -> %+v", i, a.Pred.Branch[i], b.Pred.Branch[i])
		}
	}
	for fi := range u.CFG.Graphs {
		name := u.CFG.Graphs[fi].Fn.Obj.Name
		cmpSlice(fail, "loop intra "+name, a.IntraLoop[fi].BlockFreq, b.IntraLoop[fi].BlockFreq, 0)
		cmpSlice(fail, "smart intra "+name, a.IntraSmart[fi].BlockFreq, b.IntraSmart[fi].BlockFreq, 0)
		cmpSlice(fail, "markov intra "+name, a.IntraMarkov[fi].BlockFreq, b.IntraMarkov[fi].BlockFreq, 0)
	}
	cmpSlice(fail, "direct invocations", a.Inter.Direct, b.Inter.Direct, 0)
	cmpSlice(fail, "markov invocations", a.InterMarkov.Inv, b.InterMarkov.Inv, 0)
	cmpSlice(fail, "site freq direct", a.SiteFreqDirect, b.SiteFreqDirect, 0)
	cmpSlice(fail, "site freq markov", a.SiteFreqMarkov, b.SiteFreqMarkov, 0)
	return out
}

// compareDeadPad checks the stable subset: the pad adds one branch site
// (sorted after all pre-existing ones) and new blocks in main only.
func compareDeadPad(m gen.Mutation, u *staticest.Unit, a, b *staticest.Estimates) []Failure {
	var out []Failure
	fail := func(format string, args ...any) {
		out = append(out, Failure{Oracle: "metamorphic",
			Detail: fmt.Sprintf("%v: ", m) + fmt.Sprintf(format, args...)})
	}
	if len(b.Pred.Branch) != len(a.Pred.Branch)+1 {
		fail("expected exactly one new branch site, got %d -> %d",
			len(a.Pred.Branch), len(b.Pred.Branch))
		return out
	}
	for i := range a.Pred.Branch {
		if a.Pred.Branch[i] != b.Pred.Branch[i] {
			fail("pre-existing branch %d changed: %+v -> %+v", i, a.Pred.Branch[i], b.Pred.Branch[i])
		}
	}
	pad := b.Pred.Branch[len(a.Pred.Branch)]
	if pad.Heuristic != "const" || pad.ConstTrue {
		fail("pad branch predicted %+v, want folded-false const", pad)
	}
	mainIdx := -1
	if u.Sem.Main != nil {
		mainIdx = u.Sem.Main.Obj.FuncIndex
	}
	for fi := range u.CFG.Graphs {
		if fi == mainIdx {
			continue // main gains blocks; its layout legitimately changes
		}
		name := u.CFG.Graphs[fi].Fn.Obj.Name
		cmpSlice(fail, "smart intra "+name, a.IntraSmart[fi].BlockFreq, b.IntraSmart[fi].BlockFreq, probEps)
		cmpSlice(fail, "markov intra "+name, a.IntraMarkov[fi].BlockFreq, b.IntraMarkov[fi].BlockFreq, probEps)
	}
	cmpSlice(fail, "direct invocations", a.Inter.Direct, b.Inter.Direct, probEps)
	cmpSlice(fail, "markov invocations", a.InterMarkov.Inv, b.InterMarkov.Inv, probEps)
	cmpSlice(fail, "site freq direct", a.SiteFreqDirect, b.SiteFreqDirect, probEps)
	cmpSlice(fail, "site freq markov", a.SiteFreqMarkov, b.SiteFreqMarkov, probEps)
	return out
}

func cmpSlice(fail func(string, ...any), what string, a, b []float64, eps float64) {
	if len(a) != len(b) {
		fail("%s: length %d != %d", what, len(b), len(a))
		return
	}
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > eps*(1+math.Abs(a[i])) || (eps == 0 && a[i] != b[i]) {
			fail("%s: entry %d changed %v -> %v", what, i, a[i], b[i])
			return
		}
	}
}

// ServerOracle posts the source to an in-process estimation service —
// twice to one instance (cold, then cached) and once to a fresh
// instance — and demands all three bodies be byte-identical and agree
// with the direct library computation on the fingerprint.
func ServerOracle(name string, src []byte) []Failure {
	var out []Failure
	fail := func(format string, args ...any) {
		out = append(out, Failure{Oracle: "server", Detail: fmt.Sprintf(format, args...)})
	}
	body, err := json.Marshal(struct {
		Name   string `json:"name"`
		Source string `json:"source"`
	}{Name: name, Source: string(src)})
	if err != nil {
		fail("marshal request: %v", err)
		return out
	}
	post := func(ts *httptest.Server) []byte {
		resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(body))
		if err != nil {
			fail("POST: %v", err)
			return nil
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			fail("status %d: %s", resp.StatusCode, b)
			return nil
		}
		return b
	}
	ts1 := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts1.Close()
	cold := post(ts1)
	warm := post(ts1)
	ts2 := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts2.Close()
	fresh := post(ts2)
	if cold == nil || warm == nil || fresh == nil {
		return out
	}
	if !bytes.Equal(cold, warm) {
		fail("cached response differs from cold response")
	}
	if !bytes.Equal(cold, fresh) {
		fail("second instance differs from first")
	}
	var er server.EstimateResponse
	if err := json.Unmarshal(cold, &er); err != nil {
		fail("unmarshal response: %v", err)
		return out
	}
	if want := staticest.Fingerprint(src); er.Fingerprint != want {
		fail("fingerprint %s != library %s", er.Fingerprint, want)
	}
	return out
}

// BatchOracle is the batch-vs-sequential equivalence check: a
// POST /v1/batch over N items must return, per item, the exact bytes N
// individual /v1/estimate calls produce — same payload for successes
// (byte-identical, not just semantically equal), same status and error
// message for failures, in request order. The item mix exercises the
// cold path, a mutated sibling (distinct fingerprint), a compile error
// (per-item isolation), and a repeat of the first item (the memoized
// path must serve the same bytes the cold path did).
func BatchOracle(name string, src []byte) []Failure {
	var out []Failure
	fail := func(format string, args ...any) {
		out = append(out, Failure{Oracle: "batch", Detail: fmt.Sprintf(format, args...)})
	}

	type item struct {
		Name   string `json:"name,omitempty"`
		Source string `json:"source"`
	}
	broken := "int main(void { return 0; }"
	items := []item{
		{Name: name, Source: string(src)},
		{Name: "mut_" + name, Source: string(gen.Mutate(src, gen.MutComments))},
		{Source: broken},
		{Name: name, Source: string(src)},
	}

	ts := httptest.NewServer(server.New(server.Config{}).Handler())
	defer ts.Close()

	// Sequential reference: one /v1/estimate call per item, recording
	// body bytes for successes and (status, message) for failures.
	type single struct {
		status int
		body   []byte
		errMsg string
	}
	singles := make([]single, len(items))
	for i, it := range items {
		body, err := json.Marshal(it)
		if err != nil {
			fail("marshal item %d: %v", i, err)
			return out
		}
		resp, err := http.Post(ts.URL+"/v1/estimate", "application/json", bytes.NewReader(body))
		if err != nil {
			fail("POST item %d: %v", i, err)
			return out
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		singles[i] = single{status: resp.StatusCode, body: b}
		if resp.StatusCode != http.StatusOK {
			var e struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(b, &e); err != nil {
				fail("item %d: unmarshal error body: %v", i, err)
				return out
			}
			singles[i].errMsg = e.Error
		}
	}

	// The batch over the same items, against the same instance (the
	// per-item cache reuse is part of what is being checked).
	batchBody, err := json.Marshal(struct {
		Items []item `json:"items"`
	}{items})
	if err != nil {
		fail("marshal batch: %v", err)
		return out
	}
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(batchBody))
	if err != nil {
		fail("POST batch: %v", err)
		return out
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fail("batch status %d: %s", resp.StatusCode, raw)
		return out
	}
	var br struct {
		Count  int `json:"count"`
		Errors int `json:"errors"`
		Items  []struct {
			Index    int             `json:"index"`
			Status   int             `json:"status"`
			Estimate json.RawMessage `json:"estimate"`
			Error    string          `json:"error"`
		} `json:"items"`
	}
	if err := json.Unmarshal(raw, &br); err != nil {
		fail("unmarshal batch response: %v", err)
		return out
	}
	if br.Count != len(items) || len(br.Items) != len(items) {
		fail("batch count %d / %d items, want %d", br.Count, len(br.Items), len(items))
		return out
	}
	wantErrs := 0
	for _, s := range singles {
		if s.status != http.StatusOK {
			wantErrs++
		}
	}
	if br.Errors != wantErrs {
		fail("batch errors = %d, want %d", br.Errors, wantErrs)
	}
	for i, bi := range br.Items {
		if bi.Index != i {
			fail("item %d: index %d out of order", i, bi.Index)
			continue
		}
		if bi.Status != singles[i].status {
			fail("item %d: status %d, single call got %d", i, bi.Status, singles[i].status)
			continue
		}
		if bi.Status == http.StatusOK {
			// The single call's body is the item's estimate plus the
			// encoder's trailing newline; everything else must match
			// byte for byte.
			if !bytes.Equal(append(bytes.Clone(bi.Estimate), '\n'), singles[i].body) {
				fail("item %d: batch estimate differs from the sequential /v1/estimate body", i)
			}
		} else if bi.Error != singles[i].errMsg {
			fail("item %d: error %q, single call said %q", i, bi.Error, singles[i].errMsg)
		}
	}
	return out
}
