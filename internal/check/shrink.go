package check

import "bytes"

// Shrink greedily reduces a failing program to a smaller one that still
// fails. failing must return true when the candidate source reproduces
// the original failure (candidates that no longer compile simply return
// false and are rejected). The reduction removes contiguous line chunks
// — halves first, then quarters, down to single lines — and restarts
// whenever a removal sticks, so the result is 1-minimal with respect to
// line deletion (ddmin over lines).
func Shrink(src []byte, failing func([]byte) bool) []byte {
	if !failing(src) {
		return src // not failing to begin with; nothing to do
	}
	lines := splitLines(src)
	chunk := len(lines) / 2
	for chunk >= 1 {
		removedAny := false
		for start := 0; start+chunk <= len(lines); {
			cand := joinWithout(lines, start, chunk)
			if failing(cand) {
				lines = append(lines[:start:start], lines[start+chunk:]...)
				removedAny = true
				// Do not advance: the next chunk slid into place.
			} else {
				start++
			}
		}
		if !removedAny || chunk == 1 {
			if chunk == 1 && !removedAny {
				break
			}
			chunk /= 2
			if chunk == 0 {
				chunk = 1
			}
			continue
		}
		// Progress at this granularity: try the same size again on the
		// smaller program before refining.
		if chunk > len(lines) {
			chunk = len(lines) / 2
		}
	}
	return bytes.Join(lines, []byte("\n"))
}

func splitLines(src []byte) [][]byte {
	return bytes.Split(bytes.TrimRight(src, "\n"), []byte("\n"))
}

func joinWithout(lines [][]byte, start, n int) []byte {
	keep := make([][]byte, 0, len(lines)-n)
	keep = append(keep, lines[:start]...)
	keep = append(keep, lines[start+n:]...)
	return bytes.Join(keep, []byte("\n"))
}
