package check_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"staticest"
	"staticest/internal/check"
	"staticest/internal/gen"
	"staticest/internal/suite"
)

// TestCleanBatch is the fast in-package smoke: a seeded batch passes
// every oracle (the larger batch lives in the repo root's
// TestGenerativeSuite).
func TestCleanBatch(t *testing.T) {
	fails := check.RunAll(3, 25, check.Options{ServerEvery: 10})
	for _, pf := range fails {
		t.Errorf("%s\n%s", pf, pf.Src)
	}
}

// TestShrinkSynthetic pins the reducer's contract on a synthetic
// predicate: it keeps exactly the lines the predicate needs.
func TestShrinkSynthetic(t *testing.T) {
	var lines []string
	for i := 0; i < 64; i++ {
		lines = append(lines, fmt.Sprintf("line %d", i))
	}
	lines[17] = "needle A"
	lines[49] = "needle B"
	src := []byte(strings.Join(lines, "\n"))
	failing := func(b []byte) bool {
		return bytes.Contains(b, []byte("needle A")) && bytes.Contains(b, []byte("needle B"))
	}
	got := check.Shrink(src, failing)
	if want := "needle A\nneedle B"; string(got) != want {
		t.Errorf("shrink kept %q, want %q", got, want)
	}
	// A non-failing input comes back untouched.
	if out := check.Shrink([]byte("nothing"), failing); string(out) != "nothing" {
		t.Errorf("shrink mutated a passing input: %q", out)
	}
}

// brokenLogical reports whether src, compiled and estimated with the
// deliberately flipped `&&`/`||` heuristic, trips the invariant
// checker on a logical-direction failure.
func brokenLogical(name string, src []byte) bool {
	u, err := staticest.Compile(name, src)
	if err != nil {
		return false
	}
	est := u.Estimate()
	if !check.BreakLogical(est) {
		return false
	}
	for _, f := range check.Invariants(u, est) {
		if strings.Contains(f.Detail, "predicted") {
			return true
		}
	}
	return false
}

// TestInjectedBugCaughtAndShrunk is the acceptance criterion: a
// deliberately flipped logical heuristic is caught by the invariant
// checker on generated programs, and the failing program shrinks to a
// reproducer under 30 lines.
func TestInjectedBugCaughtAndShrunk(t *testing.T) {
	g := gen.New(9)
	var src []byte
	for i := 0; i < 200; i++ {
		cand := g.Program()
		if brokenLogical("inject.c", cand) {
			src = cand
			break
		}
	}
	if src == nil {
		t.Fatal("no generated program tripped the flipped logical heuristic in 200 tries")
	}
	small := check.Shrink(src, func(b []byte) bool { return brokenLogical("inject.c", b) })
	if !brokenLogical("inject.c", small) {
		t.Fatal("shrunk program no longer reproduces")
	}
	nLines := bytes.Count(bytes.TrimRight(small, "\n"), []byte("\n")) + 1
	t.Logf("shrunk from %d to %d lines:\n%s",
		bytes.Count(src, []byte("\n")), nLines, small)
	if nLines >= 30 {
		t.Errorf("reproducer is %d lines, want < 30:\n%s", nLines, small)
	}
}

// TestCleanEstimatesPassInvariants double-checks the injected-bug test
// proves something: the same programs pass when nothing is injected.
func TestCleanEstimatesPassInvariants(t *testing.T) {
	g := gen.New(9)
	for i := 0; i < 50; i++ {
		src := g.Program()
		u, err := staticest.Compile("clean.c", src)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		if fs := check.Invariants(u, u.Estimate()); len(fs) > 0 {
			t.Fatalf("program %d: clean estimates fail invariants: %v\n%s", i, fs, src)
		}
	}
}

// TestOracleSelection pins Options.Oracles filtering and the "all"
// alias.
func TestOracleSelection(t *testing.T) {
	src := gen.Source(21)
	if fs := check.Run("sel.c", src, check.Options{Oracles: []string{"invariants"}}); len(fs) > 0 {
		t.Errorf("invariants-only run failed: %v", fs)
	}
	if fs := check.Run("sel.c", src, check.Options{Oracles: []string{"all"}}); len(fs) > 0 {
		t.Errorf("all-oracle run failed: %v", fs)
	}
}

// TestBatchOracle runs the batch-vs-sequential equivalence check
// directly: on a generated program and on a real suite program, a batch
// response must be byte-identical per item to sequential single calls.
func TestBatchOracle(t *testing.T) {
	if fs := check.BatchOracle("batch_gen.c", gen.Source(11)); len(fs) > 0 {
		t.Errorf("generated program: %v", fs)
	}
	p, err := suite.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	if fs := check.BatchOracle(p.Name+".c", []byte(p.Source)); len(fs) > 0 {
		t.Errorf("suite program: %v", fs)
	}
}

// TestReuseOracleSuite runs the reuse oracle over suite programs with
// array accesses, on their real inputs — the measured stack-distance
// accounting must hold on full-size traces, not just generated toys.
func TestReuseOracleSuite(t *testing.T) {
	for _, name := range []string{"compress", "eqntott", "cholesky"} {
		p, err := suite.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		u, err := staticest.Compile(p.Name+".c", []byte(p.Source))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		in := p.Inputs[0]
		for _, f := range check.ReuseOracle(u, staticest.RunOptions{Args: in.Args, Stdin: in.Stdin}) {
			t.Errorf("%s: %s", name, f)
		}
	}
}
