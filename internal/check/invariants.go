// Package check is the invariant checker and differential-oracle
// harness behind the generative test suite (cmd/stress and
// TestGenerativeSuite). Given any program the pipeline accepts — in
// practice the output of internal/gen — it verifies structural
// invariants of the static estimates (probabilities well-formed,
// heuristic directions consistent, Markov solutions conserving flow)
// and runs differential oracles across pipeline layers: full vs sparse
// profiles must reconstruct exactly, inlined programs must fold to
// identical profiles, estimates must survive semantics-preserving
// mutations, and the HTTP service must answer byte-identically to
// direct library calls.
//
// The entry points are Run (one program, all oracles) and RunAll (a
// seeded batch). Shrink reduces a failing program to a minimal
// reproducer.
package check

import (
	"fmt"
	"math"

	"staticest"
	"staticest/internal/cast"
	"staticest/internal/cfg"
	"staticest/internal/core"
	"staticest/internal/ctypes"
	"staticest/internal/fold"
)

// Failure is one violated invariant or oracle disagreement.
type Failure struct {
	Oracle string // "invariants", "sparse", "inline", "metamorphic", "server"
	Detail string
}

func (f Failure) String() string { return f.Oracle + ": " + f.Detail }

// probEps absorbs float noise in probability sums; freqEps is the
// relative tolerance for flow-conservation residuals.
const (
	probEps = 1e-9
	freqEps = 1e-6
)

// Invariants checks every structural property the estimates must
// satisfy regardless of program: branch probabilities in [0,1] with
// heuristic-consistent directions, switch distributions summing to 1,
// frequencies finite and non-negative, and Markov intra solutions
// conserving flow (each block's frequency equals its probability-
// weighted inflow, plus 1 at the entry).
func Invariants(u *staticest.Unit, est *staticest.Estimates) []Failure {
	var out []Failure
	fail := func(format string, args ...any) {
		out = append(out, Failure{Oracle: "invariants", Detail: fmt.Sprintf(format, args...)})
	}

	sp := u.Sem
	hi := est.Config.TakenProb
	lo := 1 - hi

	// Branch predictions: range, then direction per heuristic. The
	// direction rules mirror internal/core/branchpred.go on purpose:
	// they are how a flipped heuristic (probability still in range) is
	// caught.
	for i, bp := range est.Pred.Branch {
		if math.IsNaN(bp.ProbTrue) || bp.ProbTrue < 0 || bp.ProbTrue > 1 {
			fail("branch %d: ProbTrue %v out of [0,1]", i, bp.ProbTrue)
			continue
		}
		var cond cast.Expr
		if i < len(sp.BranchSites) {
			cond = sp.BranchSites[i].Stmt.CondExpr()
		}
		switch bp.Heuristic {
		case "const":
			if !bp.Constant {
				fail("branch %d: heuristic const without Constant", i)
			}
			want := 0.0
			if bp.ConstTrue {
				want = 1.0
			}
			if bp.ProbTrue != want {
				fail("branch %d: const %v but ProbTrue %v", i, bp.ConstTrue, bp.ProbTrue)
			}
		case "loop":
			if !sp.BranchSites[i].Stmt.IsLoop() {
				fail("branch %d: loop heuristic on a non-loop branch", i)
			}
			if bp.ProbTrue < 0.5 {
				fail("branch %d: loop continuation predicted unlikely (%v)", i, bp.ProbTrue)
			}
		case "pointer":
			if dir, ok := pointerDirection(cond); ok && dir != (bp.ProbTrue > 0.5) {
				fail("branch %d: pointer heuristic direction flipped (ProbTrue %v for %s-shape)",
					i, bp.ProbTrue, map[bool]string{true: "likely", false: "unlikely"}[dir])
			}
		case "opcode":
			if b, ok := cond.(*cast.Binary); ok {
				if b.Op == cast.Eq && bp.ProbTrue > 0.5 {
					fail("branch %d: `==` predicted likely (%v)", i, bp.ProbTrue)
				}
				if b.Op == cast.Ne && bp.ProbTrue < 0.5 {
					fail("branch %d: `!=` predicted unlikely (%v)", i, bp.ProbTrue)
				}
			}
		case "logical":
			if l, ok := cond.(*cast.Logical); ok {
				if l.AndAnd && bp.ProbTrue > 0.5 {
					fail("branch %d: `&&` condition predicted likely (%v)", i, bp.ProbTrue)
				}
				if !l.AndAnd && bp.ProbTrue < 0.5 {
					fail("branch %d: `||` condition predicted unlikely (%v)", i, bp.ProbTrue)
				}
			}
		case "call", "store", "return":
			if bp.ProbTrue != hi && bp.ProbTrue != lo {
				fail("branch %d: %s heuristic with ProbTrue %v (want %v or %v)",
					i, bp.Heuristic, bp.ProbTrue, lo, hi)
			}
		case "none":
			if bp.ProbTrue != 0.5 {
				fail("branch %d: no heuristic fired but ProbTrue %v != 0.5", i, bp.ProbTrue)
			}
		default:
			fail("branch %d: unknown heuristic %q", i, bp.Heuristic)
		}
	}

	// Switch predictions: a probability distribution per site.
	for i, probs := range est.Pred.Switch {
		sum := 0.0
		for a, p := range probs {
			if math.IsNaN(p) || p < 0 || p > 1 {
				fail("switch %d arm %d: probability %v out of [0,1]", i, a, p)
			}
			sum += p
		}
		if math.Abs(sum-1) > probEps {
			fail("switch %d: arm probabilities sum to %v, not 1", i, sum)
		}
	}

	// Intra-procedural frequencies: finite, non-negative, entry >= 1
	// per entry unit for the AST estimators.
	for fi, g := range u.CFG.Graphs {
		name := g.Fn.Obj.Name
		for _, res := range []struct {
			kind string
			r    *core.IntraResult
		}{
			{"loop", est.IntraLoop[fi]},
			{"smart", est.IntraSmart[fi]},
			{"markov", est.IntraMarkov[fi]},
		} {
			for b, f := range res.r.BlockFreq {
				if math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
					fail("%s intra %s: block b%d frequency %v", res.kind, name, b, f)
				}
			}
		}
		// Markov flow conservation only holds for true Markov solutions
		// (the AST fallback ignores breaks and early returns).
		if m := est.IntraMarkov[fi]; !m.Fallback {
			checkFlow(g, m.BlockFreq, est.Pred, est.Config, name, fail)
		}
	}

	// Invocation and call-site estimates: finite and non-negative; main
	// is invoked at least its injected unit.
	mainIdx := -1
	if sp.Main != nil {
		mainIdx = sp.Main.Obj.FuncIndex
	}
	for _, inv := range []struct {
		kind    string
		v       []float64
		perFunc bool // invocation-indexed (else call-site-indexed)
	}{
		{"call_site", est.Inter.CallSite, true},
		{"direct", est.Inter.Direct, true},
		{"all_rec", est.Inter.AllRec, true},
		{"all_rec2", est.Inter.AllRec2, true},
		{"markov", est.InterMarkov.Inv, true},
		{"site_direct", est.SiteFreqDirect, false},
		{"site_markov", est.SiteFreqMarkov, false},
	} {
		for j, f := range inv.v {
			if math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
				fail("%s estimate %d: %v", inv.kind, j, f)
			}
		}
		if inv.perFunc && mainIdx >= 0 && inv.v[mainIdx] < 1-probEps {
			fail("%s estimate: main invoked %v times, want >= 1", inv.kind, inv.v[mainIdx])
		}
	}
	return out
}

// checkFlow verifies the Markov intra solution against its own defining
// equations: freq(entry) = 1 + inflow(entry); freq(b) = inflow(b)
// elsewhere, with inflow(b) = sum over preds p of ArcProbs(p)[i]*freq(p)
// for every successor slot i of p that targets b.
func checkFlow(g *cfg.Graph, freq []float64, pred *core.Predictions, conf core.Config,
	name string, fail func(string, ...any)) {
	// Accumulate inflow from the successor side, exactly as the solver
	// builds its matrix (iterating Preds would double-count parallel
	// arcs: a branch with both arms targeting one block lists the
	// predecessor once per edge).
	inflow := make([]float64, len(g.Blocks))
	for _, blk := range g.Blocks {
		probs := core.ArcProbs(blk, pred, conf)
		for i, s := range blk.Succs {
			if i < len(probs) {
				inflow[s.ID] += probs[i] * freq[blk.ID]
			}
		}
	}
	for _, blk := range g.Blocks {
		want := inflow[blk.ID]
		if blk == g.Entry {
			want++
		}
		got := freq[blk.ID]
		if diff := math.Abs(got - want); diff > freqEps*(1+math.Abs(want)) {
			fail("markov intra %s: block b%d frequency %v, inflow says %v", name, blk.ID, got, want)
		}
	}
}

// pointerDirection reports the expected prediction direction of a
// pointer-heuristic condition (true = likely), mirroring
// core.pointerHeuristic. ok is false when the shape is not one the
// heuristic recognizes.
func pointerDirection(cond cast.Expr) (likely, ok bool) {
	isPtr := func(e cast.Expr) bool {
		t := e.Type()
		if t == nil {
			return false
		}
		return t.Kind == ctypes.Ptr || t.Kind == ctypes.Array || t.Kind == ctypes.Func
	}
	isNull := func(e cast.Expr) bool {
		c, ok := fold.Expr(e)
		return ok && !c.IsFloat && c.I == 0
	}
	switch x := cond.(type) {
	case *cast.Ident, *cast.Member, *cast.Index, *cast.Call:
		if isPtr(cond) {
			return true, true
		}
	case *cast.Unary:
		if x.Op == cast.LogNot && isPtr(x.X) {
			return false, true
		}
	case *cast.Binary:
		if x.Op == cast.Eq || x.Op == cast.Ne {
			lp, rp := isPtr(x.X), isPtr(x.Y)
			if (lp && (rp || isNull(x.Y))) || (rp && (lp || isNull(x.X))) {
				return x.Op == cast.Ne, true
			}
		}
	}
	return false, false
}

// ProfileInvariants checks a measured full-instrumentation profile for
// internal consistency: the block-count total equals the interpreter's
// step count, main ran exactly once, and every branch/switch site's
// outcome counts sum to its block's execution count.
func ProfileInvariants(u *staticest.Unit, res *staticest.RunResult) []Failure {
	var out []Failure
	fail := func(format string, args ...any) {
		out = append(out, Failure{Oracle: "invariants", Detail: fmt.Sprintf(format, args...)})
	}
	p := res.Profile
	if p == nil {
		fail("full run produced no profile")
		return out
	}
	if total := p.TotalBlockCount(); total != float64(res.Steps) {
		fail("profile block total %v != interpreter steps %d", total, res.Steps)
	}
	if mi := u.Sem.Main.Obj.FuncIndex; p.FuncCalls[mi] != 1 {
		fail("main invoked %v times, want exactly 1", p.FuncCalls[mi])
	}
	for fi, g := range u.CFG.Graphs {
		for _, blk := range g.Blocks {
			n := p.BlockCounts[fi][blk.ID]
			switch blk.Term {
			case cfg.TermCond:
				// Outcomes can undershoot the block count: a condition
				// whose evaluation calls exit() executes the block but
				// never records a direction. They can never overshoot.
				if s := blk.BranchSite; s >= 0 {
					if sum := p.BranchTaken[s] + p.BranchNot[s]; sum > n {
						fail("branch %d: taken %v + not %v exceeds block count %v",
							s, p.BranchTaken[s], p.BranchNot[s], n)
					}
				}
			case cfg.TermSwitch:
				if s := blk.SwitchSite; s >= 0 {
					sum := 0.0
					for _, c := range p.SwitchArm[s] {
						sum += c
					}
					if sum > n {
						fail("switch %d: arm counts sum %v exceeds block count %v", s, sum, n)
					}
				}
			}
		}
	}
	for i, c := range p.CallSiteCounts {
		if c < 0 {
			fail("call site %d: negative count %v", i, c)
		}
	}
	return out
}

// profileDiffFailures wraps probes.Diff-style mismatch strings.
func profileDiffFailures(oracle string, diffs []string) []Failure {
	out := make([]Failure, 0, len(diffs))
	for _, d := range diffs {
		out = append(out, Failure{Oracle: oracle, Detail: d})
	}
	return out
}
