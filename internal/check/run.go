package check

import (
	"fmt"

	"staticest"
	"staticest/internal/gen"
)

// Oracles names every check Run knows, in execution order.
var Oracles = []string{"invariants", "sparse", "bc", "inline", "reuse", "metamorphic", "ingest", "server", "batch"}

// Options selects which oracles Run executes.
type Options struct {
	// Oracles is the subset to run (nil = all). Names as in Oracles.
	Oracles []string
	// ServerEvery runs the (comparatively slow) server-backed oracles
	// ("server" and "batch") only on every k-th program of a batch; 0
	// means every program.
	ServerEvery int
	// Inject mutates the computed estimates before checking — the
	// deliberately-broken-estimator hook used to prove the harness can
	// catch a real bug (see BreakLogical).
	Inject func(*staticest.Estimates)
	// Obs, when non-nil, records each checked program's compile and run
	// under the usual pipeline spans and counters (cmd/stress wires the
	// common -trace/-metrics flags to it). Nil disables recording.
	Obs *staticest.Observer
}

func (o Options) wants(name string) bool {
	if len(o.Oracles) == 0 {
		return true
	}
	for _, n := range o.Oracles {
		if n == name || n == "all" {
			return true
		}
	}
	return false
}

// Run compiles one program and runs the selected oracles, returning
// every failure (nil means the program passes).
func Run(name string, src []byte, opt Options) []Failure {
	u, err := staticest.CompileObs(name, src, opt.Obs)
	if err != nil {
		return []Failure{{Oracle: "compile", Detail: err.Error()}}
	}
	var out []Failure
	est := u.Estimate()
	if opt.Inject != nil {
		opt.Inject(est)
	}
	if opt.wants("invariants") {
		out = append(out, Invariants(u, est)...)
		res, err := u.Run(staticest.RunOptions{})
		if err != nil {
			// Labeled distinctly from "invariants": a shrink predicate
			// matching on the invariants oracle must not accept
			// candidates that merely fail to execute (e.g. an empty
			// program with no main).
			out = append(out, Failure{Oracle: "run", Detail: err.Error()})
		} else {
			out = append(out, ProfileInvariants(u, res)...)
		}
	}
	if opt.wants("sparse") {
		out = append(out, SparseOracle(u)...)
	}
	if opt.wants("bc") {
		out = append(out, BytecodeOracle(u)...)
	}
	if opt.wants("inline") {
		out = append(out, InlineOracle(u)...)
	}
	if opt.wants("reuse") {
		out = append(out, ReuseOracle(u, staticest.RunOptions{})...)
	}
	if opt.wants("metamorphic") {
		out = append(out, MetamorphicOracle(name, src, u, est)...)
	}
	if opt.wants("ingest") {
		out = append(out, IngestOracle(u)...)
	}
	if opt.wants("server") {
		out = append(out, ServerOracle(name, src)...)
	}
	if opt.wants("batch") {
		out = append(out, BatchOracle(name, src)...)
	}
	return out
}

// ProgramFailure ties a batch failure back to the (seed, index) that
// regenerates it.
type ProgramFailure struct {
	Index    int // 1-based program index within the seed's sequence
	Seed     int64
	Src      []byte
	Failures []Failure
}

func (pf ProgramFailure) String() string {
	return fmt.Sprintf("seed %d program %d: %d failure(s), first: %s",
		pf.Seed, pf.Index, len(pf.Failures), pf.Failures[0])
}

// RunAll generates n programs from seed and checks each one, honoring
// opt.ServerEvery for the server oracle. It returns every failing
// program; an empty slice is a clean batch.
func RunAll(seed int64, n int, opt Options) []ProgramFailure {
	g := gen.New(seed)
	var out []ProgramFailure
	for i := 1; i <= n; i++ {
		src := g.Program()
		po := opt
		if opt.ServerEvery > 1 && i%opt.ServerEvery != 0 {
			names := effectiveOracles(po)
			if po.wants("server") {
				names = without(names, "server")
			}
			if po.wants("batch") {
				names = without(names, "batch")
			}
			po.Oracles = names
		}
		name := fmt.Sprintf("gen_s%d_p%d.c", seed, i)
		if fs := Run(name, src, po); len(fs) > 0 {
			out = append(out, ProgramFailure{Index: i, Seed: seed, Src: src, Failures: fs})
		}
	}
	return out
}

func effectiveOracles(o Options) []string {
	if len(o.Oracles) == 0 {
		return Oracles
	}
	for _, n := range o.Oracles {
		if n == "all" {
			return Oracles
		}
	}
	return o.Oracles
}

func without(names []string, drop string) []string {
	out := make([]string, 0, len(names))
	for _, n := range names {
		if n != drop {
			out = append(out, n)
		}
	}
	return out
}

// BreakLogical flips every logical-heuristic branch prediction in the
// estimates — the deliberately injected estimator bug the acceptance
// test shrinks. Returns whether any prediction was flipped.
func BreakLogical(est *staticest.Estimates) bool {
	flipped := false
	for i := range est.Pred.Branch {
		if est.Pred.Branch[i].Heuristic == "logical" {
			est.Pred.Branch[i].ProbTrue = 1 - est.Pred.Branch[i].ProbTrue
			flipped = true
		}
	}
	return flipped
}
