package interp

import (
	"fmt"
	"strings"
)

// formatPrintf renders a printf-style format with the C conventions the
// benchmark suite uses: %d %i %u %x %X %o %c %s %p %f %e %g %% with
// optional '-', '0', '+' and ' ' flags, width, precision, and the 'l'
// length modifier.
func (m *Machine) formatPrintf(format []byte, args []value) []byte {
	var out []byte
	ai := 0
	nextArg := func() value {
		if ai >= len(args) {
			m.fail("printf: not enough arguments for format %q", string(format))
		}
		v := args[ai]
		ai++
		return v
	}
	i := 0
	for i < len(format) {
		c := format[i]
		if c != '%' {
			out = append(out, c)
			i++
			continue
		}
		i++
		if i >= len(format) {
			out = append(out, '%')
			break
		}
		if format[i] == '%' {
			out = append(out, '%')
			i++
			continue
		}
		// Flags.
		var flags string
		for i < len(format) && strings.IndexByte("-0+ #", format[i]) >= 0 {
			flags += string(format[i])
			i++
		}
		// Width.
		width := -1
		if i < len(format) && format[i] == '*' {
			width = int(nextArg().i)
			i++
		} else {
			for i < len(format) && format[i] >= '0' && format[i] <= '9' {
				if width < 0 {
					width = 0
				}
				width = width*10 + int(format[i]-'0')
				i++
			}
		}
		// Precision.
		prec := -1
		if i < len(format) && format[i] == '.' {
			i++
			prec = 0
			if i < len(format) && format[i] == '*' {
				prec = int(nextArg().i)
				i++
			} else {
				for i < len(format) && format[i] >= '0' && format[i] <= '9' {
					prec = prec*10 + int(format[i]-'0')
					i++
				}
			}
		}
		// Length modifiers (l, ll, h) — widths are already canonical.
		for i < len(format) && (format[i] == 'l' || format[i] == 'h') {
			i++
		}
		if i >= len(format) {
			break
		}
		verb := format[i]
		i++

		gofmt := "%"
		gofmt += strings.ReplaceAll(flags, " ", " ")
		if width >= 0 {
			gofmt += fmt.Sprintf("%d", width)
		}
		if prec >= 0 {
			gofmt += fmt.Sprintf(".%d", prec)
		}
		switch verb {
		case 'd', 'i':
			v := nextArg()
			out = append(out, fmt.Sprintf(gofmt+"d", v.i)...)
		case 'u':
			v := nextArg()
			out = append(out, fmt.Sprintf(gofmt+"d", uint64(v.i))...)
		case 'x':
			v := nextArg()
			out = append(out, fmt.Sprintf(gofmt+"x", uint64(v.i))...)
		case 'X':
			v := nextArg()
			out = append(out, fmt.Sprintf(gofmt+"X", uint64(v.i))...)
		case 'o':
			v := nextArg()
			out = append(out, fmt.Sprintf(gofmt+"o", uint64(v.i))...)
		case 'c':
			v := nextArg()
			out = append(out, byte(v.i))
		case 's':
			v := nextArg()
			s := m.cString(uint64(v.i))
			out = append(out, fmt.Sprintf(gofmt+"s", string(s))...)
		case 'p':
			v := nextArg()
			out = append(out, fmt.Sprintf("0x%x", uint64(v.i))...)
		case 'f', 'F':
			v := nextArg()
			if prec < 0 {
				gofmt += ".6"
			}
			out = append(out, fmt.Sprintf(gofmt+"f", toF(v))...)
		case 'e', 'E':
			v := nextArg()
			if prec < 0 {
				gofmt += ".6"
			}
			out = append(out, fmt.Sprintf(gofmt+string(verb), toF(v))...)
		case 'g', 'G':
			v := nextArg()
			out = append(out, fmt.Sprintf(gofmt+string(verb), toF(v))...)
		default:
			m.fail("printf: unsupported verb %%%c", verb)
		}
	}
	return out
}
