package interp_test

import (
	"strings"
	"testing"

	"staticest/internal/interp"
)

func TestLinkedListManipulation(t *testing.T) {
	out := runOutput(t, `
struct node { int val; struct node *next; };
struct node *push(struct node *head, int v) {
	struct node *n = (struct node *)malloc(sizeof(struct node));
	n->val = v;
	n->next = head;
	return n;
}
int sum(struct node *head) {
	int s = 0;
	while (head) {
		s += head->val;
		head = head->next;
	}
	return s;
}
struct node *reverse(struct node *head) {
	struct node *prev = 0;
	while (head) {
		struct node *next = head->next;
		head->next = prev;
		prev = head;
		head = next;
	}
	return prev;
}
int main(void) {
	struct node *list = 0;
	int i;
	for (i = 1; i <= 5; i++) list = push(list, i * i);
	printf("%d %d\n", sum(list), list->val);
	list = reverse(list);
	printf("%d\n", list->val);
	return 0;
}`)
	if out != "55 25\n1\n" {
		t.Errorf("output %q", out)
	}
}

func TestFunctionPointerStructMembers(t *testing.T) {
	// The xlisp/gs dispatch pattern: a table of named operations.
	out := runOutput(t, `
struct op { char *name; int (*fn)(int, int); };
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
struct op ops[] = {{"add", add}, {"mul", mul}};
int run_op(char *name, int a, int b) {
	int i;
	for (i = 0; i < 2; i++)
		if (strcmp(ops[i].name, name) == 0)
			return ops[i].fn(a, b);
	return -1;
}
int main(void) {
	printf("%d %d %d\n", run_op("add", 3, 4), run_op("mul", 3, 4), run_op("nope", 1, 1));
	return 0;
}`)
	if out != "7 12 -1\n" {
		t.Errorf("output %q", out)
	}
}

func TestNestedStructsAndArrays(t *testing.T) {
	out := runOutput(t, `
struct inner { int vals[3]; };
struct outer { struct inner rows[2]; int tag; };
struct outer g;
int main(void) {
	int i, j;
	for (i = 0; i < 2; i++)
		for (j = 0; j < 3; j++)
			g.rows[i].vals[j] = i * 10 + j;
	g.tag = 99;
	printf("%d %d %d\n", g.rows[0].vals[2], g.rows[1].vals[0], g.tag);
	struct inner *p = &g.rows[1];
	p->vals[1] = 777;
	printf("%d\n", g.rows[1].vals[1]);
	printf("%d\n", (int)sizeof(struct outer));
	return 0;
}`)
	if out != "2 10 99\n777\n28\n" {
		t.Errorf("output %q", out)
	}
}

func TestPointerToPointer(t *testing.T) {
	out := runOutput(t, `
void set(int **pp, int *target) { *pp = target; }
int main(void) {
	int a = 5, b = 9;
	int *p = &a;
	set(&p, &b);
	printf("%d\n", *p);
	*p = 11;
	printf("%d %d\n", a, b);
	return 0;
}`)
	if out != "9\n5 11\n" {
		t.Errorf("output %q", out)
	}
}

func TestMatrixThroughPointers(t *testing.T) {
	out := runOutput(t, `
#define N 3
double mat[N][N];
double row_sum(double *row, int n) {
	int j;
	double s = 0.0;
	for (j = 0; j < n; j++) s += row[j];
	return s;
}
int main(void) {
	int i, j;
	for (i = 0; i < N; i++)
		for (j = 0; j < N; j++)
			mat[i][j] = i + j * 0.5;
	printf("%.1f %.1f\n", row_sum(mat[0], N), row_sum(mat[2], N));
	return 0;
}`)
	if out != "1.5 7.5\n" {
		t.Errorf("output %q", out)
	}
}

func TestCharPointerIdioms(t *testing.T) {
	out := runOutput(t, `
int my_strlen(char *s) {
	char *p = s;
	while (*p) p++;
	return (int)(p - s);
}
void my_strcpy(char *dst, char *src) {
	while ((*dst++ = *src++))
		;
}
int main(void) {
	char buf[32];
	my_strcpy(buf, "pointer idioms");
	printf("%d %s\n", my_strlen(buf), buf);
	return 0;
}`)
	if out != "14 pointer idioms\n" {
		t.Errorf("output %q", out)
	}
}

func TestCommaAndCompoundAssign(t *testing.T) {
	out := runOutput(t, `
int main(void) {
	int a = 1, b = 2, c;
	c = (a += 3, b *= a, a + b);
	printf("%d %d %d\n", a, b, c);
	int x = 0xF0;
	x |= 0x0F; x &= 0x3F; x ^= 0x01; x <<= 2; x >>= 1;
	printf("%d\n", x);
	return 0;
}`)
	if out != "4 8 12\n124\n" {
		t.Errorf("output %q", out)
	}
}

func TestEnumsAndTypedef(t *testing.T) {
	out := runOutput(t, `
typedef struct pair { int a, b; } Pair;
enum state { IDLE, BUSY = 5, DONE };
int main(void) {
	Pair p;
	p.a = IDLE;
	p.b = DONE;
	printf("%d %d %d\n", p.a, p.b, BUSY);
	return 0;
}`)
	if out != "0 6 5\n" {
		t.Errorf("output %q", out)
	}
}

func TestShadowingAndScopes(t *testing.T) {
	out := runOutput(t, `
int x = 100;
int main(void) {
	printf("%d ", x);
	int x = 1;
	{
		int x = 2;
		printf("%d ", x);
	}
	printf("%d\n", x);
	return 0;
}`)
	if out != "100 2 1\n" {
		t.Errorf("output %q", out)
	}
}

func TestNegativeModAndDiv(t *testing.T) {
	// C99 truncation toward zero.
	out := runOutput(t, `
int main(void) {
	printf("%d %d %d %d\n", -7 / 2, -7 % 2, 7 / -2, 7 % -2);
	return 0;
}`)
	if out != "-3 -1 -3 1\n" {
		t.Errorf("output %q", out)
	}
}

func TestProfileFunctionPointerCalls(t *testing.T) {
	// Indirect calls must be profiled as call sites and invocations.
	res := run(t, `
int f(void) { return 1; }
int g(void) { return 2; }
int main(void) {
	int (*fp)(void);
	int i, s = 0;
	for (i = 0; i < 6; i++) {
		fp = (i % 3 == 0) ? f : g;
		s += fp();
	}
	return s;
}`, interp.Options{})
	if res.ExitCode != 10 { // f twice (i=0,3), g four times
		t.Fatalf("exit %d, want 10", res.ExitCode)
	}
	p := res.Profile
	if p.FuncCalls[0] != 2 || p.FuncCalls[1] != 4 {
		t.Errorf("f=%g g=%g, want 2/4", p.FuncCalls[0], p.FuncCalls[1])
	}
	// The single indirect site fires 6 times.
	total := 0.0
	for _, c := range p.CallSiteCounts {
		total += c
	}
	if total != 6 {
		t.Errorf("site counts %v, want total 6", p.CallSiteCounts)
	}
}

func TestDeterministicProfiles(t *testing.T) {
	src := `
int main(void) {
	int i, s = 0;
	srand(42);
	for (i = 0; i < 100; i++) s += rand() % 10;
	printf("%d\n", s);
	return 0;
}`
	r1 := run(t, src, interp.Options{})
	r2 := run(t, src, interp.Options{})
	if string(r1.Output) != string(r2.Output) || r1.Steps != r2.Steps {
		t.Error("interpreter is not deterministic")
	}
	for i := range r1.Profile.BranchTaken {
		if r1.Profile.BranchTaken[i] != r2.Profile.BranchTaken[i] {
			t.Error("branch profiles differ between identical runs")
		}
	}
}

func TestOutputMatchesStrchrPaperExample(t *testing.T) {
	// Cross-check the builtin strchr against the paper's hand-rolled one.
	out := runOutput(t, `
char *my_strchr(char *str, int c) {
	while (*str) {
		if (*str == c) return str;
		str++;
	}
	return 0;
}
int main(void) {
	char *s = "hello world";
	char *a = my_strchr(s, 'o');
	char *b = strchr(s, 'o');
	printf("%d %d %d\n", a == b, (int)(a - s), *a);
	return 0;
}`)
	if !strings.HasPrefix(out, "1 4 111") {
		t.Errorf("output %q", out)
	}
}
