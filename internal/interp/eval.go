package interp

import (
	"math"

	"staticest/internal/cast"
	"staticest/internal/ctypes"
)

// value is a runtime value. Integers and encoded pointers live in i;
// floats in f. Struct values are represented by their address in i.
type value struct {
	typ *ctypes.Type
	i   int64
	f   float64
}

// Shared pointer-type singletons: the hot paths (string literals,
// builtin dispatch, array decay) must not allocate a fresh Type per use.
var (
	charPtrType = ctypes.PointerTo(ctypes.CharType)
	voidPtrType = ctypes.PointerTo(ctypes.VoidType)
)

func intValue(v int64, t *ctypes.Type) value { return value{typ: t, i: truncInt(v, t)} }
func floatValue(v float64, t *ctypes.Type) value {
	if t.Kind == ctypes.Float {
		v = float64(float32(v))
	}
	return value{typ: t, f: v}
}
func ptrValue(p uint64, t *ctypes.Type) value { return value{typ: t, i: int64(p)} }

func float32Bits(f float32) uint32     { return math.Float32bits(f) }
func float64Bits(f float64) uint64     { return math.Float64bits(f) }
func float32FromBits(b uint32) float32 { return math.Float32frombits(b) }
func float64FromBits(b uint64) float64 { return math.Float64frombits(b) }

// truncInt reduces v to the width and signedness of integer type t.
func truncInt(v int64, t *ctypes.Type) int64 {
	switch t.Kind {
	case ctypes.Char:
		return int64(int8(v))
	case ctypes.UChar:
		return int64(uint8(v))
	case ctypes.Short:
		return int64(int16(v))
	case ctypes.UShort:
		return int64(uint16(v))
	case ctypes.Int:
		return int64(int32(v))
	case ctypes.UInt:
		return int64(uint32(v))
	default: // Long, ULong, Ptr
		return v
	}
}

func isTrue(v value) bool {
	if v.typ.IsFloat() {
		return v.f != 0
	}
	return v.i != 0
}

// convert coerces a value to type t following C conversion rules.
func convert(m *Machine, v value, t *ctypes.Type) value {
	if t.Kind == ctypes.Void {
		return value{typ: t}
	}
	switch {
	case t.IsFloat():
		if v.typ.IsFloat() {
			return floatValue(v.f, t)
		}
		if v.typ.IsUnsigned() {
			return floatValue(float64(uint64(v.i)), t)
		}
		return floatValue(float64(v.i), t)
	case t.IsInteger():
		if v.typ.IsFloat() {
			f := v.f
			if math.IsNaN(f) {
				return intValue(0, t)
			}
			if f > math.MaxInt64 {
				f = math.MaxInt64
			}
			if f < math.MinInt64 {
				f = math.MinInt64
			}
			return intValue(int64(f), t)
		}
		return intValue(v.i, t)
	case t.Kind == ctypes.Ptr:
		if v.typ.IsFloat() {
			m.fail("cannot convert floating value to pointer")
		}
		return value{typ: t, i: v.i}
	case t.Kind == ctypes.Struct:
		return value{typ: t, i: v.i}
	}
	m.fail("unsupported conversion from %s to %s", v.typ, t)
	return value{}
}

// eval evaluates an expression to a value. fr may be nil only while
// evaluating global initializers, which must not touch locals.
func (m *Machine) eval(fr *frame, e cast.Expr) value {
	switch x := e.(type) {
	case *cast.IntLit:
		return intValue(int64(x.Val), x.Type())
	case *cast.FloatLit:
		return floatValue(x.Val, x.Type())
	case *cast.StrLit:
		return ptrValue(encodePtr(m.strSeg[x.DataIndex], 0), charPtrType)
	case *cast.Ident:
		obj := x.Obj
		if obj.Kind == cast.ObjFunc {
			if obj.FuncIndex < 0 {
				m.fail("cannot take the value of builtin %q", obj.Name)
			}
			return ptrValue(encodeFnPtr(obj.FuncIndex), ctypes.PointerTo(obj.Type))
		}
		addr := m.objAddr(fr, obj)
		return m.load(addr, obj.Type)
	case *cast.Unary:
		return m.evalUnary(fr, x)
	case *cast.Postfix:
		addr, t := m.lvalue(fr, x.X)
		old := m.load(addr, t)
		if m.memRefs != nil {
			m.traceAccess(x.X, addr, false)
			m.traceAccess(x.X, addr, true)
		}
		delta := int64(1)
		if !x.Inc {
			delta = -1
		}
		m.store(addr, t, m.addScalar(old, delta))
		return old
	case *cast.Binary:
		return m.evalBinary(fr, x)
	case *cast.Logical:
		l := m.eval(fr, x.X)
		if x.AndAnd {
			if !isTrue(l) {
				return intValue(0, ctypes.IntType)
			}
			return intValue(b2i(isTrue(m.eval(fr, x.Y))), ctypes.IntType)
		}
		if isTrue(l) {
			return intValue(1, ctypes.IntType)
		}
		return intValue(b2i(isTrue(m.eval(fr, x.Y))), ctypes.IntType)
	case *cast.Cond:
		if isTrue(m.eval(fr, x.C)) {
			return m.condArm(fr, x, x.Then)
		}
		return m.condArm(fr, x, x.Else)
	case *cast.Assign:
		addr, t := m.lvalue(fr, x.L)
		var v value
		if x.Op == cast.Plain {
			v = convert(m, m.eval(fr, x.R), t)
		} else {
			cur := m.load(addr, t)
			if m.memRefs != nil {
				m.traceAccess(x.L, addr, false)
			}
			r := m.eval(fr, x.R)
			v = convert(m, m.binop(x.Op.BinOp(), cur, r), t)
		}
		m.store(addr, t, v)
		if m.memRefs != nil {
			m.traceAccess(x.L, addr, true)
		}
		return v
	case *cast.Call:
		return m.evalCall(fr, x)
	case *cast.Index:
		addr, t := m.lvalue(fr, x)
		if m.memRefs != nil {
			m.traceAccess(x, addr, false)
		}
		return m.load(addr, t)
	case *cast.Member:
		addr, t := m.lvalue(fr, x)
		if m.memRefs != nil {
			m.traceAccess(x, addr, false)
		}
		return m.load(addr, t)
	case *cast.SizeofExpr:
		return intValue(x.X.Type().Size(), ctypes.LongType)
	case *cast.SizeofType:
		return intValue(x.Of.Size(), ctypes.LongType)
	case *cast.CastExpr:
		return convert(m, m.eval(fr, x.X), castTarget(x.To))
	case *cast.Comma:
		m.eval(fr, x.X)
		return m.eval(fr, x.Y)
	}
	m.fail("interp: unhandled expression %T", e)
	return value{}
}

// castTarget maps a syntactic cast type to a value type (arrays cannot be
// cast targets; void stays void).
func castTarget(t *ctypes.Type) *ctypes.Type { return t }

func (m *Machine) condArm(fr *frame, c *cast.Cond, arm cast.Expr) value {
	v := m.eval(fr, arm)
	if c.Type() != nil && c.Type().Kind != ctypes.Void {
		return convert(m, v, c.Type())
	}
	return v
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// objAddr returns the storage address of a variable object.
func (m *Machine) objAddr(fr *frame, o *cast.Object) uint64 {
	if o.Global {
		return encodePtr(m.globalSeg[o.GlobalIndex], 0)
	}
	if fr == nil {
		m.fail("reference to local %q outside a function", o.Name)
	}
	return m.localAddr(fr, o)
}

// lvalue computes the address and type of an assignable expression.
func (m *Machine) lvalue(fr *frame, e cast.Expr) (uint64, *ctypes.Type) {
	switch x := e.(type) {
	case *cast.Ident:
		if x.Obj.Kind == cast.ObjFunc {
			m.fail("function %q used as lvalue", x.Name)
		}
		return m.objAddr(fr, x.Obj), x.Obj.Type
	case *cast.Unary:
		if x.Op == cast.Deref {
			v := m.eval(fr, x.X)
			if v.i == 0 {
				m.curPos = x.Pos()
				m.fail("null pointer dereference")
			}
			return uint64(v.i), x.Type()
		}
	case *cast.Index:
		base := m.eval(fr, x.X) // arrays decay to pointers in eval
		idx := m.eval(fr, x.I)
		t := x.Type()
		if base.i == 0 {
			m.curPos = x.Pos()
			m.fail("indexing a null pointer")
		}
		return uint64(base.i + idx.i*t.Size()), t
	case *cast.Member:
		if x.Arrow {
			base := m.eval(fr, x.X)
			if base.i == 0 {
				m.curPos = x.Pos()
				m.fail("-> on null pointer")
			}
			return uint64(base.i) + uint64(x.Field.Offset), x.Field.Type
		}
		addr, _ := m.lvalue(fr, x.X)
		return addr + uint64(x.Field.Offset), x.Field.Type
	}
	m.fail("interp: expression is not an lvalue (%T)", e)
	return 0, nil
}

func (m *Machine) evalUnary(fr *frame, x *cast.Unary) value {
	switch x.Op {
	case cast.Neg:
		v := m.eval(fr, x.X)
		if v.typ.IsFloat() {
			return floatValue(-v.f, x.Type())
		}
		return intValue(-v.i, x.Type())
	case cast.BitNot:
		v := m.eval(fr, x.X)
		return intValue(^v.i, x.Type())
	case cast.LogNot:
		return intValue(b2i(!isTrue(m.eval(fr, x.X))), ctypes.IntType)
	case cast.Deref:
		v := m.eval(fr, x.X)
		if v.i == 0 {
			m.curPos = x.Pos()
			m.fail("null pointer dereference")
		}
		if m.memRefs != nil {
			m.traceAccess(x, uint64(v.i), false)
		}
		return m.load(uint64(v.i), x.Type())
	case cast.Addr:
		if id, ok := x.X.(*cast.Ident); ok && id.Obj.Kind == cast.ObjFunc {
			if id.Obj.FuncIndex < 0 {
				m.fail("cannot take the address of builtin %q", id.Obj.Name)
			}
			return ptrValue(encodeFnPtr(id.Obj.FuncIndex), x.Type())
		}
		addr, _ := m.lvalue(fr, x.X)
		return ptrValue(addr, x.Type())
	case cast.PreInc, cast.PreDec:
		addr, t := m.lvalue(fr, x.X)
		old := m.load(addr, t)
		if m.memRefs != nil {
			m.traceAccess(x.X, addr, false)
			m.traceAccess(x.X, addr, true)
		}
		delta := int64(1)
		if x.Op == cast.PreDec {
			delta = -1
		}
		nv := m.addScalar(old, delta)
		m.store(addr, t, nv)
		return nv
	}
	m.fail("interp: unhandled unary %s", x.Op)
	return value{}
}

// addScalar adds delta to an integer, float, or pointer value (pointer
// steps by element size).
func (m *Machine) addScalar(v value, delta int64) value {
	switch {
	case v.typ.IsFloat():
		return floatValue(v.f+float64(delta), v.typ)
	case v.typ.Kind == ctypes.Ptr:
		return ptrValue(uint64(v.i+delta*v.typ.Elem.Size()), v.typ)
	default:
		return intValue(v.i+delta, v.typ)
	}
}

func (m *Machine) evalBinary(fr *frame, x *cast.Binary) value {
	l := m.eval(fr, x.X)
	r := m.eval(fr, x.Y)
	m.curPos = x.Pos()
	return m.binop(x.Op, l, r)
}

func (m *Machine) binop(op cast.BinaryOp, l, r value) value {
	// Pointer arithmetic and comparisons.
	lp := l.typ.Kind == ctypes.Ptr
	rp := r.typ.Kind == ctypes.Ptr
	if lp || rp {
		switch op {
		case cast.Add:
			if lp {
				return ptrValue(uint64(l.i+r.i*l.typ.Elem.Size()), l.typ)
			}
			return ptrValue(uint64(r.i+l.i*r.typ.Elem.Size()), r.typ)
		case cast.Sub:
			if lp && rp {
				esz := l.typ.Elem.Size()
				if esz == 0 {
					esz = 1
				}
				return intValue((l.i-r.i)/esz, ctypes.LongType)
			}
			return ptrValue(uint64(l.i-r.i*l.typ.Elem.Size()), l.typ)
		case cast.Eq, cast.Ne, cast.Lt, cast.Gt, cast.Le, cast.Ge:
			return intValue(b2i(cmpInt(op, uint64(l.i), uint64(r.i))), ctypes.IntType)
		}
		m.fail("invalid pointer operation %s", op)
	}

	ct := ctypes.UsualArith(l.typ, r.typ)
	if ct.IsFloat() {
		lf, rf := toF(l), toF(r)
		switch op {
		case cast.Add:
			return floatValue(lf+rf, ct)
		case cast.Sub:
			return floatValue(lf-rf, ct)
		case cast.Mul:
			return floatValue(lf*rf, ct)
		case cast.Div:
			return floatValue(lf/rf, ct)
		case cast.Lt:
			return intValue(b2i(lf < rf), ctypes.IntType)
		case cast.Gt:
			return intValue(b2i(lf > rf), ctypes.IntType)
		case cast.Le:
			return intValue(b2i(lf <= rf), ctypes.IntType)
		case cast.Ge:
			return intValue(b2i(lf >= rf), ctypes.IntType)
		case cast.Eq:
			return intValue(b2i(lf == rf), ctypes.IntType)
		case cast.Ne:
			return intValue(b2i(lf != rf), ctypes.IntType)
		}
		m.fail("invalid floating operation %s", op)
	}

	li := truncInt(l.i, ct)
	ri := truncInt(r.i, ct)
	unsigned := ct.IsUnsigned()
	switch op {
	case cast.Add:
		return intValue(li+ri, ct)
	case cast.Sub:
		return intValue(li-ri, ct)
	case cast.Mul:
		return intValue(li*ri, ct)
	case cast.Div:
		if ri == 0 {
			m.fail("integer division by zero")
		}
		if unsigned {
			return intValue(int64(uint64(li)/uint64(ri)), ct)
		}
		if li == math.MinInt64 && ri == -1 {
			return intValue(li, ct)
		}
		return intValue(li/ri, ct)
	case cast.Rem:
		if ri == 0 {
			m.fail("integer remainder by zero")
		}
		if unsigned {
			return intValue(int64(uint64(li)%uint64(ri)), ct)
		}
		if li == math.MinInt64 && ri == -1 {
			return intValue(0, ct)
		}
		return intValue(li%ri, ct)
	case cast.And:
		return intValue(li&ri, ct)
	case cast.Or:
		return intValue(li|ri, ct)
	case cast.Xor:
		return intValue(li^ri, ct)
	case cast.Shl:
		return intValue(li<<(uint64(ri)&63), ct)
	case cast.Shr:
		if unsigned {
			// Width-aware logical shift.
			switch ct.Kind {
			case ctypes.UInt:
				return intValue(int64(uint32(li)>>(uint64(ri)&63)), ct)
			case ctypes.ULong:
				return intValue(int64(uint64(li)>>(uint64(ri)&63)), ct)
			default:
				return intValue(int64(uint64(truncInt(li, ct))>>(uint64(ri)&63)), ct)
			}
		}
		return intValue(li>>(uint64(ri)&63), ct)
	case cast.Lt, cast.Gt, cast.Le, cast.Ge, cast.Eq, cast.Ne:
		if unsigned {
			return intValue(b2i(cmpInt(op, uint64(li), uint64(ri))), ctypes.IntType)
		}
		var res bool
		switch op {
		case cast.Lt:
			res = li < ri
		case cast.Gt:
			res = li > ri
		case cast.Le:
			res = li <= ri
		case cast.Ge:
			res = li >= ri
		case cast.Eq:
			res = li == ri
		case cast.Ne:
			res = li != ri
		}
		return intValue(b2i(res), ctypes.IntType)
	}
	m.fail("interp: unhandled binary %s", op)
	return value{}
}

func cmpInt(op cast.BinaryOp, a, b uint64) bool {
	switch op {
	case cast.Lt:
		return a < b
	case cast.Gt:
		return a > b
	case cast.Le:
		return a <= b
	case cast.Ge:
		return a >= b
	case cast.Eq:
		return a == b
	case cast.Ne:
		return a != b
	}
	return false
}

func toF(v value) float64 {
	if v.typ.IsFloat() {
		return v.f
	}
	if v.typ.IsUnsigned() {
		return float64(uint64(v.i))
	}
	return float64(v.i)
}

func (m *Machine) evalCall(fr *frame, x *cast.Call) value {
	// Resolve the target first.
	var fnIdx = -1
	var builtinName string
	if callee := x.Callee(); callee != nil {
		if callee.Builtin || callee.FuncIndex < 0 {
			builtinName = callee.Name
		} else {
			fnIdx = callee.FuncIndex
		}
	} else {
		fv := m.eval(fr, x.Fun)
		p := uint64(fv.i)
		if p == 0 {
			m.curPos = x.Pos()
			m.fail("call through null function pointer")
		}
		if !isFnPtr(p) {
			m.curPos = x.Pos()
			m.fail("call through non-function pointer")
		}
		fnIdx = fnPtrIndex(p)
		if fnIdx < 0 || fnIdx >= len(m.sem.Funcs) {
			m.fail("corrupt function pointer")
		}
	}

	args := make([]value, len(x.Args))
	for i, a := range x.Args {
		args[i] = m.eval(fr, a)
	}
	if x.SiteID >= 0 {
		if m.sparse {
			if pi := m.plan.SiteProbe[x.SiteID]; pi >= 0 {
				m.pv[pi]++
			}
		} else {
			m.prof.CallSiteCounts[x.SiteID]++
		}
	}
	m.curPos = x.Pos()
	if builtinName != "" {
		return m.callBuiltin(builtinName, args, x)
	}
	return m.callFunc(fnIdx, args)
}
