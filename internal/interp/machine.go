// Package interp is a CFG-level interpreter for the C subset. It stands
// in for the paper's instrumented native binaries: executing a program on
// an input while recording the exact dynamic counts a profiler would —
// basic-block executions, branch directions, switch arms, function
// invocations, and call-site counts — plus simulated cycles under a
// simple cost model used by the selective-optimization experiment.
package interp

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"

	"staticest/internal/bc"
	"staticest/internal/cast"
	"staticest/internal/cfg"
	"staticest/internal/ctoken"
	"staticest/internal/ctypes"
	"staticest/internal/obs"
	"staticest/internal/probes"
	"staticest/internal/profile"
	"staticest/internal/sem"
)

// Encoded pointers: bits 40..62 hold the segment ID, bits 0..39 the byte
// offset. Bit 62 tags function pointers, whose low bits hold the function
// index. NULL is 0.
const (
	offBits   = 40
	offMask   = (1 << offBits) - 1
	fnPtrTag  = uint64(1) << 62
	maxSegID  = 1<<22 - 1
	stackSize = 1 << 23 // 8 MiB simulated stack
)

func encodePtr(seg uint64, off int64) uint64 { return seg<<offBits | uint64(off)&offMask }
func ptrSeg(p uint64) uint64                 { return (p &^ fnPtrTag) >> offBits }
func ptrOff(p uint64) int64                  { return int64(p & offMask) }
func isFnPtr(p uint64) bool                  { return p&fnPtrTag != 0 }
func encodeFnPtr(idx int) uint64             { return fnPtrTag | uint64(idx) }
func fnPtrIndex(p uint64) int                { return int(p &^ fnPtrTag) }

type segKind int

const (
	segStack segKind = iota
	segGlobal
	segString
	segHeap
)

type segment struct {
	data  []byte
	kind  segKind
	freed bool
	name  string
}

// RuntimeError is a C-level runtime fault (null dereference, out of
// bounds access, division by zero, stack overflow, exhausted step
// budget).
type RuntimeError struct {
	Pos ctoken.Pos
	Msg string
}

func (e *RuntimeError) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("runtime error at %s: %s", e.Pos, e.Msg)
	}
	return "runtime error: " + e.Msg
}

type exitPanic struct{ code int }

// Instrumentation selects how a run is profiled.
type Instrumentation int

// Instrumentation modes.
const (
	// FullInstrumentation counts every basic block, branch outcome,
	// switch arm, function invocation, and call site — the paper's
	// baseline profiler.
	FullInstrumentation Instrumentation = iota
	// SparseInstrumentation increments only the probe counters placed
	// by a probes.Plan; the complete profile is recovered afterwards
	// with probes.Reconstruct. Requires Options.Plan.
	SparseInstrumentation
)

// Options configures a run.
type Options struct {
	// Args are the program arguments (argv[1:]; argv[0] is the program
	// name).
	Args []string
	// Stdin is the byte stream getchar consumes.
	Stdin []byte
	// MaxSteps bounds the number of basic-block executions (0 means the
	// default of 200 million).
	MaxSteps int64
	// OptFactor scales the per-block cost of "optimized" functions
	// (indexed by function index); unset entries cost 1.0. Used by the
	// Figure 10 selective-optimization experiment.
	OptFactor map[int]float64
	// Instrumentation selects full or sparse profiling.
	Instrumentation Instrumentation
	// Plan is the probe placement for sparse instrumentation; it must
	// have been built for the program being run.
	Plan *probes.Plan
	// Obs, when non-nil, records a span per run plus counters for
	// blocks executed, function calls, builtin dispatches, probe
	// increments, and step-budget exhaustion. The hot loop carries no
	// observability code: quantities are derived from state the
	// interpreter already maintains and recorded once at run end, so a
	// nil Obs costs nothing (see BenchmarkObsDisabled).
	Obs *obs.Observer
	// Ctx, when it carries a span (see obs.ContextWithSpan), parents
	// the run's "interp.run" span under it — the serving layer uses
	// this to connect an interpreter run to the HTTP request that
	// triggered it. A nil or span-less Ctx leaves spans rooted at Obs;
	// the context is not consulted during execution.
	Ctx context.Context
	// MemRefs, when non-nil, switches on the compact memory-access
	// trace: every execution of a mapped array/pointer reference
	// expression appends one MemAccess to Result.MemTrace. The map
	// assigns each traced expression its reference-site ID (see
	// internal/reuse, which builds it in deterministic CFG order). The
	// default nil map costs the hot loop a single pointer test per
	// candidate access (BenchmarkReuseTrace/off pins parity with
	// BenchmarkInterpretCompress).
	MemRefs map[cast.Expr]int32
	// MaxMemAccesses bounds the trace length when MemRefs is set (0
	// means the default of 16 million); exceeding it is a runtime error,
	// like an exhausted step budget.
	MaxMemAccesses int64
	// Engine selects the execution engine. The zero value is the
	// bytecode engine; EngineTree forces the reference tree-walking
	// evaluator. Both produce byte-identical results.
	Engine Engine
}

// MemAccess is one traced memory access: the accessed address and the
// static reference site it came from. Addr is the interpreter's encoded
// pointer (segment ID in the high bits, byte offset in the low bits), so
// equal Addr means the same base object and element — the identity the
// stack-distance analysis in internal/reuse operates on.
type MemAccess struct {
	Addr  uint64
	Ref   int32
	Write bool
}

// Result is the outcome of a run.
type Result struct {
	ExitCode int
	Output   []byte
	// Profile holds the measured counts of a full-instrumentation run;
	// nil under sparse instrumentation (reconstruct from Probes).
	Profile *profile.Profile
	// Probes holds the sparse probe vector of a sparse run; nil under
	// full instrumentation.
	Probes *probes.Vector
	// MemTrace is the memory-access trace of a run with Options.MemRefs
	// set, in execution order; nil otherwise.
	MemTrace []MemAccess
	Steps    int64
}

// Machine executes one program run.
type Machine struct {
	cfgP *cfg.Program
	sem  *sem.Program

	segs      []*segment // segment ID = index + 1
	stackSeg  uint64
	sp        int64
	globalSeg []uint64 // by GlobalIndex
	strSeg    []uint64 // by StrLit.DataIndex

	stdin  []byte
	inPos  int
	out    bytes.Buffer
	rng    uint64
	prof   *profile.Profile
	steps  int64
	maxT   int64
	cycles float64
	factor []float64 // per-function cost factor

	// Sparse instrumentation state: the probe plan, the counter vector,
	// and the active-frame trace (one entry per live call, tracking the
	// frame's current block so an exit() can be reconciled with flow
	// conservation afterwards).
	sparse bool
	plan   *probes.Plan
	pv     []float64
	trace  []probes.Escape

	// Memory-access tracing (see Options.MemRefs). memRefs is nil on the
	// default path, so untraced runs pay one pointer test per candidate
	// access and the trace buffer is never allocated.
	memRefs map[cast.Expr]int32
	mtrace  []MemAccess
	memMax  int64

	curPos ctoken.Pos
	depth  int

	// Bytecode-engine state: the module being executed and the operand
	// stack shared by every activation (each function reserves its
	// compile-time high-water mark on entry). Nil/empty under the tree
	// engine.
	mod    *bc.Module
	vstack []value
	vsp    int

	// Observability state (see Options.Obs). calls and builtins are
	// plain int64 increments on paths that already do far heavier work;
	// everything else is derived at run end.
	o               *obs.Observer
	calls           int64
	builtins        int64
	budgetExhausted bool
}

// Run executes the program to completion and returns its profile.
func Run(p *cfg.Program, opts Options) (res *Result, err error) {
	if opts.Instrumentation == SparseInstrumentation {
		if opts.Plan == nil {
			return nil, fmt.Errorf("interp: sparse instrumentation requires a probe plan")
		}
		if opts.Plan.Program() != p {
			return nil, fmt.Errorf("interp: probe plan was built for a different program")
		}
	}
	sp := obs.StartSpanFrom(opts.Ctx, opts.Obs, "interp.run", obs.KV("instr", instrName(opts.Instrumentation)))
	defer sp.End()
	m := newMachine(p, opts)
	defer m.finishObs(sp)
	defer func() {
		if r := recover(); r != nil {
			switch v := r.(type) {
			case exitPanic:
				res = m.result(v.code)
			case *RuntimeError:
				err = v
			default:
				panic(r)
			}
		}
	}()
	if m.sem.Main == nil {
		return nil, fmt.Errorf("interp: program has no main function")
	}
	if opts.Engine == EngineBytecode {
		var plan *probes.Plan
		if m.sparse {
			plan = m.plan
		}
		if mod := lowered(p, plan); mod != nil {
			// Global initializers run on the tree evaluator under both
			// engines: they execute outside any function (no counters,
			// no frame), so the runs stay byte-identical.
			m.initGlobals()
			return m.result(m.runBC(mod, opts.Args)), nil
		}
	}
	m.initGlobals()
	code := m.callMain(opts.Args)
	return m.result(code), nil
}

func (m *Machine) result(code int) *Result {
	res := &Result{
		ExitCode: code,
		Output:   append([]byte(nil), m.out.Bytes()...),
		MemTrace: m.mtrace,
		Steps:    m.steps,
	}
	if m.sparse {
		// Frames still on m.trace were unwound by exit(); the
		// reconstructor routes their flow to the virtual exit node.
		res.Probes = &probes.Vector{
			Counts:  m.pv,
			Escapes: append([]probes.Escape(nil), m.trace...),
		}
		return res
	}
	m.prof.Cycles = m.cycles
	res.Profile = m.prof
	return res
}

func instrName(i Instrumentation) string {
	if i == SparseInstrumentation {
		return "sparse"
	}
	return "full"
}

// finishObs records the run's counters once, from state the hot loop
// maintained anyway. Called on every exit path, including runtime
// errors (the counters then describe the partial run).
func (m *Machine) finishObs(sp *obs.Span) {
	if m.o == nil {
		return
	}
	m.o.Counter("interp_runs_total").Add(1)
	m.o.Counter("interp_blocks_executed_total").Add(m.steps)
	m.o.Counter("interp_calls_total").Add(m.calls)
	m.o.Counter("interp_builtin_calls_total").Add(m.builtins)
	if m.sparse {
		var incs int64
		for _, c := range m.pv {
			incs += int64(c)
		}
		m.o.Counter("interp_probe_increments_total").Add(incs)
	}
	if m.budgetExhausted {
		m.o.Counter("interp_step_budget_exhausted_total").Add(1)
	}
	sp.SetAttr("steps", m.steps)
}

func newMachine(p *cfg.Program, opts Options) *Machine {
	sp := p.Sem
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 200_000_000
	}
	m := &Machine{
		cfgP:    p,
		sem:     sp,
		stdin:   opts.Stdin,
		rng:     0x2545F4914F6CDD1D,
		maxT:    maxSteps,
		o:       opts.Obs,
		memRefs: opts.MemRefs,
		memMax:  opts.MaxMemAccesses,
	}
	if m.memRefs != nil && m.memMax == 0 {
		m.memMax = 16_000_000
	}
	if opts.Instrumentation == SparseInstrumentation {
		m.sparse = true
		m.plan = opts.Plan
		m.pv = make([]float64, opts.Plan.NumProbes)
		// Seed the frame-trace capacity: typical call depths then grow
		// it rarely, so the per-call append is a bounds check and two
		// stores, not a reallocation.
		m.trace = make([]probes.Escape, 0, 256)
	} else {
		blocksPerFunc, numSites, numBranches, switchArms := cfg.ProfileShape(p)
		m.prof = profile.New(blocksPerFunc, numSites, numBranches, switchArms)
	}
	m.factor = make([]float64, len(sp.Funcs))
	for i := range m.factor {
		m.factor[i] = 1.0
	}
	for i, f := range opts.OptFactor {
		if i >= 0 && i < len(m.factor) {
			m.factor[i] = f
		}
	}
	// Segment 1: the stack.
	m.stackSeg = m.newSegment(make([]byte, stackSize), segStack, "stack")
	// Globals, one segment each.
	m.globalSeg = make([]uint64, len(sp.Globals))
	for i, g := range sp.Globals {
		size := g.Obj.Type.Size()
		if size <= 0 {
			size = 8
		}
		m.globalSeg[i] = m.newSegment(make([]byte, size), segGlobal, g.Obj.Name)
	}
	// String literals.
	m.strSeg = make([]uint64, len(sp.Strings))
	for i, s := range sp.Strings {
		data := make([]byte, len(s)+1)
		copy(data, s)
		m.strSeg[i] = m.newSegment(data, segString, fmt.Sprintf("strlit%d", i))
	}
	return m
}

func (m *Machine) newSegment(data []byte, kind segKind, name string) uint64 {
	if len(m.segs) >= maxSegID {
		m.fail("out of memory segments (allocation storm?)")
	}
	m.segs = append(m.segs, &segment{data: data, kind: kind, name: name})
	return uint64(len(m.segs))
}

func (m *Machine) seg(id uint64) *segment {
	if id == 0 || id > uint64(len(m.segs)) {
		m.fail("invalid pointer (segment %d)", id)
	}
	s := m.segs[id-1]
	if s.freed {
		m.fail("use of freed memory (%s)", s.name)
	}
	return s
}

func (m *Machine) fail(format string, args ...any) {
	panic(&RuntimeError{Pos: m.curPos, Msg: fmt.Sprintf(format, args...)})
}

// checkedSlice returns the byte window [off, off+size) of the pointed-to
// segment, with bounds checking.
func (m *Machine) checkedSlice(p uint64, size int64) []byte {
	if p == 0 {
		m.fail("null pointer dereference")
	}
	if isFnPtr(p) {
		m.fail("data access through function pointer")
	}
	s := m.seg(ptrSeg(p))
	off := ptrOff(p)
	if off < 0 || size < 0 || off+size > int64(len(s.data)) {
		m.fail("out-of-bounds access: offset %d size %d in %q (%d bytes)",
			off, size, s.name, len(s.data))
	}
	return s.data[off : off+size]
}

// traceAccess appends one memory access when e is a mapped reference
// expression (accesses through expressions outside the map — notably
// direct scalar variable reads — are not part of the reuse model).
// Callers guard with m.memRefs != nil, so the disabled path costs one
// pointer test and never reaches here.
func (m *Machine) traceAccess(e cast.Expr, addr uint64, write bool) {
	id, ok := m.memRefs[e]
	if !ok {
		return
	}
	if int64(len(m.mtrace)) >= m.memMax {
		m.fail("memory-trace budget exceeded (%d accesses)", m.memMax)
	}
	m.mtrace = append(m.mtrace, MemAccess{Addr: addr, Ref: id, Write: write})
}

// --- loads and stores -------------------------------------------------------

func (m *Machine) loadInt(p uint64, t *ctypes.Type) int64 {
	b := m.checkedSlice(p, t.Size())
	switch t.Kind {
	case ctypes.Char:
		return int64(int8(b[0]))
	case ctypes.UChar:
		return int64(b[0])
	case ctypes.Short:
		return int64(int16(binary.LittleEndian.Uint16(b)))
	case ctypes.UShort:
		return int64(binary.LittleEndian.Uint16(b))
	case ctypes.Int:
		return int64(int32(binary.LittleEndian.Uint32(b)))
	case ctypes.UInt:
		return int64(binary.LittleEndian.Uint32(b))
	case ctypes.Long, ctypes.ULong, ctypes.Ptr:
		return int64(binary.LittleEndian.Uint64(b))
	}
	m.fail("loadInt of non-integer type %s", t)
	return 0
}

func (m *Machine) storeInt(p uint64, t *ctypes.Type, v int64) {
	b := m.checkedSlice(p, t.Size())
	switch t.Kind {
	case ctypes.Char, ctypes.UChar:
		b[0] = byte(v)
	case ctypes.Short, ctypes.UShort:
		binary.LittleEndian.PutUint16(b, uint16(v))
	case ctypes.Int, ctypes.UInt:
		binary.LittleEndian.PutUint32(b, uint32(v))
	case ctypes.Long, ctypes.ULong, ctypes.Ptr:
		binary.LittleEndian.PutUint64(b, uint64(v))
	default:
		m.fail("storeInt of non-integer type %s", t)
	}
}

func (m *Machine) load(p uint64, t *ctypes.Type) value {
	switch t.Kind {
	case ctypes.Float:
		b := m.checkedSlice(p, 4)
		return floatValue(float64(float32FromBits(binary.LittleEndian.Uint32(b))), t)
	case ctypes.Double:
		b := m.checkedSlice(p, 8)
		return floatValue(float64FromBits(binary.LittleEndian.Uint64(b)), t)
	case ctypes.Struct:
		// Struct values are represented by their address.
		return value{typ: t, i: int64(p)}
	case ctypes.Array:
		// Arrays decay to a pointer to their first element.
		return value{typ: ctypes.PointerTo(t.Elem), i: int64(p)}
	default:
		return value{typ: t, i: m.loadInt(p, t)}
	}
}

func (m *Machine) store(p uint64, t *ctypes.Type, v value) {
	switch t.Kind {
	case ctypes.Float:
		b := m.checkedSlice(p, 4)
		binary.LittleEndian.PutUint32(b, float32Bits(float32(v.f)))
	case ctypes.Double:
		b := m.checkedSlice(p, 8)
		binary.LittleEndian.PutUint64(b, float64Bits(v.f))
	case ctypes.Struct:
		size := t.Size()
		dst := m.checkedSlice(p, size)
		src := m.checkedSlice(uint64(v.i), size)
		copy(dst, src)
	default:
		m.storeInt(p, t, v.i)
	}
}

// --- globals ----------------------------------------------------------------

func (m *Machine) initGlobals() {
	for i, g := range m.sem.Globals {
		if g.Init != nil {
			m.storeInit(encodePtr(m.globalSeg[i], 0), g.Obj.Type, g.Init)
		}
	}
}

func (m *Machine) storeInit(p uint64, t *ctypes.Type, in cast.Init) {
	switch init := in.(type) {
	case nil:
	case *cast.ExprInit:
		if s, ok := init.X.(*cast.StrLit); ok && t.Kind == ctypes.Array {
			// char arr[] = "text";
			dst := m.checkedSlice(p, t.Size())
			n := copy(dst, s.Val)
			if int64(n) < t.Size() {
				dst[n] = 0
			}
			return
		}
		v := m.eval(nil, init.X)
		m.store(p, t, convert(m, v, t))
	case *cast.ListInit:
		switch t.Kind {
		case ctypes.Array:
			esz := t.Elem.Size()
			for i, el := range init.Elems {
				if int64(i) >= t.Len {
					break
				}
				m.storeInit(p+uint64(int64(i)*esz), t.Elem, el)
			}
		case ctypes.Struct:
			for i, el := range init.Elems {
				if i >= len(t.Info.Fields) {
					break
				}
				f := t.Info.Fields[i]
				m.storeInit(p+uint64(f.Offset), f.Type, el)
			}
		default:
			if len(init.Elems) == 1 {
				m.storeInit(p, t, init.Elems[0])
			}
		}
	}
}

// --- frames and execution ---------------------------------------------------

type frame struct {
	fn   *cast.FuncDecl
	base uint64 // pointer to frame start in the stack segment
}

func (m *Machine) localAddr(fr *frame, o *cast.Object) uint64 {
	return fr.base + uint64(o.FrameOffset)
}

// buildArgv materializes the program's argv in string segments and
// returns (argc, pointer to the argv array).
func (m *Machine) buildArgv(args []string) (int64, uint64) {
	argv := append([]string{"prog"}, args...)
	ptrs := make([]uint64, len(argv)+1)
	for i, a := range argv {
		data := make([]byte, len(a)+1)
		copy(data, a)
		ptrs[i] = encodePtr(m.newSegment(data, segString, "argv"), 0)
	}
	arrData := make([]byte, 8*len(ptrs))
	for i, p := range ptrs {
		binary.LittleEndian.PutUint64(arrData[i*8:], p)
	}
	return int64(len(argv)), encodePtr(m.newSegment(arrData, segString, "argv[]"), 0)
}

func (m *Machine) callMain(args []string) int {
	argc, argvPtr := m.buildArgv(args)
	main := m.sem.Main
	var vals []value
	if len(main.Params) >= 1 {
		vals = append(vals, value{typ: ctypes.IntType, i: argc})
	}
	if len(main.Params) >= 2 {
		vals = append(vals, value{
			typ: ctypes.PointerTo(ctypes.PointerTo(ctypes.CharType)),
			i:   int64(argvPtr),
		})
	}
	ret := m.callFunc(main.Obj.FuncIndex, vals)
	return int(int32(ret.i))
}

// callFunc invokes a defined function with already-evaluated arguments.
func (m *Machine) callFunc(fnIdx int, args []value) value {
	fd := m.sem.Funcs[fnIdx]
	g := m.cfgP.Graphs[fnIdx]
	if m.sparse {
		// Invocations ride the virtual exit→entry arc of the spanning
		// forest; only the frame trace is maintained here.
		m.trace = append(m.trace, probes.Escape{Func: fnIdx, Block: g.Entry.ID})
	} else {
		m.prof.FuncCalls[fnIdx]++
	}
	m.calls++

	m.depth++
	if m.depth > 100_000 {
		m.fail("call depth exceeded (runaway recursion in %s)", fd.Name())
	}
	// Allocate the frame on the simulated stack.
	base := (m.sp + 15) &^ 15
	if base+fd.FrameSize > stackSize {
		m.fail("simulated stack overflow in %s", fd.Name())
	}
	savedSP := m.sp
	m.sp = base + fd.FrameSize
	fr := &frame{fn: fd, base: encodePtr(m.stackSeg, base)}
	// Zero the frame (C doesn't, but deterministic garbage aids tests;
	// programs in the suite do not rely on uninitialized reads).
	frameBytes := m.seg(m.stackSeg).data[base : base+fd.FrameSize]
	for i := range frameBytes {
		frameBytes[i] = 0
	}
	// Bind parameters.
	for i, p := range fd.Params {
		if i < len(args) {
			m.store(m.localAddr(fr, p), p.Type, convert(m, args[i], p.Type))
		}
	}

	ret := m.execute(fr, g, fnIdx)

	m.sp = savedSP
	m.depth--
	if m.sparse {
		m.trace = m.trace[:len(m.trace)-1]
	}
	retT := fd.Obj.Type.Sig.Ret
	if retT.Kind == ctypes.Void {
		return value{typ: ctypes.VoidType}
	}
	return convert(m, ret, retT)
}

// execute runs the function's CFG and returns the raw return value.
// Under sparse instrumentation the hot loop skips every per-block and
// per-branch counter; it only bumps the planned probe counters at arc
// transitions and keeps the frame trace current for exit() handling.
func (m *Machine) execute(fr *frame, g *cfg.Graph, fnIdx int) value {
	if m.sparse {
		return m.executeSparse(fr, g, fnIdx)
	}
	blk := g.Entry
	counts := m.prof.BlockCounts[fnIdx]
	factor := m.factor[fnIdx]
	for {
		m.steps++
		if m.steps > m.maxT {
			m.budgetExhausted = true
			m.fail("step budget exceeded (%d block executions)", m.maxT)
		}
		counts[blk.ID]++
		m.cycles += float64(1+len(blk.Stmts)) * factor

		for _, s := range blk.Stmts {
			m.execStmt(fr, s)
		}
		switch blk.Term {
		case cfg.TermJump:
			if len(blk.Succs) == 0 {
				// Fell off a pruned dead-end; treat as return 0.
				return value{typ: ctypes.IntType}
			}
			blk = blk.Succs[0]
		case cfg.TermCond:
			m.curPos = blk.Cond.Pos()
			taken := isTrue(m.eval(fr, blk.Cond))
			if blk.BranchSite >= 0 {
				if taken {
					m.prof.BranchTaken[blk.BranchSite]++
				} else {
					m.prof.BranchNot[blk.BranchSite]++
				}
			}
			if taken {
				blk = blk.Succs[0]
			} else {
				blk = blk.Succs[1]
			}
		case cfg.TermSwitch:
			m.curPos = blk.Tag.Pos()
			tag := m.eval(fr, blk.Tag).i
			arm := -1
			def := -1
			for i, c := range blk.Cases {
				if c.IsDefault {
					def = i
					continue
				}
				for _, v := range c.Vals {
					if v == tag {
						arm = i
					}
				}
				if arm >= 0 {
					break
				}
			}
			if arm < 0 {
				arm = def
			}
			if arm < 0 {
				// No default and no match: fall past the switch. The CFG
				// always synthesizes a default arm, so this is unreachable,
				// but guard anyway.
				m.fail("switch value %d matched no arm and no default", tag)
			}
			if blk.SwitchSite >= 0 {
				m.prof.SwitchArm[blk.SwitchSite][arm]++
			}
			blk = blk.Succs[arm]
		case cfg.TermReturn:
			if blk.RetVal != nil {
				m.curPos = blk.RetVal.Pos()
				return m.eval(fr, blk.RetVal)
			}
			return value{typ: ctypes.IntType}
		}
	}
}

// executeSparse is the sparse-instrumentation twin of execute: no block,
// branch, switch, or cycle counters — only the probe counters the plan
// placed on off-forest arcs, plus a frame-trace update per block so a
// mid-run exit() leaves an exact record of where flow stopped.
func (m *Machine) executeSparse(fr *frame, g *cfg.Graph, fnIdx int) value {
	blk := g.Entry
	fp := &m.plan.Funcs[fnIdx]
	// Index rather than pointer: nested calls append to m.trace and may
	// reallocate its backing array.
	ti := len(m.trace) - 1
	for {
		m.steps++
		if m.steps > m.maxT {
			m.budgetExhausted = true
			m.fail("step budget exceeded (%d block executions)", m.maxT)
		}
		m.trace[ti].Block = blk.ID

		for _, s := range blk.Stmts {
			m.execStmt(fr, s)
		}
		switch blk.Term {
		case cfg.TermJump:
			if len(blk.Succs) == 0 {
				// Fell off a pruned dead-end; treat as return 0.
				if pi := fp.ExitProbe[blk.ID]; pi >= 0 {
					m.pv[pi]++
				}
				return value{typ: ctypes.IntType}
			}
			if pi := fp.SuccProbe[blk.ID][0]; pi >= 0 {
				m.pv[pi]++
			}
			blk = blk.Succs[0]
		case cfg.TermCond:
			m.curPos = blk.Cond.Pos()
			slot := 1
			if isTrue(m.eval(fr, blk.Cond)) {
				slot = 0
			}
			if pi := fp.SuccProbe[blk.ID][slot]; pi >= 0 {
				m.pv[pi]++
			}
			blk = blk.Succs[slot]
		case cfg.TermSwitch:
			m.curPos = blk.Tag.Pos()
			tag := m.eval(fr, blk.Tag).i
			arm := -1
			def := -1
			for i, c := range blk.Cases {
				if c.IsDefault {
					def = i
					continue
				}
				for _, v := range c.Vals {
					if v == tag {
						arm = i
					}
				}
				if arm >= 0 {
					break
				}
			}
			if arm < 0 {
				arm = def
			}
			if arm < 0 {
				m.fail("switch value %d matched no arm and no default", tag)
			}
			if pi := fp.SuccProbe[blk.ID][arm]; pi >= 0 {
				m.pv[pi]++
			}
			blk = blk.Succs[arm]
		case cfg.TermReturn:
			// Evaluate the return value before bumping the exit probe: an
			// exit() inside it must leave this frame recorded as escaped,
			// not as having flowed out.
			var ret value
			if blk.RetVal != nil {
				m.curPos = blk.RetVal.Pos()
				ret = m.eval(fr, blk.RetVal)
			} else {
				ret = value{typ: ctypes.IntType}
			}
			if pi := fp.ExitProbe[blk.ID]; pi >= 0 {
				m.pv[pi]++
			}
			return ret
		}
	}
}

func (m *Machine) execStmt(fr *frame, s cast.Stmt) {
	m.curPos = s.Pos()
	switch x := s.(type) {
	case *cast.ExprStmt:
		m.eval(fr, x.X)
	case *cast.DeclStmt:
		for _, d := range x.Decls {
			if d.Init == nil {
				continue
			}
			addr := m.localAddr(fr, d.Obj)
			m.storeLocalInit(fr, addr, d.Obj.Type, d.Init)
		}
	case *cast.Clear:
		// Synthesized by the inliner: zero an inlined callee's frame
		// region, exactly as callFunc zeroes a fresh frame.
		b := m.checkedSlice(fr.base+uint64(x.Off), x.Size)
		for i := range b {
			b[i] = 0
		}
	default:
		m.fail("interp: unexpected statement %T in basic block", s)
	}
}

func (m *Machine) storeLocalInit(fr *frame, p uint64, t *ctypes.Type, in cast.Init) {
	switch init := in.(type) {
	case nil:
	case *cast.ExprInit:
		if s, ok := init.X.(*cast.StrLit); ok && t.Kind == ctypes.Array {
			dst := m.checkedSlice(p, t.Size())
			n := copy(dst, s.Val)
			if int64(n) < t.Size() {
				dst[n] = 0
			}
			return
		}
		v := m.eval(fr, init.X)
		m.store(p, t, convert(m, v, t))
	case *cast.ListInit:
		switch t.Kind {
		case ctypes.Array:
			esz := t.Elem.Size()
			for i, el := range init.Elems {
				if int64(i) >= t.Len {
					break
				}
				m.storeLocalInit(fr, p+uint64(int64(i)*esz), t.Elem, el)
			}
		case ctypes.Struct:
			for i, el := range init.Elems {
				if i >= len(t.Info.Fields) {
					break
				}
				f := t.Info.Fields[i]
				m.storeLocalInit(fr, p+uint64(f.Offset), f.Type, el)
			}
		default:
			if len(init.Elems) == 1 {
				m.storeLocalInit(fr, p, t, init.Elems[0])
			}
		}
	}
}
