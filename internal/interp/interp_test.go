package interp_test

import (
	"strings"
	"testing"

	"staticest/internal/cfg"
	"staticest/internal/cparse"
	"staticest/internal/interp"
	"staticest/internal/sem"
)

func compile(t *testing.T, src string) *cfg.Program {
	t.Helper()
	file, err := cparse.ParseFile("test.c", []byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sem.Analyze(file)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	cp, err := cfg.Build(sp)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return cp
}

func run(t *testing.T, src string, opts interp.Options) *interp.Result {
	t.Helper()
	res, err := interp.Run(compile(t, src), opts)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func runOutput(t *testing.T, src string) string {
	t.Helper()
	res := run(t, src, interp.Options{})
	return string(res.Output)
}

func TestArithmetic(t *testing.T) {
	out := runOutput(t, `
int main(void) {
	int a = 7, b = 3;
	printf("%d %d %d %d %d\n", a + b, a - b, a * b, a / b, a % b);
	printf("%d %d %d\n", a << 2, a >> 1, a & b);
	printf("%d %d %d\n", a | b, a ^ b, ~a);
	unsigned int u = 0xffffffff;
	printf("%u %u\n", u, u + 1);
	long big = 1234567890123;
	printf("%ld\n", big * 2);
	return 0;
}`)
	want := "10 4 21 2 1\n28 3 3\n7 4 -8\n4294967295 0\n2469135780246\n"
	if out != want {
		t.Errorf("output:\n%q\nwant:\n%q", out, want)
	}
}

func TestSignedUnsignedConversions(t *testing.T) {
	out := runOutput(t, `
int main(void) {
	char c = 200;             /* wraps to -56 */
	unsigned char uc = 200;
	short s = 70000;          /* wraps */
	printf("%d %d %d\n", c, uc, s);
	int neg = -1;
	unsigned int u = neg;     /* 4294967295 */
	printf("%u\n", u);
	printf("%d\n", neg < u ? 1 : 0) /* usual conversions: -1 becomes huge */;
	return 0;
}`)
	want := "-56 200 4464\n4294967295\n0\n"
	if out != want {
		t.Errorf("output %q, want %q", out, want)
	}
}

func TestFloats(t *testing.T) {
	out := runOutput(t, `
int main(void) {
	double d = 3.5;
	float f = 1.25;
	printf("%.2f %.2f %.2f\n", d + f, d * 2.0, d / 2.0);
	printf("%d\n", (int)(d * 2.0));
	printf("%.4f\n", sqrt(2.0));
	printf("%.1f\n", pow(2.0, 10.0));
	int i = 7;
	printf("%.1f\n", i / 2.0);
	return 0;
}`)
	want := "4.75 7.00 1.75\n7\n1.4142\n1024.0\n3.5\n"
	if out != want {
		t.Errorf("output %q, want %q", out, want)
	}
}

func TestPointersAndArrays(t *testing.T) {
	out := runOutput(t, `
int sum(int *a, int n) {
	int s = 0, i;
	for (i = 0; i < n; i++) s += a[i];
	return s;
}
int main(void) {
	int arr[5] = {1, 2, 3, 4, 5};
	int *p = arr;
	printf("%d\n", sum(arr, 5));
	printf("%d %d %d\n", *p, *(p + 2), p[4]);
	p++;
	printf("%d\n", *p);
	printf("%d\n", (int)(&arr[4] - &arr[1]));
	int m[2][3] = {{1, 2, 3}, {4, 5, 6}};
	printf("%d %d\n", m[1][2], m[0][1]);
	return 0;
}`)
	want := "15\n1 3 5\n2\n3\n6 2\n"
	if out != want {
		t.Errorf("output %q, want %q", out, want)
	}
}

func TestStructs(t *testing.T) {
	out := runOutput(t, `
struct point { int x, y; };
struct rect { struct point lo, hi; char tag; };
int area(struct rect *r) {
	return (r->hi.x - r->lo.x) * (r->hi.y - r->lo.y);
}
int main(void) {
	struct rect r;
	struct point p = {1, 2};
	r.lo = p;
	r.hi.x = 5;
	r.hi.y = 7;
	r.tag = 'A';
	printf("%d %c\n", area(&r), r.tag);
	struct rect r2 = r;   /* struct assignment via initializer */
	r2.lo.x = 0;
	printf("%d %d\n", r.lo.x, r2.lo.x);
	return 0;
}`)
	want := "20 A\n1 0\n"
	if out != want {
		t.Errorf("output %q, want %q", out, want)
	}
}

func TestStringsAndHeap(t *testing.T) {
	out := runOutput(t, `
int main(void) {
	char buf[32];
	strcpy(buf, "hello");
	strcat(buf, ", world");
	printf("%s %d\n", buf, (int)strlen(buf));
	printf("%d\n", strcmp("abc", "abd"));
	char *p = (char *)malloc(16);
	memset(p, 'x', 3);
	p[3] = 0;
	printf("%s\n", p);
	free(p);
	int *nums = (int *)calloc(4, sizeof(int));
	nums[2] = 42;
	printf("%d %d\n", nums[0], nums[2]);
	free(nums);
	return 0;
}`)
	want := "hello, world 12\n-1\nxxx\n42 0\n"
	// note: calloc printed nums[0]=0 then nums[2]=42 -> "0 42"
	want = "hello, world 12\n-1\nxxx\n0 42\n"
	if out != want {
		t.Errorf("output %q, want %q", out, want)
	}
}

func TestRecursionAndGlobals(t *testing.T) {
	out := runOutput(t, `
int calls = 0;
int fib(int n) {
	calls++;
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int main(void) {
	printf("%d %d\n", fib(10), calls);
	return 0;
}`)
	if out != "55 177\n" {
		t.Errorf("output %q, want %q", out, "55 177\n")
	}
}

func TestFunctionPointers(t *testing.T) {
	out := runOutput(t, `
int add(int a, int b) { return a + b; }
int mul(int a, int b) { return a * b; }
int (*ops[2])(int, int) = {add, mul};
int apply(int (*f)(int, int), int a, int b) { return f(a, b); }
int main(void) {
	int (*f)(int, int) = &add;
	printf("%d %d\n", f(2, 3), apply(mul, 4, 5));
	printf("%d %d\n", ops[0](10, 1), ops[1](10, 2));
	return 0;
}`)
	if out != "5 20\n11 20\n" {
		t.Errorf("output %q", out)
	}
}

func TestSwitchAndGoto(t *testing.T) {
	out := runOutput(t, `
int classify(int c) {
	switch (c) {
	case 0: return 100;
	case 1:
	case 2: return 200;
	case 3: {
		int x = 5;
		return 300 + x;
	}
	default: return -1;
	}
}
int main(void) {
	int i;
	for (i = 0; i < 5; i++) printf("%d ", classify(i));
	printf("\n");
	i = 0;
again:
	i++;
	if (i < 3) goto again;
	printf("%d\n", i);
	return 0;
}`)
	if out != "100 200 200 305 -1 \n3\n" {
		t.Errorf("output %q", out)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	out := runOutput(t, `
int main(void) {
	int total = 0, i;
	for (i = 0; i < 4; i++) {
		switch (i) {
		case 0: total += 1;  /* falls through */
		case 1: total += 10; break;
		case 2: total += 100; break;
		}
	}
	printf("%d\n", total);
	return 0;
}`)
	// i=0: 1+10; i=1: 10; i=2: 100; i=3: nothing => 121
	if out != "121\n" {
		t.Errorf("output %q", out)
	}
}

func TestStdinAndArgs(t *testing.T) {
	res := run(t, `
int main(int argc, char **argv) {
	int c, n = 0;
	while ((c = getchar()) != -1) {
		if (c == 'a') n++;
	}
	printf("%d %d %s\n", n, argc, argv[1]);
	return n;
}`, interp.Options{Stdin: []byte("banana"), Args: []string{"hello", "x"}})
	if string(res.Output) != "3 3 hello\n" {
		t.Errorf("output %q", res.Output)
	}
	if res.ExitCode != 3 {
		t.Errorf("exit code %d, want 3", res.ExitCode)
	}
}

func TestTernaryCommaLogical(t *testing.T) {
	out := runOutput(t, `
int side = 0;
int bump(void) { side++; return side; }
int main(void) {
	int x = 5;
	printf("%d\n", x > 3 ? 10 : 20);
	printf("%d\n", (bump(), bump(), side));
	/* short circuit: bump must not run */
	if (0 && bump()) printf("no\n");
	if (1 || bump()) printf("yes\n");
	printf("%d\n", side);
	return 0;
}`)
	if out != "10\n2\nyes\n2\n" {
		t.Errorf("output %q", out)
	}
}

func TestDoWhileBreakContinue(t *testing.T) {
	out := runOutput(t, `
int main(void) {
	int i = 0, sum = 0;
	do {
		i++;
		if (i == 3) continue;
		if (i > 6) break;
		sum += i;
	} while (i < 100);
	printf("%d %d\n", i, sum);
	return 0;
}`)
	// adds 1,2,4,5,6 = 18; breaks at i=7
	if out != "7 18\n" {
		t.Errorf("output %q", out)
	}
}

func TestExitAndExitCode(t *testing.T) {
	res := run(t, `
void die(int code) { exit(code); }
int main(void) {
	printf("before\n");
	die(42);
	printf("after\n");
	return 0;
}`, interp.Options{})
	if res.ExitCode != 42 {
		t.Errorf("exit code %d, want 42", res.ExitCode)
	}
	if string(res.Output) != "before\n" {
		t.Errorf("output %q", res.Output)
	}
}

func runErr(t *testing.T, src string, opts interp.Options) error {
	t.Helper()
	_, err := interp.Run(compile(t, src), opts)
	return err
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"null deref", `int main(void){ int *p = 0; return *p; }`, "null pointer"},
		{"div zero", `int main(void){ int z = 0; return 5 / z; }`, "division by zero"},
		// The global lives in its own segment, so the overrun faults
		// (stack locals share one segment, as on real hardware).
		{"oob", `int a[3]; int main(void){ return a[10]; }`, "out-of-bounds"},
		{"abort", `int main(void){ abort(); return 0; }`, "abort"},
		{"use after free", `int main(void){ int *p = (int*)malloc(8); free(p); return *p; }`, "freed"},
		{"step budget", `int main(void){ for(;;); return 0; }`, "step budget"},
		{"deep recursion", `int f(int n){ return f(n+1); } int main(void){ return f(0); }`, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := runErr(t, tc.src, interp.Options{MaxSteps: 1_000_000})
			if err == nil {
				t.Fatal("expected runtime error")
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestBranchProfileCounts(t *testing.T) {
	res := run(t, `
int main(void) {
	int i, odd = 0;
	for (i = 0; i < 10; i++) {
		if (i % 2) odd++;
	}
	return odd;
}`, interp.Options{})
	if res.ExitCode != 5 {
		t.Fatalf("exit %d, want 5", res.ExitCode)
	}
	p := res.Profile
	// Two branch sites: the for condition (10 true, 1 false) and the if
	// (5 true, 5 false) — order of IDs follows source order.
	if len(p.BranchTaken) != 2 {
		t.Fatalf("%d branch sites, want 2", len(p.BranchTaken))
	}
	if p.BranchTaken[0] != 10 || p.BranchNot[0] != 1 {
		t.Errorf("for branch = %g/%g, want 10/1", p.BranchTaken[0], p.BranchNot[0])
	}
	if p.BranchTaken[1] != 5 || p.BranchNot[1] != 5 {
		t.Errorf("if branch = %g/%g, want 5/5", p.BranchTaken[1], p.BranchNot[1])
	}
}

func TestSwitchProfileCounts(t *testing.T) {
	res := run(t, `
int main(void) {
	int i, x = 0;
	for (i = 0; i < 6; i++) {
		switch (i % 3) {
		case 0: x += 1; break;
		case 1: x += 2; break;
		default: x += 3; break;
		}
	}
	return x;
}`, interp.Options{})
	if res.ExitCode != 12 {
		t.Fatalf("exit %d, want 12", res.ExitCode)
	}
	arms := res.Profile.SwitchArm[0]
	if len(arms) != 3 || arms[0] != 2 || arms[1] != 2 || arms[2] != 2 {
		t.Errorf("switch arms = %v, want [2 2 2]", arms)
	}
}

func TestSprintfAndFormats(t *testing.T) {
	out := runOutput(t, `
int main(void) {
	char buf[64];
	sprintf(buf, "[%5d|%-5d|%05d]", 42, 42, 42);
	puts(buf);
	printf("%x %X %o %c%c\n", 255, 255, 8, 'h', 'i');
	printf("%e\n", 12345.678);
	printf("%g\n", 0.0001);
	return 0;
}`)
	want := "[   42|42   |00042]\nff FF 10 hi\n1.234568e+04\n0.0001\n"
	if out != want {
		t.Errorf("output %q, want %q", out, want)
	}
}

func TestCostModelOptFactor(t *testing.T) {
	src := `
int work(int n) {
	int i, s = 0;
	for (i = 0; i < n; i++) s += i;
	return s;
}
int main(void) { return work(1000) & 0; }`
	base := run(t, src, interp.Options{})
	opt := run(t, src, interp.Options{OptFactor: map[int]float64{0: 0.5}})
	if opt.Profile.Cycles >= base.Profile.Cycles {
		t.Errorf("optimized cycles %g not below baseline %g",
			opt.Profile.Cycles, base.Profile.Cycles)
	}
	// work dominates: halving it should cut total cycles by ~half.
	ratio := opt.Profile.Cycles / base.Profile.Cycles
	if ratio > 0.6 {
		t.Errorf("cycle ratio %g, want < 0.6", ratio)
	}
}

func TestCharIO(t *testing.T) {
	out := runOutput(t, `
int main(void) {
	char *s = "Hello";
	int i;
	for (i = 0; s[i]; i++) putchar(tolower(s[i]));
	putchar('\n');
	printf("%d %d %d\n", isdigit('5'), isalpha('x'), isspace('q'));
	return 0;
}`)
	if out != "hello\n1 1 0\n" {
		t.Errorf("output %q", out)
	}
}

func TestGlobalInitializers(t *testing.T) {
	out := runOutput(t, `
int table[5] = {10, 20, 30};
char msg[] = "hey";
struct cfg { int a; double b; char *name; };
struct cfg conf = {7, 2.5, "cfgname"};
int *ptr = table + 2;
int main(void) {
	printf("%d %d %d\n", table[0], table[2], table[4]);
	printf("%s %d\n", msg, (int)sizeof(msg));
	printf("%d %.1f %s\n", conf.a, conf.b, conf.name);
	printf("%d\n", *ptr);
	return 0;
}`)
	want := "10 30 0\nhey 4\n7 2.5 cfgname\n30\n"
	if out != want {
		t.Errorf("output %q, want %q", out, want)
	}
}

func TestAtoiRandDeterminism(t *testing.T) {
	src := `
int main(void) {
	printf("%d %d\n", atoi("  -123"), atoi("45x"));
	srand(7);
	int a = rand() % 100;
	srand(7);
	int b = rand() % 100;
	printf("%d\n", a == b);
	return 0;
}`
	out1 := runOutput(t, src)
	out2 := runOutput(t, src)
	if out1 != out2 {
		t.Errorf("non-deterministic output: %q vs %q", out1, out2)
	}
	if !strings.HasPrefix(out1, "-123 45\n1\n") {
		t.Errorf("output %q", out1)
	}
}
