package interp

import (
	"staticest/internal/bc"
	"staticest/internal/cast"
	"staticest/internal/cfg"
	"staticest/internal/ctypes"
	"staticest/internal/probes"
)

// Engine selects the execution engine for a run.
type Engine int

// Engines. The bytecode engine is the zero value: every caller gets the
// fast path unless it asks for the reference evaluator.
const (
	// EngineBytecode executes the program's flat bytecode lowering (see
	// internal/bc). Programs the lowering cannot express fall back to
	// the tree engine transparently; semantics are identical either way
	// (the differential oracle in internal/check enforces it).
	EngineBytecode Engine = iota
	// EngineTree forces the reference tree-walking evaluator.
	EngineTree
)

// loweredCache is the per-program bytecode cache hung off
// cfg.Program.Lowered. The full lowering is shared by every
// full-instrumentation run; sparse lowerings are per probe plan, since
// the plan's probe placement is baked into the instruction stream.
type loweredCache struct {
	full      *bc.Module
	fullErr   bool
	sparse    map[*probes.Plan]*bc.Module
	sparseErr map[*probes.Plan]bool
}

// lowered returns the cached bytecode module for (p, plan), compiling
// it on first use. A nil return means the program has no bytecode
// lowering (the compiler rejected it) and the caller must use the tree
// engine; the failure is cached too, so each program pays for at most
// one failed compile per mode.
func lowered(p *cfg.Program, plan *probes.Plan) *bc.Module {
	p.LoweredMu.Lock()
	defer p.LoweredMu.Unlock()
	c, _ := p.Lowered.(*loweredCache)
	if c == nil {
		c = &loweredCache{}
		p.Lowered = c
	}
	if plan == nil {
		if c.full == nil && !c.fullErr {
			m, err := bc.Compile(p, nil)
			if err != nil {
				c.fullErr = true
			} else {
				c.full = m
			}
		}
		return c.full
	}
	if c.sparse == nil {
		c.sparse = make(map[*probes.Plan]*bc.Module)
		c.sparseErr = make(map[*probes.Plan]bool)
	}
	if c.sparse[plan] == nil && !c.sparseErr[plan] {
		m, err := bc.Compile(p, plan)
		if err != nil {
			c.sparseErr[plan] = true
		} else {
			c.sparse[plan] = m
		}
	}
	return c.sparse[plan]
}

// runBC is the bytecode twin of callMain: it builds argv, invokes main
// through the bytecode call path, and returns the process exit code.
func (m *Machine) runBC(mod *bc.Module, args []string) int {
	m.mod = mod
	m.vstack = make([]value, 256)
	argc, argvPtr := m.buildArgv(args)
	main := m.sem.Main
	nargs := 0
	if len(main.Params) >= 1 {
		m.vstack[m.vsp] = value{typ: ctypes.IntType, i: argc}
		m.vsp++
		nargs++
	}
	if len(main.Params) >= 2 {
		m.vstack[m.vsp] = value{
			typ: ctypes.PointerTo(ctypes.PointerTo(ctypes.CharType)),
			i:   int64(argvPtr),
		}
		m.vsp++
		nargs++
	}
	m.bcCall(main.Obj.FuncIndex, nargs)
	m.vsp--
	return int(int32(m.vstack[m.vsp].i))
}

// bcCall invokes defined function fnIdx with the top nargs operand-stack
// values as arguments; it pops them and pushes the (converted) return
// value. It mirrors callFunc effect for effect — invocation counters,
// frame trace, depth cap, frame placement, zeroing, parameter binding,
// and return conversion — but allocates nothing: the frame lives on the
// simulated stack and arguments never leave the operand stack.
func (m *Machine) bcCall(fnIdx, nargs int) {
	fd := m.sem.Funcs[fnIdx]
	f := &m.mod.Funcs[fnIdx]
	if m.sparse {
		m.trace = append(m.trace, probes.Escape{Func: fnIdx, Block: int(f.Entry)})
	} else {
		m.prof.FuncCalls[fnIdx]++
	}
	m.calls++

	m.depth++
	if m.depth > 100_000 {
		m.fail("call depth exceeded (runaway recursion in %s)", fd.Name())
	}
	base := (m.sp + 15) &^ 15
	if base+fd.FrameSize > stackSize {
		m.fail("simulated stack overflow in %s", fd.Name())
	}
	savedSP := m.sp
	m.sp = base + fd.FrameSize
	frBase := encodePtr(m.stackSeg, base)
	frameBytes := m.seg(m.stackSeg).data[base : base+fd.FrameSize]
	for i := range frameBytes {
		frameBytes[i] = 0
	}
	argBase := m.vsp - nargs
	for i, p := range fd.Params {
		if i < nargs {
			m.store(frBase+uint64(p.FrameOffset), p.Type, convert(m, m.vstack[argBase+i], p.Type))
		}
	}
	m.vsp = argBase

	ret := m.execBC(f, fnIdx, frBase)

	m.sp = savedSP
	m.depth--
	if m.sparse {
		m.trace = m.trace[:len(m.trace)-1]
	}
	retT := fd.Obj.Type.Sig.Ret
	if retT.Kind == ctypes.Void {
		ret = value{typ: ctypes.VoidType}
	} else {
		ret = convert(m, ret, retT)
	}
	m.vstack[m.vsp] = ret
	m.vsp++
}

// execBC runs one lowered function body and returns the raw return
// value. The loop indexes m.vstack through the machine (never a cached
// local slice header) because nested calls may grow it.
func (m *Machine) execBC(f *bc.Func, fnIdx int, frBase uint64) value {
	// Reserve the function's operand high-water mark up front so pushes
	// below never grow the stack mid-flight.
	if need := m.vsp + f.MaxStack; need > len(m.vstack) {
		ns := make([]value, need+128)
		copy(ns, m.vstack[:m.vsp])
		m.vstack = ns
	}
	code := f.Code
	var counts, pv []float64
	var factor float64
	// tr is this activation's frame-trace slot. Nested calls append to
	// m.trace and may reallocate its backing array, so the pointer is
	// refreshed after every call instruction. Maintaining the trace
	// eagerly is deliberate: a deferred contribution during exit() unwind
	// measures ~20% slower here because the defer disqualifies execBC
	// from open-coding and taxes every return.
	var tr *probes.Escape
	if m.sparse {
		tr = &m.trace[len(m.trace)-1]
		pv = m.pv
	} else {
		counts = m.prof.BlockCounts[fnIdx]
		factor = m.factor[fnIdx]
	}
	for pc := 0; ; pc++ {
		in := &code[pc]
		switch in.Op {
		case bc.OpBlockFull:
			m.steps++
			if m.steps > m.maxT {
				m.budgetExhausted = true
				m.fail("step budget exceeded (%d block executions)", m.maxT)
			}
			counts[in.A]++
			m.cycles += float64(in.B) * factor
		case bc.OpBlockSparse:
			m.steps++
			if m.steps > m.maxT {
				m.budgetExhausted = true
				m.fail("step budget exceeded (%d block executions)", m.maxT)
			}
			tr.Block = int(in.A)
		case bc.OpJump:
			pc = int(in.A) - 1
		case bc.OpBr:
			m.vsp--
			taken := isTrue(m.vstack[m.vsp])
			if in.C >= 0 {
				if taken {
					m.prof.BranchTaken[in.C]++
				} else {
					m.prof.BranchNot[in.C]++
				}
			}
			if taken {
				pc = int(in.A) - 1
			} else {
				pc = int(in.B) - 1
			}
		case bc.OpBrProbe:
			m.vsp--
			if isTrue(m.vstack[m.vsp]) {
				if in.C&1 == 0 {
					pv[in.C>>1]++
				}
				pc = int(in.A) - 1
			} else {
				if in.C&1 == 1 {
					pv[in.C>>1]++
				}
				pc = int(in.B) - 1
			}
		case bc.OpJumpTrue:
			m.vsp--
			if isTrue(m.vstack[m.vsp]) {
				pc = int(in.A) - 1
			}
		case bc.OpJumpFalse:
			m.vsp--
			if !isTrue(m.vstack[m.vsp]) {
				pc = int(in.A) - 1
			}
		case bc.OpSwitch:
			m.vsp--
			tag := m.vstack[m.vsp].i
			st := &f.Switches[in.A]
			arm, def := -1, -1
			for i := range st.Arms {
				a := &st.Arms[i]
				if a.IsDefault {
					def = i
					continue
				}
				for _, v := range a.Vals {
					if v == tag {
						arm = i
					}
				}
				if arm >= 0 {
					break
				}
			}
			if arm < 0 {
				arm = def
			}
			if arm < 0 {
				m.fail("switch value %d matched no arm and no default", tag)
			}
			if st.Site >= 0 {
				m.prof.SwitchArm[st.Site][arm]++
			}
			pc = int(st.Arms[arm].PC) - 1
		case bc.OpRet:
			m.vsp--
			return m.vstack[m.vsp]
		case bc.OpRetZero:
			return value{typ: ctypes.IntType}
		case bc.OpProbeRet:
			pv[in.A]++
			m.vsp--
			return m.vstack[m.vsp]
		case bc.OpProbeRetZero:
			pv[in.A]++
			return value{typ: ctypes.IntType}
		case bc.OpProbe:
			pv[in.A]++
		case bc.OpProbeJump:
			pv[in.A]++
			pc = int(in.B) - 1
		case bc.OpCountSite:
			m.prof.CallSiteCounts[in.A]++
		case bc.OpSetPos:
			m.curPos = f.Pos[in.A]
		case bc.OpFail:
			panic(&RuntimeError{Pos: m.curPos, Msg: f.Msgs[in.A]})
		case bc.OpDrop:
			m.vsp--
		case bc.OpDup:
			m.vstack[m.vsp] = m.vstack[m.vsp-1]
			m.vsp++
		case bc.OpConst:
			k := &f.Consts[in.A]
			m.vstack[m.vsp] = value{typ: k.Typ, i: k.I, f: k.F}
			m.vsp++
		case bc.OpStr:
			m.vstack[m.vsp] = value{typ: in.Typ, i: int64(encodePtr(m.strSeg[in.A], 0))}
			m.vsp++
		case bc.OpFnPtr:
			m.vstack[m.vsp] = value{typ: in.Typ, i: int64(encodeFnPtr(int(in.A)))}
			m.vsp++
		case bc.OpLoadLocal:
			m.vstack[m.vsp] = m.load(frBase+uint64(in.A), in.Typ)
			m.vsp++
		case bc.OpLoadGlobal:
			m.vstack[m.vsp] = m.load(encodePtr(m.globalSeg[in.A], 0), in.Typ)
			m.vsp++
		case bc.OpAddrLocal:
			m.vstack[m.vsp] = value{typ: in.Typ, i: int64(frBase + uint64(in.A))}
			m.vsp++
		case bc.OpAddrGlobal:
			m.vstack[m.vsp] = value{typ: in.Typ, i: int64(encodePtr(m.globalSeg[in.A], 0))}
			m.vsp++
		case bc.OpRetype:
			m.vstack[m.vsp-1].typ = in.Typ
		case bc.OpLoadMem:
			m.vstack[m.vsp-1] = m.load(uint64(m.vstack[m.vsp-1].i), in.Typ)
		case bc.OpLoadMemKeep:
			m.vstack[m.vsp] = m.load(uint64(m.vstack[m.vsp-1].i), in.Typ)
			m.vsp++
		case bc.OpStoreMem:
			m.vsp -= 2
			m.store(uint64(m.vstack[m.vsp].i), in.Typ, m.vstack[m.vsp+1])
		case bc.OpStoreMemV:
			v := m.vstack[m.vsp-1]
			m.store(uint64(m.vstack[m.vsp-2].i), in.Typ, v)
			m.vstack[m.vsp-2] = v
			m.vsp--
		case bc.OpStoreLocal:
			m.vsp--
			m.store(frBase+uint64(in.A), in.Typ, m.vstack[m.vsp])
		case bc.OpStoreLocalV:
			m.store(frBase+uint64(in.A), in.Typ, m.vstack[m.vsp-1])
		case bc.OpStoreGlobal:
			m.vsp--
			m.store(encodePtr(m.globalSeg[in.A], 0), in.Typ, m.vstack[m.vsp])
		case bc.OpStoreGlobalV:
			m.store(encodePtr(m.globalSeg[in.A], 0), in.Typ, m.vstack[m.vsp-1])
		case bc.OpIndexAddr:
			m.vsp--
			idx := m.vstack[m.vsp]
			base := m.vstack[m.vsp-1]
			if base.i == 0 {
				m.curPos = f.Pos[in.A]
				m.fail("indexing a null pointer")
			}
			m.vstack[m.vsp-1] = value{i: base.i + idx.i*int64(in.B)}
		case bc.OpMemberAddr:
			m.vstack[m.vsp-1].i += int64(in.A)
		case bc.OpArrowAddr:
			if m.vstack[m.vsp-1].i == 0 {
				m.curPos = f.Pos[in.B]
				m.fail("-> on null pointer")
			}
			m.vstack[m.vsp-1] = value{i: m.vstack[m.vsp-1].i + int64(in.A)}
		case bc.OpDerefAddr:
			if m.vstack[m.vsp-1].i == 0 {
				m.curPos = f.Pos[in.A]
				m.fail("null pointer dereference")
			}
		case bc.OpTrace:
			if m.memRefs != nil {
				m.traceAccess(f.Exprs[in.A], uint64(m.vstack[m.vsp-1-int(in.B)].i), in.C != 0)
			}
		case bc.OpInitStr:
			si := &f.StrInits[in.B]
			dst := m.checkedSlice(frBase+uint64(in.A), si.Size)
			n := copy(dst, si.Val)
			if int64(n) < si.Size {
				dst[n] = 0
			}
		case bc.OpClear:
			b := m.checkedSlice(frBase+uint64(in.A), int64(in.B))
			for i := range b {
				b[i] = 0
			}
		case bc.OpBinop:
			m.vsp--
			r := m.vstack[m.vsp]
			if in.B >= 0 {
				m.curPos = f.Pos[in.B]
			}
			m.vstack[m.vsp-1] = m.binop(cast.BinaryOp(in.A), m.vstack[m.vsp-1], r)
		case bc.OpNeg:
			v := m.vstack[m.vsp-1]
			if v.typ.IsFloat() {
				m.vstack[m.vsp-1] = floatValue(-v.f, in.Typ)
			} else {
				m.vstack[m.vsp-1] = intValue(-v.i, in.Typ)
			}
		case bc.OpBitNot:
			m.vstack[m.vsp-1] = intValue(^m.vstack[m.vsp-1].i, in.Typ)
		case bc.OpLogNot:
			m.vstack[m.vsp-1] = intValue(b2i(!isTrue(m.vstack[m.vsp-1])), ctypes.IntType)
		case bc.OpBool:
			m.vstack[m.vsp-1] = intValue(b2i(isTrue(m.vstack[m.vsp-1])), ctypes.IntType)
		case bc.OpConvert:
			m.vstack[m.vsp-1] = convert(m, m.vstack[m.vsp-1], in.Typ)
		case bc.OpPostfix:
			old := m.vstack[m.vsp-1]
			m.store(uint64(m.vstack[m.vsp-2].i), in.Typ, m.addScalar(old, int64(in.A)))
			m.vstack[m.vsp-2] = old
			m.vsp--
		case bc.OpPreInc:
			nv := m.addScalar(m.vstack[m.vsp-1], int64(in.A))
			m.store(uint64(m.vstack[m.vsp-2].i), in.Typ, nv)
			m.vstack[m.vsp-2] = nv
			m.vsp--
		case bc.OpCheckFn:
			p := uint64(m.vstack[m.vsp-1].i)
			if p == 0 {
				m.curPos = f.Pos[in.A]
				m.fail("call through null function pointer")
			}
			if !isFnPtr(p) {
				m.curPos = f.Pos[in.A]
				m.fail("call through non-function pointer")
			}
			if idx := fnPtrIndex(p); idx < 0 || idx >= len(m.sem.Funcs) {
				m.fail("corrupt function pointer")
			}
		case bc.OpCall:
			m.curPos = f.Pos[in.C]
			m.bcCall(int(in.A), int(in.B))
			if tr != nil {
				tr = &m.trace[len(m.trace)-1]
			}
		case bc.OpCallPtr:
			nargs := int(in.B)
			fnAt := m.vsp - 1 - nargs
			fnIdx := fnPtrIndex(uint64(m.vstack[fnAt].i))
			copy(m.vstack[fnAt:m.vsp-1], m.vstack[fnAt+1:m.vsp])
			m.vsp--
			m.curPos = f.Pos[in.C]
			m.bcCall(fnIdx, nargs)
			if tr != nil {
				tr = &m.trace[len(m.trace)-1]
			}
		case bc.OpCallBuiltin:
			nargs := int(in.B)
			br := &f.Builtins[in.A]
			m.curPos = f.Pos[in.C]
			ret := m.callBuiltin(br.Name, m.vstack[m.vsp-nargs:m.vsp], br.Call)
			m.vsp -= nargs
			m.vstack[m.vsp] = ret
			m.vsp++
		default:
			m.fail("interp: invalid opcode %d at pc %d", in.Op, pc)
		}
	}
}
