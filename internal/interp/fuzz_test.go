package interp_test

import (
	"os"
	"path/filepath"
	"testing"

	"staticest"
	progen "staticest/internal/gen"
)

// FuzzInterp checks that the whole pipeline — parse, analyze, CFG
// build, interpret under a step cap — never panics, whatever the
// input. Errors are fine (most mutated inputs won't compile, and those
// that do may divide by zero or run out of steps); crashes are not.
// Seeds come from the example corpus and from the generator, whose
// programs exercise the interpreter far deeper than hand-written seeds
// (nested loops, recursion, switches, exit paths).
func FuzzInterp(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "corpus", "*.c"))
	if err != nil {
		f.Fatalf("glob corpus: %v", err)
	}
	if len(paths) == 0 {
		f.Fatal("no seed corpus files found under examples/corpus")
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatalf("read %s: %v", p, err)
		}
		f.Add(src)
	}
	g := progen.New(1)
	for i := 0; i < 8; i++ {
		f.Add(g.Program())
	}
	f.Add([]byte("int main(void) { return 1 / 0; }"))
	f.Add([]byte("int f(int n) { return f(n); } int main(void) { return f(1); }"))
	f.Add([]byte("int main(void) { while (1) {} }"))
	f.Fuzz(func(t *testing.T, src []byte) {
		u, err := staticest.Compile("fuzz.c", src)
		if err != nil {
			return
		}
		res, err := u.Run(staticest.RunOptions{MaxSteps: 50_000})
		if err == nil && res == nil {
			t.Fatal("Run returned nil result and nil error")
		}
	})
}
