package interp

import (
	"math"

	"staticest/internal/cast"
	"staticest/internal/ctypes"
)

// cString reads the NUL-terminated string at p (excluding the NUL).
func (m *Machine) cString(p uint64) []byte {
	if p == 0 {
		m.fail("null string pointer")
	}
	s := m.seg(ptrSeg(p))
	off := ptrOff(p)
	if off < 0 || off > int64(len(s.data)) {
		m.fail("string pointer out of bounds")
	}
	for i := off; i < int64(len(s.data)); i++ {
		if s.data[i] == 0 {
			return s.data[off:i]
		}
	}
	m.fail("unterminated string in %q", s.name)
	return nil
}

func (m *Machine) callBuiltin(name string, args []value, call *cast.Call) value {
	m.builtins++
	iv := func(i int) int64 { return args[i].i }
	pv := func(i int) uint64 { return uint64(args[i].i) }
	fv := func(i int) float64 { return toF(args[i]) }
	ret := func(v int64) value { return intValue(v, ctypes.IntType) }
	retL := func(v int64) value { return intValue(v, ctypes.LongType) }
	retF := func(v float64) value { return floatValue(v, ctypes.DoubleType) }
	retP := func(p uint64, t *ctypes.Type) value { return ptrValue(p, t) }
	void := value{typ: ctypes.VoidType}
	charPtr := charPtrType
	voidPtr := voidPtrType

	need := func(n int) {
		if len(args) < n {
			m.fail("builtin %s: %d arguments, need %d", name, len(args), n)
		}
	}

	switch name {
	case "printf":
		need(1)
		s := m.formatPrintf(m.cString(pv(0)), args[1:])
		m.out.Write(s)
		return ret(int64(len(s)))
	case "sprintf":
		need(2)
		s := m.formatPrintf(m.cString(pv(1)), args[2:])
		dst := m.checkedSlice(pv(0), int64(len(s))+1)
		copy(dst, s)
		dst[len(s)] = 0
		return ret(int64(len(s)))
	case "putchar":
		need(1)
		m.out.WriteByte(byte(iv(0)))
		return ret(iv(0))
	case "puts":
		need(1)
		m.out.Write(m.cString(pv(0)))
		m.out.WriteByte('\n')
		return ret(0)
	case "getchar":
		if m.inPos >= len(m.stdin) {
			return ret(-1)
		}
		c := m.stdin[m.inPos]
		m.inPos++
		return ret(int64(c))
	case "malloc":
		need(1)
		n := iv(0)
		if n < 0 || n > 1<<30 {
			m.fail("malloc of %d bytes", n)
		}
		if n == 0 {
			n = 1
		}
		return retP(encodePtr(m.newSegment(make([]byte, n), segHeap, "malloc"), 0), voidPtr)
	case "calloc":
		need(2)
		n := iv(0) * iv(1)
		if n < 0 || n > 1<<30 {
			m.fail("calloc of %d bytes", n)
		}
		if n == 0 {
			n = 1
		}
		return retP(encodePtr(m.newSegment(make([]byte, n), segHeap, "calloc"), 0), voidPtr)
	case "realloc":
		need(2)
		n := iv(1)
		if n < 0 || n > 1<<30 {
			m.fail("realloc to %d bytes", n)
		}
		if n == 0 {
			n = 1
		}
		data := make([]byte, n)
		if p := pv(0); p != 0 {
			old := m.seg(ptrSeg(p))
			if old.kind != segHeap {
				m.fail("realloc of non-heap pointer")
			}
			copy(data, old.data[ptrOff(p):])
			old.freed = true
		}
		return retP(encodePtr(m.newSegment(data, segHeap, "realloc"), 0), voidPtr)
	case "free":
		need(1)
		p := pv(0)
		if p == 0 {
			return void
		}
		s := m.seg(ptrSeg(p))
		if s.kind != segHeap {
			m.fail("free of non-heap pointer (%s)", s.name)
		}
		s.freed = true
		return void
	case "strlen":
		need(1)
		return retL(int64(len(m.cString(pv(0)))))
	case "strcmp":
		need(2)
		return ret(int64(cmpBytes(m.cString(pv(0)), m.cString(pv(1)))))
	case "strncmp":
		need(3)
		a, b := m.cString(pv(0)), m.cString(pv(1))
		n := iv(2)
		a = clipBytes(a, n)
		b = clipBytes(b, n)
		return ret(int64(cmpBytes(a, b)))
	case "strcpy":
		need(2)
		src := m.cString(pv(1))
		dst := m.checkedSlice(pv(0), int64(len(src))+1)
		copy(dst, src)
		dst[len(src)] = 0
		return retP(pv(0), charPtr)
	case "strncpy":
		need(3)
		src := m.cString(pv(1))
		n := iv(2)
		dst := m.checkedSlice(pv(0), n)
		for i := int64(0); i < n; i++ {
			if i < int64(len(src)) {
				dst[i] = src[i]
			} else {
				dst[i] = 0
			}
		}
		return retP(pv(0), charPtr)
	case "strcat":
		need(2)
		cur := m.cString(pv(0))
		src := m.cString(pv(1))
		dst := m.checkedSlice(pv(0), int64(len(cur)+len(src))+1)
		copy(dst[len(cur):], src)
		dst[len(cur)+len(src)] = 0
		return retP(pv(0), charPtr)
	case "strchr":
		need(2)
		s := m.cString(pv(0))
		c := byte(iv(1))
		for i := 0; i <= len(s); i++ {
			var b byte
			if i < len(s) {
				b = s[i]
			}
			if b == c {
				return retP(pv(0)+uint64(i), charPtr)
			}
		}
		return retP(0, charPtr)
	case "strstr":
		need(2)
		hay := m.cString(pv(0))
		needle := m.cString(pv(1))
		if len(needle) == 0 {
			return retP(pv(0), charPtr)
		}
		for i := 0; i+len(needle) <= len(hay); i++ {
			if string(hay[i:i+len(needle)]) == string(needle) {
				return retP(pv(0)+uint64(i), charPtr)
			}
		}
		return retP(0, charPtr)
	case "memset":
		need(3)
		n := iv(2)
		dst := m.checkedSlice(pv(0), n)
		c := byte(iv(1))
		for i := range dst {
			dst[i] = c
		}
		return retP(pv(0), voidPtr)
	case "memcpy", "memmove":
		need(3)
		n := iv(2)
		dst := m.checkedSlice(pv(0), n)
		src := m.checkedSlice(pv(1), n)
		copy(dst, src) // Go copy handles overlap front-to-back; acceptable here
		return retP(pv(0), voidPtr)
	case "memcmp":
		need(3)
		n := iv(2)
		a := m.checkedSlice(pv(0), n)
		b := m.checkedSlice(pv(1), n)
		return ret(int64(cmpBytes(a, b)))
	case "atoi", "atol":
		need(1)
		v := parseCInt(m.cString(pv(0)))
		if name == "atoi" {
			return ret(truncInt(v, ctypes.IntType))
		}
		return retL(v)
	case "atof":
		need(1)
		return retF(parseCFloat(m.cString(pv(0))))
	case "abs":
		need(1)
		v := truncInt(iv(0), ctypes.IntType)
		if v < 0 {
			v = -v
		}
		return ret(v)
	case "labs":
		need(1)
		v := iv(0)
		if v < 0 {
			v = -v
		}
		return retL(v)
	case "exit":
		need(1)
		panic(exitPanic{code: int(int32(iv(0)))})
	case "abort":
		m.fail("abort() called")
	case "rand":
		m.rng = m.rng*6364136223846793005 + 1442695040888963407
		return ret(int64((m.rng >> 33) & 0x7fffffff))
	case "srand":
		need(1)
		m.rng = uint64(iv(0))*2862933555777941757 + 3037000493
		return void
	case "sqrt":
		need(1)
		return retF(math.Sqrt(fv(0)))
	case "fabs":
		need(1)
		return retF(math.Abs(fv(0)))
	case "sin":
		need(1)
		return retF(math.Sin(fv(0)))
	case "cos":
		need(1)
		return retF(math.Cos(fv(0)))
	case "tan":
		need(1)
		return retF(math.Tan(fv(0)))
	case "exp":
		need(1)
		return retF(math.Exp(fv(0)))
	case "log":
		need(1)
		return retF(math.Log(fv(0)))
	case "pow":
		need(2)
		return retF(math.Pow(fv(0), fv(1)))
	case "floor":
		need(1)
		return retF(math.Floor(fv(0)))
	case "ceil":
		need(1)
		return retF(math.Ceil(fv(0)))
	case "fmod":
		need(1)
		return retF(math.Mod(fv(0), fv(1)))
	case "isdigit":
		need(1)
		return ret(b2i(iv(0) >= '0' && iv(0) <= '9'))
	case "isalpha":
		need(1)
		c := iv(0)
		return ret(b2i(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'))
	case "isalnum":
		need(1)
		c := iv(0)
		return ret(b2i(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'))
	case "isspace":
		need(1)
		c := iv(0)
		return ret(b2i(c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f'))
	case "isupper":
		need(1)
		return ret(b2i(iv(0) >= 'A' && iv(0) <= 'Z'))
	case "islower":
		need(1)
		return ret(b2i(iv(0) >= 'a' && iv(0) <= 'z'))
	case "ispunct":
		need(1)
		c := iv(0)
		graph := c > ' ' && c < 127
		alnum := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
		return ret(b2i(graph && !alnum))
	case "toupper":
		need(1)
		c := iv(0)
		if c >= 'a' && c <= 'z' {
			c -= 32
		}
		return ret(c)
	case "tolower":
		need(1)
		c := iv(0)
		if c >= 'A' && c <= 'Z' {
			c += 32
		}
		return ret(c)
	}
	m.fail("call to unknown builtin %q", name)
	return value{}
}

func clipBytes(b []byte, n int64) []byte {
	if int64(len(b)) > n {
		return b[:n]
	}
	return b
}

func cmpBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

func parseCInt(s []byte) int64 {
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n') {
		i++
	}
	neg := false
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		neg = s[i] == '-'
		i++
	}
	var v int64
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		v = v*10 + int64(s[i]-'0')
		i++
	}
	if neg {
		return -v
	}
	return v
}

func parseCFloat(s []byte) float64 {
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n') {
		i++
	}
	start := i
	if i < len(s) && (s[i] == '+' || s[i] == '-') {
		i++
	}
	for i < len(s) && (s[i] >= '0' && s[i] <= '9' || s[i] == '.') {
		i++
	}
	if i < len(s) && (s[i] == 'e' || s[i] == 'E') {
		i++
		if i < len(s) && (s[i] == '+' || s[i] == '-') {
			i++
		}
		for i < len(s) && s[i] >= '0' && s[i] <= '9' {
			i++
		}
	}
	var f float64
	if n, err := parseFloatBytes(s[start:i]); err == nil {
		f = n
	}
	return f
}

func parseFloatBytes(b []byte) (float64, error) {
	// Minimal strconv-free parse to keep the dependency surface tiny.
	var mantissa float64
	var exp int
	i := 0
	neg := false
	if i < len(b) && (b[i] == '+' || b[i] == '-') {
		neg = b[i] == '-'
		i++
	}
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		mantissa = mantissa*10 + float64(b[i]-'0')
		i++
	}
	if i < len(b) && b[i] == '.' {
		i++
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			mantissa = mantissa*10 + float64(b[i]-'0')
			exp--
			i++
		}
	}
	if i < len(b) && (b[i] == 'e' || b[i] == 'E') {
		i++
		eneg := false
		if i < len(b) && (b[i] == '+' || b[i] == '-') {
			eneg = b[i] == '-'
			i++
		}
		e := 0
		for i < len(b) && b[i] >= '0' && b[i] <= '9' {
			e = e*10 + int(b[i]-'0')
			i++
		}
		if eneg {
			e = -e
		}
		exp += e
	}
	f := mantissa * math.Pow(10, float64(exp))
	if neg {
		f = -f
	}
	return f, nil
}
