package interp_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"staticest/internal/interp"
)

// This file cross-checks the interpreter's integer arithmetic against a
// Go model of C `int` semantics: every operation computes on int64
// operands and truncates the result to int32, which is exactly what the
// evaluator does. Random expression trees are rendered to C, run under
// the interpreter, and compared against the model.

type genExpr struct {
	c    string
	eval func(env []int64) int64
}

func trunc32(v int64) int64 { return int64(int32(v)) }

// gen builds a random expression over variables a..e (env indices 0..4).
func gen(rng *rand.Rand, depth int) genExpr {
	if depth <= 0 || rng.Intn(4) == 0 {
		if rng.Intn(2) == 0 {
			v := int64(rng.Intn(201) - 100)
			return genExpr{
				c:    fmt.Sprintf("%d", v),
				eval: func([]int64) int64 { return v },
			}
		}
		i := rng.Intn(5)
		return genExpr{
			c:    string(rune('a' + i)),
			eval: func(env []int64) int64 { return env[i] },
		}
	}
	l := gen(rng, depth-1)
	r := gen(rng, depth-1)
	switch rng.Intn(12) {
	case 0:
		return bin(l, r, "+", func(a, b int64) int64 { return trunc32(a + b) })
	case 1:
		return bin(l, r, "-", func(a, b int64) int64 { return trunc32(a - b) })
	case 2:
		return bin(l, r, "*", func(a, b int64) int64 { return trunc32(a * b) })
	case 3:
		// Guard the divisor: (r | 1) is never zero.
		return genExpr{
			c: fmt.Sprintf("(%s / (%s | 1))", l.c, r.c),
			eval: func(env []int64) int64 {
				return trunc32(l.eval(env) / (r.eval(env) | 1))
			},
		}
	case 4:
		return genExpr{
			c: fmt.Sprintf("(%s %% (%s | 1))", l.c, r.c),
			eval: func(env []int64) int64 {
				return trunc32(l.eval(env) % (r.eval(env) | 1))
			},
		}
	case 5:
		return bin(l, r, "&", func(a, b int64) int64 { return trunc32(a & b) })
	case 6:
		return bin(l, r, "|", func(a, b int64) int64 { return trunc32(a | b) })
	case 7:
		return bin(l, r, "^", func(a, b int64) int64 { return trunc32(a ^ b) })
	case 8:
		n := rng.Intn(8)
		return genExpr{
			c: fmt.Sprintf("(%s << %d)", l.c, n),
			eval: func(env []int64) int64 {
				return trunc32(l.eval(env) << uint(n))
			},
		}
	case 9:
		n := rng.Intn(8)
		return genExpr{
			c: fmt.Sprintf("(%s >> %d)", l.c, n),
			eval: func(env []int64) int64 {
				return trunc32(l.eval(env) >> uint(n))
			},
		}
	case 10:
		return bin(l, r, "<", func(a, b int64) int64 { return b2i(a < b) })
	default:
		cnd := gen(rng, depth-1)
		return genExpr{
			c: fmt.Sprintf("(%s ? %s : %s)", cnd.c, l.c, r.c),
			eval: func(env []int64) int64 {
				if cnd.eval(env) != 0 {
					return l.eval(env)
				}
				return r.eval(env)
			},
		}
	}
}

func bin(l, r genExpr, op string, f func(a, b int64) int64) genExpr {
	return genExpr{
		c: fmt.Sprintf("(%s %s %s)", l.c, op, r.c),
		eval: func(env []int64) int64 {
			return f(l.eval(env), r.eval(env))
		},
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func TestDifferentialIntegerExpressions(t *testing.T) {
	rng := rand.New(rand.NewSource(20260704))
	const trials = 60
	const exprsPerTrial = 8
	for trial := 0; trial < trials; trial++ {
		env := make([]int64, 5)
		var decls strings.Builder
		for i := range env {
			env[i] = int64(rng.Intn(2001) - 1000)
			fmt.Fprintf(&decls, "int %c = %d;\n", 'a'+i, env[i])
		}
		var exprs []genExpr
		var body strings.Builder
		for i := 0; i < exprsPerTrial; i++ {
			e := gen(rng, 4)
			exprs = append(exprs, e)
			fmt.Fprintf(&body, "printf(\"%%d\\n\", %s);\n", e.c)
		}
		src := decls.String() + "int main(void) {\n" + body.String() + "return 0;\n}\n"
		res := run(t, src, interp.Options{})
		lines := strings.Split(strings.TrimSpace(string(res.Output)), "\n")
		if len(lines) != exprsPerTrial {
			t.Fatalf("trial %d: %d output lines, want %d\nsource:\n%s",
				trial, len(lines), exprsPerTrial, src)
		}
		for i, e := range exprs {
			want := fmt.Sprintf("%d", int32(e.eval(env)))
			if lines[i] != want {
				t.Errorf("trial %d expr %d: interpreter says %s, model says %s\nexpr: %s\nenv: %v",
					trial, i, lines[i], want, e.c, env)
			}
		}
	}
}

// TestDifferentialUnsigned repeats the exercise for unsigned int
// arithmetic, whose wrap-around and comparison rules differ.
func TestDifferentialUnsigned(t *testing.T) {
	rng := rand.New(rand.NewSource(1994))
	for trial := 0; trial < 40; trial++ {
		a := uint32(rng.Uint64())
		b := uint32(rng.Uint64())
		if b == 0 {
			b = 1
		}
		src := fmt.Sprintf(`
unsigned int a = %du;
unsigned int b = %du;
int main(void) {
	printf("%%u %%u %%u %%u %%u %%d\n", a + b, a - b, a * b, a / b, a %% b, a < b ? 1 : 0);
	return 0;
}`, a, b)
		res := run(t, src, interp.Options{})
		want := fmt.Sprintf("%d %d %d %d %d %d\n",
			a+b, a-b, a*b, a/b, a%b, b2i(uint64(a) < uint64(b)))
		if string(res.Output) != want {
			t.Errorf("trial %d (a=%d b=%d):\n got %q\nwant %q", trial, a, b, res.Output, want)
		}
	}
}
