// Package clex lexes the C subset. It includes a light preprocessing pass:
// // and /* */ comments are stripped, object-like #define macros are
// expanded, and #include lines are ignored (the interpreter provides the
// needed library functions as builtins).
package clex

import (
	"fmt"
	"strings"

	"staticest/internal/ctoken"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos ctoken.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer turns C source text into tokens.
type Lexer struct {
	src    []byte
	file   string
	off    int
	line   int
	col    int
	macros map[string][]ctoken.Token // object-like #define expansions
	// pending holds tokens produced by macro expansion, consumed before
	// further scanning.
	pending []ctoken.Token
	err     error
}

// New creates a Lexer for src. The file name is used in positions.
func New(file string, src []byte) *Lexer {
	return &Lexer{
		src:    src,
		file:   file,
		line:   1,
		col:    1,
		macros: make(map[string][]ctoken.Token),
	}
}

// Tokenize scans the entire input and returns the token stream, ending
// with an EOF token.
func Tokenize(file string, src []byte) ([]ctoken.Token, error) {
	lx := New(file, src)
	var toks []ctoken.Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == ctoken.EOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) pos() ctoken.Pos {
	return ctoken.Pos{File: lx.file, Line: lx.line, Col: lx.col}
}

func (lx *Lexer) errorf(pos ctoken.Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (lx *Lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peekByte2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

// skipSpaceAndComments consumes whitespace and comments. It reports
// whether a newline was crossed (needed for directive handling).
func (lx *Lexer) skipSpaceAndComments() (sawNewline bool, err error) {
	for lx.off < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f':
			lx.advance()
		case c == '\n':
			sawNewline = true
			lx.advance()
		case c == '\\' && lx.peekByte2() == '\n':
			lx.advance()
			lx.advance()
		case c == '/' && lx.peekByte2() == '/':
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peekByte2() == '*':
			pos := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peekByte() == '*' && lx.peekByte2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				if lx.peekByte() == '\n' {
					sawNewline = true
				}
				lx.advance()
			}
			if !closed {
				return sawNewline, lx.errorf(pos, "unterminated block comment")
			}
		default:
			return sawNewline, nil
		}
	}
	return sawNewline, nil
}

// Next returns the next token, expanding macros and processing directives.
func (lx *Lexer) Next() (ctoken.Token, error) {
	if len(lx.pending) > 0 {
		t := lx.pending[0]
		lx.pending = lx.pending[1:]
		return t, nil
	}
	for {
		if _, err := lx.skipSpaceAndComments(); err != nil {
			return ctoken.Token{}, err
		}
		if lx.off >= len(lx.src) {
			return ctoken.Token{Kind: ctoken.EOF, Pos: lx.pos()}, nil
		}
		if lx.peekByte() == '#' && lx.col == 1 {
			if err := lx.directive(); err != nil {
				return ctoken.Token{}, err
			}
			continue
		}
		tok, err := lx.scanToken()
		if err != nil {
			return ctoken.Token{}, err
		}
		if tok.Kind == ctoken.Ident {
			if exp, ok := lx.macros[tok.Text]; ok {
				// Object-like macro expansion (no recursion on the same
				// name is possible because stored bodies were expanded at
				// definition time for already-known macros only; direct
				// self-reference is rejected in directive()).
				reloc := make([]ctoken.Token, len(exp))
				for i, t := range exp {
					t.Pos = tok.Pos
					reloc[i] = t
				}
				if len(reloc) == 0 {
					continue
				}
				lx.pending = append(lx.pending, reloc[1:]...)
				return reloc[0], nil
			}
		}
		return tok, nil
	}
}

// directive handles a line starting with '#'. Supported: #define NAME
// tokens... (object-like), #undef NAME, and #include (ignored). Other
// directives are errors, keeping the subset honest.
func (lx *Lexer) directive() error {
	pos := lx.pos()
	lx.advance() // '#'
	name, err := lx.directiveWord()
	if err != nil {
		return err
	}
	switch name {
	case "include":
		lx.skipToEOL()
		return nil
	case "undef":
		word, err := lx.directiveWord()
		if err != nil {
			return err
		}
		delete(lx.macros, word)
		lx.skipToEOL()
		return nil
	case "define":
		macro, err := lx.directiveWord()
		if err != nil {
			return err
		}
		if lx.peekByte() == '(' {
			return lx.errorf(pos, "function-like macro %q not supported", macro)
		}
		var body []ctoken.Token
		for {
			eol, err := lx.skipSpaceInLine()
			if err != nil {
				return err
			}
			if eol || lx.off >= len(lx.src) {
				break
			}
			t, err := lx.scanToken()
			if err != nil {
				return err
			}
			if t.Kind == ctoken.Ident {
				if t.Text == macro {
					return lx.errorf(pos, "macro %q references itself", macro)
				}
				if exp, ok := lx.macros[t.Text]; ok {
					body = append(body, exp...)
					continue
				}
			}
			body = append(body, t)
		}
		lx.macros[macro] = body
		return nil
	default:
		return lx.errorf(pos, "unsupported preprocessor directive #%s", name)
	}
}

// skipSpaceInLine consumes spaces, tabs and line continuations without
// crossing a newline; reports whether end-of-line was reached.
func (lx *Lexer) skipSpaceInLine() (bool, error) {
	for lx.off < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			lx.advance()
		case c == '\\' && lx.peekByte2() == '\n':
			lx.advance()
			lx.advance()
		case c == '/' && lx.peekByte2() == '*':
			if _, err := lx.skipSpaceAndComments(); err != nil {
				return false, err
			}
		case c == '\n':
			return true, nil
		default:
			return false, nil
		}
	}
	return true, nil
}

func (lx *Lexer) skipToEOL() {
	for lx.off < len(lx.src) && lx.peekByte() != '\n' {
		lx.advance()
	}
}

func (lx *Lexer) directiveWord() (string, error) {
	if _, err := lx.skipSpaceInLine(); err != nil {
		return "", err
	}
	start := lx.off
	for lx.off < len(lx.src) && isIdentByte(lx.peekByte()) {
		lx.advance()
	}
	if lx.off == start {
		return "", lx.errorf(lx.pos(), "expected identifier in preprocessor directive")
	}
	return string(lx.src[start:lx.off]), nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentByte(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// scanToken scans a single raw token (no macro expansion, no directives).
func (lx *Lexer) scanToken() (ctoken.Token, error) {
	pos := lx.pos()
	c := lx.peekByte()
	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentByte(lx.peekByte()) {
			lx.advance()
		}
		text := string(lx.src[start:lx.off])
		if kw, ok := ctoken.Keywords[text]; ok {
			return ctoken.Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return ctoken.Token{Kind: ctoken.Ident, Text: text, Pos: pos}, nil
	case isDigit(c) || (c == '.' && isDigit(lx.peekByte2())):
		return lx.scanNumber(pos)
	case c == '\'':
		return lx.scanChar(pos)
	case c == '"':
		return lx.scanString(pos)
	default:
		return lx.scanOperator(pos)
	}
}

func (lx *Lexer) scanNumber(pos ctoken.Pos) (ctoken.Token, error) {
	start := lx.off
	isFloat := false
	if lx.peekByte() == '0' && (lx.peekByte2() == 'x' || lx.peekByte2() == 'X') {
		lx.advance()
		lx.advance()
		for lx.off < len(lx.src) && isHexDigit(lx.peekByte()) {
			lx.advance()
		}
	} else {
		for lx.off < len(lx.src) && isDigit(lx.peekByte()) {
			lx.advance()
		}
		if lx.peekByte() == '.' {
			isFloat = true
			lx.advance()
			for lx.off < len(lx.src) && isDigit(lx.peekByte()) {
				lx.advance()
			}
		}
		if e := lx.peekByte(); e == 'e' || e == 'E' {
			next := lx.peekByte2()
			if isDigit(next) || next == '+' || next == '-' {
				isFloat = true
				lx.advance() // e
				if b := lx.peekByte(); b == '+' || b == '-' {
					lx.advance()
				}
				for lx.off < len(lx.src) && isDigit(lx.peekByte()) {
					lx.advance()
				}
			}
		}
	}
	text := string(lx.src[start:lx.off])
	// Suffixes.
	unsigned := false
	long := false
	for {
		switch lx.peekByte() {
		case 'u', 'U':
			unsigned = true
			lx.advance()
			continue
		case 'l', 'L':
			long = true
			lx.advance()
			continue
		case 'f', 'F':
			if isFloat {
				lx.advance()
				continue
			}
		}
		break
	}
	if isFloat {
		var f float64
		if _, err := fmt.Sscanf(text, "%g", &f); err != nil {
			return ctoken.Token{}, lx.errorf(pos, "invalid float literal %q", text)
		}
		return ctoken.Token{Kind: ctoken.FloatLit, Text: text, Pos: pos, FloatVal: f}, nil
	}
	v, uns, err := parseIntLiteral(text)
	if err != nil {
		return ctoken.Token{}, lx.errorf(pos, "invalid integer literal %q: %v", text, err)
	}
	return ctoken.Token{
		Kind: ctoken.IntLit, Text: text, Pos: pos,
		IntVal: v, Unsigned: unsigned || uns, Long: long,
	}, nil
}

func parseIntLiteral(text string) (val uint64, unsigned bool, err error) {
	base := 10
	s := text
	switch {
	case strings.HasPrefix(text, "0x") || strings.HasPrefix(text, "0X"):
		base = 16
		s = text[2:]
	case len(text) > 1 && text[0] == '0':
		base = 8
		s = text[1:]
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		d := digitVal(s[i])
		if d < 0 || d >= base {
			return 0, false, fmt.Errorf("bad digit %q", s[i])
		}
		nv := v*uint64(base) + uint64(d)
		if nv < v {
			return 0, false, fmt.Errorf("overflow")
		}
		v = nv
	}
	return v, v > 1<<63-1, nil
}

func digitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

func (lx *Lexer) scanEscape(pos ctoken.Pos) (byte, error) {
	lx.advance() // backslash
	if lx.off >= len(lx.src) {
		return 0, lx.errorf(pos, "unterminated escape sequence")
	}
	c := lx.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0', '1', '2', '3', '4', '5', '6', '7':
		v := int(c - '0')
		for i := 0; i < 2 && lx.off < len(lx.src); i++ {
			d := lx.peekByte()
			if d < '0' || d > '7' {
				break
			}
			v = v*8 + int(d-'0')
			lx.advance()
		}
		return byte(v), nil
	case 'x':
		v := 0
		n := 0
		for lx.off < len(lx.src) && isHexDigit(lx.peekByte()) {
			v = v*16 + digitVal(lx.peekByte())
			lx.advance()
			n++
		}
		if n == 0 {
			return 0, lx.errorf(pos, "\\x with no hex digits")
		}
		return byte(v), nil
	case '\\':
		return '\\', nil
	case '\'':
		return '\'', nil
	case '"':
		return '"', nil
	case 'a':
		return 7, nil
	case 'b':
		return 8, nil
	case 'f':
		return 12, nil
	case 'v':
		return 11, nil
	case '?':
		return '?', nil
	default:
		return 0, lx.errorf(pos, "unknown escape sequence \\%c", c)
	}
}

func (lx *Lexer) scanChar(pos ctoken.Pos) (ctoken.Token, error) {
	lx.advance() // opening quote
	if lx.off >= len(lx.src) {
		return ctoken.Token{}, lx.errorf(pos, "unterminated character literal")
	}
	var v byte
	if lx.peekByte() == '\\' {
		b, err := lx.scanEscape(pos)
		if err != nil {
			return ctoken.Token{}, err
		}
		v = b
	} else {
		v = lx.advance()
	}
	if lx.off >= len(lx.src) || lx.peekByte() != '\'' {
		return ctoken.Token{}, lx.errorf(pos, "unterminated character literal")
	}
	lx.advance()
	return ctoken.Token{Kind: ctoken.CharLit, Text: string(v), Pos: pos, IntVal: uint64(v)}, nil
}

func (lx *Lexer) scanString(pos ctoken.Pos) (ctoken.Token, error) {
	var buf []byte
	for {
		lx.advance() // opening quote
		for {
			if lx.off >= len(lx.src) {
				return ctoken.Token{}, lx.errorf(pos, "unterminated string literal")
			}
			c := lx.peekByte()
			if c == '"' {
				lx.advance()
				break
			}
			if c == '\n' {
				return ctoken.Token{}, lx.errorf(pos, "newline in string literal")
			}
			if c == '\\' {
				b, err := lx.scanEscape(pos)
				if err != nil {
					return ctoken.Token{}, err
				}
				buf = append(buf, b)
				continue
			}
			buf = append(buf, lx.advance())
		}
		// Adjacent string literals concatenate.
		save := *lx
		if _, err := lx.skipSpaceAndComments(); err != nil {
			return ctoken.Token{}, err
		}
		if lx.off < len(lx.src) && lx.peekByte() == '"' {
			continue
		}
		*lx = save
		return ctoken.Token{Kind: ctoken.StrLit, Pos: pos, StrVal: buf, Text: string(buf)}, nil
	}
}

func (lx *Lexer) scanOperator(pos ctoken.Pos) (ctoken.Token, error) {
	mk := func(k ctoken.Kind, n int) (ctoken.Token, error) {
		for i := 0; i < n; i++ {
			lx.advance()
		}
		return ctoken.Token{Kind: k, Pos: pos}, nil
	}
	c := lx.peekByte()
	d := lx.peekByte2()
	var e byte
	if lx.off+2 < len(lx.src) {
		e = lx.src[lx.off+2]
	}
	switch c {
	case '(':
		return mk(ctoken.LParen, 1)
	case ')':
		return mk(ctoken.RParen, 1)
	case '{':
		return mk(ctoken.LBrace, 1)
	case '}':
		return mk(ctoken.RBrace, 1)
	case '[':
		return mk(ctoken.LBrack, 1)
	case ']':
		return mk(ctoken.RBrack, 1)
	case ';':
		return mk(ctoken.Semi, 1)
	case ',':
		return mk(ctoken.Comma, 1)
	case ':':
		return mk(ctoken.Colon, 1)
	case '?':
		return mk(ctoken.Question, 1)
	case '~':
		return mk(ctoken.Tilde, 1)
	case '.':
		if d == '.' && e == '.' {
			return mk(ctoken.Ellipsis, 3)
		}
		return mk(ctoken.Dot, 1)
	case '+':
		switch d {
		case '+':
			return mk(ctoken.Inc, 2)
		case '=':
			return mk(ctoken.AddAssign, 2)
		}
		return mk(ctoken.Plus, 1)
	case '-':
		switch d {
		case '-':
			return mk(ctoken.Dec, 2)
		case '=':
			return mk(ctoken.SubAssign, 2)
		case '>':
			return mk(ctoken.Arrow, 2)
		}
		return mk(ctoken.Minus, 1)
	case '*':
		if d == '=' {
			return mk(ctoken.MulAssign, 2)
		}
		return mk(ctoken.Star, 1)
	case '/':
		if d == '=' {
			return mk(ctoken.DivAssign, 2)
		}
		return mk(ctoken.Slash, 1)
	case '%':
		if d == '=' {
			return mk(ctoken.RemAssign, 2)
		}
		return mk(ctoken.Percent, 1)
	case '&':
		switch d {
		case '&':
			return mk(ctoken.AndAnd, 2)
		case '=':
			return mk(ctoken.AndAssign, 2)
		}
		return mk(ctoken.Amp, 1)
	case '|':
		switch d {
		case '|':
			return mk(ctoken.OrOr, 2)
		case '=':
			return mk(ctoken.OrAssign, 2)
		}
		return mk(ctoken.Pipe, 1)
	case '^':
		if d == '=' {
			return mk(ctoken.XorAssign, 2)
		}
		return mk(ctoken.Caret, 1)
	case '!':
		if d == '=' {
			return mk(ctoken.NotEq, 2)
		}
		return mk(ctoken.Not, 1)
	case '=':
		if d == '=' {
			return mk(ctoken.EqEq, 2)
		}
		return mk(ctoken.Assign, 1)
	case '<':
		switch d {
		case '<':
			if e == '=' {
				return mk(ctoken.ShlAssign, 3)
			}
			return mk(ctoken.Shl, 2)
		case '=':
			return mk(ctoken.Le, 2)
		}
		return mk(ctoken.Lt, 1)
	case '>':
		switch d {
		case '>':
			if e == '=' {
				return mk(ctoken.ShrAssign, 3)
			}
			return mk(ctoken.Shr, 2)
		case '=':
			return mk(ctoken.Ge, 2)
		}
		return mk(ctoken.Gt, 1)
	}
	return ctoken.Token{}, lx.errorf(pos, "unexpected character %q", c)
}
