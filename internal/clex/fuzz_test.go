package clex_test

import (
	"os"
	"path/filepath"
	"testing"

	"staticest/internal/clex"
	"staticest/internal/ctoken"
	"staticest/internal/gen"
)

// seedCorpus loads the C-subset programs under examples/corpus as fuzz
// seeds, plus a few generated programs — richer control flow than any
// of the hand-written examples.
func seedCorpus(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "corpus", "*.c"))
	if err != nil {
		f.Fatalf("glob corpus: %v", err)
	}
	if len(paths) == 0 {
		f.Fatal("no seed corpus files found under examples/corpus")
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatalf("read %s: %v", p, err)
		}
		f.Add(src)
	}
	g := gen.New(1)
	for i := 0; i < 4; i++ {
		f.Add(g.Program())
	}
}

// FuzzLex checks that the lexer never panics and that on success it
// produces a token stream terminated by exactly one EOF token.
func FuzzLex(f *testing.F) {
	seedCorpus(f)
	f.Add([]byte("int main(void) { return 'x'; }"))
	f.Add([]byte(`"unterminated`))
	f.Add([]byte("/* unterminated comment"))
	f.Add([]byte("#define A B\n#include <x.h>\nA"))
	f.Add([]byte("0x 0755 1e 1e+ .5. '\\"))
	f.Fuzz(func(t *testing.T, src []byte) {
		toks, err := clex.Tokenize("fuzz.c", src)
		if err != nil {
			return
		}
		if len(toks) == 0 {
			t.Fatal("Tokenize returned no tokens and no error")
		}
		last := toks[len(toks)-1]
		if last.Kind != ctoken.EOF {
			t.Fatalf("token stream does not end in EOF: got %v %q", last.Kind, last.Text)
		}
		for i, tok := range toks[:len(toks)-1] {
			if tok.Kind == ctoken.EOF {
				t.Fatalf("EOF token at position %d of %d", i, len(toks))
			}
		}
	})
}
