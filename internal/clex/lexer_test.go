package clex

import (
	"strings"
	"testing"

	"staticest/internal/ctoken"
)

func kinds(t *testing.T, src string) []ctoken.Kind {
	t.Helper()
	toks, err := Tokenize("t.c", []byte(src))
	if err != nil {
		t.Fatalf("Tokenize(%q): %v", src, err)
	}
	out := make([]ctoken.Kind, 0, len(toks)-1)
	for _, tok := range toks {
		if tok.Kind != ctoken.EOF {
			out = append(out, tok.Kind)
		}
	}
	return out
}

func TestOperators(t *testing.T) {
	src := `+ - * / % ++ -- += -= *= /= %= == != <= >= < > << >> <<= >>= && || & | ^ ~ ! = -> . ... ? : ; , ( ) [ ] { }`
	want := []ctoken.Kind{
		ctoken.Plus, ctoken.Minus, ctoken.Star, ctoken.Slash, ctoken.Percent,
		ctoken.Inc, ctoken.Dec, ctoken.AddAssign, ctoken.SubAssign,
		ctoken.MulAssign, ctoken.DivAssign, ctoken.RemAssign,
		ctoken.EqEq, ctoken.NotEq, ctoken.Le, ctoken.Ge, ctoken.Lt, ctoken.Gt,
		ctoken.Shl, ctoken.Shr, ctoken.ShlAssign, ctoken.ShrAssign,
		ctoken.AndAnd, ctoken.OrOr, ctoken.Amp, ctoken.Pipe, ctoken.Caret,
		ctoken.Tilde, ctoken.Not, ctoken.Assign, ctoken.Arrow, ctoken.Dot,
		ctoken.Ellipsis, ctoken.Question, ctoken.Colon, ctoken.Semi,
		ctoken.Comma, ctoken.LParen, ctoken.RParen, ctoken.LBrack,
		ctoken.RBrack, ctoken.LBrace, ctoken.RBrace,
	}
	got := kinds(t, src)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestIntLiterals(t *testing.T) {
	cases := []struct {
		src      string
		val      uint64
		unsigned bool
		long     bool
	}{
		{"0", 0, false, false},
		{"42", 42, false, false},
		{"0x1f", 31, false, false},
		{"0X1F", 31, false, false},
		{"017", 15, false, false},
		{"42u", 42, true, false},
		{"42L", 42, false, true},
		{"42UL", 42, true, true},
		{"1ul", 1, true, true},
	}
	for _, tc := range cases {
		toks, err := Tokenize("t.c", []byte(tc.src))
		if err != nil {
			t.Errorf("%q: %v", tc.src, err)
			continue
		}
		tok := toks[0]
		if tok.Kind != ctoken.IntLit || tok.IntVal != tc.val ||
			tok.Unsigned != tc.unsigned || tok.Long != tc.long {
			t.Errorf("%q = %+v, want val=%d u=%v l=%v", tc.src, tok, tc.val, tc.unsigned, tc.long)
		}
	}
}

func TestFloatLiterals(t *testing.T) {
	cases := map[string]float64{
		"1.5": 1.5, "0.25": 0.25, ".5": 0.5, "1e3": 1000, "2.5e-2": 0.025,
		"1E2": 100, "3.0f": 3,
	}
	for src, want := range cases {
		toks, err := Tokenize("t.c", []byte(src))
		if err != nil {
			t.Errorf("%q: %v", src, err)
			continue
		}
		if toks[0].Kind != ctoken.FloatLit || toks[0].FloatVal != want {
			t.Errorf("%q = %+v, want %g", src, toks[0], want)
		}
	}
}

func TestCharAndStringLiterals(t *testing.T) {
	toks, err := Tokenize("t.c", []byte(`'a' '\n' '\0' '\x41' '\\' "hi\tthere" ; "a" "b"`))
	if err != nil {
		t.Fatal(err)
	}
	wantChars := []uint64{'a', '\n', 0, 0x41, '\\'}
	for i, w := range wantChars {
		if toks[i].Kind != ctoken.CharLit || toks[i].IntVal != w {
			t.Errorf("char %d = %+v, want %d", i, toks[i], w)
		}
	}
	if string(toks[5].StrVal) != "hi\tthere" {
		t.Errorf("string = %q", toks[5].StrVal)
	}
	// Adjacent string literals concatenate into one token.
	if string(toks[7].StrVal) != "ab" {
		t.Errorf("concatenated = %q", toks[7].StrVal)
	}
}

func TestComments(t *testing.T) {
	got := kinds(t, "a /* block\ncomment */ b // line\nc")
	if len(got) != 3 {
		t.Fatalf("%d tokens, want 3 idents", len(got))
	}
}

func TestPositions(t *testing.T) {
	toks, err := Tokenize("f.c", []byte("a\n  b"))
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
	if s := toks[1].Pos.String(); s != "f.c:2:3" {
		t.Errorf("pos string %q", s)
	}
}

func TestDefineAndUndef(t *testing.T) {
	src := "#define N 3\nint a = N;\n#undef N\nint N;"
	toks, err := Tokenize("t.c", []byte(src))
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tok := range toks {
		if tok.Kind == ctoken.EOF {
			break
		}
		texts = append(texts, tok.String())
	}
	joined := strings.Join(texts, " ")
	if !strings.Contains(joined, `integer literal "3"`) {
		t.Errorf("macro not expanded: %s", joined)
	}
	if !strings.Contains(joined, `identifier "N"`) {
		t.Errorf("undef not honored: %s", joined)
	}
}

func TestIncludeIgnored(t *testing.T) {
	got := kinds(t, "#include <stdio.h>\nint x;")
	if len(got) != 3 { // int, x, ;
		t.Errorf("%d tokens after include, want 3", len(got))
	}
}

func TestLexErrors(t *testing.T) {
	bad := []string{
		"\"unterminated",
		"'",
		"'ab",
		"/* unterminated",
		"#define X(",
		"#pragma once",
		"@",
		"1.5e", // handled: 'e' needs digits... this lexes as 1.5 then ident e — not an error
	}
	for _, src := range bad[:7] {
		if _, err := Tokenize("t.c", []byte(src)); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
	// "1.5e" without exponent digits: '1.5' then identifier 'e'.
	toks, err := Tokenize("t.c", []byte("1.5e"))
	if err != nil {
		t.Fatalf("1.5e: %v", err)
	}
	if toks[0].Kind != ctoken.FloatLit || toks[1].Kind != ctoken.Ident {
		t.Errorf("1.5e lexed as %v %v", toks[0], toks[1])
	}
}

func TestKeywords(t *testing.T) {
	got := kinds(t, "if else while for do switch case default break continue return goto struct enum typedef sizeof")
	want := []ctoken.Kind{
		ctoken.KwIf, ctoken.KwElse, ctoken.KwWhile, ctoken.KwFor, ctoken.KwDo,
		ctoken.KwSwitch, ctoken.KwCase, ctoken.KwDefault, ctoken.KwBreak,
		ctoken.KwContinue, ctoken.KwReturn, ctoken.KwGoto, ctoken.KwStruct,
		ctoken.KwEnum, ctoken.KwTypedef, ctoken.KwSizeof,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("keyword %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLineContinuation(t *testing.T) {
	got := kinds(t, "int \\\n x;")
	if len(got) != 3 {
		t.Errorf("%d tokens, want 3", len(got))
	}
}
