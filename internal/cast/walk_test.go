package cast_test

import (
	"strings"
	"testing"

	"staticest/internal/cast"
	"staticest/internal/cparse"
	"staticest/internal/sem"
)

func parse(t *testing.T, src string) *cast.File {
	t.Helper()
	f, err := cparse.ParseFile("t.c", []byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f
}

func TestWalkExprVisitsAll(t *testing.T) {
	f := parse(t, `int g(int x) { return (x + 1) * (x - 2) / (x ? 3 : 4); }`)
	ret := f.Funcs[0].Body.Stmts[0].(*cast.Return)
	count := 0
	cast.WalkExpr(ret.X, func(e cast.Expr) bool {
		count++
		return true
	})
	// div(mul(add(x,1), sub(x,2)), cond(x,3,4)) = 3 binary + 1 cond +
	// 4 idents + 4 literals = 12.
	if count != 12 {
		t.Errorf("visited %d nodes, want 12", count)
	}
	// Pruning: stop at the top node.
	count = 0
	cast.WalkExpr(ret.X, func(e cast.Expr) bool {
		count++
		return false
	})
	if count != 1 {
		t.Errorf("pruned walk visited %d, want 1", count)
	}
}

func TestWalkStmtVisitsNested(t *testing.T) {
	f := parse(t, `
int g(int x) {
	while (x) {
		if (x > 2) { x--; } else x -= 2;
		switch (x) { case 1: x = 0; break; default: ; }
	}
	return x;
}`)
	var kinds []string
	cast.WalkStmt(f.Funcs[0].Body, func(s cast.Stmt) bool {
		kinds = append(kinds, typeOf(s))
		return true
	})
	joined := strings.Join(kinds, " ")
	for _, want := range []string{"Block", "While", "If", "Switch", "Return", "Break"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %s in walk: %s", want, joined)
		}
	}
}

func typeOf(v any) string {
	switch v.(type) {
	case *cast.Block:
		return "Block"
	case *cast.While:
		return "While"
	case *cast.If:
		return "If"
	case *cast.Switch:
		return "Switch"
	case *cast.Return:
		return "Return"
	case *cast.Break:
		return "Break"
	case *cast.ExprStmt:
		return "ExprStmt"
	case *cast.DeclStmt:
		return "DeclStmt"
	case *cast.Empty:
		return "Empty"
	default:
		return "Other"
	}
}

func TestCalls(t *testing.T) {
	f := parse(t, `
int h(int x) { return x; }
int g(int x) {
	if (h(x)) return h(x + h(1));
	return 0;
}`)
	calls := cast.Calls(f.Funcs[1])
	if len(calls) != 3 {
		t.Errorf("%d calls, want 3", len(calls))
	}
}

func TestContainsHelpers(t *testing.T) {
	f := parse(t, `
void fail(void) { }
int g(int x) {
	if (x) { fail(); }
	if (x > 1) { return 2; }
	return 0;
}`)
	// ContainsCallTo resolves callees through bound objects.
	if _, err := sem.Analyze(f); err != nil {
		t.Fatal(err)
	}
	g := f.Funcs[1]
	if1 := g.Body.Stmts[0].(*cast.If)
	if2 := g.Body.Stmts[1].(*cast.If)
	if !cast.ContainsCallTo(if1.Then, func(n string) bool { return n == "fail" }) {
		t.Error("fail call not found")
	}
	if cast.ContainsCallTo(if2.Then, func(n string) bool { return n == "fail" }) {
		t.Error("phantom call found")
	}
	if cast.ContainsReturn(if1.Then) {
		t.Error("phantom return found")
	}
	if !cast.ContainsReturn(if2.Then) {
		t.Error("return not found")
	}
}

func TestExprString(t *testing.T) {
	f := parse(t, `
struct p { int x; };
int g(struct p *v, int a) {
	return v->x + a * 2 - -a + (a ? 1 : 0);
}`)
	ret := f.Funcs[0].Body.Stmts[0].(*cast.Return)
	s := cast.ExprString(ret.X)
	for _, want := range []string{"v->x", "a * 2", "-a", "a ? 1 : 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("ExprString %q missing %q", s, want)
		}
	}
}

func TestStmtLabel(t *testing.T) {
	f := parse(t, `
int g(int x) {
	while (x > 0) x--;
	if (x) return 1;
	switch (x) { default: break; }
	goto end;
end:
	return 0;
}`)
	labels := map[string]bool{}
	cast.WalkStmt(f.Funcs[0].Body, func(s cast.Stmt) bool {
		labels[cast.StmtLabel(s)] = true
		return true
	})
	for _, want := range []string{"while (x > 0)", "if (x)", "switch (x)", "goto end;"} {
		if !labels[want] {
			t.Errorf("missing label %q in %v", want, labels)
		}
	}
}

func TestFprintTree(t *testing.T) {
	f := parse(t, `int g(int x) { if (x) x++; return x; }`)
	var sb strings.Builder
	cast.FprintTree(&sb, f.Funcs[0], func(s cast.Stmt) string { return "42" })
	out := sb.String()
	if !strings.Contains(out, "function g") || !strings.Contains(out, "42") {
		t.Errorf("tree:\n%s", out)
	}
}

// TestStoredAndReadObjects runs after sem binds identifiers, since the
// helpers key on resolved objects (they drive the store heuristic).
func TestStoredAndReadObjects(t *testing.T) {
	f := parse(t, `
int g(int a, int b) {
	int c = 0;
	int d = 0;
	if (a) { c = b + d; }
	b++;
	return c;
}`)
	if _, err := sem.Analyze(f); err != nil {
		t.Fatal(err)
	}
	fn := f.Funcs[0]
	ifStmt := fn.Body.Stmts[2].(*cast.If)
	stored := names(cast.StoredObjects(ifStmt.Then))
	if !stored["c"] || stored["b"] || stored["d"] {
		t.Errorf("stored in then-arm = %v, want {c}", stored)
	}
	read := names(cast.ReadObjects(fn.Body))
	for _, want := range []string{"a", "b", "c", "d"} {
		if !read[want] {
			t.Errorf("%s not in read set %v", want, read)
		}
	}
	// Whole-function stores: c (decl init is separate), b via ++.
	storedAll := names(cast.StoredObjects(fn.Body))
	if !storedAll["b"] || !storedAll["c"] {
		t.Errorf("stored in function = %v, want b and c", storedAll)
	}
}

func names(set map[*cast.Object]bool) map[string]bool {
	out := map[string]bool{}
	for o := range set {
		out[o.Name] = true
	}
	return out
}
