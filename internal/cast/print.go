package cast

import (
	"fmt"
	"strings"
)

// ExprString renders an expression in C-like syntax (fully
// parenthesized for compound subexpressions; intended for diagnostics,
// not round-tripping).
func ExprString(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *IntLit:
		if x.IsChar {
			return fmt.Sprintf("%q", rune(x.Val))
		}
		return fmt.Sprintf("%d", int64(x.Val))
	case *FloatLit:
		return fmt.Sprintf("%g", x.Val)
	case *StrLit:
		return fmt.Sprintf("%q", string(x.Val))
	case *Ident:
		return x.Name
	case *Unary:
		return fmt.Sprintf("%s%s", x.Op, parens(x.X))
	case *Postfix:
		op := "--"
		if x.Inc {
			op = "++"
		}
		return parens(x.X) + op
	case *Binary:
		return fmt.Sprintf("%s %s %s", parens(x.X), x.Op, parens(x.Y))
	case *Logical:
		op := "||"
		if x.AndAnd {
			op = "&&"
		}
		return fmt.Sprintf("%s %s %s", parens(x.X), op, parens(x.Y))
	case *Cond:
		return fmt.Sprintf("%s ? %s : %s", parens(x.C), parens(x.Then), parens(x.Else))
	case *Assign:
		return fmt.Sprintf("%s %s %s", ExprString(x.L), x.Op, ExprString(x.R))
	case *Call:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", ExprString(x.Fun), strings.Join(args, ", "))
	case *Index:
		return fmt.Sprintf("%s[%s]", parens(x.X), ExprString(x.I))
	case *Member:
		sep := "."
		if x.Arrow {
			sep = "->"
		}
		return parens(x.X) + sep + x.Name
	case *SizeofExpr:
		return fmt.Sprintf("sizeof %s", parens(x.X))
	case *SizeofType:
		return fmt.Sprintf("sizeof(%s)", x.Of)
	case *CastExpr:
		return fmt.Sprintf("(%s)%s", x.To, parens(x.X))
	case *Comma:
		return fmt.Sprintf("%s, %s", ExprString(x.X), ExprString(x.Y))
	}
	return fmt.Sprintf("<%T>", e)
}

func parens(e Expr) string {
	switch e.(type) {
	case *IntLit, *FloatLit, *StrLit, *Ident, *Call, *Index, *Member, *Postfix:
		return ExprString(e)
	default:
		return "(" + ExprString(e) + ")"
	}
}

// StmtLabel renders a one-line description of a statement for CFG dumps
// and estimate annotations.
func StmtLabel(s Stmt) string {
	switch x := s.(type) {
	case nil:
		return "<nil>"
	case *Empty:
		return ";"
	case *ExprStmt:
		return ExprString(x.X) + ";"
	case *DeclStmt:
		names := make([]string, len(x.Decls))
		for i, d := range x.Decls {
			names[i] = d.Obj.Name
		}
		return "decl " + strings.Join(names, ", ")
	case *Block:
		return fmt.Sprintf("{ %d stmts }", len(x.Stmts))
	case *If:
		return "if (" + ExprString(x.Cond) + ")"
	case *While:
		return "while (" + ExprString(x.Cond) + ")"
	case *DoWhile:
		return "do-while (" + ExprString(x.Cond) + ")"
	case *For:
		return fmt.Sprintf("for (%s; %s; %s)",
			ExprString(x.Init), ExprString(x.Cond), ExprString(x.Post))
	case *Switch:
		return "switch (" + ExprString(x.Tag) + ")"
	case *Break:
		return "break;"
	case *Continue:
		return "continue;"
	case *Return:
		if x.X == nil {
			return "return;"
		}
		return "return " + ExprString(x.X) + ";"
	case *Goto:
		return "goto " + x.Label + ";"
	case *Labeled:
		return x.Label + ": " + StmtLabel(x.Stmt)
	case *Clear:
		return fmt.Sprintf("clear frame[%d..%d);", x.Off, x.Off+x.Size)
	}
	return fmt.Sprintf("<%T>", s)
}

// FprintTree writes an indented tree rendering of the function body. The
// optional annotate callback supplies a per-statement prefix (Figure 3 of
// the paper annotates each node with its estimated frequency).
func FprintTree(sb *strings.Builder, fd *FuncDecl, annotate func(Stmt) string) {
	fmt.Fprintf(sb, "function %s\n", fd.Name())
	var walk func(s Stmt, depth int)
	walk = func(s Stmt, depth int) {
		if s == nil {
			return
		}
		prefix := ""
		if annotate != nil {
			prefix = annotate(s)
		}
		fmt.Fprintf(sb, "%-8s%s%s\n", prefix, strings.Repeat("  ", depth), StmtLabel(s))
		switch x := s.(type) {
		case *Block:
			for _, c := range x.Stmts {
				walk(c, depth+1)
			}
		case *If:
			walk(x.Then, depth+1)
			if x.Else != nil {
				fmt.Fprintf(sb, "%-8s%selse\n", "", strings.Repeat("  ", depth))
				walk(x.Else, depth+1)
			}
		case *While:
			walk(x.Body, depth+1)
		case *DoWhile:
			walk(x.Body, depth+1)
		case *For:
			walk(x.Body, depth+1)
		case *Switch:
			for _, c := range x.Cases {
				lbl := "default:"
				if !c.IsDefault {
					vals := make([]string, len(c.Vals))
					for i, v := range c.Vals {
						vals[i] = fmt.Sprintf("case %d:", v)
					}
					lbl = strings.Join(vals, " ")
				}
				fmt.Fprintf(sb, "%-8s%s%s\n", "", strings.Repeat("  ", depth+1), lbl)
				for _, cs := range c.Stmts {
					walk(cs, depth+2)
				}
			}
		case *Labeled:
			walk(x.Stmt, depth+1)
		}
	}
	walk(fd.Body, 1)
}
