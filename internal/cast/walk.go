package cast

// WalkExpr calls fn for e and every sub-expression, pre-order. If fn
// returns false for a node, its children are skipped.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *IntLit, *FloatLit, *StrLit, *Ident, *SizeofType:
	case *Unary:
		WalkExpr(x.X, fn)
	case *Postfix:
		WalkExpr(x.X, fn)
	case *Binary:
		WalkExpr(x.X, fn)
		WalkExpr(x.Y, fn)
	case *Logical:
		WalkExpr(x.X, fn)
		WalkExpr(x.Y, fn)
	case *Cond:
		WalkExpr(x.C, fn)
		WalkExpr(x.Then, fn)
		WalkExpr(x.Else, fn)
	case *Assign:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *Call:
		WalkExpr(x.Fun, fn)
		for _, a := range x.Args {
			WalkExpr(a, fn)
		}
	case *Index:
		WalkExpr(x.X, fn)
		WalkExpr(x.I, fn)
	case *Member:
		WalkExpr(x.X, fn)
	case *SizeofExpr:
		WalkExpr(x.X, fn)
	case *CastExpr:
		WalkExpr(x.X, fn)
	case *Comma:
		WalkExpr(x.X, fn)
		WalkExpr(x.Y, fn)
	}
}

// WalkStmt calls fn for s and every sub-statement, pre-order. If fn
// returns false for a node, its children are skipped. Expressions are not
// visited; use WalkStmtExprs for that.
func WalkStmt(s Stmt, fn func(Stmt) bool) {
	if s == nil || !fn(s) {
		return
	}
	switch x := s.(type) {
	case *Block:
		for _, c := range x.Stmts {
			WalkStmt(c, fn)
		}
	case *If:
		WalkStmt(x.Then, fn)
		WalkStmt(x.Else, fn)
	case *While:
		WalkStmt(x.Body, fn)
	case *DoWhile:
		WalkStmt(x.Body, fn)
	case *For:
		WalkStmt(x.Body, fn)
	case *Switch:
		for _, c := range x.Cases {
			for _, cs := range c.Stmts {
				WalkStmt(cs, fn)
			}
		}
	case *Labeled:
		WalkStmt(x.Stmt, fn)
	}
}

// StmtExprs returns the expressions directly attached to s (not those of
// nested statements): the expression of an ExprStmt, condition of a
// branch, initializers of a declaration, and so on.
func StmtExprs(s Stmt) []Expr {
	switch x := s.(type) {
	case *ExprStmt:
		return []Expr{x.X}
	case *DeclStmt:
		var out []Expr
		for _, d := range x.Decls {
			out = append(out, initExprs(d.Init)...)
		}
		return out
	case *If:
		return []Expr{x.Cond}
	case *While:
		return []Expr{x.Cond}
	case *DoWhile:
		return []Expr{x.Cond}
	case *For:
		var out []Expr
		for _, e := range []Expr{x.Init, x.Cond, x.Post} {
			if e != nil {
				out = append(out, e)
			}
		}
		return out
	case *Switch:
		return []Expr{x.Tag}
	case *Return:
		if x.X != nil {
			return []Expr{x.X}
		}
	}
	return nil
}

func initExprs(in Init) []Expr {
	switch v := in.(type) {
	case nil:
		return nil
	case *ExprInit:
		return []Expr{v.X}
	case *ListInit:
		var out []Expr
		for _, e := range v.Elems {
			out = append(out, initExprs(e)...)
		}
		return out
	}
	return nil
}

// WalkFuncExprs visits every expression in the function body, including
// those nested in statements, pre-order.
func WalkFuncExprs(fd *FuncDecl, fn func(Expr) bool) {
	WalkStmt(fd.Body, func(s Stmt) bool {
		for _, e := range StmtExprs(s) {
			WalkExpr(e, fn)
		}
		return true
	})
}

// Calls returns every call expression in the function body, in source
// order.
func Calls(fd *FuncDecl) []*Call {
	var out []*Call
	WalkFuncExprs(fd, func(e Expr) bool {
		if c, ok := e.(*Call); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// ContainsCallTo reports whether any call in the statement subtree
// targets a function whose name satisfies pred.
func ContainsCallTo(s Stmt, pred func(name string) bool) bool {
	return ContainsCallMatching(s, func(o *Object) bool { return pred(o.Name) })
}

// ContainsCallMatching reports whether any direct call in the statement
// subtree targets a function object satisfying pred.
func ContainsCallMatching(s Stmt, pred func(*Object) bool) bool {
	found := false
	WalkStmt(s, func(st Stmt) bool {
		if found {
			return false
		}
		for _, e := range StmtExprs(st) {
			WalkExpr(e, func(x Expr) bool {
				if found {
					return false
				}
				if c, ok := x.(*Call); ok {
					if callee := c.Callee(); callee != nil && pred(callee) {
						found = true
						return false
					}
				}
				return true
			})
		}
		return !found
	})
	return found
}

// ContainsReturn reports whether the statement subtree contains a return.
func ContainsReturn(s Stmt) bool {
	found := false
	WalkStmt(s, func(st Stmt) bool {
		if _, ok := st.(*Return); ok {
			found = true
		}
		return !found
	})
	return found
}

// StoredObjects returns the set of variable objects assigned (or
// incremented/decremented) anywhere in the statement subtree.
func StoredObjects(s Stmt) map[*Object]bool {
	out := make(map[*Object]bool)
	WalkStmt(s, func(st Stmt) bool {
		for _, e := range StmtExprs(st) {
			WalkExpr(e, func(x Expr) bool {
				var target Expr
				switch a := x.(type) {
				case *Assign:
					target = a.L
				case *Unary:
					if a.Op == PreInc || a.Op == PreDec {
						target = a.X
					}
				case *Postfix:
					target = a.X
				}
				if id, ok := target.(*Ident); ok && id.Obj != nil &&
					(id.Obj.Kind == ObjVar || id.Obj.Kind == ObjParam) {
					out[id.Obj] = true
				}
				return true
			})
		}
		return true
	})
	return out
}

// ReadObjects returns the set of variable objects read anywhere in the
// statement subtree (appearing outside the left side of a plain
// assignment).
func ReadObjects(s Stmt) map[*Object]bool {
	out := make(map[*Object]bool)
	var visit func(e Expr, store bool)
	visit = func(e Expr, store bool) {
		switch x := e.(type) {
		case nil:
			return
		case *Ident:
			if !store && x.Obj != nil && (x.Obj.Kind == ObjVar || x.Obj.Kind == ObjParam) {
				out[x.Obj] = true
			}
		case *Assign:
			// Plain assignment writes L without reading it; compound
			// assignments read it too.
			visit(x.L, x.Op == Plain)
			visit(x.R, false)
		case *Unary:
			visit(x.X, false)
		case *Postfix:
			visit(x.X, false)
		case *Binary:
			visit(x.X, false)
			visit(x.Y, false)
		case *Logical:
			visit(x.X, false)
			visit(x.Y, false)
		case *Cond:
			visit(x.C, false)
			visit(x.Then, false)
			visit(x.Else, false)
		case *Call:
			visit(x.Fun, false)
			for _, a := range x.Args {
				visit(a, false)
			}
		case *Index:
			visit(x.X, false)
			visit(x.I, false)
		case *Member:
			visit(x.X, false)
		case *SizeofExpr, *SizeofType, *IntLit, *FloatLit, *StrLit:
		case *CastExpr:
			visit(x.X, false)
		case *Comma:
			visit(x.X, false)
			visit(x.Y, false)
		}
	}
	WalkStmt(s, func(st Stmt) bool {
		for _, e := range StmtExprs(st) {
			visit(e, false)
		}
		return true
	})
	return out
}
