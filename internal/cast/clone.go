package cast

import (
	"staticest/internal/ctoken"
	"staticest/internal/ctypes"
)

// This file provides deep copies of AST fragments under an object
// substitution, plus constructors for the few synthetic nodes the
// CFG-level inliner emits. Cloning preserves positions, computed types,
// and every sem-assigned site identifier (Call.SiteID, branch IDs), so
// profiles of cloned code merge with the original code's counters by ID.

// CloneExpr returns a deep copy of e. Ident nodes whose object appears
// in remap are rebound to the mapped object (the inliner maps a callee's
// params and locals to fresh, relocated frame slots); all other objects
// are shared.
func CloneExpr(e Expr, remap map[*Object]*Object) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *IntLit:
		c := *x
		return &c
	case *FloatLit:
		c := *x
		return &c
	case *StrLit:
		c := *x
		return &c
	case *Ident:
		c := *x
		if o, ok := remap[x.Obj]; ok {
			c.Obj = o
		}
		return &c
	case *Unary:
		c := *x
		c.X = CloneExpr(x.X, remap)
		return &c
	case *Postfix:
		c := *x
		c.X = CloneExpr(x.X, remap)
		return &c
	case *Binary:
		c := *x
		c.X = CloneExpr(x.X, remap)
		c.Y = CloneExpr(x.Y, remap)
		return &c
	case *Logical:
		c := *x
		c.X = CloneExpr(x.X, remap)
		c.Y = CloneExpr(x.Y, remap)
		return &c
	case *Cond:
		c := *x
		c.C = CloneExpr(x.C, remap)
		c.Then = CloneExpr(x.Then, remap)
		c.Else = CloneExpr(x.Else, remap)
		return &c
	case *Assign:
		c := *x
		c.L = CloneExpr(x.L, remap)
		c.R = CloneExpr(x.R, remap)
		return &c
	case *Call:
		c := *x
		c.Fun = CloneExpr(x.Fun, remap)
		c.Args = make([]Expr, len(x.Args))
		for i, a := range x.Args {
			c.Args[i] = CloneExpr(a, remap)
		}
		return &c
	case *Index:
		c := *x
		c.X = CloneExpr(x.X, remap)
		c.I = CloneExpr(x.I, remap)
		return &c
	case *Member:
		c := *x
		c.X = CloneExpr(x.X, remap)
		return &c
	case *SizeofExpr:
		c := *x
		c.X = CloneExpr(x.X, remap)
		return &c
	case *SizeofType:
		c := *x
		return &c
	case *CastExpr:
		c := *x
		c.X = CloneExpr(x.X, remap)
		return &c
	case *Comma:
		c := *x
		c.X = CloneExpr(x.X, remap)
		c.Y = CloneExpr(x.Y, remap)
		return &c
	}
	panic("cast: CloneExpr of unknown expression")
}

// CloneInit deep-copies an initializer under remap.
func CloneInit(in Init, remap map[*Object]*Object) Init {
	switch x := in.(type) {
	case nil:
		return nil
	case *ExprInit:
		return &ExprInit{P: x.P, X: CloneExpr(x.X, remap)}
	case *ListInit:
		c := &ListInit{P: x.P, Elems: make([]Init, len(x.Elems))}
		for i, e := range x.Elems {
			c.Elems[i] = CloneInit(e, remap)
		}
		return c
	}
	panic("cast: CloneInit of unknown initializer")
}

// CloneBlockStmt deep-copies a statement of the kinds that appear inside
// basic blocks (straight-line code: expression statements, declarations,
// frame clears, empties). Structured control flow never reaches here —
// the CFG builder lowered it to terminators before the inliner runs.
func CloneBlockStmt(s Stmt, remap map[*Object]*Object) Stmt {
	switch x := s.(type) {
	case nil:
		return nil
	case *Empty:
		c := *x
		return &c
	case *ExprStmt:
		c := *x
		c.X = CloneExpr(x.X, remap)
		return &c
	case *DeclStmt:
		c := *x
		c.Decls = make([]*VarDecl, len(x.Decls))
		for i, d := range x.Decls {
			nd := &VarDecl{P: d.P, Obj: d.Obj, Init: CloneInit(d.Init, remap)}
			if o, ok := remap[d.Obj]; ok {
				nd.Obj = o
			}
			c.Decls[i] = nd
		}
		return &c
	case *Clear:
		c := *x
		return &c
	}
	panic("cast: CloneBlockStmt of non-straight-line statement")
}

// NewIdent constructs a reference to o typed as the object itself.
func NewIdent(o *Object, pos ctoken.Pos) *Ident {
	return &Ident{exprBase: exprBase{P: pos, T: identType(o.Type)}, Name: o.Name, Obj: o}
}

// identType mirrors sem's typing of a variable reference: arrays decay
// to element pointers in expression position.
func identType(t *ctypes.Type) *ctypes.Type {
	if t.Kind == ctypes.Array {
		return ctypes.PointerTo(t.Elem)
	}
	return t
}

// NewAssign constructs the plain assignment l = r, typed as the target.
func NewAssign(l, r Expr, pos ctoken.Pos) *Assign {
	return &Assign{exprBase: exprBase{P: pos, T: l.Type()}, Op: Plain, L: l, R: r}
}

// NewExprStmt wraps an expression as a statement.
func NewExprStmt(x Expr) *ExprStmt {
	return &ExprStmt{stmtBase: stmtBase{P: x.Pos()}, X: x}
}
