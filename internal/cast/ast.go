// Package cast defines the abstract syntax tree for the C subset, the
// symbol objects that semantic analysis binds identifiers to, and
// traversal helpers used by the static estimators.
package cast

import (
	"staticest/internal/ctoken"
	"staticest/internal/ctypes"
)

// Node is the interface implemented by every AST node.
type Node interface {
	Pos() ctoken.Pos
}

// ---------------------------------------------------------------------------
// Symbols

// ObjKind classifies a symbol object.
type ObjKind int

// Object kinds.
const (
	ObjVar ObjKind = iota
	ObjParam
	ObjFunc
	ObjEnumConst
)

func (k ObjKind) String() string {
	switch k {
	case ObjVar:
		return "var"
	case ObjParam:
		return "param"
	case ObjFunc:
		return "func"
	case ObjEnumConst:
		return "enum const"
	}
	return "object"
}

// Object is a named program entity: a variable, parameter, function, or
// enumeration constant. The semantic pass allocates storage for variables
// (global index or frame offset) and records address-taken facts used by
// the call-graph pointer-node approximation.
type Object struct {
	Name string
	Kind ObjKind
	Type *ctypes.Type
	Decl ctoken.Pos

	Global bool // file-scope variable or function

	// Storage assigned by sem: for globals, an index into the program's
	// global table; for locals/params, a byte offset in the stack frame.
	GlobalIndex int
	FrameOffset int64

	// EnumVal is the value of an enumeration constant.
	EnumVal int64

	// FuncIndex is the index into Program.Funcs for defined functions,
	// or -1 for builtins/undefined externals.
	FuncIndex int

	// AddrTakenCount counts static address-of operations applied to this
	// function name (explicit &f and implicit function-to-pointer decay
	// outside of calls). Used to weight the Markov pointer node.
	AddrTakenCount int

	// Builtin marks library functions provided by the interpreter.
	Builtin bool
}

// ---------------------------------------------------------------------------
// Expressions

// Expr is the interface implemented by all expression nodes. Every
// expression carries the type computed by semantic analysis.
type Expr interface {
	Node
	Type() *ctypes.Type
	exprNode()
}

type exprBase struct {
	P ctoken.Pos
	T *ctypes.Type
}

func (e *exprBase) Pos() ctoken.Pos        { return e.P }
func (e *exprBase) Type() *ctypes.Type     { return e.T }
func (e *exprBase) SetType(t *ctypes.Type) { e.T = t }
func (e *exprBase) exprNode()              {}

// IntLit is an integer or character literal. Unsigned and Long record
// the literal's suffixes, which steer its C type.
type IntLit struct {
	exprBase
	Val      uint64
	IsChar   bool
	Unsigned bool
	Long     bool
}

// FloatLit is a floating-point literal.
type FloatLit struct {
	exprBase
	Val float64
}

// StrLit is a string literal (value excludes the terminating NUL, which
// the interpreter appends when materializing the literal).
type StrLit struct {
	exprBase
	Val []byte
	// DataIndex is assigned by sem: index into the program's string table.
	DataIndex int
}

// Ident is a reference to a named object.
type Ident struct {
	exprBase
	Name string
	Obj  *Object // bound by sem
}

// UnaryOp enumerates unary operators.
type UnaryOp int

// Unary operators.
const (
	Neg    UnaryOp = iota // -x
	BitNot                // ~x
	LogNot                // !x
	Deref                 // *x
	Addr                  // &x
	PreInc                // ++x
	PreDec                // --x
)

var unaryNames = [...]string{"-", "~", "!", "*", "&", "++", "--"}

func (op UnaryOp) String() string { return unaryNames[op] }

// Unary is a prefix unary expression.
type Unary struct {
	exprBase
	Op UnaryOp
	X  Expr
}

// Postfix is x++ or x--.
type Postfix struct {
	exprBase
	Inc bool // true for ++, false for --
	X   Expr
}

// BinaryOp enumerates non-logical binary operators.
type BinaryOp int

// Binary operators.
const (
	Add BinaryOp = iota
	Sub
	Mul
	Div
	Rem
	And
	Or
	Xor
	Shl
	Shr
	Lt
	Gt
	Le
	Ge
	Eq
	Ne
)

var binaryNames = [...]string{
	"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
	"<", ">", "<=", ">=", "==", "!=",
}

func (op BinaryOp) String() string { return binaryNames[op] }

// IsComparison reports whether op yields a boolean-valued int.
func (op BinaryOp) IsComparison() bool { return op >= Lt }

// Binary is a binary expression (excluding && and ||, which short-circuit
// and are represented by Logical).
type Binary struct {
	exprBase
	Op   BinaryOp
	X, Y Expr
}

// Logical is a short-circuit && or || expression.
type Logical struct {
	exprBase
	AndAnd bool // true: &&, false: ||
	X, Y   Expr
}

// Cond is the ternary conditional c ? t : f.
type Cond struct {
	exprBase
	C, Then, Else Expr
}

// AssignOp enumerates assignment operators; Plain is '='.
type AssignOp int

// Assignment operators. Non-plain ops correspond to BinaryOp values.
const (
	Plain AssignOp = iota
	AddEq
	SubEq
	MulEq
	DivEq
	RemEq
	AndEq
	OrEq
	XorEq
	ShlEq
	ShrEq
)

var assignNames = [...]string{"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

func (op AssignOp) String() string { return assignNames[op] }

// BinOp returns the underlying binary operator for a compound assignment.
func (op AssignOp) BinOp() BinaryOp {
	switch op {
	case AddEq:
		return Add
	case SubEq:
		return Sub
	case MulEq:
		return Mul
	case DivEq:
		return Div
	case RemEq:
		return Rem
	case AndEq:
		return And
	case OrEq:
		return Or
	case XorEq:
		return Xor
	case ShlEq:
		return Shl
	case ShrEq:
		return Shr
	}
	panic("cast: Plain has no binary operator")
}

// Assign is an assignment expression.
type Assign struct {
	exprBase
	Op   AssignOp
	L, R Expr
}

// Call is a function call. Direct calls have Fun as an Ident bound to an
// ObjFunc; anything else is an indirect call through a pointer. SiteID is
// a program-unique call-site identifier assigned by sem (-1 for calls to
// builtins, which are not profiled as call sites).
type Call struct {
	exprBase
	Fun    Expr
	Args   []Expr
	SiteID int
}

// Callee returns the called function's object for a direct call, or nil
// for indirect calls.
func (c *Call) Callee() *Object {
	if id, ok := c.Fun.(*Ident); ok && id.Obj != nil && id.Obj.Kind == ObjFunc {
		return id.Obj
	}
	return nil
}

// Index is an array/pointer subscript x[i].
type Index struct {
	exprBase
	X, I Expr
}

// Member is x.f or x->f.
type Member struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
	Field *ctypes.Field // bound by sem
}

// SizeofExpr is sizeof applied to an expression.
type SizeofExpr struct {
	exprBase
	X Expr
}

// SizeofType is sizeof applied to a type name.
type SizeofType struct {
	exprBase
	Of *ctypes.Type
}

// CastExpr is an explicit type conversion.
type CastExpr struct {
	exprBase
	To *ctypes.Type
	X  Expr
}

// Comma is the comma operator.
type Comma struct {
	exprBase
	X, Y Expr
}

// ---------------------------------------------------------------------------
// Statements

// Stmt is the interface implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

type stmtBase struct{ P ctoken.Pos }

func (s *stmtBase) Pos() ctoken.Pos { return s.P }
func (s *stmtBase) stmtNode()       {}

// Empty is a lone semicolon.
type Empty struct{ stmtBase }

// ExprStmt is an expression evaluated for effect.
type ExprStmt struct {
	stmtBase
	X Expr
}

// DeclStmt declares one or more local variables.
type DeclStmt struct {
	stmtBase
	Decls []*VarDecl
}

// Block is a compound statement.
type Block struct {
	stmtBase
	Stmts []Stmt
}

// Clear is a synthetic statement with no source form, produced by the
// CFG-level inliner: each execution zeroes the byte range
// [Off, Off+Size) of the current stack frame. It reproduces, for an
// inlined callee's frame region, the zeroing the interpreter performs on
// every function entry, so locals of the spliced body start each
// simulated invocation exactly as a real call would.
type Clear struct {
	stmtBase
	Off  int64
	Size int64
}

// NewClear constructs a frame-zeroing statement (see Clear).
func NewClear(off, size int64, pos ctoken.Pos) *Clear {
	return &Clear{stmtBase: stmtBase{P: pos}, Off: off, Size: size}
}

// BranchStmt is implemented by statements that contain a predictable
// two-way branch condition: If, While, DoWhile, For.
type BranchStmt interface {
	Stmt
	// BranchID returns the program-unique branch-site identifier
	// assigned by sem, or -1 if the statement has no condition
	// (a `for (;;)`).
	BranchID() int
	// CondExpr returns the controlling expression (nil for `for (;;)`).
	CondExpr() Expr
	// IsLoop reports whether the branch controls loop continuation.
	IsLoop() bool
}

type branchBase struct {
	stmtBase
	Branch int // branch-site ID, assigned by sem; -1 if no condition
}

func (b *branchBase) BranchID() int { return b.Branch }

// SetBranchID assigns the branch-site identifier (used by sem).
func (b *branchBase) SetBranchID(id int) { b.Branch = id }

// If is an if statement with an optional else arm.
type If struct {
	branchBase
	Cond Expr
	Then Stmt
	Else Stmt // nil if absent
}

func (s *If) CondExpr() Expr { return s.Cond }
func (s *If) IsLoop() bool   { return false }

// While is a while loop.
type While struct {
	branchBase
	Cond Expr
	Body Stmt
}

func (s *While) CondExpr() Expr { return s.Cond }
func (s *While) IsLoop() bool   { return true }

// DoWhile is a do-while loop.
type DoWhile struct {
	branchBase
	Body Stmt
	Cond Expr
}

func (s *DoWhile) CondExpr() Expr { return s.Cond }
func (s *DoWhile) IsLoop() bool   { return true }

// For is a for loop; Init, Cond and Post may each be nil (C89 keeps
// declarations out of for-init; the subset allows expressions only).
// InitS and PostS wrap Init and Post as statement nodes shared between
// the CFG builder and the AST-walk estimators, so both views agree on
// node identity.
type For struct {
	branchBase
	Init  Expr      // nil if absent
	Cond  Expr      // nil if absent
	Post  Expr      // nil if absent
	InitS *ExprStmt // wraps Init; nil if absent
	PostS *ExprStmt // wraps Post; nil if absent
	Body  Stmt
}

func (s *For) CondExpr() Expr { return s.Cond }
func (s *For) IsLoop() bool   { return true }

// SwitchCase is one arm of a switch. A single arm may carry several case
// values (stacked labels). Default arms have IsDefault set. Vals holds
// the constant-folded label values (computed at parse time, where enum
// constants are in scope).
type SwitchCase struct {
	Vals      []int64
	IsDefault bool
	Stmts     []Stmt
	Pos       ctoken.Pos
}

// Switch is a switch statement in structured form: a tag expression and a
// sequence of arms. Fall-through between consecutive arms is preserved
// (an arm without a trailing break falls into the next arm).
type Switch struct {
	stmtBase
	Tag    Expr
	Cases  []*SwitchCase
	Branch int // branch-site ID for profiling arm selection
}

// Break exits the nearest loop or switch.
type Break struct{ stmtBase }

// Continue jumps to the nearest loop's next iteration.
type Continue struct{ stmtBase }

// Return returns from the function; X may be nil.
type Return struct {
	stmtBase
	X Expr
}

// Goto is an unconditional jump to a label.
type Goto struct {
	stmtBase
	Label string
}

// Labeled is a labeled statement (a goto target).
type Labeled struct {
	stmtBase
	Label string
	Stmt  Stmt
}

// ---------------------------------------------------------------------------
// Declarations

// Init is an initializer: either an expression or a brace list.
type Init interface {
	Node
	initNode()
}

// ExprInit is a scalar initializer.
type ExprInit struct {
	P ctoken.Pos
	X Expr
}

func (i *ExprInit) Pos() ctoken.Pos { return i.P }
func (i *ExprInit) initNode()       {}

// ListInit is a brace-enclosed initializer list.
type ListInit struct {
	P     ctoken.Pos
	Elems []Init
}

func (i *ListInit) Pos() ctoken.Pos { return i.P }
func (i *ListInit) initNode()       {}

// VarDecl declares a single variable, possibly initialized.
type VarDecl struct {
	P    ctoken.Pos
	Obj  *Object
	Init Init // nil if absent
}

func (d *VarDecl) Pos() ctoken.Pos { return d.P }

// FuncDecl is a function definition.
type FuncDecl struct {
	P      ctoken.Pos
	Obj    *Object
	Params []*Object
	Body   *Block

	// Filled by sem:
	FrameSize int64     // bytes of locals + params
	Locals    []*Object // all locals in declaration order
	Labels    []string  // declared labels
}

func (d *FuncDecl) Pos() ctoken.Pos { return d.P }

// Name returns the function's name.
func (d *FuncDecl) Name() string { return d.Obj.Name }

// File is a parsed translation unit.
type File struct {
	Name     string
	Globals  []*VarDecl  // file-scope variables in order
	Funcs    []*FuncDecl // defined functions in order
	Structs  []*ctypes.StructInfo
	Typedefs map[string]*ctypes.Type
	// Externs are declared-but-undefined functions (resolved to builtins
	// or reported by sem).
	Externs []*Object
}
