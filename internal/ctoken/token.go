// Package ctoken defines the lexical tokens of the C subset understood by
// this library, along with operator precedence used by the parser.
package ctoken

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Literal and identifier kinds carry their text in Token.Text.
const (
	EOF Kind = iota
	Ident
	IntLit   // 123, 0x1f, 017, with optional U/L suffixes
	FloatLit // 1.5, 1e-3, .5
	CharLit  // 'a', '\n'
	StrLit   // "abc" (value after escape processing)

	// Keywords.
	KwBreak
	KwCase
	KwChar
	KwConst
	KwContinue
	KwDefault
	KwDo
	KwDouble
	KwElse
	KwEnum
	KwExtern
	KwFloat
	KwFor
	KwGoto
	KwIf
	KwInt
	KwLong
	KwRegister
	KwReturn
	KwShort
	KwSigned
	KwSizeof
	KwStatic
	KwStruct
	KwSwitch
	KwTypedef
	KwUnion
	KwUnsigned
	KwVoid
	KwVolatile
	KwWhile

	// Punctuation and operators.
	LParen   // (
	RParen   // )
	LBrace   // {
	RBrace   // }
	LBrack   // [
	RBrack   // ]
	Semi     // ;
	Comma    // ,
	Colon    // :
	Question // ?
	Ellipsis // ...

	Assign       // =
	AddAssign    // +=
	SubAssign    // -=
	MulAssign    // *=
	DivAssign    // /=
	RemAssign    // %=
	AndAssign    // &=
	OrAssign     // |=
	XorAssign    // ^=
	ShlAssign    // <<=
	ShrAssign    // >>=
	Inc          // ++
	Dec          // --
	Plus         // +
	Minus        // -
	Star         // *
	Slash        // /
	Percent      // %
	Amp          // &
	Pipe         // |
	Caret        // ^
	Tilde        // ~
	Not          // !
	Shl          // <<
	Shr          // >>
	Lt           // <
	Gt           // >
	Le           // <=
	Ge           // >=
	EqEq         // ==
	NotEq        // !=
	AndAnd       // &&
	OrOr         // ||
	Dot          // .
	Arrow        // ->
	numTokenKind // sentinel
)

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "identifier", IntLit: "integer literal",
	FloatLit: "float literal", CharLit: "character literal", StrLit: "string literal",
	KwBreak: "break", KwCase: "case", KwChar: "char", KwConst: "const",
	KwContinue: "continue", KwDefault: "default", KwDo: "do", KwDouble: "double",
	KwElse: "else", KwEnum: "enum", KwExtern: "extern", KwFloat: "float",
	KwFor: "for", KwGoto: "goto", KwIf: "if", KwInt: "int", KwLong: "long",
	KwRegister: "register", KwReturn: "return", KwShort: "short",
	KwSigned: "signed", KwSizeof: "sizeof", KwStatic: "static",
	KwStruct: "struct", KwSwitch: "switch", KwTypedef: "typedef",
	KwUnion: "union", KwUnsigned: "unsigned", KwVoid: "void",
	KwVolatile: "volatile", KwWhile: "while",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}", LBrack: "[", RBrack: "]",
	Semi: ";", Comma: ",", Colon: ":", Question: "?", Ellipsis: "...",
	Assign: "=", AddAssign: "+=", SubAssign: "-=", MulAssign: "*=",
	DivAssign: "/=", RemAssign: "%=", AndAssign: "&=", OrAssign: "|=",
	XorAssign: "^=", ShlAssign: "<<=", ShrAssign: ">>=",
	Inc: "++", Dec: "--", Plus: "+", Minus: "-", Star: "*", Slash: "/",
	Percent: "%", Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Not: "!",
	Shl: "<<", Shr: ">>", Lt: "<", Gt: ">", Le: "<=", Ge: ">=",
	EqEq: "==", NotEq: "!=", AndAnd: "&&", OrOr: "||", Dot: ".", Arrow: "->",
}

// String returns a human-readable name for the token kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Keywords maps keyword spellings to their token kinds.
var Keywords = map[string]Kind{
	"break": KwBreak, "case": KwCase, "char": KwChar, "const": KwConst,
	"continue": KwContinue, "default": KwDefault, "do": KwDo,
	"double": KwDouble, "else": KwElse, "enum": KwEnum, "extern": KwExtern,
	"float": KwFloat, "for": KwFor, "goto": KwGoto, "if": KwIf,
	"int": KwInt, "long": KwLong, "register": KwRegister,
	"return": KwReturn, "short": KwShort, "signed": KwSigned,
	"sizeof": KwSizeof, "static": KwStatic, "struct": KwStruct,
	"switch": KwSwitch, "typedef": KwTypedef, "union": KwUnion,
	"unsigned": KwUnsigned, "void": KwVoid, "volatile": KwVolatile,
	"while": KwWhile,
}

// Pos is a source position: file name plus 1-based line and column.
type Pos struct {
	File string
	Line int
	Col  int
}

// String renders the position as file:line:col.
func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexed token. For IntLit/CharLit, IntVal holds the
// value; for FloatLit, FloatVal; for StrLit, StrVal holds the bytes after
// escape processing (without the terminating NUL).
type Token struct {
	Kind     Kind
	Text     string
	Pos      Pos
	IntVal   uint64
	FloatVal float64
	StrVal   []byte
	Unsigned bool // integer literal had a U suffix or exceeds the signed range
	Long     bool // integer literal had an L suffix
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case Ident, IntLit, FloatLit, CharLit:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	case StrLit:
		return fmt.Sprintf("string %q", string(t.StrVal))
	default:
		return t.Kind.String()
	}
}

// IsAssignOp reports whether the kind is an assignment operator.
func (k Kind) IsAssignOp() bool { return k >= Assign && k <= ShrAssign }

// IsTypeKeyword reports whether the kind begins a type specifier.
func (k Kind) IsTypeKeyword() bool {
	switch k {
	case KwVoid, KwChar, KwShort, KwInt, KwLong, KwFloat, KwDouble,
		KwSigned, KwUnsigned, KwStruct, KwUnion, KwEnum, KwConst, KwVolatile:
		return true
	}
	return false
}
