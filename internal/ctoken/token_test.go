package ctoken

import "testing"

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		EOF:       "EOF",
		Ident:     "identifier",
		KwWhile:   "while",
		AndAnd:    "&&",
		Ellipsis:  "...",
		ShrAssign: ">>=",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(9999).String(); got != "Kind(9999)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestKeywordsTableComplete(t *testing.T) {
	// Every keyword kind must be reachable from the spelling table.
	seen := map[Kind]bool{}
	for _, k := range Keywords {
		seen[k] = true
	}
	for k := KwBreak; k <= KwWhile; k++ {
		if !seen[k] {
			t.Errorf("keyword kind %v missing from Keywords", k)
		}
	}
}

func TestIsAssignOp(t *testing.T) {
	for _, k := range []Kind{Assign, AddAssign, ShrAssign} {
		if !k.IsAssignOp() {
			t.Errorf("%v should be an assignment operator", k)
		}
	}
	for _, k := range []Kind{EqEq, Plus, Inc} {
		if k.IsAssignOp() {
			t.Errorf("%v should not be an assignment operator", k)
		}
	}
}

func TestIsTypeKeyword(t *testing.T) {
	for _, k := range []Kind{KwInt, KwVoid, KwStruct, KwUnsigned, KwConst} {
		if !k.IsTypeKeyword() {
			t.Errorf("%v should start a type", k)
		}
	}
	if KwReturn.IsTypeKeyword() || Ident.IsTypeKeyword() {
		t.Error("non-type keyword classified as type")
	}
}

func TestPos(t *testing.T) {
	p := Pos{File: "x.c", Line: 3, Col: 7}
	if p.String() != "x.c:3:7" {
		t.Errorf("pos = %q", p.String())
	}
	if (Pos{}).IsValid() {
		t.Error("zero position should be invalid")
	}
	if noFile := (Pos{Line: 1, Col: 2}).String(); noFile != "1:2" {
		t.Errorf("file-less pos = %q", noFile)
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: IntLit, Text: "42"}
	if tok.String() != `integer literal "42"` {
		t.Errorf("token string = %q", tok.String())
	}
	str := Token{Kind: StrLit, StrVal: []byte("hi")}
	if str.String() != `string "hi"` {
		t.Errorf("string token = %q", str.String())
	}
	if (Token{Kind: Semi}).String() != ";" {
		t.Error("operator token string wrong")
	}
}
