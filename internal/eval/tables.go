package eval

import (
	"fmt"
	"strings"

	"staticest"
	"staticest/internal/cast"
	"staticest/internal/cfg"
	"staticest/internal/core"
	"staticest/internal/linalg"
	"staticest/internal/metric"
	"staticest/internal/suite"
	"staticest/internal/texttab"
)

// Table1 renders the program suite table (name, source lines,
// description), mirroring the paper's Table 1.
func Table1() string {
	var sb strings.Builder
	sb.WriteString("Table 1: programs used in this study\n\n")
	t := texttab.New("program", "lines", "description").AlignRight(1)
	for _, p := range suite.Programs() {
		t.Row(p.Name, suite.Lines(p.Source), p.Description)
	}
	sb.WriteString(t.String())
	return sb.String()
}

// strchrExample is the paper's running example (Figure 1), wrapped in a
// main that reproduces the two calls Table 2 profiles.
const strchrExample = `
#define NULL 0
/* Find first occurrence of a character in a string. */
char *my_strchr(char *str, int c) {
	while (*str) {
		if (*str == c)
			return str;
		str++;
	}
	return NULL;
}
int main(void) {
	my_strchr("abc", 'a');
	my_strchr("abc", 'b');
	return 0;
}
`

// StrchrData compiles, estimates, and profiles the running example.
func StrchrData() (*staticest.Unit, *core.Estimates, []float64, error) {
	u, err := staticest.Compile("strchr.c", []byte(strchrExample))
	if err != nil {
		return nil, nil, nil, err
	}
	res, err := u.Run(staticest.RunOptions{})
	if err != nil {
		return nil, nil, nil, err
	}
	return u, u.Estimate(), res.Profile.BlockCounts[0], nil
}

// strchrBlockName maps this reproduction's CFG block names onto the
// paper's labels.
func strchrBlockName(b *cfg.Block) string {
	switch b.Name {
	case "while.cond":
		return "while"
	case "while.body":
		return "if"
	case "if.then":
		return "return1"
	case "if.end":
		return "incr"
	case "while.end":
		return "return2"
	}
	return b.Name
}

// Table2 reproduces the strchr weight-matching example: actual counts
// from the two profiled calls, smart-heuristic estimates, and the scores
// at the 20% and 60% cutoffs.
func Table2() (string, error) {
	u, est, actual, err := StrchrData()
	if err != nil {
		return "", err
	}
	estimate := est.IntraSmart[0].BlockFreq
	g := u.CFG.Graphs[0]

	var sb strings.Builder
	sb.WriteString("Table 2: intra-procedural weight-matching for strchr\n")
	sb.WriteString("(called once with (\"abc\",'a') and once with (\"abc\",'b'))\n\n")
	t := texttab.New("block", "actual", "estimate", "actual rank", "est. rank").
		AlignRight(1, 2, 3, 4)
	actRank := rankPositions(actual)
	estRank := rankPositions(estimate)
	for i, b := range g.Blocks {
		t.Row(strchrBlockName(b),
			fmt.Sprintf("%.0f", actual[i]),
			fmt.Sprintf("%.1f", estimate[i]),
			actRank[i], estRank[i])
	}
	sb.WriteString(t.String())
	s20 := metric.WeightMatch(estimate, actual, 0.20)
	s60 := metric.WeightMatch(estimate, actual, 0.60)
	fmt.Fprintf(&sb, "\nscore at 20%% cutoff: %s\nscore at 60%% cutoff: %s\n",
		texttab.Pct(s20), texttab.Pct(s60))
	return sb.String(), nil
}

// rankPositions gives each index its 1-based rank by descending value.
func rankPositions(v []float64) []int {
	idx := rankDesc(v)
	out := make([]int, len(v))
	for pos, i := range idx {
		out[i] = pos + 1
	}
	return out
}

// Figure3 renders the strchr AST annotated with the smart heuristic's
// estimated execution counts, as in the paper's Figure 3.
func Figure3() (string, error) {
	u, est, _, err := StrchrData()
	if err != nil {
		return "", err
	}
	freq := est.StmtFreqOf(0)
	var sb strings.Builder
	sb.WriteString("Figure 3: AST for strchr with estimated counts (smart heuristic)\n")
	sb.WriteString("count   node\n")
	var body strings.Builder
	cast.FprintTree(&body, u.Sem.Funcs[0], func(s cast.Stmt) string {
		if f, ok := freq[s]; ok {
			return fmt.Sprintf("%.1f", f)
		}
		return ""
	})
	sb.WriteString(body.String())
	return sb.String(), nil
}

// Figure6 renders the strchr CFG annotated with the branch probabilities
// the Markov model uses (the paper's Figure 6).
func Figure6() (string, error) {
	u, est, _, err := StrchrData()
	if err != nil {
		return "", err
	}
	g := u.CFG.Graphs[0]
	var sb strings.Builder
	sb.WriteString("Figure 6: control-flow graph for strchr with branch probabilities\n\n")
	for _, b := range g.Blocks {
		name := strchrBlockName(b)
		mark := ""
		if b == g.Entry {
			mark = "  [entry, frequency 1]"
		}
		fmt.Fprintf(&sb, "%s%s\n", name, mark)
		switch b.Term {
		case cfg.TermCond:
			p := est.Pred.Branch[b.BranchSite].ProbTrue
			fmt.Fprintf(&sb, "  (%s)  --%.1f--> %s   --%.1f--> %s\n",
				cast.ExprString(b.Cond), p, strchrBlockName(b.Succs[0]),
				1-p, strchrBlockName(b.Succs[1]))
		case cfg.TermJump:
			if len(b.Succs) > 0 {
				fmt.Fprintf(&sb, "  --1.0--> %s\n", strchrBlockName(b.Succs[0]))
			}
		case cfg.TermReturn:
			fmt.Fprintf(&sb, "  return %s\n", cast.ExprString(b.RetVal))
		}
	}
	return sb.String(), nil
}

// Figure7 renders the linear system the Markov model solves for strchr
// and its solution, matching the paper's Figure 7 (while = 2.78, if =
// 2.22, return1 = 0.44, incr = 1.78, return2 = 0.56).
func Figure7() (string, error) {
	u, est, _, err := StrchrData()
	if err != nil {
		return "", err
	}
	g := u.CFG.Graphs[0]
	n := len(g.Blocks)

	// Rebuild the system exactly as IntraMarkov does, for display.
	a := linalg.NewMatrix(n, n)
	bvec := make([]float64, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 1)
	}
	bvec[g.Entry.ID] = 1

	var sb strings.Builder
	sb.WriteString("Figure 7: Markov linear system for strchr\n\n")
	for _, blk := range g.Blocks {
		var terms []string
		if blk == g.Entry {
			terms = append(terms, "1")
		}
		for _, pred := range blk.Preds {
			p := arcProbForDisplay(pred, blk, est)
			a.Add(blk.ID, pred.ID, -p)
			if p == 1 {
				terms = append(terms, strchrBlockName(pred))
			} else {
				terms = append(terms, fmt.Sprintf("%.1f %s", p, strchrBlockName(pred)))
			}
		}
		if len(terms) == 0 {
			terms = append(terms, "0")
		}
		fmt.Fprintf(&sb, "  %-8s = %s\n", strchrBlockName(blk), strings.Join(terms, " + "))
	}
	x, err := linalg.Solve(a, bvec)
	if err != nil {
		return "", err
	}
	sb.WriteString("\nsolution:\n")
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "  %-8s = %.2f\n", strchrBlockName(blk), x[blk.ID])
	}
	return sb.String(), nil
}

// arcProbForDisplay recovers the probability on the pred -> blk arc.
func arcProbForDisplay(pred, blk *cfg.Block, est *core.Estimates) float64 {
	switch pred.Term {
	case cfg.TermCond:
		p := est.Pred.Branch[pred.BranchSite].ProbTrue
		total := 0.0
		if pred.Succs[0] == blk {
			total += p
		}
		if pred.Succs[1] == blk {
			total += 1 - p
		}
		return total
	default:
		return 1
	}
}
