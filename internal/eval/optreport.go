package eval

import (
	"fmt"
	"strings"

	"staticest"
	"staticest/internal/core"
	"staticest/internal/obs"
	"staticest/internal/opt"
	"staticest/internal/profile"
	"staticest/internal/texttab"
)

// This file is the decision-agreement experiment the optimizer subsystem
// exists for: run every optimizer (inlining plan, block layout, spill
// weighting) under each frequency source and measure how closely the
// estimate-driven decisions track the profile-driven ones. The paper's
// thesis is that static estimates are accurate enough *for optimization
// decisions*; this report tests exactly that, on decisions rather than
// on raw counts.

// InlineTopK is the decision horizon for inlining agreement: sources are
// compared on which K call sites they would inline first.
const InlineTopK = 10

// OptRow is one (program, source) agreement summary against the
// program's self profile (the aggregate of all its inputs).
type OptRow struct {
	Program string
	Source  string

	// InlineOverlap is the top-K overlap between the source's and the
	// profile's hottest eligible call sites; InlineTau is Kendall tau-b
	// over all eligible-site frequencies.
	InlineOverlap float64
	InlineTau     float64

	// SpillTau is the mean Kendall tau-b of spill-cost rankings across
	// executed functions with at least two candidate variables.
	SpillTau float64

	// FallThrough is the profile-measured fall-through rate of the block
	// layout this source chooses; FallRaw/TotalRaw are its numerator and
	// denominator, kept for exact suite-wide pooling.
	FallThrough float64
	FallRaw     float64
	TotalRaw    float64
}

// OptProgram computes agreement rows for one program: one row per
// comparison source (the static estimators plus the cross-input
// profile), all against the self profile, plus the self-profile and
// source-order layout rows that bracket the layout scores.
func OptProgram(d *ProgramData) ([]OptRow, error) {
	sp := Observer().StartSpan("opt.agree", obs.KV("prog", d.Prog.Name))
	defer sp.End()

	self, err := profile.Aggregate(d.Profiles)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", d.Prog.Name, err)
	}
	xp := self
	if len(d.Profiles) > 1 {
		if xp, err = profile.Aggregate(d.Profiles[1:]); err != nil {
			return nil, err
		}
	}
	return AgreementRows(d.Prog.Name, d.Unit, d.Est, self,
		opt.ProfileSource(d.Unit.CFG, xp, "xprof"))
}

// AgreementRows computes decision-agreement rows for one compiled unit
// against an arbitrary reference profile: one row per static estimator
// (plus any extra sources), then the bracket rows — the reference
// profile's own layout and source order. OptProgram uses it with the
// offline self profile; the serving layer uses it with the live ingest
// aggregate, so "agreement from the live aggregate" is computed by the
// same arithmetic as the offline report and the two are equal whenever
// the profiles are.
func AgreementRows(program string, u *staticest.Unit, est *core.Estimates,
	ref *profile.Profile, extra ...*opt.Source) ([]OptRow, error) {
	selfSrc := opt.ProfileSource(u.CFG, ref, "profile")

	sources := make([]*opt.Source, 0, len(opt.EstimateKinds)+len(extra))
	for _, kind := range opt.EstimateKinds {
		s, err := opt.EstimateSource(u.CFG, est, kind)
		if err != nil {
			return nil, err
		}
		sources = append(sources, s)
	}
	sources = append(sources, extra...)

	eligible := opt.EligibleSites(u.CFG, u.Call)
	siteVec := func(s *opt.Source) []float64 {
		v := make([]float64, len(eligible))
		for i, si := range eligible {
			v[i] = s.Site[si.Site]
		}
		return v
	}
	profVec := siteVec(selfSrc)

	spillTau := func(s *opt.Source) float64 {
		var sum float64
		var n int
		for fi := range u.Sem.Funcs {
			if ref.FuncCalls[fi] == 0 {
				continue
			}
			ws := opt.SpillWeights(u.CFG, fi, s)
			wp := opt.SpillWeights(u.CFG, fi, selfSrc)
			if len(ws) < 2 {
				continue
			}
			a := make([]float64, len(ws))
			b := make([]float64, len(ws))
			for i := range ws {
				a[i], b[i] = ws[i].Weight, wp[i].Weight
			}
			sum += opt.KendallTau(a, b)
			n++
		}
		if n == 0 {
			return 1
		}
		return sum / float64(n)
	}

	layoutRow := func(name string, lay *opt.Layout) OptRow {
		rate, fall, total := opt.FallThroughRate(u.CFG, lay, selfSrc)
		return OptRow{Program: program, Source: name,
			FallThrough: rate, FallRaw: fall, TotalRaw: total}
	}

	var rows []OptRow
	for _, s := range sources {
		row := layoutRow(s.Name, opt.ComputeLayout(u.CFG, s, Observer()))
		row.InlineOverlap = opt.TopKOverlap(siteVec(s), profVec, InlineTopK)
		row.InlineTau = opt.KendallTau(siteVec(s), profVec)
		row.SpillTau = spillTau(s)
		rows = append(rows, row)
	}
	// Brackets: the profile's own layout (upper) and source order (lower).
	pr := layoutRow("profile", opt.ComputeLayout(u.CFG, selfSrc, Observer()))
	pr.InlineOverlap, pr.InlineTau, pr.SpillTau = 1, 1, 1
	so := layoutRow("src-order", opt.SourceOrderLayout(u.CFG))
	rows = append(rows, pr, so)
	return rows, nil
}

// OptReport computes agreement rows for every program plus pooled
// suite-wide rows (Program == "SUITE"): decision metrics averaged across
// programs, fall-through pooled from the raw numerators so every control
// transfer in the suite counts once.
func OptReport(data []*ProgramData) ([]OptRow, error) {
	var rows []OptRow
	pooled := map[string]*OptRow{}
	order := []string{}
	counts := map[string]int{}
	for _, d := range data {
		prows, err := OptProgram(d)
		if err != nil {
			return nil, err
		}
		rows = append(rows, prows...)
		for _, r := range prows {
			agg, ok := pooled[r.Source]
			if !ok {
				agg = &OptRow{Program: "SUITE", Source: r.Source}
				pooled[r.Source] = agg
				order = append(order, r.Source)
			}
			agg.InlineOverlap += r.InlineOverlap
			agg.InlineTau += r.InlineTau
			agg.SpillTau += r.SpillTau
			agg.FallRaw += r.FallRaw
			agg.TotalRaw += r.TotalRaw
			counts[r.Source]++
		}
	}
	for _, name := range order {
		agg := pooled[name]
		n := float64(counts[name])
		agg.InlineOverlap /= n
		agg.InlineTau /= n
		agg.SpillTau /= n
		if agg.TotalRaw > 0 {
			agg.FallThrough = agg.FallRaw / agg.TotalRaw
		}
		rows = append(rows, *agg)
	}
	return rows, nil
}

// RenderOptReport renders the decision-agreement report.
func RenderOptReport(rows []OptRow) string {
	var sb strings.Builder
	sb.WriteString("Optimizer decision agreement: estimate-driven vs profile-driven\n")
	fmt.Fprintf(&sb, "inline: top-%d site overlap and Kendall tau vs self profile;\n", InlineTopK)
	sb.WriteString("spill: mean ranking tau; fallthru: profile-measured fall-through rate\n\n")
	t := texttab.New("program", "source", "inl-top10", "inl-tau", "spill-tau", "fallthru%").
		AlignRight(2, 3, 4, 5)
	for _, r := range rows {
		if r.Source == "src-order" || r.Source == "profile" {
			t.Row(r.Program, r.Source, "-", "-", "-",
				fmt.Sprintf("%.1f", r.FallThrough*100))
			continue
		}
		t.Row(r.Program, r.Source,
			fmt.Sprintf("%.2f", r.InlineOverlap),
			fmt.Sprintf("%.2f", r.InlineTau),
			fmt.Sprintf("%.2f", r.SpillTau),
			fmt.Sprintf("%.1f", r.FallThrough*100))
	}
	sb.WriteString(t.String())
	return sb.String()
}
