package eval

import (
	"math"
	"strings"
	"testing"

	"staticest"
)

// explainFixture exercises three heuristics with hand-computable
// dynamic outcomes:
//
//   - work's for-loop:   11 evaluations, 10 taken / 1 not  (loop)
//   - work's i == 3:     10 evaluations,  1 taken / 9 not  (opcode)
//   - find's while-loop:  3 evaluations,  3 taken / 0 not  (loop)
//   - find's *s == c:     3 evaluations,  1 taken / 2 not  (opcode)
//   - main's if (p):      1 evaluation,   1 taken / 0 not  (pointer)
const explainFixture = `
int sink;
int work(int x) {
	int i;
	for (i = 0; i < x; i++) {
		if (i == 3)
			sink = sink + 1;
	}
	return sink;
}
char *find(char *s, int c) {
	while (*s) {
		if (*s == c)
			return s;
		s++;
	}
	return 0;
}
int main(void) {
	int r = 0;
	char *p = find("hello", 'l');
	if (p)
		r = 1;
	work(10);
	return r;
}
`

func loadExplainFixture(t *testing.T) *ExplainReport {
	t.Helper()
	u, err := staticest.Compile("fixture.c", []byte(explainFixture))
	if err != nil {
		t.Fatal(err)
	}
	res, err := u.Run(staticest.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return Explain(u, u.Estimate(), res.Profile, 0.05)
}

func TestExplainHeuristicAttribution(t *testing.T) {
	r := loadExplainFixture(t)

	want := map[string]HeuristicReport{
		"loop":    {Heuristic: "loop", Sites: 2, Executed: 2, Dynamic: 14, Hits: 13, Misses: 1},
		"opcode":  {Heuristic: "opcode", Sites: 2, Executed: 2, Dynamic: 13, Hits: 11, Misses: 2},
		"pointer": {Heuristic: "pointer", Sites: 1, Executed: 1, Dynamic: 1, Hits: 1, Misses: 0},
	}
	if len(r.Heuristics) != len(want) {
		names := make([]string, len(r.Heuristics))
		for i, h := range r.Heuristics {
			names[i] = h.Heuristic
		}
		t.Fatalf("heuristics fired: %v, want exactly loop/opcode/pointer", names)
	}
	for _, h := range r.Heuristics {
		w, ok := want[h.Heuristic]
		if !ok {
			t.Errorf("unexpected heuristic %q", h.Heuristic)
			continue
		}
		if h != w {
			t.Errorf("heuristic %s = %+v, want %+v", h.Heuristic, h, w)
		}
		if h.Hits+h.Misses != h.Dynamic {
			t.Errorf("heuristic %s: hits %g + misses %g != dynamic %g",
				h.Heuristic, h.Hits, h.Misses, h.Dynamic)
		}
	}
	// Sorted by dynamic count descending: loop (14), opcode (13), pointer (1).
	if r.Heuristics[0].Heuristic != "loop" || r.Heuristics[1].Heuristic != "opcode" ||
		r.Heuristics[2].Heuristic != "pointer" {
		t.Errorf("heuristic order wrong: %+v", r.Heuristics)
	}
	if got, wantMiss := r.MissRate, 3.0/28.0; math.Abs(got-wantMiss) > 1e-12 {
		t.Errorf("overall miss rate = %g, want %g", got, wantMiss)
	}
}

func TestExplainBranchSites(t *testing.T) {
	r := loadExplainFixture(t)
	if len(r.Branches) != 5 {
		t.Fatalf("got %d branch sites, want 5", len(r.Branches))
	}
	// Sorted by misses descending; the opcode misses (1 each) and the
	// work-loop exit miss (1) lead, the zero-miss sites trail.
	for i := 1; i < len(r.Branches); i++ {
		if r.Branches[i].Misses > r.Branches[i-1].Misses {
			t.Errorf("branches not sorted by misses: %g after %g",
				r.Branches[i].Misses, r.Branches[i-1].Misses)
		}
	}
	var pointer *BranchSiteReport
	for i := range r.Branches {
		if r.Branches[i].Heuristic == "pointer" {
			pointer = &r.Branches[i]
		}
	}
	if pointer == nil {
		t.Fatal("no pointer-heuristic site in the report")
	}
	if !pointer.PredTaken || pointer.Taken != 1 || pointer.Not != 0 ||
		pointer.Hits != 1 || pointer.Misses != 0 {
		t.Errorf("pointer site = %+v", *pointer)
	}
	if pointer.Func != "main" {
		t.Errorf("pointer site in %q, want main", pointer.Func)
	}
}

func TestExplainFuncDivergence(t *testing.T) {
	r := loadExplainFixture(t)
	byName := map[string]FuncReport{}
	for _, f := range r.Funcs {
		byName[f.Func] = f
	}
	for _, name := range []string{"main", "work", "find"} {
		f, ok := byName[name]
		if !ok {
			t.Fatalf("function %s missing from report (have %v)", name, byName)
		}
		if f.Calls != 1 {
			t.Errorf("%s calls = %g, want 1", name, f.Calls)
		}
		if f.Score < 0 || f.Score > 1 {
			t.Errorf("%s score = %g, want within [0,1]", name, f.Score)
		}
		if f.Divergence < 0 || f.Divergence > 1 {
			t.Errorf("%s divergence = %g, want within [0,1]", name, f.Divergence)
		}
		if f.EstInv <= 0 {
			t.Errorf("%s estimated invocations = %g, want > 0", name, f.EstInv)
		}
	}
}

func TestExplainRender(t *testing.T) {
	r := loadExplainFixture(t)
	s := r.Render(3)
	for _, frag := range []string{
		"explain: fixture.c",
		"per-heuristic attribution",
		"worst-predicted branch sites",
		"per-function estimate vs profile",
		"loop", "opcode", "pointer",
		"work", "find",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("rendered report missing %q:\n%s", frag, s)
		}
	}
	// topBranches bounds the site table: 3 rows requested, 5 sites exist.
	siteRows := strings.Count(s, " @fixture.c:")
	if siteRows != 3 {
		t.Errorf("rendered %d site rows, want 3:\n%s", siteRows, s)
	}
}
