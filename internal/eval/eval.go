// Package eval reproduces the paper's evaluation: it compiles every
// suite program, profiles it on every input, runs the full estimator
// ladder, and regenerates each table and figure (Table 1, Table 2,
// Figures 2-7, 9, 10) as structured results plus text renderings.
package eval

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"staticest"
	"staticest/internal/core"
	"staticest/internal/metric"
	"staticest/internal/obs"
	"staticest/internal/profile"
	"staticest/internal/suite"
)

// obsv is the harness-wide observer; the suite cache is shared across
// callers, so the observer is package state rather than a parameter.
// Stored atomically: LoadSuite profiles programs from several
// goroutines.
var obsv atomic.Pointer[obs.Observer]

// SetObserver routes harness observability (per-program load/run/score
// spans, run counters) to o. Pass nil to disable. Set it before the
// first LoadSuiteCached call to capture suite loading itself.
func SetObserver(o *obs.Observer) { obsv.Store(o) }

// Observer returns the harness observer (nil when unset).
func Observer() *obs.Observer { return obsv.Load() }

// scoreSpan times one program's contribution to one experiment.
func scoreSpan(exp, prog string) *obs.Span {
	return Observer().StartSpan("eval.score", obs.KV("exp", exp), obs.KV("prog", prog))
}

// ProgramData is one program's compiled unit, estimates, and profiles.
type ProgramData struct {
	Prog     *suite.Program
	Unit     *staticest.Unit
	Est      *core.Estimates
	Profiles []*profile.Profile // parallel to Prog.Inputs
}

// Load compiles and profiles one program with the default configuration.
func Load(p *suite.Program) (*ProgramData, error) {
	o := Observer()
	sp := o.StartSpan("eval.load", obs.KV("prog", p.Name))
	defer sp.End()
	u, err := p.CompileCached()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	esp := sp.Child("eval.estimate", obs.KV("prog", p.Name))
	d := &ProgramData{Prog: p, Unit: u, Est: u.Estimate()}
	esp.End()
	for _, in := range p.Inputs {
		rsp := sp.Child("eval.run", obs.KV("prog", p.Name), obs.KV("input", in.Name))
		res, err := u.Run(staticest.RunOptions{Args: in.Args, Stdin: in.Stdin, Obs: o})
		rsp.End()
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", p.Name, in.Name, err)
		}
		o.Counter("eval_runs_total").Add(1)
		res.Profile.Label = in.Name
		d.Profiles = append(d.Profiles, res.Profile)
	}
	o.Counter("eval_programs_loaded_total").Add(1)
	return d, nil
}

// parallelism is the worker-pool width for LoadSuite (0 = GOMAXPROCS).
var parallelism atomic.Int64

// SetParallelism bounds the number of programs LoadSuite compiles and
// profiles concurrently. n <= 0 restores the default,
// runtime.GOMAXPROCS(0). Results are independent of the setting: each
// program's work is self-contained and lands in its own slot.
func SetParallelism(n int) { parallelism.Store(int64(n)) }

// Parallelism returns the effective worker count.
func Parallelism() int {
	if n := int(parallelism.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// runBounded executes fn(0..n-1) on a pool of at most workers
// goroutines. Each index runs exactly once; ordering between indices is
// unspecified, so fn must only touch per-index state.
func runBounded(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// LoadSuite loads every program in the suite on a bounded worker pool
// (see SetParallelism). The result is deterministic: data[i] always
// holds program i regardless of completion order.
func LoadSuite() ([]*ProgramData, error) {
	progs := suite.Programs()
	data := make([]*ProgramData, len(progs))
	errs := make([]error, len(progs))
	runBounded(len(progs), Parallelism(), func(i int) {
		data[i], errs[i] = Load(progs[i])
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return data, nil
}

// progCache memoizes LoadCached per program name; entries are
// *progEntry so concurrent first loads of one program do the work once.
var progCache sync.Map

type progEntry struct {
	once sync.Once
	data *ProgramData
	err  error
}

// LoadCached compiles and profiles one suite program once per process
// and returns shared, read-only data. Unlike LoadSuiteCached it loads
// only the named program, so callers that serve per-program queries
// (cmd/serve) pay for exactly the programs that are asked about.
// Concurrent first calls for the same program deduplicate: the load
// runs once and everyone gets the same *ProgramData.
func LoadCached(p *suite.Program) (*ProgramData, error) {
	e, _ := progCache.LoadOrStore(p.Name, &progEntry{})
	entry := e.(*progEntry)
	entry.once.Do(func() {
		entry.data, entry.err = Load(p)
	})
	return entry.data, entry.err
}

var (
	suiteOnce sync.Once
	suiteData []*ProgramData
	suiteErr  error
)

// LoadSuiteCached loads the suite once per process and returns shared,
// read-only data (the harness and benchmarks call this repeatedly).
func LoadSuiteCached() ([]*ProgramData, error) {
	suiteOnce.Do(func() {
		suiteData, suiteErr = LoadSuite()
	})
	return suiteData, suiteErr
}

// others returns all profiles except index i.
func others(profiles []*profile.Profile, i int) []*profile.Profile {
	out := make([]*profile.Profile, 0, len(profiles)-1)
	for j, p := range profiles {
		if j != i {
			out = append(out, p)
		}
	}
	return out
}

// aggregateOthers aggregates the held-out complement of profile i.
func aggregateOthers(profiles []*profile.Profile, i int) (*profile.Profile, error) {
	rest := others(profiles, i)
	if len(rest) == 0 {
		return profiles[i], nil
	}
	return profile.Aggregate(rest)
}

// rankDesc returns indices of v sorted descending (ties by index).
func rankDesc(v []float64) []int {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] > v[idx[b]] })
	return idx
}

// meanOverProfiles averages f(i) across profile indices.
func meanOverProfiles(n int, f func(i int) (float64, error)) (float64, error) {
	if n == 0 {
		return 0, fmt.Errorf("eval: no profiles")
	}
	total := 0.0
	for i := 0; i < n; i++ {
		v, err := f(i)
		if err != nil {
			return 0, err
		}
		total += v
	}
	return total / float64(n), nil
}

// intraEstimateVectors extracts per-function block-frequency vectors from
// an estimator result list.
func intraEstimateVectors(res []*core.IntraResult) [][]float64 {
	out := make([][]float64, len(res))
	for i, r := range res {
		out[i] = r.BlockFreq
	}
	return out
}

// intraScore computes the paper's intra-procedural weight-matching score
// for one program: per held-out profile, score every executed function at
// the cutoff, weight by its dynamic invocation count, then average the
// per-profile results.
func intraScore(d *ProgramData, est [][]float64, cutoff float64) (float64, error) {
	return meanOverProfiles(len(d.Profiles), func(i int) (float64, error) {
		p := d.Profiles[i]
		var scores, weights []float64
		for f := range d.Unit.Sem.Funcs {
			if p.FuncCalls[f] == 0 {
				continue
			}
			scores = append(scores, metric.WeightMatch(est[f], p.BlockCounts[f], cutoff))
			weights = append(weights, p.FuncCalls[f])
		}
		if len(scores) == 0 {
			return 1, nil
		}
		return metric.WeightedMean(scores, weights), nil
	})
}

// intraProfilingScore scores cross-input profiling as the intra
// estimator: aggregate the other inputs and match against the held-out
// profile.
func intraProfilingScore(d *ProgramData, cutoff float64) (float64, error) {
	return meanOverProfiles(len(d.Profiles), func(i int) (float64, error) {
		agg, err := aggregateOthers(d.Profiles, i)
		if err != nil {
			return 0, err
		}
		p := d.Profiles[i]
		var scores, weights []float64
		for f := range d.Unit.Sem.Funcs {
			if p.FuncCalls[f] == 0 {
				continue
			}
			scores = append(scores, metric.WeightMatch(agg.BlockCounts[f], p.BlockCounts[f], cutoff))
			weights = append(weights, p.FuncCalls[f])
		}
		if len(scores) == 0 {
			return 1, nil
		}
		return metric.WeightedMean(scores, weights), nil
	})
}

// invocationScore scores a function-invocation estimate at a cutoff.
func invocationScore(d *ProgramData, est []float64, cutoff float64) (float64, error) {
	return meanOverProfiles(len(d.Profiles), func(i int) (float64, error) {
		return metric.WeightMatch(est, d.Profiles[i].FuncCalls, cutoff), nil
	})
}

// invocationProfilingScore scores cross-input profiling for invocations.
func invocationProfilingScore(d *ProgramData, cutoff float64) (float64, error) {
	return meanOverProfiles(len(d.Profiles), func(i int) (float64, error) {
		agg, err := aggregateOthers(d.Profiles, i)
		if err != nil {
			return 0, err
		}
		return metric.WeightMatch(agg.FuncCalls, d.Profiles[i].FuncCalls, cutoff), nil
	})
}

// directSiteIndices lists call sites that are direct (inlinable); the
// paper omits indirect sites from call-site scores.
func directSiteIndices(d *ProgramData) []int {
	var out []int
	for _, s := range d.Unit.Sem.CallSites {
		if !s.Indirect() {
			out = append(out, s.ID)
		}
	}
	return out
}

func gather(v []float64, idx []int) []float64 {
	out := make([]float64, len(idx))
	for i, j := range idx {
		out[i] = v[j]
	}
	return out
}

// callSiteScore scores a global call-site frequency estimate at a cutoff
// over direct sites only.
func callSiteScore(d *ProgramData, est []float64, cutoff float64) (float64, error) {
	idx := directSiteIndices(d)
	if len(idx) == 0 {
		return 1, nil
	}
	e := gather(est, idx)
	return meanOverProfiles(len(d.Profiles), func(i int) (float64, error) {
		return metric.WeightMatch(e, gather(d.Profiles[i].CallSiteCounts, idx), cutoff), nil
	})
}

// callSiteProfilingScore scores cross-input profiling for call sites.
func callSiteProfilingScore(d *ProgramData, cutoff float64) (float64, error) {
	idx := directSiteIndices(d)
	if len(idx) == 0 {
		return 1, nil
	}
	return meanOverProfiles(len(d.Profiles), func(i int) (float64, error) {
		agg, err := aggregateOthers(d.Profiles, i)
		if err != nil {
			return 0, err
		}
		return metric.WeightMatch(gather(agg.CallSiteCounts, idx),
			gather(d.Profiles[i].CallSiteCounts, idx), cutoff), nil
	})
}
