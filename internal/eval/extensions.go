package eval

import (
	"fmt"
	"strings"

	"staticest/internal/core"
	"staticest/internal/metric"
	"staticest/internal/profile"
	"staticest/internal/texttab"
)

// The experiments in this file go beyond the paper's figures:
//
//   - SweepRow / CutoffSweep quantifies the paper's aside that "often
//     scores are higher for wider cutoffs, but this is by no means
//     universal" by sweeping the weight-matching cutoff.
//   - OracleRow / MarkovOracle answers the paper's closing open question
//     for the intra-procedural Markov model: "It is an open question
//     whether static branch prediction can be accurate enough to make
//     good use of the intra-procedural Markov model (for example, by
//     using a static predictor that generates probabilities directly)."
//     We feed the model *perfect* probabilities (derived from held-out
//     profiles) and measure the headroom.

// SweepRow is one cutoff's suite-average invocation scores.
type SweepRow struct {
	Cutoff  float64
	Direct  float64
	Markov  float64
	Profile float64
}

// CutoffSweep scores the invocation estimators across cutoffs.
func CutoffSweep(data []*ProgramData, cutoffs []float64) ([]SweepRow, error) {
	var rows []SweepRow
	for _, c := range cutoffs {
		f5, err := Figure5(data, c)
		if err != nil {
			return nil, err
		}
		row := SweepRow{Cutoff: c}
		for _, r := range f5 {
			row.Direct += r.Direct
			row.Markov += r.Markov
			row.Profile += r.Profile
		}
		n := float64(len(f5))
		row.Direct /= n
		row.Markov /= n
		row.Profile /= n
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderCutoffSweep renders the sweep.
func RenderCutoffSweep(rows []SweepRow) string {
	var sb strings.Builder
	sb.WriteString("Extension X1: invocation scores across weight-matching cutoffs\n")
	sb.WriteString("(the paper notes wider cutoffs often, but not always, score higher)\n\n")
	t := texttab.New("cutoff", "direct", "markov", "profiling").AlignRight(1, 2, 3)
	for _, r := range rows {
		t.Row(fmt.Sprintf("%.0f%%", r.Cutoff*100), r.Direct, r.Markov, r.Profile)
	}
	sb.WriteString(t.String())
	return sb.String()
}

// OracleRow compares the static Markov intra estimator against the same
// model fed profile-derived ("oracle") branch probabilities.
type OracleRow struct {
	Program      string
	Smart        float64 // AST walk with smart predictions
	Markov       float64 // Markov chain with smart predictions
	MarkovOracle float64 // Markov chain with held-out-profile probabilities
	Profile      float64 // profiling as the estimator
}

// oraclePredictions builds a Predictions table whose probabilities come
// from a profile (the aggregate of the held-out inputs).
func oraclePredictions(d *ProgramData, static *core.Predictions, p *profile.Profile) *core.Predictions {
	pr := &core.Predictions{
		Branch: make([]core.BranchPrediction, len(static.Branch)),
		Switch: make([][]float64, len(static.Switch)),
	}
	for i, bp := range static.Branch {
		taken, not := p.BranchTaken[i], p.BranchNot[i]
		if taken+not > 0 {
			bp.ProbTrue = taken / (taken + not)
			bp.Heuristic = "oracle"
			bp.Constant = false
		}
		pr.Branch[i] = bp
	}
	for i, probs := range static.Switch {
		arms := p.SwitchArm[i]
		total := 0.0
		for _, c := range arms {
			total += c
		}
		out := append([]float64(nil), probs...)
		if total > 0 && len(arms) == len(probs) {
			for j := range out {
				out[j] = arms[j] / total
			}
		}
		pr.Switch[i] = out
	}
	return pr
}

// MarkovOracle scores the intra Markov model under static vs oracle
// probabilities at the given cutoff.
func MarkovOracle(data []*ProgramData, cutoff float64) ([]OracleRow, error) {
	conf := core.DefaultConfig()
	var rows []OracleRow
	for _, d := range data {
		static := core.Predict(d.Unit.CFG, conf)
		row := OracleRow{Program: d.Prog.Name}

		smart, err := intraScore(d, intraEstimateVectors(d.Est.IntraSmart), cutoff)
		if err != nil {
			return nil, err
		}
		markov, err := intraScore(d, intraEstimateVectors(d.Est.IntraMarkov), cutoff)
		if err != nil {
			return nil, err
		}
		prof, err := intraProfilingScore(d, cutoff)
		if err != nil {
			return nil, err
		}

		// Oracle: per held-out profile, rebuild the Markov estimates
		// with probabilities from the aggregate of the other inputs.
		oracle, err := meanOverProfiles(len(d.Profiles), func(i int) (float64, error) {
			agg, err := aggregateOthers(d.Profiles, i)
			if err != nil {
				return 0, err
			}
			preds := oraclePredictions(d, static, agg)
			p := d.Profiles[i]
			var scores, weights []float64
			for f, g := range d.Unit.CFG.Graphs {
				if p.FuncCalls[f] == 0 {
					continue
				}
				res := core.IntraMarkov(g, preds, conf)
				scores = append(scores, metric.WeightMatch(res.BlockFreq, p.BlockCounts[f], cutoff))
				weights = append(weights, p.FuncCalls[f])
			}
			if len(scores) == 0 {
				return 1, nil
			}
			return metric.WeightedMean(scores, weights), nil
		})
		if err != nil {
			return nil, err
		}

		row.Smart = smart * 100
		row.Markov = markov * 100
		row.MarkovOracle = oracle * 100
		row.Profile = prof * 100
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderMarkovOracle renders the open-question experiment.
func RenderMarkovOracle(rows []OracleRow) string {
	var sb strings.Builder
	sb.WriteString("Extension X2: can better probabilities rescue the intra Markov model?\n")
	sb.WriteString("(the paper's open question: Markov with oracle branch probabilities)\n\n")
	t := texttab.New("program", "smart", "markov", "markov+oracle", "profiling").
		AlignRight(1, 2, 3, 4)
	var a, b, c, p float64
	for _, r := range rows {
		t.Row(r.Program, r.Smart, r.Markov, r.MarkovOracle, r.Profile)
		a += r.Smart
		b += r.Markov
		c += r.MarkovOracle
		p += r.Profile
	}
	n := float64(len(rows))
	t.Row("AVERAGE", a/n, b/n, c/n, p/n)
	sb.WriteString(t.String())
	return sb.String()
}
