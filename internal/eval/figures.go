package eval

import (
	"fmt"
	"strings"

	"staticest"
	"staticest/internal/metric"
	"staticest/internal/profile"
	"staticest/internal/texttab"
)

// Fig2Row is one program's branch-prediction miss rates (percent of
// dynamic branches mispredicted; constant conditions and switches
// excluded, per the paper).
type Fig2Row struct {
	Program string
	Smart   float64 // the paper's heuristic predictor
	Profile float64 // predicting from the aggregate of the other inputs
	PSP     float64 // perfect static predictor (profile predicts itself)
}

// branchSkip returns the per-branch-site exclusion mask (constant
// conditions).
func branchSkip(d *ProgramData) []bool {
	skip := make([]bool, len(d.Est.Pred.Branch))
	for i, bp := range d.Est.Pred.Branch {
		skip[i] = bp.Constant
	}
	return skip
}

// predictedDirections extracts the smart predictor's taken/not-taken
// guesses.
func predictedDirections(d *ProgramData) []bool {
	dir := make([]bool, len(d.Est.Pred.Branch))
	for i, bp := range d.Est.Pred.Branch {
		dir[i] = bp.Taken()
	}
	return dir
}

// Figure2 computes branch miss rates for every program.
func Figure2(data []*ProgramData) ([]Fig2Row, error) {
	var rows []Fig2Row
	for _, d := range data {
		sp := scoreSpan("f2", d.Prog.Name)
		skip := branchSkip(d)
		dirs := predictedDirections(d)
		smart, err := meanOverProfiles(len(d.Profiles), func(i int) (float64, error) {
			p := d.Profiles[i]
			return metric.MissRate(dirs, p.BranchTaken, p.BranchNot, skip), nil
		})
		if err != nil {
			return nil, err
		}
		prof, err := meanOverProfiles(len(d.Profiles), func(i int) (float64, error) {
			agg, err := aggregateOthers(d.Profiles, i)
			if err != nil {
				return 0, err
			}
			dir := make([]bool, len(agg.BranchTaken))
			for b := range dir {
				dir[b] = agg.BranchTaken[b] > agg.BranchNot[b]
			}
			p := d.Profiles[i]
			return metric.MissRate(dir, p.BranchTaken, p.BranchNot, skip), nil
		})
		if err != nil {
			return nil, err
		}
		psp, err := meanOverProfiles(len(d.Profiles), func(i int) (float64, error) {
			p := d.Profiles[i]
			return metric.PerfectStaticMissRate(p.BranchTaken, p.BranchNot, skip), nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig2Row{
			Program: d.Prog.Name,
			Smart:   smart * 100, Profile: prof * 100, PSP: psp * 100,
		})
		sp.End()
	}
	return rows, nil
}

// RenderFigure2 renders Figure 2 as a text chart.
func RenderFigure2(rows []Fig2Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 2: branch miss rates (% of dynamic branches mispredicted)\n")
	sb.WriteString("constant-condition branches and switches omitted\n\n")
	t := texttab.New("program", "predictor", "profiling", "PSP").AlignRight(1, 2, 3)
	var s, p, q float64
	for _, r := range rows {
		t.Row(r.Program, r.Smart, r.Profile, r.PSP)
		s += r.Smart
		p += r.Profile
		q += r.PSP
	}
	n := float64(len(rows))
	t.Row("AVERAGE", s/n, p/n, q/n)
	sb.WriteString(t.String())
	return sb.String()
}

// Fig4Row is one program's intra-procedural weight-matching scores (%).
type Fig4Row struct {
	Program string
	Loop    float64
	Smart   float64
	Markov  float64
	Profile float64
}

// Figure4 scores the intra-procedural estimators at the paper's 5%
// cutoff.
func Figure4(data []*ProgramData) ([]Fig4Row, error) {
	return Figure4At(data, 0.05)
}

// Figure4At scores the intra-procedural estimators at an arbitrary
// cutoff (used by ablations).
func Figure4At(data []*ProgramData, cutoff float64) ([]Fig4Row, error) {
	var rows []Fig4Row
	for _, d := range data {
		sp := scoreSpan("f4", d.Prog.Name)
		loop, err := intraScore(d, intraEstimateVectors(d.Est.IntraLoop), cutoff)
		if err != nil {
			return nil, err
		}
		smart, err := intraScore(d, intraEstimateVectors(d.Est.IntraSmart), cutoff)
		if err != nil {
			return nil, err
		}
		markov, err := intraScore(d, intraEstimateVectors(d.Est.IntraMarkov), cutoff)
		if err != nil {
			return nil, err
		}
		prof, err := intraProfilingScore(d, cutoff)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig4Row{
			Program: d.Prog.Name,
			Loop:    loop * 100, Smart: smart * 100,
			Markov: markov * 100, Profile: prof * 100,
		})
		sp.End()
	}
	return rows, nil
}

// RenderFigure4 renders Figure 4.
func RenderFigure4(rows []Fig4Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 4: intra-procedural weight-matching scores (5% cutoff)\n\n")
	t := texttab.New("program", "loop", "smart", "markov", "profiling").AlignRight(1, 2, 3, 4)
	var a, b, c, p float64
	for _, r := range rows {
		t.Row(r.Program, r.Loop, r.Smart, r.Markov, r.Profile)
		a += r.Loop
		b += r.Smart
		c += r.Markov
		p += r.Profile
	}
	n := float64(len(rows))
	t.Row("AVERAGE", a/n, b/n, c/n, p/n)
	sb.WriteString(t.String())
	return sb.String()
}

// Fig5Row is one program's function-invocation weight-matching scores
// (%) at a given cutoff.
type Fig5Row struct {
	Program  string
	CallSite float64
	Direct   float64
	AllRec   float64
	AllRec2  float64
	Markov   float64
	Profile  float64
}

// Figure5 scores the invocation estimators at the given cutoff
// (Figure 5a uses 25%; 5b compares direct/markov at 10%; 5c at 25%).
func Figure5(data []*ProgramData, cutoff float64) ([]Fig5Row, error) {
	var rows []Fig5Row
	for _, d := range data {
		sp := scoreSpan("f5", d.Prog.Name)
		row := Fig5Row{Program: d.Prog.Name}
		for _, c := range []struct {
			est []float64
			out *float64
		}{
			{d.Est.Inter.CallSite, &row.CallSite},
			{d.Est.Inter.Direct, &row.Direct},
			{d.Est.Inter.AllRec, &row.AllRec},
			{d.Est.Inter.AllRec2, &row.AllRec2},
			{d.Est.InterMarkov.Inv, &row.Markov},
		} {
			v, err := invocationScore(d, c.est, cutoff)
			if err != nil {
				return nil, err
			}
			*c.out = v * 100
		}
		p, err := invocationProfilingScore(d, cutoff)
		if err != nil {
			return nil, err
		}
		row.Profile = p * 100
		rows = append(rows, row)
		sp.End()
	}
	return rows, nil
}

// RenderFigure5a renders the simple-estimator comparison at 25%.
func RenderFigure5a(rows []Fig5Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 5a: function-invocation scores, simple estimators (25% cutoff)\n\n")
	t := texttab.New("program", "call_site", "direct", "all_rec", "all_rec2", "profiling").
		AlignRight(1, 2, 3, 4, 5)
	var a, b, c, d2, p float64
	for _, r := range rows {
		t.Row(r.Program, r.CallSite, r.Direct, r.AllRec, r.AllRec2, r.Profile)
		a += r.CallSite
		b += r.Direct
		c += r.AllRec
		d2 += r.AllRec2
		p += r.Profile
	}
	n := float64(len(rows))
	t.Row("AVERAGE", a/n, b/n, c/n, d2/n, p/n)
	sb.WriteString(t.String())
	return sb.String()
}

// RenderFigure5bc renders the direct/markov/profiling comparison at a
// cutoff (Figure 5b at 10%, 5c at 25%).
func RenderFigure5bc(rows []Fig5Row, cutoffPct int, letter string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5%s: direct vs Markov vs profiling (%d%% cutoff)\n\n",
		letter, cutoffPct)
	t := texttab.New("program", "direct", "markov", "profiling").AlignRight(1, 2, 3)
	var b, m, p float64
	for _, r := range rows {
		t.Row(r.Program, r.Direct, r.Markov, r.Profile)
		b += r.Direct
		m += r.Markov
		p += r.Profile
	}
	n := float64(len(rows))
	t.Row("AVERAGE", b/n, m/n, p/n)
	sb.WriteString(t.String())
	return sb.String()
}

// Fig9Row is one program's call-site weight-matching scores (%) at the
// 25% cutoff (indirect sites excluded).
type Fig9Row struct {
	Program string
	Direct  float64
	Markov  float64
	Profile float64
}

// Figure9 scores global call-site frequency estimates.
func Figure9(data []*ProgramData) ([]Fig9Row, error) {
	return Figure9At(data, 0.25)
}

// Figure9At scores call-site estimates at an arbitrary cutoff.
func Figure9At(data []*ProgramData, cutoff float64) ([]Fig9Row, error) {
	var rows []Fig9Row
	for _, d := range data {
		sp := scoreSpan("f9", d.Prog.Name)
		direct, err := callSiteScore(d, d.Est.SiteFreqDirect, cutoff)
		if err != nil {
			return nil, err
		}
		markov, err := callSiteScore(d, d.Est.SiteFreqMarkov, cutoff)
		if err != nil {
			return nil, err
		}
		prof, err := callSiteProfilingScore(d, cutoff)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig9Row{
			Program: d.Prog.Name,
			Direct:  direct * 100, Markov: markov * 100, Profile: prof * 100,
		})
		sp.End()
	}
	return rows, nil
}

// RenderFigure9 renders Figure 9.
func RenderFigure9(rows []Fig9Row) string {
	var sb strings.Builder
	sb.WriteString("Figure 9: call-site weight-matching scores (25% cutoff, direct sites only)\n\n")
	t := texttab.New("program", "direct", "markov", "profiling").AlignRight(1, 2, 3)
	var b, m, p float64
	for _, r := range rows {
		t.Row(r.Program, r.Direct, r.Markov, r.Profile)
		b += r.Direct
		m += r.Markov
		p += r.Profile
	}
	n := float64(len(rows))
	t.Row("AVERAGE", b/n, m/n, p/n)
	sb.WriteString(t.String())
	return sb.String()
}

// Fig10Curve is one ordering's speedup curve in the selective
// optimization experiment.
type Fig10Curve struct {
	Order    string
	Ks       []int
	Speedups []float64 // unoptimized cycles / optimized cycles
}

// Figure10 reproduces the compress selective-optimization experiment:
// optimize the top-k functions under three orderings (the static Markov
// estimate, the first profile, and the aggregate of the remaining
// profiles) and measure simulated cycles on the held-out timing input.
// optFactor is the per-block cost multiplier for optimized functions.
func Figure10(d *ProgramData, optFactor float64) ([]Fig10Curve, error) {
	if d.Prog.TimingInput == nil {
		return nil, fmt.Errorf("%s has no timing input", d.Prog.Name)
	}
	timing := staticest.RunOptions{
		Args:  d.Prog.TimingInput.Args,
		Stdin: d.Prog.TimingInput.Stdin,
	}
	nf := len(d.Unit.Sem.Funcs)
	ks := []int{0, 1, 2, 3, 4, 5, 6, nf}

	// The three orderings the paper compares.
	restAgg, err := profileAggregate(others(d.Profiles, 0))
	if err != nil {
		return nil, err
	}
	orderings := []struct {
		name string
		rank []int
	}{
		{"estimate", rankDesc(d.Est.InterMarkov.Inv)},
		{"profile", rankDesc(d.Profiles[0].FuncCalls)},
		{"aggregate", rankDesc(restAgg.FuncCalls)},
	}

	base, err := RunCycles(d, timing, nil, optFactor)
	if err != nil {
		return nil, err
	}
	var curves []Fig10Curve
	for _, ord := range orderings {
		curve := Fig10Curve{Order: ord.name, Ks: ks}
		for _, k := range ks {
			top := ord.rank
			if k < len(top) {
				top = top[:k]
			}
			cycles, err := RunCycles(d, timing, top, optFactor)
			if err != nil {
				return nil, err
			}
			curve.Speedups = append(curve.Speedups, base/cycles)
		}
		curves = append(curves, curve)
	}
	return curves, nil
}

func profileAggregate(ps []*profile.Profile) (*profile.Profile, error) {
	if len(ps) == 1 {
		return ps[0], nil
	}
	return profile.Aggregate(ps)
}

// RenderFigure10 renders the speedup curves.
func RenderFigure10(curves []Fig10Curve) string {
	var sb strings.Builder
	sb.WriteString("Figure 10: speedup from selectively optimizing compress\n")
	sb.WriteString("(simulated cycles on a held-out input; optimized functions run cheaper)\n\n")
	if len(curves) == 0 {
		return sb.String()
	}
	header := []string{"k funcs"}
	for _, c := range curves {
		header = append(header, c.Order)
	}
	t := texttab.New(header...).AlignRight(1, 2, 3)
	for i, k := range curves[0].Ks {
		row := []any{fmt.Sprintf("%d", k)}
		for _, c := range curves {
			row = append(row, fmt.Sprintf("%.3f", c.Speedups[i]))
		}
		t.Row(row...)
	}
	sb.WriteString(t.String())
	return sb.String()
}

// RunCycles runs the program on an input with the given optimized
// function set and returns simulated cycles.
func RunCycles(d *ProgramData, in staticest.RunOptions, optimized []int, factor float64) (float64, error) {
	of := make(map[int]float64, len(optimized))
	for _, f := range optimized {
		of[f] = factor
	}
	in.OptFactor = of
	res, err := d.Unit.Run(in)
	if err != nil {
		return 0, err
	}
	return res.Profile.Cycles, nil
}
