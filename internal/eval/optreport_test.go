package eval

import (
	"strings"
	"testing"
)

// optRows loads the suite and computes the agreement report once per
// test binary.
func optRows(t *testing.T) []OptRow {
	t.Helper()
	rows, err := OptReport(loadAll(t))
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

// TestOptReportInlineAgreementMargin pins the report's headline claim:
// suite-wide, the smart and markov estimators' top-10 inlining decisions
// overlap the self-profile's by at least 70% (measured ~85%).
func TestOptReportInlineAgreementMargin(t *testing.T) {
	for _, r := range optRows(t) {
		if r.Program != "SUITE" {
			continue
		}
		switch r.Source {
		case "smart", "markov":
			if r.InlineOverlap < 0.70 {
				t.Errorf("SUITE %s: top-10 inline overlap %.2f below 0.70 margin",
					r.Source, r.InlineOverlap)
			}
			if r.SpillTau < 0.75 {
				t.Errorf("SUITE %s: spill ranking tau %.2f below 0.75 margin",
					r.Source, r.SpillTau)
			}
		case "xprof":
			if r.InlineOverlap < 0.90 {
				t.Errorf("SUITE xprof: top-10 inline overlap %.2f below 0.90", r.InlineOverlap)
			}
		}
	}
}

// TestOptReportLayoutBeatsSourceOrder pins the layout claim: for every
// program, chaining under ANY source yields a strictly higher
// profile-measured fall-through rate than source order.
func TestOptReportLayoutBeatsSourceOrder(t *testing.T) {
	rows := optRows(t)
	baseline := map[string]float64{}
	for _, r := range rows {
		if r.Source == "src-order" {
			baseline[r.Program] = r.FallThrough
		}
	}
	for _, r := range rows {
		if r.Source == "src-order" {
			continue
		}
		base, ok := baseline[r.Program]
		if !ok {
			t.Fatalf("%s: no source-order baseline row", r.Program)
		}
		if r.FallThrough <= base {
			t.Errorf("%s/%s: fall-through %.3f not above source order %.3f",
				r.Program, r.Source, r.FallThrough, base)
		}
	}
}

// TestOptReportShape checks coverage: every suite program contributes
// rows for every source plus both layout brackets, and the rendering
// carries the suite summary.
func TestOptReportShape(t *testing.T) {
	rows := optRows(t)
	perProgram := map[string]map[string]bool{}
	for _, r := range rows {
		if perProgram[r.Program] == nil {
			perProgram[r.Program] = map[string]bool{}
		}
		perProgram[r.Program][r.Source] = true
	}
	if len(perProgram) != 15 { // 14 programs + SUITE
		t.Errorf("report covers %d programs, want 15", len(perProgram))
	}
	for prog, srcs := range perProgram {
		for _, want := range []string{"loop", "smart", "markov", "xprof", "profile", "src-order"} {
			if !srcs[want] {
				t.Errorf("%s: missing source %s", prog, want)
			}
		}
	}
	s := RenderOptReport(rows)
	for _, want := range []string{"SUITE", "smart", "fallthru%", "xlisp"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered report missing %q:\n%s", want, s)
		}
	}
}
