package eval

import (
	"testing"

	"staticest"
)

// TestLoadSuiteParallelDeterministic pins the bounded-pool refactor's
// contract: loading the suite with one worker and with many produces
// identical results — same program order, field-identical profiles.
func TestLoadSuiteParallelDeterministic(t *testing.T) {
	SetParallelism(1)
	seq, err := LoadSuite()
	SetParallelism(0)
	if err != nil {
		t.Fatal(err)
	}
	par, err := LoadSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != len(par) {
		t.Fatalf("program count %d != %d", len(par), len(seq))
	}
	for i := range seq {
		if seq[i].Prog.Name != par[i].Prog.Name {
			t.Fatalf("slot %d: %s != %s — ordering depends on scheduling",
				i, par[i].Prog.Name, seq[i].Prog.Name)
		}
		if len(seq[i].Profiles) != len(par[i].Profiles) {
			t.Fatalf("%s: profile count differs", seq[i].Prog.Name)
		}
		for j := range seq[i].Profiles {
			if diffs := staticest.DiffProfiles(seq[i].Profiles[j], par[i].Profiles[j]); len(diffs) > 0 {
				t.Errorf("%s input %d: parallel profile differs: %s",
					seq[i].Prog.Name, j, diffs[0])
			}
		}
	}
}

func TestParallelismDefaults(t *testing.T) {
	SetParallelism(0)
	if Parallelism() < 1 {
		t.Fatalf("default parallelism %d < 1", Parallelism())
	}
	SetParallelism(3)
	if Parallelism() != 3 {
		t.Fatalf("Parallelism() = %d after SetParallelism(3)", Parallelism())
	}
	SetParallelism(-5)
	if Parallelism() < 1 {
		t.Fatalf("negative setting leaked through: %d", Parallelism())
	}
	SetParallelism(0)
}
