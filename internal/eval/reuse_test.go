package eval

import (
	"strings"
	"testing"
)

// reuseResults runs the reuse comparison once per test binary.
func reuseResults(t *testing.T) ([]*ReuseProgramResult, []ReuseRow) {
	t.Helper()
	results, suite, err := ReuseReport(loadAll(t))
	if err != nil {
		t.Fatal(err)
	}
	return results, suite
}

// TestReuseEstimatorsBeatUniform pins the experiment's acceptance
// claim: on mean total variation over the suite, at least one static
// estimator's reuse-distance profile beats the no-information uniform
// baseline (measured margin ~0.03 for all three).
func TestReuseEstimatorsBeatUniform(t *testing.T) {
	_, suite := reuseResults(t)
	var uniform float64
	best := 2.0
	var bestName string
	for _, r := range suite {
		if r.Source == "uniform" {
			uniform = r.TV
		} else if r.TV < best {
			best, bestName = r.TV, r.Source
		}
	}
	if uniform == 0 {
		t.Fatal("no uniform SUITE row")
	}
	if best >= uniform {
		t.Errorf("no estimator beats uniform on mean TV: best %s %.3f vs uniform %.3f",
			bestName, best, uniform)
	}
}

// TestReuseProgramCoverage checks that every suite program with array
// accesses produced a comparison, each with rows for every estimator
// plus the baseline, and scores inside their metric ranges.
func TestReuseProgramCoverage(t *testing.T) {
	results, suite := reuseResults(t)
	if len(results) < 10 {
		t.Fatalf("only %d programs produced reuse comparisons", len(results))
	}
	for _, res := range results {
		if res.Measured.Accesses() == 0 {
			t.Errorf("%s: measured profile empty", res.Program)
		}
		sources := map[string]bool{}
		for _, r := range res.Rows {
			sources[r.Source] = true
			if r.TV < 0 || r.TV > 1 {
				t.Errorf("%s/%s: TV %.3f out of range", r.Program, r.Source, r.TV)
			}
			if r.WM < 0 || r.WM > 1 {
				t.Errorf("%s/%s: WM %.3f out of range", r.Program, r.Source, r.WM)
			}
		}
		for _, want := range []string{"loop", "smart", "markov", "uniform"} {
			if !sources[want] {
				t.Errorf("%s: missing %s row", res.Program, want)
			}
		}
		// A profile scored against itself is a perfect match.
		self := scoreReuse(res.Program, res.Measured, res.Measured)
		if self.TV != 0 || self.WM != 1 {
			t.Errorf("%s: self-score TV=%.3f WM=%.2f, want 0 and 1", res.Program, self.TV, self.WM)
		}
	}
	if len(suite) < 4 {
		t.Errorf("suite summary has %d rows, want >= 4", len(suite))
	}
}

// TestRenderReuseReport checks the rendering carries the table and the
// measured-distribution figure.
func TestRenderReuseReport(t *testing.T) {
	results, suite := reuseResults(t)
	s := RenderReuseReport(results, suite)
	for _, want := range []string{"program", "spill-tau$", "SUITE", "measured", "uniform", "cold"} {
		if !strings.Contains(s, want) {
			t.Errorf("reuse report missing %q:\n%s", want, s)
		}
	}
}
