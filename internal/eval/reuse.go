package eval

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"staticest"
	"staticest/internal/cast"
	"staticest/internal/metric"
	"staticest/internal/obs"
	"staticest/internal/opt"
	"staticest/internal/profile"
	"staticest/internal/reuse"
	"staticest/internal/texttab"
)

// This file is the memory-locality experiment: measure every suite
// program's reuse-distance histogram with the interpreter's memory
// trace, derive static reuse estimates from each block-frequency
// estimator, and score estimate against measurement with the same
// metrics the paper applies to control-flow frequencies. A
// no-information uniform baseline brackets the scores from below, and
// the cache-aware spill ranking shows the estimates driving an actual
// allocation decision.

// ReuseCutoff is the weight-matching cutoff for reuse histograms: the
// top 5% of distance buckets, matching the paper's headline cutoff.
const ReuseCutoff = 0.05

// ReuseRow is one (program, source) reuse-accuracy summary.
type ReuseRow struct {
	Program string
	Source  string

	// Accesses and ColdFrac describe the source's own histogram mass.
	Accesses float64
	ColdFrac float64

	// TV is the total-variation distance between the source's and the
	// measured whole-program distance distributions (0 best, 1 worst);
	// WM is the weight-matching score at ReuseCutoff (1 best).
	TV float64
	WM float64

	// SpillTau is the mean Kendall tau-b of plain Chaitin spill
	// rankings (estimate vs measured frequencies); SpillTauCache is
	// the same with both sides' weights scaled by their reuse-derived
	// cache-miss ratios at reuse.DefaultCapacity.
	SpillTau      float64
	SpillTauCache float64
}

// ReuseProgramResult carries one program's rows plus the measured
// histogram for rendering.
type ReuseProgramResult struct {
	Program  string
	Refs     int
	Measured *reuse.Profile
	Rows     []ReuseRow
}

// ReuseProgram runs the reuse comparison for one program: trace every
// input, pool the measured histograms, and score each static source
// plus the uniform baseline. Programs with no traceable references
// return nil.
func ReuseProgram(d *ProgramData) (*ReuseProgramResult, error) {
	sp := Observer().StartSpan("reuse.program", obs.KV("prog", d.Prog.Name))
	defer sp.End()

	tab := reuse.BuildTable(d.Unit.CFG)
	if len(tab.Refs) == 0 {
		return nil, nil
	}

	// Measured side: traced reruns over every input, pooled.
	measured := &reuse.Profile{Source: "measured", PerRef: make([]reuse.Histogram, len(tab.Refs))}
	traced := 0
	for _, in := range d.Prog.Inputs {
		res, err := d.Unit.Run(profiledRunOptions(d, in.Args, in.Stdin, tab))
		if err != nil {
			return nil, fmt.Errorf("%s/%s: %w", d.Prog.Name, in.Name, err)
		}
		if len(res.MemTrace) == 0 {
			continue
		}
		traced++
		measured.Merge(reuse.Measure(tab, res.MemTrace))
	}
	if measured.Accesses() == 0 {
		return nil, nil
	}

	// Mean distinct addresses per traced run: each run's first touches
	// are exactly its distinct addresses.
	distinct := measured.Total.Cold() / float64(traced)

	self, err := profile.Aggregate(d.Profiles)
	if err != nil {
		return nil, err
	}
	selfSrc := opt.ProfileSource(d.Unit.CFG, self, "profile")
	measMiss := reuse.ObjectMissRatio(tab, measured, reuse.DefaultCapacity)

	result := &ReuseProgramResult{Program: d.Prog.Name, Refs: len(tab.Refs), Measured: measured}
	for _, kind := range opt.EstimateKinds {
		src, err := opt.EstimateSource(d.Unit.CFG, d.Est, kind)
		if err != nil {
			return nil, err
		}
		est := reuse.Estimate(tab, src)
		row := scoreReuse(d.Prog.Name, est, measured)
		row.SpillTau, row.SpillTauCache = reuseSpillTaus(d, src, selfSrc, tab, est, measMiss)
		result.Rows = append(result.Rows, row)
	}
	uni := reuse.UniformBaseline(measured.Accesses(), distinct)
	result.Rows = append(result.Rows, scoreReuse(d.Prog.Name, uni, measured))
	return result, nil
}

// profiledRunOptions builds traced run options for one input.
func profiledRunOptions(d *ProgramData, args []string, stdin []byte, tab *reuse.Table) staticest.RunOptions {
	return staticest.RunOptions{
		Args:    args,
		Stdin:   stdin,
		Obs:     Observer(),
		MemRefs: tab.RefIndex(),
	}
}

func scoreReuse(prog string, est, measured *reuse.Profile) ReuseRow {
	ev, mv := est.Total.Vector(), measured.Total.Vector()
	row := ReuseRow{
		Program:  prog,
		Source:   est.Source,
		Accesses: est.Accesses(),
		TV:       metric.TotalVariation(ev, mv),
		WM:       metric.WeightMatch(ev, mv, ReuseCutoff),
	}
	if row.Accesses > 0 {
		row.ColdFrac = est.Total.Cold() / row.Accesses
	}
	return row
}

// reuseSpillTaus computes the plain and cache-aware spill ranking
// agreement between an estimate source and the measured profile
// source, averaged over executed functions with at least two
// candidate variables.
func reuseSpillTaus(d *ProgramData, src, selfSrc *opt.Source, tab *reuse.Table,
	est *reuse.Profile, measMiss map[*cast.Object]float64) (plain, cache float64) {
	estMiss := reuse.ObjectMissRatio(tab, est, reuse.DefaultCapacity)
	missFn := func(m map[*cast.Object]float64) func(*cast.Object) float64 {
		return func(o *cast.Object) float64 { return m[o] }
	}
	self, _ := profile.Aggregate(d.Profiles)
	var sumP, sumC float64
	var n int
	for fi := range d.Unit.Sem.Funcs {
		if self != nil && self.FuncCalls[fi] == 0 {
			continue
		}
		ws := opt.SpillWeights(d.Unit.CFG, fi, src)
		wp := opt.SpillWeights(d.Unit.CFG, fi, selfSrc)
		if len(ws) < 2 {
			continue
		}
		vec := func(w []opt.SpillWeight) []float64 {
			v := make([]float64, len(w))
			for i := range w {
				v[i] = w[i].Weight
			}
			return v
		}
		sumP += opt.KendallTau(vec(ws), vec(wp))
		wsC := opt.CacheAwareSpillWeights(ws, missFn(estMiss))
		wpC := opt.CacheAwareSpillWeights(wp, missFn(measMiss))
		sumC += opt.KendallTau(vec(wsC), vec(wpC))
		n++
	}
	if n == 0 {
		return 1, 1
	}
	return sumP / float64(n), sumC / float64(n)
}

// ReuseReport runs the reuse comparison over the whole suite and
// appends pooled SUITE rows (mean over programs per source).
func ReuseReport(data []*ProgramData) ([]*ReuseProgramResult, []ReuseRow, error) {
	var results []*ReuseProgramResult
	for _, d := range data {
		r, err := ReuseProgram(d)
		if err != nil {
			return nil, nil, err
		}
		if r != nil {
			results = append(results, r)
		}
	}
	pooled := map[string]*ReuseRow{}
	counts := map[string]int{}
	var order []string
	for _, res := range results {
		for _, r := range res.Rows {
			agg, ok := pooled[r.Source]
			if !ok {
				agg = &ReuseRow{Program: "SUITE", Source: r.Source}
				pooled[r.Source] = agg
				order = append(order, r.Source)
			}
			agg.TV += r.TV
			agg.WM += r.WM
			agg.SpillTau += r.SpillTau
			agg.SpillTauCache += r.SpillTauCache
			agg.ColdFrac += r.ColdFrac
			counts[r.Source]++
		}
	}
	var suite []ReuseRow
	for _, name := range order {
		agg := pooled[name]
		n := float64(counts[name])
		agg.TV /= n
		agg.WM /= n
		agg.SpillTau /= n
		agg.SpillTauCache /= n
		agg.ColdFrac /= n
		suite = append(suite, *agg)
	}
	return results, suite, nil
}

// RenderReuseReport renders the per-program and suite tables plus the
// measured distance-distribution figure.
func RenderReuseReport(results []*ReuseProgramResult, suite []ReuseRow) string {
	var sb strings.Builder
	sb.WriteString("Reuse-distance accuracy: static estimate vs measured stack distances\n")
	fmt.Fprintf(&sb, "tv: total variation (0 best); wm: weight match at %.0f%% cutoff (1 best);\n", 100*ReuseCutoff)
	fmt.Fprintf(&sb, "spill-tau$: cache-aware spill ranking agreement at capacity %d\n\n", int(reuse.DefaultCapacity))

	t := texttab.New("program", "source", "accesses", "cold%", "tv", "wm", "spill-tau", "spill-tau$").
		AlignRight(2, 3, 4, 5, 6, 7)
	row := func(r *ReuseRow, spill bool) {
		acc := fmt.Sprintf("%.0f", r.Accesses)
		if r.Program == "SUITE" {
			acc = "-"
		}
		st, sc := "-", "-"
		if spill {
			st = fmt.Sprintf("%.2f", r.SpillTau)
			sc = fmt.Sprintf("%.2f", r.SpillTauCache)
		}
		t.Row(r.Program, r.Source, acc,
			fmt.Sprintf("%.1f", 100*r.ColdFrac),
			fmt.Sprintf("%.3f", r.TV),
			fmt.Sprintf("%.2f", r.WM),
			st, sc)
	}
	for _, res := range results {
		m := scoreReuse(res.Program, res.Measured, res.Measured)
		row(&m, false)
		for i := range res.Rows {
			row(&res.Rows[i], res.Rows[i].Source != "uniform")
		}
	}
	for i := range suite {
		row(&suite[i], suite[i].Source != "uniform")
	}
	sb.WriteString(t.String())

	sb.WriteString("\nmeasured reuse-distance distribution (pooled over suite):\n")
	sb.WriteString(renderReuseFigure(results))
	return sb.String()
}

// renderReuseFigure draws the pooled measured histogram as log-decade
// bands.
func renderReuseFigure(results []*ReuseProgramResult) string {
	var pooled reuse.Histogram
	for _, res := range results {
		pooled.Merge(&res.Measured.Total)
	}
	total := pooled.Total()
	if total == 0 {
		return "(no traced accesses)\n"
	}
	type band struct {
		label string
		mass  float64
	}
	bands := []band{}
	byDecade := map[int]float64{}
	for i := 0; i < reuse.NumBuckets; i++ {
		if pooled.Counts[i] == 0 {
			continue
		}
		byDecade[i/10] += pooled.Counts[i]
	}
	var decs []int
	for d := range byDecade {
		decs = append(decs, d)
	}
	sort.Ints(decs)
	for _, d := range decs {
		bands = append(bands, band{
			label: fmt.Sprintf("%g..%g", math.Pow(10, float64(d)), math.Pow(10, float64(d+1))),
			mass:  byDecade[d],
		})
	}
	if d := pooled.Cold(); d > 0 {
		bands = append(bands, band{label: "cold", mass: d})
	}
	var max float64
	for _, b := range bands {
		if b.mass > max {
			max = b.mass
		}
	}
	var sb strings.Builder
	for _, b := range bands {
		fmt.Fprintf(&sb, "  %-12s %s %5.1f%%\n", b.label,
			texttab.Bar(b.mass, max, 40), 100*b.mass/total)
	}
	return sb.String()
}
