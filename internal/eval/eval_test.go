package eval

import (
	"strings"
	"testing"
)

func loadAll(t *testing.T) []*ProgramData {
	t.Helper()
	data, err := LoadSuiteCached()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestTable1(t *testing.T) {
	s := Table1()
	for _, name := range []string{"alvinn", "compress", "xlisp", "water", "gs"} {
		if !strings.Contains(s, name) {
			t.Errorf("Table 1 missing %s:\n%s", name, s)
		}
	}
	if lines := strings.Count(s, "\n"); lines < 16 {
		t.Errorf("Table 1 too short (%d lines)", lines)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	s, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's published scores for the running example.
	if !strings.Contains(s, "score at 20% cutoff: 100.0%") {
		t.Errorf("20%% score differs from paper:\n%s", s)
	}
	if !strings.Contains(s, "score at 60% cutoff: 87.5%") {
		t.Errorf("60%% score differs from paper (88%% = 7/8):\n%s", s)
	}
}

func TestFigure3ShowsEstimates(t *testing.T) {
	s, err := Figure3()
	if err != nil {
		t.Fatal(err)
	}
	// The while loop estimated at 5, the predicted-false return at 0.8.
	if !strings.Contains(s, "5.0") || !strings.Contains(s, "0.8") {
		t.Errorf("Figure 3 missing the paper's annotations:\n%s", s)
	}
}

func TestFigure6ShowsProbabilities(t *testing.T) {
	s, err := Figure6()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"entry, frequency 1", "0.8", "0.2", "while", "return"} {
		if !strings.Contains(s, want) {
			t.Errorf("Figure 6 missing %q:\n%s", want, s)
		}
	}
}

func TestFigure7MatchesPaper(t *testing.T) {
	s, err := Figure7()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's solution vector: while 2.78, if 2.22, return1 0.44,
	// incr 1.78, return2 0.56.
	for _, want := range []string{"2.78", "2.22", "0.44", "1.78", "0.56"} {
		if !strings.Contains(s, want) {
			t.Errorf("Figure 7 missing paper value %q:\n%s", want, s)
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	rows, err := Figure2(loadAll(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("%d rows, want 14", len(rows))
	}
	var smart, prof, psp float64
	for _, r := range rows {
		smart += r.Smart
		prof += r.Profile
		psp += r.PSP
		if r.Smart < 0 || r.Smart > 100 || r.Profile < 0 || r.PSP < 0 {
			t.Errorf("%s: rates out of range: %+v", r.Program, r)
		}
		// PSP is a lower bound for any static scheme scored on the same
		// profile.
		if r.PSP > r.Profile+1e-9 {
			t.Errorf("%s: PSP (%.2f) above profiling (%.2f)", r.Program, r.PSP, r.Profile)
		}
	}
	n := float64(len(rows))
	smart, prof, psp = smart/n, prof/n, psp/n
	// The paper's ordering: heuristics miss more than profiling, which
	// misses more than (or equals) the perfect static predictor.
	if !(smart > prof && prof >= psp) {
		t.Errorf("miss-rate ordering violated: smart %.2f, profiling %.2f, PSP %.2f",
			smart, prof, psp)
	}
	// "...about twice that for profiling": allow a generous band around
	// the paper's factor, but the predictor must be in profiling's
	// neighborhood, not wildly off.
	if smart > 3*prof {
		t.Errorf("smart miss rate %.2f too far above profiling %.2f", smart, prof)
	}
}

func TestFigure4Shape(t *testing.T) {
	rows, err := Figure4(loadAll(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 14 {
		t.Fatalf("%d rows, want 14", len(rows))
	}
	var loop, smart, markov, prof float64
	for _, r := range rows {
		loop += r.Loop
		smart += r.Smart
		markov += r.Markov
		prof += r.Profile
		for _, v := range []float64{r.Loop, r.Smart, r.Markov, r.Profile} {
			if v < 0 || v > 100+1e-9 {
				t.Errorf("%s: score out of range: %+v", r.Program, r)
			}
		}
	}
	n := float64(len(rows))
	loop, smart, markov, prof = loop/n, smart/n, markov/n, prof/n
	// Paper: essentially all the benefit comes from loop nesting alone;
	// smart refines slightly; Markov does not improve on smart; the gap
	// to profiling is small.
	if smart < loop-1 {
		t.Errorf("smart (%.2f) should not trail loop (%.2f)", smart, loop)
	}
	if markov > smart+3 {
		t.Errorf("markov (%.2f) unexpectedly far above smart (%.2f) — paper found no improvement",
			markov, smart)
	}
	if prof-smart > 15 {
		t.Errorf("static/profiling gap too large: smart %.2f vs profiling %.2f", smart, prof)
	}
}

func TestFigure5MarkovBeatsDirect(t *testing.T) {
	data := loadAll(t)
	for _, cutoff := range []float64{0.10, 0.25} {
		rows, err := Figure5(data, cutoff)
		if err != nil {
			t.Fatal(err)
		}
		var direct, markov, prof float64
		for _, r := range rows {
			direct += r.Direct
			markov += r.Markov
			prof += r.Profile
		}
		n := float64(len(rows))
		direct, markov, prof = direct/n, markov/n, prof/n
		// The paper's central inter-procedural result: the Markov model
		// improves on the best simple estimator at both cutoffs.
		if markov <= direct {
			t.Errorf("cutoff %.0f%%: markov (%.2f) does not beat direct (%.2f)",
				cutoff*100, markov, direct)
		}
		if prof < markov {
			t.Errorf("cutoff %.0f%%: profiling (%.2f) below markov (%.2f)",
				cutoff*100, prof, markov)
		}
		// Paper headline: ~80% of frequently called functions at 25%.
		if cutoff == 0.25 && (markov < 70 || markov > 100) {
			t.Errorf("markov invocation score %.2f far from the paper's ~80%%", markov)
		}
	}
}

func TestFigure9Shape(t *testing.T) {
	rows, err := Figure9(loadAll(t))
	if err != nil {
		t.Fatal(err)
	}
	var direct, markov, prof float64
	for _, r := range rows {
		direct += r.Direct
		markov += r.Markov
		prof += r.Profile
	}
	n := float64(len(rows))
	direct, markov, prof = direct/n, markov/n, prof/n
	if markov <= direct {
		t.Errorf("call sites: markov (%.2f) does not beat direct (%.2f)", markov, direct)
	}
	if prof < markov {
		t.Errorf("call sites: profiling (%.2f) below markov (%.2f)", prof, markov)
	}
	// Paper headline: 76% of the busiest call sites at the 25% cutoff.
	if markov < 65 {
		t.Errorf("markov call-site score %.2f well below the paper's 76%%", markov)
	}
}

func TestFigure10Shape(t *testing.T) {
	data := loadAll(t)
	var compress *ProgramData
	for _, d := range data {
		if d.Prog.Name == "compress" {
			compress = d
		}
	}
	if compress == nil {
		t.Fatal("compress not in suite")
	}
	curves, err := Figure10(compress, 0.55)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 3 {
		t.Fatalf("%d curves, want 3 (estimate, profile, aggregate)", len(curves))
	}
	for _, c := range curves {
		if c.Speedups[0] != 1.0 {
			t.Errorf("%s: speedup at k=0 is %.3f, want 1.0", c.Order, c.Speedups[0])
		}
		// Paper: performance increases monotonically as functions are
		// added.
		for i := 1; i < len(c.Speedups); i++ {
			if c.Speedups[i] < c.Speedups[i-1]-1e-9 {
				t.Errorf("%s: speedup not monotone at k=%d: %v", c.Order, c.Ks[i], c.Speedups)
			}
		}
	}
	// All orderings optimize the same set at k = 16, so they converge.
	last := len(curves[0].Speedups) - 1
	for _, c := range curves[1:] {
		if diff := c.Speedups[last] - curves[0].Speedups[last]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("curves do not converge at k=16: %v vs %v",
				c.Speedups[last], curves[0].Speedups[last])
		}
	}
}

func TestRenderings(t *testing.T) {
	data := loadAll(t)
	f2, _ := Figure2(data)
	if s := RenderFigure2(f2); !strings.Contains(s, "AVERAGE") {
		t.Error("Figure 2 rendering missing AVERAGE row")
	}
	f4, _ := Figure4(data)
	if s := RenderFigure4(f4); !strings.Contains(s, "markov") {
		t.Error("Figure 4 rendering missing markov column")
	}
	f5, _ := Figure5(data, 0.25)
	if s := RenderFigure5a(f5); !strings.Contains(s, "all_rec2") {
		t.Error("Figure 5a rendering missing all_rec2 column")
	}
	if s := RenderFigure5bc(f5, 25, "c"); !strings.Contains(s, "25% cutoff") {
		t.Error("Figure 5c rendering missing cutoff")
	}
	f9, _ := Figure9(data)
	if s := RenderFigure9(f9); !strings.Contains(s, "direct") {
		t.Error("Figure 9 rendering missing direct column")
	}
}

func TestCutoffSweep(t *testing.T) {
	rows, err := CutoffSweep(loadAll(t), []float64{0.05, 0.25, 0.50})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// The paper's observation: wider cutoffs usually score higher.
	if rows[2].Markov < rows[0].Markov {
		t.Errorf("markov at 50%% (%.1f) below 5%% (%.1f)", rows[2].Markov, rows[0].Markov)
	}
	if s := RenderCutoffSweep(rows); !strings.Contains(s, "50%") {
		t.Error("sweep rendering missing 50% row")
	}
}

func TestMarkovOracle(t *testing.T) {
	rows, err := MarkovOracle(loadAll(t), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var markov, oracle, prof float64
	for _, r := range rows {
		markov += r.Markov
		oracle += r.MarkovOracle
		prof += r.Profile
	}
	n := float64(len(rows))
	markov, oracle, prof = markov/n, oracle/n, prof/n
	// Oracle probabilities must not hurt, and should close most of the
	// gap to profiling — the affirmative answer to the paper's open
	// question.
	if oracle < markov-0.5 {
		t.Errorf("oracle (%.2f) below static markov (%.2f)", oracle, markov)
	}
	if prof-oracle > 1.0 {
		t.Errorf("oracle (%.2f) does not approach profiling (%.2f)", oracle, prof)
	}
	if s := RenderMarkovOracle(rows); !strings.Contains(s, "markov+oracle") {
		t.Error("oracle rendering missing column")
	}
}
