package eval

import (
	"fmt"
	"sort"
	"strings"

	"staticest"
	"staticest/internal/cast"
	"staticest/internal/core"
	"staticest/internal/metric"
	"staticest/internal/profile"
	"staticest/internal/texttab"
)

// This file implements estimator explainability: given one program's
// static estimates and one measured profile, it attributes every branch
// prediction to the heuristic that made it and scores each heuristic
// against the actual outcomes — the drillable version of the paper's
// aggregate miss rates — plus a per-function estimate-vs-profile
// divergence table showing where the intra-procedural estimator is
// trustworthy and where it is not.

// BranchSiteReport is one branch site's prediction joined with its
// dynamic outcome.
type BranchSiteReport struct {
	ID        int
	Func      string
	Pos       string
	Cond      string
	Heuristic string
	ProbTrue  float64
	PredTaken bool
	Constant  bool
	// Taken/Not are the profiled outcome counts; Hits landed in the
	// predicted direction, Misses in the other.
	Taken, Not   float64
	Hits, Misses float64
}

// Dynamic is the site's total dynamic branch count.
func (r *BranchSiteReport) Dynamic() float64 { return r.Taken + r.Not }

// HeuristicReport aggregates every site one heuristic decided.
type HeuristicReport struct {
	Heuristic    string
	Sites        int     // static sites where the heuristic fired
	Executed     int     // sites with at least one dynamic execution
	Dynamic      float64 // dynamic branches across those sites
	Hits, Misses float64
}

// MissRate is Misses/Dynamic (0 when the sites never executed).
func (r *HeuristicReport) MissRate() float64 {
	if r.Dynamic == 0 {
		return 0
	}
	return r.Misses / r.Dynamic
}

// FuncReport compares one function's intra-procedural estimate with its
// profiled block counts.
type FuncReport struct {
	Func   string
	Calls  float64 // profiled invocations
	EstInv float64 // Markov invocation estimate
	Blocks int
	// Score is the weight-matching score of the smart block estimate
	// against the profiled block counts at the report's cutoff (0..1).
	Score float64
	// Divergence is the total-variation distance between the estimated
	// and profiled block distributions, each normalized to sum 1
	// (0 = identical shape, 1 = disjoint mass).
	Divergence float64
}

// ExplainReport is the full attribution report for one program run.
type ExplainReport struct {
	Program string
	Profile string // profile label (input name); may be empty
	Cutoff  float64
	// Branches has every branch site, sorted by dynamic misses
	// (descending) so the most harmful predictions lead.
	Branches []BranchSiteReport
	// Heuristics aggregates by heuristic name, sorted by dynamic count.
	Heuristics []HeuristicReport
	// Funcs has every function the profile executed, sorted by
	// invocation count.
	Funcs []FuncReport
	// MissRate is the overall dynamic miss rate with constant-condition
	// sites excluded, matching Figure 2's accounting.
	MissRate float64
}

// Explain builds the attribution report joining est's predictions with
// the measured profile p. cutoff is the weight-matching cutoff for the
// per-function scores (the paper's headline uses 0.05).
func Explain(u *staticest.Unit, est *core.Estimates, p *profile.Profile, cutoff float64) *ExplainReport {
	r := &ExplainReport{
		Program: u.Name,
		Profile: p.Label,
		Cutoff:  cutoff,
	}

	// Per-site attribution.
	byHeur := map[string]*HeuristicReport{}
	var missTotal, dynTotal float64
	for _, bs := range u.Sem.BranchSites {
		bp := est.Pred.Branch[bs.ID]
		pred := bp.Taken()
		if bp.Constant {
			pred = bp.ConstTrue
		}
		taken, not := p.BranchTaken[bs.ID], p.BranchNot[bs.ID]
		hits, misses := taken, not
		if !pred {
			hits, misses = not, taken
		}
		cond := ""
		if c := bs.Stmt.CondExpr(); c != nil {
			cond = cast.ExprString(c)
		}
		r.Branches = append(r.Branches, BranchSiteReport{
			ID:        bs.ID,
			Func:      bs.Func.Name(),
			Pos:       bs.Stmt.Pos().String(),
			Cond:      cond,
			Heuristic: bp.Heuristic,
			ProbTrue:  bp.ProbTrue,
			PredTaken: pred,
			Constant:  bp.Constant,
			Taken:     taken, Not: not,
			Hits: hits, Misses: misses,
		})
		h, ok := byHeur[bp.Heuristic]
		if !ok {
			h = &HeuristicReport{Heuristic: bp.Heuristic}
			byHeur[bp.Heuristic] = h
		}
		h.Sites++
		if taken+not > 0 {
			h.Executed++
		}
		h.Dynamic += taken + not
		h.Hits += hits
		h.Misses += misses
		if !bp.Constant {
			missTotal += misses
			dynTotal += taken + not
		}
	}
	if dynTotal > 0 {
		r.MissRate = missTotal / dynTotal
	}
	sort.SliceStable(r.Branches, func(a, b int) bool {
		ra, rb := &r.Branches[a], &r.Branches[b]
		if ra.Misses != rb.Misses {
			return ra.Misses > rb.Misses
		}
		return ra.Dynamic() > rb.Dynamic()
	})
	for _, h := range byHeur {
		r.Heuristics = append(r.Heuristics, *h)
	}
	sort.SliceStable(r.Heuristics, func(a, b int) bool {
		if r.Heuristics[a].Dynamic != r.Heuristics[b].Dynamic {
			return r.Heuristics[a].Dynamic > r.Heuristics[b].Dynamic
		}
		return r.Heuristics[a].Heuristic < r.Heuristics[b].Heuristic
	})

	// Per-function divergence (executed functions only, as the paper
	// scores them).
	for fi, fd := range u.Sem.Funcs {
		if p.FuncCalls[fi] == 0 {
			continue
		}
		estBlocks := est.IntraSmart[fi].BlockFreq
		actBlocks := p.BlockCounts[fi]
		r.Funcs = append(r.Funcs, FuncReport{
			Func:       fd.Name(),
			Calls:      p.FuncCalls[fi],
			EstInv:     est.InterMarkov.Inv[fi],
			Blocks:     len(actBlocks),
			Score:      metric.WeightMatch(estBlocks, actBlocks, cutoff),
			Divergence: totalVariation(estBlocks, actBlocks),
		})
	}
	sort.SliceStable(r.Funcs, func(a, b int) bool {
		return r.Funcs[a].Calls > r.Funcs[b].Calls
	})
	return r
}

// totalVariation normalizes both vectors to unit mass and returns half
// the L1 distance. Zero-mass vectors are treated as uniform.
func totalVariation(a, b []float64) float64 {
	return metric.TotalVariation(a, b)
}

// Render formats the report as text tables. topBranches bounds the
// per-site table (<= 0 means all sites); the aggregate tables always
// print in full.
func (r *ExplainReport) Render(topBranches int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "explain: %s", r.Program)
	if r.Profile != "" {
		fmt.Fprintf(&sb, " (profile %s)", r.Profile)
	}
	fmt.Fprintf(&sb, "\noverall miss rate %s (constant conditions excluded)\n\n",
		texttab.Pct(r.MissRate))

	sb.WriteString("per-heuristic attribution (dynamic branches):\n")
	ht := texttab.New("heuristic", "sites", "executed", "dynamic", "hits", "misses", "miss%").
		AlignRight(1, 2, 3, 4, 5, 6)
	for i := range r.Heuristics {
		h := &r.Heuristics[i]
		ht.Row(h.Heuristic, h.Sites, h.Executed,
			fmt.Sprintf("%.0f", h.Dynamic),
			fmt.Sprintf("%.0f", h.Hits),
			fmt.Sprintf("%.0f", h.Misses),
			100*h.MissRate())
	}
	sb.WriteString(ht.String())

	sb.WriteString("\nworst-predicted branch sites:\n")
	bt := texttab.New("site", "heuristic", "p(true)", "pred", "taken", "not", "misses").
		AlignRight(2, 4, 5, 6)
	shown := 0
	for i := range r.Branches {
		b := &r.Branches[i]
		if topBranches > 0 && shown >= topBranches {
			break
		}
		pred := "not-taken"
		if b.PredTaken {
			pred = "taken"
		}
		site := fmt.Sprintf("%s @%s (%s)", b.Func, b.Pos, b.Cond)
		bt.Row(site, b.Heuristic, fmt.Sprintf("%.2f", b.ProbTrue), pred,
			fmt.Sprintf("%.0f", b.Taken), fmt.Sprintf("%.0f", b.Not),
			fmt.Sprintf("%.0f", b.Misses))
		shown++
	}
	sb.WriteString(bt.String())

	fmt.Fprintf(&sb, "\nper-function estimate vs profile (%.0f%% cutoff):\n", 100*r.Cutoff)
	ft := texttab.New("function", "calls", "est. inv", "blocks", "score%", "divergence").
		AlignRight(1, 2, 3, 4, 5)
	for i := range r.Funcs {
		f := &r.Funcs[i]
		ft.Row(f.Func,
			fmt.Sprintf("%.0f", f.Calls),
			fmt.Sprintf("%.2f", f.EstInv),
			f.Blocks,
			100*f.Score,
			fmt.Sprintf("%.3f", f.Divergence))
	}
	sb.WriteString(ft.String())
	return sb.String()
}
