package opt_test

import (
	"strings"
	"testing"

	"staticest"
	"staticest/internal/opt"
)

func compileT(t *testing.T, src string) *staticest.Unit {
	t.Helper()
	u, err := staticest.Compile("edge.c", []byte(src))
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return u
}

func smartSource(t *testing.T, u *staticest.Unit) *staticest.FreqSource {
	t.Helper()
	src, err := u.EstimateFreqSource("smart")
	if err != nil {
		t.Fatalf("source: %v", err)
	}
	return src
}

// TestInlineBudgetDefault pins that a zero or negative budget selects
// DefaultBudget rather than planning nothing (or everything).
func TestInlineBudgetDefault(t *testing.T) {
	u := compileT(t, `
int add(int a, int b) { return a + b; }
int main(void) { int x; x = add(1, 2); return x; }
`)
	src := smartSource(t, u)
	for _, budget := range []int{0, -1, -100} {
		plan := u.PlanInline(src, budget)
		if plan.Budget != opt.DefaultBudget {
			t.Errorf("budget %d: plan.Budget = %d, want DefaultBudget %d",
				budget, plan.Budget, opt.DefaultBudget)
		}
		if len(plan.Chosen) != 1 {
			t.Errorf("budget %d: chose %d sites, want 1", budget, len(plan.Chosen))
		}
	}
}

// TestInlineNeverSelf pins that self-recursive (and mutually recursive)
// call sites are never eligible, whatever the budget: splicing a
// function into itself would never terminate.
func TestInlineNeverSelf(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"direct recursion", `
int fac(int n) { int r; if (n <= 1) { return 1; } r = fac(n - 1); return n * r; }
int main(void) { int x; x = fac(5); return x & 7; }
`},
		{"mutual recursion", `
int odd(int n);
int even(int n) { int r; if (n == 0) { return 1; } r = odd(n - 1); return r; }
int odd(int n) { int r; if (n == 0) { return 0; } r = even(n - 1); return r; }
int main(void) { int x; x = even(4); return x; }
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u := compileT(t, tc.src)
			plan := u.PlanInline(smartSource(t, u), 1_000_000)
			for _, site := range plan.Eligible {
				if site.Caller == site.Callee {
					t.Errorf("self-recursive site %d (func %d) is eligible", site.Site, site.Caller)
				}
			}
			for _, d := range plan.Chosen {
				callee := u.CFG.Graphs[d.Callee].Fn.Obj.Name
				if callee != "" && strings.Contains(tc.src, callee+"(") && d.Caller == d.Callee {
					t.Errorf("chose self-inline of %s", callee)
				}
			}
			// Recursive SCC members must not be chosen at all.
			if len(plan.Chosen) != 0 {
				t.Errorf("chose %d sites in a fully recursive program, want 0", len(plan.Chosen))
			}
		})
	}
}

// TestInlineSingleBlockCallee pins the smallest possible splice: a
// one-block callee inlines, runs, and folds back to the exact original
// profile.
func TestInlineSingleBlockCallee(t *testing.T) {
	u := compileT(t, `
int seven(void) { return 7; }
int main(void) { int x; x = seven(); return x & 3; }
`)
	plan := u.PlanInline(smartSource(t, u), 0)
	if len(plan.Chosen) != 1 {
		t.Fatalf("chose %d sites, want the single call to seven()", len(plan.Chosen))
	}
	if cost := plan.Chosen[0].Cost; cost != 1 {
		t.Errorf("one-block callee has cost %d, want 1", cost)
	}
	nu, res, err := u.Inline(plan)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	want, err := u.Run(staticest.RunOptions{})
	if err != nil {
		t.Fatalf("original run: %v", err)
	}
	got, err := nu.Run(staticest.RunOptions{})
	if err != nil {
		t.Fatalf("inlined run: %v", err)
	}
	if got.ExitCode != want.ExitCode {
		t.Errorf("exit code %d != %d", got.ExitCode, want.ExitCode)
	}
	folded := opt.FoldProfile(u.CFG, res, got.Profile)
	if bad := opt.CheckEquivalence(u.CFG, res, want.Profile, folded); len(bad) > 0 {
		t.Errorf("profile not equivalent:\n  %s", strings.Join(bad, "\n  "))
	}
}

// TestLayoutSingleBlockNoop pins that block layout on one-block
// functions is the identity: nothing to chain, nothing to reorder.
func TestLayoutSingleBlockNoop(t *testing.T) {
	u := compileT(t, `
int one(void) { return 1; }
int two(void) { return 2; }
int main(void) { return one() + two(); }
`)
	lay := opt.ComputeLayout(u.CFG, smartSource(t, u), nil)
	source := opt.SourceOrderLayout(u.CFG)
	for fi, g := range u.CFG.Graphs {
		if len(g.Blocks) != 1 {
			continue
		}
		if len(lay.Order[fi]) != 1 || lay.Order[fi][0] != source.Order[fi][0] {
			t.Errorf("func %s: 1-block layout %v differs from source order %v",
				g.Fn.Obj.Name, lay.Order[fi], source.Order[fi])
		}
	}
}
