package opt

import (
	"fmt"
	"math"

	"staticest/internal/cfg"
	"staticest/internal/profile"
)

// FoldProfile maps a profile measured on the inlined unit back onto the
// original unit's shape: each transformed block's count is added to the
// original block it descends from (synthetic continuation blocks are
// dropped — they duplicate their upper half's count). Site-indexed
// counters transfer unchanged because the transform preserves every
// sem-assigned ID.
func FoldProfile(orig *cfg.Program, res *Result, p *profile.Profile) *profile.Profile {
	out := profile.New(cfg.ProfileShape(orig))
	out.Label = p.Label
	for fi, g := range res.CFG.Graphs {
		for b := range g.Blocks {
			o := res.Origins[fi][b]
			if o.Func >= 0 {
				out.BlockCounts[o.Func][o.Block] += p.BlockCounts[fi][b]
			}
		}
	}
	copy(out.FuncCalls, p.FuncCalls)
	copy(out.CallSiteCounts, p.CallSiteCounts)
	copy(out.BranchTaken, p.BranchTaken)
	copy(out.BranchNot, p.BranchNot)
	for i := range p.SwitchArm {
		copy(out.SwitchArm[i], p.SwitchArm[i])
	}
	out.Cycles = p.Cycles
	return out
}

// CallsEliminated sums the original profile's counts of the inlined
// sites: the dynamic calls the transform removed.
func CallsEliminated(want *profile.Profile, inlined []int) float64 {
	var n float64
	for _, s := range inlined {
		n += want.CallSiteCounts[s]
	}
	return n
}

const countEps = 1e-6

// CheckEquivalence verifies that the inlined unit is profile-equivalent
// to the original: want is the original unit's measured profile, got is
// the inlined unit's profile folded back with FoldProfile. Every block,
// branch, and switch count must match exactly; an inlined site's count
// must drop to zero (its call statement no longer exists anywhere);
// every other site count must match; and each function's invocation
// count must drop by exactly the calls the inlined sites used to make to
// it. Returns a list of human-readable mismatches (empty = equivalent).
func CheckEquivalence(orig *cfg.Program, res *Result, want, got *profile.Profile) []string {
	var bad []string
	mismatch := func(format string, args ...any) {
		if len(bad) < 20 {
			bad = append(bad, fmt.Sprintf(format, args...))
		}
	}
	eq := func(a, b float64) bool { return math.Abs(a-b) <= countEps }

	sp := orig.Sem
	for fi := range want.BlockCounts {
		for b := range want.BlockCounts[fi] {
			if !eq(want.BlockCounts[fi][b], got.BlockCounts[fi][b]) {
				mismatch("func %s block b%d: count %.0f != %.0f",
					sp.Funcs[fi].Name(), b, got.BlockCounts[fi][b], want.BlockCounts[fi][b])
			}
		}
	}
	for i := range want.BranchTaken {
		if !eq(want.BranchTaken[i], got.BranchTaken[i]) || !eq(want.BranchNot[i], got.BranchNot[i]) {
			mismatch("branch site %d: taken/not %.0f/%.0f != %.0f/%.0f",
				i, got.BranchTaken[i], got.BranchNot[i], want.BranchTaken[i], want.BranchNot[i])
		}
	}
	for i := range want.SwitchArm {
		for a := range want.SwitchArm[i] {
			if !eq(want.SwitchArm[i][a], got.SwitchArm[i][a]) {
				mismatch("switch site %d arm %d: count %.0f != %.0f",
					i, a, got.SwitchArm[i][a], want.SwitchArm[i][a])
			}
		}
	}

	inlined := make(map[int]bool, len(res.InlinedSites))
	for _, s := range res.InlinedSites {
		inlined[s] = true
	}
	// removedCalls[g] = dynamic invocations of g that the transform turned
	// into straight-line execution.
	removedCalls := make([]float64, len(want.FuncCalls))
	for _, site := range sp.CallSites {
		if inlined[site.ID] {
			if !eq(got.CallSiteCounts[site.ID], 0) {
				mismatch("inlined site %d still counts %.0f calls", site.ID, got.CallSiteCounts[site.ID])
			}
			removedCalls[site.Callee.FuncIndex] += want.CallSiteCounts[site.ID]
		} else if !eq(want.CallSiteCounts[site.ID], got.CallSiteCounts[site.ID]) {
			mismatch("site %d: count %.0f != %.0f",
				site.ID, got.CallSiteCounts[site.ID], want.CallSiteCounts[site.ID])
		}
	}
	for fi := range want.FuncCalls {
		if !eq(got.FuncCalls[fi], want.FuncCalls[fi]-removedCalls[fi]) {
			mismatch("func %s: %.0f invocations != %.0f - %.0f removed",
				sp.Funcs[fi].Name(), got.FuncCalls[fi], want.FuncCalls[fi], removedCalls[fi])
		}
	}
	return bad
}
