package opt

import "math"

// Rank-agreement metrics: how closely do two frequency sources agree on
// *decisions*? Optimizers consume rankings (hottest site first, most
// expensive spill first), so agreement is measured on rankings, not on
// absolute counts.

// TopKOverlap returns |topK(a) ∩ topK(b)| / k: the fraction of b's top-k
// indices (by descending value, ties by index) that a's top-k shares.
// k is clamped to the vector length. Returns 1 for empty inputs — two
// sources trivially agree about nothing.
func TopKOverlap(a, b []float64, k int) float64 {
	if k > len(a) {
		k = len(a)
	}
	if k <= 0 {
		return 1
	}
	ta, tb := topK(a, k), topK(b, k)
	inA := make(map[int]bool, k)
	for _, i := range ta {
		inA[i] = true
	}
	shared := 0
	for _, i := range tb {
		if inA[i] {
			shared++
		}
	}
	return float64(shared) / float64(k)
}

func topK(v []float64, k int) []int {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	// Selection by repeated max keeps this O(n·k); k is small (≤10).
	for pos := 0; pos < k; pos++ {
		best := pos
		for j := pos + 1; j < len(idx); j++ {
			if v[idx[j]] > v[idx[best]] ||
				(v[idx[j]] == v[idx[best]] && idx[j] < idx[best]) {
				best = j
			}
		}
		idx[pos], idx[best] = idx[best], idx[pos]
	}
	return idx[:k]
}

// KendallTau computes the tau-b rank correlation between two parallel
// value vectors: +1 for identical rankings, -1 for reversed, 0 for
// unrelated. Tau-b corrects for ties, which matter here — estimate
// vectors assign equal frequencies to whole groups of sites. Returns 0
// when either vector is entirely tied (no ranking to agree with).
func KendallTau(a, b []float64) float64 {
	n := len(a)
	if n < 2 {
		return 0
	}
	var concordant, discordant, tiesA, tiesB float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da, db := a[i]-a[j], b[i]-b[j]
			switch {
			case da == 0 && db == 0:
				// tied in both: contributes to neither denominator term
			case da == 0:
				tiesA++
			case db == 0:
				tiesB++
			case (da > 0) == (db > 0):
				concordant++
			default:
				discordant++
			}
		}
	}
	denomA := concordant + discordant + tiesA
	denomB := concordant + discordant + tiesB
	if denomA == 0 || denomB == 0 {
		return 0
	}
	return (concordant - discordant) / math.Sqrt(denomA*denomB)
}
