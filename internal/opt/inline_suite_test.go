package opt_test

import (
	"bytes"
	"strings"
	"testing"

	"staticest"
	"staticest/internal/eval"
	"staticest/internal/opt"
	"staticest/internal/profile"
)

// TestSuiteInlineEquivalence is the transform's semantics-preservation
// pin: for every suite program, inline aggressively under the self
// profile, re-run every input on the transformed unit, and require (a)
// identical output and exit code, and (b) exact profile equivalence
// after folding — every block, branch, switch, and surviving call-site
// count matches the original run, inlined sites drop to zero, and callee
// invocation counts drop by exactly the folded-in calls.
func TestSuiteInlineEquivalence(t *testing.T) {
	data, err := eval.LoadSuiteCached()
	if err != nil {
		t.Fatal(err)
	}
	totalInlined := 0
	for _, d := range data {
		d := d
		t.Run(d.Prog.Name, func(t *testing.T) {
			u := d.Unit
			self, err := profile.Aggregate(d.Profiles)
			if err != nil {
				t.Fatal(err)
			}
			src := u.ProfileFreqSource(self, "profile")
			plan := u.PlanInline(src, 400)
			if len(plan.Eligible) > 0 && len(plan.Chosen) == 0 {
				t.Fatalf("%d eligible sites but nothing chosen", len(plan.Eligible))
			}
			nu, res, err := u.Inline(plan)
			if err != nil {
				t.Fatal(err)
			}
			totalInlined += len(res.InlinedSites)
			for i, in := range d.Prog.Inputs {
				orig := d.Profiles[i]
				r, err := nu.Run(staticest.RunOptions{Args: in.Args, Stdin: in.Stdin})
				if err != nil {
					t.Fatalf("input %s: inlined run: %v", in.Name, err)
				}
				origRun, err := u.Run(staticest.RunOptions{Args: in.Args, Stdin: in.Stdin})
				if err != nil {
					t.Fatalf("input %s: original run: %v", in.Name, err)
				}
				if r.ExitCode != origRun.ExitCode {
					t.Errorf("input %s: exit code %d != %d", in.Name, r.ExitCode, origRun.ExitCode)
				}
				if !bytes.Equal(r.Output, origRun.Output) {
					t.Errorf("input %s: output diverged after inlining", in.Name)
				}
				folded := opt.FoldProfile(u.CFG, res, r.Profile)
				if bad := opt.CheckEquivalence(u.CFG, res, orig, folded); len(bad) > 0 {
					t.Errorf("input %s: profile not equivalent:\n  %s",
						in.Name, strings.Join(bad, "\n  "))
				}
			}
		})
	}
	if totalInlined < 50 {
		t.Errorf("only %d sites inlined suite-wide; transform barely exercised", totalInlined)
	}
}

// TestInlineEstimateSourcesPlanAndApply exercises the estimate-driven
// path end to end on one call-heavy program per estimator: plans differ
// from the profile plan in general, but the transform must stay
// semantics-preserving regardless of which source ranked the sites.
func TestInlineEstimateSourcesPlanAndApply(t *testing.T) {
	data, err := eval.LoadSuiteCached()
	if err != nil {
		t.Fatal(err)
	}
	var d *eval.ProgramData
	for _, cand := range data {
		if cand.Prog.Name == "xlisp" {
			d = cand
		}
	}
	if d == nil {
		t.Fatal("xlisp not in suite")
	}
	for _, kind := range opt.EstimateKinds {
		t.Run(kind, func(t *testing.T) {
			u := d.Unit
			src, err := u.EstimateFreqSource(kind)
			if err != nil {
				t.Fatal(err)
			}
			plan := u.PlanInline(src, 0) // default budget
			if len(plan.Chosen) == 0 {
				t.Fatal("estimate source chose nothing on xlisp")
			}
			if plan.CostUsed > plan.Budget {
				t.Fatalf("cost %d exceeds budget %d", plan.CostUsed, plan.Budget)
			}
			nu, res, err := u.Inline(plan)
			if err != nil {
				t.Fatal(err)
			}
			in := d.Prog.Inputs[0]
			r, err := nu.Run(staticest.RunOptions{Args: in.Args, Stdin: in.Stdin})
			if err != nil {
				t.Fatal(err)
			}
			folded := opt.FoldProfile(u.CFG, res, r.Profile)
			if bad := opt.CheckEquivalence(u.CFG, res, d.Profiles[0], folded); len(bad) > 0 {
				t.Errorf("profile not equivalent:\n  %s", strings.Join(bad, "\n  "))
			}
		})
	}
}

// TestInlineDoesNotMutateOriginal pins the working-copy discipline:
// units are shared process-wide, so planning and applying on one must
// leave its graphs, frame sizes, and block counts untouched.
func TestInlineDoesNotMutateOriginal(t *testing.T) {
	data, err := eval.LoadSuiteCached()
	if err != nil {
		t.Fatal(err)
	}
	d := data[0]
	u := d.Unit
	beforeBlocks := make([]int, len(u.CFG.Graphs))
	beforeFrames := make([]int64, len(u.Sem.Funcs))
	for i, g := range u.CFG.Graphs {
		beforeBlocks[i] = len(g.Blocks)
		beforeFrames[i] = u.Sem.Funcs[i].FrameSize
	}
	self, err := profile.Aggregate(d.Profiles)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := u.Inline(u.PlanInline(u.ProfileFreqSource(self, "profile"), 400)); err != nil {
		t.Fatal(err)
	}
	for i, g := range u.CFG.Graphs {
		if len(g.Blocks) != beforeBlocks[i] {
			t.Errorf("func %d: original block count changed %d -> %d",
				i, beforeBlocks[i], len(g.Blocks))
		}
		if u.Sem.Funcs[i].FrameSize != beforeFrames[i] {
			t.Errorf("func %d: original frame size changed %d -> %d",
				i, beforeFrames[i], u.Sem.Funcs[i].FrameSize)
		}
	}
}
