package opt

import (
	"math"
	"testing"
)

func TestKendallTau(t *testing.T) {
	cases := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"identical", []float64{3, 1, 2}, []float64{30, 10, 20}, 1},
		{"reversed", []float64{1, 2, 3}, []float64{3, 2, 1}, -1},
		{"short", []float64{1}, []float64{2}, 0},
		{"all-tied-a", []float64{1, 1, 1}, []float64{1, 2, 3}, 0},
		{"half", []float64{1, 2, 3, 4}, []float64{1, 2, 4, 3}, 2.0 / 3},
	}
	for _, c := range cases {
		if got := KendallTau(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("%s: KendallTau = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestKendallTauTies(t *testing.T) {
	// a groups {x,y} as tied where b splits them: tau-b must stay
	// strictly between the untied extremes.
	a := []float64{5, 5, 1}
	b := []float64{6, 4, 1}
	got := KendallTau(a, b)
	if got <= 0 || got >= 1 {
		t.Errorf("tau-b with ties = %v, want in (0, 1)", got)
	}
}

func TestTopKOverlap(t *testing.T) {
	a := []float64{9, 8, 7, 1, 2}
	b := []float64{9, 1, 7, 8, 2}
	// top-3(a) = {0,1,2}, top-3(b) = {0,3,2} -> 2/3 shared.
	if got := TopKOverlap(a, b, 3); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("TopKOverlap = %v, want 2/3", got)
	}
	if got := TopKOverlap(a, a, 10); got != 1 { // k clamped to len
		t.Errorf("self overlap = %v, want 1", got)
	}
	if got := TopKOverlap(nil, nil, 5); got != 1 {
		t.Errorf("empty overlap = %v, want 1", got)
	}
}

func TestTopKDeterministicTies(t *testing.T) {
	// Equal values resolve to the lower index, so two tied sources agree.
	v := []float64{1, 1, 1, 1}
	got := topK(v, 2)
	if got[0] != 0 || got[1] != 1 {
		t.Errorf("topK ties = %v, want [0 1]", got)
	}
}
