package opt

import (
	"sort"

	"staticest/internal/cast"
	"staticest/internal/cfg"
)

// SpillWeight is a Chaitin-style spill cost for one variable: its static
// reference count weighted by the frequency of the blocks the references
// sit in. A register allocator spills the variable with the lowest cost
// first; two sources agree when they rank the variables the same way.
type SpillWeight struct {
	Obj    *cast.Object
	Name   string
	Uses   int     // static reference count
	Weight float64 // Σ references-in-block × block frequency
}

// SpillWeights computes spill costs for every variable of function fi
// (parameters, then locals, then referenced globals in first-reference
// order) under the source's block frequencies.
func SpillWeights(cp *cfg.Program, fi int, src *Source) []SpillWeight {
	fd := cp.Sem.Funcs[fi]
	index := make(map[*cast.Object]int)
	var out []SpillWeight
	add := func(o *cast.Object) {
		if _, ok := index[o]; !ok {
			index[o] = len(out)
			out = append(out, SpillWeight{Obj: o, Name: o.Name})
		}
	}
	for _, p := range fd.Params {
		add(p)
	}
	for _, l := range fd.Locals {
		add(l)
	}

	count := func(e cast.Expr, freq float64) {
		cast.WalkExpr(e, func(x cast.Expr) bool {
			if id, ok := x.(*cast.Ident); ok && id.Obj != nil {
				o := id.Obj
				if o.Kind == cast.ObjVar || o.Kind == cast.ObjParam {
					if o.Global {
						add(o) // referenced globals join the candidate set lazily
					}
					if i, ok := index[o]; ok {
						out[i].Uses++
						out[i].Weight += freq
					}
				}
			}
			return true
		})
	}
	for _, blk := range cp.Graphs[fi].Blocks {
		freq := src.Block[fi][blk.ID]
		for _, s := range blk.Stmts {
			for _, e := range cast.StmtExprs(s) {
				count(e, freq)
			}
		}
		for _, e := range []cast.Expr{blk.Cond, blk.Tag, blk.RetVal} {
			if e != nil {
				count(e, freq)
			}
		}
	}
	return out
}

// SpillMissFloor keeps a variable's cache-aware weight a positive
// multiple of its base Chaitin weight, so variables whose memory
// behavior is unknown (miss ratio 0) still rank by reference frequency
// rather than collapsing to zero.
const SpillMissFloor = 0.05

// CacheAwareSpillWeights scales Chaitin spill costs by estimated
// cache-miss ratios: a spilled variable's reloads compete with the
// surrounding memory traffic, so where that traffic misses, reloads
// are evicted and the spill is costlier. Each weight becomes
// floor + miss(obj) times the base weight. miss reports the miss
// ratio (0..1) of the memory object the variable's traffic lands in
// (e.g. reuse.ObjectMissRatio); objects it does not know return 0 and
// keep the floor multiple.
func CacheAwareSpillWeights(ws []SpillWeight, miss func(*cast.Object) float64) []SpillWeight {
	out := append([]SpillWeight(nil), ws...)
	for i := range out {
		out[i].Weight *= SpillMissFloor + miss(out[i].Obj)
	}
	return out
}

// SpillRanking returns the variables of a SpillWeights result ordered by
// descending weight (most expensive to spill first), ties by name.
func SpillRanking(ws []SpillWeight) []string {
	idx := make([]int, len(ws))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		wa, wb := ws[idx[a]], ws[idx[b]]
		if wa.Weight != wb.Weight {
			return wa.Weight > wb.Weight
		}
		return wa.Name < wb.Name
	})
	out := make([]string, len(idx))
	for k, i := range idx {
		out[k] = ws[i].Name
	}
	return out
}
