package opt

import (
	"fmt"
	"sort"

	"staticest/internal/callgraph"
	"staticest/internal/cast"
	"staticest/internal/cfg"
	"staticest/internal/obs"
	"staticest/internal/sem"
)

// DefaultBudget is the default inlining size budget, in cloned callee
// blocks per program.
const DefaultBudget = 64

// SiteInfo describes one call site the CFG-level inliner can transform.
type SiteInfo struct {
	Site   int // sem call-site ID
	Caller int // function indices
	Callee int
	Cost   int // callee body size in basic blocks
}

// Decision is one ranked inlining choice.
type Decision struct {
	SiteInfo
	Freq float64 // the driving source's frequency for the site
}

// InlinePlan is a ranked, budgeted set of inlining decisions under one
// frequency source.
type InlinePlan struct {
	Source   string
	Budget   int
	Eligible []SiteInfo
	Chosen   []Decision // greedy order: hottest first
	CostUsed int        // blocks of budget consumed
}

// ChosenSites returns the chosen site IDs in rank order.
func (p *InlinePlan) ChosenSites() []int {
	out := make([]int, len(p.Chosen))
	for i, d := range p.Chosen {
		out[i] = d.Site
	}
	return out
}

// callStmt matches the two statement shapes the inliner accepts: a call
// evaluated for effect (`f(a, b);`) and a call assigned to a plain
// variable (`x = f(a, b);`). Anything else — calls in conditions,
// returns, initializers, or argument positions — is ineligible. For the
// assign form it returns the destination identifier.
func callStmt(s cast.Stmt) (*cast.Call, *cast.Ident) {
	es, ok := s.(*cast.ExprStmt)
	if !ok {
		return nil, nil
	}
	switch x := es.X.(type) {
	case *cast.Call:
		return x, nil
	case *cast.Assign:
		if x.Op != cast.Plain {
			return nil, nil
		}
		id, ok := x.L.(*cast.Ident)
		if !ok || id.Obj == nil ||
			(id.Obj.Kind != cast.ObjVar && id.Obj.Kind != cast.ObjParam) {
			return nil, nil
		}
		if c, ok := x.R.(*cast.Call); ok {
			return c, id
		}
	}
	return nil, nil
}

// EligibleSites returns every call site the inliner can splice: a direct
// call to a defined, non-recursive function, different from the caller,
// appearing as a whole statement. Results are in site-ID order.
func EligibleSites(cp *cfg.Program, cg *callgraph.Graph) []SiteInfo {
	recursive := cg.InRecursiveSCC()
	var out []SiteInfo
	for fi, g := range cp.Graphs {
		for _, blk := range g.Blocks {
			for _, s := range blk.Stmts {
				call, _ := callStmt(s)
				if call == nil || call.SiteID < 0 {
					continue
				}
				callee := call.Callee()
				if callee == nil || callee.Builtin || callee.FuncIndex < 0 {
					continue
				}
				ci := callee.FuncIndex
				if ci == fi || recursive[ci] {
					continue
				}
				out = append(out, SiteInfo{
					Site:   call.SiteID,
					Caller: fi,
					Callee: ci,
					Cost:   len(cp.Graphs[ci].Blocks),
				})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Site < out[b].Site })
	return out
}

// PlanInline ranks the eligible sites by the source's call-site
// frequency and greedily selects them under a size budget (total cloned
// callee blocks). Zero-frequency sites are never chosen: inlining them
// spends budget on code the source believes never runs.
func PlanInline(cp *cfg.Program, cg *callgraph.Graph, src *Source, budget int) *InlinePlan {
	if budget <= 0 {
		budget = DefaultBudget
	}
	plan := &InlinePlan{Source: src.Name, Budget: budget, Eligible: EligibleSites(cp, cg)}
	ranked := append([]SiteInfo(nil), plan.Eligible...)
	sort.SliceStable(ranked, func(a, b int) bool {
		fa, fb := src.Site[ranked[a].Site], src.Site[ranked[b].Site]
		if fa != fb {
			return fa > fb
		}
		return ranked[a].Site < ranked[b].Site
	})
	for _, si := range ranked {
		f := src.Site[si.Site]
		if f <= 0 {
			break // ranked descending: everything after is cold too
		}
		if plan.CostUsed+si.Cost > budget {
			continue // try smaller callees further down the ranking
		}
		plan.CostUsed += si.Cost
		plan.Chosen = append(plan.Chosen, Decision{SiteInfo: si, Freq: f})
	}
	return plan
}

// Origin identifies the original-unit block a transformed-unit block
// descends from. Synthetic continuation blocks (the lower half of a
// split call block) carry Func == -1 and are excluded when folding a
// profile back onto the original shape.
type Origin struct {
	Func, Block int
}

// Result is a transformed unit: the inlined CFG program (fresh graphs
// and a fresh sem.Program view; the original unit is never mutated),
// plus the origin map that lets measured profiles fold back onto the
// original unit's shape.
type Result struct {
	CFG          *cfg.Program
	Origins      [][]Origin // per function, parallel to CFG.Graphs[i].Blocks
	InlinedSites []int      // site IDs actually spliced, in apply order
	BlocksCloned int
}

// ApplyInline splices every chosen site bottom-up (callees before
// callers, so cloned bodies are always fully inlined already) and
// returns the transformed unit. The input program is left untouched —
// suite units are shared process-wide.
func ApplyInline(cp *cfg.Program, cg *callgraph.Graph, plan *InlinePlan, o *obs.Observer) (*Result, error) {
	sp := o.StartSpan("opt.inline.apply", obs.KV("source", plan.Source))
	defer sp.End()

	in := newInliner(cp)
	byCaller := make(map[int][]Decision)
	for _, d := range plan.Chosen {
		byCaller[d.Caller] = append(byCaller[d.Caller], d)
	}
	res := &Result{}
	for _, comp := range cg.SCCs() { // reverse topological: callees first
		for _, fi := range comp {
			for _, d := range byCaller[fi] {
				if err := in.splice(d); err != nil {
					return nil, err
				}
				res.InlinedSites = append(res.InlinedSites, d.Site)
			}
		}
	}
	res.CFG = in.finish()
	res.Origins = make([][]Origin, len(res.CFG.Graphs))
	for fi, g := range res.CFG.Graphs {
		res.Origins[fi] = make([]Origin, len(g.Blocks))
		for b, blk := range g.Blocks {
			res.Origins[fi][b] = in.originOf[blk]
		}
	}
	res.BlocksCloned = in.blocksCloned
	o.Counter("opt_sites_inlined_total").Add(int64(len(res.InlinedSites)))
	o.Counter("opt_blocks_cloned_total").Add(int64(in.blocksCloned))
	sp.SetAttr("sites", int64(len(res.InlinedSites)))
	return res, nil
}

// inliner carries the working copy of a unit while sites are spliced.
type inliner struct {
	sem    *sem.Program
	graphs []*cfg.Graph

	// originOf maps every working-copy block to the original block it
	// descends from ({-1,-1} for synthetic continuations).
	originOf map[*cfg.Block]Origin

	// frameObjs lists, per function, every object addressed in its frame:
	// params, locals, and the relocated copies added by prior splices.
	// Inlining this function elsewhere must rebase exactly these.
	frameObjs [][]*cast.Object

	blocksCloned int
}

func newInliner(cp *cfg.Program) *inliner {
	orig := cp.Sem
	in := &inliner{
		originOf:  make(map[*cfg.Block]Origin),
		frameObjs: make([][]*cast.Object, len(orig.Funcs)),
	}

	// Shallow-copy the sem program with fresh FuncDecls (FrameSize grows
	// during inlining; the originals are shared process-wide and must not
	// change). Site lists, globals, and strings are shared: the inlined
	// unit keeps every sem-assigned ID, which is what makes its profiles
	// comparable with the original's.
	newSem := *orig
	newSem.Funcs = make([]*cast.FuncDecl, len(orig.Funcs))
	newSem.FuncByName = make(map[string]*cast.FuncDecl, len(orig.Funcs))
	for i, fd := range orig.Funcs {
		nfd := *fd
		newSem.Funcs[i] = &nfd
		newSem.FuncByName[nfd.Name()] = &nfd
		if fd == orig.Main {
			newSem.Main = &nfd
		}
		objs := make([]*cast.Object, 0, len(fd.Params)+len(fd.Locals))
		objs = append(objs, fd.Params...)
		objs = append(objs, fd.Locals...)
		in.frameObjs[i] = objs
	}
	in.sem = &newSem

	// Structurally clone every graph: fresh blocks with copied statement
	// slices (nodes shared until a splice clones them) and remapped edges.
	in.graphs = make([]*cfg.Graph, len(cp.Graphs))
	for fi, g := range cp.Graphs {
		bmap := make(map[*cfg.Block]*cfg.Block, len(g.Blocks))
		ng := &cfg.Graph{Fn: newSem.Funcs[fi], Blocks: make([]*cfg.Block, len(g.Blocks))}
		for b, blk := range g.Blocks {
			nb := &cfg.Block{
				ID: blk.ID, Name: blk.Name,
				Stmts:      append([]cast.Stmt(nil), blk.Stmts...),
				Term:       blk.Term,
				Cond:       blk.Cond,
				Origin:     blk.Origin,
				BranchSite: blk.BranchSite,
				SwitchSite: blk.SwitchSite,
				Tag:        blk.Tag,
				Cases:      append([]cfg.SwitchDispatch(nil), blk.Cases...),
				RetVal:     blk.RetVal,
				Anchor:     blk.Anchor,
			}
			bmap[blk] = nb
			ng.Blocks[b] = nb
			in.originOf[nb] = Origin{Func: fi, Block: blk.ID}
		}
		for b, blk := range g.Blocks {
			nb := ng.Blocks[b]
			nb.Succs = make([]*cfg.Block, len(blk.Succs))
			for k, s := range blk.Succs {
				nb.Succs[k] = bmap[s]
			}
			nb.Preds = make([]*cfg.Block, len(blk.Preds))
			for k, p := range blk.Preds {
				nb.Preds[k] = bmap[p]
			}
		}
		ng.Entry = bmap[g.Entry]
		in.graphs[fi] = ng
	}
	return in
}

func (in *inliner) finish() *cfg.Program {
	cp := &cfg.Program{
		Sem:    in.sem,
		Graphs: in.graphs,
		ByFunc: make(map[*cast.FuncDecl]*cfg.Graph, len(in.graphs)),
	}
	for fi, g := range in.graphs {
		cp.ByFunc[in.sem.Funcs[fi]] = g
	}
	return cp
}

func alignUp(n, a int64) int64 { return (n + a - 1) / a * a }

// locate finds the working-copy statement carrying call site id.
func (in *inliner) locate(caller, id int) (blk *cfg.Block, idx int, call *cast.Call, lhs *cast.Ident) {
	for _, b := range in.graphs[caller].Blocks {
		for i, s := range b.Stmts {
			if c, l := callStmt(s); c != nil && c.SiteID == id {
				return b, i, c, l
			}
		}
	}
	return nil, 0, nil, nil
}

// splice inlines one call site: the callee's current (already fully
// inlined) body is cloned into the caller at the call statement, with
// the callee's frame relocated to a fresh region at the top of the
// caller's frame. The call block is split in two: the upper half binds
// parameters and jumps into the cloned entry; every cloned return jumps
// to the lower half, which consumes the return-value slot and continues
// with the original terminator.
func (in *inliner) splice(d Decision) error {
	callerFd := in.sem.Funcs[d.Caller]
	calleeFd := in.sem.Funcs[d.Callee]
	calleeG := in.graphs[d.Callee]
	g := in.graphs[d.Caller]

	blk, idx, call, lhs := in.locate(d.Caller, d.Site)
	if call == nil {
		return fmt.Errorf("opt: site %d not found in %s (already spliced?)", d.Site, callerFd.Name())
	}
	pos := call.Pos()

	// Relocate the callee's frame objects to [base, base+regionSize) of
	// the caller's frame. base is 16-aligned, matching the interpreter's
	// frame alignment, so every relocated offset keeps its alignment.
	base := alignUp(callerFd.FrameSize, 16)
	remap := make(map[*cast.Object]*cast.Object, len(in.frameObjs[d.Callee]))
	for _, o := range in.frameObjs[d.Callee] {
		no := *o
		no.FrameOffset += base
		remap[o] = &no
		in.frameObjs[d.Caller] = append(in.frameObjs[d.Caller], &no)
	}
	regionSize := calleeFd.FrameSize
	var retTemp *cast.Object
	if lhs != nil {
		retT := calleeFd.Obj.Type.Sig.Ret
		retTemp = &cast.Object{
			Name:        calleeFd.Name() + ".ret",
			Kind:        cast.ObjVar,
			Type:        retT,
			FrameOffset: base + regionSize,
			FuncIndex:   -1,
			GlobalIndex: -1,
		}
		in.frameObjs[d.Caller] = append(in.frameObjs[d.Caller], retTemp)
		regionSize += 8
	}
	callerFd.FrameSize = alignUp(base+regionSize, 8)

	// Clone the callee's blocks under the remap. Sem-assigned IDs
	// (branch, switch, and nested call sites) are preserved: the clone's
	// dynamic counts merge with the original body's counters, which is
	// what makes exact profile folding possible.
	bmap := make(map[*cfg.Block]*cfg.Block, len(calleeG.Blocks))
	clones := make([]*cfg.Block, len(calleeG.Blocks))
	for b, cb := range calleeG.Blocks {
		nb := &cfg.Block{
			Name:       calleeFd.Name() + "." + cb.Name,
			Term:       cb.Term,
			Cond:       cast.CloneExpr(cb.Cond, remap),
			Origin:     cb.Origin,
			BranchSite: cb.BranchSite,
			SwitchSite: cb.SwitchSite,
			Tag:        cast.CloneExpr(cb.Tag, remap),
			Cases:      append([]cfg.SwitchDispatch(nil), cb.Cases...),
			RetVal:     cast.CloneExpr(cb.RetVal, remap),
			Anchor:     cb.Anchor,
		}
		nb.Stmts = make([]cast.Stmt, len(cb.Stmts))
		for i, s := range cb.Stmts {
			cs := cast.CloneBlockStmt(s, remap)
			if cl, ok := cs.(*cast.Clear); ok {
				// A Clear from an earlier splice into the callee: its
				// region moves with the rest of the callee's frame.
				cl.Off += base
			}
			nb.Stmts[i] = cs
		}
		bmap[cb] = nb
		clones[b] = nb
		in.originOf[nb] = in.originOf[cb] // fold into whatever the callee's block folds into
	}
	for b, cb := range calleeG.Blocks {
		nb := clones[b]
		nb.Succs = make([]*cfg.Block, len(cb.Succs))
		for k, s := range cb.Succs {
			nb.Succs[k] = bmap[s]
		}
	}
	in.blocksCloned += len(clones)

	// Split the call block: blk keeps the statements before the call and
	// becomes the upper half; tail is a synthetic continuation that
	// inherits the original terminator and the statements after the call.
	tail := &cfg.Block{
		Name:       blk.Name + ".cont",
		Term:       blk.Term,
		Cond:       blk.Cond,
		Origin:     blk.Origin,
		BranchSite: blk.BranchSite,
		SwitchSite: blk.SwitchSite,
		Tag:        blk.Tag,
		Cases:      blk.Cases,
		RetVal:     blk.RetVal,
		Succs:      blk.Succs,
		Anchor:     blk.Anchor,
	}
	in.originOf[tail] = Origin{Func: -1, Block: -1}
	var tailStmts []cast.Stmt
	if lhs != nil {
		// The original site converted the callee's (already
		// declared-type-converted) return value to the destination's
		// type; loading the typed slot and assigning reproduces both
		// conversions.
		tailStmts = append(tailStmts, cast.NewExprStmt(
			cast.NewAssign(lhs, cast.NewIdent(retTemp, pos), pos)))
	}
	tail.Stmts = append(tailStmts, blk.Stmts[idx+1:]...)

	// Upper half: zero the region (a real call zeroes its fresh frame),
	// bind parameters left-to-right, evaluate surplus arguments for
	// effect, then enter the cloned body.
	head := blk.Stmts[:idx:idx]
	head = append(head, cast.NewClear(base, regionSize, pos))
	for i, p := range calleeFd.Params {
		if i < len(call.Args) {
			head = append(head, cast.NewExprStmt(
				cast.NewAssign(cast.NewIdent(remap[p], pos), call.Args[i], pos)))
		}
	}
	for i := len(calleeFd.Params); i < len(call.Args); i++ {
		head = append(head, cast.NewExprStmt(call.Args[i]))
	}
	blk.Stmts = head
	blk.Term = cfg.TermJump
	blk.Cond = nil
	blk.BranchSite = -1
	blk.SwitchSite = -1
	blk.Tag = nil
	blk.Cases = nil
	blk.RetVal = nil
	blk.Succs = []*cfg.Block{bmap[calleeG.Entry]}

	// Rewire every cloned exit to the continuation. A return's value
	// lands in the slot (or is evaluated for effect when the result is
	// unused, as the original call did); a pruned dead-end — the
	// interpreter's implicit `return 0` — leaves the zeroed slot as is.
	for _, nb := range clones {
		switch nb.Term {
		case cfg.TermReturn:
			if nb.RetVal != nil {
				if retTemp != nil {
					nb.Stmts = append(nb.Stmts, cast.NewExprStmt(
						cast.NewAssign(cast.NewIdent(retTemp, pos), nb.RetVal, pos)))
				} else {
					nb.Stmts = append(nb.Stmts, cast.NewExprStmt(nb.RetVal))
				}
			}
			nb.Term = cfg.TermJump
			nb.RetVal = nil
			nb.Succs = []*cfg.Block{tail}
		case cfg.TermJump:
			if len(nb.Succs) == 0 {
				nb.Succs = []*cfg.Block{tail}
			}
		}
	}

	// Renumber densely and rebuild predecessor lists wholesale.
	g.Blocks = append(g.Blocks, tail)
	g.Blocks = append(g.Blocks, clones...)
	for i, b := range g.Blocks {
		b.ID = i
		b.Preds = b.Preds[:0]
	}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			s.Preds = append(s.Preds, b)
		}
	}
	return nil
}
