// Package opt closes the paper's loop: it consumes the static frequency
// estimates (and measured profiles) to drive the optimizations the paper
// argues they are good enough for — call-site inlining, Pettis–Hansen
// style code layout, and spill-cost weighting — and measures how closely
// estimate-driven decisions agree with profile-driven ones.
package opt

import (
	"fmt"

	"staticest/internal/cfg"
	"staticest/internal/core"
	"staticest/internal/profile"
)

// SourceKinds lists every frequency-source name the optimizers accept:
// the three static estimators, the self profile (aggregate of all
// inputs), and the cross-input profile (aggregate of held-out inputs).
var SourceKinds = []string{"loop", "smart", "markov", "profile", "xprof"}

// EstimateKinds lists the static estimator sources only.
var EstimateKinds = []string{"loop", "smart", "markov"}

// LiveSourceName names the frequency source built from a unit's live
// ingest aggregate (the fleet's crowd-sourced cross-input profile).
const LiveSourceName = "live"

// ServingSourceKinds is SourceKinds plus the live-aggregate source —
// the set the serving layer's /v1/optimize accepts.
var ServingSourceKinds = append(append([]string{}, SourceKinds...), LiveSourceName)

// Source is a frequency source an optimizer consumes: absolute block,
// function-invocation, and call-site frequencies, plus per-edge
// frequencies derived from them. Estimate sources and measured profiles
// present the same interface, so every optimizer is parameterized by
// where its frequencies come from — the comparison at the heart of the
// paper.
type Source struct {
	Name string

	// Block[f][b] is the absolute execution frequency of block b of
	// function f (per-entry estimate × invocation estimate for static
	// sources; measured counts for profile sources).
	Block [][]float64

	// Func[f] is the invocation frequency of function f.
	Func []float64

	// Site[s] is the execution frequency of call site s. Indirect sites
	// are zero under estimate sources (they cannot be inlined).
	Site []float64

	edge func(fi int, blk *cfg.Block) []float64
}

// EdgeFreq returns the frequencies of blk's outgoing edges, parallel to
// blk.Succs (nil for TermReturn blocks).
func (s *Source) EdgeFreq(fi int, blk *cfg.Block) []float64 {
	return s.edge(fi, blk)
}

// EstimateSource builds a frequency source from one of the static
// estimator ladders: "loop" (loop nesting only, call_site invocations),
// "smart" (branch heuristics, direct invocations — the paper's headline
// estimator), or "markov" (linear-system intra + Markov call chain).
func EstimateSource(cp *cfg.Program, est *core.Estimates, kind string) (*Source, error) {
	var intra []*core.IntraResult
	var inv []float64
	switch kind {
	case "loop":
		intra, inv = est.IntraLoop, est.Inter.CallSite
	case "smart":
		intra, inv = est.IntraSmart, est.Inter.Direct
	case "markov":
		intra, inv = est.IntraMarkov, est.InterMarkov.Inv
	default:
		return nil, fmt.Errorf("opt: unknown estimate source %q (have loop, smart, markov)", kind)
	}
	sp := cp.Sem
	s := &Source{
		Name:  kind,
		Block: make([][]float64, len(sp.Funcs)),
		Func:  inv,
		Site:  make([]float64, len(sp.CallSites)),
	}
	for fi := range sp.Funcs {
		bf := intra[fi].BlockFreq
		abs := make([]float64, len(bf))
		for b, f := range bf {
			abs[b] = f * inv[fi]
		}
		s.Block[fi] = abs
	}
	for _, site := range sp.CallSites {
		if site.Indirect() {
			continue
		}
		blk := est.SiteBlocks[site.ID]
		if blk == nil {
			continue // unreachable code
		}
		fi := site.Caller.Obj.FuncIndex
		if blk.ID < len(intra[fi].BlockFreq) {
			s.Site[site.ID] = intra[fi].BlockFreq[blk.ID] * inv[fi]
		}
	}
	conf := est.Config
	if kind == "loop" {
		s.edge = func(fi int, blk *cfg.Block) []float64 {
			return scaleProbs(loopArcProbs(blk, conf), s.Block[fi][blk.ID])
		}
	} else {
		pred := est.Pred
		s.edge = func(fi int, blk *cfg.Block) []float64 {
			return scaleProbs(core.ArcProbs(blk, pred, conf), s.Block[fi][blk.ID])
		}
	}
	return s, nil
}

// loopArcProbs is the "loop" estimator's transition model: 50/50
// if-branches, loop continuation at 1 - 1/LoopCount, uniform switches.
func loopArcProbs(blk *cfg.Block, conf core.Config) []float64 {
	switch blk.Term {
	case cfg.TermJump:
		if len(blk.Succs) == 1 {
			return []float64{1}
		}
		return nil
	case cfg.TermCond:
		p := 0.5
		if blk.Origin != cfg.FromIf {
			p = 1 - 1/conf.LoopCount
			if conf.LoopCount <= 1 {
				p = 0.5
			}
		}
		return []float64{p, 1 - p}
	case cfg.TermSwitch:
		out := make([]float64, len(blk.Succs))
		for i := range out {
			out[i] = 1 / float64(len(blk.Succs))
		}
		return out
	}
	return nil // TermReturn
}

func scaleProbs(probs []float64, k float64) []float64 {
	out := make([]float64, len(probs))
	for i, p := range probs {
		out[i] = p * k
	}
	return out
}

// ProfileSource builds a frequency source from a measured profile (one
// run, or an aggregate). Edge frequencies come from the recorded branch
// outcomes and switch arms; unconditional edges carry the block's count.
func ProfileSource(cp *cfg.Program, p *profile.Profile, name string) *Source {
	s := &Source{
		Name:  name,
		Block: p.BlockCounts,
		Func:  p.FuncCalls,
		Site:  p.CallSiteCounts,
	}
	s.edge = func(fi int, blk *cfg.Block) []float64 {
		switch blk.Term {
		case cfg.TermJump:
			if len(blk.Succs) == 1 {
				return []float64{p.BlockCounts[fi][blk.ID]}
			}
			return nil
		case cfg.TermCond:
			if blk.BranchSite >= 0 && blk.BranchSite < len(p.BranchTaken) {
				return []float64{p.BranchTaken[blk.BranchSite], p.BranchNot[blk.BranchSite]}
			}
			// A conditional without a recorded site: split its count.
			c := p.BlockCounts[fi][blk.ID] / 2
			return []float64{c, c}
		case cfg.TermSwitch:
			if blk.SwitchSite >= 0 && blk.SwitchSite < len(p.SwitchArm) {
				arms := p.SwitchArm[blk.SwitchSite]
				if len(arms) == len(blk.Succs) {
					return arms
				}
			}
			out := make([]float64, len(blk.Succs))
			c := p.BlockCounts[fi][blk.ID] / float64(len(blk.Succs))
			for i := range out {
				out[i] = c
			}
			return out
		}
		return nil // TermReturn
	}
	return s
}
