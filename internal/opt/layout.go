package opt

import (
	"sort"

	"staticest/internal/callgraph"
	"staticest/internal/cfg"
	"staticest/internal/obs"
)

// This file implements Pettis–Hansen style code positioning driven by a
// frequency source: basic-block chaining inside each function (maximize
// fall-through on hot edges) and function ordering over the call graph
// (place hot caller/callee pairs near each other). Both are scored under
// the measured profile, whatever source chose the layout — the paper's
// question is how much estimate-driven layout loses to profile-driven.

// Layout is a block ordering for every function of a unit.
type Layout struct {
	Source string
	Order  [][]int // Order[f] lists function f's block IDs in layout order
}

// weighted directed edge used by the chain builder.
type wedge struct {
	from, to int
	w        float64
	idx      int // succ index, for deterministic ties
}

// chains implements the Pettis–Hansen bottom-up chain merge: every node
// starts as its own chain; edges are visited hottest first; an edge u→v
// joins two chains when u is a chain's tail and v is another's head.
type chains struct {
	id   []int
	list [][]int
	w    []float64
}

func newChains(n int) *chains {
	c := &chains{id: make([]int, n), list: make([][]int, n), w: make([]float64, n)}
	for i := 0; i < n; i++ {
		c.id[i] = i
		c.list[i] = []int{i}
	}
	return c
}

func (c *chains) merge(edges []wedge) {
	sort.SliceStable(edges, func(a, b int) bool {
		if edges[a].w != edges[b].w {
			return edges[a].w > edges[b].w
		}
		if edges[a].from != edges[b].from {
			return edges[a].from < edges[b].from
		}
		return edges[a].idx < edges[b].idx
	})
	for _, e := range edges {
		cu, cv := c.id[e.from], c.id[e.to]
		if cu == cv {
			continue
		}
		lu, lv := c.list[cu], c.list[cv]
		if lu[len(lu)-1] != e.from || lv[0] != e.to {
			continue // e cannot become a fall-through inside a chain
		}
		c.list[cu] = append(lu, lv...)
		c.w[cu] += c.w[cv] + e.w
		for _, v := range lv {
			c.id[v] = cu
		}
		c.list[cv] = nil
	}
}

// order emits the chains: the one holding first comes first, the rest by
// descending accumulated weight, ties by smallest leading element.
func (c *chains) order(first int) []int {
	var rest []int
	for ci, l := range c.list {
		if l != nil && ci != c.id[first] {
			rest = append(rest, ci)
		}
	}
	sort.Slice(rest, func(a, b int) bool {
		if c.w[rest[a]] != c.w[rest[b]] {
			return c.w[rest[a]] > c.w[rest[b]]
		}
		return c.list[rest[a]][0] < c.list[rest[b]][0]
	})
	out := append([]int(nil), c.list[c.id[first]]...)
	for _, ci := range rest {
		out = append(out, c.list[ci]...)
	}
	return out
}

// ComputeLayout chains every function's blocks under the source's edge
// frequencies. The entry block's chain always leads.
func ComputeLayout(cp *cfg.Program, src *Source, o *obs.Observer) *Layout {
	sp := o.StartSpan("opt.layout", obs.KV("source", src.Name))
	defer sp.End()
	lay := &Layout{Source: src.Name, Order: make([][]int, len(cp.Graphs))}
	for fi, g := range cp.Graphs {
		if len(g.Blocks) == 0 {
			continue
		}
		var edges []wedge
		for _, blk := range g.Blocks {
			ef := src.EdgeFreq(fi, blk)
			for i, s := range blk.Succs {
				if s == blk || i >= len(ef) {
					continue // a self-loop can never fall through
				}
				edges = append(edges, wedge{from: blk.ID, to: s.ID, w: ef[i], idx: i})
			}
		}
		c := newChains(len(g.Blocks))
		c.merge(edges)
		lay.Order[fi] = c.order(g.Entry.ID)
	}
	return lay
}

// SourceOrderLayout is the baseline: blocks in construction order.
func SourceOrderLayout(cp *cfg.Program) *Layout {
	lay := &Layout{Source: "source-order", Order: make([][]int, len(cp.Graphs))}
	for fi, g := range cp.Graphs {
		ids := make([]int, len(g.Blocks))
		for i := range ids {
			ids[i] = i
		}
		lay.Order[fi] = ids
	}
	return lay
}

// FallThroughRate scores a layout under a measured profile: the fraction
// of executed control transfers that reach the next block in layout
// order. Returns the rate plus the raw numerator and denominator so
// per-program rates can be combined suite-wide.
func FallThroughRate(cp *cfg.Program, lay *Layout, prof *Source) (rate, fall, total float64) {
	for fi, g := range cp.Graphs {
		pos := make([]int, len(g.Blocks))
		for k, id := range lay.Order[fi] {
			pos[id] = k
		}
		for _, blk := range g.Blocks {
			ef := prof.EdgeFreq(fi, blk)
			for i, s := range blk.Succs {
				if i >= len(ef) {
					continue
				}
				total += ef[i]
				if s != blk && pos[s.ID] == pos[blk.ID]+1 {
					fall += ef[i]
				}
			}
		}
	}
	if total > 0 {
		rate = fall / total
	}
	return rate, fall, total
}

// FuncOrder orders functions by chain-merging call-graph edges weighted
// by the source's call-site frequencies; main's chain leads.
func FuncOrder(cg *callgraph.Graph, src *Source) []int {
	n := len(cg.Adj)
	var edges []wedge
	for _, e := range sortedEdges(cg) {
		if e.Caller == e.Callee {
			continue
		}
		var w float64
		for _, site := range e.Sites {
			w += src.Site[site.ID]
		}
		edges = append(edges, wedge{from: e.Caller, to: e.Callee, w: w})
	}
	c := newChains(n)
	c.merge(edges)
	first := cg.MainIndex()
	if first < 0 {
		first = 0
	}
	return c.order(first)
}

// WeightedCallDistance scores a function order under a profile: the sum
// over direct call edges of dynamic call count × ordering distance.
// Lower is better (hot pairs adjacent).
func WeightedCallDistance(order []int, cg *callgraph.Graph, prof *Source) float64 {
	pos := make([]int, len(order))
	for k, fi := range order {
		pos[fi] = k
	}
	var d float64
	for _, e := range sortedEdges(cg) {
		if e.Caller == e.Callee {
			continue
		}
		var w float64
		for _, site := range e.Sites {
			w += prof.Site[site.ID]
		}
		dist := pos[e.Caller] - pos[e.Callee]
		if dist < 0 {
			dist = -dist
		}
		d += w * float64(dist)
	}
	return d
}

// sortedEdges returns the call graph's edges in (caller, callee) order.
// cg.Edges is a map; ranging it directly makes float accumulation (and
// equal-weight tie-breaks) depend on iteration order, which the serving
// layer's byte-identical-response guarantee cannot tolerate.
func sortedEdges(cg *callgraph.Graph) []*callgraph.Edge {
	out := make([]*callgraph.Edge, 0, len(cg.Edges))
	for _, e := range cg.Edges {
		out = append(out, e)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Caller != out[b].Caller {
			return out[a].Caller < out[b].Caller
		}
		return out[a].Callee < out[b].Callee
	})
	return out
}
