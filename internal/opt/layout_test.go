package opt

import (
	"reflect"
	"testing"

	"staticest/internal/cfg"
)

// diamond builds entry -> {hot, cold} -> exit with the given edge
// weights and returns the graph plus a source reporting those weights.
func diamond(hotW, coldW float64) (*cfg.Program, *Source) {
	entry := &cfg.Block{ID: 0, Name: "entry", Term: cfg.TermCond, BranchSite: -1, SwitchSite: -1}
	hot := &cfg.Block{ID: 1, Name: "hot", Term: cfg.TermJump, BranchSite: -1, SwitchSite: -1}
	cold := &cfg.Block{ID: 2, Name: "cold", Term: cfg.TermJump, BranchSite: -1, SwitchSite: -1}
	exit := &cfg.Block{ID: 3, Name: "exit", Term: cfg.TermReturn, BranchSite: -1, SwitchSite: -1}
	entry.Succs = []*cfg.Block{hot, cold}
	hot.Succs = []*cfg.Block{exit}
	cold.Succs = []*cfg.Block{exit}
	g := &cfg.Graph{Blocks: []*cfg.Block{entry, hot, cold, exit}, Entry: entry}
	cp := &cfg.Program{Graphs: []*cfg.Graph{g}}
	src := &Source{
		Name:  "test",
		Block: [][]float64{{hotW + coldW, hotW, coldW, hotW + coldW}},
		edge: func(fi int, blk *cfg.Block) []float64 {
			switch blk {
			case entry:
				return []float64{hotW, coldW}
			case hot:
				return []float64{hotW}
			case cold:
				return []float64{coldW}
			}
			return nil
		},
	}
	return cp, src
}

func TestComputeLayoutChainsHotPath(t *testing.T) {
	cp, src := diamond(90, 10)
	lay := ComputeLayout(cp, src, nil)
	want := []int{0, 1, 3, 2} // entry, hot, exit; cold trails
	if !reflect.DeepEqual(lay.Order[0], want) {
		t.Fatalf("layout order = %v, want %v", lay.Order[0], want)
	}
	rate, fall, total := FallThroughRate(cp, lay, src)
	// Falls through: entry->hot (90) and hot->exit (90); cold->exit (10)
	// and entry->cold (10) jump. 180 of 200.
	if total != 200 || fall != 180 || rate != 0.9 {
		t.Fatalf("fall-through = %v/%v (rate %v), want 180/200 (0.9)", fall, total, rate)
	}
	srcOrder := SourceOrderLayout(cp)
	r0, _, _ := FallThroughRate(cp, srcOrder, src)
	if rate <= r0 {
		t.Fatalf("chained rate %v not above source order %v", rate, r0)
	}
}

func TestComputeLayoutFlipsWithWeights(t *testing.T) {
	cp, src := diamond(5, 95)
	lay := ComputeLayout(cp, src, nil)
	want := []int{0, 2, 3, 1} // cold edge is now the hot one
	if !reflect.DeepEqual(lay.Order[0], want) {
		t.Fatalf("layout order = %v, want %v", lay.Order[0], want)
	}
}

func TestLayoutKeepsEveryBlockOnce(t *testing.T) {
	cp, src := diamond(1, 1)
	lay := ComputeLayout(cp, src, nil)
	seen := map[int]bool{}
	for _, id := range lay.Order[0] {
		if seen[id] {
			t.Fatalf("block %d appears twice in %v", id, lay.Order[0])
		}
		seen[id] = true
	}
	if len(seen) != 4 {
		t.Fatalf("layout %v does not cover all 4 blocks", lay.Order[0])
	}
	if lay.Order[0][0] != 0 {
		t.Fatalf("entry not first in %v", lay.Order[0])
	}
}
