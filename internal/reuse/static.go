package reuse

import (
	"math"

	"staticest/internal/cast"
	"staticest/internal/opt"
)

// DefaultFootprint stands in for the element count of objects whose
// extent is not statically known (pointer bases, heap structures) —
// the same order as the suite's typical array sizes.
const DefaultFootprint = 256

// SteadyTrips is the assumed trip count of loops whose bound is not
// syntactically constant. The frequency estimators deliberately model
// every loop with a small nominal multiplier — right for relative
// block frequencies, but far too short for memory behavior: a real
// workload's loops run long enough that warm re-references dwarf the
// first-touch (cold) pass. Assuming steady state for unbounded loops
// keeps the estimated cold fraction in the regime measured traces
// actually exhibit.
const SteadyTrips = 512

// TypicalTrips is the assumed per-entry trip count of a loop whose
// bound is neither constant nor implied by the source, used for
// working-set (distance) estimation and for putting unknown-bound
// loops on the same count scale as constant-bound ones. The frequency
// estimators' nominal loop multipliers (~4-16) are tuned for relative
// block frequencies; per-entry element coverage in real traces
// clusters in the tens.
const TypicalTrips = 16

// Estimate derives a static reuse-distance profile from the table's
// loop structure and array footprints, using a block-frequency source
// (one of the estimator ladders, or a measured profile) as the
// iteration-count oracle.
//
// Access counts: a reference's baseline count is its block's absolute
// frequency under src, rescaled per enclosing loop onto a common trip
// scale — the exact bound where it is syntactically constant
// (for (i = 0; i < 100; i++)), TypicalTrips where it is not. The
// estimators model every loop with a small nominal multiplier that is
// right for relative block frequencies but mixes scales badly here: a
// constant-bound init scan would otherwise swamp a hot probe loop
// whose real trip count the estimator cannot see. Source-implied trips
// for a loop come from its condition block: with condition frequency c
// and body frequency b, the loop was entered e = c - b times and ran
// b / e iterations per entry.
//
// Distances: a reference reuses an element once per iteration of its
// NVLoop — the innermost enclosing loop that does not advance its
// address — at a distance of that iteration's working set (iterCover),
// everything the other references under the loop touch in between. A
// reference every enclosing loop advances (a pure scan, a moving hash
// probe) only rehits across whole-nest reruns, past the nest's full
// per-entry coverage (entryCover). Both distances are deposited as
// half-decade triangular bumps (addSmooth): a static distance is an
// order-of-magnitude claim, not an exact count.
//
// The cold/warm split assumes steady state: across the function's
// lifetime (its source-visible invocation count, floored at
// ReentryFloor) a nest makes far more accesses than its footprint has
// elements, so only the first-touch pass is cold. Duplicate references
// — the same expression read several times in one loop body — rehit
// at near-zero distance and are never cold.
func Estimate(t *Table, src *opt.Source) *Profile {
	p := &Profile{Source: src.Name, PerRef: make([]Histogram, len(t.Refs))}

	// Source-implied per-entry trip counts, memoized per loop.
	srcTripsMemo := make(map[cast.Stmt]float64)
	srcTrips := func(fi int, L cast.Stmt) float64 {
		if v, ok := srcTripsMemo[L]; ok {
			return v
		}
		v := 0.0
		if cond := t.LoopCond[L]; cond != nil && fi < len(src.Block) && cond.ID < len(src.Block[fi]) {
			fc := src.Block[fi][cond.ID]
			var fb float64
			if len(cond.Succs) > 0 && cond.Succs[0].ID < len(src.Block[fi]) {
				fb = src.Block[fi][cond.Succs[0].ID]
			}
			entries := fc - fb
			if entries < 1 {
				entries = 1
			}
			if fb > 0 {
				v = fb / entries
			}
		}
		srcTripsMemo[L] = v
		return v
	}
	// Effective innermost trip count: constant bound if known,
	// otherwise at least the steady-state assumption.
	effTrips := func(fi int, L cast.Stmt) float64 {
		if c := t.ConstTrips[L]; c > 0 {
			return c
		}
		return math.Max(srcTrips(fi, L), SteadyTrips)
	}
	// Common-scale trip refinement for a reference's whole nest: each
	// constant-bound enclosing loop rescales the source's implied trips
	// to the exact bound, and each unknown-bound loop is floored at
	// TypicalTrips so both kinds of loop sit on one scale. The much
	// larger SteadyTrips deliberately stays out of this factor — it
	// would compound per nest level and let the deepest nest swallow
	// the whole distribution.
	adjust := func(r *Ref) float64 {
		m := 1.0
		for _, L := range r.Loops {
			st := srcTrips(r.Func, L)
			if st < 1 {
				st = 1
			}
			if c := t.ConstTrips[L]; c > 0 {
				m *= c / st
			} else if st < TypicalTrips {
				m *= TypicalTrips / st
			}
		}
		return m
	}
	// Assumed long-run access count for a reference per function
	// invocation: the product of effective trip counts over its nest.
	// Only the cold/warm split uses it — the ratio of first touches to
	// total accesses in the steady state — so the inflation cannot
	// shift mass between references.
	effTotal := func(r *Ref) float64 {
		m := 1.0
		for _, L := range r.Loops {
			if T := effTrips(r.Func, L); T > 1 {
				m *= T
			}
		}
		return m
	}

	refCount := func(r *Ref) float64 {
		if r.Blk == nil || r.Func >= len(src.Block) || r.Blk.ID >= len(src.Block[r.Func]) {
			return 0
		}
		n := src.Block[r.Func][r.Blk.ID]
		if !(n > 0) {
			return 0
		}
		return n * adjust(r)
	}

	// Duplicate references: several syntactic refs with the same base
	// expression inside one loop body (x[i] read three times per
	// iteration) hit the same address within the iteration, so every
	// access after the first returns at near-zero distance. Group refs
	// by (function, innermost loop — or block, outside loops,
	// expression text); the heaviest member keeps the positional model
	// and represents the group in working-set sums, the rest rehit
	// immediately.
	counts := make([]float64, len(t.Refs))
	for i := range t.Refs {
		counts[i] = refCount(&t.Refs[i])
	}
	type dupKey struct {
		fn   int
		at   any
		name string
	}
	keyOf := func(r *Ref) dupKey {
		at := any(r.Loop)
		if r.Loop == nil {
			at = any(r.Blk)
		}
		return dupKey{r.Func, at, r.Name()}
	}
	lead := make(map[dupKey]int)
	for i := range t.Refs {
		k := keyOf(&t.Refs[i])
		if j, ok := lead[k]; !ok || counts[i] > counts[j] {
			lead[k] = i
		}
	}

	// Per-entry trip count for working-set (distance) purposes: the
	// constant bound where known, otherwise at least TypicalTrips.
	// The SteadyTrips floor deliberately does NOT apply here — a loop
	// running long over the program's life says nothing about how many
	// distinct elements one entry touches, and inflating the working
	// set pushes every warm distance orders of magnitude past what
	// traces show.
	wsTrips := func(fi int, L cast.Stmt) float64 {
		if c := t.ConstTrips[L]; c > 0 {
			return c
		}
		return math.Max(TypicalTrips, srcTrips(fi, L))
	}

	// Working sets per loop. iterCover is the distinct-element coverage
	// of ONE iteration of the loop: every reference nested under it
	// contributes the elements a single iteration lets it touch — its
	// full per-entry coverage when it sits under deeper loops, one
	// element when it sits directly in the body. entryCover is the
	// coverage of one whole ENTRY (the loop run to completion),
	// including the loop's own trips.
	iterCover := make(map[cast.Stmt]float64)
	entryCover := make(map[cast.Stmt]float64)
	for i := range t.Refs {
		r := &t.Refs[i]
		if lead[keyOf(r)] != i {
			continue
		}
		F := footprintOrDefault(r)
		for j, L := range r.Loops {
			inner := 1.0
			for _, L2 := range r.Loops[j+1:] {
				inner *= math.Max(1, wsTrips(r.Func, L2))
			}
			iterCover[L] += math.Min(F, inner)
			entryCover[L] += math.Min(F, inner*math.Max(1, wsTrips(r.Func, L)))
		}
	}

	// Warm reuse distance: a reference whose NVLoop exists re-touches
	// its elements once per NVLoop iteration, past that iteration's
	// working set. A reference every enclosing loop advances (a pure
	// scan, a moving hash probe) re-touches only across whole-nest
	// reruns, past everything the nest covers in one entry — its own
	// elements and every sibling reference's.
	warmDist := func(r *Ref) float64 {
		if r.NVLoop != nil {
			return math.Max(0, iterCover[r.NVLoop]-1)
		}
		return math.Max(0, entryCover[r.Loops[0]]-1)
	}

	for i := range t.Refs {
		r := &t.Refs[i]
		n := counts[i]
		if n <= 0 {
			continue
		}
		F := footprintOrDefault(r)
		h := &p.PerRef[i]
		if lead[keyOf(r)] != i {
			addSmooth(h, 1, n)
			continue
		}
		switch {
		case r.Loop != nil && r.Streaming:
			// Steady-state cold fraction: across the function's life
			// the reference makes effTotal x invocations accesses; its
			// loop is entered that total / T times, each entry
			// covering min(F, T) new elements until the footprint is
			// exhausted. The invocation factor is the nest's visible
			// caller: re-entries rehit the footprint the first pass
			// touched, so a one-shot constant-bound init scan in a
			// run-once function correctly comes out all cold while the
			// same scan in a hot helper is almost entirely warm.
			T := math.Max(1, effTrips(r.Func, r.Loop))
			total := math.Max(effTotal(r), T) * invocations(src, r.Func)
			coldElems := math.Min(F, total/T*math.Min(F, T))
			cold := math.Min(n*coldElems/total, F)
			h.AddCold(cold)
			if warm := n - cold; warm > 0 {
				addSmooth(h, warmDist(r), warm)
			}
		case r.Loop != nil:
			// Stationary: one element per loop entry; entries may
			// still walk the footprint over the long run.
			T := math.Max(1, effTrips(r.Func, r.Loop))
			total := math.Max(effTotal(r), T) * invocations(src, r.Func)
			cold := math.Min(n*math.Min(F, total/T)/total, F)
			h.AddCold(cold)
			if warm := n - cold; warm > 0 {
				addSmooth(h, warmDist(r), warm)
			}
		case fixedAddr(r.Expr):
			// A fixed-address reference outside any syntactic loop
			// (pat[0] in a helper the caller loops over): every
			// execution rehits one element, with only a handful of
			// other references in between.
			cold := math.Min(n, 1)
			h.AddCold(cold)
			if warm := n - cold; warm > 0 {
				addSmooth(h, 2, warm)
			}
		default:
			// A varying reference outside any syntactic loop is still
			// hot through its callers — the steady-state assumption
			// discounts its first-touch share the same way it does for
			// visible loops — and its distances spread over whatever
			// the footprint admits.
			cold := math.Min(math.Min(n, F)/SteadyTrips, F)
			h.AddCold(cold)
			if warm := n - cold; warm > 0 {
				spreadUniform(h, warm, F)
			}
		}
	}
	for i := range p.PerRef {
		p.Total.Merge(&p.PerRef[i])
	}
	return p
}

// ReentryFloor is the minimum assumed lifetime re-entry count of any
// loop nest. The estimators' function-invocation counts are the
// visible part of the invisible caller, but they are deliberately
// conservative (a handful per call site) and cannot distinguish a
// genuinely one-shot init scan from a periodically re-run phase like a
// garbage collector — so every nest is assumed re-entered at least a
// few times, which bounds how much of a hot region's mass can be
// claimed cold.
const ReentryFloor = 8

// invocations is the source's estimated invocation count for a
// function, floored at ReentryFloor.
func invocations(src *opt.Source, fi int) float64 {
	if fi < len(src.Func) && src.Func[fi] > ReentryFloor {
		return src.Func[fi]
	}
	return ReentryFloor
}

func footprintOrDefault(r *Ref) float64 {
	if r.Footprint > 0 {
		return r.Footprint
	}
	return DefaultFootprint
}

// smoothRadius is the half-width, in histogram buckets, of the kernel
// addSmooth spreads warm mass over. A static distance is an
// order-of-magnitude claim, not an exact count — the model cannot see
// iteration-order effects, partial reuse, or interleaving from other
// functions — so its mass is deposited as a triangular bump spanning
// roughly half a decade (4 buckets = 10^0.4 ≈ 2.5x) to each side
// rather than as a point spike that total variation scores zero for a
// one-bucket miss.
const smoothRadius = 4

// addSmooth adds mass centered on distance dist with a triangular
// kernel over +-smoothRadius buckets (clipped to the finite range).
func addSmooth(h *Histogram, dist, mass float64) {
	c := BucketIndex(dist)
	var wsum float64
	for k := -smoothRadius; k <= smoothRadius; k++ {
		if b := c + k; b >= 0 && b < NumBuckets {
			wsum += float64(smoothRadius + 1 - abs(k))
		}
	}
	for k := -smoothRadius; k <= smoothRadius; k++ {
		if b := c + k; b >= 0 && b < NumBuckets {
			h.Counts[b] += mass * float64(smoothRadius+1-abs(k)) / wsum
		}
	}
}

func abs(k int) int {
	if k < 0 {
		return -k
	}
	return k
}

// spreadUniform distributes mass evenly across the distance buckets
// from 0 up to the bucket holding maxDist.
func spreadUniform(h *Histogram, mass, maxDist float64) {
	top := BucketIndex(maxDist)
	per := mass / float64(top+1)
	for i := 0; i <= top; i++ {
		h.Counts[i] += per
	}
}

// UniformBaseline is the informationless static profile every estimator
// must beat: the measured access mass spread uniformly over the
// distances the measured distinct-address count admits, with no cold
// mass. It knows the trace's size but nothing about its structure.
func UniformBaseline(accesses, distinct float64) *Profile {
	p := &Profile{Source: "uniform"}
	if accesses <= 0 {
		return p
	}
	if distinct < 1 {
		distinct = 1
	}
	spreadUniform(&p.Total, accesses, distinct)
	return p
}

// ObjectMissRatio aggregates a profile's per-reference histograms by
// base object and converts each to a miss ratio at the given cache
// capacity. References without a syntactic base object are skipped.
func ObjectMissRatio(t *Table, p *Profile, capacity float64) map[*cast.Object]float64 {
	byObj := make(map[*cast.Object]*Histogram)
	for i := range t.Refs {
		r := &t.Refs[i]
		if r.Base == nil || i >= len(p.PerRef) {
			continue
		}
		h, ok := byObj[r.Base]
		if !ok {
			h = &Histogram{}
			byObj[r.Base] = h
		}
		h.Merge(&p.PerRef[i])
	}
	out := make(map[*cast.Object]float64, len(byObj))
	for obj, h := range byObj {
		out[obj] = h.MissRatio(capacity)
	}
	return out
}
