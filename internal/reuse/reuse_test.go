package reuse_test

import (
	"math"
	"math/rand"
	"testing"

	"staticest/internal/callgraph"
	"staticest/internal/cfg"
	"staticest/internal/core"
	"staticest/internal/cparse"
	"staticest/internal/interp"
	"staticest/internal/metric"
	"staticest/internal/opt"
	"staticest/internal/reuse"
	"staticest/internal/sem"
)

func compile(t *testing.T, src string) *cfg.Program {
	t.Helper()
	file, err := cparse.ParseFile("test.c", []byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sem.Analyze(file)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	cp, err := cfg.Build(sp)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return cp
}

func trace(t *testing.T, src string) (*reuse.Table, []interp.MemAccess) {
	t.Helper()
	cp := compile(t, src)
	tab := reuse.BuildTable(cp)
	res, err := interp.Run(cp, interp.Options{MemRefs: tab.RefIndex()})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return tab, res.MemTrace
}

func acc(addrs ...uint64) []interp.MemAccess {
	out := make([]interp.MemAccess, len(addrs))
	for i, a := range addrs {
		out[i] = interp.MemAccess{Addr: a, Ref: 0}
	}
	return out
}

// naiveDistances is the textbook O(n²) LRU stack: on each access, the
// distance is the address's depth in the stack (0 = top), and the
// address moves to the top.
func naiveDistances(trace []interp.MemAccess) []float64 {
	out := make([]float64, len(trace))
	var stack []uint64
	for i := range trace {
		addr := trace[i].Addr
		depth := -1
		for j := len(stack) - 1; j >= 0; j-- {
			if stack[j] == addr {
				depth = len(stack) - 1 - j
				stack = append(stack[:j], stack[j+1:]...)
				break
			}
		}
		if depth < 0 {
			out[i] = math.Inf(1)
		} else {
			out[i] = float64(depth)
		}
		stack = append(stack, addr)
	}
	return out
}

func TestDistancesHand(t *testing.T) {
	// a b c a: a's second access passed b and c → distance 2.
	// Then b: passed c and a → 2. Then b again → 0.
	got := reuse.Distances(acc(1, 2, 3, 1, 2, 2))
	want := []float64{math.Inf(1), math.Inf(1), math.Inf(1), 2, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("distance[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDistancesSequentialScan(t *testing.T) {
	// Two passes over N addresses: first pass all cold, second pass all
	// at distance N-1 (every other element in between).
	const n = 64
	var trace []interp.MemAccess
	for pass := 0; pass < 2; pass++ {
		for i := uint64(0); i < n; i++ {
			trace = append(trace, interp.MemAccess{Addr: i})
		}
	}
	d := reuse.Distances(trace)
	for i := 0; i < n; i++ {
		if !math.IsInf(d[i], 1) {
			t.Fatalf("first pass access %d: distance %v, want +Inf", i, d[i])
		}
	}
	for i := n; i < 2*n; i++ {
		if d[i] != n-1 {
			t.Fatalf("second pass access %d: distance %v, want %v", i, d[i], n-1)
		}
	}
}

func TestDistancesStrided(t *testing.T) {
	// Alternating pair a b a b ...: after warmup every distance is 1.
	trace := acc(7, 9, 7, 9, 7, 9)
	d := reuse.Distances(trace)
	for i := 2; i < len(d); i++ {
		if d[i] != 1 {
			t.Errorf("distance[%d] = %v, want 1", i, d[i])
		}
	}
}

func TestDifferentialNaiveVsTree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		universe := 1 + rng.Intn(64)
		tr := make([]interp.MemAccess, n)
		for i := range tr {
			tr[i] = interp.MemAccess{Addr: uint64(rng.Intn(universe))}
		}
		fast := reuse.Distances(tr)
		slow := naiveDistances(tr)
		for i := range tr {
			if fast[i] != slow[i] && !(math.IsInf(fast[i], 1) && math.IsInf(slow[i], 1)) {
				t.Fatalf("trial %d access %d: tree %v, naive %v", trial, i, fast[i], slow[i])
			}
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h reuse.Histogram
	h.Add(0, 1)
	h.Add(1, 1)
	h.Add(math.Inf(1), 3)
	if h.Counts[0] != 2 {
		t.Errorf("bucket 0 = %v, want 2 (distances 0 and 1)", h.Counts[0])
	}
	if h.Cold() != 3 {
		t.Errorf("cold = %v, want 3", h.Cold())
	}
	if h.Total() != 5 {
		t.Errorf("total = %v, want 5", h.Total())
	}
	// Bucket bounds grow by 10^(1/10) and a distance lands at or under
	// its bucket's bound.
	for _, d := range []float64{2, 10, 99, 1e6} {
		i := reuse.BucketIndex(d)
		if reuse.BucketBound(i) < d {
			t.Errorf("distance %v: bucket %d bound %v below distance", d, i, reuse.BucketBound(i))
		}
		if i > 0 && reuse.BucketBound(i-1) >= d {
			t.Errorf("distance %v: previous bucket %d bound %v already covers it", d, i-1, reuse.BucketBound(i-1))
		}
	}
	// Huge finite distances clamp into the last finite bucket, not cold.
	var h2 reuse.Histogram
	h2.Add(1e12, 1)
	if h2.Cold() != 0 || h2.Counts[reuse.NumBuckets-1] != 1 {
		t.Errorf("1e12 landed in cold=%v last=%v", h2.Cold(), h2.Counts[reuse.NumBuckets-1])
	}
}

func TestMissRatio(t *testing.T) {
	var h reuse.Histogram
	h.Add(2, 6)   // hits in a cache of 64
	h.Add(500, 2) // misses
	h.AddCold(2)  // misses
	if got := h.MissRatio(64); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("miss ratio = %v, want 0.4", got)
	}
	if got := h.MissRatio(1e9); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("huge cache miss ratio = %v, want 0.2 (cold only)", got)
	}
}

const scanSrc = `
int a[100];
int main(void) {
	int i, pass, sum;
	sum = 0;
	for (pass = 0; pass < 3; pass++)
		for (i = 0; i < 100; i++)
			sum += a[i];
	return sum;
}`

func TestTableScan(t *testing.T) {
	cp := compile(t, scanSrc)
	tab := reuse.BuildTable(cp)
	if len(tab.Refs) != 1 {
		t.Fatalf("refs = %d, want 1 (a[i] only)", len(tab.Refs))
	}
	r := &tab.Refs[0]
	if r.Base == nil || r.Base.Name != "a" {
		t.Fatalf("base = %v, want object a", r.Base)
	}
	if r.Footprint != 100 {
		t.Errorf("footprint = %v, want 100", r.Footprint)
	}
	if r.Loop == nil || !r.Streaming {
		t.Errorf("loop=%v streaming=%v, want in-loop streaming", r.Loop != nil, r.Streaming)
	}
	if r.Blk == nil {
		t.Errorf("ref has no block attribution")
	}
}

func TestMeasureScan(t *testing.T) {
	tab, tr := trace(t, scanSrc)
	if len(tr) != 300 {
		t.Fatalf("trace length = %d, want 300", len(tr))
	}
	p := reuse.Measure(tab, tr)
	if p.Accesses() != 300 {
		t.Errorf("measured mass = %v, want 300", p.Accesses())
	}
	if p.Total.Cold() != 100 {
		t.Errorf("cold mass = %v, want 100 first touches", p.Total.Cold())
	}
	// Warm accesses all reuse at distance 99.
	warmBucket := reuse.BucketIndex(99)
	if p.Total.Counts[warmBucket] != 200 {
		t.Errorf("bucket %d = %v, want 200", warmBucket, p.Total.Counts[warmBucket])
	}
}

func TestEstimateMatchesMeasuredScan(t *testing.T) {
	// A small array scanned many times: the estimated access count
	// exceeds the footprint, so the model must emit warm mass at the
	// loop's working-set distance.
	cp := compile(t, `
int a[16];
int main(void) {
	int i, pass, sum;
	sum = 0;
	for (pass = 0; pass < 40; pass++)
		for (i = 0; i < 16; i++)
			sum += a[i];
	return sum;
}`)
	tab := reuse.BuildTable(cp)
	res, err := interp.Run(cp, interp.Options{MemRefs: tab.RefIndex()})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	measured := reuse.Measure(tab, res.MemTrace)
	if measured.Accesses() != 640 {
		t.Fatalf("measured mass = %v, want 640", measured.Accesses())
	}

	// The loop estimator compounds nesting depth, so its access count
	// exceeds the footprint and warm mass appears.
	est := core.EstimateAll(cp, callgraph.Build(cp.Sem), core.DefaultConfig())
	src, err := opt.EstimateSource(cp, est, "loop")
	if err != nil {
		t.Fatalf("source: %v", err)
	}
	static := reuse.Estimate(tab, src)
	if static.Accesses() <= 0 {
		t.Fatalf("static estimate has no mass")
	}
	// Static cold mass is capped by the footprint.
	if static.Total.Cold() > 16+1e-9 {
		t.Errorf("static cold mass %v exceeds footprint 16", static.Total.Cold())
	}
	// The model places warm mass at working set minus one — the exact
	// measured scan distance of 15, in the measured bucket.
	warm := reuse.BucketIndex(15)
	if static.Total.Counts[warm] <= 0 {
		t.Errorf("static estimate put no warm mass in bucket %d: %v", warm, static.Total.Vector())
	}
	// And the estimate beats the uniform baseline on total variation.
	uni := reuse.UniformBaseline(measured.Accesses(), 16)
	estTV := metric.TotalVariation(static.Total.Vector(), measured.Total.Vector())
	uniTV := metric.TotalVariation(uni.Total.Vector(), measured.Total.Vector())
	if estTV >= uniTV {
		t.Errorf("estimate TV %.3f not better than uniform %.3f", estTV, uniTV)
	}
}

func TestTiledLoopDistances(t *testing.T) {
	// A tile of 8 revisited 4 times before moving on: warm reuses stay
	// at distance 7 even though the array is 64 long.
	tab, tr := trace(t, `
int a[64];
int main(void) {
	int t, rep, i, sum;
	sum = 0;
	for (t = 0; t < 8; t++)
		for (rep = 0; rep < 4; rep++)
			for (i = 0; i < 8; i++)
				sum += a[t * 8 + i];
	return sum;
}`)
	p := reuse.Measure(tab, tr)
	if p.Accesses() != 256 {
		t.Fatalf("trace mass = %v, want 256", p.Accesses())
	}
	if p.Total.Cold() != 64 {
		t.Errorf("cold = %v, want 64", p.Total.Cold())
	}
	b := reuse.BucketIndex(7)
	if p.Total.Counts[b] != 192 {
		t.Errorf("tile-reuse bucket %d = %v, want 192", b, p.Total.Counts[b])
	}
}

func TestPointerAndStructRefs(t *testing.T) {
	tab, tr := trace(t, `
struct pt { int x; int y; };
struct pt ps[10];
int main(void) {
	int i, sum;
	int *p;
	sum = 0;
	for (i = 0; i < 10; i++)
		sum += ps[i].x + ps[i].y;
	p = &ps[0].x;
	for (i = 0; i < 20; i++)
		sum += p[i];
	return sum;
}`)
	// Refs: ps[i].x, ps[i].y (members through memory), p[i].
	if len(tab.Refs) != 3 {
		names := ""
		for i := range tab.Refs {
			names += " " + tab.Refs[i].Name()
		}
		t.Fatalf("refs = %d (%s), want 3", len(tab.Refs), names)
	}
	if len(tr) != 40 {
		t.Fatalf("trace length = %d, want 40", len(tr))
	}
	p := reuse.Measure(tab, tr)
	// 20 distinct ints: first loop touches all 20 cold; second loop
	// revisits them all at distance 19.
	if p.Total.Cold() != 20 {
		t.Errorf("cold = %v, want 20", p.Total.Cold())
	}
}

func TestUniformBaseline(t *testing.T) {
	p := reuse.UniformBaseline(1000, 100)
	if math.Abs(p.Accesses()-1000) > 1e-9 {
		t.Errorf("baseline mass = %v, want 1000", p.Accesses())
	}
	if p.Total.Cold() != 0 {
		t.Errorf("baseline cold = %v, want 0", p.Total.Cold())
	}
	top := reuse.BucketIndex(100)
	if p.Total.Counts[top] == 0 || p.Total.Counts[top+1] != 0 {
		t.Errorf("baseline mass not confined to buckets 0..%d", top)
	}
}

func TestTraceBudget(t *testing.T) {
	cp := compile(t, scanSrc)
	tab := reuse.BuildTable(cp)
	_, err := interp.Run(cp, interp.Options{MemRefs: tab.RefIndex(), MaxMemAccesses: 10})
	if err == nil {
		t.Fatalf("expected trace-budget error")
	}
}

func TestQuantile(t *testing.T) {
	var h reuse.Histogram
	h.Add(4, 10)
	if q := h.Quantile(0.5); q <= 0 || q > reuse.BucketBound(reuse.BucketIndex(4)) {
		t.Errorf("median = %v, want within bucket of distance 4", q)
	}
	h.AddCold(90)
	if !math.IsInf(h.Quantile(0.5), 1) {
		t.Errorf("median with dominant cold mass should be +Inf")
	}
}
