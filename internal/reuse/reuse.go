// Package reuse is the memory dimension of the paper's question: how
// close can a static estimate get to a measured profile? Where the rest
// of the repo estimates and measures *control* (block frequencies,
// invocation counts), this package estimates and measures *locality* —
// reuse-distance histograms, the machine-independent summary of a
// program's memory behavior (see "Static Reuse Profile Estimation for
// Array Applications" and the LLVM static-analysis follow-ups in
// PAPERS.md).
//
// The measured side consumes the interpreter's memory-access trace
// (interp.Options.MemRefs) and computes exact LRU stack distances with
// an O(n log n) tree algorithm (Distances, Measure). The static side
// derives estimated histograms from loop structure and array footprints,
// with the block-frequency estimator ladder (loop/smart/markov, via
// opt.Source) as the iteration-count oracle (Estimate). Both sides
// produce Profile values over the same log-spaced bucket ladder, scored
// against each other with metric.WeightMatch and metric.TotalVariation
// exactly as block frequencies are scored.
package reuse

import (
	"math"

	"staticest/internal/obs"
)

// NumBuckets is the number of finite distance buckets. The ladder is
// the system-wide log-spaced scheme (obs.LogBucketIndex, ten buckets
// per decade) anchored at distance 1: bucket 0 holds distances 0 and 1,
// finite bucket i has inclusive upper bound 10^(i/10), and bucket
// NumBuckets-1 (~10^7.9 distinct elements) absorbs every larger finite
// distance. Index NumBuckets is the cold bucket: first-ever touches,
// whose reuse distance is infinite.
const NumBuckets = 80

// distMin anchors the ladder at distance 1.
const distMin = 1.0

// Histogram is a reuse-distance histogram: mass per log-spaced distance
// bucket plus a cold (infinite-distance) bucket. Mass is float64 so
// measured counts and estimated expectations share one representation,
// like profile.Profile.
type Histogram struct {
	Counts [NumBuckets + 1]float64
}

// BucketBound returns the inclusive upper bound of finite bucket i.
func BucketBound(i int) float64 { return obs.LogBucketBound(i, distMin) }

// BucketIndex maps a finite distance to its bucket.
func BucketIndex(dist float64) int {
	return obs.LogBucketIndex(dist, distMin, NumBuckets-1)
}

// Add records mass at the given reuse distance (+Inf lands in the cold
// bucket).
func (h *Histogram) Add(dist, mass float64) {
	if math.IsInf(dist, 1) {
		h.Counts[NumBuckets] += mass
		return
	}
	h.Counts[BucketIndex(dist)] += mass
}

// AddCold records mass at infinite distance (first touches).
func (h *Histogram) AddCold(mass float64) { h.Counts[NumBuckets] += mass }

// Total returns the histogram's mass.
func (h *Histogram) Total() float64 {
	var t float64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Cold returns the mass at infinite distance.
func (h *Histogram) Cold() float64 { return h.Counts[NumBuckets] }

// Vector returns the bucket masses (cold bucket last) as a fresh slice —
// the form metric.WeightMatch and metric.TotalVariation consume.
func (h *Histogram) Vector() []float64 {
	out := make([]float64, NumBuckets+1)
	copy(out, h.Counts[:])
	return out
}

// Merge adds other's mass into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.Counts {
		h.Counts[i] += other.Counts[i]
	}
}

// Quantile estimates the q-quantile distance by linear interpolation
// inside the target bucket. Quantiles landing in the cold bucket report
// +Inf; an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * total
	var cum float64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		next := cum + c
		if next >= target {
			if i >= NumBuckets {
				return math.Inf(1)
			}
			lo := 0.0
			if i > 0 {
				lo = BucketBound(i - 1)
			}
			hi := BucketBound(i)
			frac := (target - cum) / c
			if frac < 0 {
				frac = 0
			}
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return math.Inf(1)
}

// MissRatio returns the fraction of accesses whose reuse distance
// exceeds a fully-associative LRU cache of the given capacity (in
// elements): the mass of every finite bucket whose upper bound exceeds
// the capacity, plus all cold mass. This is the classical
// reuse-distance-to-miss-ratio conversion, quantized to the bucket
// ladder (a bucket straddling the capacity counts as missing). Returns
// 0 for an empty histogram.
func (h *Histogram) MissRatio(capacity float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	miss := h.Counts[NumBuckets]
	for i := 0; i < NumBuckets; i++ {
		if BucketBound(i) > capacity {
			miss += h.Counts[i]
		}
	}
	return miss / total
}

// DefaultCapacity is the cache capacity (in elements) the cache-aware
// spill comparison and the serving layer report miss ratios at — small
// enough to differentiate the suite's working sets.
const DefaultCapacity = 64

// Profile is a reuse-distance profile: the whole-program histogram plus
// one histogram per reference site of the Table it was built against.
// Source names where the mass came from — "measured" for trace-derived
// profiles, the estimator name (loop/smart/markov) or "uniform" for
// static ones.
type Profile struct {
	Source string
	Total  Histogram
	PerRef []Histogram
}

// Accesses returns the profile's total mass (the traced access count
// for measured profiles, the estimated one for static profiles).
func (p *Profile) Accesses() float64 { return p.Total.Total() }

// Merge adds other's mass into p (used to pool the traces of several
// inputs). The profiles must be built against the same Table.
func (p *Profile) Merge(other *Profile) {
	p.Total.Merge(&other.Total)
	for i := range p.PerRef {
		if i < len(other.PerRef) {
			p.PerRef[i].Merge(&other.PerRef[i])
		}
	}
}
