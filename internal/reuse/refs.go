package reuse

import (
	"staticest/internal/cast"
	"staticest/internal/cfg"
	"staticest/internal/ctypes"
)

// Ref is one static memory-reference site: a scalar-typed array
// subscript, pointer dereference, or through-memory member access. The
// table deliberately excludes address computations (operands of &,
// array-typed subscripts that merely decay) and direct scalar variable
// accesses, so a Ref corresponds one-to-one with a runtime load or
// store the interpreter can trace.
type Ref struct {
	ID   int32
	Func int        // index into Sem.Funcs
	Expr cast.Expr  // the Index / Unary(Deref) / Member node
	Blk  *cfg.Block // block evaluating the reference; nil if unreachable

	// Base is the root array or pointer variable the address is formed
	// from, when syntactically evident (a[i], a[i].f, s.t[i]); nil for
	// dereference chains whose target object is unknown.
	Base *cast.Object
	// ElemSize is the byte size of the accessed element.
	ElemSize int64
	// Footprint is the number of addressable elements of the base object
	// (its declared byte size over the element stride) — the maximum
	// possible reuse distance within the object. 0 when unknown (pointer
	// bases).
	Footprint float64

	// Loop is the innermost enclosing loop statement, nil outside loops,
	// and Loops is the full enclosing-loop stack (outermost first).
	// Streaming reports whether the reference's address depends on a
	// variable the innermost loop's body modifies — the address moves
	// across iterations (a streaming scan) rather than revisiting one
	// element.
	Loop      cast.Stmt
	Loops     []cast.Stmt
	Streaming bool

	// NVLoop is the innermost enclosing loop whose own induction does
	// not move the reference's address (each address variable is
	// attributed to the innermost loop storing it): bmat[i][k] inside
	// loops i, j, k re-touches its elements once per j iteration, so
	// NVLoop is the j loop and the reuse distance is the working set of
	// one j iteration. Nil when every enclosing loop advances the
	// address (a pure scan re-touches only across whole-nest reruns).
	NVLoop cast.Stmt
}

// Name renders the reference's source expression.
func (r *Ref) Name() string { return cast.ExprString(r.Expr) }

// Table is the program's reference sites in deterministic order
// (function order, then source pre-order within each function), plus
// the loop metadata the static model consumes.
type Table struct {
	Refs  []Ref
	index map[cast.Expr]int32

	// LoopCond maps a loop statement to its CFG condition block, whose
	// estimated frequency yields the loop's trip and entry counts.
	LoopCond map[cast.Stmt]*cfg.Block
	// ConstTrips maps a loop to its syntactically constant trip count
	// (for (i = 0; i < 100; i++) → 100); absent when the bound is not
	// a compile-time constant. The static model prefers these over the
	// estimators' generic loop multiplier.
	ConstTrips map[cast.Stmt]float64
}

// RefIndex returns the expr→ID map in the form interp.Options.MemRefs
// consumes.
func (t *Table) RefIndex() map[cast.Expr]int32 { return t.index }

// BuildTable discovers every traceable memory reference in the program
// and classifies each against its loop context.
func BuildTable(cp *cfg.Program) *Table {
	t := &Table{
		index:      make(map[cast.Expr]int32),
		LoopCond:   make(map[cast.Stmt]*cfg.Block),
		ConstTrips: make(map[cast.Stmt]float64),
	}

	// Loop context per candidate node, via a nesting-aware AST walk.
	loopsOf := make(map[cast.Expr][]cast.Stmt)
	for fi, fd := range cp.Sem.Funcs {
		if fd.Body == nil {
			continue
		}
		walkLoopExprs(fd.Body, nil, func(e cast.Expr, loops []cast.Stmt) {
			collectRefs(e, func(node cast.Expr) {
				if _, dup := t.index[node]; dup {
					return
				}
				loopsOf[node] = loops
				id := int32(len(t.Refs))
				t.index[node] = id
				t.Refs = append(t.Refs, Ref{ID: id, Func: fi, Expr: node})
			})
		})
	}

	// Loop metadata: condition blocks (via branch-site IDs) and
	// syntactically constant trip counts.
	for _, g := range cp.Graphs {
		for _, blk := range g.Blocks {
			if blk.Term != cfg.TermCond || blk.BranchSite < 0 || blk.BranchSite >= len(cp.Sem.BranchSites) {
				continue
			}
			site := cp.Sem.BranchSites[blk.BranchSite]
			if site.Stmt != nil && site.Stmt.IsLoop() {
				t.LoopCond[site.Stmt] = blk
			}
		}
	}

	// Block attribution from the CFG: map every expression node attached
	// to a block back to that block (the core.SiteLocations idiom).
	for fi, g := range cp.Graphs {
		for _, blk := range g.Blocks {
			attach := func(e cast.Expr) {
				cast.WalkExpr(e, func(x cast.Expr) bool {
					if id, ok := t.index[x]; ok && t.Refs[id].Func == fi && t.Refs[id].Blk == nil {
						t.Refs[id].Blk = blk
					}
					return true
				})
			}
			for _, s := range blk.Stmts {
				for _, e := range cast.StmtExprs(s) {
					attach(e)
				}
			}
			attach(blk.Cond)
			attach(blk.Tag)
			attach(blk.RetVal)
		}
	}

	// Shape: base object, element size, footprint, streaming.
	stored := make(map[cast.Stmt]map[*cast.Object]bool)
	for i := range t.Refs {
		r := &t.Refs[i]
		r.Loops = loopsOf[r.Expr]
		if n := len(r.Loops); n > 0 {
			r.Loop = r.Loops[n-1]
		}
		classify(r)
		if r.Loop != nil {
			storedIn := func(L cast.Stmt) map[*cast.Object]bool {
				st, ok := stored[L]
				if !ok {
					st = cast.StoredObjects(L)
					stored[L] = st
				}
				return st
			}
			r.Streaming = addrVaries(r.Expr, storedIn(r.Loop))

			// Attribute each address variable to the innermost loop
			// that stores it; NVLoop is the innermost loop owning none
			// of them.
			unclaimed := addrVars(r.Expr)
			for j := len(r.Loops) - 1; j >= 0; j-- {
				L := r.Loops[j]
				st := storedIn(L)
				owns := false
				for v := range unclaimed {
					if st[v] {
						owns = true
						delete(unclaimed, v)
					}
				}
				if !owns {
					r.NVLoop = L
					break
				}
			}
		}
		for _, L := range r.Loops {
			if _, seen := t.ConstTrips[L]; !seen {
				if c := constTrips(L); c > 0 {
					t.ConstTrips[L] = c
				} else {
					t.ConstTrips[L] = 0
				}
			}
		}
	}
	for L, c := range t.ConstTrips {
		if c == 0 {
			delete(t.ConstTrips, L)
		}
	}
	return t
}

// constTrips recognizes the canonical counted loop
// for (i = c0; i <op> c1; i += step) with literal bounds and returns
// its trip count, or 0 when the loop is not of that shape.
func constTrips(s cast.Stmt) float64 {
	f, ok := s.(*cast.For)
	if !ok || f.Init == nil || f.Cond == nil || f.Post == nil {
		return 0
	}
	init, ok := f.Init.(*cast.Assign)
	if !ok || init.Op != cast.Plain {
		return 0
	}
	iv, ok := init.L.(*cast.Ident)
	if !ok || iv.Obj == nil {
		return 0
	}
	start, ok := intConst(init.R)
	if !ok {
		return 0
	}
	cond, ok := f.Cond.(*cast.Binary)
	if !ok {
		return 0
	}
	cv, ok := cond.X.(*cast.Ident)
	if !ok || cv.Obj != iv.Obj {
		return 0
	}
	bound, ok := intConst(cond.Y)
	if !ok {
		return 0
	}
	step := stepOf(f.Post, iv.Obj)
	if step == 0 {
		return 0
	}
	var span int64
	switch cond.Op {
	case cast.Lt:
		span = bound - start
	case cast.Le:
		span = bound - start + 1
	case cast.Gt:
		span = start - bound
	case cast.Ge:
		span = start - bound + 1
	default:
		return 0
	}
	if step < 0 {
		step = -step
	}
	if span <= 0 {
		return 0
	}
	trips := (span + step - 1) / step
	return float64(trips)
}

// stepOf returns the signed literal step the post expression applies to
// the induction variable, or 0 if unrecognized.
func stepOf(post cast.Expr, iv *cast.Object) int64 {
	switch x := post.(type) {
	case *cast.Postfix:
		if id, ok := x.X.(*cast.Ident); ok && id.Obj == iv {
			if x.Inc {
				return 1
			}
			return -1
		}
	case *cast.Unary:
		if id, ok := x.X.(*cast.Ident); ok && id.Obj == iv {
			switch x.Op {
			case cast.PreInc:
				return 1
			case cast.PreDec:
				return -1
			}
		}
	case *cast.Assign:
		id, ok := x.L.(*cast.Ident)
		if !ok || id.Obj != iv {
			return 0
		}
		c, ok := intConst(x.R)
		if !ok || c == 0 {
			return 0
		}
		switch x.Op {
		case cast.AddEq:
			return c
		case cast.SubEq:
			return -c
		}
	}
	return 0
}

// fixedAddr reports whether a reference's address names one fixed
// element: an array subscripted by a compile-time constant (pat[0]),
// or a member selection off such an element. Whatever the surrounding
// control flow, every execution rehits the same location, so its reuse
// distances stay short.
func fixedAddr(e cast.Expr) bool {
	switch x := e.(type) {
	case *cast.Index:
		if _, ok := intConst(x.I); !ok {
			return false
		}
		if _, ok := x.X.(*cast.Ident); ok {
			return true
		}
		return fixedAddr(x.X)
	case *cast.Member:
		if x.Arrow {
			return false
		}
		return fixedAddr(x.X)
	}
	return false
}

// intConst evaluates integer literals, negated literals, enum
// constants, and casts of those.
func intConst(e cast.Expr) (int64, bool) {
	switch x := e.(type) {
	case *cast.IntLit:
		return int64(x.Val), true
	case *cast.Unary:
		if x.Op == cast.Neg {
			if v, ok := intConst(x.X); ok {
				return -v, true
			}
		}
	case *cast.Ident:
		if x.Obj != nil && x.Obj.Kind == cast.ObjEnumConst {
			return x.Obj.EnumVal, true
		}
	case *cast.CastExpr:
		return intConst(x.X)
	}
	return 0, false
}

// walkLoopExprs visits every statement-attached expression with its
// enclosing-loop stack (outermost first). A for loop's init runs once
// in the outer context; its condition and post run per-iteration.
func walkLoopExprs(s cast.Stmt, loops []cast.Stmt, fn func(e cast.Expr, loops []cast.Stmt)) {
	push := func(l cast.Stmt) []cast.Stmt {
		return append(append([]cast.Stmt{}, loops...), l)
	}
	switch x := s.(type) {
	case nil:
	case *cast.Block:
		for _, c := range x.Stmts {
			walkLoopExprs(c, loops, fn)
		}
	case *cast.If:
		fn(x.Cond, loops)
		walkLoopExprs(x.Then, loops, fn)
		walkLoopExprs(x.Else, loops, fn)
	case *cast.While:
		in := push(x)
		fn(x.Cond, in)
		walkLoopExprs(x.Body, in, fn)
	case *cast.DoWhile:
		in := push(x)
		fn(x.Cond, in)
		walkLoopExprs(x.Body, in, fn)
	case *cast.For:
		if x.Init != nil {
			fn(x.Init, loops)
		}
		in := push(x)
		if x.Cond != nil {
			fn(x.Cond, in)
		}
		if x.Post != nil {
			fn(x.Post, in)
		}
		walkLoopExprs(x.Body, in, fn)
	case *cast.Switch:
		fn(x.Tag, loops)
		for _, c := range x.Cases {
			for _, cs := range c.Stmts {
				walkLoopExprs(cs, loops, fn)
			}
		}
	case *cast.Labeled:
		walkLoopExprs(x.Stmt, loops, fn)
	default:
		for _, e := range cast.StmtExprs(s) {
			fn(e, loops)
		}
	}
}

// collectRefs emits every traceable reference node under e in
// pre-order. The direct operand of & is skipped — &a[i] computes an
// address without touching memory — but expressions nested inside it
// (the subscript of &a[b[j]]) are still visited.
func collectRefs(e cast.Expr, emit func(cast.Expr)) {
	var walk func(e cast.Expr, addrOf bool)
	walk = func(e cast.Expr, addrOf bool) {
		if e == nil {
			return
		}
		if !addrOf && isRefNode(e) {
			emit(e)
		}
		switch x := e.(type) {
		case *cast.Unary:
			walk(x.X, x.Op == cast.Addr)
		case *cast.Postfix:
			walk(x.X, false)
		case *cast.Binary:
			walk(x.X, false)
			walk(x.Y, false)
		case *cast.Logical:
			walk(x.X, false)
			walk(x.Y, false)
		case *cast.Cond:
			walk(x.C, false)
			walk(x.Then, false)
			walk(x.Else, false)
		case *cast.Assign:
			walk(x.L, false)
			walk(x.R, false)
		case *cast.Call:
			walk(x.Fun, false)
			for _, a := range x.Args {
				walk(a, false)
			}
		case *cast.Index:
			walk(x.X, false)
			walk(x.I, false)
		case *cast.Member:
			walk(x.X, false)
		case *cast.CastExpr:
			walk(x.X, false)
		case *cast.Comma:
			walk(x.X, false)
			walk(x.Y, false)
		}
	}
	walk(e, false)
}

// isRefNode reports whether e is a scalar-typed memory access the
// interpreter evaluates as a load or store target. Array- and
// struct-typed subscripts are address computations (they decay or feed
// an enclosing member access) and direct member accesses on plain
// struct variables are frame-resident scalars; both are excluded.
func isRefNode(e cast.Expr) bool {
	ty := e.Type()
	if ty == nil || !ty.IsScalar() {
		return false
	}
	switch x := e.(type) {
	case *cast.Index:
		return true
	case *cast.Unary:
		return x.Op == cast.Deref
	case *cast.Member:
		return x.Arrow || throughMemory(x.X)
	}
	return false
}

// throughMemory reports whether a member-access base chain passes
// through an indexed or dereferenced object (a[i].f) rather than
// naming a plain variable (s.f).
func throughMemory(e cast.Expr) bool {
	for {
		switch x := e.(type) {
		case *cast.Index:
			return true
		case *cast.Unary:
			return x.Op == cast.Deref
		case *cast.Member:
			if x.Arrow {
				return true
			}
			e = x.X
		case *cast.CastExpr:
			e = x.X
		default:
			return false
		}
	}
}

// classify fills Base, ElemSize, and Footprint from the reference's
// address expression.
func classify(r *Ref) {
	r.ElemSize = typeSize(r.Expr.Type())
	switch x := r.Expr.(type) {
	case *cast.Index:
		r.Base = rootBase(x.X)
		r.Footprint = baseFootprint(r.Base, r.ElemSize)
	case *cast.Member:
		if !x.Arrow {
			r.Base = rootBase(x.X)
			// One field per element: the footprint is the element count
			// of the base, i.e. its size over the element-struct stride.
			r.Footprint = baseFootprint(r.Base, typeSize(x.X.Type()))
		}
	case *cast.Unary:
		r.Base = rootBase(x.X)
		r.Footprint = baseFootprint(r.Base, r.ElemSize)
	}
}

func typeSize(t *ctypes.Type) int64 {
	if t == nil {
		return 1
	}
	if s := t.Size(); s > 0 {
		return s
	}
	return 1
}

// rootBase strips subscripts, non-arrow members, and casts down to the
// named object the address is formed from, or nil when the chain
// passes through a pointer dereference or arrow access.
func rootBase(e cast.Expr) *cast.Object {
	for {
		switch x := e.(type) {
		case *cast.Ident:
			if x.Obj != nil && x.Obj.Kind != cast.ObjFunc {
				return x.Obj
			}
			return nil
		case *cast.Index:
			e = x.X
		case *cast.Member:
			if x.Arrow {
				return nil
			}
			e = x.X
		case *cast.CastExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// baseFootprint is the element count of a declared array base; 0 for
// pointer or unknown bases (the object's extent is not static).
func baseFootprint(base *cast.Object, stride int64) float64 {
	if base == nil || base.Type == nil || base.Type.Kind != ctypes.Array {
		return 0
	}
	if stride <= 0 {
		stride = 1
	}
	n := base.Type.Size() / stride
	if n < 1 {
		n = 1
	}
	return float64(n)
}

// addrVaries reports whether the reference's address expression reads
// any variable the loop stores — the syntactic signature of an address
// that moves across iterations.
func addrVaries(ref cast.Expr, stored map[*cast.Object]bool) bool {
	for v := range addrVars(ref) {
		if stored[v] {
			return true
		}
	}
	return false
}

// addrVars collects every variable the reference's address expression
// reads (the array/pointer base and any subscript components).
func addrVars(ref cast.Expr) map[*cast.Object]bool {
	var addr []cast.Expr
	switch x := ref.(type) {
	case *cast.Index:
		addr = []cast.Expr{x.X, x.I}
	case *cast.Member:
		addr = []cast.Expr{x.X}
	case *cast.Unary:
		addr = []cast.Expr{x.X}
	}
	vars := make(map[*cast.Object]bool)
	for _, a := range addr {
		cast.WalkExpr(a, func(e cast.Expr) bool {
			if id, ok := e.(*cast.Ident); ok && id.Obj != nil {
				vars[id.Obj] = true
			}
			return true
		})
	}
	return vars
}
