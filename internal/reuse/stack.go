package reuse

import (
	"math"

	"staticest/internal/interp"
)

// Distances computes the LRU stack distance of every access in the
// trace: the number of distinct other addresses touched since the last
// access to the same address, or +Inf for a first touch. This is the
// classic O(n log n) tree formulation (Bennett & Kruskal / Olken): a
// Fenwick tree over time slots holds a 1 at the most recent access time
// of each currently-live address, so the distance of an access at time
// i whose address was last touched at time j is the number of marks in
// (j, i), i.e. the distinct addresses touched strictly between them.
func Distances(trace []interp.MemAccess) []float64 {
	out := make([]float64, len(trace))
	last := make(map[uint64]int, 1024)
	f := newFenwick(len(trace))
	for i := range trace {
		addr := trace[i].Addr
		if j, ok := last[addr]; ok {
			out[i] = float64(f.sum(i-1) - f.sum(j))
			f.add(j, -1)
		} else {
			out[i] = math.Inf(1)
		}
		f.add(i, 1)
		last[addr] = i
	}
	return out
}

// Distinct returns the number of distinct addresses in the trace.
func Distinct(trace []interp.MemAccess) int {
	seen := make(map[uint64]struct{}, 1024)
	for i := range trace {
		seen[trace[i].Addr] = struct{}{}
	}
	return len(seen)
}

// Measure folds a trace into a measured reuse profile against the
// table: every access contributes unit mass at its stack distance to
// the whole-program histogram and to its reference site's histogram.
func Measure(t *Table, trace []interp.MemAccess) *Profile {
	p := &Profile{Source: "measured", PerRef: make([]Histogram, len(t.Refs))}
	d := Distances(trace)
	for i := range trace {
		p.Total.Add(d[i], 1)
		if ref := trace[i].Ref; ref >= 0 && int(ref) < len(p.PerRef) {
			p.PerRef[ref].Add(d[i], 1)
		}
	}
	return p
}

// fenwick is a 1-indexed binary indexed tree over [0, n).
type fenwick struct {
	t []int64
}

func newFenwick(n int) *fenwick { return &fenwick{t: make([]int64, n+1)} }

func (f *fenwick) add(i int, d int64) {
	for i++; i < len(f.t); i += i & -i {
		f.t[i] += d
	}
}

// sum returns the prefix sum over [0, i]; sum(-1) is 0.
func (f *fenwick) sum(i int) int64 {
	var s int64
	for i++; i > 0; i -= i & -i {
		s += f.t[i]
	}
	return s
}
