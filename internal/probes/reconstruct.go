package probes

import (
	"fmt"

	"staticest/internal/cfg"
	"staticest/internal/profile"
)

// Escape records one stack frame that was still active when exit()
// ended the run: the function's current block was counted on entry but
// never flowed out through a terminator arc. The reconstructor restores
// conservation by adding one unit of flow from that block to the
// virtual exit node.
type Escape struct {
	Func  int
	Block int
}

// Vector is the raw output of a sparse-instrumentation run.
type Vector struct {
	// Counts is the probe vector, indexed by Plan probe indices.
	Counts []float64
	// Escapes lists the frames unwound by exit(), outermost first
	// (empty for runs that return from main normally).
	Escapes []Escape
}

// Increments is the total number of counter increments the run
// performed (each probe bump adds exactly 1).
func (v *Vector) Increments() float64 {
	var t float64
	for _, c := range v.Counts {
		t += c
	}
	return t
}

// Reconstruct recovers the complete profile of a sparse run: every
// block count, function invocation count, branch outcome, switch-arm
// count, and call-site count, plus the simulated cycle total, exactly
// as full instrumentation would have reported them. optFactor mirrors
// interp.Options.OptFactor (per-function cycle cost scaling); nil means
// every function costs 1.0 per block statement, the default.
func Reconstruct(plan *Plan, vec *Vector, optFactor map[int]float64) (*profile.Profile, error) {
	if vec == nil {
		return nil, fmt.Errorf("probes: nil probe vector")
	}
	if len(vec.Counts) != plan.NumProbes {
		return nil, fmt.Errorf("probes: vector has %d counters, plan wants %d",
			len(vec.Counts), plan.NumProbes)
	}
	blocksPerFunc, numSites, numBranches, switchArms := cfg.ProfileShape(plan.prog)
	p := profile.New(blocksPerFunc, numSites, numBranches, switchArms)

	escapes := make(map[int][]int) // funcIdx -> escaped block IDs
	for _, e := range vec.Escapes {
		if e.Func < 0 || e.Func >= len(plan.Funcs) {
			return nil, fmt.Errorf("probes: escape in unknown function %d", e.Func)
		}
		escapes[e.Func] = append(escapes[e.Func], e.Block)
	}

	for fi := range plan.Funcs {
		flows, err := solveFunc(plan, fi, vec.Counts, escapes[fi])
		if err != nil {
			return nil, err
		}
		fillProfile(plan, fi, flows, p)
	}

	// Call sites: derived from block counts where proven safe, counted
	// directly otherwise.
	for id := range plan.Sites {
		s := &plan.Sites[id]
		if s.Class == SiteDerived {
			p.CallSiteCounts[id] = p.BlockCounts[s.Func][s.Block]
		} else if s.Probe >= 0 {
			p.CallSiteCounts[id] = vec.Counts[s.Probe]
		}
	}

	// Simulated cycles: each block execution costs 1 + len(Stmts),
	// scaled by the per-function optimization factor.
	for fi, g := range plan.prog.Graphs {
		factor := 1.0
		if f, ok := optFactor[fi]; ok {
			factor = f
		}
		for _, blk := range g.Blocks {
			p.Cycles += p.BlockCounts[fi][blk.ID] * float64(1+len(blk.Stmts)) * factor
		}
	}
	return p, nil
}

// solveFunc recovers every arc flow of one function. Probed arcs are
// read from the vector; forest arcs are solved by peeling leaves of the
// flow-conservation system (each node's inflow equals its outflow once
// escape flow to the virtual exit is accounted for).
func solveFunc(plan *Plan, fi int, counts []float64, escaped []int) ([]float64, error) {
	fp := &plan.Funcs[fi]
	nNodes := len(plan.prog.Graphs[fi].Blocks) + 1
	exit := nNodes - 1

	flows := make([]float64, len(fp.Arcs))
	solved := make([]bool, len(fp.Arcs))
	// net[v] accumulates known inflow minus known outflow.
	net := make([]float64, nNodes)
	// incident[v] lists unsolved arcs touching v; degree[v] counts them.
	incident := make([][]int32, nNodes)
	degree := make([]int, nNodes)

	apply := func(i int, f float64) {
		if f == 0 {
			f = 0 // normalize the -0.0 a balanced node can produce
		}
		flows[i], solved[i] = f, true
		net[fp.Arcs[i].To] += f
		net[fp.Arcs[i].From] -= f
	}
	for i, a := range fp.Arcs {
		if a.Probe >= 0 {
			apply(i, counts[a.Probe])
			continue
		}
		if a.From == a.To {
			// A self-loop is never on the forest; defensive only.
			return nil, fmt.Errorf("probes: self-loop arc on spanning forest (func %d)", fi)
		}
		incident[a.From] = append(incident[a.From], int32(i))
		incident[a.To] = append(incident[a.To], int32(i))
		degree[a.From]++
		degree[a.To]++
	}
	for _, blk := range escaped {
		if blk < 0 || blk >= exit {
			return nil, fmt.Errorf("probes: escape from unknown block %d (func %d)", blk, fi)
		}
		net[blk]--
		net[exit]++
	}

	// Leaf peeling over the spanning forest.
	queue := make([]int, 0, nNodes)
	for v := 0; v < nNodes; v++ {
		if degree[v] == 1 {
			queue = append(queue, v)
		}
	}
	remaining := 0
	for _, s := range solved {
		if !s {
			remaining++
		}
	}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if degree[v] != 1 {
			continue
		}
		var ai int32 = -1
		for _, i := range incident[v] {
			if !solved[i] {
				ai = i
				break
			}
		}
		if ai < 0 {
			continue
		}
		a := fp.Arcs[ai]
		// Choose the flow that balances v; the other endpoint absorbs it.
		if a.To == v {
			apply(int(ai), -net[v])
		} else {
			apply(int(ai), net[v])
		}
		remaining--
		degree[v]--
		other := a.From
		if other == v {
			other = a.To
		}
		degree[other]--
		if degree[other] == 1 {
			queue = append(queue, other)
		}
	}
	if remaining != 0 {
		return nil, fmt.Errorf("probes: %d unsolved forest arcs in function %d (cycle in forest?)",
			remaining, fi)
	}
	return flows, nil
}

// fillProfile converts one function's arc flows into profile counts.
func fillProfile(plan *Plan, fi int, flows []float64, p *profile.Profile) {
	fp := &plan.Funcs[fi]
	g := plan.prog.Graphs[fi]
	exit := len(g.Blocks)

	// Block counts are arc inflows (the virtual entry arc delivers the
	// invocation flow to the entry block).
	for i, a := range fp.Arcs {
		if a.To != exit {
			p.BlockCounts[fi][a.To] += flows[i]
		}
	}
	p.FuncCalls[fi] = flows[fp.EntryArc]

	for _, blk := range g.Blocks {
		switch blk.Term {
		case cfg.TermCond:
			if blk.BranchSite >= 0 && len(blk.Succs) == 2 {
				p.BranchTaken[blk.BranchSite] = flows[fp.SuccArc[blk.ID][0]]
				p.BranchNot[blk.BranchSite] = flows[fp.SuccArc[blk.ID][1]]
			}
		case cfg.TermSwitch:
			if blk.SwitchSite >= 0 {
				arms := p.SwitchArm[blk.SwitchSite]
				for slot := range blk.Succs {
					if slot < len(arms) {
						arms[slot] = flows[fp.SuccArc[blk.ID][slot]]
					}
				}
			}
		}
	}
}
