// Package probes implements optimal profiling instrumentation in the
// Knuth (1973) / Ball-Larus (1994) style: instead of counting every
// basic block, branch, switch arm, and call site, the planner selects a
// sparse set of counters from which the complete profile is recovered
// exactly.
//
// Per function, the CFG is viewed as a flow circulation: a virtual exit
// node collects every return, and a virtual exit→entry arc carries the
// invocation count, so flow is conserved at every node (inflow = block
// execution count = outflow). The planner weights each arc with the
// paper's smart static estimates (internal/core) and computes a
// maximum-weight spanning forest; only the off-forest arcs get probe
// counters, placing the runtime cost on the arcs predicted coldest. The
// reconstructor solves the forest arcs by peeling leaves of the flow
// conservation system, then derives every profile quantity:
//
//   - block counts     = arc inflow
//   - invocations      = virtual exit→entry arc flow
//   - branch outcomes  = flow on the two conditional arcs
//   - switch arms      = flow on each dispatch arc
//   - call-site counts = containing-block count for sites proven to
//     execute exactly once per block execution; a dedicated counter
//     otherwise (short-circuit guards, ternaries, sites following a
//     possible mid-block exit(), sizeof operands, global initializers)
//
// exit() terminates a run with every active frame mid-block, which
// would break conservation; the sparse interpreter therefore records
// the escaping frames (one (function, block) pair each), and the
// reconstructor adds a unit of flow from each recorded block to the
// exit node before solving.
package probes

import (
	"math"

	"staticest/internal/cfg"
	"staticest/internal/core"
	"staticest/internal/graphs"
	"staticest/internal/obs"
)

// ArcKind classifies a planned CFG arc.
type ArcKind int

// Arc kinds.
const (
	// ArcSucc is a real control-flow arc From → From.Succs[Slot].
	ArcSucc ArcKind = iota
	// ArcExit connects a returning block (TermReturn, or a pruned
	// dead-end TermJump with no successors, which the interpreter treats
	// as a return) to the virtual exit node.
	ArcExit
	// ArcEntry is the virtual exit → entry arc whose flow is the
	// function's invocation count. It is always kept on the spanning
	// forest, so invocations cost no counter increments.
	ArcEntry
)

// Arc is one arc of a function's instrumentation graph.
type Arc struct {
	From int // block ID (ArcEntry: the virtual exit node)
	To   int // block ID (ArcExit: the virtual exit node)
	Slot int // successor slot for ArcSucc; -1 otherwise
	Kind ArcKind
	// Probe is the index of this arc's counter in the probe vector, or
	// -1 when the arc lies on the spanning forest and its flow is
	// reconstructed.
	Probe int32
	// Weight is the static frequency estimate used for placement.
	Weight float64
}

// FuncPlan is the probe plan of one function.
type FuncPlan struct {
	Arcs []Arc
	// EntryArc indexes the virtual exit→entry arc in Arcs.
	EntryArc int

	// SuccProbe[blockID][slot] is the probe index of the arc taken when
	// the block transfers to its slot-th successor, or -1 for forest
	// arcs. SuccArc holds the arc index for the same pair.
	SuccProbe [][]int32
	SuccArc   [][]int32
	// ExitProbe[blockID] / ExitArc[blockID] describe the block's arc to
	// the virtual exit node (-1 when the block does not return).
	ExitProbe []int32
	ExitArc   []int32
}

// SiteClass says how a call site's count is obtained in sparse mode.
type SiteClass uint8

// Site classes.
const (
	// SiteDerived sites execute exactly once per execution of their
	// containing block; their count is the reconstructed block count.
	SiteDerived SiteClass = iota
	// SiteProbed sites keep a dedicated counter: conditionally evaluated
	// sites (&&/|| right operands, ?: arms), sites that follow a call
	// dispatch in their block's evaluation order (an exit() in that call
	// would end the run between the block being counted and the site
	// executing), unevaluated sizeof operands, and sites in global
	// initializers, which run outside any block.
	SiteProbed
)

// SitePlan is the plan for one numbered call site.
type SitePlan struct {
	Class SiteClass
	// Func and Block locate the containing block of a derived site.
	Func, Block int
	// Probe is the counter index of a probed site, or -1.
	Probe int32
}

// Plan is a whole-program probe placement.
type Plan struct {
	prog *cfg.Program

	Funcs []FuncPlan
	Sites []SitePlan
	// SiteProbe[siteID] duplicates Sites[siteID].Probe as a flat array
	// for the interpreter's hot path.
	SiteProbe []int32

	// NumProbes is the probe vector length (arc probes + site probes).
	NumProbes int
	// TotalArcs and ProbedArcs count real CFG arcs (virtual entry arcs
	// excluded) and the subset carrying probes, across all functions.
	TotalArcs, ProbedArcs int
	// DerivedSites counts call sites whose counters were eliminated.
	DerivedSites int
}

// Program returns the CFG program the plan was built for.
func (p *Plan) Program() *cfg.Program { return p.prog }

// ArcReduction is the fraction of CFG arcs that need no probe.
func (p *Plan) ArcReduction() float64 {
	if p.TotalArcs == 0 {
		return 0
	}
	return 1 - float64(p.ProbedArcs)/float64(p.TotalArcs)
}

// Density reports the fraction of one function's real CFG arcs that
// carry a probe counter (0 for a function with no arcs).
func (p *Plan) Density(funcIndex int) float64 {
	fp := &p.Funcs[funcIndex]
	total, probed := 0, 0
	for _, a := range fp.Arcs {
		if a.Kind == ArcEntry {
			continue
		}
		total++
		if a.Probe >= 0 {
			probed++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(probed) / float64(total)
}

// Record publishes the plan's placement statistics as gauges: arc
// totals, the probed subset, call-site classification, and the spread
// of per-function counter density. No-op on a nil observer.
func (p *Plan) Record(o *obs.Observer) {
	if o == nil {
		return
	}
	o.Gauge("probes_arcs_total").Set(float64(p.TotalArcs))
	o.Gauge("probes_arcs_probed").Set(float64(p.ProbedArcs))
	o.Gauge("probes_arc_reduction").Set(p.ArcReduction())
	o.Gauge("probes_counters_total").Set(float64(p.NumProbes))
	o.Gauge("probes_sites_total").Set(float64(len(p.Sites)))
	o.Gauge("probes_sites_derived").Set(float64(p.DerivedSites))
	if len(p.Funcs) == 0 {
		return
	}
	lo, hi, sum := math.Inf(1), math.Inf(-1), 0.0
	for fi := range p.Funcs {
		d := p.Density(fi)
		lo = math.Min(lo, d)
		hi = math.Max(hi, d)
		sum += d
	}
	o.Gauge("probes_func_density_min").Set(lo)
	o.Gauge("probes_func_density_max").Set(hi)
	o.Gauge("probes_func_density_mean").Set(sum / float64(len(p.Funcs)))
}

// Weights supplies the static arc-frequency estimates steering probe
// placement. Placement is exact under any weights; good weights only
// move the counters onto colder arcs.
type Weights struct {
	// BlockFreq[funcIndex][blockID] is the estimated per-entry execution
	// frequency of a block. Nil (or a missing function) means uniform.
	BlockFreq [][]float64
	// Pred supplies branch and switch-arm probabilities. Nil means
	// 50/50 branches and uniform arms.
	Pred *core.Predictions
}

// SmartWeights derives placement weights from the paper's smart
// estimators: AST-walk block frequencies refined by the branch and
// switch predictors.
func SmartWeights(cp *cfg.Program, conf core.Config) *Weights {
	pred := core.Predict(cp, conf)
	bf := make([][]float64, len(cp.Graphs))
	for i, g := range cp.Graphs {
		bf[i] = core.IntraAST(g, pred, conf, true).BlockFreq
	}
	return &Weights{BlockFreq: bf, Pred: pred}
}

// BuildPlan computes the probe placement for a program. w may be nil,
// which yields uniform weights (still exact, just less optimized).
func BuildPlan(cp *cfg.Program, w *Weights) *Plan {
	if w == nil {
		w = &Weights{}
	}
	p := &Plan{prog: cp, Funcs: make([]FuncPlan, len(cp.Graphs))}
	for fi, g := range cp.Graphs {
		p.planFunc(fi, g, w)
	}
	p.planSites()
	return p
}

// planFunc builds one function's arc list, spanning forest, and probe
// tables, appending probe indices to the global counter space.
func (p *Plan) planFunc(fi int, g *cfg.Graph, w *Weights) {
	nBlocks := len(g.Blocks)
	exit := nBlocks // virtual exit node ID

	var bf []float64
	if fi < len(w.BlockFreq) {
		bf = w.BlockFreq[fi]
	}
	blockWeight := func(id int) float64 {
		if id < len(bf) {
			if f := bf[id]; !math.IsNaN(f) && !math.IsInf(f, 0) && f >= 0 {
				return f
			}
		}
		return 1
	}

	fp := &p.Funcs[fi]
	fp.SuccProbe = make([][]int32, nBlocks)
	fp.SuccArc = make([][]int32, nBlocks)
	fp.ExitProbe = make([]int32, nBlocks)
	fp.ExitArc = make([]int32, nBlocks)
	for _, blk := range g.Blocks {
		fp.ExitProbe[blk.ID] = -1
		fp.ExitArc[blk.ID] = -1
	}

	addArc := func(a Arc) int32 {
		fp.Arcs = append(fp.Arcs, a)
		return int32(len(fp.Arcs) - 1)
	}
	for _, blk := range g.Blocks {
		returns := blk.Term == cfg.TermReturn ||
			(blk.Term == cfg.TermJump && len(blk.Succs) == 0)
		if returns {
			fp.ExitArc[blk.ID] = addArc(Arc{
				From: blk.ID, To: exit, Slot: -1, Kind: ArcExit,
				Probe: -1, Weight: blockWeight(blk.ID),
			})
			continue
		}
		probs := arcProbs(blk, w.Pred)
		fp.SuccProbe[blk.ID] = make([]int32, len(blk.Succs))
		fp.SuccArc[blk.ID] = make([]int32, len(blk.Succs))
		for slot, succ := range blk.Succs {
			fp.SuccArc[blk.ID][slot] = addArc(Arc{
				From: blk.ID, To: succ.ID, Slot: slot, Kind: ArcSucc,
				Probe: -1, Weight: blockWeight(blk.ID) * probs[slot],
			})
		}
	}
	// The virtual invocation arc, forced onto the forest by an infinite
	// weight: invocations are then always derived, never counted.
	fp.EntryArc = int(addArc(Arc{
		From: exit, To: g.Entry.ID, Slot: -1, Kind: ArcEntry,
		Probe: -1, Weight: math.Inf(1),
	}))

	edges := make([]graphs.WeightedEdge, len(fp.Arcs))
	for i, a := range fp.Arcs {
		edges[i] = graphs.WeightedEdge{U: a.From, V: a.To, Weight: a.Weight}
	}
	inForest := graphs.MaxSpanningForest(nBlocks+1, edges)
	for i := range fp.Arcs {
		if fp.Arcs[i].Kind != ArcEntry {
			p.TotalArcs++
		}
		if inForest[i] {
			continue
		}
		fp.Arcs[i].Probe = int32(p.NumProbes)
		p.NumProbes++
		p.ProbedArcs++
	}
	for _, blk := range g.Blocks {
		for slot := range fp.SuccProbe[blk.ID] {
			fp.SuccProbe[blk.ID][slot] = fp.Arcs[fp.SuccArc[blk.ID][slot]].Probe
		}
		if ai := fp.ExitArc[blk.ID]; ai >= 0 {
			fp.ExitProbe[blk.ID] = fp.Arcs[ai].Probe
		}
	}
}

// arcProbs returns the outgoing-arc probabilities of a non-returning
// block under the given predictions (uniform fallbacks throughout).
func arcProbs(blk *cfg.Block, pred *core.Predictions) []float64 {
	n := len(blk.Succs)
	probs := make([]float64, n)
	switch blk.Term {
	case cfg.TermCond:
		pt := 0.5
		if pred != nil && blk.BranchSite >= 0 && blk.BranchSite < len(pred.Branch) {
			pt = pred.Branch[blk.BranchSite].ProbTrue
		}
		if n == 2 {
			probs[0], probs[1] = pt, 1-pt
			return probs
		}
	case cfg.TermSwitch:
		if pred != nil && blk.SwitchSite >= 0 && blk.SwitchSite < len(pred.Switch) {
			if arm := pred.Switch[blk.SwitchSite]; len(arm) == n {
				copy(probs, arm)
				return probs
			}
		}
	case cfg.TermJump:
		if n == 1 {
			probs[0] = 1
			return probs
		}
	}
	for i := range probs {
		probs[i] = 1 / float64(n)
	}
	return probs
}

// planSites classifies every call site and assigns counters to the
// probed ones.
func (p *Plan) planSites() {
	sp := p.prog.Sem
	p.Sites = make([]SitePlan, len(sp.CallSites))
	p.SiteProbe = make([]int32, len(sp.CallSites))
	for i := range p.Sites {
		// Sites not located in any block (global initializers) stay
		// probed by default.
		p.Sites[i] = SitePlan{Class: SiteProbed, Func: -1, Block: -1, Probe: -1}
	}
	for fi, g := range p.prog.Graphs {
		for _, blk := range g.Blocks {
			classifyBlockSites(fi, blk, p.Sites)
		}
	}
	for i := range p.Sites {
		if p.Sites[i].Class == SiteDerived {
			p.DerivedSites++
			p.SiteProbe[i] = -1
			continue
		}
		p.Sites[i].Probe = int32(p.NumProbes)
		p.SiteProbe[i] = p.Sites[i].Probe
		p.NumProbes++
	}
}
