package probes

import (
	"staticest/internal/cast"
	"staticest/internal/cfg"
)

// classifyBlockSites walks one block in the interpreter's evaluation
// order and decides, for every call site in it, whether its count can
// be derived from the block count or needs a dedicated counter.
//
// A site is derivable exactly when its counter increment is reached
// once per block execution, unconditionally. The interpreter increments
// a site's counter after evaluating the call's arguments and before
// dispatching the callee, so two things can decouple a site from its
// block count:
//
//  1. conditional evaluation: the right operand of && / ||, either arm
//     of ?:, and sizeof operands (never evaluated at all);
//  2. a preceding call dispatch: any call dispatched earlier in the
//     block may terminate the run (exit(), directly or transitively)
//     after the block was counted but before this site's increment.
//
// Only the first call dispatched in a block, when unconditional, is
// therefore derivable — everything after it keeps a counter.
func classifyBlockSites(funcIdx int, blk *cfg.Block, sites []SitePlan) {
	w := &siteWalker{funcIdx: funcIdx, blockID: blk.ID, sites: sites}
	for _, s := range blk.Stmts {
		switch x := s.(type) {
		case *cast.ExprStmt:
			w.expr(x.X, false)
		case *cast.DeclStmt:
			for _, d := range x.Decls {
				w.init(d.Init, false)
			}
		}
	}
	// Terminator expressions evaluate after the block's statements.
	switch blk.Term {
	case cfg.TermCond:
		w.expr(blk.Cond, false)
	case cfg.TermSwitch:
		w.expr(blk.Tag, false)
	case cfg.TermReturn:
		w.expr(blk.RetVal, false)
	}
}

type siteWalker struct {
	funcIdx int
	blockID int
	sites   []SitePlan
	// hazard is set once any call has been dispatched: later sites in
	// this block can be cut short by an exit() inside that call.
	hazard bool
}

// expr visits e in the interpreter's evaluation order. cond marks
// subexpressions that may be skipped at runtime.
func (w *siteWalker) expr(e cast.Expr, cond bool) {
	switch x := e.(type) {
	case nil, *cast.IntLit, *cast.FloatLit, *cast.StrLit, *cast.Ident,
		*cast.SizeofType:
		// No subexpressions evaluated.
	case *cast.SizeofExpr:
		// The operand of sizeof is never evaluated; any call site inside
		// it keeps a (never-incremented) counter rather than inheriting
		// a nonzero block count.
	case *cast.Unary:
		w.expr(x.X, cond)
	case *cast.Postfix:
		w.expr(x.X, cond)
	case *cast.Binary:
		w.expr(x.X, cond)
		w.expr(x.Y, cond)
	case *cast.Logical:
		w.expr(x.X, cond)
		w.expr(x.Y, true) // short-circuit: may be skipped
	case *cast.Cond:
		w.expr(x.C, cond)
		w.expr(x.Then, true)
		w.expr(x.Else, true)
	case *cast.Assign:
		w.expr(x.L, cond)
		w.expr(x.R, cond)
	case *cast.Call:
		// Direct calls never evaluate Fun; indirect calls evaluate it
		// before the arguments.
		if x.Callee() == nil {
			w.expr(x.Fun, cond)
		}
		for _, a := range x.Args {
			w.expr(a, cond)
		}
		if x.SiteID >= 0 && x.SiteID < len(w.sites) {
			sp := &w.sites[x.SiteID]
			sp.Func, sp.Block = w.funcIdx, w.blockID
			if !cond && !w.hazard {
				sp.Class = SiteDerived
			}
		}
		// The dispatch happens here; anything evaluated later in this
		// block races against an exit() inside the callee.
		w.hazard = true
	case *cast.Index:
		w.expr(x.X, cond)
		w.expr(x.I, cond)
	case *cast.Member:
		w.expr(x.X, cond)
	case *cast.CastExpr:
		w.expr(x.X, cond)
	case *cast.Comma:
		w.expr(x.X, cond)
		w.expr(x.Y, cond)
	}
}

// init visits a local initializer the way storeLocalInit evaluates it.
func (w *siteWalker) init(in cast.Init, cond bool) {
	switch x := in.(type) {
	case nil:
	case *cast.ExprInit:
		w.expr(x.X, cond)
	case *cast.ListInit:
		for _, el := range x.Elems {
			w.init(el, cond)
		}
	}
}
