package probes

import (
	"fmt"

	"staticest/internal/profile"
)

// Diff compares two profiles field by field under exact float equality
// and returns a human-readable description of every mismatch (empty
// when the profiles are identical). It is the differential verifier
// behind the suite-wide sparse-vs-full test and the cprof -verify path.
func Diff(want, got *profile.Profile) []string {
	var diffs []string
	add := func(format string, args ...any) {
		if len(diffs) < 50 {
			diffs = append(diffs, fmt.Sprintf(format, args...))
		}
	}
	if len(want.BlockCounts) != len(got.BlockCounts) {
		add("function count: %d vs %d", len(want.BlockCounts), len(got.BlockCounts))
		return diffs
	}
	for f := range want.BlockCounts {
		w, g := want.BlockCounts[f], got.BlockCounts[f]
		if len(w) != len(g) {
			add("func %d block count: %d vs %d", f, len(w), len(g))
			continue
		}
		for b := range w {
			if w[b] != g[b] {
				add("func %d block %d: %v vs %v", f, b, w[b], g[b])
			}
		}
	}
	diffVec(&diffs, add, "invocations", want.FuncCalls, got.FuncCalls)
	diffVec(&diffs, add, "call site", want.CallSiteCounts, got.CallSiteCounts)
	diffVec(&diffs, add, "branch taken", want.BranchTaken, got.BranchTaken)
	diffVec(&diffs, add, "branch not", want.BranchNot, got.BranchNot)
	if len(want.SwitchArm) != len(got.SwitchArm) {
		add("switch count: %d vs %d", len(want.SwitchArm), len(got.SwitchArm))
	} else {
		for s := range want.SwitchArm {
			diffVec(&diffs, add, fmt.Sprintf("switch %d arm", s),
				want.SwitchArm[s], got.SwitchArm[s])
		}
	}
	if want.Cycles != got.Cycles {
		add("cycles: %v vs %v", want.Cycles, got.Cycles)
	}
	return diffs
}

func diffVec(diffs *[]string, add func(string, ...any), label string, w, g []float64) {
	if len(w) != len(g) {
		add("%s length: %d vs %d", label, len(w), len(g))
		return
	}
	for i := range w {
		if w[i] != g[i] {
			add("%s %d: %v vs %v", label, i, w[i], g[i])
		}
	}
}
