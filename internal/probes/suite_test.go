package probes_test

import (
	"testing"

	"staticest"
	"staticest/internal/suite"
)

// TestSuiteSparseExactness is the subsystem's differential acceptance
// test: for every suite program and every input, a sparse run's
// reconstructed profile must equal the full-instrumentation profile
// exactly (block counts, invocations, branch outcomes, switch arms,
// call-site counts, and cycles, under exact float comparison). It also
// checks the placement quality bar: averaged across the suite, probes
// must sit on strictly fewer than half of all CFG arcs.
func TestSuiteSparseExactness(t *testing.T) {
	if testing.Short() {
		t.Skip("suite differential test skipped in -short mode")
	}
	var reductionSum float64
	var programs int
	for _, p := range suite.Programs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			unit, err := p.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			plan := unit.PlanProbes()
			if plan.TotalArcs == 0 {
				t.Fatalf("plan has no arcs")
			}
			probed := float64(plan.ProbedArcs) / float64(plan.TotalArcs)
			t.Logf("%s: %d/%d arcs probed (%.1f%%), %d/%d call sites derived",
				p.Name, plan.ProbedArcs, plan.TotalArcs, 100*probed,
				plan.DerivedSites, len(plan.Sites))
			reductionSum += probed
			programs++

			for _, in := range p.Inputs {
				full, err := unit.Run(staticest.RunOptions{Args: in.Args, Stdin: in.Stdin})
				if err != nil {
					t.Fatalf("%s: full run: %v", in.Name, err)
				}
				sparse, err := unit.Run(staticest.RunOptions{
					Args: in.Args, Stdin: in.Stdin,
					Instrumentation: staticest.SparseInstrumentation,
					Plan:            plan,
				})
				if err != nil {
					t.Fatalf("%s: sparse run: %v", in.Name, err)
				}
				if sparse.ExitCode != full.ExitCode ||
					string(sparse.Output) != string(full.Output) {
					t.Errorf("%s: sparse run diverged behaviorally", in.Name)
				}
				rec, err := staticest.Reconstruct(plan, sparse.Probes, nil)
				if err != nil {
					t.Fatalf("%s: reconstruct: %v", in.Name, err)
				}
				diffs := staticest.DiffProfiles(full.Profile, rec)
				for _, d := range diffs {
					t.Errorf("%s: profile diff: %s", in.Name, d)
				}
				if len(diffs) > 0 {
					return
				}
			}
		})
	}
	if programs > 0 {
		avg := reductionSum / float64(programs)
		t.Logf("suite average: %.1f%% of arcs probed", 100*avg)
		if avg >= 0.5 {
			t.Errorf("average probed-arc fraction %.3f; want < 0.5", avg)
		}
	}
}
