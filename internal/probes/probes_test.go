package probes_test

import (
	"testing"

	"staticest/internal/cfg"
	"staticest/internal/core"
	"staticest/internal/cparse"
	"staticest/internal/interp"
	"staticest/internal/probes"
	"staticest/internal/sem"
)

func compile(t *testing.T, src string) *cfg.Program {
	t.Helper()
	file, err := cparse.ParseFile("test.c", []byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sem.Analyze(file)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	cp, err := cfg.Build(sp)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return cp
}

// checkExact runs src under full and sparse instrumentation (with both
// uniform and smart placement weights) and requires the reconstructed
// profile to equal the full one exactly.
func checkExact(t *testing.T, src string, opts interp.Options) *probes.Plan {
	t.Helper()
	cp := compile(t, src)
	full, err := interp.Run(cp, opts)
	if err != nil {
		t.Fatalf("full run: %v", err)
	}

	var last *probes.Plan
	for _, w := range []*probes.Weights{nil, probes.SmartWeights(cp, core.DefaultConfig())} {
		plan := probes.BuildPlan(cp, w)
		sOpts := opts
		sOpts.Instrumentation = interp.SparseInstrumentation
		sOpts.Plan = plan
		sparse, err := interp.Run(cp, sOpts)
		if err != nil {
			t.Fatalf("sparse run: %v", err)
		}
		if sparse.ExitCode != full.ExitCode {
			t.Errorf("exit code %d, want %d", sparse.ExitCode, full.ExitCode)
		}
		if string(sparse.Output) != string(full.Output) {
			t.Errorf("output diverged:\n%q\nwant:\n%q", sparse.Output, full.Output)
		}
		if sparse.Profile != nil {
			t.Errorf("sparse run returned a profile")
		}
		rec, err := probes.Reconstruct(plan, sparse.Probes, opts.OptFactor)
		if err != nil {
			t.Fatalf("reconstruct: %v", err)
		}
		for _, d := range probes.Diff(full.Profile, rec) {
			t.Errorf("profile diff: %s", d)
		}
		last = plan
	}
	return last
}

func TestExactLoopsBranchesCalls(t *testing.T) {
	plan := checkExact(t, `
int fib(int n) {
	if (n < 2) return n;
	return fib(n - 1) + fib(n - 2);
}
int classify(int x) {
	switch (x % 4) {
	case 0: return 10;
	case 1:
	case 2: return 20;
	default: return 30;
	}
}
int main(void) {
	int total = 0, i;
	for (i = 0; i < 12; i++) {
		total += fib(i % 7);
		total += classify(i);
		if (i % 3 == 0)
			total--;
	}
	printf("%d\n", total);
	return total % 5;
}`, interp.Options{})
	if plan.ProbedArcs >= plan.TotalArcs {
		t.Errorf("no arc savings: %d probes on %d arcs", plan.ProbedArcs, plan.TotalArcs)
	}
	if plan.NumProbes == 0 {
		t.Errorf("plan placed no probes at all")
	}
}

func TestExactFunctionPointers(t *testing.T) {
	checkExact(t, `
int add(int a, int b) { return a + b; }
int sub(int a, int b) { return a - b; }
int main(void) {
	int (*ops[2])(int, int);
	int i, acc = 0;
	ops[0] = add;
	ops[1] = sub;
	for (i = 0; i < 9; i++)
		acc = ops[i % 2](acc, i);
	printf("%d\n", acc);
	return 0;
}`, interp.Options{})
}

func TestExactExitMidBlock(t *testing.T) {
	// exit() fires three calls deep, mid-block, with several frames live:
	// every active frame was counted on block entry but never flowed out,
	// exercising the escape-trace reconstruction path.
	checkExact(t, `
int depth = 0;
void inner(int n) {
	depth = depth + 1;
	if (n == 0) {
		printf("bailing\n");
		exit(3);
	}
	inner(n - 1);
	depth = depth - 1;  /* unreached on the exiting path */
}
int main(void) {
	int i;
	for (i = 0; i < 5; i++)
		printf("%d\n", i);
	inner(4);
	printf("never\n");
	return 0;
}`, interp.Options{})
}

func TestExactExitInReturnExpression(t *testing.T) {
	// exit() inside a return-value expression: the returning block was
	// entered but must be recorded as escaped, not as having returned.
	checkExact(t, `
int boom(void) { exit(7); return 0; }
int f(int x) {
	return x + boom();
}
int main(void) {
	printf("%d\n", f(1));
	return 0;
}`, interp.Options{})
}

func TestExactConditionalCallSites(t *testing.T) {
	// Call sites under && / || / ?: execute fewer times than their block;
	// they must keep dedicated counters.
	checkExact(t, `
int calls = 0;
int bump(int v) { calls = calls + 1; return v; }
int main(void) {
	int i, acc = 0;
	for (i = 0; i < 10; i++) {
		if (i % 2 == 0 && bump(i) > 3)
			acc++;
		acc += (i % 3 == 0) ? bump(100) : i;
		if (i > 7 || bump(-1) < 0)
			acc++;
	}
	printf("%d %d\n", acc, calls);
	return 0;
}`, interp.Options{})
}

func TestExactCallAfterExitingCall(t *testing.T) {
	// The second call in the block never runs on the input where the
	// first one exits; it must not be derived from the block count.
	checkExact(t, `
int maybe_exit(int x) {
	if (x == 3) exit(1);
	return x;
}
int tally = 0;
int note(int v) { tally = tally + v; return tally; }
int main(void) {
	int i;
	for (i = 0; i < 10; i++)
		note(maybe_exit(i));
	return 0;
}`, interp.Options{})
}

func TestExactSizeofOperandNotCounted(t *testing.T) {
	// The call inside sizeof is never evaluated; its count must stay 0
	// rather than inheriting the block count.
	checkExact(t, `
int f(void) { return 1; }
int main(void) {
	int i, n = 0;
	for (i = 0; i < 4; i++)
		n += (int)sizeof(f());
	printf("%d\n", n);
	return 0;
}`, interp.Options{})
}

func TestExactOptFactorCycles(t *testing.T) {
	// Cycle reconstruction must honor per-function cost factors.
	checkExact(t, `
int work(int n) {
	int i, s = 0;
	for (i = 0; i < n; i++)
		s += i;
	return s;
}
int main(void) {
	printf("%d\n", work(50) + work(20));
	return 0;
}`, interp.Options{OptFactor: map[int]float64{0: 0.5}})
}

func TestEntryArcNeverProbed(t *testing.T) {
	cp := compile(t, `
int helper(int x) { return x * 2; }
int main(void) {
	int i, s = 0;
	for (i = 0; i < 3; i++) s += helper(i);
	return s;
}`)
	plan := probes.BuildPlan(cp, nil)
	for fi := range plan.Funcs {
		fp := &plan.Funcs[fi]
		if a := fp.Arcs[fp.EntryArc]; a.Kind != probes.ArcEntry || a.Probe >= 0 {
			t.Errorf("func %d: entry arc kind=%v probe=%d; want on-forest entry arc",
				fi, a.Kind, a.Probe)
		}
	}
}

func TestReconstructRejectsWrongVector(t *testing.T) {
	cp := compile(t, `int main(void) { return 0; }`)
	plan := probes.BuildPlan(cp, nil)
	if _, err := probes.Reconstruct(plan, nil, nil); err == nil {
		t.Errorf("nil vector accepted")
	}
	bad := &probes.Vector{Counts: make([]float64, plan.NumProbes+1)}
	if _, err := probes.Reconstruct(plan, bad, nil); err == nil {
		t.Errorf("wrong-length vector accepted")
	}
}

func TestSparseRunRequiresMatchingPlan(t *testing.T) {
	cp := compile(t, `int main(void) { return 0; }`)
	other := compile(t, `int main(void) { return 1; }`)
	if _, err := interp.Run(cp, interp.Options{
		Instrumentation: interp.SparseInstrumentation,
	}); err == nil {
		t.Errorf("sparse run without a plan accepted")
	}
	if _, err := interp.Run(cp, interp.Options{
		Instrumentation: interp.SparseInstrumentation,
		Plan:            probes.BuildPlan(other, nil),
	}); err == nil {
		t.Errorf("plan for a different program accepted")
	}
}
