package metric

import "testing"

// Edge-case coverage: degenerate vectors the evaluation actually feeds
// the metric (functions with one block, functions that never executed,
// zero-weight score lists).

func TestWeightMatchSingleElement(t *testing.T) {
	// A one-block function: both quantiles are the single block, so the
	// score is 1 regardless of the estimate's magnitude or the cutoff.
	for _, cutoff := range []float64{0.01, 0.05, 0.5, 1} {
		for _, est := range []float64{0, 1, 1e9} {
			if got := WeightMatch([]float64{est}, []float64{42}, cutoff); got != 1 {
				t.Errorf("WeightMatch([%g], [42], %g) = %g, want 1", est, cutoff, got)
			}
		}
	}
}

func TestWeightMatchZeroActual(t *testing.T) {
	// All-zero actual counts (a never-executed function) score 1:
	// there is no hot set to miss.
	if got := WeightMatch([]float64{3, 1, 2}, []float64{0, 0, 0}, 0.25); got != 1 {
		t.Errorf("zero actual weight: got %g, want 1", got)
	}
}

func TestWeightMatchZeroEstimate(t *testing.T) {
	// All-zero estimate: the estimated ranking is index order. With
	// cutoff 1/3 of {0,0,10}, the estimate picks index 0 (weight 0), the
	// actual quantile picks the 10 — score 0.
	if got := WeightMatch([]float64{0, 0, 0}, []float64{0, 0, 10}, 1.0/3); got != 0 {
		t.Errorf("zero estimate against concentrated actual: got %g, want 0", got)
	}
}

func TestWeightMatchCutoffAboveOne(t *testing.T) {
	// Cutoffs above 1 clamp to the full vector: everything is selected
	// by both rankings, so the score is 1 even for an inverted estimate.
	if got := WeightMatch([]float64{1, 2, 3}, []float64{3, 2, 1}, 2); got != 1 {
		t.Errorf("cutoff > 1: got %g, want 1", got)
	}
}

func TestWeightMatchLengthMismatch(t *testing.T) {
	if got := WeightMatch([]float64{1, 2}, []float64{1, 2, 3}, 0.5); got != 1 {
		t.Errorf("length mismatch: got %g, want 1 (degenerate)", got)
	}
	if got := WeightMatch(nil, nil, 0.5); got != 1 {
		t.Errorf("empty vectors: got %g, want 1", got)
	}
}

func TestWeightedMeanZeroWeights(t *testing.T) {
	// All-zero weights fall back to the unweighted mean rather than 0/0.
	got := WeightedMean([]float64{0.2, 0.8}, []float64{0, 0})
	if want := 0.5; got != want {
		t.Errorf("zero-weight WeightedMean = %g, want %g", got, want)
	}
}

func TestWeightedMeanSingle(t *testing.T) {
	if got := WeightedMean([]float64{0.7}, []float64{123}); got != 0.7 {
		t.Errorf("single-element WeightedMean = %g, want 0.7", got)
	}
	if got := WeightedMean([]float64{0.7}, nil); got != 0.7 {
		t.Errorf("single-element WeightedMean without weights = %g, want 0.7", got)
	}
}

func TestMissRateSingleSite(t *testing.T) {
	// One site, predicted taken, executed once in each direction.
	if got := MissRate([]bool{true}, []float64{1}, []float64{1}, nil); got != 0.5 {
		t.Errorf("single-site MissRate = %g, want 0.5", got)
	}
	// Skipping the only site leaves no dynamic branches: rate 0.
	if got := MissRate([]bool{true}, []float64{5}, []float64{5}, []bool{true}); got != 0 {
		t.Errorf("all-skipped MissRate = %g, want 0", got)
	}
}
