// Package metric implements the paper's evaluation measures: Wall's
// weight-matching metric (how much of the actual hot set an estimate's
// top quantile captures) and branch-prediction miss rates.
package metric

import "sort"

// WeightMatch scores an estimate against actual counts at the given
// cutoff fraction (0 < cutoff <= 1). Per the paper: k = cutoff × N items
// are selected from each ranking; when k is fractional the ⌈k⌉-th item is
// weighted by the fraction. The score is the actual weight captured by
// the estimated quantile divided by the actual weight of the actual
// quantile. Returns 1 for empty inputs or an all-zero actual vector
// (nothing to misrank).
func WeightMatch(estimate, actual []float64, cutoff float64) float64 {
	n := len(actual)
	if n == 0 || len(estimate) != n || cutoff <= 0 {
		return 1
	}
	totalActual := 0.0
	for _, v := range actual {
		totalActual += v
	}
	if totalActual == 0 {
		return 1
	}
	if cutoff > 1 {
		cutoff = 1
	}
	k := cutoff * float64(n)

	estWeight := quantileWeight(rankDesc(estimate), actual, k)
	actWeight := quantileWeight(rankDesc(actual), actual, k)
	if actWeight == 0 {
		return 1
	}
	score := estWeight / actWeight
	if score > 1 {
		score = 1 // fractional-boundary ties can nudge past 1
	}
	return score
}

// rankDesc returns item indices sorted by value descending; ties break by
// index for determinism.
func rankDesc(vals []float64) []int {
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return vals[idx[a]] > vals[idx[b]]
	})
	return idx
}

// quantileWeight sums actual weight over the first k ranked items,
// weighting the final partial item fractionally.
func quantileWeight(rank []int, actual []float64, k float64) float64 {
	whole := int(k)
	frac := k - float64(whole)
	w := 0.0
	for i := 0; i < whole && i < len(rank); i++ {
		w += actual[rank[i]]
	}
	if frac > 0 && whole < len(rank) {
		w += frac * actual[rank[whole]]
	}
	return w
}

// TotalVariation normalizes both vectors to unit mass and returns half
// their L1 distance — 0 for identical distributions, 1 for disjoint
// ones. A zero-mass vector is treated as uniform (matching the
// explain-report divergence, which this generalizes). Vectors of unequal
// length compare over the common prefix.
func TotalVariation(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	na, nb := normalizeMass(a[:n]), normalizeMass(b[:n])
	var tv float64
	for i := range na {
		d := na[i] - nb[i]
		if d < 0 {
			d = -d
		}
		tv += d
	}
	return tv / 2
}

func normalizeMass(v []float64) []float64 {
	out := make([]float64, len(v))
	var sum float64
	for _, x := range v {
		sum += x
	}
	if sum == 0 {
		for i := range out {
			out[i] = 1 / float64(len(v))
		}
		return out
	}
	for i, x := range v {
		out[i] = x / sum
	}
	return out
}

// WeightedMean averages scores with the given weights (the paper weights
// per-function scores by dynamic invocation counts). Zero total weight
// yields the unweighted mean.
func WeightedMean(scores, weights []float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	var sw, tw float64
	for i, s := range scores {
		w := 1.0
		if i < len(weights) {
			w = weights[i]
		}
		sw += s * w
		tw += w
	}
	if tw == 0 {
		for _, s := range scores {
			sw += s
		}
		return sw / float64(len(scores))
	}
	return sw / tw
}

// Mean is the unweighted average.
func Mean(scores []float64) float64 {
	if len(scores) == 0 {
		return 0
	}
	t := 0.0
	for _, s := range scores {
		t += s
	}
	return t / float64(len(scores))
}

// MissRate aggregates branch-prediction misses: predictions[i] is the
// predicted taken-direction of branch site i, taken/not are the dynamic
// outcome counts, and skip[i] excludes a site (constant conditions).
// The result is (mispredicted dynamic branches) / (total dynamic
// branches); 0 when no branches executed.
func MissRate(predictTaken []bool, taken, not []float64, skip []bool) float64 {
	var miss, total float64
	for i := range predictTaken {
		if skip != nil && skip[i] {
			continue
		}
		t, n := taken[i], not[i]
		total += t + n
		if predictTaken[i] {
			miss += n
		} else {
			miss += t
		}
	}
	if total == 0 {
		return 0
	}
	return miss / total
}

// PerfectStaticMissRate is the floor for any static scheme: each branch
// predicts its own majority direction, so the minority count is missed.
func PerfectStaticMissRate(taken, not []float64, skip []bool) float64 {
	var miss, total float64
	for i := range taken {
		if skip != nil && skip[i] {
			continue
		}
		t, n := taken[i], not[i]
		total += t + n
		if t < n {
			miss += t
		} else {
			miss += n
		}
	}
	if total == 0 {
		return 0
	}
	return miss / total
}
