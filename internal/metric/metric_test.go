package metric

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestWeightMatchPerfect(t *testing.T) {
	actual := []float64{10, 5, 3, 1}
	for _, cutoff := range []float64{0.25, 0.5, 0.75, 1.0} {
		if got := WeightMatch(actual, actual, cutoff); !approx(got, 1) {
			t.Errorf("self-match at %.2f = %g, want 1", cutoff, got)
		}
	}
}

func TestWeightMatchPaperExample(t *testing.T) {
	// Table 2 of the paper: 5 blocks, estimate picks the top block at
	// 20% and misses the third at 60% for 7/8.
	actual := []float64{3, 3, 2, 1, 0} // while, if, return1, incr, return2
	estimate := []float64{5, 4, 0.8, 4, 1}
	if got := WeightMatch(estimate, actual, 0.20); !approx(got, 1) {
		t.Errorf("20%% = %g, want 1", got)
	}
	if got := WeightMatch(estimate, actual, 0.60); !approx(got, 7.0/8.0) {
		t.Errorf("60%% = %g, want 0.875", got)
	}
}

func TestWeightMatchWorstCase(t *testing.T) {
	// The estimate ranks blocks exactly backwards; at 25% of 4 items it
	// picks the zero-weight one.
	actual := []float64{100, 0, 0, 0}
	estimate := []float64{0, 1, 2, 3}
	if got := WeightMatch(estimate, actual, 0.25); !approx(got, 0) {
		t.Errorf("inverted ranking = %g, want 0", got)
	}
}

func TestWeightMatchFractionalBoundary(t *testing.T) {
	// 3 items at 50% → k = 1.5: the second item weighs half.
	actual := []float64{4, 2, 0}
	estimate := []float64{1, 2, 3} // picks item2 (0), then half of item1 (2)
	want := (0 + 0.5*2) / (4 + 0.5*2)
	if got := WeightMatch(estimate, actual, 0.5); !approx(got, want) {
		t.Errorf("fractional = %g, want %g", got, want)
	}
}

func TestWeightMatchDegenerate(t *testing.T) {
	if got := WeightMatch(nil, nil, 0.5); got != 1 {
		t.Errorf("empty = %g", got)
	}
	if got := WeightMatch([]float64{1, 2}, []float64{0, 0}, 0.5); got != 1 {
		t.Errorf("all-zero actual = %g", got)
	}
	if got := WeightMatch([]float64{1}, []float64{5}, 2.0); !approx(got, 1) {
		t.Errorf("cutoff > 1 = %g", got)
	}
	if got := WeightMatch([]float64{1, 2}, []float64{5}, 0.5); got != 1 {
		t.Errorf("length mismatch should degrade to 1, got %g", got)
	}
}

// Property: the score is always in [0, 1], and a self-match is always 1.
func TestWeightMatchProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64, n uint8, cutNum uint8) bool {
		rng.Seed(seed)
		size := int(n%30) + 1
		cutoff := float64(cutNum%99+1) / 100
		actual := make([]float64, size)
		estimate := make([]float64, size)
		for i := range actual {
			actual[i] = float64(rng.Intn(100))
			estimate[i] = float64(rng.Intn(100))
		}
		s := WeightMatch(estimate, actual, cutoff)
		if s < 0 || s > 1 {
			return false
		}
		return approx(WeightMatch(actual, actual, cutoff), 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: scaling the estimate by any positive constant cannot change
// the score (only the ranking matters).
func TestWeightMatchScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64, kNum uint8) bool {
		rng.Seed(seed)
		n := rng.Intn(20) + 2
		k := float64(kNum%50+1) / 10
		actual := make([]float64, n)
		estimate := make([]float64, n)
		scaled := make([]float64, n)
		for i := range actual {
			actual[i] = float64(rng.Intn(50))
			estimate[i] = rng.Float64() * 100
			scaled[i] = estimate[i] * k
		}
		return approx(WeightMatch(estimate, actual, 0.3), WeightMatch(scaled, actual, 0.3))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMissRate(t *testing.T) {
	pred := []bool{true, false, true}
	taken := []float64{90, 20, 0}
	not := []float64{10, 80, 0}
	// site0: predict taken, miss 10; site1: predict not, miss 20; site2
	// never executes.
	if got := MissRate(pred, taken, not, nil); !approx(got, 30.0/200) {
		t.Errorf("miss rate = %g, want 0.15", got)
	}
	// Skipping site 0 leaves 20 misses of 100.
	if got := MissRate(pred, taken, not, []bool{true, false, false}); !approx(got, 0.2) {
		t.Errorf("skipped miss rate = %g, want 0.2", got)
	}
	if got := MissRate(nil, nil, nil, nil); got != 0 {
		t.Errorf("empty miss rate = %g", got)
	}
}

func TestPerfectStaticMissRate(t *testing.T) {
	taken := []float64{90, 20}
	not := []float64{10, 80}
	// Majority directions miss 10 + 20 of 200.
	if got := PerfectStaticMissRate(taken, not, nil); !approx(got, 0.15) {
		t.Errorf("PSP = %g, want 0.15", got)
	}
}

// Property: PSP is a lower bound for any predictor on the same counts.
func TestPSPLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		rng.Seed(seed)
		n := rng.Intn(12) + 1
		taken := make([]float64, n)
		not := make([]float64, n)
		pred := make([]bool, n)
		for i := range taken {
			taken[i] = float64(rng.Intn(100))
			not[i] = float64(rng.Intn(100))
			pred[i] = rng.Intn(2) == 0
		}
		return PerfectStaticMissRate(taken, not, nil) <= MissRate(pred, taken, not, nil)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWeightedMean(t *testing.T) {
	if got := WeightedMean([]float64{1, 0}, []float64{3, 1}); !approx(got, 0.75) {
		t.Errorf("weighted mean = %g, want 0.75", got)
	}
	if got := WeightedMean([]float64{0.2, 0.8}, []float64{0, 0}); !approx(got, 0.5) {
		t.Errorf("zero-weight mean = %g, want 0.5 (unweighted)", got)
	}
	if got := WeightedMean(nil, nil); got != 0 {
		t.Errorf("empty mean = %g", got)
	}
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3}); !approx(got, 2) {
		t.Errorf("mean = %g", got)
	}
	if got := Mean(nil); got != 0 {
		t.Errorf("empty mean = %g", got)
	}
}
