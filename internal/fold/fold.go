// Package fold evaluates constant expressions over the typed AST. The
// estimators use it to detect branch conditions that constant folding
// would decide at compile time: the paper predicts those branches but
// excludes them from miss-rate scoring.
package fold

import (
	"staticest/internal/cast"
	"staticest/internal/ctypes"
)

// Const is a compile-time constant value.
type Const struct {
	IsFloat bool
	I       int64
	F       float64
}

// Truthy reports whether the constant is non-zero.
func (c Const) Truthy() bool {
	if c.IsFloat {
		return c.F != 0
	}
	return c.I != 0
}

func intConst(v int64) Const     { return Const{I: v} }
func floatConst(v float64) Const { return Const{IsFloat: true, F: v} }

// Expr attempts to fold an expression to a constant.
func Expr(e cast.Expr) (Const, bool) {
	switch x := e.(type) {
	case *cast.IntLit:
		return intConst(int64(x.Val)), true
	case *cast.FloatLit:
		return floatConst(x.Val), true
	case *cast.SizeofType:
		return intConst(x.Of.Size()), true
	case *cast.SizeofExpr:
		if t := x.X.Type(); t != nil && t.Size() > 0 {
			return intConst(t.Size()), true
		}
		return Const{}, false
	case *cast.Unary:
		v, ok := Expr(x.X)
		if !ok {
			return Const{}, false
		}
		switch x.Op {
		case cast.Neg:
			if v.IsFloat {
				return floatConst(-v.F), true
			}
			return intConst(-v.I), true
		case cast.BitNot:
			if v.IsFloat {
				return Const{}, false
			}
			return intConst(^v.I), true
		case cast.LogNot:
			return intConst(b2i(!v.Truthy())), true
		}
		return Const{}, false
	case *cast.Logical:
		l, ok := Expr(x.X)
		if !ok {
			return Const{}, false
		}
		// C short-circuits, so a decided left side folds the whole thing.
		if x.AndAnd && !l.Truthy() {
			return intConst(0), true
		}
		if !x.AndAnd && l.Truthy() {
			return intConst(1), true
		}
		r, ok := Expr(x.Y)
		if !ok {
			return Const{}, false
		}
		return intConst(b2i(r.Truthy())), true
	case *cast.Cond:
		c, ok := Expr(x.C)
		if !ok {
			return Const{}, false
		}
		if c.Truthy() {
			return Expr(x.Then)
		}
		return Expr(x.Else)
	case *cast.CastExpr:
		v, ok := Expr(x.X)
		if !ok {
			return Const{}, false
		}
		switch {
		case x.To.IsFloat():
			if v.IsFloat {
				return v, true
			}
			return floatConst(float64(v.I)), true
		case x.To.IsInteger():
			if v.IsFloat {
				return intConst(int64(v.F)), true
			}
			return intConst(truncTo(v.I, x.To)), true
		}
		return Const{}, false
	case *cast.Comma:
		// Folding would discard side effects of X; only fold when X also
		// folds (i.e. is effect-free).
		if _, ok := Expr(x.X); !ok {
			return Const{}, false
		}
		return Expr(x.Y)
	case *cast.Binary:
		l, ok := Expr(x.X)
		if !ok {
			return Const{}, false
		}
		r, ok := Expr(x.Y)
		if !ok {
			return Const{}, false
		}
		return foldBinary(x.Op, l, r)
	}
	return Const{}, false
}

func foldBinary(op cast.BinaryOp, l, r Const) (Const, bool) {
	if l.IsFloat || r.IsFloat {
		lf, rf := l.asFloat(), r.asFloat()
		switch op {
		case cast.Add:
			return floatConst(lf + rf), true
		case cast.Sub:
			return floatConst(lf - rf), true
		case cast.Mul:
			return floatConst(lf * rf), true
		case cast.Div:
			if rf == 0 {
				return Const{}, false
			}
			return floatConst(lf / rf), true
		case cast.Lt:
			return intConst(b2i(lf < rf)), true
		case cast.Gt:
			return intConst(b2i(lf > rf)), true
		case cast.Le:
			return intConst(b2i(lf <= rf)), true
		case cast.Ge:
			return intConst(b2i(lf >= rf)), true
		case cast.Eq:
			return intConst(b2i(lf == rf)), true
		case cast.Ne:
			return intConst(b2i(lf != rf)), true
		}
		return Const{}, false
	}
	a, b := l.I, r.I
	switch op {
	case cast.Add:
		return intConst(a + b), true
	case cast.Sub:
		return intConst(a - b), true
	case cast.Mul:
		return intConst(a * b), true
	case cast.Div:
		if b == 0 {
			return Const{}, false
		}
		return intConst(a / b), true
	case cast.Rem:
		if b == 0 {
			return Const{}, false
		}
		return intConst(a % b), true
	case cast.And:
		return intConst(a & b), true
	case cast.Or:
		return intConst(a | b), true
	case cast.Xor:
		return intConst(a ^ b), true
	case cast.Shl:
		return intConst(a << (uint64(b) & 63)), true
	case cast.Shr:
		return intConst(a >> (uint64(b) & 63)), true
	case cast.Lt:
		return intConst(b2i(a < b)), true
	case cast.Gt:
		return intConst(b2i(a > b)), true
	case cast.Le:
		return intConst(b2i(a <= b)), true
	case cast.Ge:
		return intConst(b2i(a >= b)), true
	case cast.Eq:
		return intConst(b2i(a == b)), true
	case cast.Ne:
		return intConst(b2i(a != b)), true
	}
	return Const{}, false
}

func (c Const) asFloat() float64 {
	if c.IsFloat {
		return c.F
	}
	return float64(c.I)
}

func truncTo(v int64, t *ctypes.Type) int64 {
	switch t.Kind {
	case ctypes.Char:
		return int64(int8(v))
	case ctypes.UChar:
		return int64(uint8(v))
	case ctypes.Short:
		return int64(int16(v))
	case ctypes.UShort:
		return int64(uint16(v))
	case ctypes.Int:
		return int64(int32(v))
	case ctypes.UInt:
		return int64(uint32(v))
	}
	return v
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// BoolCond folds a branch condition, reporting (value, isConstant).
func BoolCond(e cast.Expr) (bool, bool) {
	c, ok := Expr(e)
	if !ok {
		return false, false
	}
	return c.Truthy(), true
}
