package fold_test

import (
	"testing"

	"staticest/internal/cast"
	"staticest/internal/cparse"
	"staticest/internal/fold"
)

// condOf parses a snippet and returns the condition of the first if in
// the only function.
func condOf(t *testing.T, cond string) cast.Expr {
	t.Helper()
	src := "int g; int f(int x, int *p) { if (" + cond + ") g = 1; return g; }"
	file, err := cparse.ParseFile("t.c", []byte(src))
	if err != nil {
		t.Fatalf("parse %q: %v", cond, err)
	}
	var ifStmt *cast.If
	cast.WalkStmt(file.Funcs[0].Body, func(s cast.Stmt) bool {
		if i, ok := s.(*cast.If); ok && ifStmt == nil {
			ifStmt = i
		}
		return true
	})
	if ifStmt == nil {
		t.Fatalf("no if in %q", cond)
	}
	return ifStmt.Cond
}

func TestFoldConstants(t *testing.T) {
	cases := []struct {
		cond    string
		isConst bool
		val     bool
	}{
		{"1", true, true},
		{"0", true, false},
		{"3 - 3", true, false},
		{"2 * 4 - 8 + 1", true, true},
		{"1 && 0", true, false},
		{"1 || 0", true, true},
		{"!5", true, false},
		{"~0", true, true},
		{"(1 + 2) == 3", true, true},
		{"1 ? 0 : 7", true, false},
		{"2 < 1", true, false},
		{"sizeof(int) == 4", true, true},
		{"sizeof(long) == 8", true, true},
		{"(char)257", true, true}, // truncates to 1
		{"(char)256", true, false},
		{"1.5 > 1.0", true, true},
		{"0.0", true, false},
		{"x", false, false},
		{"x == 1", false, false},
		{"x && 0", false, false}, // left side has effects? (x is pure but not constant)
		{"0 && x", true, false},  // short-circuit decides
		{"1 || x", true, true},
		{"5 / 0", false, false}, // division by zero never folds
		{"5 % 0", false, false},
	}
	for _, tc := range cases {
		cond := condOf(t, tc.cond)
		val, isConst := fold.BoolCond(cond)
		if isConst != tc.isConst {
			t.Errorf("%q: const = %v, want %v", tc.cond, isConst, tc.isConst)
			continue
		}
		if isConst && val != tc.val {
			t.Errorf("%q: value = %v, want %v", tc.cond, val, tc.val)
		}
	}
}

func TestFoldExprValues(t *testing.T) {
	cases := []struct {
		cond string
		want int64
	}{
		{"1 + 2", 3},
		{"10 % 3", 1},
		{"1 << 10", 1024},
		{"255 >> 4", 15},
		{"0xf0 | 0x0f", 255},
		{"0xff & 0x0f", 15},
		{"5 ^ 3", 6},
		{"-(4)", -4},
		{"7 <= 7", 1},
		{"'a'", 97},
	}
	for _, tc := range cases {
		c, ok := fold.Expr(condOf(t, tc.cond))
		if !ok {
			t.Errorf("%q did not fold", tc.cond)
			continue
		}
		if c.IsFloat || c.I != tc.want {
			t.Errorf("%q = %+v, want %d", tc.cond, c, tc.want)
		}
	}
}

func TestFoldFloat(t *testing.T) {
	c, ok := fold.Expr(condOf(t, "1.5 * 4.0"))
	if !ok || !c.IsFloat || c.F != 6.0 {
		t.Errorf("1.5*4.0 = %+v ok=%v", c, ok)
	}
	if !c.Truthy() {
		t.Error("6.0 should be truthy")
	}
	c, _ = fold.Expr(condOf(t, "(int)2.9"))
	if c.IsFloat || c.I != 2 {
		t.Errorf("(int)2.9 = %+v, want 2", c)
	}
}
