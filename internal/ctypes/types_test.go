package ctypes

import (
	"testing"
	"testing/quick"
)

func TestSizesAndAlignment(t *testing.T) {
	cases := []struct {
		t     *Type
		size  int64
		align int64
	}{
		{CharType, 1, 1},
		{UCharType, 1, 1},
		{ShortType, 2, 2},
		{IntType, 4, 4},
		{UIntType, 4, 4},
		{LongType, 8, 8},
		{FloatType, 4, 4},
		{DoubleType, 8, 8},
		{PointerTo(CharType), 8, 8},
		{ArrayOf(IntType, 10), 40, 4},
		{ArrayOf(ArrayOf(CharType, 3), 4), 12, 1},
	}
	for _, tc := range cases {
		if got := tc.t.Size(); got != tc.size {
			t.Errorf("%s size = %d, want %d", tc.t, got, tc.size)
		}
		if got := tc.t.Align(); got != tc.align {
			t.Errorf("%s align = %d, want %d", tc.t, got, tc.align)
		}
	}
}

func TestStructLayout(t *testing.T) {
	s := &StructInfo{Tag: "mix", Fields: []Field{
		{Name: "c", Type: CharType},
		{Name: "d", Type: DoubleType},
		{Name: "s", Type: ShortType},
		{Name: "p", Type: PointerTo(VoidType)},
	}}
	if err := s.Layout(); err != nil {
		t.Fatal(err)
	}
	wantOff := []int64{0, 8, 16, 24}
	for i, f := range s.Fields {
		if f.Offset != wantOff[i] {
			t.Errorf("field %s at %d, want %d", f.Name, f.Offset, wantOff[i])
		}
	}
	if s.Size != 32 || s.Align != 8 {
		t.Errorf("size/align = %d/%d, want 32/8", s.Size, s.Align)
	}
}

func TestStructLayoutIncompleteField(t *testing.T) {
	inner := &StructInfo{Tag: "inner"} // never laid out
	s := &StructInfo{Tag: "outer", Fields: []Field{
		{Name: "x", Type: &Type{Kind: Struct, Info: inner}},
	}}
	if err := s.Layout(); err == nil {
		t.Fatal("expected error for incomplete field")
	}
}

func TestEqual(t *testing.T) {
	info := &StructInfo{Tag: "s"}
	cases := []struct {
		a, b *Type
		want bool
	}{
		{IntType, IntType, true},
		{IntType, UIntType, false},
		{PointerTo(IntType), PointerTo(IntType), true},
		{PointerTo(IntType), PointerTo(CharType), false},
		{ArrayOf(IntType, 3), ArrayOf(IntType, 3), true},
		{ArrayOf(IntType, 3), ArrayOf(IntType, 4), false},
		{&Type{Kind: Struct, Info: info}, &Type{Kind: Struct, Info: info}, true},
		{&Type{Kind: Struct, Info: info}, &Type{Kind: Struct, Info: &StructInfo{Tag: "s"}}, false},
		{FuncOf(&Signature{Ret: IntType, Params: []*Type{CharType}}),
			FuncOf(&Signature{Ret: IntType, Params: []*Type{CharType}}), true},
		{FuncOf(&Signature{Ret: IntType, Params: []*Type{CharType}}),
			FuncOf(&Signature{Ret: IntType, Params: []*Type{IntType}}), false},
		{FuncOf(&Signature{Ret: IntType, Unknown: true}),
			FuncOf(&Signature{Ret: IntType, Params: []*Type{IntType}}), true},
	}
	for i, tc := range cases {
		if got := Equal(tc.a, tc.b); got != tc.want {
			t.Errorf("case %d: Equal(%s, %s) = %v", i, tc.a, tc.b, got)
		}
	}
}

func TestUsualArith(t *testing.T) {
	cases := []struct {
		a, b, want *Type
	}{
		{CharType, CharType, IntType},    // promotion
		{ShortType, UShortType, IntType}, // both promote to int
		{IntType, LongType, LongType},
		{IntType, UIntType, UIntType},
		{UIntType, LongType, LongType}, // long can hold uint
		{ULongType, LongType, ULongType},
		{IntType, FloatType, FloatType},
		{LongType, DoubleType, DoubleType},
		{FloatType, DoubleType, DoubleType},
	}
	for _, tc := range cases {
		if got := UsualArith(tc.a, tc.b); got.Kind != tc.want.Kind {
			t.Errorf("UsualArith(%s, %s) = %s, want %s", tc.a, tc.b, got, tc.want)
		}
		// Symmetry.
		if got := UsualArith(tc.b, tc.a); got.Kind != tc.want.Kind {
			t.Errorf("UsualArith(%s, %s) = %s, want %s", tc.b, tc.a, got, tc.want)
		}
	}
}

// Property: UsualArith is commutative and its result is at least as wide
// as both operands after promotion.
func TestUsualArithProperties(t *testing.T) {
	kinds := []Kind{Char, UChar, Short, UShort, Int, UInt, Long, ULong, Float, Double}
	f := func(ai, bi uint8) bool {
		a := Basic(kinds[int(ai)%len(kinds)])
		b := Basic(kinds[int(bi)%len(kinds)])
		r1, r2 := UsualArith(a, b), UsualArith(b, a)
		if r1.Kind != r2.Kind {
			return false
		}
		if r1.IsFloat() {
			return a.IsFloat() || b.IsFloat()
		}
		return r1.Size() >= Promote(a).Size() || b.IsFloat()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTypeStrings(t *testing.T) {
	cases := map[string]*Type{
		"int":           IntType,
		"char*":         PointerTo(CharType),
		"int[4][8]":     ArrayOf(ArrayOf(IntType, 8), 4),
		"unsigned long": ULongType,
		"int (*)(char*)": PointerTo(FuncOf(&Signature{
			Ret: IntType, Params: []*Type{PointerTo(CharType)},
		})),
	}
	for want, typ := range cases {
		if got := typ.String(); got != want {
			t.Errorf("String = %q, want %q", got, want)
		}
	}
}

func TestPredicates(t *testing.T) {
	if !UIntType.IsUnsigned() || IntType.IsUnsigned() {
		t.Error("IsUnsigned wrong")
	}
	if !PointerTo(VoidType).IsVoidPtr() || PointerTo(IntType).IsVoidPtr() {
		t.Error("IsVoidPtr wrong")
	}
	fp := PointerTo(FuncOf(&Signature{Ret: VoidType}))
	if !fp.IsFuncPtr() || PointerTo(IntType).IsFuncPtr() {
		t.Error("IsFuncPtr wrong")
	}
	if !FloatType.IsArith() || !IntType.IsScalar() || VoidType.IsScalar() {
		t.Error("arith/scalar predicates wrong")
	}
}
