// Package ctypes models the C subset's type system: scalar types,
// pointers, arrays, structs, enums, and function signatures, together
// with size/alignment/field-offset layout (LP64: int 4 bytes, long and
// pointers 8 bytes).
package ctypes

import (
	"fmt"
	"strings"
)

// Kind classifies a type.
type Kind int

// Type kinds.
const (
	Invalid Kind = iota
	Void
	Char  // signed 8-bit
	UChar // unsigned 8-bit
	Short
	UShort
	Int
	UInt
	Long
	ULong
	Float
	Double
	Ptr
	Array
	Struct
	Func
)

var kindNames = [...]string{
	Invalid: "invalid", Void: "void", Char: "char", UChar: "unsigned char",
	Short: "short", UShort: "unsigned short", Int: "int", UInt: "unsigned int",
	Long: "long", ULong: "unsigned long", Float: "float", Double: "double",
	Ptr: "ptr", Array: "array", Struct: "struct", Func: "func",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Field is a struct member with its computed byte offset.
type Field struct {
	Name   string
	Type   *Type
	Offset int64
}

// StructInfo carries the members and layout of a struct type. A struct
// parsed with a tag but no body is incomplete until defined.
type StructInfo struct {
	Tag      string
	Fields   []Field
	Size     int64
	Align    int64
	Complete bool
}

// FieldByName returns the field with the given name, or nil.
func (s *StructInfo) FieldByName(name string) *Field {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i]
		}
	}
	return nil
}

// Signature describes a function type.
type Signature struct {
	Ret      *Type
	Params   []*Type
	Variadic bool
	// Old-style declaration with unknown parameters, e.g. `int f();`.
	Unknown bool
}

// Type is a C type. Types are compared structurally with Equal; struct
// types compare by identity of their StructInfo.
type Type struct {
	Kind   Kind
	Elem   *Type       // Ptr, Array
	Len    int64       // Array
	Info   *StructInfo // Struct
	Sig    *Signature  // Func
	Const  bool        // const-qualified (informational)
	IsEnum bool        // an int that came from an enum declaration
}

// Singleton basic types. These are shared; never mutate them.
var (
	VoidType   = &Type{Kind: Void}
	CharType   = &Type{Kind: Char}
	UCharType  = &Type{Kind: UChar}
	ShortType  = &Type{Kind: Short}
	UShortType = &Type{Kind: UShort}
	IntType    = &Type{Kind: Int}
	UIntType   = &Type{Kind: UInt}
	LongType   = &Type{Kind: Long}
	ULongType  = &Type{Kind: ULong}
	FloatType  = &Type{Kind: Float}
	DoubleType = &Type{Kind: Double}
)

// Basic returns the shared singleton for a basic kind.
func Basic(k Kind) *Type {
	switch k {
	case Void:
		return VoidType
	case Char:
		return CharType
	case UChar:
		return UCharType
	case Short:
		return ShortType
	case UShort:
		return UShortType
	case Int:
		return IntType
	case UInt:
		return UIntType
	case Long:
		return LongType
	case ULong:
		return ULongType
	case Float:
		return FloatType
	case Double:
		return DoubleType
	}
	panic(fmt.Sprintf("ctypes.Basic: not a basic kind: %v", k))
}

// PointerTo returns a pointer type to elem.
func PointerTo(elem *Type) *Type { return &Type{Kind: Ptr, Elem: elem} }

// ArrayOf returns an array type of n elements of elem.
func ArrayOf(elem *Type, n int64) *Type { return &Type{Kind: Array, Elem: elem, Len: n} }

// FuncOf returns a function type with the given signature.
func FuncOf(sig *Signature) *Type { return &Type{Kind: Func, Sig: sig} }

// IsInteger reports whether t is an integer (including char and enum).
func (t *Type) IsInteger() bool {
	switch t.Kind {
	case Char, UChar, Short, UShort, Int, UInt, Long, ULong:
		return true
	}
	return false
}

// IsUnsigned reports whether t is an unsigned integer type.
func (t *Type) IsUnsigned() bool {
	switch t.Kind {
	case UChar, UShort, UInt, ULong:
		return true
	}
	return false
}

// IsFloat reports whether t is float or double.
func (t *Type) IsFloat() bool { return t.Kind == Float || t.Kind == Double }

// IsArith reports whether t is an arithmetic type.
func (t *Type) IsArith() bool { return t.IsInteger() || t.IsFloat() }

// IsScalar reports whether t is arithmetic or a pointer.
func (t *Type) IsScalar() bool { return t.IsArith() || t.Kind == Ptr }

// IsPtr reports whether t is a pointer.
func (t *Type) IsPtr() bool { return t.Kind == Ptr }

// IsVoidPtr reports whether t is void*.
func (t *Type) IsVoidPtr() bool { return t.Kind == Ptr && t.Elem.Kind == Void }

// IsFuncPtr reports whether t is a pointer to function.
func (t *Type) IsFuncPtr() bool { return t.Kind == Ptr && t.Elem.Kind == Func }

// Size returns the byte size of the type. Incomplete structs, void and
// function types have size 0.
func (t *Type) Size() int64 {
	switch t.Kind {
	case Char, UChar:
		return 1
	case Short, UShort:
		return 2
	case Int, UInt, Float:
		return 4
	case Long, ULong, Double, Ptr:
		return 8
	case Array:
		return t.Len * t.Elem.Size()
	case Struct:
		if t.Info != nil && t.Info.Complete {
			return t.Info.Size
		}
		return 0
	}
	return 0
}

// Align returns the byte alignment of the type.
func (t *Type) Align() int64 {
	switch t.Kind {
	case Array:
		return t.Elem.Align()
	case Struct:
		if t.Info != nil && t.Info.Complete {
			return t.Info.Align
		}
		return 1
	default:
		if s := t.Size(); s > 0 {
			return s
		}
		return 1
	}
}

// Layout computes field offsets, size, and alignment for the struct and
// marks it complete. It returns an error for fields of incomplete or
// zero-size type.
func (s *StructInfo) Layout() error {
	var off, align int64 = 0, 1
	for i := range s.Fields {
		f := &s.Fields[i]
		fsz := f.Type.Size()
		if fsz <= 0 {
			return fmt.Errorf("struct %s: field %s has incomplete type %s",
				s.Tag, f.Name, f.Type)
		}
		fal := f.Type.Align()
		off = alignUp(off, fal)
		f.Offset = off
		off += fsz
		if fal > align {
			align = fal
		}
	}
	s.Size = alignUp(off, align)
	if s.Size == 0 {
		s.Size = align // empty structs take one alignment unit
	}
	s.Align = align
	s.Complete = true
	return nil
}

func alignUp(n, a int64) int64 { return (n + a - 1) / a * a }

// Equal reports structural type equality. Struct types are equal iff they
// share the same StructInfo. Qualifiers are ignored.
func Equal(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case Ptr:
		return Equal(a.Elem, b.Elem)
	case Array:
		return a.Len == b.Len && Equal(a.Elem, b.Elem)
	case Struct:
		return a.Info == b.Info
	case Func:
		as, bs := a.Sig, b.Sig
		if as.Unknown || bs.Unknown {
			return Equal(as.Ret, bs.Ret)
		}
		if as.Variadic != bs.Variadic || len(as.Params) != len(bs.Params) {
			return false
		}
		if !Equal(as.Ret, bs.Ret) {
			return false
		}
		for i := range as.Params {
			if !Equal(as.Params[i], bs.Params[i]) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// String renders the type in C-ish syntax.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case Ptr:
		if t.Elem.Kind == Func {
			return t.Elem.sigString("(*)")
		}
		return t.Elem.String() + "*"
	case Array:
		// Render dimensions outermost-first, as C declarators read.
		base := t
		var dims string
		for base.Kind == Array {
			dims += fmt.Sprintf("[%d]", base.Len)
			base = base.Elem
		}
		return base.String() + dims
	case Struct:
		if t.Info != nil && t.Info.Tag != "" {
			return "struct " + t.Info.Tag
		}
		return "struct <anon>"
	case Func:
		return t.sigString("")
	default:
		return t.Kind.String()
	}
}

func (t *Type) sigString(name string) string {
	var b strings.Builder
	b.WriteString(t.Sig.Ret.String())
	b.WriteString(" ")
	b.WriteString(name)
	b.WriteString("(")
	if t.Sig.Unknown {
		b.WriteString("?")
	} else {
		for i, p := range t.Sig.Params {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(p.String())
		}
		if t.Sig.Variadic {
			if len(t.Sig.Params) > 0 {
				b.WriteString(", ")
			}
			b.WriteString("...")
		}
	}
	b.WriteString(")")
	return b.String()
}

// IntegerRank returns the C conversion rank used by the usual arithmetic
// conversions. Larger means wider.
func IntegerRank(k Kind) int {
	switch k {
	case Char, UChar:
		return 1
	case Short, UShort:
		return 2
	case Int, UInt:
		return 3
	case Long, ULong:
		return 4
	}
	return 0
}

// Promote applies the integer promotions: types narrower than int become
// int.
func Promote(t *Type) *Type {
	if t.IsInteger() && IntegerRank(t.Kind) < IntegerRank(Int) {
		return IntType
	}
	return t
}

// UsualArith applies the usual arithmetic conversions to a pair of
// arithmetic types and returns the common type.
func UsualArith(a, b *Type) *Type {
	if a.Kind == Double || b.Kind == Double {
		return DoubleType
	}
	if a.Kind == Float || b.Kind == Float {
		return FloatType
	}
	a, b = Promote(a), Promote(b)
	if a.Kind == b.Kind {
		return a
	}
	ra, rb := IntegerRank(a.Kind), IntegerRank(b.Kind)
	ua, ub := a.IsUnsigned(), b.IsUnsigned()
	switch {
	case ua == ub:
		if ra > rb {
			return a
		}
		return b
	case ua && ra >= rb:
		return a
	case ub && rb >= ra:
		return b
	case ua: // signed b has higher rank; it can represent all of a on LP64
		return b
	default:
		return a
	}
}
