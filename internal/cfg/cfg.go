// Package cfg builds per-function control-flow graphs from the analyzed
// AST. Blocks carry straight-line statements; terminators carry the
// branching structure (conditional jumps, switch dispatch, returns).
// The same graphs drive the interpreter/profiler, the Markov
// intra-procedural estimator, and the CFG dump tooling.
package cfg

import (
	"fmt"
	"strings"
	"sync"

	"staticest/internal/cast"
	"staticest/internal/sem"
)

// TermKind identifies a block terminator.
type TermKind int

// Terminator kinds.
const (
	TermJump   TermKind = iota // unconditional edge to Succs[0]
	TermCond                   // two-way branch: Succs[0] = true, Succs[1] = false
	TermSwitch                 // N-way: Succs[i] matches Cases[i]; last is default
	TermReturn                 // function exit
)

// BranchOrigin records which statement kind a conditional terminator came
// from; the estimators treat loop back-edges differently from if-branches.
type BranchOrigin int

// Branch origins.
const (
	FromIf BranchOrigin = iota
	FromWhile
	FromDoWhile
	FromFor
)

func (o BranchOrigin) String() string {
	switch o {
	case FromIf:
		return "if"
	case FromWhile:
		return "while"
	case FromDoWhile:
		return "do-while"
	case FromFor:
		return "for"
	}
	return "?"
}

// SwitchDispatch describes one switch arm of a TermSwitch terminator.
type SwitchDispatch struct {
	Vals      []int64
	IsDefault bool
}

// Block is a basic block.
type Block struct {
	ID    int
	Name  string // diagnostic label: "entry", "while.cond", ...
	Stmts []cast.Stmt

	Term   TermKind
	Succs  []*Block
	Preds  []*Block
	Cond   cast.Expr    // TermCond: the branch condition
	Origin BranchOrigin // TermCond: source construct
	// BranchSite is the sem-assigned branch-site ID for TermCond blocks
	// created from an if/while/do/for condition, else -1.
	BranchSite int
	// SwitchSite is the sem-assigned switch-site ID for TermSwitch, else -1.
	SwitchSite int
	Tag        cast.Expr // TermSwitch: the tag expression
	Cases      []SwitchDispatch
	RetVal     cast.Expr // TermReturn: value or nil

	// Anchor is the AST statement whose AST-walk frequency stands in for
	// this block when mapping AST-based estimates onto the CFG.
	Anchor cast.Stmt
}

// Graph is the CFG of one function.
type Graph struct {
	Fn     *cast.FuncDecl
	Blocks []*Block
	Entry  *Block
	// Exit is a synthetic sink that all TermReturn blocks conceptually
	// reach (not included in Blocks or frequencies).
}

// Program holds the CFGs of every function in an analyzed program.
type Program struct {
	Sem    *sem.Program
	Graphs []*Graph // parallel to Sem.Funcs
	ByFunc map[*cast.FuncDecl]*Graph

	// LoweredMu guards Lowered, the interpreter's lazily compiled
	// bytecode lowerings of this program. The cache is stored untyped
	// because cfg cannot import the bytecode package (internal/bc
	// compiles FROM cfg graphs); internal/interp owns the concrete type.
	LoweredMu sync.Mutex
	Lowered   any
}

// Build constructs control-flow graphs for every function.
func Build(sp *sem.Program) (*Program, error) {
	p := &Program{Sem: sp, ByFunc: make(map[*cast.FuncDecl]*Graph)}
	for _, fd := range sp.Funcs {
		g, err := buildFunc(fd)
		if err != nil {
			return nil, err
		}
		p.Graphs = append(p.Graphs, g)
		p.ByFunc[fd] = g
	}
	return p, nil
}

type builder struct {
	g      *Graph
	cur    *Block
	breaks []*Block // current break target stack
	conts  []*Block // current continue target stack
	labels map[string]*Block
	gotos  []pendingGoto
}

type pendingGoto struct {
	from  *Block
	label string
}

func buildFunc(fd *cast.FuncDecl) (*Graph, error) {
	b := &builder{
		g:      &Graph{Fn: fd},
		labels: make(map[string]*Block),
	}
	entry := b.newBlock("entry")
	entry.Anchor = fd.Body
	b.g.Entry = entry
	b.cur = entry
	if err := b.stmt(fd.Body); err != nil {
		return nil, err
	}
	// Implicit return at the end of the function body.
	if b.cur != nil {
		b.cur.Term = TermReturn
	}
	// Resolve gotos.
	for _, pg := range b.gotos {
		target, ok := b.labels[pg.label]
		if !ok {
			return nil, fmt.Errorf("%s: goto to unknown label %q", fd.Name(), pg.label)
		}
		pg.from.Term = TermJump
		link(pg.from, target)
	}
	b.prune()
	return b.g, nil
}

func (b *builder) newBlock(name string) *Block {
	blk := &Block{
		ID: len(b.g.Blocks), Name: name,
		BranchSite: -1, SwitchSite: -1,
	}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func link(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// startBlock makes blk the current insertion point, linking from the
// previous current block when control can fall through.
func (b *builder) jumpTo(blk *Block) {
	if b.cur != nil {
		b.cur.Term = TermJump
		link(b.cur, blk)
	}
	b.cur = blk
}

func (b *builder) add(s cast.Stmt) {
	if b.cur == nil {
		// Unreachable code still needs a home so profiling sees zero
		// counts for it; start a fresh (predecessor-less) block.
		b.cur = b.newBlock("dead")
		b.cur.Anchor = s
	}
	if b.cur.Anchor == nil {
		b.cur.Anchor = s
	}
	b.cur.Stmts = append(b.cur.Stmts, s)
}

func (b *builder) stmt(s cast.Stmt) error {
	switch x := s.(type) {
	case nil, *cast.Empty:
		return nil
	case *cast.Block:
		for _, st := range x.Stmts {
			if err := b.stmt(st); err != nil {
				return err
			}
		}
		return nil
	case *cast.ExprStmt, *cast.DeclStmt:
		b.add(s)
		return nil
	case *cast.If:
		return b.ifStmt(x)
	case *cast.While:
		return b.whileStmt(x)
	case *cast.DoWhile:
		return b.doWhileStmt(x)
	case *cast.For:
		return b.forStmt(x)
	case *cast.Switch:
		return b.switchStmt(x)
	case *cast.Break:
		if len(b.breaks) == 0 {
			return fmt.Errorf("%s: break outside loop or switch", x.P)
		}
		if b.cur != nil {
			b.cur.Term = TermJump
			link(b.cur, b.breaks[len(b.breaks)-1])
			b.cur = nil
		}
		return nil
	case *cast.Continue:
		if len(b.conts) == 0 {
			return fmt.Errorf("%s: continue outside loop", x.P)
		}
		if b.cur != nil {
			b.cur.Term = TermJump
			link(b.cur, b.conts[len(b.conts)-1])
			b.cur = nil
		}
		return nil
	case *cast.Return:
		if b.cur == nil {
			b.cur = b.newBlock("dead")
			b.cur.Anchor = s
		}
		if b.cur.Anchor == nil {
			b.cur.Anchor = s
		}
		b.cur.Term = TermReturn
		b.cur.RetVal = x.X
		b.cur = nil
		return nil
	case *cast.Goto:
		if b.cur == nil {
			b.cur = b.newBlock("dead")
			b.cur.Anchor = s
		}
		b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: x.Label})
		b.cur = nil
		return nil
	case *cast.Labeled:
		blk, ok := b.labels[x.Label]
		if !ok {
			blk = b.newBlock("label." + x.Label)
			b.labels[x.Label] = blk
		}
		blk.Anchor = x
		b.jumpTo(blk)
		return b.stmt(x.Stmt)
	}
	return fmt.Errorf("cfg: unhandled statement %T", s)
}

func (b *builder) ifStmt(x *cast.If) error {
	condBlk := b.cur
	if condBlk == nil {
		condBlk = b.newBlock("if.cond")
		b.cur = condBlk
	}
	if condBlk.Anchor == nil {
		condBlk.Anchor = x
	}
	condBlk.Term = TermCond
	condBlk.Cond = x.Cond
	condBlk.Origin = FromIf
	condBlk.BranchSite = x.BranchID()

	thenBlk := b.newBlock("if.then")
	thenBlk.Anchor = x.Then
	link(condBlk, thenBlk) // true edge first
	var elseBlk *Block
	if x.Else != nil {
		elseBlk = b.newBlock("if.else")
		elseBlk.Anchor = x.Else
		link(condBlk, elseBlk)
	}
	join := b.newBlock("if.end")

	b.cur = thenBlk
	if err := b.stmt(x.Then); err != nil {
		return err
	}
	if b.cur != nil {
		b.cur.Term = TermJump
		link(b.cur, join)
	}
	if x.Else != nil {
		b.cur = elseBlk
		if err := b.stmt(x.Else); err != nil {
			return err
		}
		if b.cur != nil {
			b.cur.Term = TermJump
			link(b.cur, join)
		}
	} else {
		link(condBlk, join) // false edge falls through
	}
	b.cur = join
	return nil
}

func (b *builder) whileStmt(x *cast.While) error {
	condBlk := b.newBlock("while.cond")
	condBlk.Anchor = x
	b.jumpTo(condBlk)
	condBlk.Term = TermCond
	condBlk.Cond = x.Cond
	condBlk.Origin = FromWhile
	condBlk.BranchSite = x.BranchID()

	bodyBlk := b.newBlock("while.body")
	bodyBlk.Anchor = x.Body
	exitBlk := b.newBlock("while.end")
	link(condBlk, bodyBlk) // true
	link(condBlk, exitBlk) // false

	b.breaks = append(b.breaks, exitBlk)
	b.conts = append(b.conts, condBlk)
	b.cur = bodyBlk
	err := b.stmt(x.Body)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
	if err != nil {
		return err
	}
	if b.cur != nil {
		b.cur.Term = TermJump
		link(b.cur, condBlk)
	}
	b.cur = exitBlk
	return nil
}

func (b *builder) doWhileStmt(x *cast.DoWhile) error {
	bodyBlk := b.newBlock("do.body")
	bodyBlk.Anchor = x.Body
	b.jumpTo(bodyBlk)
	condBlk := b.newBlock("do.cond")
	condBlk.Anchor = x
	exitBlk := b.newBlock("do.end")

	b.breaks = append(b.breaks, exitBlk)
	b.conts = append(b.conts, condBlk)
	err := b.stmt(x.Body)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
	if err != nil {
		return err
	}
	if b.cur != nil {
		b.cur.Term = TermJump
		link(b.cur, condBlk)
	}
	condBlk.Term = TermCond
	condBlk.Cond = x.Cond
	condBlk.Origin = FromDoWhile
	condBlk.BranchSite = x.BranchID()
	link(condBlk, bodyBlk) // true: loop again
	link(condBlk, exitBlk) // false
	b.cur = exitBlk
	return nil
}

func (b *builder) forStmt(x *cast.For) error {
	if x.InitS != nil {
		b.add(x.InitS)
	}
	condBlk := b.newBlock("for.cond")
	condBlk.Anchor = x
	b.jumpTo(condBlk)

	bodyBlk := b.newBlock("for.body")
	bodyBlk.Anchor = x.Body
	exitBlk := b.newBlock("for.end")
	var postBlk *Block
	if x.PostS != nil {
		postBlk = b.newBlock("for.post")
		postBlk.Anchor = x.PostS
		postBlk.Stmts = append(postBlk.Stmts, x.PostS)
		postBlk.Term = TermJump
		link(postBlk, condBlk)
	}

	if x.Cond != nil {
		condBlk.Term = TermCond
		condBlk.Cond = x.Cond
		condBlk.Origin = FromFor
		condBlk.BranchSite = x.BranchID()
		link(condBlk, bodyBlk)
		link(condBlk, exitBlk)
	} else {
		condBlk.Term = TermJump
		link(condBlk, bodyBlk)
	}

	contTarget := condBlk
	if postBlk != nil {
		contTarget = postBlk
	}
	b.breaks = append(b.breaks, exitBlk)
	b.conts = append(b.conts, contTarget)
	b.cur = bodyBlk
	err := b.stmt(x.Body)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
	if err != nil {
		return err
	}
	if b.cur != nil {
		b.cur.Term = TermJump
		link(b.cur, contTarget)
	}
	b.cur = exitBlk
	return nil
}

func (b *builder) switchStmt(x *cast.Switch) error {
	swBlk := b.cur
	if swBlk == nil {
		swBlk = b.newBlock("switch")
		b.cur = swBlk
	}
	if swBlk.Anchor == nil {
		swBlk.Anchor = x
	}
	swBlk.Term = TermSwitch
	swBlk.Tag = x.Tag
	swBlk.SwitchSite = x.Branch

	exitBlk := b.newBlock("switch.end")
	armBlks := make([]*Block, len(x.Cases))
	hasDefault := false
	for i, cs := range x.Cases {
		name := "case"
		if cs.IsDefault {
			name = "default"
			hasDefault = true
		}
		armBlks[i] = b.newBlock(name)
		if len(cs.Stmts) > 0 {
			armBlks[i].Anchor = cs.Stmts[0]
		} else {
			armBlks[i].Anchor = x
		}
		link(swBlk, armBlks[i])
		swBlk.Cases = append(swBlk.Cases, SwitchDispatch{Vals: cs.Vals, IsDefault: cs.IsDefault})
	}
	if !hasDefault {
		// Implicit default: fall past the switch.
		link(swBlk, exitBlk)
		swBlk.Cases = append(swBlk.Cases, SwitchDispatch{IsDefault: true})
	}

	b.breaks = append(b.breaks, exitBlk)
	for i, cs := range x.Cases {
		b.cur = armBlks[i]
		for _, st := range cs.Stmts {
			if err := b.stmt(st); err != nil {
				b.breaks = b.breaks[:len(b.breaks)-1]
				return err
			}
		}
		// Fall through to the next arm, or to the exit after the last.
		if b.cur != nil {
			b.cur.Term = TermJump
			if i+1 < len(armBlks) {
				link(b.cur, armBlks[i+1])
			} else {
				link(b.cur, exitBlk)
			}
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = exitBlk
	return nil
}

// prune removes empty TermJump blocks with a single successor by
// splicing their predecessors directly to the successor, then compacts
// IDs. The entry block is never removed.
func (b *builder) prune() {
	g := b.g
	// An empty entry block that only jumps forward merges into its
	// successor (so simple functions start at their first real block, as
	// the paper's CFGs do).
	for g.Entry.Term == TermJump && len(g.Entry.Stmts) == 0 &&
		len(g.Entry.Succs) == 1 && g.Entry.Succs[0] != g.Entry &&
		len(g.Entry.Preds) == 0 {
		old := g.Entry
		succ := old.Succs[0]
		succ.Preds = removeBlock(succ.Preds, old)
		old.Succs = nil
		old.markRemoved()
		g.Entry = succ
	}
	changed := true
	for changed {
		changed = false
		for _, blk := range g.Blocks {
			if blk == g.Entry || blk.removed() {
				continue
			}
			if blk.Term == TermJump && len(blk.Stmts) == 0 && len(blk.Succs) == 1 {
				succ := blk.Succs[0]
				if succ == blk {
					continue // self-loop: infinite empty loop, keep
				}
				// Redirect predecessors.
				for _, p := range blk.Preds {
					for i, s := range p.Succs {
						if s == blk {
							p.Succs[i] = succ
						}
					}
					succ.Preds = append(succ.Preds, p)
				}
				succ.Preds = removeBlock(succ.Preds, blk)
				blk.Preds = nil
				blk.Succs = nil
				blk.markRemoved()
				changed = true
			}
		}
	}
	// Drop unreachable blocks (no preds, not entry) that are also empty.
	var kept []*Block
	for _, blk := range g.Blocks {
		if blk.removed() {
			continue
		}
		kept = append(kept, blk)
	}
	// Remove dangling pred entries for dropped unreachable blocks.
	for i, blk := range kept {
		blk.ID = i
	}
	g.Blocks = kept
}

func (blk *Block) removed() bool { return blk.ID == -1 }
func (blk *Block) markRemoved()  { blk.ID = -1 }

func removeBlock(list []*Block, b *Block) []*Block {
	out := list[:0]
	for _, x := range list {
		if x != b {
			out = append(out, x)
		}
	}
	return out
}

// ProfileShape returns the dimensions of a dynamic profile for the
// program: blocks per function, call-site and branch-site counts, and
// the arm count of every switch site (source cases plus the implicit
// default arm the CFG synthesizes when the source has none). The
// interpreter and the probe reconstructor both allocate profiles from
// this one description, so their shapes cannot drift apart.
func ProfileShape(p *Program) (blocksPerFunc []int, numSites, numBranches int, switchArms []int) {
	sp := p.Sem
	blocksPerFunc = make([]int, len(sp.Funcs))
	for i, g := range p.Graphs {
		blocksPerFunc[i] = len(g.Blocks)
	}
	switchArms = make([]int, len(sp.SwitchSites))
	for _, ss := range sp.SwitchSites {
		n := len(ss.Stmt.Cases)
		hasDefault := false
		for _, c := range ss.Stmt.Cases {
			if c.IsDefault {
				hasDefault = true
			}
		}
		if !hasDefault {
			n++
		}
		switchArms[ss.ID] = n
	}
	return blocksPerFunc, len(sp.CallSites), len(sp.BranchSites), switchArms
}

// String renders the graph for diagnostics.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cfg %s:\n", g.Fn.Name())
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "  b%d (%s):", blk.ID, blk.Name)
		if blk == g.Entry {
			sb.WriteString(" [entry]")
		}
		sb.WriteString("\n")
		for _, s := range blk.Stmts {
			fmt.Fprintf(&sb, "    %s\n", cast.StmtLabel(s))
		}
		switch blk.Term {
		case TermJump:
			if len(blk.Succs) > 0 {
				fmt.Fprintf(&sb, "    -> b%d\n", blk.Succs[0].ID)
			}
		case TermCond:
			fmt.Fprintf(&sb, "    %s (%s) ? b%d : b%d\n",
				blk.Origin, cast.ExprString(blk.Cond), blk.Succs[0].ID, blk.Succs[1].ID)
		case TermSwitch:
			fmt.Fprintf(&sb, "    switch (%s):", cast.ExprString(blk.Tag))
			for i, c := range blk.Cases {
				if c.IsDefault {
					fmt.Fprintf(&sb, " default->b%d", blk.Succs[i].ID)
				} else {
					fmt.Fprintf(&sb, " %v->b%d", c.Vals, blk.Succs[i].ID)
				}
			}
			sb.WriteString("\n")
		case TermReturn:
			if blk.RetVal != nil {
				fmt.Fprintf(&sb, "    return %s\n", cast.ExprString(blk.RetVal))
			} else {
				fmt.Fprintf(&sb, "    return\n")
			}
		}
	}
	return sb.String()
}
