package cfg_test

import (
	"testing"

	"staticest/internal/cfg"
	"staticest/internal/cparse"
	"staticest/internal/sem"
)

func build(t *testing.T, src string) *cfg.Program {
	t.Helper()
	file, err := cparse.ParseFile("t.c", []byte(src))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	sp, err := sem.Analyze(file)
	if err != nil {
		t.Fatalf("sem: %v", err)
	}
	cp, err := cfg.Build(sp)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return cp
}

// checkWellFormed verifies structural invariants every graph must hold.
func checkWellFormed(t *testing.T, g *cfg.Graph) {
	t.Helper()
	ids := map[int]bool{}
	for _, b := range g.Blocks {
		if ids[b.ID] {
			t.Errorf("%s: duplicate block ID %d", g.Fn.Name(), b.ID)
		}
		ids[b.ID] = true
		switch b.Term {
		case cfg.TermJump:
			if len(b.Succs) != 1 {
				t.Errorf("%s b%d: jump with %d successors", g.Fn.Name(), b.ID, len(b.Succs))
			}
		case cfg.TermCond:
			if len(b.Succs) != 2 || b.Cond == nil {
				t.Errorf("%s b%d: malformed cond terminator", g.Fn.Name(), b.ID)
			}
		case cfg.TermSwitch:
			if len(b.Succs) != len(b.Cases) || b.Tag == nil {
				t.Errorf("%s b%d: switch with %d succs, %d cases",
					g.Fn.Name(), b.ID, len(b.Succs), len(b.Cases))
			}
		case cfg.TermReturn:
			if len(b.Succs) != 0 {
				t.Errorf("%s b%d: return with successors", g.Fn.Name(), b.ID)
			}
		}
		for _, s := range b.Succs {
			if !contains(s.Preds, b) {
				t.Errorf("%s: b%d -> b%d missing back-reference", g.Fn.Name(), b.ID, s.ID)
			}
			if s.ID < 0 || s.ID >= len(g.Blocks) {
				t.Errorf("%s: b%d has pruned successor", g.Fn.Name(), b.ID)
			}
		}
		for _, p := range b.Preds {
			if !contains(p.Succs, b) {
				t.Errorf("%s: b%d pred b%d missing forward edge", g.Fn.Name(), b.ID, p.ID)
			}
		}
	}
	if g.Entry == nil || !ids[g.Entry.ID] {
		t.Errorf("%s: entry not in block list", g.Fn.Name())
	}
}

func contains(list []*cfg.Block, b *cfg.Block) bool {
	for _, x := range list {
		if x == b {
			return true
		}
	}
	return false
}

func TestCFGShapes(t *testing.T) {
	cases := []struct {
		name, src string
		blocks    int // expected block count of func 0 (-1 = don't check)
	}{
		{"straightline", `int f(void) { int x = 1; x++; return x; }`, 1},
		{"ifelse", `int f(int a) { int r; if (a) r = 1; else r = 2; return r; }`, 4},
		{"ifnoelse", `int f(int a) { if (a) a++; return a; }`, 3},
		{"while", `int f(int n) { while (n > 0) n--; return n; }`, 3},
		{"dowhile", `int f(int n) { do { n--; } while (n > 0); return n; }`, 3},
		// entry (decls + init), for.cond, for.body, for.end, for.post.
		{"forloop", `int f(int n) { int i, s = 0; for (i = 0; i < n; i++) s += i; return s; }`, 5},
		{"forever", `int f(void) { for (;;) { } }`, -1},
		{"nested", `int f(int n) { int i, j, s = 0;
			for (i = 0; i < n; i++)
				for (j = 0; j < i; j++)
					if (j % 2) s++;
			return s; }`, -1},
		{"switch", `int f(int c) { switch (c) { case 1: return 1; case 2: break; default: c = 9; } return c; }`, -1},
		{"gotoloop", `int f(int n) { int s = 0;
		top:
			s += n;
			n--;
			if (n > 0) goto top;
			return s; }`, -1},
		{"breakcontinue", `int f(int n) { int i, s = 0;
			for (i = 0; i < n; i++) {
				if (i == 3) continue;
				if (i > 7) break;
				s += i;
			}
			return s; }`, -1},
		{"unreachable", `int f(void) { return 1; return 2; }`, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cp := build(t, tc.src)
			g := cp.Graphs[0]
			checkWellFormed(t, g)
			if tc.blocks >= 0 && len(g.Blocks) != tc.blocks {
				t.Errorf("%d blocks, want %d:\n%s", len(g.Blocks), tc.blocks, g)
			}
		})
	}
}

func TestCFGEntryMerge(t *testing.T) {
	// A function starting with a loop should begin at the loop test
	// (the paper's strchr CFG shape).
	cp := build(t, `int f(int n) { while (n) n--; return 0; }`)
	g := cp.Graphs[0]
	if g.Entry.Term != cfg.TermCond {
		t.Errorf("entry should be the loop condition, got %v:\n%s", g.Entry.Term, g)
	}
	// The loop's back edge must target the entry.
	found := false
	for _, p := range g.Entry.Preds {
		if p != g.Entry {
			found = true
		}
	}
	if !found {
		t.Errorf("loop back-edge missing:\n%s", g)
	}
}

func TestCFGSwitchImplicitDefault(t *testing.T) {
	cp := build(t, `int f(int c) { switch (c) { case 1: return 1; } return 0; }`)
	g := cp.Graphs[0]
	var sw *cfg.Block
	for _, b := range g.Blocks {
		if b.Term == cfg.TermSwitch {
			sw = b
		}
	}
	if sw == nil {
		t.Fatalf("no switch block:\n%s", g)
	}
	hasDefault := false
	for _, c := range sw.Cases {
		if c.IsDefault {
			hasDefault = true
		}
	}
	if !hasDefault {
		t.Errorf("switch lacks the implicit default arm:\n%s", g)
	}
}

func TestCFGBranchSitesRecorded(t *testing.T) {
	cp := build(t, `int f(int a, int b) {
		if (a) b++;
		while (b > 0) b--;
		return b;
	}`)
	g := cp.Graphs[0]
	sites := map[int]bool{}
	for _, b := range g.Blocks {
		if b.Term == cfg.TermCond {
			if b.BranchSite < 0 {
				t.Errorf("cond block b%d lacks a branch site", b.ID)
			}
			sites[b.BranchSite] = true
		}
	}
	if len(sites) != 2 {
		t.Errorf("%d distinct branch sites, want 2", len(sites))
	}
}

func TestCFGErrors(t *testing.T) {
	for _, src := range []string{
		`int f(void) { break; return 0; }`,
		`int f(void) { continue; return 0; }`,
	} {
		file, err := cparse.ParseFile("t.c", []byte(src))
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		sp, err := sem.Analyze(file)
		if err != nil {
			t.Fatalf("sem: %v", err)
		}
		if _, err := cfg.Build(sp); err == nil {
			t.Errorf("expected CFG error for %q", src)
		}
	}
}

func TestCFGStringRendering(t *testing.T) {
	cp := build(t, `int f(int a) { if (a) return 1; return 0; }`)
	s := cp.Graphs[0].String()
	if s == "" || len(s) < 20 {
		t.Errorf("suspicious rendering: %q", s)
	}
}
