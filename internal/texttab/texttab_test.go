package texttab

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := New("name", "value").AlignRight(1)
	tb.Row("alpha", 1.5)
	tb.Row("b", 100)
	s := tb.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want 4:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "name") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") || !strings.Contains(lines[2], "1.5") {
		t.Errorf("row: %q", lines[2])
	}
	// Right-aligned column: "100" ends at same position as "1.5".
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("rows not aligned: %q vs %q", lines[2], lines[3])
	}
}

func TestBar(t *testing.T) {
	if got := Bar(50, 100, 10); got != "#####....." {
		t.Errorf("half bar = %q", got)
	}
	if got := Bar(0, 100, 4); got != "...." {
		t.Errorf("empty bar = %q", got)
	}
	if got := Bar(200, 100, 4); got != "####" {
		t.Errorf("overflow bar = %q", got)
	}
	if got := Bar(1, 0, 4); got != "####" {
		t.Errorf("zero max bar = %q", got)
	}
	if got := Bar(-5, 100, 4); got != "...." {
		t.Errorf("negative bar = %q", got)
	}
}

func TestBarChart(t *testing.T) {
	s := BarChart([]string{"progA", "progB"},
		map[string][]float64{"x": {50, 100}, "y": {25, 0}},
		[]string{"x", "y"})
	if !strings.Contains(s, "progA") || !strings.Contains(s, "100.0") {
		t.Errorf("chart:\n%s", s)
	}
	if strings.Count(s, "\n") < 4 {
		t.Errorf("chart too short:\n%s", s)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.876); got != "87.6%" {
		t.Errorf("Pct = %q", got)
	}
}
