package texttab

import (
	"strings"
	"testing"
)

// Edge-case coverage for the report-style rendering the explain report
// and the figures rely on: empty tables, ragged rows, zero-width bars.

func TestTableNoRows(t *testing.T) {
	s := New("a", "bb").String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("header-only table rendered %d lines, want 2 (header + rule):\n%s", len(lines), s)
	}
	if lines[0] != "a  bb" {
		t.Errorf("header line = %q", lines[0])
	}
	if strings.Trim(lines[1], "-") != "" {
		t.Errorf("rule line = %q, want dashes only", lines[1])
	}
}

func TestTableRaggedRows(t *testing.T) {
	tb := New("x", "y")
	tb.Row("a")              // short row: missing cells render empty
	tb.Row("b", "c", "dddd") // long row: extra column widens the table
	s := tb.String()
	for _, frag := range []string{"a", "b  c  dddd"} {
		if !strings.Contains(s, frag) {
			t.Errorf("rendered table missing %q:\n%s", frag, s)
		}
	}
	// The extra column must widen every line consistently: the rule line
	// spans the three-column width, not the two-column header width.
	lines := strings.Split(s, "\n")
	if len(lines[1]) < len("b  c  dddd")-2 {
		t.Errorf("rule line %q shorter than the widest row", lines[1])
	}
}

func TestTableRightAlignPadding(t *testing.T) {
	tb := New("name", "count").AlignRight(1)
	tb.Row("a", 7)
	tb.Row("b", 12345)
	s := tb.String()
	if !strings.Contains(s, "a         7") {
		t.Errorf("right-aligned narrow value not padded:\n%s", s)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tb := New("v")
	tb.Row(3.14159)
	if s := tb.String(); !strings.Contains(s, "3.1") || strings.Contains(s, "3.14") {
		t.Errorf("float should render with one decimal:\n%s", s)
	}
}

func TestBarEdgeValues(t *testing.T) {
	if got := Bar(0, 100, 10); got != strings.Repeat(".", 10) {
		t.Errorf("zero bar = %q", got)
	}
	if got := Bar(100, 100, 10); got != strings.Repeat("#", 10) {
		t.Errorf("full bar = %q", got)
	}
	// Values beyond max clamp instead of overflowing the width.
	if got := Bar(250, 100, 10); got != strings.Repeat("#", 10) {
		t.Errorf("overflow bar = %q", got)
	}
	// Negative values clamp to empty.
	if got := Bar(-5, 100, 10); got != strings.Repeat(".", 10) {
		t.Errorf("negative bar = %q", got)
	}
	// Non-positive max treats the scale as 1 rather than dividing by 0.
	if got := Bar(0.5, 0, 10); got != "#####....." {
		t.Errorf("zero-max bar = %q", got)
	}
}

func TestPctEdgeValues(t *testing.T) {
	if got := Pct(0); got != "0.0%" {
		t.Errorf("Pct(0) = %q", got)
	}
	if got := Pct(1); got != "100.0%" {
		t.Errorf("Pct(1) = %q", got)
	}
}
