// Package texttab renders aligned text tables and ASCII bar charts for
// the evaluation harness — the paper's figures are bar charts, which a
// terminal reproduces honestly with proportional bars.
package texttab

import (
	"fmt"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
	// RightAlign marks columns rendered flush right (numbers).
	rightAlign map[int]bool
}

// New creates a table with the given header.
func New(header ...string) *Table {
	return &Table{header: header, rightAlign: make(map[int]bool)}
}

// AlignRight marks columns (0-based) as right-aligned.
func (t *Table) AlignRight(cols ...int) *Table {
	for _, c := range cols {
		t.rightAlign[c] = true
	}
	return t
}

// Row appends a row; values are formatted with %v, floats with %.1f.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var sb strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			if t.rightAlign[i] {
				sb.WriteString(strings.Repeat(" ", width[i]-len(c)))
				sb.WriteString(c)
			} else {
				sb.WriteString(c)
				if i < cols-1 {
					sb.WriteString(strings.Repeat(" ", width[i]-len(c)))
				}
			}
		}
		sb.WriteString("\n")
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		total := 0
		for _, w := range width {
			total += w + 2
		}
		sb.WriteString(strings.Repeat("-", total-2) + "\n")
	}
	for _, r := range t.rows {
		writeRow(r)
	}
	return sb.String()
}

// Bar renders a proportional ASCII bar for a value in [0, max].
func Bar(value, max float64, width int) string {
	if max <= 0 {
		max = 1
	}
	n := int(value/max*float64(width) + 0.5)
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// BarChart renders labeled series as grouped horizontal bars, one group
// per label. Values are percentages (0..100).
func BarChart(labels []string, series map[string][]float64, order []string) string {
	var sb strings.Builder
	lw := 0
	for _, l := range labels {
		if len(l) > lw {
			lw = len(l)
		}
	}
	sw := 0
	for _, s := range order {
		if len(s) > sw {
			sw = len(s)
		}
	}
	for i, l := range labels {
		for j, s := range order {
			lab := ""
			if j == 0 {
				lab = l
			}
			v := series[s][i]
			fmt.Fprintf(&sb, "%-*s  %-*s %s %5.1f\n", lw, lab, sw, s,
				Bar(v, 100, 40), v)
		}
		if i < len(labels)-1 {
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

// Pct formats a 0..1 score as a percentage string.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
