package gen_test

import (
	"bytes"
	"fmt"
	"testing"

	"staticest"
	"staticest/internal/gen"
)

// TestDeterministic pins the generator's core contract: the i-th
// program of two same-seed generators is byte-identical, and different
// seeds diverge.
func TestDeterministic(t *testing.T) {
	const n = 50
	a, b := gen.New(7), gen.New(7)
	for i := 0; i < n; i++ {
		pa, pb := a.Program(), b.Program()
		if !bytes.Equal(pa, pb) {
			t.Fatalf("program %d differs between same-seed generators", i)
		}
	}
	if bytes.Equal(gen.Source(1), gen.Source(2)) {
		t.Fatal("seeds 1 and 2 produced identical programs")
	}
}

// TestGeneratedProgramsCompileAndTerminate runs a few hundred generated
// programs through the full pipeline: they must parse, type-check,
// build CFGs, and terminate under the interpreter within the work
// budget the generator promises.
func TestGeneratedProgramsCompileAndTerminate(t *testing.T) {
	const n = 300
	const stepCap = 5_000_000
	g := gen.New(42)
	var maxSteps int64
	for i := 0; i < n; i++ {
		src := g.Program()
		u, err := staticest.Compile(fmt.Sprintf("gen42_%d.c", i), src)
		if err != nil {
			t.Fatalf("program %d does not compile: %v\n%s", i, err, src)
		}
		res, err := u.Run(staticest.RunOptions{MaxSteps: stepCap})
		if err != nil {
			t.Fatalf("program %d does not run: %v\n%s", i, err, src)
		}
		if res.Steps > maxSteps {
			maxSteps = res.Steps
		}
	}
	t.Logf("max steps over %d programs: %d", n, maxSteps)
	if maxSteps >= stepCap {
		t.Fatalf("a program hit the %d step cap: work budget broken", stepCap)
	}
}

// TestMutationsPreserveBehavior pins that every metamorphic mutation
// yields a program that still compiles and produces the same output and
// exit code as the original.
func TestMutationsPreserveBehavior(t *testing.T) {
	const n = 60
	g := gen.New(5)
	for i := 0; i < n; i++ {
		src := g.Program()
		u, err := staticest.Compile(fmt.Sprintf("gen5_%d.c", i), src)
		if err != nil {
			t.Fatalf("program %d does not compile: %v", i, err)
		}
		want, err := u.Run(staticest.RunOptions{})
		if err != nil {
			t.Fatalf("program %d does not run: %v", i, err)
		}
		for _, m := range gen.Mutations {
			msrc := gen.Mutate(src, m)
			if bytes.Equal(msrc, src) {
				t.Fatalf("program %d: mutation %v is a no-op", i, m)
			}
			mu, err := staticest.Compile(fmt.Sprintf("gen5_%d_%v.c", i, m), msrc)
			if err != nil {
				t.Fatalf("program %d mutation %v does not compile: %v\n%s", i, m, err, msrc)
			}
			got, err := mu.Run(staticest.RunOptions{})
			if err != nil {
				t.Fatalf("program %d mutation %v does not run: %v", i, m, err)
			}
			if got.ExitCode != want.ExitCode || !bytes.Equal(got.Output, want.Output) {
				t.Fatalf("program %d mutation %v changed behavior:\nexit %d vs %d\nout %q vs %q",
					i, m, got.ExitCode, want.ExitCode, got.Output, want.Output)
			}
		}
	}
}

// TestHeuristicCoverage checks the grammar bias actually pays off:
// across a modest batch, every branch heuristic the smart predictor
// implements fires at least once.
func TestHeuristicCoverage(t *testing.T) {
	const n = 80
	seen := map[string]int{}
	g := gen.New(11)
	for i := 0; i < n; i++ {
		src := g.Program()
		u, err := staticest.Compile(fmt.Sprintf("gen11_%d.c", i), src)
		if err != nil {
			t.Fatalf("program %d does not compile: %v\n%s", i, err, src)
		}
		for _, pred := range u.Estimate().Pred.Branch {
			seen[pred.Heuristic]++
		}
	}
	for _, h := range []string{"const", "loop", "pointer", "call", "opcode", "logical", "return"} {
		if seen[h] == 0 {
			t.Errorf("heuristic %q never fired over %d programs (seen: %v)", h, n, seen)
		}
	}
}
