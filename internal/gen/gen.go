// Package gen is a seeded, deterministic random program generator for
// the C subset the pipeline understands (a Csmith in miniature). Every
// generated program is valid input for the whole pipeline — it parses,
// type-checks, builds CFGs, and terminates under the interpreter — and
// the grammar is deliberately biased to exercise every branch heuristic
// the paper's smart predictor implements: pointer/NULL comparisons,
// `&&`/`||` conditions, equality tests, arms that call a no-return
// wrapper, arms that return early, arms that store read variables,
// bounded recursion, and switches with and without defaults.
//
// Termination is by construction, not by luck: every loop iterates on a
// dedicated counter with a constant bound that the body never writes,
// `continue` is only emitted where it cannot skip the counter update
// (for-loop bodies), and recursive functions decrement an explicit
// depth parameter with a base case guarding every recursive call.
//
// Determinism is part of the API: two Generators built with the same
// seed and options produce byte-identical program sequences, so a
// failing program can always be regenerated from (seed, index) alone.
package gen

import (
	"bytes"
	"fmt"
	"math/rand"
)

// PadMarker is the comment the generator plants immediately before
// main's final output statement. The dead-branch metamorphic mutation
// (see Mutate) replaces it with a constant-false conditional, which
// must not change any estimate for the pre-existing code.
const PadMarker = "/*PAD*/"

// Options bounds the generator's output. The zero value selects the
// defaults noted on each field.
type Options struct {
	// Helpers is the maximum number of helper functions besides main
	// (default 4; at least 1 is always generated).
	Helpers int
	// MaxDepth bounds statement nesting: loops and branches stop
	// nesting at this depth (default 3).
	MaxDepth int
	// MaxExpr bounds expression tree depth (default 3).
	MaxExpr int
	// MaxLoop is the largest constant loop bound (default 9, minimum 2).
	MaxLoop int
	// MaxStmts is the most statements emitted per block (default 5).
	MaxStmts int
	// RecDepth is the largest recursion-depth constant passed to
	// recursive helpers (default 6).
	RecDepth int
}

func (o Options) withDefaults() Options {
	if o.Helpers <= 0 {
		o.Helpers = 4
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 3
	}
	if o.MaxExpr <= 0 {
		o.MaxExpr = 3
	}
	if o.MaxLoop < 2 {
		o.MaxLoop = 9
	}
	if o.MaxStmts <= 0 {
		o.MaxStmts = 5
	}
	if o.RecDepth <= 0 {
		o.RecDepth = 6
	}
	return o
}

// Generator produces a deterministic sequence of programs from a seed.
type Generator struct {
	rng  *rand.Rand
	opt  Options
	seed int64
	n    int
}

// New returns a generator with default options.
func New(seed int64) *Generator { return NewWith(seed, Options{}) }

// NewWith returns a generator with explicit options.
func NewWith(seed int64, opt Options) *Generator {
	return &Generator{
		rng:  rand.New(rand.NewSource(seed)),
		opt:  opt.withDefaults(),
		seed: seed,
	}
}

// Program returns the next program in the generator's sequence as C
// source. Successive calls yield distinct programs; the i-th program of
// two same-seed generators is byte-identical.
func (g *Generator) Program() []byte {
	g.n++
	p := &progGen{rng: g.rng, opt: g.opt}
	return p.program(g.seed, g.n)
}

// Source is a convenience for one-shot use: the first program of
// New(seed).
func Source(seed int64) []byte { return New(seed).Program() }

// helper describes an emitted function later code may call.
type helper struct {
	name      string
	params    int
	recursive bool    // first argument is a depth bound
	noReturn  bool    // calls exit on every path
	weight    float64 // static upper bound on blocks one call executes
}

// Work-budget caps: mult is the product of enclosing loop bounds; a
// call site may only be emitted when mult times the callee's weight
// stays under callWork, and loops stop nesting once mult exceeds
// loopMult. Together they bound every generated run to well under a
// million block executions regardless of how statements compose.
const (
	callWork = 100_000.0
	loopMult = 2_000.0
)

// progGen holds the state of one program emission.
type progGen struct {
	rng *rand.Rand
	opt Options
	b   *bytes.Buffer
	ind int

	globals []string // scalar int globals
	arrays  []string // int arrays of size arraySize
	funcs   []helper // emitted, callable helpers

	// Per-function state.
	fn fnState
}

const arraySize = 16

// fnState is the scope of the function currently being generated.
type fnState struct {
	vars     []string // readable+writable ints (locals and params)
	ptrs     []string // pointer locals
	counters []string // loop counters: readable, never written by bodies
	ctrl     []byte   // enclosing break targets: 'f','w','d' loops, 's' switch
	varID    int
	loopID   int
	mult     float64 // product of enclosing loop bounds
	weight   float64 // accumulated work bound for this function
	// rec is set inside a recursive helper: the function and its depth
	// parameter. Recursive calls always pass recN - 1.
	rec  *helper
	recN string
}

func (p *progGen) rnd(n int) int         { return p.rng.Intn(n) }
func (p *progGen) chance(c float64) bool { return p.rng.Float64() < c }

func (p *progGen) pick(list []string) string { return list[p.rnd(len(list))] }

// writable is vars minus the recursion depth parameter: termination
// depends on that parameter strictly decreasing, so no assignment (and
// no pointer) may ever target it.
func (p *progGen) writable() []string {
	if p.fn.recN == "" {
		return p.fn.vars
	}
	w := make([]string, 0, len(p.fn.vars))
	for _, v := range p.fn.vars {
		if v != p.fn.recN {
			w = append(w, v)
		}
	}
	return w
}

func (p *progGen) line(format string, args ...any) {
	for i := 0; i < p.ind; i++ {
		p.b.WriteByte('\t')
	}
	fmt.Fprintf(p.b, format, args...)
	p.b.WriteByte('\n')
}

// program emits one complete translation unit.
func (p *progGen) program(seed int64, index int) []byte {
	var out bytes.Buffer
	p.b = &out
	fmt.Fprintf(&out, "/* generated: seed=%d program=%d */\n", seed, index)
	out.WriteString("#include <stdio.h>\n#include <stdlib.h>\n\n")

	// Globals: a few scalars and one or two arrays.
	nGlob := 1 + p.rnd(3)
	for i := 0; i < nGlob; i++ {
		name := fmt.Sprintf("g%d", i)
		p.globals = append(p.globals, name)
		if p.chance(0.5) {
			p.line("int %s = %d;", name, p.rnd(20)-5)
		} else {
			p.line("int %s;", name)
		}
	}
	nArr := 1 + p.rnd(2)
	for i := 0; i < nArr; i++ {
		name := fmt.Sprintf("arr%d", i)
		p.arrays = append(p.arrays, name)
		p.line("int %s[%d];", name, arraySize)
	}
	out.WriteByte('\n')

	// A no-return wrapper, most of the time: the error-call heuristic
	// needs one to fire through.
	if p.chance(0.8) {
		p.emitDie()
	}
	// Helpers, then a recursive helper, then main. Functions only call
	// previously emitted functions, so no forward declarations needed.
	nHelp := 1 + p.rnd(p.opt.Helpers)
	for i := 0; i < nHelp; i++ {
		p.emitHelper(fmt.Sprintf("f%d", i))
	}
	if p.chance(0.75) {
		p.emitRecursive("rec0")
	}
	p.emitMain()
	return out.Bytes()
}

// emitDie writes the no-return wrapper the call heuristic keys on.
func (p *progGen) emitDie() {
	p.line("int die0(int a0) {")
	p.ind++
	p.line(`printf("bail %%d\n", a0);`)
	p.line("exit(a0 & 7);")
	p.line("return 0;")
	p.ind--
	p.line("}")
	p.b.WriteByte('\n')
	p.funcs = append(p.funcs, helper{name: "die0", params: 1, noReturn: true})
}

// emitFunc renders one function: signature, declarations (collected
// while the body is generated into a side buffer), body, final return.
// body runs with the fresh function scope installed and returns the
// final return expression ("" for none); it must therefore build that
// expression itself, in scope. The function's accumulated work weight
// is returned so callers can record it on the helper entry.
func (p *progGen) emitFunc(name string, params []string, body func() string) float64 {
	p.fn = fnState{vars: append([]string(nil), params...), mult: 1}
	outer := p.b
	side := &bytes.Buffer{}
	p.b = side
	p.ind++
	if ret := body(); ret != "" {
		p.line("return %s;", ret)
	}
	p.ind--
	p.b = outer

	sig := ""
	for i, a := range params {
		if i > 0 {
			sig += ", "
		}
		sig += "int " + a
	}
	if sig == "" {
		sig = "void"
	}
	p.line("int %s(%s) {", name, sig)
	p.ind++
	// Declarations first (C89 style): locals, pointers, loop counters.
	for _, v := range p.fn.vars[len(params):] {
		p.line("int %s;", v)
	}
	for _, v := range p.fn.ptrs {
		p.line("int *%s;", v)
	}
	for _, v := range p.fn.counters {
		p.line("int %s;", v)
	}
	p.ind--
	p.b.Write(side.Bytes())
	p.line("}")
	p.b.WriteByte('\n')
	return p.fn.weight + 1
}

// newLocal declares (and initializes) a fresh int local.
func (p *progGen) newLocal() string {
	v := fmt.Sprintf("v%d", p.fn.varID)
	p.fn.varID++
	p.fn.vars = append(p.fn.vars, v)
	p.line("%s = %d;", v, p.rnd(30)-8)
	return v
}

// newPtr declares a fresh pointer local and points it somewhere safe.
func (p *progGen) newPtr() string {
	v := fmt.Sprintf("p%d", len(p.fn.ptrs))
	p.fn.ptrs = append(p.fn.ptrs, v)
	p.assignPtr(v)
	return v
}

func (p *progGen) assignPtr(v string) {
	switch p.rnd(3) {
	case 0:
		p.line("%s = 0;", v)
	case 1:
		p.line("%s = &%s;", v, p.pick(p.globals))
	default:
		if w := p.writable(); len(w) > 0 {
			p.line("%s = &%s;", v, p.pick(w))
		} else {
			p.line("%s = &%s;", v, p.pick(p.globals))
		}
	}
}

func (p *progGen) emitHelper(name string) {
	nParams := 1 + p.rnd(3)
	params := make([]string, nParams)
	for i := range params {
		params[i] = fmt.Sprintf("a%d", i)
	}
	w := p.emitFunc(name, params, func() string {
		nLoc := 1 + p.rnd(2)
		for i := 0; i < nLoc; i++ {
			p.newLocal()
		}
		if p.chance(0.4) {
			p.newPtr()
		}
		p.stmts(0, 1+p.rnd(p.opt.MaxStmts))
		return p.expr(2)
	})
	p.funcs = append(p.funcs, helper{name: name, params: nParams, weight: w})
}

func (p *progGen) emitRecursive(name string) {
	self := helper{name: name, params: 2, recursive: true}
	w := p.emitFunc(name, []string{"n0", "a0"}, func() string {
		p.fn.rec = &self
		p.fn.recN = "n0"
		p.line("if (n0 <= 0) {")
		p.ind++
		p.line("return a0 + %d;", p.rnd(5))
		p.ind--
		p.line("}")
		p.newLocal()
		p.stmts(1, 1+p.rnd(3))
		return fmt.Sprintf("%s(n0 - 1, a0 + %s)", name, p.pick(p.fn.vars))
	})
	// One invocation can recurse RecDepth deep; weight is per-call.
	self.weight = w * float64(p.opt.RecDepth+1)
	p.funcs = append(p.funcs, self)
}

func (p *progGen) emitMain() {
	p.emitFunc("main", nil, func() string {
		p.fn.vars = append(p.fn.vars, "acc")
		p.line("acc = 0;")
		nLoc := 1 + p.rnd(3)
		for i := 0; i < nLoc; i++ {
			p.newLocal()
		}
		if p.chance(0.6) {
			p.newPtr()
		}
		if p.chance(0.3) {
			p.newPtr()
		}
		p.stmts(0, 2+p.rnd(p.opt.MaxStmts))
		p.line(PadMarker)
		p.line(`printf("%%d %%d\n", acc, %s);`, p.pick(p.globals))
		return "acc & 7"
	})
	// main is not callable, so it is not appended to p.funcs.
}

// --- statements -------------------------------------------------------------

func (p *progGen) stmts(depth, n int) {
	for i := 0; i < n; i++ {
		p.stmt(depth)
	}
}

// lvalue picks an assignable location: a local, a global, or an array
// slot (never a loop counter).
func (p *progGen) lvalue() string {
	switch p.rnd(4) {
	case 0:
		return p.pick(p.globals)
	case 1:
		return fmt.Sprintf("%s[(%s) & %d]", p.pick(p.arrays), p.expr(1), arraySize-1)
	default:
		if w := p.writable(); len(w) > 0 {
			return p.pick(w)
		}
		return p.pick(p.globals)
	}
}

func (p *progGen) stmt(depth int) {
	p.fn.weight += p.fn.mult
	deep := depth < p.opt.MaxDepth && p.fn.mult <= loopMult
	for {
		switch p.rnd(16) {
		case 0, 1, 2, 3:
			p.assignStmt()
		case 4, 5, 6:
			p.ifStmt(depth)
		case 7:
			if !deep {
				continue
			}
			p.forStmt(depth)
		case 8:
			if !deep {
				continue
			}
			p.whileStmt(depth)
		case 9:
			if !deep || !p.chance(0.6) {
				continue
			}
			p.doWhileStmt(depth)
		case 10:
			if !deep || !p.chance(0.7) {
				continue
			}
			p.switchStmt(depth)
		case 11, 12:
			if !p.callStmt() {
				continue
			}
		case 13:
			// break/continue, where legal.
			if !p.jumpStmt() {
				continue
			}
		case 14:
			// Dead branch: the const heuristic must fold it.
			if !p.chance(0.25) {
				continue
			}
			p.line("if (0) {")
			p.ind++
			p.assignStmt()
			p.ind--
			p.line("}")
		case 15:
			// Guarded pointer write: safe deref, pointer heuristic shape.
			if len(p.fn.ptrs) == 0 {
				continue
			}
			v := p.pick(p.fn.ptrs)
			p.line("if (%s != 0) {", v)
			p.ind++
			p.line("*%s = %s;", v, p.expr(1))
			p.ind--
			p.line("}")
			if p.chance(0.3) {
				p.assignPtr(v)
			}
		}
		return
	}
}

func (p *progGen) assignStmt() {
	lhs := p.lvalue()
	ops := []string{"=", "=", "=", "+=", "-=", "*=", "&=", "|=", "^="}
	op := ops[p.rnd(len(ops))]
	p.line("%s %s %s;", lhs, op, p.expr(p.opt.MaxExpr))
}

// callStmt emits a whole-statement call (the shapes the inliner can
// splice): `v = f(...)` or `f(...)`.
func (p *progGen) callStmt() bool {
	if len(p.funcs) == 0 {
		return false
	}
	call := p.callExpr()
	if call == "" {
		return false
	}
	if p.chance(0.7) {
		p.line("%s = %s;", p.lvalue(), call)
	} else {
		p.line("%s;", call)
	}
	return true
}

// callExpr renders a call to a previously defined helper ("" when none
// is callable here). Recursive helpers get a bounded depth constant —
// or recN-1 when already inside that helper.
func (p *progGen) callExpr() string {
	if len(p.funcs) == 0 {
		return ""
	}
	h := p.funcs[p.rnd(len(p.funcs))]
	if h.noReturn {
		// Unconditional die() calls would make most of the program
		// dead; keep them behind branches (see ifStmt).
		return ""
	}
	if p.fn.mult*h.weight > callWork {
		return "" // too much work inside these loops
	}
	p.fn.weight += p.fn.mult * h.weight
	args := ""
	for i := 0; i < h.params; i++ {
		if i > 0 {
			args += ", "
		}
		if i == 0 && h.recursive {
			if p.fn.rec != nil && p.fn.rec.name == h.name {
				args += p.fn.recN + " - 1"
			} else {
				args += fmt.Sprintf("%d", 1+p.rnd(p.opt.RecDepth))
			}
			continue
		}
		args += p.expr(1)
	}
	return fmt.Sprintf("%s(%s)", h.name, args)
}

func (p *progGen) dieCall() string {
	for _, h := range p.funcs {
		if h.noReturn {
			return fmt.Sprintf("%s(%s)", h.name, p.expr(1))
		}
	}
	return ""
}

func (p *progGen) ifStmt(depth int) {
	cond := p.cond()
	switch p.rnd(5) {
	case 0:
		// Early return (return heuristic).
		p.line("if (%s) {", cond)
		p.ind++
		p.line("return %s;", p.expr(1))
		p.ind--
		p.line("}")
	case 1:
		// Error arm (call heuristic), when a wrapper exists.
		die := p.dieCall()
		if die == "" {
			p.plainIf(cond, depth)
			return
		}
		p.line("if (%s) {", cond)
		p.ind++
		p.line("%s;", die)
		p.ind--
		p.line("}")
	default:
		p.plainIf(cond, depth)
	}
}

func (p *progGen) plainIf(cond string, depth int) {
	p.line("if (%s) {", cond)
	p.ind++
	p.stmts(depth+1, 1+p.rnd(2))
	p.ind--
	if p.chance(0.45) {
		p.line("} else {")
		p.ind++
		p.stmts(depth+1, 1+p.rnd(2))
		p.ind--
	}
	p.line("}")
}

func (p *progGen) newCounter() string {
	c := fmt.Sprintf("i%d", p.fn.loopID)
	p.fn.loopID++
	p.fn.counters = append(p.fn.counters, c)
	return c
}

func (p *progGen) loopBody(depth, bound int, kind byte, pre func()) {
	p.fn.ctrl = append(p.fn.ctrl, kind)
	saved := p.fn.mult
	p.fn.mult *= float64(bound)
	p.ind++
	p.stmts(depth+1, 1+p.rnd(3))
	if pre != nil {
		pre()
	}
	p.ind--
	p.fn.mult = saved
	p.fn.ctrl = p.fn.ctrl[:len(p.fn.ctrl)-1]
}

func (p *progGen) forStmt(depth int) {
	c := p.newCounter()
	bound := 2 + p.rnd(p.opt.MaxLoop-1)
	p.line("for (%s = 0; %s < %d; %s++) {", c, c, bound, c)
	p.loopBody(depth, bound, 'f', nil)
	p.line("}")
}

func (p *progGen) whileStmt(depth int) {
	c := p.newCounter()
	bound := 2 + p.rnd(p.opt.MaxLoop-1)
	cond := fmt.Sprintf("%s < %d", c, bound)
	if p.chance(0.3) {
		// Conjoin an extra test: the counter still bounds iterations.
		cond = fmt.Sprintf("%s && %s", cond, p.cmp())
	}
	p.line("%s = 0;", c)
	p.line("while (%s) {", cond)
	p.loopBody(depth, bound, 'w', func() {
		p.line("%s = %s + 1;", c, c)
	})
	p.line("}")
}

func (p *progGen) doWhileStmt(depth int) {
	c := p.newCounter()
	bound := 2 + p.rnd(p.opt.MaxLoop-1)
	p.line("%s = 0;", c)
	p.line("do {")
	p.loopBody(depth, bound, 'd', func() {
		p.line("%s = %s + 1;", c, c)
	})
	p.line("} while (%s < %d);", c, bound)
}

func (p *progGen) switchStmt(depth int) {
	mask := []int{1, 3, 7}[p.rnd(3)]
	tag := fmt.Sprintf("(%s) & %d", p.expr(2), mask)
	p.line("switch (%s) {", tag)
	p.fn.ctrl = append(p.fn.ctrl, 's')
	arms := 1 + p.rnd(mask+1)
	used := p.rng.Perm(mask + 1)[:arms]
	for i, v := range used {
		p.line("case %d:", v)
		// Occasional label-only fallthrough onto the next arm.
		if i+1 < arms && p.chance(0.25) {
			continue
		}
		p.ind++
		p.stmts(depth+1, 1+p.rnd(2))
		if p.chance(0.8) {
			p.line("break;")
		}
		p.ind--
	}
	if p.chance(0.7) {
		p.line("default:")
		p.ind++
		p.stmts(depth+1, 1)
		p.line("break;")
		p.ind--
	}
	p.fn.ctrl = p.fn.ctrl[:len(p.fn.ctrl)-1]
	p.line("}")
}

// jumpStmt emits break (inside any loop or switch) or continue (only
// when the innermost loop is a for, whose post-statement keeps the
// bounding counter advancing).
func (p *progGen) jumpStmt() bool {
	if len(p.fn.ctrl) == 0 {
		return false
	}
	innerLoop := byte(0)
	for i := len(p.fn.ctrl) - 1; i >= 0; i-- {
		if p.fn.ctrl[i] != 's' {
			innerLoop = p.fn.ctrl[i]
			break
		}
	}
	if innerLoop == 'f' && p.chance(0.4) {
		p.line("if (%s) {", p.cmp())
		p.ind++
		p.line("continue;")
		p.ind--
		p.line("}")
		return true
	}
	p.line("if (%s) {", p.cmp())
	p.ind++
	p.line("break;")
	p.ind--
	p.line("}")
	return true
}

// --- expressions ------------------------------------------------------------

// readable picks any readable int: local, param, global, counter, or
// array slot.
func (p *progGen) readable() string {
	switch p.rnd(5) {
	case 0:
		return p.pick(p.globals)
	case 1:
		return fmt.Sprintf("%s[(%s) & %d]", p.pick(p.arrays), p.readableScalar(), arraySize-1)
	case 2:
		if len(p.fn.counters) > 0 {
			return p.pick(p.fn.counters)
		}
		fallthrough
	default:
		return p.readableScalar()
	}
}

func (p *progGen) readableScalar() string {
	if len(p.fn.vars) > 0 {
		return p.pick(p.fn.vars)
	}
	return p.pick(p.globals)
}

// cmp renders a simple integer comparison.
func (p *progGen) cmp() string {
	ops := []string{"<", ">", "<=", ">=", "==", "!="}
	l := p.readable()
	r := fmt.Sprintf("%d", p.rnd(20)-4)
	if p.chance(0.3) {
		r = p.readable()
	}
	return fmt.Sprintf("%s %s %s", l, ops[p.rnd(len(ops))], r)
}

// cond renders a branch condition, cycling through the shapes the smart
// predictor's heuristics recognize.
func (p *progGen) cond() string {
	switch p.rnd(8) {
	case 0, 1:
		return p.cmp()
	case 2:
		op := "&&"
		if p.chance(0.5) {
			op = "||"
		}
		return fmt.Sprintf("%s %s %s", p.cmp(), op, p.cmp())
	case 3:
		if len(p.fn.ptrs) > 0 {
			ptr := p.pick(p.fn.ptrs)
			switch p.rnd(4) {
			case 0:
				return fmt.Sprintf("%s == 0", ptr)
			case 1:
				return fmt.Sprintf("%s != 0", ptr)
			case 2:
				if len(p.fn.ptrs) > 1 {
					other := p.pick(p.fn.ptrs)
					return fmt.Sprintf("%s == %s", ptr, other)
				}
				return ptr
			default:
				return ptr
			}
		}
		return p.cmp()
	case 4:
		if call := p.callExpr(); call != "" {
			return fmt.Sprintf("%s %s %d", call, []string{">", "!=", "<="}[p.rnd(3)], p.rnd(6))
		}
		return p.cmp()
	case 5:
		return fmt.Sprintf("!(%s)", p.cmp())
	case 6:
		// Bare integer truthiness.
		return p.readable()
	default:
		return fmt.Sprintf("(%s) %s (%s)", p.cmp(), []string{"&&", "||"}[p.rnd(2)], p.readable())
	}
}

// expr renders an integer expression of bounded depth. Division and
// modulo only ever use positive constant divisors, and shifts use
// constant counts, so no generated expression can fault.
func (p *progGen) expr(depth int) string {
	if depth <= 0 || p.chance(0.3) {
		if p.chance(0.4) {
			return fmt.Sprintf("%d", p.rnd(40)-10)
		}
		return p.readable()
	}
	switch p.rnd(10) {
	case 0, 1, 2:
		ops := []string{"+", "-", "*", "&", "|", "^"}
		return fmt.Sprintf("(%s %s %s)", p.expr(depth-1), ops[p.rnd(len(ops))], p.expr(depth-1))
	case 3:
		return fmt.Sprintf("(%s / %d)", p.expr(depth-1), 1+p.rnd(8))
	case 4:
		return fmt.Sprintf("(%s %% %d)", p.expr(depth-1), 2+p.rnd(7))
	case 5:
		op := "<<"
		if p.chance(0.5) {
			op = ">>"
		}
		return fmt.Sprintf("(%s %s %d)", p.expr(depth-1), op, p.rnd(5))
	case 6:
		return fmt.Sprintf("(%s ? %s : %s)", p.cmp(), p.expr(depth-1), p.expr(depth-1))
	case 7:
		if call := p.callExpr(); call != "" {
			return call
		}
		return p.readable()
	case 8:
		op := []string{"-", "~", "!"}[p.rnd(3)]
		return fmt.Sprintf("%s(%s)", op, p.expr(depth-1))
	default:
		return fmt.Sprintf("(%s)", p.cmp())
	}
}
