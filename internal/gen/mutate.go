package gen

import (
	"bytes"
	"fmt"
	"regexp"
)

// Mutation names a semantics-preserving source transformation used for
// metamorphic testing: the mutated program computes the same thing, so
// the estimators must not change their mind about the code that was
// already there.
type Mutation int

const (
	// MutComments interleaves comments, blank lines, and trailing
	// whitespace. The token stream is untouched, so every estimate must
	// be byte-for-byte identical.
	MutComments Mutation = iota
	// MutRename prefixes every generator-chosen identifier. Heuristics
	// key on AST shape, never on spelling, so estimates must be
	// identical.
	MutRename
	// MutDeadPad replaces the PadMarker comment in main with a
	// constant-false branch. The const heuristic folds it, so all
	// pre-existing predictions, invocation counts, and non-main block
	// frequencies must be unchanged (main gains blocks, and the new
	// site IDs sort after all pre-existing ones).
	MutDeadPad
)

// Mutations lists every defined mutation.
var Mutations = []Mutation{MutComments, MutRename, MutDeadPad}

func (m Mutation) String() string {
	switch m {
	case MutComments:
		return "comments"
	case MutRename:
		return "rename"
	case MutDeadPad:
		return "deadpad"
	}
	return fmt.Sprintf("Mutation(%d)", int(m))
}

// Exact reports whether the mutation leaves the program's AST (and so
// every estimate) completely unchanged. MutDeadPad adds blocks to main,
// so only the pre-existing slice of each estimate is preserved.
func (m Mutation) Exact() bool { return m != MutDeadPad }

// genIdent matches exactly the identifiers the generator invents
// (globals g#, arrays arr#, locals v#, pointers p#, counters i#,
// helpers f#, params a#, the recursion depth n#, rec#/die# helpers, and
// main's accumulator). The generator's only string literals ("bail
// %d\n", "%d %d\n") contain none of these, so a plain text substitution
// is safe.
var genIdent = regexp.MustCompile(`\b(?:acc|(?:arr|rec|die|[gvipfan])[0-9]+)\b`)

// Mutate applies m to a generated program. The input must come from
// this package's Generator: the transformations rely on its naming
// scheme and on the PadMarker comment.
func Mutate(src []byte, m Mutation) []byte {
	switch m {
	case MutComments:
		return mutateComments(src)
	case MutRename:
		return genIdent.ReplaceAll(src, []byte("mx_$0"))
	case MutDeadPad:
		pad := []byte("if (0) { acc = acc + 1; }")
		return bytes.Replace(src, []byte(PadMarker), pad, 1)
	}
	return src
}

func mutateComments(src []byte) []byte {
	lines := bytes.Split(src, []byte("\n"))
	var out bytes.Buffer
	for i, ln := range lines {
		out.Write(ln)
		if n := len(ln); n > 0 && (ln[n-1] == ';' || ln[n-1] == '{') {
			fmt.Fprintf(&out, " /* m%d */", i)
			if i%3 == 0 {
				out.WriteString("\n   ")
			}
		}
		if i < len(lines)-1 {
			out.WriteByte('\n')
		}
		if i%5 == 2 {
			out.WriteString("\n")
		}
	}
	return out.Bytes()
}
