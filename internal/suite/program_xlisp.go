package suite

// Xlisp mirrors SPEC92's xlisp: a small Lisp interpreter whose builtins
// are dispatched through a function-pointer table — the paper's key
// example of indirect control flow that the Markov pointer node must
// approximate — and whose run time concentrates in the
// read/eval/print loop and the garbage collector.
func Xlisp() *Program {
	return &Program{
		Name:        "xlisp",
		Description: "Lisp interpreter",
		Source:      xlispSrc,
		Inputs: []Input{
			{Name: "arith", Stdin: []byte(
				"(+ 1 2 3)\n(* (+ 2 3) (- 10 4))\n(quotient 100 7)\n(remainder 100 7)\n" +
					"(< 3 4)\n(= 5 5)\n(+ (* 3 3) (* 4 4))\n")},
			{Name: "fib", Stdin: []byte(
				"(define fib (lambda (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2))))))\n" +
					"(fib 8)\n(fib 10)\n(fib 11)\n")},
			{Name: "lists", Stdin: []byte(
				"(define len (lambda (l) (if (null l) 0 (+ 1 (len (cdr l))))))\n" +
					"(define sum (lambda (l) (if (null l) 0 (+ (car l) (sum (cdr l))))))\n" +
					"(define seq (lambda (n) (if (= n 0) (quote ()) (cons n (seq (- n 1))))))\n" +
					"(len (seq 20))\n(sum (seq 30))\n(sum (seq 50))\n(car (cons 1 (quote (2 3))))\n")},
			{Name: "tak", Stdin: []byte(
				"(define tak (lambda (x y z) (if (not (< y x)) z " +
					"(tak (tak (- x 1) y z) (tak (- y 1) z x) (tak (- z 1) x y)))))\n" +
					"(tak 8 4 2)\n(tak 7 5 2)\n")},
		},
	}
}

const xlispSrc = `/* xlisp: a small Lisp with pointer-dispatched builtins and mark-sweep GC. */
#define POOL 12000
#define MAXSYM 128
#define NAMELEN 16
#define T_FREE 0
#define T_NUM 1
#define T_SYM 2
#define T_PAIR 3
#define T_BUILTIN 4
#define T_LAMBDA 5

struct cell {
	int tag;
	int mark;
	long num;
	struct cell *car;
	struct cell *cdr;
};

struct cell pool[POOL];
struct cell *free_list;
char sym_names[MAXSYM][NAMELEN];
struct cell *sym_cells[MAXSYM];
int nsyms;
struct cell *global_env;
struct cell *sym_quote;
struct cell *sym_if;
struct cell *sym_lambda;
struct cell *sym_define;
long gc_runs;
long cells_freed;
long evals;
int cur_ch;

void fatal(char *msg) {
	printf("xlisp: %s\n", msg);
	exit(1);
}

/* ---- allocator and collector ---- */

void mark_cell(struct cell *c) {
	while (c != 0 && !c->mark) {
		c->mark = 1;
		if (c->tag == T_PAIR || c->tag == T_LAMBDA) {
			mark_cell(c->car);
			c = c->cdr;
		} else {
			return;
		}
	}
}

void sweep(void) {
	int i;
	free_list = 0;
	for (i = 0; i < POOL; i++) {
		if (pool[i].mark) {
			pool[i].mark = 0;
		} else {
			pool[i].tag = T_FREE;
			pool[i].cdr = free_list;
			free_list = &pool[i];
			cells_freed++;
		}
	}
}

void gc(void) {
	int i;
	gc_runs++;
	mark_cell(global_env);
	for (i = 0; i < nsyms; i++)
		mark_cell(sym_cells[i]);
	sweep();
}

struct cell *alloc_cell(int tag) {
	struct cell *c = free_list;
	if (c == 0)
		fatal("heap exhausted");
	free_list = c->cdr;
	c->tag = tag;
	c->mark = 0;
	c->num = 0;
	c->car = 0;
	c->cdr = 0;
	return c;
}

struct cell *make_num(long v) {
	struct cell *c = alloc_cell(T_NUM);
	c->num = v;
	return c;
}

struct cell *make_pair(struct cell *a, struct cell *d) {
	struct cell *c = alloc_cell(T_PAIR);
	c->car = a;
	c->cdr = d;
	return c;
}

struct cell *intern(char *name) {
	int i;
	struct cell *c;
	for (i = 0; i < nsyms; i++)
		if (strcmp(sym_names[i], name) == 0)
			return sym_cells[i];
	if (nsyms >= MAXSYM)
		fatal("too many symbols");
	strcpy(sym_names[nsyms], name);
	c = alloc_cell(T_SYM);
	c->num = nsyms;
	sym_cells[nsyms] = c;
	nsyms++;
	return c;
}

/* ---- builtins, dispatched by pointer ---- */

long arg_num(struct cell *args) {
	if (args == 0 || args->car == 0 || args->car->tag != T_NUM)
		fatal("expected a number");
	return args->car->num;
}

struct cell *bi_add(struct cell *args) {
	long s = 0;
	while (args != 0) {
		s += arg_num(args);
		args = args->cdr;
	}
	return make_num(s);
}

struct cell *bi_sub(struct cell *args) {
	long s = arg_num(args);
	args = args->cdr;
	if (args == 0)
		return make_num(-s);
	while (args != 0) {
		s -= arg_num(args);
		args = args->cdr;
	}
	return make_num(s);
}

struct cell *bi_mul(struct cell *args) {
	long s = 1;
	while (args != 0) {
		s *= arg_num(args);
		args = args->cdr;
	}
	return make_num(s);
}

struct cell *bi_quotient(struct cell *args) {
	long a = arg_num(args);
	long b = arg_num(args->cdr);
	if (b == 0)
		fatal("division by zero");
	return make_num(a / b);
}

struct cell *bi_remainder(struct cell *args) {
	long a = arg_num(args);
	long b = arg_num(args->cdr);
	if (b == 0)
		fatal("division by zero");
	return make_num(a % b);
}

struct cell *bi_lt(struct cell *args) {
	return make_num(arg_num(args) < arg_num(args->cdr) ? 1 : 0);
}

struct cell *bi_eq(struct cell *args) {
	return make_num(arg_num(args) == arg_num(args->cdr) ? 1 : 0);
}

struct cell *bi_not(struct cell *args) {
	struct cell *v = args != 0 ? args->car : 0;
	int falsy = (v == 0) || (v->tag == T_NUM && v->num == 0);
	return make_num(falsy ? 1 : 0);
}

struct cell *bi_car(struct cell *args) {
	if (args == 0 || args->car == 0 || args->car->tag != T_PAIR)
		fatal("car of non-pair");
	return args->car->car;
}

struct cell *bi_cdr(struct cell *args) {
	if (args == 0 || args->car == 0 || args->car->tag != T_PAIR)
		fatal("cdr of non-pair");
	return args->car->cdr;
}

struct cell *bi_cons(struct cell *args) {
	if (args == 0 || args->cdr == 0)
		fatal("cons needs two arguments");
	return make_pair(args->car, args->cdr->car);
}

struct cell *bi_null(struct cell *args) {
	return make_num((args == 0 || args->car == 0) ? 1 : 0);
}

struct cell *bi_list(struct cell *args) {
	return args;
}

struct builtin_entry {
	char *name;
	struct cell *(*fn)(struct cell *args);
};

struct builtin_entry builtins[] = {
	{"+", bi_add},
	{"-", bi_sub},
	{"*", bi_mul},
	{"quotient", bi_quotient},
	{"remainder", bi_remainder},
	{"<", bi_lt},
	{"=", bi_eq},
	{"not", bi_not},
	{"car", bi_car},
	{"cdr", bi_cdr},
	{"cons", bi_cons},
	{"null", bi_null},
	{"list", bi_list},
};

#define NBUILTIN 13

/* ---- reader ---- */

void next_ch(void) {
	cur_ch = getchar();
}

void skip_space(void) {
	while (cur_ch == ' ' || cur_ch == '\t' || cur_ch == '\n')
		next_ch();
}

struct cell *read_expr(void);

struct cell *read_list(void) {
	struct cell *head, *tail, *e;
	skip_space();
	if (cur_ch == ')') {
		next_ch();
		return 0;
	}
	if (cur_ch == -1)
		fatal("unexpected end of input in list");
	e = read_expr();
	head = make_pair(e, 0);
	tail = head;
	for (;;) {
		skip_space();
		if (cur_ch == ')') {
			next_ch();
			return head;
		}
		if (cur_ch == -1)
			fatal("unexpected end of input in list");
		e = read_expr();
		tail->cdr = make_pair(e, 0);
		tail = tail->cdr;
	}
}

struct cell *read_expr(void) {
	skip_space();
	if (cur_ch == -1)
		return 0;
	if (cur_ch == '(') {
		next_ch();
		return read_list();
	}
	if (cur_ch == '\'') {
		struct cell *inner;
		next_ch();
		inner = read_expr();
		return make_pair(intern("quote"), make_pair(inner, 0));
	}
	if ((cur_ch >= '0' && cur_ch <= '9') || cur_ch == '-') {
		int neg = 0;
		long v = 0;
		if (cur_ch == '-') {
			neg = 1;
			next_ch();
			if (!(cur_ch >= '0' && cur_ch <= '9')) {
				/* bare minus symbol */
				return intern("-");
			}
		}
		while (cur_ch >= '0' && cur_ch <= '9') {
			v = v * 10 + (cur_ch - '0');
			next_ch();
		}
		return make_num(neg ? -v : v);
	}
	{
		char name[NAMELEN];
		int n = 0;
		while (cur_ch != -1 && cur_ch != ' ' && cur_ch != '\t' &&
		       cur_ch != '\n' && cur_ch != '(' && cur_ch != ')') {
			if (n < NAMELEN - 1)
				name[n++] = cur_ch;
			next_ch();
		}
		name[n] = 0;
		if (n == 0)
			fatal("empty token");
		return intern(name);
	}
}

/* ---- evaluator ---- */

struct cell *env_lookup(struct cell *env, struct cell *sym) {
	while (env != 0) {
		if (env->car != 0 && env->car->car == sym)
			return env->car->cdr;
		env = env->cdr;
	}
	/* Fall back to the global environment so lambdas defined before a
	   recursive binding still see it. */
	env = global_env;
	while (env != 0) {
		if (env->car != 0 && env->car->car == sym)
			return env->car->cdr;
		env = env->cdr;
	}
	fatal("unbound symbol");
	return 0;
}

struct cell *env_bind(struct cell *env, struct cell *sym, struct cell *val) {
	return make_pair(make_pair(sym, val), env);
}

/* install_builtins binds each builtin name in the global environment to
   a T_BUILTIN cell holding its table index. */
void install_builtins(void) {
	int i;
	for (i = 0; i < NBUILTIN; i++) {
		struct cell *f = alloc_cell(T_BUILTIN);
		f->num = i;
		global_env = env_bind(global_env, intern(builtins[i].name), f);
	}
}

struct cell *eval(struct cell *e, struct cell *env);

struct cell *eval_args(struct cell *list, struct cell *env) {
	struct cell *head, *tail;
	if (list == 0)
		return 0;
	head = make_pair(eval(list->car, env), 0);
	tail = head;
	list = list->cdr;
	while (list != 0) {
		tail->cdr = make_pair(eval(list->car, env), 0);
		tail = tail->cdr;
		list = list->cdr;
	}
	return head;
}

struct cell *apply(struct cell *fn, struct cell *args) {
	if (fn == 0)
		fatal("apply of nil");
	if (fn->tag == T_BUILTIN)
		return builtins[fn->num].fn(args);
	if (fn->tag == T_LAMBDA) {
		/* fn->car = (params . body), fn->cdr = captured env */
		struct cell *params = fn->car->car;
		struct cell *body = fn->car->cdr;
		struct cell *env = fn->cdr;
		while (params != 0) {
			if (args == 0)
				fatal("too few arguments");
			env = env_bind(env, params->car, args->car);
			params = params->cdr;
			args = args->cdr;
		}
		return eval(body, env);
	}
	fatal("apply of non-function");
	return 0;
}

int truthy(struct cell *v) {
	if (v == 0)
		return 0;
	if (v->tag == T_NUM && v->num == 0)
		return 0;
	return 1;
}

struct cell *eval(struct cell *e, struct cell *env) {
	struct cell *head;
	evals++;
	if (e == 0)
		return 0;
	if (e->tag == T_NUM || e->tag == T_BUILTIN || e->tag == T_LAMBDA)
		return e;
	if (e->tag == T_SYM)
		return env_lookup(env, e);
	/* pair: special forms first */
	head = e->car;
	if (head != 0 && head->tag == T_SYM) {
		if (head == sym_quote)
			return e->cdr->car;
		if (head == sym_if) {
			struct cell *c = eval(e->cdr->car, env);
			if (truthy(c))
				return eval(e->cdr->cdr->car, env);
			if (e->cdr->cdr->cdr != 0)
				return eval(e->cdr->cdr->cdr->car, env);
			return 0;
		}
		if (head == sym_lambda) {
			struct cell *f = alloc_cell(T_LAMBDA);
			f->car = make_pair(e->cdr->car, e->cdr->cdr->car);
			f->cdr = env;
			return f;
		}
		if (head == sym_define) {
			struct cell *val = eval(e->cdr->cdr->car, env);
			global_env = env_bind(global_env, e->cdr->car, val);
			return e->cdr->car;
		}
	}
	{
		struct cell *fn = eval(head, env);
		struct cell *args = eval_args(e->cdr, env);
		return apply(fn, args);
	}
}

/* ---- printer ---- */

void print_expr(struct cell *e) {
	if (e == 0) {
		printf("()");
		return;
	}
	if (e->tag == T_NUM) {
		printf("%ld", e->num);
		return;
	}
	if (e->tag == T_SYM) {
		printf("%s", sym_names[e->num]);
		return;
	}
	if (e->tag == T_BUILTIN) {
		printf("#<builtin:%s>", builtins[e->num].name);
		return;
	}
	if (e->tag == T_LAMBDA) {
		printf("#<lambda>");
		return;
	}
	putchar('(');
	for (;;) {
		print_expr(e->car);
		if (e->cdr == 0)
			break;
		if (e->cdr->tag != T_PAIR) {
			printf(" . ");
			print_expr(e->cdr);
			break;
		}
		putchar(' ');
		e = e->cdr;
	}
	putchar(')');
}

void init_heap(void) {
	int i;
	free_list = 0;
	for (i = POOL - 1; i >= 0; i--) {
		pool[i].tag = T_FREE;
		pool[i].cdr = free_list;
		free_list = &pool[i];
	}
}

int main(void) {
	struct cell *e, *v;
	init_heap();
	install_builtins();
	sym_quote = intern("quote");
	sym_if = intern("if");
	sym_lambda = intern("lambda");
	sym_define = intern("define");
	next_ch();
	for (;;) {
		skip_space();
		if (cur_ch == -1)
			break;
		e = read_expr();
		if (e == 0 && cur_ch == -1)
			break;
		v = eval(e, global_env);
		print_expr(v);
		putchar('\n');
		gc();
	}
	printf("evals %ld gcs %ld freed %ld syms %d\n", evals, gc_runs, cells_freed, nsyms);
	return 0;
}
`
