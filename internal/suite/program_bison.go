package suite

// Bison mirrors the suite's bison: grammar analysis for parser
// generation — nullable computation and FIRST/FOLLOW set fixpoints over
// bitsets, the iterative closure style of parser generators.
func Bison() *Program {
	return &Program{
		Name:        "bison",
		Description: "LALR(1) parser generator (grammar set analysis)",
		Source:      bisonSrc,
		Inputs: []Input{
			{Name: "expr", Stdin: []byte(
				"E:E+T\nE:T\nT:T*F\nT:F\nF:(E)\nF:x\nF:-F\nE:E-T\nT:T/F\nF:fF\n" +
					"G:E=E\nG:E<E\nG:G&G\nG:G|G\nH:[G]\nH:HH\nH:\n.\n")},
			{Name: "stmt", Stdin: []byte(
				"S:iCtSeS\nS:iCtS\nS:a\nS:wCdS\nS:{L}\nL:SL\nL:\nC:b\nC:CoC\nC:nC\n" +
					"C:(C)\nS:rE;\nE:v\nE:E+v\nE:E*v\nS:v=E;\n.\n")},
			{Name: "nullable", Stdin: []byte(
				"A:BC\nB:b\nB:\nC:c\nC:\nA:aA\nD:AB\nD:\nF:DCA\nG:FFF\nG:g\n" +
					"H:GD\nI:HA\nJ:IB\nK:JC\n.\n")},
			{Name: "big", Stdin: []byte(
				"P:DS\nD:dD\nD:\nS:sS\nS:e\nE:E+T\nE:T\nT:T*F\nT:F\nF:(E)\nF:n\nS:xE\n" +
					"Q:PP\nQ:q\nR:QS\nR:\nU:RE\nU:uU\nV:UT\nW:VF\nX:WE\nY:XD\nZ:YP\n.\n")},
		},
	}
}

const bisonSrc = `/* bison: nullable/FIRST/FOLLOW fixpoints over a small grammar.
 * Grammar lines look like "E:E+T"; uppercase letters are nonterminals,
 * everything else is a terminal, and an empty right side is epsilon.
 * A line containing "." ends the grammar.
 */
#define MAXRULES 64
#define MAXRHS 16
#define NSYM 128

int rule_lhs[MAXRULES];
char rule_rhs[MAXRULES][MAXRHS];
int rule_len[MAXRULES];
int nrules;
int nullable[NSYM];
unsigned long first_set[NSYM];
unsigned long follow_set[NSYM];
int is_nonterm[NSYM];
char start_sym;
long passes;

int term_bit(int c) {
	/* terminals map onto bits 0..63 by a simple fold */
	return c % 64;
}

void read_grammar(void) {
	int c, state, r;
	state = 0; /* 0 = at line start, 1 = after lhs, 2 = in rhs */
	r = -1;
	for (;;) {
		c = getchar();
		if (c == -1)
			break;
		if (c == '\n') {
			state = 0;
			continue;
		}
		if (state == 0) {
			if (c == '.')
				return;
			if (c < 'A' || c > 'Z') {
				printf("bad lhs %c\n", c);
				exit(1);
			}
			if (nrules >= MAXRULES) {
				printf("too many rules\n");
				exit(1);
			}
			r = nrules++;
			rule_lhs[r] = c;
			rule_len[r] = 0;
			is_nonterm[c] = 1;
			if (start_sym == 0)
				start_sym = c;
			state = 1;
			continue;
		}
		if (state == 1) {
			if (c != ':') {
				printf("expected :\n");
				exit(1);
			}
			state = 2;
			continue;
		}
		if (rule_len[r] >= MAXRHS) {
			printf("rhs too long\n");
			exit(1);
		}
		rule_rhs[r][rule_len[r]++] = c;
		if (c >= 'A' && c <= 'Z')
			is_nonterm[c] = 1;
	}
}

void compute_nullable(void) {
	int changed, r, i, all;
	changed = 1;
	while (changed) {
		changed = 0;
		passes++;
		for (r = 0; r < nrules; r++) {
			if (nullable[rule_lhs[r]])
				continue;
			all = 1;
			for (i = 0; i < rule_len[r]; i++) {
				int s = rule_rhs[r][i];
				if (!(is_nonterm[s] && nullable[s])) {
					all = 0;
					break;
				}
			}
			if (all) {
				nullable[rule_lhs[r]] = 1;
				changed = 1;
			}
		}
	}
}

void compute_first(void) {
	int changed, r, i;
	unsigned long before;
	changed = 1;
	while (changed) {
		changed = 0;
		passes++;
		for (r = 0; r < nrules; r++) {
			int lhs = rule_lhs[r];
			before = first_set[lhs];
			for (i = 0; i < rule_len[r]; i++) {
				int s = rule_rhs[r][i];
				if (!is_nonterm[s]) {
					first_set[lhs] |= 1UL << term_bit(s);
					break;
				}
				first_set[lhs] |= first_set[s];
				if (!nullable[s])
					break;
			}
			if (first_set[lhs] != before)
				changed = 1;
		}
	}
}

unsigned long first_of_suffix(int r, int from, int *suffix_nullable) {
	unsigned long f = 0;
	int i;
	*suffix_nullable = 1;
	for (i = from; i < rule_len[r]; i++) {
		int s = rule_rhs[r][i];
		if (!is_nonterm[s]) {
			f |= 1UL << term_bit(s);
			*suffix_nullable = 0;
			return f;
		}
		f |= first_set[s];
		if (!nullable[s]) {
			*suffix_nullable = 0;
			return f;
		}
	}
	return f;
}

void compute_follow(void) {
	int changed, r, i, sn;
	unsigned long before;
	follow_set[start_sym] |= 1;
	changed = 1;
	while (changed) {
		changed = 0;
		passes++;
		for (r = 0; r < nrules; r++) {
			for (i = 0; i < rule_len[r]; i++) {
				int s = rule_rhs[r][i];
				if (!is_nonterm[s])
					continue;
				before = follow_set[s];
				follow_set[s] |= first_of_suffix(r, i + 1, &sn);
				if (sn)
					follow_set[s] |= follow_set[rule_lhs[r]];
				if (follow_set[s] != before)
					changed = 1;
			}
		}
	}
}

int popcount64(unsigned long x) {
	int n = 0;
	while (x) {
		n++;
		x = x & (x - 1);
	}
	return n;
}

void report(void) {
	int s, nn = 0, nl = 0;
	long fsum = 0, wsum = 0;
	for (s = 'A'; s <= 'Z'; s++) {
		if (!is_nonterm[s])
			continue;
		nn++;
		if (nullable[s])
			nl++;
		fsum += popcount64(first_set[s]);
		wsum += popcount64(follow_set[s]);
		printf("%c: first %d follow %d%s\n", s,
		       popcount64(first_set[s]), popcount64(follow_set[s]),
		       nullable[s] ? " nullable" : "");
	}
	printf("rules %d nonterms %d nullable %d first %ld follow %ld passes %ld\n",
	       nrules, nn, nl, fsum, wsum, passes);
}

int main(void) {
	read_grammar();
	if (nrules == 0) {
		printf("empty grammar\n");
		return 2;
	}
	compute_nullable();
	compute_first();
	compute_follow();
	report();
	return 0;
}
`
