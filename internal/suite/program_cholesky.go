package suite

// Cholesky mirrors the suite's cholesky: factoring a symmetric
// positive-definite matrix and solving a system — classic numeric code
// with deeply predictable triangular loop nests.
func Cholesky() *Program {
	return &Program{
		Name:        "cholesky",
		Description: "Cholesky-factor a sparse matrix",
		Source:      choleskySrc,
		Inputs: []Input{
			{Name: "n16", Args: []string{"16", "3"}},
			{Name: "n20", Args: []string{"20", "5"}},
			{Name: "n24", Args: []string{"24", "2"}},
			{Name: "n28", Args: []string{"28", "7"}},
		},
	}
}

const choleskySrc = `/* cholesky: factor A = L L^T, solve A x = b, check the residual. */
#define MAXN 32

double a[MAXN][MAXN];
double l[MAXN][MAXN];
double b[MAXN];
double x[MAXN];
double y[MAXN];
int n;
unsigned long seed;
long flops;

double frand(void) {
	seed = seed * 1103515245 + 12345;
	return (double)((seed >> 16) & 32767) / 32767.0;
}

/* build_spd: A = B B^T + n I is symmetric positive definite. */
void build_spd(void) {
	int i, j, k;
	double bmat[MAXN][MAXN];
	for (i = 0; i < n; i++)
		for (j = 0; j < n; j++)
			bmat[i][j] = frand() - 0.5;
	for (i = 0; i < n; i++) {
		for (j = 0; j < n; j++) {
			double s = 0.0;
			for (k = 0; k < n; k++)
				s += bmat[i][k] * bmat[j][k];
			a[i][j] = s;
		}
		a[i][i] += n;
	}
	for (i = 0; i < n; i++)
		b[i] = frand() * 10.0 - 5.0;
}

int factor(void) {
	int i, j, k;
	double s;
	for (j = 0; j < n; j++) {
		s = a[j][j];
		for (k = 0; k < j; k++) {
			s -= l[j][k] * l[j][k];
			flops += 2;
		}
		if (s <= 0.0)
			return 0;
		l[j][j] = sqrt(s);
		for (i = j + 1; i < n; i++) {
			s = a[i][j];
			for (k = 0; k < j; k++) {
				s -= l[i][k] * l[j][k];
				flops += 2;
			}
			l[i][j] = s / l[j][j];
			flops += 1;
		}
	}
	return 1;
}

void forward_sub(void) {
	int i, k;
	double s;
	for (i = 0; i < n; i++) {
		s = b[i];
		for (k = 0; k < i; k++)
			s -= l[i][k] * y[k];
		y[i] = s / l[i][i];
	}
}

void back_sub(void) {
	int i, k;
	double s;
	for (i = n - 1; i >= 0; i--) {
		s = y[i];
		for (k = i + 1; k < n; k++)
			s -= l[k][i] * x[k];
		x[i] = s / l[i][i];
	}
}

double residual(void) {
	int i, k;
	double worst, r;
	worst = 0.0;
	for (i = 0; i < n; i++) {
		r = -b[i];
		for (k = 0; k < n; k++)
			r += a[i][k] * x[k];
		if (r < 0.0)
			r = -r;
		if (r > worst)
			worst = r;
	}
	return worst;
}

double det_from_factor(void) {
	int i;
	double d = 1.0;
	for (i = 0; i < n; i++)
		d *= l[i][i] * l[i][i];
	return d;
}

int main(int argc, char **argv) {
	double res;
	if (argc < 3) {
		printf("usage: cholesky n seed\n");
		return 2;
	}
	n = atoi(argv[1]);
	seed = atoi(argv[2]);
	if (n < 2 || n > MAXN) {
		printf("n out of range\n");
		return 2;
	}
	build_spd();
	if (!factor()) {
		printf("matrix not positive definite\n");
		return 1;
	}
	forward_sub();
	back_sub();
	res = residual();
	printf("n %d flops %ld residual %.2e logdet %.4f\n",
	       n, flops, res, log(det_from_factor()));
	if (res > 1e-8) {
		printf("RESIDUAL TOO LARGE\n");
		return 1;
	}
	return 0;
}
`
