package suite

// MPEG mirrors the suite's mpeg: block-transform video decoding —
// zigzag scan, dequantization, a separable 8×8 inverse DCT, saturation,
// and motion-compensation-style accumulation over many blocks.
func MPEG() *Program {
	return &Program{
		Name:        "mpeg",
		Description: "Play MPEG video files (block decode pipeline)",
		Source:      mpegSrc,
		Inputs: []Input{
			{Name: "frames3", Args: []string{"3", "11"}},
			{Name: "frames4", Args: []string{"4", "23"}},
			{Name: "frames5", Args: []string{"5", "5"}},
			{Name: "frames6", Args: []string{"6", "31"}},
		},
	}
}

const mpegSrc = `/* mpeg: a block-decode pipeline over synthetic coefficient data. */
#define BS 8
#define BLOCKS_PER_FRAME 20
#define PI 3.14159265358979

int zigzag[BS * BS];
int quant[BS * BS];
double coef[BS * BS];
double block[BS][BS];
double tmp[BS][BS];
double frame_acc[BS][BS];
double cos_tab[BS][BS];
unsigned long seed;
long clipped;
long decoded_blocks;

int next_bits(int n) {
	seed = seed * 6364136223846793005 + 1442695040888963407;
	return (int)((seed >> 33) % n);
}

void build_zigzag(void) {
	int i, x, y, dir;
	x = 0;
	y = 0;
	dir = 1;
	for (i = 0; i < BS * BS; i++) {
		zigzag[i] = y * BS + x;
		if (dir) {
			if (x == BS - 1) { y++; dir = 0; }
			else if (y == 0) { x++; dir = 0; }
			else { x++; y--; }
		} else {
			if (y == BS - 1) { x++; dir = 1; }
			else if (x == 0) { y++; dir = 1; }
			else { x--; y++; }
		}
	}
}

void build_quant(void) {
	int i, j;
	for (i = 0; i < BS; i++)
		for (j = 0; j < BS; j++)
			quant[i * BS + j] = 8 + i + j;
}

void build_cos(void) {
	int i, j;
	for (i = 0; i < BS; i++)
		for (j = 0; j < BS; j++)
			cos_tab[i][j] = cos((2.0 * i + 1.0) * j * PI / (2.0 * BS));
}

/* read_block: synthesize a sparse run-length coefficient stream. */
void read_block(void) {
	int i, pos, run, level;
	for (i = 0; i < BS * BS; i++)
		coef[i] = 0.0;
	pos = 0;
	coef[zigzag[0]] = next_bits(256) - 128;
	for (;;) {
		run = next_bits(12) + 1;
		pos += run;
		if (pos >= BS * BS)
			break;
		level = next_bits(64) - 32;
		if (level == 0)
			level = 1;
		coef[zigzag[pos]] = level;
	}
}

void dequantize(void) {
	int i;
	for (i = 0; i < BS * BS; i++)
		coef[i] = coef[i] * quant[i] / 16.0;
}

double idct_basis(int u) {
	if (u == 0)
		return 0.353553390593;  /* 1 / (2 sqrt 2) */
	return 0.5;
}

void idct_rows(void) {
	int i, x, u;
	double s;
	for (i = 0; i < BS; i++) {
		for (x = 0; x < BS; x++) {
			s = 0.0;
			for (u = 0; u < BS; u++)
				s += idct_basis(u) * coef[i * BS + u] * cos_tab[x][u];
			tmp[i][x] = s;
		}
	}
}

void idct_cols(void) {
	int j, y, u;
	double s;
	for (j = 0; j < BS; j++) {
		for (y = 0; y < BS; y++) {
			s = 0.0;
			for (u = 0; u < BS; u++)
				s += idct_basis(u) * tmp[u][j] * cos_tab[y][u];
			block[y][j] = s;
		}
	}
}

double clip(double v) {
	if (v > 255.0) {
		clipped++;
		return 255.0;
	}
	if (v < -255.0) {
		clipped++;
		return -255.0;
	}
	return v;
}

void accumulate(void) {
	int i, j;
	for (i = 0; i < BS; i++)
		for (j = 0; j < BS; j++)
			frame_acc[i][j] = clip(frame_acc[i][j] * 0.5 + block[i][j]);
}

double frame_energy(void) {
	int i, j;
	double e = 0.0;
	for (i = 0; i < BS; i++)
		for (j = 0; j < BS; j++)
			e += frame_acc[i][j] * frame_acc[i][j];
	return e;
}

void decode_frame(void) {
	int b;
	for (b = 0; b < BLOCKS_PER_FRAME; b++) {
		read_block();
		dequantize();
		idct_rows();
		idct_cols();
		accumulate();
		decoded_blocks++;
	}
}

int main(int argc, char **argv) {
	int frames, f;
	double e;
	if (argc < 3) {
		printf("usage: mpeg frames seed\n");
		return 2;
	}
	frames = atoi(argv[1]);
	seed = atoi(argv[2]) * 2654435761;
	build_zigzag();
	build_quant();
	build_cos();
	e = 0.0;
	for (f = 0; f < frames; f++) {
		decode_frame();
		e += frame_energy();
	}
	printf("frames %d blocks %ld clipped %ld energy %.3e\n",
	       frames, decoded_blocks, clipped, e);
	return 0;
}
`
