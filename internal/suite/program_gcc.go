package suite

import (
	"bytes"
	"fmt"
)

// gccInput generates a deterministic program in the mini language: a mix
// of constant-foldable expressions, variable chains, parenthesized
// nests, and prints.
func gccInput(name string, seed uint64, stmts int) Input {
	var b bytes.Buffer
	s := seed
	next := func(n uint64) uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return (s >> 33) % n
	}
	vars := "abcdefghijklm"
	// Seed every variable so loads never see stale zeros only.
	for i := 0; i < len(vars); i++ {
		fmt.Fprintf(&b, "%c = %d;\n", vars[i], i+1)
	}
	for i := 0; i < stmts; i++ {
		v := vars[next(uint64(len(vars)))]
		switch next(5) {
		case 0: // constant-foldable
			fmt.Fprintf(&b, "%c = %d * %d + %d;\n", v, next(9)+1, next(9)+1, next(50))
		case 1: // chain
			a, c := vars[next(uint64(len(vars)))], vars[next(uint64(len(vars)))]
			fmt.Fprintf(&b, "%c = %c + %c * %d;\n", v, a, c, next(7)+1)
		case 2: // parenthesized nest
			a := vars[next(uint64(len(vars)))]
			fmt.Fprintf(&b, "%c = ((%c + %d) * (%d + %d)) - (%c / %d);\n",
				v, a, next(20), next(5)+1, next(5)+1, a, next(4)+1)
		case 3:
			fmt.Fprintf(&b, "print %c;\n", v)
		default:
			a := vars[next(uint64(len(vars)))]
			fmt.Fprintf(&b, "%c = %c - %d;\n", v, a, next(30))
		}
	}
	b.WriteString("print a; print b; print c;\n")
	return Input{Name: name, Stdin: b.Bytes()}
}

// GCC mirrors the suite's gcc entry in miniature: a multi-pass compiler
// for a tiny assignment language — lexer, recursive-descent parser into
// malloc'd AST nodes, a constant-folding pass, stack-code generation,
// and a stack-machine executor. Pointer-chasing, recursion, and switch
// dispatch dominate.
func GCC() *Program {
	return &Program{
		Name:        "gcc",
		Description: "GNU C compiler (miniature multi-pass compiler)",
		Source:      gccSrc,
		Inputs: []Input{
			gccInput("straight", 1, 120),
			gccInput("folding", 2, 150),
			gccInput("chain", 3, 180),
			gccInput("deep", 4, 140),
		},
	}
}

const gccSrc = `/* gcc: a miniature multi-pass compiler and stack machine. */
#define T_NUM 1
#define T_VAR 2
#define T_OP 3
#define T_LP 4
#define T_RP 5
#define T_SEMI 6
#define T_ASSIGN 7
#define T_PRINT 8
#define T_EOF 9

#define N_NUM 1
#define N_VAR 2
#define N_BIN 3

#define OP_PUSH 1
#define OP_LOAD 2
#define OP_STORE 3
#define OP_ADD 4
#define OP_SUB 5
#define OP_MUL 6
#define OP_DIV 7
#define OP_PRINT 8
#define OP_HALT 9

struct node {
	int kind;
	int val;          /* number, variable index, or operator char */
	struct node *lhs;
	struct node *rhs;
};

int tok;
int tok_val;
int cur_ch;
long vars[26];
int code_op[4096];
long code_arg[4096];
int ncode;
long folded;
long nodes_made;

void fatal(char *msg) {
	printf("error: %s\n", msg);
	exit(1);
}

void advance_ch(void) {
	cur_ch = getchar();
}

void next_token(void) {
	while (cur_ch == ' ' || cur_ch == '\t' || cur_ch == '\n')
		advance_ch();
	if (cur_ch == -1) {
		tok = T_EOF;
		return;
	}
	if (cur_ch >= '0' && cur_ch <= '9') {
		tok_val = 0;
		while (cur_ch >= '0' && cur_ch <= '9') {
			tok_val = tok_val * 10 + (cur_ch - '0');
			advance_ch();
		}
		tok = T_NUM;
		return;
	}
	if (cur_ch >= 'a' && cur_ch <= 'z') {
		char name[16];
		int n = 0;
		while (cur_ch >= 'a' && cur_ch <= 'z') {
			if (n < 15)
				name[n++] = cur_ch;
			advance_ch();
		}
		name[n] = 0;
		if (strcmp(name, "print") == 0) {
			tok = T_PRINT;
			return;
		}
		if (n != 1)
			fatal("variable names are single letters");
		tok = T_VAR;
		tok_val = name[0] - 'a';
		return;
	}
	switch (cur_ch) {
	case '+': case '-': case '*': case '/':
		tok = T_OP;
		tok_val = cur_ch;
		advance_ch();
		return;
	case '(':
		tok = T_LP;
		advance_ch();
		return;
	case ')':
		tok = T_RP;
		advance_ch();
		return;
	case ';':
		tok = T_SEMI;
		advance_ch();
		return;
	case '=':
		tok = T_ASSIGN;
		advance_ch();
		return;
	default:
		fatal("bad character");
	}
}

struct node *new_node(int kind, int val, struct node *lhs, struct node *rhs) {
	struct node *n = (struct node *)malloc(sizeof(struct node));
	if (n == 0)
		fatal("out of memory");
	n->kind = kind;
	n->val = val;
	n->lhs = lhs;
	n->rhs = rhs;
	nodes_made++;
	return n;
}

struct node *parse_expr(void);

struct node *parse_primary(void) {
	struct node *n;
	if (tok == T_NUM) {
		n = new_node(N_NUM, tok_val, 0, 0);
		next_token();
		return n;
	}
	if (tok == T_VAR) {
		n = new_node(N_VAR, tok_val, 0, 0);
		next_token();
		return n;
	}
	if (tok == T_LP) {
		next_token();
		n = parse_expr();
		if (tok != T_RP)
			fatal("missing )");
		next_token();
		return n;
	}
	fatal("expected expression");
	return 0;
}

struct node *parse_term(void) {
	struct node *n = parse_primary();
	while (tok == T_OP && (tok_val == '*' || tok_val == '/')) {
		int op = tok_val;
		next_token();
		n = new_node(N_BIN, op, n, parse_primary());
	}
	return n;
}

struct node *parse_expr(void) {
	struct node *n = parse_term();
	while (tok == T_OP && (tok_val == '+' || tok_val == '-')) {
		int op = tok_val;
		next_token();
		n = new_node(N_BIN, op, n, parse_term());
	}
	return n;
}

/* fold: constant-fold the tree in place, counting reductions. */
struct node *fold(struct node *n) {
	long a, b, r;
	if (n->kind != N_BIN)
		return n;
	n->lhs = fold(n->lhs);
	n->rhs = fold(n->rhs);
	if (n->lhs->kind != N_NUM || n->rhs->kind != N_NUM)
		return n;
	a = n->lhs->val;
	b = n->rhs->val;
	switch (n->val) {
	case '+': r = a + b; break;
	case '-': r = a - b; break;
	case '*': r = a * b; break;
	default:
		if (b == 0)
			fatal("division by zero in constant");
		r = a / b;
		break;
	}
	folded++;
	free(n->lhs);
	free(n->rhs);
	n->kind = N_NUM;
	n->val = r;
	n->lhs = 0;
	n->rhs = 0;
	return n;
}

void emit_op(int op, long arg) {
	if (ncode >= 4096)
		fatal("code overflow");
	code_op[ncode] = op;
	code_arg[ncode] = arg;
	ncode++;
}

void gen_expr(struct node *n) {
	if (n->kind == N_NUM) {
		emit_op(OP_PUSH, n->val);
		return;
	}
	if (n->kind == N_VAR) {
		emit_op(OP_LOAD, n->val);
		return;
	}
	gen_expr(n->lhs);
	gen_expr(n->rhs);
	switch (n->val) {
	case '+': emit_op(OP_ADD, 0); break;
	case '-': emit_op(OP_SUB, 0); break;
	case '*': emit_op(OP_MUL, 0); break;
	default:  emit_op(OP_DIV, 0); break;
	}
}

void free_tree(struct node *n) {
	if (n == 0)
		return;
	free_tree(n->lhs);
	free_tree(n->rhs);
	free(n);
}

void parse_statement(void) {
	struct node *e;
	int target;
	if (tok == T_PRINT) {
		next_token();
		e = fold(parse_expr());
		gen_expr(e);
		emit_op(OP_PRINT, 0);
		free_tree(e);
	} else if (tok == T_VAR) {
		target = tok_val;
		next_token();
		if (tok != T_ASSIGN)
			fatal("expected =");
		next_token();
		e = fold(parse_expr());
		gen_expr(e);
		emit_op(OP_STORE, target);
		free_tree(e);
	} else {
		fatal("expected statement");
	}
	if (tok != T_SEMI)
		fatal("expected ;");
	next_token();
}

long run_code(void) {
	long stack[256];
	int sp = 0, pc = 0;
	long steps = 0;
	for (;;) {
		int op = code_op[pc];
		long arg = code_arg[pc];
		pc++;
		steps++;
		switch (op) {
		case OP_PUSH:
			stack[sp++] = arg;
			break;
		case OP_LOAD:
			stack[sp++] = vars[arg];
			break;
		case OP_STORE:
			vars[arg] = stack[--sp];
			break;
		case OP_ADD:
			sp--;
			stack[sp - 1] += stack[sp];
			break;
		case OP_SUB:
			sp--;
			stack[sp - 1] -= stack[sp];
			break;
		case OP_MUL:
			sp--;
			stack[sp - 1] *= stack[sp];
			break;
		case OP_DIV:
			sp--;
			if (stack[sp] == 0)
				fatal("division by zero");
			stack[sp - 1] /= stack[sp];
			break;
		case OP_PRINT:
			printf("%ld\n", stack[--sp]);
			break;
		case OP_HALT:
			return steps;
		default:
			fatal("bad opcode");
		}
	}
}

int main(void) {
	long steps;
	advance_ch();
	next_token();
	while (tok != T_EOF)
		parse_statement();
	emit_op(OP_HALT, 0);
	steps = run_code();
	printf("compiled %d ops, folded %ld, %ld nodes, ran %ld steps\n",
	       ncode, folded, nodes_made, steps);
	return 0;
}
`
