package suite

// SC mirrors the suite's sc: a spreadsheet evaluator. Formula parsing,
// recursive dependency evaluation with cycle detection, and a final
// recalculation sweep.
func SC() *Program {
	return &Program{
		Name:        "sc",
		Description: "Unix spreadsheet calculator",
		Source:      scSrc,
		Inputs: []Input{
			{Name: "ledger", Stdin: []byte(
				"A1=100\nA2=250\nA3=75\nB1=A1*2\nB2=A2+B1\nB3=B2-A3\nC1=B1+B2+B3\n" +
					"C2=C1/4\nD1=C2*C2\n!\n")},
			{Name: "cascade", Stdin: []byte(
				"A1=1\nB1=A1+A1\nC1=B1+B1\nD1=C1+C1\nE1=D1+D1\nF1=E1+E1\nG1=F1+F1\nH1=G1+G1\n" +
					"A2=H1-1\nB2=A2*3\n!\n")},
			{Name: "grid", Stdin: []byte(
				"A1=5\nB1=6\nC1=7\nD1=8\nA2=A1*B1\nB2=B1*C1\nC2=C1*D1\nD2=D1*A1\n" +
					"A3=A2+B2\nB3=B2+C2\nC3=C2+D2\nD3=D2+A2\nA4=A3+B3+C3+D3\n!\n")},
			{Name: "recalc", Stdin: []byte(
				"A1=10\nB1=A1+5\nC1=B1*2\nA1=20\nB2=C1+A1\nD4=B2%7\nA5=(B2+C1)*(A1-5)\n!\n")},
		},
	}
}

const scSrc = `/* sc: an 8x8 spreadsheet with formula cells. */
#define ROWS 8
#define COLS 8
#define MAXF 64
#define S_EMPTY 0
#define S_SET 1
#define S_EVAL 2
#define S_BUSY 3

char formula[ROWS * COLS][MAXF];
int state[ROWS * COLS];
long cellval[ROWS * COLS];
char linebuf[MAXF];
int parse_pos;
char *cursor;
long evals;

void die(char *msg) {
	printf("sc: %s\n", msg);
	exit(1);
}

int cell_index(int col, int row) {
	return row * COLS + col;
}

long eval_cell(int idx);

long parse_sum(void);

long parse_atom(void) {
	long v;
	int c = *cursor;
	if (c == '(') {
		cursor++;
		v = parse_sum();
		if (*cursor != ')')
			die("missing )");
		cursor++;
		return v;
	}
	if (c >= '0' && c <= '9') {
		v = 0;
		while (*cursor >= '0' && *cursor <= '9') {
			v = v * 10 + (*cursor - '0');
			cursor++;
		}
		return v;
	}
	if (c >= 'A' && c <= 'H') {
		int col = c - 'A';
		int row;
		cursor++;
		if (*cursor < '1' || *cursor > '8')
			die("bad row");
		row = *cursor - '1';
		cursor++;
		return eval_cell(cell_index(col, row));
	}
	die("bad formula atom");
	return 0;
}

long parse_product(void) {
	long v = parse_atom();
	while (*cursor == '*' || *cursor == '/' || *cursor == '%') {
		int op = *cursor;
		long r;
		cursor++;
		r = parse_atom();
		if (op == '*') {
			v *= r;
		} else if (r == 0) {
			die("division by zero");
		} else if (op == '/') {
			v /= r;
		} else {
			v %= r;
		}
	}
	return v;
}

long parse_sum(void) {
	long v = parse_product();
	while (*cursor == '+' || *cursor == '-') {
		int op = *cursor;
		cursor++;
		if (op == '+')
			v += parse_product();
		else
			v -= parse_product();
	}
	return v;
}

long eval_cell(int idx) {
	char *saved;
	long v;
	evals++;
	if (state[idx] == S_EMPTY)
		return 0;
	if (state[idx] == S_EVAL)
		return cellval[idx];
	if (state[idx] == S_BUSY)
		die("circular reference");
	state[idx] = S_BUSY;
	saved = cursor;
	cursor = formula[idx];
	v = parse_sum();
	if (*cursor != 0)
		die("trailing formula text");
	cursor = saved;
	cellval[idx] = v;
	state[idx] = S_EVAL;
	return v;
}

void invalidate(void) {
	int i;
	for (i = 0; i < ROWS * COLS; i++)
		if (state[i] == S_EVAL)
			state[i] = S_SET;
}

void set_cell(char *line) {
	int col, row, idx, n;
	if (line[0] < 'A' || line[0] > 'H')
		die("bad column");
	col = line[0] - 'A';
	if (line[1] < '1' || line[1] > '8')
		die("bad row");
	row = line[1] - '1';
	if (line[2] != '=')
		die("expected =");
	idx = cell_index(col, row);
	n = 0;
	line += 3;
	while (line[n]) {
		if (n >= MAXF - 1)
			die("formula too long");
		formula[idx][n] = line[n];
		n++;
	}
	formula[idx][n] = 0;
	state[idx] = S_SET;
	invalidate();
}

int read_line(void) {
	int c, n = 0;
	while ((c = getchar()) != -1 && c != '\n') {
		if (c == ' ' || c == '\t')
			continue;
		if (n < MAXF - 1)
			linebuf[n++] = c;
	}
	linebuf[n] = 0;
	if (c == -1 && n == 0)
		return 0;
	return 1;
}

void recalc_all(void) {
	int r, c;
	for (r = 0; r < ROWS; r++)
		for (c = 0; c < COLS; c++)
			eval_cell(cell_index(c, r));
}

void show_sheet(void) {
	int r, c;
	long total = 0;
	for (r = 0; r < ROWS; r++) {
		int live = 0;
		for (c = 0; c < COLS; c++)
			if (state[cell_index(c, r)] != S_EMPTY)
				live = 1;
		if (!live)
			continue;
		printf("row %d:", r + 1);
		for (c = 0; c < COLS; c++) {
			int idx = cell_index(c, r);
			if (state[idx] != S_EMPTY) {
				printf(" %c=%ld", 'A' + c, cellval[idx]);
				total += cellval[idx];
			}
		}
		printf("\n");
	}
	printf("total %ld evals %ld\n", total, evals);
}

int main(void) {
	while (read_line()) {
		if (linebuf[0] == 0)
			continue;
		if (linebuf[0] == '!')
			break;
		set_cell(linebuf);
		recalc_all();
	}
	recalc_all();
	show_sheet();
	return 0;
}
`
