package suite

// Alvinn mirrors SPEC92's alvinn: neural-network back-propagation
// training. Numeric code with simple, highly predictable loop nests —
// the class of program where the paper's fixed loop-count guess is
// weakest but block ordering is easy.
func Alvinn() *Program {
	return &Program{
		Name:        "alvinn",
		Description: "Back-propagation on a neural net",
		Source:      alvinnSrc,
		Inputs: []Input{
			{Name: "epochs4", Args: []string{"4", "17"}},
			{Name: "epochs6", Args: []string{"6", "42"}},
			{Name: "epochs8", Args: []string{"8", "7"}},
			{Name: "epochs5", Args: []string{"5", "99"}},
		},
	}
}

const alvinnSrc = `/* alvinn: back-propagation training on a small MLP. */
#define NIN 16
#define NHID 12
#define NOUT 4
#define NPAT 24
#define RATE 0.25

double w1[NHID][NIN];
double w2[NOUT][NHID];
double b1[NHID];
double b2[NOUT];
double hid[NHID];
double out[NOUT];
double dhid[NHID];
double dout[NOUT];
double pat_in[NPAT][NIN];
double pat_out[NPAT][NOUT];
unsigned long seed;

double frand(void) {
	seed = seed * 1103515245 + 12345;
	return (double)((seed >> 16) & 32767) / 32767.0 - 0.5;
}

double squash(double x) {
	return 1.0 / (1.0 + exp(-x));
}

void init_weights(void) {
	int i, j;
	for (i = 0; i < NHID; i++) {
		for (j = 0; j < NIN; j++)
			w1[i][j] = frand();
		b1[i] = frand();
	}
	for (i = 0; i < NOUT; i++) {
		for (j = 0; j < NHID; j++)
			w2[i][j] = frand();
		b2[i] = frand();
	}
}

void gen_patterns(void) {
	int p, i, k;
	for (p = 0; p < NPAT; p++) {
		for (i = 0; i < NIN; i++)
			pat_in[p][i] = frand();
		k = p % NOUT;
		for (i = 0; i < NOUT; i++)
			pat_out[p][i] = (i == k) ? 0.9 : 0.1;
	}
}

void forward(double *x) {
	int i, j;
	double s;
	for (i = 0; i < NHID; i++) {
		s = b1[i];
		for (j = 0; j < NIN; j++)
			s += w1[i][j] * x[j];
		hid[i] = squash(s);
	}
	for (i = 0; i < NOUT; i++) {
		s = b2[i];
		for (j = 0; j < NHID; j++)
			s += w2[i][j] * hid[j];
		out[i] = squash(s);
	}
}

void backward(double *target) {
	int i, j;
	double s;
	for (i = 0; i < NOUT; i++)
		dout[i] = (target[i] - out[i]) * out[i] * (1.0 - out[i]);
	for (j = 0; j < NHID; j++) {
		s = 0.0;
		for (i = 0; i < NOUT; i++)
			s += dout[i] * w2[i][j];
		dhid[j] = s * hid[j] * (1.0 - hid[j]);
	}
}

void update(double *x) {
	int i, j;
	for (i = 0; i < NOUT; i++) {
		for (j = 0; j < NHID; j++)
			w2[i][j] += RATE * dout[i] * hid[j];
		b2[i] += RATE * dout[i];
	}
	for (i = 0; i < NHID; i++) {
		for (j = 0; j < NIN; j++)
			w1[i][j] += RATE * dhid[i] * x[j];
		b1[i] += RATE * dhid[i];
	}
}

double pattern_error(double *target) {
	int i;
	double e, d;
	e = 0.0;
	for (i = 0; i < NOUT; i++) {
		d = target[i] - out[i];
		e += d * d;
	}
	return e;
}

double train_epoch(void) {
	int p;
	double total;
	total = 0.0;
	for (p = 0; p < NPAT; p++) {
		forward(pat_in[p]);
		backward(pat_out[p]);
		update(pat_in[p]);
		total += pattern_error(pat_out[p]);
	}
	return total;
}

int classify(double *x) {
	int i, best;
	forward(x);
	best = 0;
	for (i = 1; i < NOUT; i++)
		if (out[i] > out[best])
			best = i;
	return best;
}

int main(int argc, char **argv) {
	int epochs, e, p, hits;
	double err;
	if (argc < 3) {
		printf("usage: alvinn epochs seed\n");
		return 2;
	}
	epochs = atoi(argv[1]);
	seed = atoi(argv[2]);
	init_weights();
	gen_patterns();
	err = 0.0;
	for (e = 0; e < epochs; e++)
		err = train_epoch();
	hits = 0;
	for (p = 0; p < NPAT; p++)
		if (classify(pat_in[p]) == p % NOUT)
			hits++;
	printf("epochs %d error %.4f hits %d/%d\n", epochs, err, hits, NPAT);
	return 0;
}
`
