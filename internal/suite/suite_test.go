package suite

import (
	"strings"
	"testing"

	"staticest"
)

// TestAllProgramsCompileAndRun is the suite's gate: every program must
// compile through the full pipeline and run cleanly on every input.
func TestAllProgramsCompileAndRun(t *testing.T) {
	for _, p := range Programs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			u, err := p.CompileCached()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			if len(p.Inputs) < 4 {
				t.Errorf("only %d inputs; the paper used four or more", len(p.Inputs))
			}
			inputs := p.Inputs
			if p.TimingInput != nil {
				inputs = append(append([]Input{}, inputs...), *p.TimingInput)
			}
			for _, in := range inputs {
				res, err := u.Run(staticest.RunOptions{Args: in.Args, Stdin: in.Stdin})
				if err != nil {
					t.Fatalf("input %s: %v", in.Name, err)
				}
				if res.ExitCode != 0 {
					t.Errorf("input %s: exit code %d, output:\n%s",
						in.Name, res.ExitCode, res.Output)
				}
				if res.Steps < 1000 {
					t.Errorf("input %s: only %d block executions; too trivial to profile",
						in.Name, res.Steps)
				}
				if res.Steps > 5_000_000 {
					t.Errorf("input %s: %d block executions; too slow for the harness",
						in.Name, res.Steps)
				}
			}
		})
	}
}

// TestInputsDiffer ensures each program's inputs exercise different
// behaviour (otherwise cross-input profiling scores are trivially 100%).
func TestInputsDiffer(t *testing.T) {
	for _, p := range Programs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			u, err := p.CompileCached()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			outs := map[string]string{}
			for _, in := range p.Inputs {
				res, err := u.Run(staticest.RunOptions{Args: in.Args, Stdin: in.Stdin})
				if err != nil {
					t.Fatalf("input %s: %v", in.Name, err)
				}
				outs[in.Name] = string(res.Output)
			}
			distinct := map[string]bool{}
			for _, o := range outs {
				distinct[o] = true
			}
			if len(distinct) < 2 {
				t.Errorf("all %d inputs produce identical output", len(outs))
			}
		})
	}
}

func TestSuiteMetadata(t *testing.T) {
	progs := Programs()
	if len(progs) != 14 {
		t.Fatalf("suite has %d programs, want 14 (Table 1)", len(progs))
	}
	seen := map[string]bool{}
	for _, p := range progs {
		if seen[p.Name] {
			t.Errorf("duplicate program name %s", p.Name)
		}
		seen[p.Name] = true
		if p.Description == "" {
			t.Errorf("%s: missing description", p.Name)
		}
		if Lines(p.Source) < 50 {
			t.Errorf("%s: suspiciously small (%d lines)", p.Name, Lines(p.Source))
		}
	}
	for _, want := range []string{"alvinn", "compress", "ear", "eqntott",
		"espresso", "gcc", "sc", "xlisp", "awk", "bison", "cholesky",
		"gs", "mpeg", "water"} {
		if !seen[want] {
			t.Errorf("suite missing %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("compress")
	if err != nil || p.Name != "compress" {
		t.Fatalf("ByName(compress) = %v, %v", p, err)
	}
	if _, err := ByName("nope"); err == nil ||
		!strings.Contains(err.Error(), "unknown program") {
		t.Errorf("ByName(nope) error = %v", err)
	}
}

// TestCompressShape checks the properties Figure 10 depends on: 16
// functions with a handful dominating the cycle count.
func TestCompressShape(t *testing.T) {
	p := Compress()
	u, err := p.CompileCached()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if n := len(u.Sem.Funcs); n != 16 {
		t.Errorf("compress has %d functions, want 16 (paper)", n)
	}
	if p.TimingInput == nil {
		t.Fatal("compress needs a held-out timing input for Figure 10")
	}
}
