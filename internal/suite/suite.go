// Package suite provides the 14-program benchmark suite standing in for
// the paper's Table 1 (the SPEC92 C programs plus awk, bison, cholesky,
// gs, mpeg, and water). Each program is written in the supported C
// subset and ships with at least four inputs, so profiles can be scored
// against held-out inputs exactly as the paper does. The programs are
// synthetic but preserve each original's structural character — the
// property the estimators are sensitive to (see DESIGN.md).
package suite

import (
	"fmt"
	"strings"
	"sync"

	"staticest"
)

// Input is one profiling input for a program.
type Input struct {
	Name  string
	Args  []string
	Stdin []byte
}

// Program is one suite member.
type Program struct {
	Name        string
	Description string
	Source      string
	Inputs      []Input
	// TimingInput, when set, is a held-out input used only by the
	// selective-optimization experiment (Figure 10).
	TimingInput *Input
}

// Lines counts non-blank source lines (the paper's Table 1 reports
// source lines).
func Lines(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// Compile compiles the program through the full pipeline.
func (p *Program) Compile() (*staticest.Unit, error) {
	return staticest.Compile(p.Name+".c", []byte(p.Source))
}

// Programs returns the full suite in the paper's Table 1 order.
func Programs() []*Program {
	return []*Program{
		Alvinn(),
		Compress(),
		Ear(),
		Eqntott(),
		Espresso(),
		GCC(),
		SC(),
		Xlisp(),
		Awk(),
		Bison(),
		Cholesky(),
		GS(),
		MPEG(),
		Water(),
	}
}

// ByName returns the named program or an error listing valid names.
func ByName(name string) (*Program, error) {
	var names []string
	for _, p := range Programs() {
		if p.Name == name {
			return p, nil
		}
		names = append(names, p.Name)
	}
	return nil, fmt.Errorf("unknown program %q (have %s)", name, strings.Join(names, ", "))
}

var (
	compiledMu sync.Mutex
	compiled   = map[string]*staticest.Unit{}
)

// CompileCached compiles a suite program once per process (the
// evaluation harness and benchmarks reuse units heavily).
func (p *Program) CompileCached() (*staticest.Unit, error) {
	compiledMu.Lock()
	defer compiledMu.Unlock()
	if u, ok := compiled[p.Name]; ok {
		return u, nil
	}
	u, err := p.Compile()
	if err != nil {
		return nil, err
	}
	compiled[p.Name] = u
	return u, nil
}
