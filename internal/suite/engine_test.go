package suite

import (
	"bytes"
	"runtime"
	"testing"
	"time"

	"staticest"
)

// runBoth executes the same run under the tree-walking reference
// evaluator and the bytecode engine and fails the test unless every
// observable — exit code, output bytes, step count, full profile,
// sparse probe vector, escape list, memory trace — is identical.
func runBoth(t *testing.T, u *staticest.Unit, label string, opts staticest.RunOptions) {
	t.Helper()
	opts.Engine = staticest.EngineTree
	tree, err := u.Run(opts)
	if err != nil {
		t.Fatalf("%s: tree engine: %v", label, err)
	}
	opts.Engine = staticest.EngineBytecode
	bc, err := u.Run(opts)
	if err != nil {
		t.Fatalf("%s: bytecode engine: %v", label, err)
	}
	if tree.ExitCode != bc.ExitCode {
		t.Errorf("%s: exit code: tree %d, bytecode %d", label, tree.ExitCode, bc.ExitCode)
	}
	if !bytes.Equal(tree.Output, bc.Output) {
		t.Errorf("%s: output differs (tree %d bytes, bytecode %d bytes)",
			label, len(tree.Output), len(bc.Output))
	}
	if tree.Steps != bc.Steps {
		t.Errorf("%s: steps: tree %d, bytecode %d", label, tree.Steps, bc.Steps)
	}
	switch {
	case tree.Profile != nil && bc.Profile != nil:
		for _, d := range staticest.DiffProfiles(tree.Profile, bc.Profile) {
			t.Errorf("%s: profile: %s", label, d)
		}
	case tree.Probes != nil && bc.Probes != nil:
		if len(tree.Probes.Counts) != len(bc.Probes.Counts) {
			t.Fatalf("%s: probe vector length: tree %d, bytecode %d",
				label, len(tree.Probes.Counts), len(bc.Probes.Counts))
		}
		for i := range tree.Probes.Counts {
			if tree.Probes.Counts[i] != bc.Probes.Counts[i] {
				t.Errorf("%s: probe %d: tree %g, bytecode %g",
					label, i, tree.Probes.Counts[i], bc.Probes.Counts[i])
			}
		}
		if len(tree.Probes.Escapes) != len(bc.Probes.Escapes) {
			t.Fatalf("%s: escape count: tree %d, bytecode %d",
				label, len(tree.Probes.Escapes), len(bc.Probes.Escapes))
		}
		for i := range tree.Probes.Escapes {
			if tree.Probes.Escapes[i] != bc.Probes.Escapes[i] {
				t.Errorf("%s: escape %d: tree %+v, bytecode %+v",
					label, i, tree.Probes.Escapes[i], bc.Probes.Escapes[i])
			}
		}
	default:
		t.Errorf("%s: result shape differs: tree profile=%v probes=%v, bytecode profile=%v probes=%v",
			label, tree.Profile != nil, tree.Probes != nil, bc.Profile != nil, bc.Probes != nil)
	}
	if len(tree.MemTrace) != len(bc.MemTrace) {
		t.Fatalf("%s: memory trace length: tree %d, bytecode %d",
			label, len(tree.MemTrace), len(bc.MemTrace))
	}
	for i := range tree.MemTrace {
		if tree.MemTrace[i] != bc.MemTrace[i] {
			t.Fatalf("%s: memory trace entry %d: tree %+v, bytecode %+v",
				label, i, tree.MemTrace[i], bc.MemTrace[i])
		}
	}
}

// TestEngineDifferential is the bytecode engine's ground truth: on every
// suite program and every input, the bytecode lowering must reproduce
// the tree-walking evaluator's observable behaviour exactly — full
// profiles, sparse probe vectors with exit() escape lists, and memory
// traces included.
func TestEngineDifferential(t *testing.T) {
	for _, p := range Programs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			u, err := p.CompileCached()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			plan := u.PlanProbes()
			refs := u.ReuseTable().RefIndex()
			inputs := p.Inputs
			if p.TimingInput != nil {
				inputs = append(append([]Input{}, inputs...), *p.TimingInput)
			}
			for _, in := range inputs {
				runBoth(t, u, in.Name+"/full", staticest.RunOptions{
					Args: in.Args, Stdin: in.Stdin,
				})
				runBoth(t, u, in.Name+"/sparse", staticest.RunOptions{
					Args: in.Args, Stdin: in.Stdin,
					Instrumentation: staticest.SparseInstrumentation,
					Plan:            plan,
				})
			}
			// Memory tracing on one input is enough per program: the trace
			// hook sites are static, so one traced run exercises them all.
			in := inputs[0]
			runBoth(t, u, in.Name+"/traced", staticest.RunOptions{
				Args: in.Args, Stdin: in.Stdin, MemRefs: refs,
			})
		})
	}
}

// TestEngineStepCap checks that the step budget trips identically on
// both engines: same error, same accounting.
func TestEngineStepCap(t *testing.T) {
	p := Compress()
	u, err := p.CompileCached()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	in := p.Inputs[0]
	for _, eng := range []staticest.Engine{staticest.EngineTree, staticest.EngineBytecode} {
		_, err := u.Run(staticest.RunOptions{
			Args: in.Args, Stdin: in.Stdin, MaxSteps: 1000, Engine: eng,
		})
		if err == nil {
			t.Fatalf("engine %d: step cap 1000 did not trip", eng)
		}
	}
}

// TestSparseNotSlower is the paper's economic claim carried through the
// bytecode engine: on every suite program, sparse instrumentation (the
// optimal probe placement) must not run slower than full
// instrumentation. Machine noise on shared runners dwarfs the real gap,
// so the measurement is paired and order-balanced — alternating
// full/sparse runs, best-of-N on each side — with a tolerance and a
// retry before declaring a regression. The precise regression detector
// is the bench-gate CI job; this test pins the direction.
func TestSparseNotSlower(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test; skipped in -short mode")
	}
	const (
		pairs     = 5
		tolerance = 1.10
		attempts  = 4
	)
	for _, p := range Programs() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			u, err := p.CompileCached()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			plan := u.PlanProbes()
			in := heaviestInput(t, u, p)
			fullOpts := staticest.RunOptions{Args: in.Args, Stdin: in.Stdin}
			sparseOpts := staticest.RunOptions{
				Args: in.Args, Stdin: in.Stdin,
				Instrumentation: staticest.SparseInstrumentation,
				Plan:            plan,
			}
			reps := 1
			run := func(opts staticest.RunOptions) time.Duration {
				start := time.Now()
				for r := 0; r < reps; r++ {
					if _, err := u.Run(opts); err != nil {
						t.Fatalf("input %s: %v", in.Name, err)
					}
				}
				return time.Since(start)
			}
			// Warm up both lowerings so compile cost stays out of the
			// timing, and batch short programs so each sample is long
			// enough to resolve above timer and scheduler noise.
			single := run(fullOpts)
			run(sparseOpts)
			for reps < 8 && time.Duration(reps)*single < 10*time.Millisecond {
				reps++
			}
			var lastFull, lastSparse time.Duration
			for attempt := 1; attempt <= attempts; attempt++ {
				// Flush garbage from earlier tests (and earlier attempts)
				// so a collection doesn't land inside one side's samples.
				runtime.GC()
				full, sparse := time.Duration(1<<62), time.Duration(1<<62)
				for i := 0; i < pairs; i++ {
					if i%2 == 0 {
						full = min(full, run(fullOpts))
						sparse = min(sparse, run(sparseOpts))
					} else {
						sparse = min(sparse, run(sparseOpts))
						full = min(full, run(fullOpts))
					}
				}
				lastFull, lastSparse = full, sparse
				if float64(sparse) <= float64(full)*tolerance {
					return
				}
			}
			t.Errorf("sparse %v slower than full %v (best of %d pairs, %d attempts, tolerance %.0f%%)",
				lastSparse, lastFull, pairs, attempts, (tolerance-1)*100)
		})
	}
}

// heaviestInput picks the program input executing the most blocks, so
// the timing comparison runs long enough to resolve above timer and
// scheduler noise.
func heaviestInput(t *testing.T, u *staticest.Unit, p *Program) Input {
	t.Helper()
	best, bestSteps := p.Inputs[0], int64(-1)
	for _, in := range p.Inputs {
		res, err := u.Run(staticest.RunOptions{Args: in.Args, Stdin: in.Stdin})
		if err != nil {
			t.Fatalf("input %s: %v", in.Name, err)
		}
		if res.Steps > bestSteps {
			best, bestSteps = in, res.Steps
		}
	}
	return best
}
