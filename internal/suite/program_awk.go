package suite

import (
	"bytes"
	"fmt"
)

// Awk mirrors the suite's awk: pattern matching over text lines — a
// Pike-style regex matcher plus field splitting and numeric
// accumulation. Heavily branchy character code.
func Awk() *Program {
	return &Program{
		Name:        "awk",
		Description: "Unix pattern-matching utility",
		Source:      awkSrc,
		Inputs: []Input{
			{Name: "literal", Args: []string{"error"}, Stdin: awkText(1)},
			{Name: "anchored", Args: []string{"^warn"}, Stdin: awkText(2)},
			{Name: "star", Args: []string{"re*quest"}, Stdin: awkText(3)},
			{Name: "dot", Args: []string{"c.de"}, Stdin: awkText(4)},
		},
	}
}

func awkText(seed uint64) []byte {
	templates := []string{
		"error in module %d at line %d",
		"warning: code %d exceeded quota %d",
		"request %d served in %d ms",
		"reeequest %d retried %d times",
		"info: user %d logged in from host %d",
		"code %d path /srv/data/%d",
		"warn %d disk usage at %d percent",
		"debug trace %d depth %d",
	}
	var b bytes.Buffer
	s := seed
	for i := 0; i < 260; i++ {
		s = s*6364136223846793005 + 1442695040888963407
		t := templates[(s>>33)%uint64(len(templates))]
		fmt.Fprintf(&b, t, (s>>17)%1000, (s>>40)%500)
		b.WriteByte('\n')
	}
	return b.Bytes()
}

const awkSrc = `/* awk: match a pattern against stdin lines, split fields, sum numbers. */
#define MAXLINE 256
#define MAXFIELDS 32

char line[MAXLINE];
char *fields[MAXFIELDS];
int nfields;
long matched_lines;
long total_lines;
long field_total;
long numeric_sum;

int match_here(char *pat, char *text);

int match_star(int c, char *pat, char *text) {
	do {
		if (match_here(pat, text))
			return 1;
	} while (*text != 0 && (*text++ == c || c == '.'));
	return 0;
}

int match_here(char *pat, char *text) {
	if (pat[0] == 0)
		return 1;
	if (pat[1] == '*')
		return match_star(pat[0], pat + 2, text);
	if (pat[0] == '$' && pat[1] == 0)
		return *text == 0;
	if (*text != 0 && (pat[0] == '.' || pat[0] == *text))
		return match_here(pat + 1, text + 1);
	return 0;
}

int match(char *pat, char *text) {
	if (pat[0] == '^')
		return match_here(pat + 1, text);
	do {
		if (match_here(pat, text))
			return 1;
	} while (*text++ != 0);
	return 0;
}

int read_line(void) {
	int c, n = 0;
	while ((c = getchar()) != -1 && c != '\n') {
		if (n < MAXLINE - 1)
			line[n++] = c;
	}
	line[n] = 0;
	if (c == -1 && n == 0)
		return 0;
	return 1;
}

void split_fields(void) {
	char *p = line;
	nfields = 0;
	for (;;) {
		while (*p == ' ' || *p == '\t')
			*p++ = 0;
		if (*p == 0)
			return;
		if (nfields < MAXFIELDS)
			fields[nfields++] = p;
		while (*p != 0 && *p != ' ' && *p != '\t')
			p++;
	}
}

int is_number(char *s) {
	if (*s == '-')
		s++;
	if (*s == 0)
		return 0;
	while (*s) {
		if (*s < '0' || *s > '9')
			return 0;
		s++;
	}
	return 1;
}

void accumulate(void) {
	int i;
	field_total += nfields;
	for (i = 0; i < nfields; i++)
		if (is_number(fields[i]))
			numeric_sum += atol(fields[i]);
}

int main(int argc, char **argv) {
	char *pat;
	if (argc < 2) {
		printf("usage: awk pattern\n");
		return 2;
	}
	pat = argv[1];
	while (read_line()) {
		total_lines++;
		if (match(pat, line)) {
			matched_lines++;
			split_fields();
			accumulate();
		}
	}
	printf("matched %ld/%ld lines fields %ld sum %ld\n",
	       matched_lines, total_lines, field_total, numeric_sum);
	return 0;
}
`
