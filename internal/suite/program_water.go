package suite

// Water mirrors the suite's water: molecular-dynamics simulation of a
// small system — O(N²) pairwise forces and velocity-Verlet integration.
func Water() *Program {
	return &Program{
		Name:        "water",
		Description: "Simulate a system of water molecules",
		Source:      waterSrc,
		Inputs: []Input{
			{Name: "n8s30", Args: []string{"8", "30", "13"}},
			{Name: "n10s25", Args: []string{"10", "25", "29"}},
			{Name: "n12s20", Args: []string{"12", "20", "3"}},
			{Name: "n9s35", Args: []string{"9", "35", "41"}},
		},
	}
}

const waterSrc = `/* water: Lennard-Jones molecular dynamics with velocity Verlet. */
#define MAXN 16
#define DT 0.004
#define CUT2 6.25

double px[MAXN], py[MAXN], pz[MAXN];
double vx[MAXN], vy[MAXN], vz[MAXN];
double fx[MAXN], fy[MAXN], fz[MAXN];
int n;
unsigned long seed;
double potential;
long interactions;

double frand(void) {
	seed = seed * 1103515245 + 12345;
	return (double)((seed >> 16) & 32767) / 32767.0;
}

void init_system(void) {
	int i, side;
	double spacing;
	side = 1;
	while (side * side * side < n)
		side++;
	spacing = 1.3;
	for (i = 0; i < n; i++) {
		px[i] = (i % side) * spacing;
		py[i] = ((i / side) % side) * spacing;
		pz[i] = (i / (side * side)) * spacing;
		vx[i] = frand() - 0.5;
		vy[i] = frand() - 0.5;
		vz[i] = frand() - 0.5;
	}
}

void zero_forces(void) {
	int i;
	for (i = 0; i < n; i++) {
		fx[i] = 0.0;
		fy[i] = 0.0;
		fz[i] = 0.0;
	}
}

/* pair_force: Lennard-Jones with a radius cutoff. */
void pair_force(int i, int j) {
	double dx, dy, dz, r2, inv2, inv6, f;
	dx = px[i] - px[j];
	dy = py[i] - py[j];
	dz = pz[i] - pz[j];
	r2 = dx * dx + dy * dy + dz * dz;
	if (r2 > CUT2)
		return;
	if (r2 < 0.01)
		r2 = 0.01;
	interactions++;
	inv2 = 1.0 / r2;
	inv6 = inv2 * inv2 * inv2;
	f = 24.0 * inv2 * inv6 * (2.0 * inv6 - 1.0);
	potential += 4.0 * inv6 * (inv6 - 1.0);
	fx[i] += f * dx;
	fy[i] += f * dy;
	fz[i] += f * dz;
	fx[j] -= f * dx;
	fy[j] -= f * dy;
	fz[j] -= f * dz;
}

void compute_forces(void) {
	int i, j;
	zero_forces();
	potential = 0.0;
	for (i = 0; i < n; i++)
		for (j = i + 1; j < n; j++)
			pair_force(i, j);
}

void half_kick(void) {
	int i;
	for (i = 0; i < n; i++) {
		vx[i] += 0.5 * DT * fx[i];
		vy[i] += 0.5 * DT * fy[i];
		vz[i] += 0.5 * DT * fz[i];
	}
}

void drift(void) {
	int i;
	for (i = 0; i < n; i++) {
		px[i] += DT * vx[i];
		py[i] += DT * vy[i];
		pz[i] += DT * vz[i];
	}
}

double kinetic(void) {
	int i;
	double k = 0.0;
	for (i = 0; i < n; i++)
		k += vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i];
	return 0.5 * k;
}

void step(void) {
	half_kick();
	drift();
	compute_forces();
	half_kick();
}

int main(int argc, char **argv) {
	int steps, s;
	double e0, e1;
	if (argc < 4) {
		printf("usage: water n steps seed\n");
		return 2;
	}
	n = atoi(argv[1]);
	steps = atoi(argv[2]);
	seed = atoi(argv[3]);
	if (n < 2 || n > MAXN) {
		printf("n out of range\n");
		return 2;
	}
	init_system();
	compute_forces();
	e0 = kinetic() + potential;
	for (s = 0; s < steps; s++)
		step();
	e1 = kinetic() + potential;
	printf("n %d steps %d pairs %ld e0 %.4f e1 %.4f\n",
	       n, steps, interactions, e0, e1);
	return 0;
}
`
