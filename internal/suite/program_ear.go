package suite

// Ear mirrors SPEC92's ear: simulation of sound processing in the inner
// ear — a filter bank over a sampled signal. Float-heavy code with long
// counted loops.
func Ear() *Program {
	return &Program{
		Name:        "ear",
		Description: "Simulate sound processing in the ear",
		Source:      earSrc,
		Inputs: []Input{
			{Name: "tone", Args: []string{"1", "900"}},
			{Name: "chirp", Args: []string{"2", "1100"}},
			{Name: "noise", Args: []string{"3", "800"}},
			{Name: "mix", Args: []string{"4", "1000"}},
		},
	}
}

const earSrc = `/* ear: cochlear filter-bank simulation over a synthetic signal. */
#define NSAMP 1200
#define NCHAN 8
#define NTAP 16
#define PI 3.14159265358979

double signal[NSAMP];
double filtered[NSAMP];
double taps[NCHAN][NTAP];
double channel_energy[NCHAN];
double envelope[NSAMP];
int mode;

void gen_signal(int n) {
	int i;
	double t;
	for (i = 0; i < n; i++) {
		t = (double)i / 100.0;
		if (mode == 1) {
			signal[i] = sin(2.0 * PI * 4.0 * t);
		} else if (mode == 2) {
			signal[i] = sin(2.0 * PI * (2.0 + t) * t);
		} else if (mode == 3) {
			signal[i] = sin(12.9898 * i) * 0.8 + sin(78.233 * i) * 0.2;
		} else {
			signal[i] = 0.6 * sin(2.0 * PI * 3.0 * t) + 0.4 * sin(2.0 * PI * 9.0 * t);
		}
	}
}

void design_bank(void) {
	int ch, k;
	double f, w;
	for (ch = 0; ch < NCHAN; ch++) {
		f = 1.0 + ch * 1.5;
		for (k = 0; k < NTAP; k++) {
			w = 0.54 - 0.46 * cos(2.0 * PI * k / (NTAP - 1));
			taps[ch][k] = w * cos(2.0 * PI * f * k / 64.0) / NTAP;
		}
	}
}

void fir_filter(double *coef, int n) {
	int i, k;
	double acc;
	for (i = 0; i < n; i++) {
		acc = 0.0;
		for (k = 0; k < NTAP; k++) {
			if (i - k >= 0)
				acc += coef[k] * signal[i - k];
		}
		filtered[i] = acc;
	}
}

void rectify(int n) {
	int i;
	for (i = 0; i < n; i++)
		if (filtered[i] < 0.0)
			filtered[i] = -filtered[i];
}

void smooth(int n) {
	int i;
	double state;
	state = 0.0;
	for (i = 0; i < n; i++) {
		state = 0.9 * state + 0.1 * filtered[i];
		envelope[i] = state;
	}
}

double band_energy(int n) {
	int i;
	double e;
	e = 0.0;
	for (i = 0; i < n; i++)
		e += envelope[i] * envelope[i];
	return e / n;
}

int loudest_channel(void) {
	int ch, best;
	best = 0;
	for (ch = 1; ch < NCHAN; ch++)
		if (channel_energy[ch] > channel_energy[best])
			best = ch;
	return best;
}

int main(int argc, char **argv) {
	int n, ch;
	double total;
	if (argc < 3) {
		printf("usage: ear mode samples\n");
		return 2;
	}
	mode = atoi(argv[1]);
	n = atoi(argv[2]);
	if (n > NSAMP)
		n = NSAMP;
	gen_signal(n);
	design_bank();
	total = 0.0;
	for (ch = 0; ch < NCHAN; ch++) {
		fir_filter(taps[ch], n);
		rectify(n);
		smooth(n);
		channel_energy[ch] = band_energy(n);
		total += channel_energy[ch];
	}
	printf("mode %d loudest %d total %.5f\n", mode, loudest_channel(), total);
	return 0;
}
`
