package suite

// Espresso mirrors SPEC92's espresso: two-level boolean minimization.
// This member implements the Quine-McCluskey combining step over cube
// lists — bit manipulation, quadratic merge loops, and data-dependent
// branching.
func Espresso() *Program {
	return &Program{
		Name:        "espresso",
		Description: "Minimize boolean functions",
		Source:      espressoSrc,
		Inputs: []Input{
			{Name: "parity4", Stdin: []byte("4\n0 3 5 6 9 10 12 15\n")},
			{Name: "majority5", Stdin: []byte("5\n7 11 13 14 15 19 21 22 23 25 26 27 28 29 30 31\n")},
			{Name: "sparse6", Stdin: []byte("6\n0 1 2 3 8 9 10 11 32 33 34 35 40 41 42 43\n")},
			{Name: "dense5", Stdin: []byte("5\n1 3 5 7 9 11 13 15 17 19 21 23 25 27 29 31 0 4 8 12\n")},
		},
	}
}

const espressoSrc = `/* espresso: Quine-McCluskey prime-implicant generation. */
#define MAXCUBE 2048
#define MAXVAR 10

/* A cube is (value, mask): mask bits are "don't care". */
int cube_val[MAXCUBE];
int cube_mask[MAXCUBE];
int cube_used[MAXCUBE];
int ncubes;
int nvars;

int prime_val[MAXCUBE];
int prime_mask[MAXCUBE];
int nprimes;

int next_val[MAXCUBE];
int next_mask[MAXCUBE];
int nnext;

int popcount(int x) {
	int n = 0;
	while (x) {
		n++;
		x = x & (x - 1);
	}
	return n;
}

int read_int(int *out) {
	int c, v, got;
	v = 0;
	got = 0;
	c = getchar();
	while (c == ' ' || c == '\n' || c == '\t')
		c = getchar();
	while (c >= '0' && c <= '9') {
		v = v * 10 + (c - '0');
		got = 1;
		c = getchar();
	}
	*out = v;
	return got;
}

void add_cube(int val, int mask) {
	if (ncubes >= MAXCUBE) {
		printf("cube overflow\n");
		exit(1);
	}
	cube_val[ncubes] = val;
	cube_mask[ncubes] = mask;
	cube_used[ncubes] = 0;
	ncubes++;
}

int dedup_next(int val, int mask) {
	int i;
	for (i = 0; i < nnext; i++)
		if (next_val[i] == val && next_mask[i] == mask)
			return 1;
	return 0;
}

void add_next(int val, int mask) {
	if (dedup_next(val, mask))
		return;
	if (nnext >= MAXCUBE) {
		printf("next overflow\n");
		exit(1);
	}
	next_val[nnext] = val;
	next_mask[nnext] = mask;
	nnext++;
}

void add_prime(int val, int mask) {
	int i;
	for (i = 0; i < nprimes; i++)
		if (prime_val[i] == val && prime_mask[i] == mask)
			return;
	prime_val[nprimes] = val;
	prime_mask[nprimes] = mask;
	nprimes++;
}

/* try_combine: cubes differing in exactly one cared bit merge. */
int try_combine(int i, int j) {
	int diff;
	if (cube_mask[i] != cube_mask[j])
		return 0;
	diff = cube_val[i] ^ cube_val[j];
	if (popcount(diff) != 1)
		return 0;
	add_next(cube_val[i] & ~diff, cube_mask[i] | diff);
	cube_used[i] = 1;
	cube_used[j] = 1;
	return 1;
}

int qm_pass(void) {
	int i, j, merged;
	merged = 0;
	nnext = 0;
	for (i = 0; i < ncubes; i++)
		for (j = i + 1; j < ncubes; j++)
			merged += try_combine(i, j);
	for (i = 0; i < ncubes; i++)
		if (!cube_used[i])
			add_prime(cube_val[i], cube_mask[i]);
	for (i = 0; i < nnext; i++) {
		cube_val[i] = next_val[i];
		cube_mask[i] = next_mask[i];
		cube_used[i] = 0;
	}
	ncubes = nnext;
	return merged;
}

int covers(int pi, int minterm) {
	return (prime_val[pi] & ~prime_mask[pi]) == (minterm & ~prime_mask[pi]);
}

int literals(int pi) {
	return nvars - popcount(prime_mask[pi]);
}

void print_cube(int pi) {
	int b;
	for (b = nvars - 1; b >= 0; b--) {
		if (prime_mask[pi] & (1 << b))
			putchar('-');
		else if (prime_val[pi] & (1 << b))
			putchar('1');
		else
			putchar('0');
	}
}

int main(void) {
	int minterms[MAXCUBE];
	int nmin, m, i, total_lit, cover_ct;
	if (!read_int(&nvars) || nvars < 1 || nvars > MAXVAR) {
		printf("bad variable count\n");
		return 2;
	}
	nmin = 0;
	while (read_int(&m)) {
		if (m >= (1 << nvars)) {
			printf("minterm %d out of range\n", m);
			return 2;
		}
		minterms[nmin++] = m;
		add_cube(m, 0);
	}
	while (qm_pass() > 0)
		;
	/* every remaining cube is prime */
	for (i = 0; i < ncubes; i++)
		add_prime(cube_val[i], cube_mask[i]);
	total_lit = 0;
	for (i = 0; i < nprimes; i++)
		total_lit += literals(i);
	cover_ct = 0;
	for (m = 0; m < nmin; m++)
		for (i = 0; i < nprimes; i++)
			if (covers(i, minterms[m])) {
				cover_ct++;
				break;
			}
	printf("vars %d minterms %d primes %d literals %d covered %d\n",
	       nvars, nmin, nprimes, total_lit, cover_ct);
	for (i = 0; i < nprimes && i < 6; i++) {
		print_cube(i);
		putchar(' ');
	}
	putchar('\n');
	return 0;
}
`
