package suite

import (
	"bytes"
	"fmt"
)

// Compress mirrors SPEC92's compress: an LZW coder whose run time is
// dominated by 4 of its 16 functions — the shape the paper's Figure 10
// selective-optimization experiment depends on.
func Compress() *Program {
	timing := compressInput("timing", 9001, 14000)
	return &Program{
		Name:        "compress",
		Description: "Unix compression utility (LZW)",
		Source:      compressSrc,
		Inputs: []Input{
			compressInput("text1", 1, 6000),
			compressInput("text2", 2, 8000),
			compressInput("log", 3, 7000),
			compressInput("mixed", 4, 9000),
		},
		TimingInput: &timing,
	}
}

// compressInput builds a deterministic pseudo-text with enough repeated
// structure for LZW to bite.
func compressInput(name string, seed uint64, size int) Input {
	words := []string{
		"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
		"compress", "table", "hash", "entry", "code", "prefix", "token",
		"stream", "buffer", "output", "input", "reset",
	}
	var b bytes.Buffer
	s := seed
	for b.Len() < size {
		s = s*6364136223846793005 + 1442695040888963407
		w := words[(s>>33)%uint64(len(words))]
		b.WriteString(w)
		switch (s >> 17) % 7 {
		case 0:
			b.WriteByte('\n')
		case 1:
			b.WriteString(", ")
		default:
			b.WriteByte(' ')
		}
		if (s>>45)%13 == 0 {
			fmt.Fprintf(&b, "%d ", (s>>20)%10000)
		}
	}
	return Input{Name: name, Stdin: b.Bytes()}
}

const compressSrc = `/* compress: LZW compression over stdin (statistics only). */
#define TABLE_SIZE 4096
#define HASH_SIZE 5003
#define CODE_BITS 12
#define END -1

int hash_code[HASH_SIZE];
int hash_prefix[HASH_SIZE];
int hash_suffix[HASH_SIZE];
int next_code;
int bit_buf;
int bit_cnt;
long in_bytes;
long out_bytes;
long resets;
unsigned long checksum;
int verbose;

void usage(void) {
	printf("usage: compress [-v]\n");
	exit(2);
}

void clear_hash(void) {
	int i;
	for (i = 0; i < HASH_SIZE; i++)
		hash_code[i] = END;
}

void init_table(void) {
	next_code = 256;
	clear_hash();
}

int hash_slot(int prefix, int c) {
	int h = (prefix * 31 + c * 7 + 11) % HASH_SIZE;
	if (h < 0)
		h += HASH_SIZE;
	return h;
}

/* find_code: return the code for (prefix, c), or -(slot+1) if absent. */
int find_code(int prefix, int c) {
	int h = hash_slot(prefix, c);
	while (hash_code[h] != END) {
		if (hash_prefix[h] == prefix && hash_suffix[h] == c)
			return hash_code[h];
		h++;
		if (h == HASH_SIZE)
			h = 0;
	}
	return -(h + 1);
}

void add_entry(int slot, int prefix, int c) {
	hash_code[slot] = next_code;
	hash_prefix[slot] = prefix;
	hash_suffix[slot] = c;
	next_code++;
}

void checksum_update(int byte_val) {
	checksum = checksum * 131 + byte_val;
}

void write_byte(int b) {
	out_bytes++;
	checksum_update(b & 255);
}

void put_bits(int code) {
	bit_buf = (bit_buf << CODE_BITS) | code;
	bit_cnt += CODE_BITS;
	while (bit_cnt >= 8) {
		bit_cnt -= 8;
		write_byte((bit_buf >> bit_cnt) & 255);
	}
}

void emit(int code) {
	put_bits(code);
}

int next_byte(void) {
	int c = getchar();
	if (c == END)
		return END;
	in_bytes++;
	return c;
}

void reset_state(void) {
	emit(256);
	init_table();
	resets++;
}

int cur_prefix;

/* process_symbol advances the LZW state machine by one input byte. */
void process_symbol(int c) {
	int r = find_code(cur_prefix, c);
	if (r >= 0) {
		cur_prefix = r;
		return;
	}
	emit(cur_prefix);
	if (next_code >= TABLE_SIZE) {
		reset_state();
	} else {
		add_entry(-r - 1, cur_prefix, c);
	}
	cur_prefix = c;
}

void finish(void) {
	if (bit_cnt > 0)
		write_byte((bit_buf << (8 - bit_cnt)) & 255);
}

void report(void) {
	long pct;
	if (in_bytes == 0) {
		printf("empty input\n");
		return;
	}
	pct = out_bytes * 100 / in_bytes;
	printf("in %ld out %ld ratio %ld%% resets %ld check %lu\n",
	       in_bytes, out_bytes, pct, resets, checksum);
	if (verbose)
		printf("codes used %d\n", next_code);
}

int main(int argc, char **argv) {
	int c;
	if (argc > 2)
		usage();
	if (argc == 2) {
		if (strcmp(argv[1], "-v") != 0)
			usage();
		verbose = 1;
	}
	init_table();
	cur_prefix = next_byte();
	if (cur_prefix == END) {
		report();
		return 0;
	}
	while ((c = next_byte()) != END)
		process_symbol(c);
	emit(cur_prefix);
	finish();
	report();
	return 0;
}
`
