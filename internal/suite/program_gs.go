package suite

import (
	"bytes"
	"fmt"
)

// GS mirrors the suite's gs (a PostScript previewer): a stack-machine
// interpreter whose operators are all dispatched through a large
// function-pointer table. In the paper this is the program where the
// pointer-node approximation fails — half the functions are referenced
// indirectly — so the suite preserves that shape.
func GS() *Program {
	return &Program{
		Name:        "gs",
		Description: "PostScript previewer (operator-table interpreter)",
		Source:      gsSrc,
		Inputs: []Input{
			{Name: "arith", Stdin: gsTokens(1, 700)},
			{Name: "stacky", Stdin: gsTokens(2, 900)},
			{Name: "logic", Stdin: gsTokens(3, 800)},
			{Name: "mixed", Stdin: gsTokens(4, 1000)},
		},
	}
}

// gsTokens generates a token stream that keeps the operand stack healthy:
// it tracks an approximate stack depth and only emits operators whose
// operands are available.
func gsTokens(seed uint64, count int) []byte {
	unary := []string{"neg", "abs", "dup", "sqr", "inc", "dec", "not", "sign", "double", "halve"}
	binary := []string{"add", "sub", "mul", "idiv", "mod", "max", "min", "and", "or", "xor", "shl", "gt", "lt", "eq", "exch"}
	var b bytes.Buffer
	s := seed
	next := func(n uint64) uint64 {
		s = s*6364136223846793005 + 1442695040888963407
		return (s >> 33) % n
	}
	depth := 0
	for i := 0; i < count; i++ {
		switch {
		case depth < 2 || next(3) == 0:
			fmt.Fprintf(&b, "%d ", next(1000))
			depth++
		case depth > 24:
			b.WriteString("pop ")
			depth--
		case next(2) == 0:
			op := unary[next(uint64(len(unary)))]
			b.WriteString(op)
			b.WriteByte(' ')
			if op == "dup" {
				depth++
			}
		default:
			op := binary[next(uint64(len(binary)))]
			b.WriteString(op)
			b.WriteByte(' ')
			if op != "exch" {
				depth--
			}
		}
		if i%16 == 15 {
			b.WriteByte('\n')
		}
	}
	b.WriteString("\nsum print count print\n")
	return b.Bytes()
}

const gsSrc = `/* gs: a stack interpreter dispatching every operator by pointer. */
#define STACK 256
#define NAMELEN 16

long stack[STACK];
int sp;
long executed;
int cur_ch;

void fatal(char *msg) {
	printf("gs: %s\n", msg);
	exit(1);
}

void push(long v) {
	if (sp >= STACK)
		fatal("stack overflow");
	stack[sp++] = v;
}

long pop_val(void) {
	if (sp <= 0)
		fatal("stack underflow");
	return stack[--sp];
}

/* ---- operators (all called through the dispatch table) ---- */

void op_add(void) { long b = pop_val(); push(pop_val() + b); }
void op_sub(void) { long b = pop_val(); push(pop_val() - b); }
void op_mul(void) { long b = pop_val(); push(pop_val() * b); }
void op_idiv(void) {
	long b = pop_val();
	long a = pop_val();
	if (b == 0)
		b = 1; /* PostScript would raise undefinedresult; stay total */
	push(a / b);
}
void op_mod(void) {
	long b = pop_val();
	long a = pop_val();
	if (b == 0)
		b = 1;
	push(a % b);
}
void op_neg(void) { push(-pop_val()); }
void op_abs(void) {
	long a = pop_val();
	push(a < 0 ? -a : a);
}
void op_dup(void) {
	long a = pop_val();
	push(a);
	push(a);
}
void op_pop(void) { pop_val(); }
void op_exch(void) {
	long b = pop_val();
	long a = pop_val();
	push(b);
	push(a);
}
void op_max(void) {
	long b = pop_val();
	long a = pop_val();
	push(a > b ? a : b);
}
void op_min(void) {
	long b = pop_val();
	long a = pop_val();
	push(a < b ? a : b);
}
void op_and(void) { long b = pop_val(); push(pop_val() & b); }
void op_or(void)  { long b = pop_val(); push(pop_val() | b); }
void op_xor(void) { long b = pop_val(); push(pop_val() ^ b); }
void op_not(void) { push(~pop_val()); }
void op_shl(void) {
	long b = pop_val() & 15;
	push(pop_val() << b);
}
void op_gt(void) { long b = pop_val(); push(pop_val() > b ? 1 : 0); }
void op_lt(void) { long b = pop_val(); push(pop_val() < b ? 1 : 0); }
void op_eq(void) { long b = pop_val(); push(pop_val() == b ? 1 : 0); }
void op_sqr(void) {
	long a = pop_val();
	push(a * a);
}
void op_inc(void) { push(pop_val() + 1); }
void op_dec(void) { push(pop_val() - 1); }
void op_sign(void) {
	long a = pop_val();
	push(a > 0 ? 1 : (a < 0 ? -1 : 0));
}
void op_double(void) { push(pop_val() * 2); }
void op_halve(void) { push(pop_val() / 2); }
void op_count(void) { push(sp); }
void op_clear(void) { sp = 0; }
void op_sum(void) {
	long s = 0;
	while (sp > 0)
		s += pop_val();
	push(s);
}
void op_print(void) {
	printf("%ld\n", pop_val());
}

struct op_entry {
	char *name;
	void (*fn)(void);
};

struct op_entry op_table[] = {
	{"add", op_add}, {"sub", op_sub}, {"mul", op_mul}, {"idiv", op_idiv},
	{"mod", op_mod}, {"neg", op_neg}, {"abs", op_abs}, {"dup", op_dup},
	{"pop", op_pop}, {"exch", op_exch}, {"max", op_max}, {"min", op_min},
	{"and", op_and}, {"or", op_or}, {"xor", op_xor}, {"not", op_not},
	{"shl", op_shl}, {"gt", op_gt}, {"lt", op_lt}, {"eq", op_eq},
	{"sqr", op_sqr}, {"inc", op_inc}, {"dec", op_dec}, {"sign", op_sign},
	{"double", op_double}, {"halve", op_halve}, {"count", op_count},
	{"clear", op_clear}, {"sum", op_sum}, {"print", op_print},
};

#define NOPS 30

void dispatch(char *name) {
	int i;
	for (i = 0; i < NOPS; i++) {
		if (strcmp(op_table[i].name, name) == 0) {
			op_table[i].fn();
			executed++;
			return;
		}
	}
	fatal("unknown operator");
}

void next_ch(void) {
	cur_ch = getchar();
}

int read_token(char *buf) {
	int n = 0;
	while (cur_ch == ' ' || cur_ch == '\t' || cur_ch == '\n')
		next_ch();
	if (cur_ch == -1)
		return 0;
	while (cur_ch != -1 && cur_ch != ' ' && cur_ch != '\t' && cur_ch != '\n') {
		if (n < NAMELEN - 1)
			buf[n++] = cur_ch;
		next_ch();
	}
	buf[n] = 0;
	return 1;
}

int is_numeric(char *s) {
	if (*s == '-')
		s++;
	if (*s == 0)
		return 0;
	while (*s) {
		if (*s < '0' || *s > '9')
			return 0;
		s++;
	}
	return 1;
}

int main(void) {
	char tok[NAMELEN];
	next_ch();
	while (read_token(tok)) {
		if (is_numeric(tok))
			push(atol(tok));
		else
			dispatch(tok);
	}
	printf("executed %ld ops, final depth %d\n", executed, sp);
	return 0;
}
`
