package suite

// Eqntott mirrors SPEC92's eqntott: translating boolean equations into
// truth tables. Recursive-descent expression parsing plus exhaustive
// enumeration and a sort — branchy integer code.
func Eqntott() *Program {
	return &Program{
		Name:        "eqntott",
		Description: "Translate boolean functions to truth table",
		Source:      eqntottSrc,
		Inputs: []Input{
			{Name: "basic", Stdin: []byte(
				"a&b|c\n!a&(b|!c)\na^b&c|d^e\n(a|b)&(c|d)|e&f\n")},
			{Name: "wide", Stdin: []byte(
				"a|b|c|d|e|f|g\n(a&b)|(c&d)|(e&f)|g\n!(a&b&c)&(d|e|f|g)\na^b^c^d^e^f\n")},
			{Name: "deep", Stdin: []byte(
				"((((a&b)|c)&d)|e)&f|g\n!(!(!(a)))|b&(c|d|e|f)\n(a^b)^(c^d)^(e|f)\na&(b|(c&(d|(e&(f|g)))))|h\n")},
			{Name: "mixed", Stdin: []byte(
				"a|!b|c\na|!a&(b|c|d)\n(a|b)&!(a&b)|(c^d)\nc^d^e|f\na&b|c&d|e&f|g&h\na|b&!c|d&!e|f\n")},
		},
	}
}

const eqntottSrc = `/* eqntott: boolean expressions on stdin become truth-table summaries. */
#define MAXNODE 256
#define MAXLINE 128
#define MAXTERMS 512
#define OP_VAR 0
#define OP_NOT 1
#define OP_AND 2
#define OP_OR 3
#define OP_XOR 4

int node_op[MAXNODE];
int node_lhs[MAXNODE];
int node_rhs[MAXNODE];
int node_var[MAXNODE];
int nnodes;

char line[MAXLINE];
int lpos;
int used_vars;
int minterms[MAXTERMS];
int nterms;

void parse_error(char *msg) {
	printf("parse error: %s at %d\n", msg, lpos);
	exit(1);
}

int new_node(int op, int lhs, int rhs, int v) {
	if (nnodes >= MAXNODE)
		parse_error("out of nodes");
	node_op[nnodes] = op;
	node_lhs[nnodes] = lhs;
	node_rhs[nnodes] = rhs;
	node_var[nnodes] = v;
	nnodes++;
	return nnodes - 1;
}

int peek_ch(void) {
	while (line[lpos] == ' ' || line[lpos] == '\t')
		lpos++;
	return line[lpos];
}

int parse_or(void);

int parse_atom(void) {
	int c = peek_ch();
	if (c == '(') {
		int e;
		lpos++;
		e = parse_or();
		if (peek_ch() != ')')
			parse_error("missing )");
		lpos++;
		return e;
	}
	if (c == '!') {
		lpos++;
		return new_node(OP_NOT, parse_atom(), -1, -1);
	}
	if (c >= 'a' && c <= 'h') {
		lpos++;
		used_vars |= 1 << (c - 'a');
		return new_node(OP_VAR, -1, -1, c - 'a');
	}
	parse_error("expected atom");
	return -1;
}

int parse_and(void) {
	int e = parse_atom();
	while (peek_ch() == '&') {
		lpos++;
		e = new_node(OP_AND, e, parse_atom(), -1);
	}
	return e;
}

int parse_xor(void) {
	int e = parse_and();
	while (peek_ch() == '^') {
		lpos++;
		e = new_node(OP_XOR, e, parse_and(), -1);
	}
	return e;
}

int parse_or(void) {
	int e = parse_xor();
	while (peek_ch() == '|') {
		lpos++;
		e = new_node(OP_OR, e, parse_xor(), -1);
	}
	return e;
}

int eval_node(int n, int assign) {
	int op = node_op[n];
	if (op == OP_VAR)
		return (assign >> node_var[n]) & 1;
	if (op == OP_NOT)
		return !eval_node(node_lhs[n], assign);
	if (op == OP_AND)
		return eval_node(node_lhs[n], assign) && eval_node(node_rhs[n], assign);
	if (op == OP_XOR)
		return eval_node(node_lhs[n], assign) ^ eval_node(node_rhs[n], assign);
	return eval_node(node_lhs[n], assign) || eval_node(node_rhs[n], assign);
}

int var_count_of(int m) {
	int n = 0;
	while (m) {
		n++;
		m = m & (m - 1);
	}
	return n;
}

int var_count(void) {
	return var_count_of(used_vars);
}

int top_var(void) {
	int hi = -1, i;
	for (i = 0; i < 8; i++)
		if (used_vars & (1 << i))
			hi = i;
	return hi;
}

void enumerate(int root) {
	int rows, a;
	rows = 1 << (top_var() + 1);
	if (top_var() < 0)
		rows = 1;
	nterms = 0;
	for (a = 0; a < rows; a++) {
		if (eval_node(root, a)) {
			if (nterms < MAXTERMS)
				minterms[nterms] = a;
			nterms++;
		}
	}
}

/* cmp_terms mirrors eqntott's cmppt: order truth-table rows by ones
   count, then by value. The sort below calls it once per comparison, so
   it dominates run time exactly as cmppt does in the original. */
int cmp_terms(int a, int b) {
	int ca = var_count_of(a);
	int cb = var_count_of(b);
	if (ca != cb)
		return ca - cb;
	if (a < b)
		return -1;
	if (a > b)
		return 1;
	return 0;
}

void sort_terms(void) {
	/* insertion sort driven by cmp_terms (the "ordering" pass). */
	int i, j, key;
	int limit = nterms < MAXTERMS ? nterms : MAXTERMS;
	for (i = 1; i < limit; i++) {
		key = minterms[i];
		j = i - 1;
		while (j >= 0 && cmp_terms(minterms[j], key) > 0) {
			minterms[j + 1] = minterms[j];
			j--;
		}
		minterms[j + 1] = key;
	}
}

int read_line(void) {
	int c, n = 0;
	while ((c = getchar()) != -1 && c != '\n') {
		if (n < MAXLINE - 1)
			line[n++] = c;
	}
	line[n] = 0;
	if (c == -1 && n == 0)
		return 0;
	return 1;
}

int main(void) {
	int root;
	long total = 0;
	int eqns = 0;
	while (read_line()) {
		if (line[0] == 0)
			continue;
		lpos = 0;
		nnodes = 0;
		used_vars = 0;
		root = parse_or();
		if (peek_ch() != 0)
			parse_error("trailing junk");
		enumerate(root);
		sort_terms();
		printf("eqn %d vars %d minterms %d", eqns, var_count(), nterms);
		if (nterms > 0)
			printf(" first %d last %d", minterms[0],
			       minterms[(nterms <= MAXTERMS ? nterms : MAXTERMS) - 1]);
		printf("\n");
		total += nterms;
		eqns++;
	}
	printf("total %ld over %d equations\n", total, eqns);
	return 0;
}
`
